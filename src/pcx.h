#ifndef PCX_PCX_H_
#define PCX_PCX_H_

/// \file pcx.h
/// Umbrella header: the public API of the pcx library.
///
/// pcx reproduces the SIGMOD'20 predicate-constraints system: given
/// declarative constraints on *missing* rows ("between lo and hi rows
/// match predicate ψ, with values inside box B"), it computes hard
/// deterministic ranges for aggregate queries over those rows.
///
/// **The primary entry point is the engine/backend API.** One
/// interface, pcx::BoundBackend (engine/backend.h), captures the whole
/// operation — Bound / BoundBatch / BoundGroupBy / Stats / Epoch — and
/// pcx::Engine::Open(uri) (engine/engine.h) selects how it executes:
///
///   - "local:<pcset>"               in-process unsharded solving
///   - "snapshot:<path>?shards=K"    in-process sharded solving
///   - "tcp:<host>:<port>"           a pcx_serve server over the wire
///   - "mirror:<uri>|<uri>"          replicas checked bit-for-bit
///
/// All backends answer bit-identically at the same epoch, and
/// pcx::QueryBuilder (engine/query_builder.h) builds the AggQuery
/// values they consume from named columns. Code written against
/// Engine/BoundBackend is substrate-agnostic: swapping the URI moves
/// it between in-process, sharded, remote, and mirrored execution.
///
/// The layers underneath, in the order a new reader should meet them:
///
///   - pcx::PredicateConstraint / pcx::PredicateConstraintSet
///     (pc/predicate_constraint.h, pc/pc_set.h) — declare what is
///     known about the missing rows.
///   - pcx::AggQuery (pc/query.h) — SUM/COUNT/AVG/MIN/MAX with an
///     optional conjunctive-range WHERE predicate.
///   - pcx::PcBoundSolver (pc/bound_solver.h) — the main solver:
///     Bound(query) -> StatusOr<ResultRange>. Internally runs cell
///     decomposition (pc/cell_decomposition.h) and the MILP engine
///     (solver/milp.h); callers never touch those directly unless they
///     want the Fig. 7 counters or a custom SatChecker.
///   - the serving subsystem (serve/) — versioned snapshots, the
///     skew-aware partitioner, ShardedBoundSolver, and the pcx_serve
///     line protocol the remote backend speaks.
///   - pcx::EdgeCoverJoinBound / pcx::NaiveJoinBound
///     (join/join_bound.h) — combine per-relation single-table bounds
///     into a multi-relation join bound, via a minimum fractional edge
///     cover or the Cartesian product.
///   - pcx::Estimator implementations (baselines/) and the evaluation
///     harness (eval/harness.h) — the paper's §6 comparison machinery:
///     failure rate and median over-estimation over a query workload.
///   - pcx::workload generators (workload/) — synthetic datasets,
///     missingness patterns, and PC/query generators used by the
///     bench/ figure reproductions.
///
/// Everything returns pcx::Status / pcx::StatusOr<T> (common/status.h,
/// common/statusor.h) rather than throwing; error categories are typed
/// pcx::StatusCodes that survive the serving protocol round-trip.
///
/// Fine-grained headers remain available for targeted includes;
/// including this header pulls in the whole library surface.
/// See examples/quickstart.cpp for a complete commented walkthrough and
/// docs/ARCHITECTURE.md for the module graph.

// The backend API (primary entry point) leads the umbrella.
#include "engine/backend.h"
#include "engine/engine.h"
#include "engine/local_backend.h"
#include "engine/mirror_backend.h"
#include "engine/query_builder.h"
#include "engine/remote_backend.h"
#include "engine/sharded_backend.h"

// Fine-grained library surface, grouped by module.
#include "baselines/daq.h"
#include "baselines/estimator.h"
#include "baselines/extrapolation.h"
#include "baselines/gmm.h"
#include "baselines/histogram.h"
#include "baselines/pc_estimator.h"
#include "baselines/sampling.h"
#include "common/covering_set.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "eval/harness.h"
#include "join/edge_cover.h"
#include "join/elastic_sensitivity.h"
#include "join/hypergraph.h"
#include "join/join_bound.h"
#include "pc/bound_solver.h"
#include "pc/cell_decomposition.h"
#include "pc/combine.h"
#include "pc/group_by.h"
#include "pc/instance_builder.h"
#include "pc/pc_set.h"
#include "pc/predicate_constraint.h"
#include "pc/query.h"
#include "pc/serialization.h"
#include "predicate/box.h"
#include "predicate/interval.h"
#include "predicate/predicate.h"
#include "predicate/sat.h"
#include "relation/aggregate.h"
#include "relation/csv.h"
#include "relation/join.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "serve/partitioner.h"
#include "serve/server.h"
#include "serve/sharded_solver.h"
#include "serve/snapshot.h"
#include "solver/lp_model.h"
#include "solver/milp.h"
#include "solver/simplex.h"
#include "workload/datasets.h"
#include "workload/missing.h"
#include "workload/pc_gen.h"
#include "workload/query_gen.h"

#endif  // PCX_PCX_H_
