#include "serve/snapshot.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/text.h"
#include "pc/serialization.h"

namespace pcx {

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string ToHex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

const char* AttrDomainName(AttrDomain d) {
  return d == AttrDomain::kInteger ? "int" : "cont";
}

StatusOr<AttrDomain> ParseAttrDomain(const std::string& s) {
  if (s == "int") return AttrDomain::kInteger;
  if (s == "cont") return AttrDomain::kContinuous;
  return Status::InvalidArgument("unknown attribute domain '" + s + "'");
}

namespace {

/// Reads "key=value" off `line` (a whitespace-split token list).
StatusOr<std::string> TokenValue(const std::vector<std::string>& tokens,
                                 const std::string& key) {
  const std::string needle = key + "=";
  for (const std::string& t : tokens) {
    if (t.rfind(needle, 0) == 0) return t.substr(needle.size());
  }
  return Status::InvalidArgument("missing field '" + key + "'");
}

std::string CanonicalSchema(size_t num_attrs,
                            const std::vector<AttrDomain>& domains) {
  std::ostringstream os;
  os << "attrs=" << num_attrs << ";domains=";
  for (size_t a = 0; a < num_attrs; ++a) {
    if (a > 0) os << ",";
    os << AttrDomainName(DomainOf(domains, a));
  }
  return os.str();
}

}  // namespace

size_t Snapshot::total_pcs() const {
  size_t n = 0;
  for (const SnapshotShard& s : shards) n += s.indices.size();
  return n;
}

PredicateConstraintSet Snapshot::Flatten() const {
  const size_t n = total_pcs();
  std::vector<const PredicateConstraint*> by_index(n, nullptr);
  for (const SnapshotShard& s : shards) {
    PCX_CHECK_EQ(s.indices.size(), s.pcs.size());
    for (size_t i = 0; i < s.indices.size(); ++i) {
      PCX_CHECK(s.indices[i] < n) << "snapshot index out of range";
      by_index[s.indices[i]] = &s.pcs.at(i);
    }
  }
  PredicateConstraintSet out;
  for (const PredicateConstraint* pc : by_index) {
    PCX_CHECK(pc != nullptr) << "snapshot misses a global index";
    out.Add(*pc);
  }
  return out;
}

uint64_t SchemaDigest(size_t num_attrs,
                      const std::vector<AttrDomain>& domains) {
  return Fnv1a64(CanonicalSchema(num_attrs, domains));
}

Snapshot MakeSnapshot(const PredicateConstraintSet& pcs,
                      const std::vector<AttrDomain>& domains,
                      const Partition& partition, uint64_t epoch) {
  Snapshot snap;
  snap.epoch = epoch;
  snap.num_attrs = pcs.num_attrs();
  snap.domains.reserve(snap.num_attrs);
  for (size_t a = 0; a < snap.num_attrs; ++a) {
    snap.domains.push_back(DomainOf(domains, a));
  }
  for (const std::vector<size_t>& shard : partition.shards) {
    SnapshotShard out;
    out.indices = shard;
    for (size_t i : shard) {
      PCX_CHECK(i < pcs.size()) << "partition index out of range";
      out.pcs.Add(pcs.at(i));
    }
    snap.shards.push_back(std::move(out));
  }
  return snap;
}

std::string SerializeSnapshot(const Snapshot& snapshot) {
  std::ostringstream os;
  os << "pcxsnap v1 shards=" << snapshot.shards.size()
     << " epoch=" << snapshot.epoch << "\n";
  os << "schema attrs=" << snapshot.num_attrs << " domains=";
  for (size_t a = 0; a < snapshot.num_attrs; ++a) {
    if (a > 0) os << ",";
    os << AttrDomainName(DomainOf(snapshot.domains, a));
  }
  os << " digest=" << ToHex64(SchemaDigest(snapshot.num_attrs, snapshot.domains))
     << "\n";
  for (size_t s = 0; s < snapshot.shards.size(); ++s) {
    const SnapshotShard& shard = snapshot.shards[s];
    // The payload is a plain pcset document; an empty shard still
    // carries the pcset header so the payload always parses on its own.
    std::ostringstream payload;
    if (shard.pcs.empty()) {
      payload << "pcset v1 attrs=" << snapshot.num_attrs << "\n";
    } else {
      payload << SerializePcSet(shard.pcs);
    }
    os << "shard " << s << " pcs=" << shard.indices.size() << " indices=";
    for (size_t i = 0; i < shard.indices.size(); ++i) {
      if (i > 0) os << ",";
      os << shard.indices[i];
    }
    os << " checksum=" << ToHex64(Fnv1a64(payload.str())) << "\n";
    os << payload.str();
    os << "end shard " << s << "\n";
  }
  os << "end pcxsnap\n";
  return os.str();
}

StatusOr<Snapshot> ParseSnapshot(const std::string& text) {
  std::istringstream is(text);
  std::string raw;
  size_t line_no = 0;
  auto error = [&](const std::string& msg) {
    return Status::InvalidArgument("snapshot line " + std::to_string(line_no) +
                                   ": " + msg);
  };

  // Header.
  std::string line;
  auto next_line = [&]() -> bool {
    while (std::getline(is, raw)) {
      ++line_no;
      line = TrimWhitespace(raw);
      if (line.empty() || line[0] == '#') continue;
      return true;
    }
    return false;
  };

  if (!next_line()) return Status::InvalidArgument("empty snapshot document");
  {
    const auto tokens = SplitWhitespace(line);
    if (tokens.size() < 2 || tokens[0] != "pcxsnap" || tokens[1] != "v1") {
      return error("expected header 'pcxsnap v1 shards=K epoch=E'");
    }
  }
  const auto header_tokens = SplitWhitespace(line);
  PCX_ASSIGN_OR_RETURN(const std::string shards_str,
                       TokenValue(header_tokens, "shards"));
  PCX_ASSIGN_OR_RETURN(const uint64_t num_shards, ParseU64(shards_str));
  if (num_shards > kMaxShards) {
    // The v1 format caps shards at the solver's 64-bit routing mask;
    // rejecting here keeps LOAD an ERR instead of a process abort.
    return error("snapshot declares " + shards_str + " shards; the v1 limit is " +
                 std::to_string(kMaxShards));
  }
  PCX_ASSIGN_OR_RETURN(const std::string epoch_str,
                       TokenValue(header_tokens, "epoch"));
  Snapshot snap;
  PCX_ASSIGN_OR_RETURN(snap.epoch, ParseU64(epoch_str));

  // Schema line.
  if (!next_line()) return error("missing schema line");
  {
    const auto tokens = SplitWhitespace(line);
    if (tokens.empty() || tokens[0] != "schema") {
      return error("expected 'schema attrs=A domains=... digest=...'");
    }
    PCX_ASSIGN_OR_RETURN(const std::string attrs_str,
                         TokenValue(tokens, "attrs"));
    PCX_ASSIGN_OR_RETURN(const uint64_t attrs, ParseU64(attrs_str));
    snap.num_attrs = static_cast<size_t>(attrs);
    PCX_ASSIGN_OR_RETURN(const std::string domains_str,
                         TokenValue(tokens, "domains"));
    if (snap.num_attrs > 0) {
      const auto parts = SplitOn(domains_str, ',');
      if (parts.size() != snap.num_attrs) {
        return error("domains list has " + std::to_string(parts.size()) +
                     " entries for " + std::to_string(snap.num_attrs) +
                     " attributes");
      }
      for (const std::string& p : parts) {
        PCX_ASSIGN_OR_RETURN(const AttrDomain d, ParseAttrDomain(TrimWhitespace(p)));
        snap.domains.push_back(d);
      }
    }
    PCX_ASSIGN_OR_RETURN(const std::string digest_str,
                         TokenValue(tokens, "digest"));
    PCX_ASSIGN_OR_RETURN(const uint64_t digest, ParseU64(digest_str, 16));
    const uint64_t expected = SchemaDigest(snap.num_attrs, snap.domains);
    if (digest != expected) {
      return error("schema digest mismatch: file says " + digest_str +
                   ", schema hashes to " + ToHex64(expected));
    }
  }

  // Shard sections.
  for (uint64_t s = 0; s < num_shards; ++s) {
    if (!next_line()) return error("missing 'shard' line");
    const auto tokens = SplitWhitespace(line);
    if (tokens.size() < 2 || tokens[0] != "shard") {
      return error("expected 'shard " + std::to_string(s) + " ...'");
    }
    PCX_ASSIGN_OR_RETURN(const uint64_t shard_id, ParseU64(tokens[1]));
    if (shard_id != s) {
      return error("shard sections out of order: saw " + tokens[1] +
                   ", expected " + std::to_string(s));
    }
    PCX_ASSIGN_OR_RETURN(const std::string pcs_str,
                         TokenValue(tokens, "pcs"));
    PCX_ASSIGN_OR_RETURN(const uint64_t pcs_count, ParseU64(pcs_str));
    PCX_ASSIGN_OR_RETURN(const std::string indices_str,
                         TokenValue(tokens, "indices"));
    PCX_ASSIGN_OR_RETURN(const std::string checksum_str,
                         TokenValue(tokens, "checksum"));
    PCX_ASSIGN_OR_RETURN(const uint64_t checksum, ParseU64(checksum_str, 16));

    SnapshotShard shard;
    if (!indices_str.empty()) {
      for (const std::string& part : SplitOn(indices_str, ',')) {
        PCX_ASSIGN_OR_RETURN(const uint64_t idx, ParseU64(TrimWhitespace(part)));
        shard.indices.push_back(static_cast<size_t>(idx));
      }
    }
    if (shard.indices.size() != pcs_count) {
      return error("shard " + std::to_string(s) + " declares " + pcs_str +
                   " pcs but lists " + std::to_string(shard.indices.size()) +
                   " indices");
    }
    for (size_t i = 1; i < shard.indices.size(); ++i) {
      // Ascending order within a shard is what lets the sharded solver
      // reassemble the global constraint order — the bit-identity
      // guarantee depends on it, so a writer that shuffles is rejected.
      if (shard.indices[i] <= shard.indices[i - 1]) {
        return error("shard " + std::to_string(s) +
                     " indices must be strictly ascending");
      }
    }

    // Payload: raw lines until 'end shard s', checksummed over
    // LF-normalized bytes (a trailing CR is stripped) so a snapshot
    // re-saved with CRLF endings still verifies — matching the CRLF
    // tolerance of every other parser in the format.
    const std::string terminator = "end shard " + std::to_string(s);
    std::string payload;
    bool terminated = false;
    while (std::getline(is, raw)) {
      ++line_no;
      if (!raw.empty() && raw.back() == '\r') raw.pop_back();
      if (TrimWhitespace(raw) == terminator) {
        terminated = true;
        break;
      }
      payload += raw;
      payload += '\n';
    }
    if (!terminated) return error("unterminated shard " + std::to_string(s));
    if (Fnv1a64(payload) != checksum) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) + " checksum mismatch (expected " +
          checksum_str + ", payload hashes to " + ToHex64(Fnv1a64(payload)) +
          "): snapshot corrupted or hand-edited");
    }
    auto parsed = ParsePcSet(payload);
    if (!parsed.ok()) {
      return Status::InvalidArgument("shard " + std::to_string(s) + ": " +
                                     parsed.status().message());
    }
    shard.pcs = *std::move(parsed);
    if (shard.pcs.size() != pcs_count) {
      return error("shard " + std::to_string(s) + " payload has " +
                   std::to_string(shard.pcs.size()) + " pcs, header says " +
                   pcs_str);
    }
    if (!shard.pcs.empty() && snap.num_attrs > 0 &&
        shard.pcs.num_attrs() != snap.num_attrs) {
      return error("shard " + std::to_string(s) + " attribute count " +
                   std::to_string(shard.pcs.num_attrs()) +
                   " disagrees with schema");
    }
    snap.shards.push_back(std::move(shard));
  }

  if (!next_line() || line != "end pcxsnap") {
    return error("missing 'end pcxsnap' trailer");
  }

  // Global index consistency: exactly a permutation of 0..n-1.
  const size_t total = snap.total_pcs();
  std::vector<char> seen(total, 0);
  for (const SnapshotShard& shard : snap.shards) {
    for (size_t i : shard.indices) {
      if (i >= total) {
        return Status::InvalidArgument(
            "snapshot index " + std::to_string(i) + " out of range (total " +
            std::to_string(total) + " pcs)");
      }
      if (seen[i]) {
        return Status::InvalidArgument("snapshot index " + std::to_string(i) +
                                       " appears twice");
      }
      seen[i] = 1;
    }
  }
  return snap;
}

Status WriteSnapshot(const Snapshot& snapshot, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << SerializeSnapshot(snapshot);
  out.flush();
  if (!out) return Status::Internal("short write to '" + path + "'");
  return Status::OK();
}

StatusOr<Snapshot> LoadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open snapshot '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = ParseSnapshot(buf.str());
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  "'" + path + "': " + parsed.status().message());
  }
  return parsed;
}

}  // namespace pcx
