#include "serve/event_loop.h"

#if defined(__linux__)

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/text.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace pcx {
namespace {

using SteadyClock = std::chrono::steady_clock;

/// epoll_event.data.u64 tags: the listener and the wake pipe get fixed
/// ids; connections count up from kFirstConnId and are never reused, so
/// a completion for a closed connection can only miss, never hit a
/// recycled one.
constexpr uint64_t kListenerId = 0;
constexpr uint64_t kWakeId = 1;
constexpr uint64_t kFirstConnId = 2;

/// One finished async request: which connection, which reply slot, the
/// reply text. Produced by pool workers, applied by the loop thread.
struct Completion {
  uint64_t conn_id = 0;
  uint64_t seq = 0;
  std::string text;
};

/// Worker -> loop channel. Shared by shared_ptr so a worker finishing
/// after Serve returned (Shutdown drain) writes into an orphan queue
/// instead of freed memory.
struct CompletionQueue {
  Mutex mu;
  std::vector<Completion> items GUARDED_BY(mu);

  void Push(std::vector<Completion> batch) {
    MutexLock lock(mu);
    for (Completion& c : batch) items.push_back(std::move(c));
  }
  std::vector<Completion> Drain() {
    MutexLock lock(mu);
    return std::exchange(items, {});
  }
};

/// A reply slot: replies on one connection go back in request order
/// even though they complete out of order (HEALTH inline, BOUND on the
/// next batch, GROUPBY whenever its worker finishes). Slots are filled
/// by seq and flushed from the front only once done.
struct Slot {
  uint64_t seq = 0;
  bool done = false;
  std::string text;
};

/// Per-connection state: everything the C10K design needs per client is
/// this struct plus one fd — no thread, no blocking read.
struct Conn {
  int fd = -1;
  uint64_t id = 0;
  std::string rbuf;   ///< bytes read, not yet framed into lines
  std::string wbuf;   ///< reply bytes accepted by us, not by the kernel
  std::deque<Slot> slots;
  uint64_t next_seq = 0;
  size_t outstanding = 0;  ///< slots not yet done (per-conn admission)
  /// Peer half-closed its write side: no more requests will arrive;
  /// close once every slot is flushed.
  bool eof = false;
  /// QUIT (or a fatal protocol violation) seen: later input is ignored
  /// and the connection closes once every slot is flushed.
  bool closing = false;
  /// Oversized-line state: discard input until this many bytes have
  /// been thrown away (then close), mirroring the legacy session's
  /// bounded post-ERR drain so the ERR reply survives teardown.
  size_t discard_budget = 0;
  bool discarding = false;
  bool want_write = false;  ///< EPOLLOUT currently requested
  /// Per-connection protocol state (TRACE toggle). shared_ptr: pool
  /// workers capture it, so a connection destroyed with a request still
  /// in flight cannot dangle the worker's session pointer.
  std::shared_ptr<BoundServer::Session> session =
      std::make_shared<BoundServer::Session>();
};

/// A BOUND admitted into the coalescing window, waiting for the batch.
struct PendingBound {
  uint64_t conn_id = 0;
  uint64_t seq = 0;
  AggQuery query;
  std::string line;  ///< raw request, for the slow-query log
  SteadyClock::time_point enqueued;
};

double MicrosSince(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::micro>(SteadyClock::now() - start)
      .count();
}

std::string FormatRangeReply(const StatusOr<ResultRange>& range) {
  if (!range.ok()) return FormatErrorReply(range.status());
  std::ostringstream out;
  PrintResultRange(out, "RANGE ", *range);
  return out.str();
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal("fcntl(O_NONBLOCK) failed");
  }
  return Status::OK();
}

/// The whole Serve invocation's state. Owned by the loop thread; the
/// solver pool only ever touches `server`, `completions`, and the wake
/// pipe (all thread-safe).
class Loop {
 public:
  Loop(BoundServer& server, const EventLoopListener::Options& options,
       int listener_fd, int wake_read, int wake_write,
       std::atomic<bool>& stopping)
      : server_(server),
        options_(options),
        listener_fd_(listener_fd),
        wake_read_(wake_read),
        wake_write_(wake_write),
        stopping_(stopping),
        completions_(std::make_shared<CompletionQueue>()),
        queue_wait_hist_(&server.metrics().GetHistogram(
            "pcx_queue_wait_us", {},
            "Time from solver-queue admission to worker start "
            "(microseconds)")),
        coalesce_wait_hist_(&server.metrics().GetHistogram(
            "pcx_coalesce_wait_us", {},
            "Time a BOUND waited in the coalescing window before batch "
            "dispatch (microseconds)")),
        coalesce_batch_hist_(&server.metrics().GetHistogram(
            "pcx_coalesce_batch_size", {},
            "Requests per dispatched coalesced BOUND batch")),
        pool_(options.solver_threads == 0 ? 2 : options.solver_threads) {}

  Status Run();

 private:
  // -- epoll plumbing -------------------------------------------------

  Status EpollAdd(int fd, uint64_t id, uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = id;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      return Status::Internal(std::string("epoll_ctl(ADD) failed: ") +
                              std::strerror(errno));
    }
    return Status::OK();
  }

  void UpdateWriteInterest(Conn& conn) {
    const bool want = !conn.wbuf.empty();
    if (want == conn.want_write) return;
    conn.want_write = want;
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.u64 = conn.id;
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  /// Wakes the loop from a pool worker (completions are ready).
  void Wake() {
    const char byte = 1;
    ssize_t ignored = ::write(wake_write_, &byte, 1);
    (void)ignored;  // pipe full = a wake is already pending
  }

  // -- connection lifecycle -------------------------------------------

  void AcceptReady();
  void DestroyConn(uint64_t id);
  Conn* FindConn(uint64_t id) {
    const auto it = conns_.find(id);
    return it == conns_.end() ? nullptr : it->second.get();
  }

  // -- request path ---------------------------------------------------

  void ReadReady(Conn& conn);
  void ProcessBuffered(Conn& conn);
  void DispatchLine(Conn& conn, const std::string& line);
  Slot& NewSlot(Conn& conn);
  void CompleteInline(Conn& conn, Slot& slot, std::string text);
  /// True when admission control rejected (slot answered UNAVAILABLE).
  bool RejectIfOverloaded(Conn& conn, Slot& slot);
  void SubmitHandleLineTask(Conn& conn, Slot& slot, std::string line);
  void DispatchBoundBatch();

  // -- reply path -----------------------------------------------------

  void ApplyCompletions();
  void FillSlot(Conn& conn, uint64_t seq, std::string text);
  void FlushSlots(Conn& conn);
  void WriteReady(Conn& conn);
  /// Close the fd once nothing more can be sent or received on it.
  void MaybeFinish(Conn& conn);

  // -- bookkeeping ----------------------------------------------------

  void NoteQueued() {
    const int64_t depth = server_.transport().queue_depth.Add(1);
    server_.transport().queue_high_water.MaxWith(depth);
  }

  bool AcceptingMore() const {
    return !listener_disarmed_ &&
           (options_.max_clients == 0 || accepted_ < options_.max_clients);
  }

  BoundServer& server_;
  const EventLoopListener::Options& options_;
  const int listener_fd_;
  const int wake_read_;
  const int wake_write_;
  std::atomic<bool>& stopping_;

  int epfd_ = -1;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = kFirstConnId;
  size_t accepted_ = 0;
  bool listener_disarmed_ = false;
  /// Re-arm time after fd/memory exhaustion paused accepting (level-
  /// triggered epoll would otherwise spin on the still-readable
  /// listener).
  std::optional<SteadyClock::time_point> accept_rearm_at_;

  std::vector<PendingBound> pending_bounds_;
  std::optional<SteadyClock::time_point> batch_deadline_;

  std::shared_ptr<CompletionQueue> completions_;
  std::vector<uint64_t> doomed_;  ///< conns to destroy after event sweep
  /// Cached registry series (stable for the server's lifetime).
  Histogram* const queue_wait_hist_;
  Histogram* const coalesce_wait_hist_;
  Histogram* const coalesce_batch_hist_;
  ThreadPool pool_;
};

void Loop::AcceptReady() {
  while (AcceptingMore()) {
    const int client = ::accept4(listener_fd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (client < 0) {
      const int error_code = errno;
      if (error_code == EAGAIN || error_code == EWOULDBLOCK) return;
      if (error_code == EINTR) continue;
      if (IsTransientAcceptError(error_code)) {
        // Under fd/memory exhaustion, pause accepting briefly: sessions
        // ending will free fds, and the pause keeps the level-triggered
        // loop from spinning on the un-accepted backlog.
        epoll_event ev{};
        ::epoll_ctl(epfd_, EPOLL_CTL_DEL, listener_fd_, &ev);
        listener_disarmed_ = true;
        accept_rearm_at_ = SteadyClock::now() + std::chrono::milliseconds(50);
        return;
      }
      // Persistent listener failure: stop accepting; existing
      // connections keep being served until they finish.
      epoll_event ev{};
      ::epoll_ctl(epfd_, EPOLL_CTL_DEL, listener_fd_, &ev);
      listener_disarmed_ = true;
      accept_rearm_at_.reset();
      return;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = client;
    conn->id = next_conn_id_++;
    if (!EpollAdd(client, conn->id, EPOLLIN).ok()) {
      ::close(client);
      continue;
    }
    ++accepted_;
    server_.NoteSessionStart();
    server_.transport().open_connections.Add(1);
    conns_.emplace(conn->id, std::move(conn));
  }
  if (!AcceptingMore() && !listener_disarmed_) {
    epoll_event ev{};
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, listener_fd_, &ev);
    listener_disarmed_ = true;
  }
}

void Loop::DestroyConn(uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  epoll_event ev{};
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, it->second->fd, &ev);
  ::close(it->second->fd);
  conns_.erase(it);
  server_.transport().open_connections.Sub(1);
}

Slot& Loop::NewSlot(Conn& conn) {
  conn.slots.push_back(Slot{conn.next_seq++, false, {}});
  ++conn.outstanding;
  return conn.slots.back();
}

void Loop::CompleteInline(Conn& conn, Slot& slot, std::string text) {
  slot.done = true;
  slot.text = std::move(text);
  --conn.outstanding;
}

bool Loop::RejectIfOverloaded(Conn& conn, Slot& slot) {
  // outstanding was already bumped for this slot, hence the ">" (the
  // request itself is not evidence of overload).
  const bool conn_full = conn.outstanding > options_.max_conn_pending;
  const bool queue_full =
      server_.transport().queue_depth.value() >=
      static_cast<int64_t>(options_.max_queue);
  if (!conn_full && !queue_full) return false;
  server_.transport().overload_rejections.Increment();
  CompleteInline(
      conn, slot,
      FormatErrorReply(Status::Unavailable(
          conn_full ? "connection pipeline over max_conn_pending; retry"
                    : "solver queue over max_queue; retry")));
  return true;
}

void Loop::SubmitHandleLineTask(Conn& conn, Slot& slot, std::string line) {
  NoteQueued();
  pool_.Submit([this, conn_id = conn.id, seq = slot.seq,
                line = std::move(line), session = conn.session,
                enqueued = SteadyClock::now()] {
    // HandleLine is thread-safe and does its own epoch pinning, so a
    // GROUPBY block here is single-epoch exactly like on the legacy
    // transport. The requests counter is bumped by HandleLine itself.
    queue_wait_hist_->Observe(MicrosSince(enqueued));
    std::ostringstream out;
    server_.HandleLine(line, out, session.get());
    server_.transport().queue_depth.Sub(1);
    completions_->Push({Completion{conn_id, seq, out.str()}});
    Wake();
  });
}

void Loop::DispatchLine(Conn& conn, const std::string& line) {
  const std::vector<std::string> tokens = SplitWhitespace(line);
  if (tokens.empty() || tokens[0][0] == '#') return;  // comment/blank
  std::string cmd = tokens[0];
  for (char& c : cmd) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }

  if (cmd == "QUIT" || cmd == "EXIT") {
    server_.NoteRequestVerb("QUIT");
    Slot& slot = NewSlot(conn);
    CompleteInline(conn, slot, "BYE\n");
    conn.closing = true;  // replies before this slot still flush first
    return;
  }

  if (cmd == "BOUND") {
    if (conn.session->trace.load(std::memory_order_relaxed)) {
      // Traced BOUNDs skip the coalescer: the trace context is per-
      // request state a shared batch cannot carry, and a traced client
      // has opted into per-request handling anyway. HandleLine counts
      // and times the request itself.
      Slot& slot = NewSlot(conn);
      if (RejectIfOverloaded(conn, slot)) {
        server_.NoteRequestVerb("BOUND");
        return;
      }
      SubmitHandleLineTask(conn, slot, line);
      return;
    }
    // The coalescing fast path: parse here (cheap), batch the solve.
    server_.NoteRequestVerb("BOUND");
    Slot& slot = NewSlot(conn);
    if (RejectIfOverloaded(conn, slot)) return;
    const std::shared_ptr<const ShardedBoundSolver> pinned = server_.solver();
    if (pinned == nullptr) {
      CompleteInline(conn, slot,
                     FormatErrorReply(Status::FailedPrecondition(
                         "no snapshot loaded (use LOAD <path>)")));
      return;
    }
    StatusOr<AggQuery> query =
        ParseBoundRequest(tokens, pinned->constraints().num_attrs());
    if (!query.ok()) {
      CompleteInline(conn, slot, FormatErrorReply(query.status()));
      return;
    }
    NoteQueued();
    pending_bounds_.push_back(PendingBound{conn.id, slot.seq,
                                           *std::move(query), line,
                                           SteadyClock::now()});
    if (!batch_deadline_.has_value()) {
      batch_deadline_ = SteadyClock::now() +
                        std::chrono::microseconds(options_.coalesce_us);
    }
    if (pending_bounds_.size() >= options_.max_batch) DispatchBoundBatch();
    return;
  }

  if (cmd == "GROUPBY" || cmd == "LOAD") {
    // Solver-pool work (GROUPBY solves; LOAD builds a whole solver):
    // must not stall the loop, and counts against the admission caps.
    Slot& slot = NewSlot(conn);
    if (RejectIfOverloaded(conn, slot)) {
      server_.NoteRequestVerb(cmd);
      return;
    }
    SubmitHandleLineTask(conn, slot, line);
    return;
  }

  // Everything else — HEALTH, STATS, unknown verbs — answers inline
  // through the one shared dispatcher, so replies and typed errors are
  // byte-identical to the legacy transport's.
  Slot& slot = NewSlot(conn);
  std::ostringstream out;
  server_.HandleLine(line, out, conn.session.get());
  CompleteInline(conn, slot, out.str());
}

void Loop::DispatchBoundBatch() {
  if (pending_bounds_.empty()) return;
  batch_deadline_.reset();
  std::vector<PendingBound> batch = std::exchange(pending_bounds_, {});
  server_.transport().coalesced_batches.Increment();
  server_.transport().coalesced_requests.Increment(batch.size());
  server_.transport().max_batch.MaxWith(static_cast<int64_t>(batch.size()));
  coalesce_batch_hist_->Observe(static_cast<double>(batch.size()));
  for (const PendingBound& p : batch) {
    coalesce_wait_hist_->Observe(MicrosSince(p.enqueued));
  }
  pool_.Submit([this, batch = std::move(batch)] {
    // Pin once for the whole batch: every reply it scatters is computed
    // at exactly this epoch, and BoundBatch is bit-identical to solving
    // the requests one by one.
    const std::shared_ptr<const ShardedBoundSolver> pinned = server_.solver();
    std::vector<Completion> done;
    done.reserve(batch.size());
    if (pinned == nullptr) {
      // A LOAD raced ahead of us and failed, or the server never had a
      // snapshot: same typed error the sequential path gives.
      const std::string err = FormatErrorReply(Status::FailedPrecondition(
          "no snapshot loaded (use LOAD <path>)"));
      for (const PendingBound& p : batch) {
        done.push_back(Completion{p.conn_id, p.seq, err});
      }
    } else {
      std::vector<AggQuery> queries;
      queries.reserve(batch.size());
      for (const PendingBound& p : batch) queries.push_back(p.query);
      std::vector<ShardedBoundSolver::RouteInfo> routes;
      const std::vector<StatusOr<ResultRange>> results =
          pinned->BoundBatch(queries, nullptr, &routes);
      for (size_t i = 0; i < batch.size(); ++i) {
        done.push_back(Completion{batch[i].conn_id, batch[i].seq,
                                  FormatRangeReply(results[i])});
      }
      // Per-request latency (admission to reply ready) feeds the same
      // verb histogram and slow-query log the sequential path uses,
      // routing diagnostics included.
      for (size_t i = 0; i < batch.size(); ++i) {
        server_.NoteRequestLatency("BOUND", batch[i].line,
                                   MicrosSince(batch[i].enqueued), &routes[i]);
      }
      server_.transport().queue_depth.Sub(static_cast<int64_t>(done.size()));
      completions_->Push(std::move(done));
      Wake();
      return;
    }
    for (const PendingBound& p : batch) {
      server_.NoteRequestLatency("BOUND", p.line, MicrosSince(p.enqueued));
    }
    server_.transport().queue_depth.Sub(static_cast<int64_t>(done.size()));
    completions_->Push(std::move(done));
    Wake();
  });
}

void Loop::ApplyCompletions() {
  char drain[256];
  while (::read(wake_read_, drain, sizeof(drain)) > 0) {
  }
  for (Completion& c : completions_->Drain()) {
    Conn* conn = FindConn(c.conn_id);
    if (conn == nullptr) continue;  // client left before its answer
    FillSlot(*conn, c.seq, std::move(c.text));
  }
}

void Loop::FillSlot(Conn& conn, uint64_t seq, std::string text) {
  for (Slot& slot : conn.slots) {
    if (slot.seq != seq) continue;
    if (!slot.done) {
      slot.done = true;
      slot.text = std::move(text);
      --conn.outstanding;
    }
    break;
  }
  FlushSlots(conn);
}

void Loop::FlushSlots(Conn& conn) {
  while (!conn.slots.empty() && conn.slots.front().done) {
    conn.wbuf += conn.slots.front().text;
    conn.slots.pop_front();
  }
  WriteReady(conn);
}

void Loop::WriteReady(Conn& conn) {
  while (!conn.wbuf.empty()) {
    const ssize_t w = ::send(conn.fd, conn.wbuf.data(), conn.wbuf.size(),
                             MSG_NOSIGNAL);
    if (w > 0) {
      conn.wbuf.erase(0, static_cast<size_t>(w));
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Peer is gone mid-reply: costs exactly this connection.
    doomed_.push_back(conn.id);
    return;
  }
  UpdateWriteInterest(conn);
  MaybeFinish(conn);
}

void Loop::MaybeFinish(Conn& conn) {
  if (!conn.wbuf.empty() || !conn.slots.empty()) return;
  if (conn.discarding && !conn.eof) {
    // Every reply (the oversize ERR included) has reached the kernel:
    // half-close so the FIN trails the ERR, then keep discarding the
    // client's backlog until EOF or the budget runs out — closing with
    // unread bytes queued would RST the ERR away.
    ::shutdown(conn.fd, SHUT_WR);
    return;
  }
  if (conn.closing || conn.eof) doomed_.push_back(conn.id);
}

void Loop::ProcessBuffered(Conn& conn) {
  size_t at;
  while (!conn.closing && !conn.discarding &&
         (at = conn.rbuf.find('\n')) != std::string::npos) {
    std::string line = conn.rbuf.substr(0, at);
    conn.rbuf.erase(0, at + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    DispatchLine(conn, line);
  }
  if (!conn.closing && !conn.discarding &&
      conn.rbuf.size() > TcpListener::kMaxRequestLineBytes) {
    // Same contract as the legacy session: one typed ERR, then the
    // connection winds down (with a bounded discard of what the client
    // keeps sending, so the ERR survives the teardown).
    Slot& slot = NewSlot(conn);
    CompleteInline(
        conn, slot,
        "ERR INVALID_ARGUMENT request line exceeds " +
            std::to_string(TcpListener::kMaxRequestLineBytes) + " bytes\n");
    conn.discarding = true;
    conn.discard_budget = 8 * TcpListener::kMaxRequestLineBytes;
    conn.rbuf.clear();
    conn.rbuf.shrink_to_fit();
  }
}

void Loop::ReadReady(Conn& conn) {
  char chunk[16384];
  while (true) {
    const ssize_t n = ::read(conn.fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0) {
      doomed_.push_back(conn.id);
      return;
    }
    if (n == 0) {
      conn.eof = true;
      if (!conn.closing && !conn.discarding && !conn.rbuf.empty()) {
        // EOF with a residual un-terminated line still gets an answer —
        // stdio/TCP/event-loop parity.
        std::string line = std::move(conn.rbuf);
        conn.rbuf.clear();
        if (!line.empty() && line.back() == '\r') line.pop_back();
        DispatchLine(conn, line);
      }
      // Even mid-discard, flush pending replies (the oversize ERR) out
      // before the close; MaybeFinish dooms the conn once wbuf drains.
      FlushSlots(conn);
      MaybeFinish(conn);
      return;
    }
    if (conn.discarding) {
      const size_t got = static_cast<size_t>(n);
      conn.discard_budget -= std::min(conn.discard_budget, got);
      if (conn.discard_budget == 0) {
        doomed_.push_back(conn.id);
        return;
      }
      continue;
    }
    if (!conn.closing) conn.rbuf.append(chunk, static_cast<size_t>(n));
    ProcessBuffered(conn);
  }
  FlushSlots(conn);
}

Status Loop::Run() {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) return Status::Internal("epoll_create1 failed");
  Status status = SetNonBlocking(listener_fd_);
  if (status.ok()) status = EpollAdd(listener_fd_, kListenerId, EPOLLIN);
  if (status.ok()) status = EpollAdd(wake_read_, kWakeId, EPOLLIN);
  if (!status.ok()) {
    ::close(epfd_);
    return status;
  }

  epoll_event events[256];
  while (true) {
    if (stopping_.load()) break;
    // Serve-N-clients mode is done once the last session has ended.
    if (!AcceptingMore() && !accept_rearm_at_.has_value() &&
        conns_.empty() && options_.max_clients != 0) {
      break;
    }

    // The timeout is the nearest deadline: the coalescing window (sub-
    // millisecond windows round up to 1 ms — epoll's granularity) or
    // the accept re-arm after resource exhaustion.
    int timeout_ms = -1;
    const auto deadline_ms = [](SteadyClock::time_point at) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          at - SteadyClock::now());
      return std::max<long long>(0, left.count() + 1);
    };
    if (batch_deadline_.has_value()) {
      timeout_ms = static_cast<int>(deadline_ms(*batch_deadline_));
    }
    if (accept_rearm_at_.has_value()) {
      const int rearm = static_cast<int>(deadline_ms(*accept_rearm_at_));
      timeout_ms = timeout_ms < 0 ? rearm : std::min(timeout_ms, rearm);
    }

    const int n = ::epoll_wait(epfd_, events, 256, timeout_ms);
    if (n < 0 && errno != EINTR) {
      status = Status::Internal(std::string("epoll_wait failed: ") +
                                std::strerror(errno));
      break;
    }
    for (int i = 0; i < std::max(n, 0); ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kListenerId) {
        AcceptReady();
        continue;
      }
      if (id == kWakeId) {
        ApplyCompletions();
        continue;
      }
      Conn* conn = FindConn(id);
      if (conn == nullptr) continue;  // closed earlier in this sweep
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        doomed_.push_back(id);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) WriteReady(*conn);
      if (FindConn(id) == nullptr) continue;
      if ((events[i].events & (EPOLLIN | EPOLLHUP)) != 0) ReadReady(*conn);
    }
    for (const uint64_t id : doomed_) DestroyConn(id);
    doomed_.clear();

    if (batch_deadline_.has_value() &&
        SteadyClock::now() >= *batch_deadline_) {
      DispatchBoundBatch();
    }
    if (accept_rearm_at_.has_value() &&
        SteadyClock::now() >= *accept_rearm_at_) {
      accept_rearm_at_.reset();
      if (AcceptingMore() || options_.max_clients == 0) {
        listener_disarmed_ = false;
        if (!EpollAdd(listener_fd_, kListenerId, EPOLLIN).ok()) {
          listener_disarmed_ = true;
        }
        AcceptReady();
      }
    }
  }

  // Flush any batch still waiting on its window, then drain the pool so
  // no worker touches `server_` after Serve returns. Replies that never
  // made it out die with their connections (Shutdown semantics match
  // the legacy transport's disconnect-in-flight-sessions).
  DispatchBoundBatch();
  pool_.Wait();
  for (auto& [id, conn] : conns_) {
    ::close(conn->fd);
    server_.transport().open_connections.Sub(1);
  }
  conns_.clear();
  ::close(epfd_);
  return status;
}

}  // namespace

StatusOr<EventLoopListener> EventLoopListener::Bind(uint16_t port,
                                                    int backlog) {
  const int listener = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listener < 0) return Status::Internal("socket() failed");
  const int enable = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listener);
    return Status::InvalidArgument("bind() failed on port " +
                                   std::to_string(port));
  }
  if (::listen(listener, backlog) < 0) {
    ::close(listener);
    return Status::Internal("listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    ::close(listener);
    return Status::Internal("getsockname() failed");
  }
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) < 0) {
    ::close(listener);
    return Status::Internal("pipe2() failed");
  }
  return EventLoopListener(listener, ntohs(bound.sin_port), pipe_fds[0],
                           pipe_fds[1]);
}

EventLoopListener::EventLoopListener(int fd, uint16_t port, int wake_read,
                                     int wake_write)
    : fd_(fd),
      port_(port),
      wake_read_(wake_read),
      wake_write_(wake_write),
      stopping_(std::make_shared<std::atomic<bool>>(false)) {}

EventLoopListener::EventLoopListener(EventLoopListener&& other) noexcept
    : fd_(other.fd_),
      port_(other.port_),
      wake_read_(other.wake_read_),
      wake_write_(other.wake_write_),
      stopping_(other.stopping_) {
  other.fd_ = -1;
  other.wake_read_ = -1;
  other.wake_write_ = -1;
}

EventLoopListener& EventLoopListener::operator=(
    EventLoopListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    if (wake_read_ >= 0) ::close(wake_read_);
    if (wake_write_ >= 0) ::close(wake_write_);
    fd_ = other.fd_;
    port_ = other.port_;
    wake_read_ = other.wake_read_;
    wake_write_ = other.wake_write_;
    stopping_ = other.stopping_;
    other.fd_ = -1;
    other.wake_read_ = -1;
    other.wake_write_ = -1;
  }
  return *this;
}

EventLoopListener::~EventLoopListener() {
  if (fd_ >= 0) ::close(fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

void EventLoopListener::Shutdown() {
  if (stopping_ != nullptr) stopping_->store(true);
  if (wake_write_ >= 0) {
    const char byte = 1;
    ssize_t ignored = ::write(wake_write_, &byte, 1);
    (void)ignored;
  }
}

Status EventLoopListener::Serve(BoundServer& server, const Options& options) {
  if (fd_ < 0) return Status::FailedPrecondition("listener is closed");
  Loop loop(server, options, fd_, wake_read_, wake_write_, *stopping_);
  return loop.Run();
}

Status ServeEventLoop(BoundServer& server, uint16_t port,
                      const EventLoopListener::Options& options) {
  StatusOr<EventLoopListener> listener = EventLoopListener::Bind(port);
  if (!listener.ok()) return listener.status();
  return listener->Serve(server, options);
}

}  // namespace pcx

#else  // !__linux__

namespace pcx {

StatusOr<EventLoopListener> EventLoopListener::Bind(uint16_t, int) {
  return Status::Unimplemented("EventLoopListener: Linux epoll only");
}
EventLoopListener::EventLoopListener(int fd, uint16_t port, int wake_read,
                                     int wake_write)
    : fd_(fd), port_(port), wake_read_(wake_read), wake_write_(wake_write) {}
EventLoopListener::EventLoopListener(EventLoopListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}
EventLoopListener& EventLoopListener::operator=(
    EventLoopListener&& other) noexcept {
  fd_ = other.fd_;
  port_ = other.port_;
  other.fd_ = -1;
  return *this;
}
EventLoopListener::~EventLoopListener() = default;
void EventLoopListener::Shutdown() {}
Status EventLoopListener::Serve(BoundServer&, const Options&) {
  return Status::Unimplemented("EventLoopListener: Linux epoll only");
}

Status ServeEventLoop(BoundServer&, uint16_t,
                      const EventLoopListener::Options&) {
  return Status::Unimplemented("ServeEventLoop: Linux epoll only");
}

}  // namespace pcx

#endif
