#ifndef PCX_SERVE_PARTITIONER_H_
#define PCX_SERVE_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "pc/pc_set.h"
#include "route/shard_mask.h"

namespace pcx {

/// How the partitioner spreads predicate-overlap components over shards.
enum class PartitionStrategy {
  /// Components dealt to shards in discovery order, one at a time. The
  /// baseline: oblivious to component size, so one heavy component can
  /// skew a shard (Beame/Koutris/Suciu's "one heavy hitter ruins the
  /// round" in the parallel-query setting).
  kRoundRobin,
  /// Components sorted along the attribute that best spreads them, then
  /// packed into contiguous ranges balancing *estimated cell counts*.
  /// Range contiguity keeps a shard's predicates geometrically close (a
  /// range query then touches few shards) while the cost balancing
  /// mitigates skew from unevenly sized components.
  kAttributeRange,
};

struct PartitionOptions {
  /// Clamped to [1, kMaxShards] by PartitionPcSet: the sharded solver
  /// routes with a 64-bit mask, and the v1 snapshot format inherits the
  /// same ceiling.
  size_t num_shards = 1;
  PartitionStrategy strategy = PartitionStrategy::kAttributeRange;
};

/// A shard assignment of a predicate-constraint set. The invariant that
/// makes sharded serving *exact* (see ShardedBoundSolver): predicates of
/// different shards never overlap, because overlap-connected components
/// are assigned whole. Every cell of the unsharded decomposition is
/// therefore covered by PCs of exactly one shard, and the allocation
/// MILP decomposes per shard with no cross terms.
struct Partition {
  /// Per shard: global PC indices, ascending. Exactly
  /// PartitionOptions::num_shards entries; trailing shards may be empty
  /// when there are fewer components than shards.
  std::vector<std::vector<size_t>> shards;
  /// Per shard: summed estimated decomposition cost (see
  /// EstimateComponentCost).
  std::vector<double> estimated_cost;
  /// Per global PC index: dense id of its overlap component, ids in
  /// discovery order (by smallest member) — the normal form
  /// OverlapComponents produces. ShardedBoundSolver::ApplyDeltas seeds
  /// a union-find from this so appends maintain the component
  /// structure incrementally instead of re-running the O(n^2) scan.
  std::vector<size_t> component_of;
  size_t num_components = 0;
  /// PCs in the largest overlap component — the unsplittable unit. When
  /// this approaches the whole set (e.g. a universal catch-all predicate
  /// overlaps everything), the set is effectively unshardable and every
  /// query degenerates to the single merged shard.
  size_t largest_component = 0;

  /// max shard cost / mean shard cost; 1.0 is perfectly balanced, 0 for
  /// an empty partition. The skew metric reported by pcx_serve STATS
  /// and the partitioner tests.
  double ImbalanceRatio() const;
};

/// Worst-case decomposition cost proxy of one overlap component with
/// `num_pcs` predicates: cells are sign assignments, so up to 2^m - 1,
/// capped to keep sums finite. Single-PC components cost 1 (the greedy
/// fast path is linear).
double EstimateComponentCost(size_t num_pcs);

/// Connected components of the pairwise predicate-intersection graph
/// (the same IntersectionEmpty-under-domains criterion the solver's
/// disjointness detection uses, so "every component is a singleton" is
/// exactly "the predicates are pairwise disjoint"). Components are in
/// discovery order (by smallest member); members ascend. One O(n^2)
/// scan — PartitionPcSet and the snapshot-loading path both build on
/// this instead of re-scanning.
std::vector<std::vector<size_t>> OverlapComponents(
    const PredicateConstraintSet& pcs,
    const std::vector<AttrDomain>& domains);

/// Splits `pcs` into `options.num_shards` shards. Overlap components
/// (connected components of the pairwise predicate-intersection graph,
/// computed under `domains`) are never split across shards; within a
/// shard, global PC order is preserved — both are required by
/// ShardedBoundSolver's bit-identity guarantee.
Partition PartitionPcSet(const PredicateConstraintSet& pcs,
                         const std::vector<AttrDomain>& domains,
                         const PartitionOptions& options);

}  // namespace pcx

#endif  // PCX_SERVE_PARTITIONER_H_
