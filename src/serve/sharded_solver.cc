#include "serve/sharded_solver.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

#include "common/check.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace pcx {
namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Exact combine of per-shard ranges for a decomposable aggregate.
/// Sound because shard regions are disjoint and shard constraints are
/// independent: any tuple of per-shard instances composes into one
/// valid instance of the whole set, and vice versa.
ResultRange CombineShardRanges(AggFunc agg,
                               const std::vector<ResultRange>& ranges) {
  ResultRange out;
  switch (agg) {
    case AggFunc::kCount:
    case AggFunc::kSum: {
      // Totals add across disjoint shard regions.
      out.defined = true;
      out.empty_instance_possible = true;
      for (const ResultRange& r : ranges) {
        out.lo += r.lo;
        out.hi += r.hi;
        out.empty_instance_possible &= r.empty_instance_possible;
      }
      return out;
    }
    case AggFunc::kMax:
    case AggFunc::kMin: {
      // A shard that must host matching rows (empty impossible) but
      // cannot (undefined) poisons the whole set: no valid instance has
      // a matching row configuration at all.
      bool poison = false, any_defined = false, any_mandatory = false;
      bool empty_all = true;
      for (const ResultRange& r : ranges) {
        poison |= !r.defined && !r.empty_instance_possible;
        any_defined |= r.defined;
        any_mandatory |= !r.empty_instance_possible;
        empty_all &= r.empty_instance_possible;
      }
      out.empty_instance_possible = empty_all;
      if (poison || !any_defined) {
        out.defined = false;
        return out;
      }
      out.defined = true;
      const bool is_max = agg == AggFunc::kMax;
      // Extreme end: best achievable extreme over any single shard.
      double best_extreme = 0.0;
      bool have = false;
      for (const ResultRange& r : ranges) {
        if (!r.defined) continue;
        const double v = is_max ? r.hi : r.lo;
        if (!have || (is_max ? v > best_extreme : v < best_extreme)) {
          best_extreme = v;
          have = true;
        }
      }
      // Conservative end (the least the MAX / the most the MIN can be,
      // over instances with >= 1 matching row): mandatory shards each
      // force their own extreme, and the binding one wins; if every
      // shard may be empty, the single cheapest shard hosts the row.
      double other_end = 0.0;
      bool have_other = false;
      if (any_mandatory) {
        for (const ResultRange& r : ranges) {
          if (r.empty_instance_possible) continue;
          const double v = is_max ? r.lo : r.hi;
          if (!have_other || (is_max ? v > other_end : v < other_end)) {
            other_end = v;
            have_other = true;
          }
        }
      } else {
        for (const ResultRange& r : ranges) {
          if (!r.defined) continue;
          const double v = is_max ? r.lo : r.hi;
          if (!have_other || (is_max ? v < other_end : v > other_end)) {
            other_end = v;
            have_other = true;
          }
        }
      }
      PCX_CHECK(have && have_other);
      if (is_max) {
        out.hi = best_extreme;
        out.lo = other_end;
      } else {
        out.lo = best_extreme;
        out.hi = other_end;
      }
      return out;
    }
    case AggFunc::kAvg:
      break;
  }
  PCX_CHECK(false) << "CombineShardRanges: non-decomposable aggregate";
  return out;
}

}  // namespace

ShardedBoundSolver::ShardedBoundSolver(PredicateConstraintSet pcs,
                                       std::vector<AttrDomain> domains)
    : ShardedBoundSolver(std::move(pcs), std::move(domains), Options{}) {}

ShardedBoundSolver::ShardedBoundSolver(const Snapshot& snapshot)
    : ShardedBoundSolver(snapshot, Options{}) {}

ShardedBoundSolver::ShardedBoundSolver(PredicateConstraintSet pcs,
                                       std::vector<AttrDomain> domains,
                                       Options options)
    : flat_(std::move(pcs)),
      domains_(std::move(domains)),
      options_(options),
      configured_options_(options) {
  partition_ = PartitionPcSet(flat_, domains_, options_.partition);
  BuildShards();
}

ShardedBoundSolver::ShardedBoundSolver(const Snapshot& snapshot,
                                       Options options)
    : flat_(snapshot.Flatten()),
      domains_(snapshot.domains),
      options_(options),
      configured_options_(options),
      epoch_(snapshot.epoch) {
  // Adopt the stored shard layout verbatim; re-derive the balance
  // metadata from the component structure (a property of the set, not
  // of the file) so STATS reports the same numbers the snapshot
  // builder printed. One O(n^2) scan serves components, costs, and the
  // disjointness verdict in BuildShards.
  partition_.shards.clear();
  for (const SnapshotShard& s : snapshot.shards) {
    partition_.shards.push_back(s.indices);
  }
  if (partition_.shards.empty()) partition_.shards.push_back({});
  partition_.estimated_cost.assign(partition_.shards.size(), 0.0);

  std::vector<size_t> shard_of(flat_.size(), 0);
  for (size_t s = 0; s < partition_.shards.size(); ++s) {
    for (size_t i : partition_.shards[s]) shard_of[i] = s;
  }
  partition_.component_of.assign(flat_.size(), 0);
  for (const std::vector<size_t>& comp :
       OverlapComponents(flat_, domains_)) {
    for (size_t i : comp) partition_.component_of[i] = partition_.num_components;
    ++partition_.num_components;
    partition_.largest_component =
        std::max(partition_.largest_component, comp.size());
    // Components are whole on one shard in well-formed snapshots; a
    // hand-built file that splits one gets its cost attributed to the
    // first member's shard (a metric, not a correctness input).
    partition_.estimated_cost[shard_of[comp.front()]] +=
        EstimateComponentCost(comp.size());
  }
  BuildShards();
}

ShardedBoundSolver::ShardedBoundSolver(
    IncrementalTag, PredicateConstraintSet flat,
    std::vector<AttrDomain> domains, Options configured, Partition partition,
    uint64_t epoch,
    const std::vector<std::shared_ptr<const PcBoundSolver>>& reuse)
    : flat_(std::move(flat)),
      domains_(std::move(domains)),
      options_(configured),
      configured_options_(configured),
      partition_(std::move(partition)),
      epoch_(epoch) {
  BuildShards(&reuse);
}

void ShardedBoundSolver::BuildShards(
    const std::vector<std::shared_ptr<const PcBoundSolver>>* reuse) {
  PCX_CHECK(partition_.shards.size() <= kMaxShards)
      << "ShardedBoundSolver routes with a 64-bit shard mask";
  // Every overlap component a singleton <=> pairwise disjoint: the
  // component scan uses the same IntersectionEmpty criterion as
  // PredicatesDisjoint, so the verdict (already paid for by both
  // constructors) matches the unsharded solver's bit for bit.
  flat_disjoint_ = options_.solver.auto_disjoint_fast_path &&
                   partition_.num_components == flat_.size();
  // A shard's subset can be pairwise disjoint even when the full set is
  // not; taking the greedy fast path there would change the arithmetic
  // relative to the unsharded solver, so the verdict of the *full* set
  // is imposed on every shard and union solver. In the disjoint case
  // the verdict transfers to every subset, so shard/union construction
  // skips the O(m^2) re-detection — without this, building a memoized
  // union solver would cost more than the queries it serves.
  if (flat_disjoint_) {
    options_.solver.assume_predicates_disjoint = true;
  } else {
    options_.solver.auto_disjoint_fast_path = false;
  }

  if (options_.metrics != nullptr) {
    union_solve_hist_ = &options_.metrics->GetHistogram(
        "pcx_shard_solve_latency_us", {{"shard", "union"}},
        "BOUND solve latency per shard (microseconds)");
  }

  always_relevant_.assign(flat_.size(), 0);
  for (size_t i = 0; i < flat_.size(); ++i) {
    // A degenerate empty predicate box intersects nothing, yet
    // Box::Covers can still report the query region covering it (the
    // frequency lower bound then applies). Keep such constraints in
    // every union rather than reasoning about that corner per query.
    if (flat_.at(i).predicate().box().IsEmpty(domains_)) {
      always_relevant_[i] = 1;
    }
  }

  shards_.clear();
  const size_t num_attrs = flat_.num_attrs();
  for (size_t s = 0; s < partition_.shards.size(); ++s) {
    const std::vector<size_t>& indices = partition_.shards[s];
    Shard shard;
    shard.indices = indices;
    PredicateConstraintSet subset;
    shard.bbox = Box(num_attrs);
    for (size_t d = 0; d < num_attrs; ++d) {
      shard.bbox.SetDim(d, Interval::Closed(
                               std::numeric_limits<double>::infinity(),
                               -std::numeric_limits<double>::infinity()));
    }
    for (size_t i : indices) {
      subset.Add(flat_.at(i));
      shard.always_relevant |= always_relevant_[i] != 0;
      const Box& pred = flat_.at(i).predicate().box();
      for (size_t d = 0; d < num_attrs; ++d) {
        // Closed-bound hull: a superset of every member box, so a miss
        // of the hull is a miss of all members.
        const Interval& cur = shard.bbox.dim(d);
        shard.bbox.SetDim(
            d, Interval{std::min(cur.lo, pred.dim(d).lo),
                        std::max(cur.hi, pred.dim(d).hi), false, false});
      }
    }
    if (options_.metrics != nullptr) {
      shard.solve_hist = &options_.metrics->GetHistogram(
          "pcx_shard_solve_latency_us", {{"shard", std::to_string(s)}},
          "BOUND solve latency per shard (microseconds)");
    }
    if (reuse != nullptr && s < reuse->size() && (*reuse)[s] != nullptr) {
      // An untouched shard: identical subset, order, and effective
      // solver options — the predecessor's decomposition is the one a
      // fresh build would produce.
      shard.solver = (*reuse)[s];
    } else {
      shard.solver = std::make_shared<const PcBoundSolver>(
          std::move(subset), domains_, options_.solver);
    }
    shards_.push_back(std::move(shard));
  }

  // Compile the hull-level route index over the non-empty shards (one
  // box per shard: its closed-bound hull). Member-level confirmation
  // reuses each shard solver's own predicate-box index, so the only
  // structure built here is O(K log K) — and an untouched shard's
  // member index rode along with its reused solver above.
  nonempty_mask_ = 0;
  always_mask_ = 0;
  hull_shard_.clear();
  std::vector<Box> hulls;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].indices.empty()) continue;
    nonempty_mask_ |= ShardBit(s);
    if (shards_[s].always_relevant) always_mask_ |= ShardBit(s);
    hulls.push_back(shards_[s].bbox);
    hull_shard_.push_back(static_cast<uint32_t>(s));
  }
  hull_index_ =
      std::make_unique<const route::RouteIndex>(std::move(hulls), domains_);

  if (options_.metrics != nullptr) {
    route_hits_ = &options_.metrics->GetCounter(
        "pcx_route_index_hits_total", {},
        "BOUND queries routed via the compiled route index");
    route_fallbacks_ = &options_.metrics->GetCounter(
        "pcx_route_index_fallbacks_total", {},
        "BOUND queries routed by the linear scan (mode or index absent)");
    route_fanout_hist_ = &options_.metrics->GetHistogram(
        "pcx_route_fanout", {}, "shards per routed BOUND query");
    const route::RouteIndexStats totals = RouteIndexTotals();
    options_.metrics
        ->GetGauge("pcx_route_index_nodes", {},
                   "endpoint records across all compiled route lanes")
        .Set(static_cast<int64_t>(totals.num_entries));
    options_.metrics
        ->GetGauge("pcx_route_index_depth", {},
                   "max binary-search depth of any route-lane probe")
        .Set(static_cast<int64_t>(totals.depth));
  }
}

route::RouteIndexStats ShardedBoundSolver::RouteIndexTotals() const {
  route::RouteIndexStats total;
  if (hull_index_ != nullptr) total = hull_index_->stats();
  for (const Shard& shard : shards_) {
    const route::RouteIndex* idx =
        shard.solver != nullptr ? shard.solver->route_index() : nullptr;
    if (idx == nullptr) continue;
    const route::RouteIndexStats& s = idx->stats();
    total.num_boxes += s.num_boxes;
    total.num_lanes += s.num_lanes;
    total.num_entries += s.num_entries;
    total.depth = std::max(total.depth, s.depth);
  }
  return total;
}

StatusOr<std::shared_ptr<const ShardedBoundSolver>>
ShardedBoundSolver::ApplyDeltas(std::span<const DeltaRecord> records) const {
  // Working state, keyed by *key*: a stable id that is the original
  // global index for survivors of flat_ and n, n+1, ... for appends.
  // Keys only ever grow, and `order` (the alive keys in global order)
  // stays ascending — appends attach at the end, retires only remove —
  // so the final reindex is a single monotone scan.
  std::vector<PredicateConstraint> pc_of_key(flat_.constraints().begin(),
                                             flat_.constraints().end());
  std::vector<size_t> order(flat_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<size_t> shard_of_key(flat_.size(), 0);
  std::vector<std::vector<size_t>> members(shards_.size());
  std::vector<Box> hull;
  std::vector<char> touched(shards_.size(), 0);
  hull.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    members[s] = shards_[s].indices;
    for (size_t k : members[s]) shard_of_key[k] = s;
    hull.push_back(shards_[s].bbox);
  }

  // The overlap-component structure is maintained incrementally in a
  // union-find keyed like pc_of_key, seeded from the predecessor's
  // component ids. An append only ever *adds* overlap edges (new
  // constraint <-> every overlapping alive constraint), so unioning
  // along exactly those edges keeps the structure the transitive
  // closure OverlapComponents would compute — without its O(n^2)
  // rescan. The one mutation the bookkeeping cannot follow is retiring
  // a member of a multi-member component (the component may split);
  // only that case falls back to the full rescan below.
  std::vector<size_t> parent(pc_of_key.size());
  std::vector<size_t> comp_size(pc_of_key.size(), 1);
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&parent](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  // Union by smallest key, so a component's root is its first member —
  // the same representative OverlapComponents discovery order uses.
  auto unite = [&](size_t a, size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent[b] = a;
    comp_size[a] += comp_size[b];
  };
  bool components_exact = partition_.component_of.size() == flat_.size();
  if (components_exact) {
    std::vector<size_t> first_of_comp(partition_.num_components, SIZE_MAX);
    for (size_t i = 0; i < flat_.size(); ++i) {
      const size_t c = partition_.component_of[i];
      if (c >= first_of_comp.size()) {
        components_exact = false;  // inconsistent hand-built metadata
        break;
      }
      if (first_of_comp[c] == SIZE_MAX) {
        first_of_comp[c] = i;
      } else {
        unite(first_of_comp[c], i);
      }
    }
  }

  uint64_t epoch = epoch_;
  bool checkpointed = false;
  for (const DeltaRecord& rec : records) {
    if (rec.epoch != epoch + 1) {
      return Status::FailedPrecondition(
          "delta record carries epoch " + std::to_string(rec.epoch) +
          " onto a solver at epoch " + std::to_string(epoch));
    }
    switch (rec.op) {
      case DeltaOp::kAppend: {
        if (flat_.num_attrs() > 0 && rec.pc.num_attrs() != flat_.num_attrs()) {
          return Status::InvalidArgument(
              "appended constraint has " + std::to_string(rec.pc.num_attrs()) +
              " attributes; the set has " + std::to_string(flat_.num_attrs()));
        }
        const Box& box = rec.pc.predicate().box();
        // Shards whose members the new predicate overlaps, and one
        // representative key per overlapped component. The hull is a
        // conservative superset (retires leave it stale), so a hull hit
        // is confirmed against actual members; every alive constraint
        // belongs to exactly one shard, so this scan is the exact
        // overlap test OverlapComponents would run. Members whose
        // component is already known to overlap skip the box test —
        // components are whole on one shard, so the skip never loses a
        // shard target either.
        std::vector<size_t> targets;
        std::vector<size_t> overlap_roots;
        for (size_t s = 0; s < members.size(); ++s) {
          if (members[s].empty()) continue;
          if (box.IntersectionEmpty(hull[s], domains_)) continue;
          bool hit = false;
          for (size_t k : members[s]) {
            const size_t r = find(k);
            if (std::find(overlap_roots.begin(), overlap_roots.end(), r) !=
                overlap_roots.end()) {
              continue;
            }
            if (!box.IntersectionEmpty(pc_of_key[k].predicate().box(),
                                       domains_)) {
              overlap_roots.push_back(r);
              hit = true;
            }
          }
          if (hit) targets.push_back(s);
        }
        size_t home;
        if (targets.empty()) {
          // A fresh component: keep shard sizes level (lowest id wins
          // ties so the choice is deterministic).
          home = 0;
          for (size_t s = 1; s < members.size(); ++s) {
            if (members[s].size() < members[home].size()) home = s;
          }
        } else {
          home = targets.front();
          // The append bridges several components: merge their shards
          // into the lowest-id target so components stay whole.
          for (size_t t = 1; t < targets.size(); ++t) {
            const size_t from = targets[t];
            for (size_t k : members[from]) shard_of_key[k] = home;
            members[home].insert(members[home].end(), members[from].begin(),
                                 members[from].end());
            members[from].clear();
            touched[from] = 1;
            for (size_t d = 0; d < hull[home].num_attrs(); ++d) {
              const Interval& a = hull[home].dim(d);
              const Interval& b = hull[from].dim(d);
              hull[home].SetDim(d, Interval{std::min(a.lo, b.lo),
                                            std::max(a.hi, b.hi), false,
                                            false});
            }
          }
        }
        const size_t key = pc_of_key.size();
        parent.push_back(key);
        comp_size.push_back(1);
        for (size_t r : overlap_roots) unite(key, r);
        pc_of_key.push_back(rec.pc);
        shard_of_key.push_back(home);
        order.push_back(key);
        members[home].push_back(key);
        touched[home] = 1;
        for (size_t d = 0; d < hull[home].num_attrs(); ++d) {
          const Interval& cur = hull[home].dim(d);
          hull[home].SetDim(d, Interval{std::min(cur.lo, box.dim(d).lo),
                                        std::max(cur.hi, box.dim(d).hi),
                                        false, false});
        }
        break;
      }
      case DeltaOp::kRetire: {
        if (rec.retire_index >= order.size()) {
          return Status::OutOfRange(
              "retire index " + std::to_string(rec.retire_index) +
              " out of range for " + std::to_string(order.size()) +
              " constraints");
        }
        const size_t key = order[rec.retire_index];
        order.erase(order.begin() + static_cast<ptrdiff_t>(rec.retire_index));
        const size_t s = shard_of_key[key];
        std::vector<size_t>& m = members[s];
        m.erase(std::find(m.begin(), m.end(), key));
        touched[s] = 1;
        // The hull goes stale (conservative only) rather than being
        // recomputed; routing stays correct, just occasionally wider —
        // until the next CHECKPOINT re-partitions and tightens it.
        // A retired singleton component simply disappears (the dead key
        // is never scanned again); retiring out of a larger component
        // may split it, which the union-find cannot express.
        if (comp_size[find(key)] > 1) components_exact = false;
        break;
      }
      case DeltaOp::kCheckpoint:
        // An epoch bump marking "a fresh base follows"; membership is
        // untouched (the server persists the snapshot separately), but
        // the layout is rebuilt below: a fresh base deserves the
        // routing selectivity of a fresh LOAD.
        checkpointed = true;
        break;
    }
    ++epoch;
  }

  // Reindex: new global index of a key = its rank in `order`.
  std::vector<size_t> new_index_of_key(pc_of_key.size(), 0);
  PredicateConstraintSet new_flat;
  for (size_t i = 0; i < order.size(); ++i) {
    new_index_of_key[order[i]] = i;
    new_flat.Add(pc_of_key[order[i]]);
  }

  if (checkpointed) {
    // CHECKPOINT: discard the incrementally-maintained layout and
    // re-partition the final set from scratch at the *current* width
    // (snapshot-adopted solvers carry the default num_shards=1 in their
    // configured options; collapsing a server's layout on checkpoint
    // would be a regression, not a cleanup). Shards merged by bridge
    // appends split back apart and retire-staled hulls come out tight,
    // so the route mask of a post-checkpoint query shrinks back to what
    // a from-scratch LOAD of the same set would compute. Answers are
    // unaffected: they are assembled in global constraint order, which
    // is layout-independent. No shard solver is reusable across a
    // re-partition; the rebuild is the price of a fresh base, paid at
    // checkpoint cadence rather than per query.
    PartitionOptions popts = configured_options_.partition;
    popts.num_shards = partition_.shards.size();
    Partition fresh = PartitionPcSet(new_flat, domains_, popts);
    return std::shared_ptr<const ShardedBoundSolver>(new ShardedBoundSolver(
        IncrementalTag{}, std::move(new_flat), domains_, configured_options_,
        std::move(fresh), epoch,
        std::vector<std::shared_ptr<const PcBoundSolver>>()));
  }

  Partition partition;
  partition.shards.resize(members.size());
  for (size_t s = 0; s < members.size(); ++s) {
    // Keys ascend within a shard except across a merge splice; sorting
    // restores the ascending-global-index invariant either way.
    std::sort(members[s].begin(), members[s].end());
    partition.shards[s].reserve(members[s].size());
    for (size_t k : members[s]) {
      partition.shards[s].push_back(new_index_of_key[k]);
    }
  }
  partition.estimated_cost.assign(members.size(), 0.0);
  partition.component_of.assign(new_flat.size(), 0);
  std::vector<size_t> shard_of(new_flat.size(), 0);
  for (size_t s = 0; s < partition.shards.size(); ++s) {
    for (size_t i : partition.shards[s]) shard_of[i] = s;
  }
  if (components_exact) {
    // Read the maintained structure off the union-find: walking alive
    // keys in ascending order and numbering roots on first sight yields
    // the same dense ids, sizes, and cost attribution (to the shard of
    // a component's smallest member) the rescan below would produce.
    std::vector<size_t> id_of_root(parent.size(), SIZE_MAX);
    std::vector<size_t> count;
    std::vector<size_t> first_shard;
    for (size_t i = 0; i < order.size(); ++i) {
      const size_t r = find(order[i]);
      if (id_of_root[r] == SIZE_MAX) {
        id_of_root[r] = count.size();
        count.push_back(0);
        first_shard.push_back(shard_of[i]);
      }
      partition.component_of[i] = id_of_root[r];
      ++count[id_of_root[r]];
    }
    partition.num_components = count.size();
    for (size_t c = 0; c < count.size(); ++c) {
      partition.largest_component =
          std::max(partition.largest_component, count[c]);
      partition.estimated_cost[first_shard[c]] +=
          EstimateComponentCost(count[c]);
    }
  } else {
    for (const std::vector<size_t>& comp :
         OverlapComponents(new_flat, domains_)) {
      for (size_t i : comp) partition.component_of[i] = partition.num_components;
      ++partition.num_components;
      partition.largest_component =
          std::max(partition.largest_component, comp.size());
      partition.estimated_cost[shard_of[comp.front()]] +=
          EstimateComponentCost(comp.size());
    }
  }

  // An untouched shard's solver is reusable only if the *effective*
  // options a fresh build would apply to it are the options it was
  // built under — i.e. the full-set disjointness verdict is unchanged.
  const bool verdict_now = configured_options_.solver.auto_disjoint_fast_path &&
                           partition.num_components == new_flat.size();
  std::vector<std::shared_ptr<const PcBoundSolver>> reuse(shards_.size());
  if (verdict_now == flat_disjoint_) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (touched[s] == 0) reuse[s] = shards_[s].solver;
    }
  }

  return std::shared_ptr<const ShardedBoundSolver>(new ShardedBoundSolver(
      IncrementalTag{}, std::move(new_flat), domains_, configured_options_,
      std::move(partition), epoch, reuse));
}

ShardMask ShardedBoundSolver::RouteMask(const AggQuery& query) const {
  switch (options_.route_mode) {
    case route::RouteMode::kLinear:
      return RouteMaskLinear(query);
    case route::RouteMode::kIndex:
      return RouteMaskIndexed(query);
    case route::RouteMode::kVerify: {
      const ShardMask idx = RouteMaskIndexed(query);
      const ShardMask lin = RouteMaskLinear(query);
      PCX_CHECK_EQ(idx, lin)
          << "compiled route index disagrees with the linear oracle";
      return idx;
    }
  }
  return RouteMaskLinear(query);
}

ShardMask ShardedBoundSolver::RouteMaskLinear(const AggQuery& query) const {
  ShardMask mask = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    if (shard.indices.empty()) continue;
    if (shard.always_relevant || !query.where.has_value()) {
      mask |= ShardBit(s);
      continue;
    }
    const Box& w = query.where->box();
    // Hull miss => every member misses; shard-local queries route in
    // O(K) instead of O(n).
    if (shard.bbox.IntersectionEmpty(w, domains_)) continue;
    for (size_t i : shard.indices) {
      if (!flat_.at(i).predicate().box().IntersectionEmpty(w, domains_)) {
        mask |= ShardBit(s);
        break;
      }
    }
  }
  return mask;
}

ShardMask ShardedBoundSolver::RouteMaskIndexed(const AggQuery& query) const {
  // No WHERE: every non-empty shard is relevant, exactly the bits the
  // linear scan's per-shard `!where` branch sets.
  if (!query.where.has_value()) return nonempty_mask_;
  const Box& w = query.where->box();
  // Always-relevant shards bypass both hull and member tests, mirroring
  // the linear scan's ordering (it sets the bit before the hull test).
  ShardMask mask = always_mask_;
  if (hull_index_ == nullptr) return RouteMaskLinear(query);
  // Stab the hull index: candidates are exactly the non-empty shards
  // whose hull intersects the WHERE box (the linear scan's hull test,
  // found in O(log K) instead of O(K)). Each candidate is confirmed
  // against actual members — the same member scan the oracle runs, but
  // through the shard solver's compiled predicate-box index.
  // Scratch reused across queries: routing is on every BOUND's critical
  // path and must not pay a heap allocation per call.
  static thread_local std::vector<uint32_t> candidates;
  hull_index_->CollectIntersecting(w, &candidates);
  for (uint32_t id : candidates) {
    const size_t s = hull_shard_[id];
    if ((mask >> s) & 1) continue;  // already in via always_mask_
    const Shard& shard = shards_[s];
    const route::RouteIndex* members =
        shard.solver != nullptr ? shard.solver->route_index() : nullptr;
    if (members != nullptr) {
      if (members->AnyIntersects(w)) mask |= ShardBit(s);
      continue;
    }
    // Member index absent (solver built with use_route_index off):
    // linear member confirmation, identical to the oracle's inner loop.
    for (size_t i : shard.indices) {
      if (!flat_.at(i).predicate().box().IntersectionEmpty(w, domains_)) {
        mask |= ShardBit(s);
        break;
      }
    }
  }
  return mask;
}

std::shared_ptr<const PcBoundSolver> ShardedBoundSolver::SolverFor(
    ShardMask mask) const {
  if (std::popcount(mask) == 1) {
    // The prebuilt shard solver, shared as-is.
    return shards_[static_cast<size_t>(std::countr_zero(mask))].solver;
  }
  MutexLock lock(cache_mu_);
  auto it = union_cache_.find(mask);
  if (it != union_cache_.end()) return it->second;

  // Assemble the union in ascending global order — the order the
  // unsharded solver sees — so decomposition, MILP rows and greedy sums
  // run through the identical sequence of operations.
  std::vector<size_t> indices;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if ((mask >> s) & 1) {
      indices.insert(indices.end(), shards_[s].indices.begin(),
                     shards_[s].indices.end());
    }
  }
  std::sort(indices.begin(), indices.end());
  PredicateConstraintSet subset;
  for (size_t i : indices) subset.Add(flat_.at(i));
  auto solver = std::make_shared<const PcBoundSolver>(
      std::move(subset), domains_, options_.solver);
  {
    // cache_mu_ is held; stats_mu_ nests inside it (the documented
    // lock order) for just this increment.
    MutexLock stats_lock(stats_mu_);
    ++serve_stats_.union_solvers_built;
  }
  // Bounded memo: flush wholesale at the cap (rare; shard-spanning mask
  // diversity is usually tiny). Shared ownership keeps solvers already
  // handed out alive until their queries finish.
  if (union_cache_.size() >= kMaxUnionSolvers) union_cache_.clear();
  union_cache_.emplace(mask, solver);
  return solver;
}

StatusOr<ResultRange> ShardedBoundSolver::BoundOne(
    const AggQuery& query, PcBoundSolver::SolveStats& stats,
    ServeStats& local, bool parallel, RouteInfo* route) const {
  ++local.queries;
  // Mirrors the unsharded solver's up-front validation so a misrouted
  // query (e.g. one whose WHERE touches no shard) still fails the same
  // way instead of silently answering over an empty set.
  if (query.agg != AggFunc::kCount && !flat_.empty() &&
      query.attr >= flat_.num_attrs()) {
    return Status::InvalidArgument("aggregate attribute out of range");
  }

  ShardMask mask;
  {
    // No-op (no clock reads) unless this thread carries a TraceContext.
    TraceSpan route_span("route");
    mask = RouteMask(query);
  }
  const bool index_used =
      options_.route_mode != route::RouteMode::kLinear &&
      hull_index_ != nullptr;
  if (index_used) {
    ++local.route_index_queries;
    if (route_hits_ != nullptr) route_hits_->Increment();
  } else {
    ++local.route_fallback_queries;
    if (route_fallbacks_ != nullptr) route_fallbacks_->Increment();
  }
  const int bits = std::popcount(mask);
  if (route_fanout_hist_ != nullptr) {
    // Fan-out as routed (before the no-shard fallback below widens an
    // empty mask to one shard): the signal for partition selectivity.
    route_fanout_hist_->Observe(static_cast<double>(bits));
  }
  if (route != nullptr) {
    route->shards = static_cast<uint32_t>(bits);
    route->index_used = index_used;
  }
  if (bits == 0) {
    ++local.no_shard_queries;
    // No predicate can intersect the region, but the answer is still
    // defined over a non-empty set (e.g. MIN negation yields -0.0, and
    // an empty-set solver would answer +0.0). Any one shard performs
    // the identical zero-cell computation the unsharded solver would.
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (!shards_[s].indices.empty()) {
        mask = ShardBit(s);
        break;
      }
    }
  } else if (bits == 1) {
    ++local.single_shard_queries;
  } else {
    ++local.multi_shard_queries;
  }

  if (options_.scatter_gather && bits >= 2 && query.agg != AggFunc::kAvg) {
    ++local.scatter_queries;
    return ScatterGather(query, mask, stats, parallel);
  }

  const std::shared_ptr<const PcBoundSolver> solver = SolverFor(mask);
  // mask can stay 0 only over an all-empty partition (empty-set solver).
  Histogram* hist = nullptr;
  if (options_.metrics != nullptr && mask != 0) {
    hist = bits >= 2
               ? union_solve_hist_
               : shards_[static_cast<size_t>(std::countr_zero(mask))]
                     .solve_hist;
  }
  TraceContext* trace = CurrentTrace();
  if (hist == nullptr && trace == nullptr) {
    return solver->BoundWithStats(query, stats);
  }
  const auto start = std::chrono::steady_clock::now();
  auto result = solver->BoundWithStats(query, stats);
  const double us = MicrosSince(start);
  if (hist != nullptr) hist->Observe(us);
  if (trace != nullptr) trace->AddShardSolve(us);
  return result;
}

StatusOr<ResultRange> ShardedBoundSolver::ScatterGather(
    const AggQuery& query, ShardMask mask, PcBoundSolver::SolveStats& stats,
    bool parallel) const {
  std::vector<size_t> targets;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if ((mask >> s) & 1) targets.push_back(s);
  }
  std::vector<StatusOr<ResultRange>> results(
      targets.size(), StatusOr<ResultRange>(Status::Internal("unset")));
  std::vector<PcBoundSolver::SolveStats> shard_stats(targets.size());

  // Per-target timing feeds the per-shard histograms and the trace.
  // The trace is read on this thread and appended after the join: pool
  // workers carry no TraceContext of their own.
  TraceContext* trace = CurrentTrace();
  const bool timed = options_.metrics != nullptr || trace != nullptr;
  std::vector<double> target_us(targets.size(), 0.0);

  auto run_one = [&](size_t t) {
    if (!timed) {
      results[t] = shards_[targets[t]].solver->BoundWithStats(query,
                                                              shard_stats[t]);
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    results[t] = shards_[targets[t]].solver->BoundWithStats(query,
                                                            shard_stats[t]);
    target_us[t] = MicrosSince(start);
  };
  if (parallel && options_.num_threads != 1 && targets.size() > 1) {
    // The pool lives for one query; never spin up more workers than
    // there are shard solves to hand them.
    const size_t width = options_.num_threads == 0
                             ? targets.size()
                             : std::min(options_.num_threads, targets.size());
    ThreadPool pool(width);
    pool.ParallelFor(targets.size(), run_one);
  } else {
    for (size_t t = 0; t < targets.size(); ++t) run_one(t);
  }

  // All shards ran; account for all of their work before surfacing the
  // first failure (in shard order, deterministically) — operators read
  // the counters precisely when something went wrong.
  for (const PcBoundSolver::SolveStats& s : shard_stats) stats += s;
  if (timed) {
    for (size_t t = 0; t < targets.size(); ++t) {
      Histogram* hist = shards_[targets[t]].solve_hist;
      if (hist != nullptr) hist->Observe(target_us[t]);
      if (trace != nullptr) trace->AddShardSolve(target_us[t]);
    }
  }
  std::vector<ResultRange> ranges;
  ranges.reserve(targets.size());
  for (size_t t = 0; t < targets.size(); ++t) {
    if (!results[t].ok()) return results[t].status();
    ranges.push_back(*results[t]);
  }
  return CombineShardRanges(query.agg, ranges);
}

StatusOr<ResultRange> ShardedBoundSolver::Bound(const AggQuery& query) const {
  return Bound(query, nullptr);
}

StatusOr<ResultRange> ShardedBoundSolver::Bound(const AggQuery& query,
                                                RouteInfo* route) const {
  PcBoundSolver::SolveStats stats;
  ServeStats local;
  auto result = BoundOne(query, stats, local, /*parallel=*/true, route);
  local.solve += stats;
  MergeServeStats(local);
  return result;
}

std::vector<StatusOr<ResultRange>> ShardedBoundSolver::BoundBatch(
    std::span<const AggQuery> queries,
    std::vector<PcBoundSolver::SolveStats>* per_query_stats,
    std::vector<RouteInfo>* per_query_route) const {
  std::vector<std::optional<StatusOr<ResultRange>>> slots(queries.size());
  std::vector<PcBoundSolver::SolveStats> stats(queries.size());
  std::vector<ServeStats> locals(queries.size());
  std::vector<RouteInfo> routes(queries.size());

  // Per-query scatter fan-out stays sequential inside a batch worker —
  // the batch itself is the parallel axis (no nested pools).
  auto run_one = [&](size_t i) {
    slots[i].emplace(BoundOne(queries[i], stats[i], locals[i],
                              /*parallel=*/false, &routes[i]));
  };
  if (options_.num_threads == 1 || queries.size() <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) run_one(i);
  } else {
    ThreadPool pool(options_.num_threads);
    pool.ParallelFor(queries.size(), run_one);
  }

  ServeStats total;
  for (size_t i = 0; i < queries.size(); ++i) {
    total += locals[i];
    total.solve += stats[i];
  }
  MergeServeStats(total);
  if (per_query_stats != nullptr) *per_query_stats = std::move(stats);
  if (per_query_route != nullptr) *per_query_route = std::move(routes);

  std::vector<StatusOr<ResultRange>> out;
  out.reserve(slots.size());
  for (auto& slot : slots) out.push_back(*std::move(slot));
  return out;
}

StatusOr<std::vector<GroupRange>> ShardedBoundSolver::BoundGroupBy(
    const AggQuery& query, size_t group_attr,
    const std::vector<double>& group_values) const {
  if (!flat_.empty() && group_attr >= flat_.num_attrs()) {
    return Status::InvalidArgument("group attribute out of range");
  }
  const std::vector<AggQuery> per_group =
      MakeGroupByQueries(query, group_attr, group_values, flat_.num_attrs());
  const auto ranges = BoundBatch(per_group);
  std::vector<GroupRange> out;
  out.reserve(group_values.size());
  for (size_t g = 0; g < group_values.size(); ++g) {
    // First failure (in group order) wins, matching BoundGroupBy.
    if (!ranges[g].ok()) return ranges[g].status();
    out.push_back(GroupRange{group_values[g], *ranges[g]});
  }
  return out;
}

ShardedBoundSolver::ServeStats ShardedBoundSolver::stats() const {
  MutexLock lock(stats_mu_);
  return serve_stats_;
}

void ShardedBoundSolver::MergeServeStats(const ServeStats& local) const {
  MutexLock lock(stats_mu_);
  serve_stats_ += local;
}

}  // namespace pcx
