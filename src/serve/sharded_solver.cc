#include "serve/sharded_solver.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/check.h"
#include "common/thread_pool.h"

namespace pcx {
namespace {

/// Exact combine of per-shard ranges for a decomposable aggregate.
/// Sound because shard regions are disjoint and shard constraints are
/// independent: any tuple of per-shard instances composes into one
/// valid instance of the whole set, and vice versa.
ResultRange CombineShardRanges(AggFunc agg,
                               const std::vector<ResultRange>& ranges) {
  ResultRange out;
  switch (agg) {
    case AggFunc::kCount:
    case AggFunc::kSum: {
      // Totals add across disjoint shard regions.
      out.defined = true;
      out.empty_instance_possible = true;
      for (const ResultRange& r : ranges) {
        out.lo += r.lo;
        out.hi += r.hi;
        out.empty_instance_possible &= r.empty_instance_possible;
      }
      return out;
    }
    case AggFunc::kMax:
    case AggFunc::kMin: {
      // A shard that must host matching rows (empty impossible) but
      // cannot (undefined) poisons the whole set: no valid instance has
      // a matching row configuration at all.
      bool poison = false, any_defined = false, any_mandatory = false;
      bool empty_all = true;
      for (const ResultRange& r : ranges) {
        poison |= !r.defined && !r.empty_instance_possible;
        any_defined |= r.defined;
        any_mandatory |= !r.empty_instance_possible;
        empty_all &= r.empty_instance_possible;
      }
      out.empty_instance_possible = empty_all;
      if (poison || !any_defined) {
        out.defined = false;
        return out;
      }
      out.defined = true;
      const bool is_max = agg == AggFunc::kMax;
      // Extreme end: best achievable extreme over any single shard.
      double best_extreme = 0.0;
      bool have = false;
      for (const ResultRange& r : ranges) {
        if (!r.defined) continue;
        const double v = is_max ? r.hi : r.lo;
        if (!have || (is_max ? v > best_extreme : v < best_extreme)) {
          best_extreme = v;
          have = true;
        }
      }
      // Conservative end (the least the MAX / the most the MIN can be,
      // over instances with >= 1 matching row): mandatory shards each
      // force their own extreme, and the binding one wins; if every
      // shard may be empty, the single cheapest shard hosts the row.
      double other_end = 0.0;
      bool have_other = false;
      if (any_mandatory) {
        for (const ResultRange& r : ranges) {
          if (r.empty_instance_possible) continue;
          const double v = is_max ? r.lo : r.hi;
          if (!have_other || (is_max ? v > other_end : v < other_end)) {
            other_end = v;
            have_other = true;
          }
        }
      } else {
        for (const ResultRange& r : ranges) {
          if (!r.defined) continue;
          const double v = is_max ? r.lo : r.hi;
          if (!have_other || (is_max ? v < other_end : v > other_end)) {
            other_end = v;
            have_other = true;
          }
        }
      }
      PCX_CHECK(have && have_other);
      if (is_max) {
        out.hi = best_extreme;
        out.lo = other_end;
      } else {
        out.lo = best_extreme;
        out.hi = other_end;
      }
      return out;
    }
    case AggFunc::kAvg:
      break;
  }
  PCX_CHECK(false) << "CombineShardRanges: non-decomposable aggregate";
  return out;
}

}  // namespace

ShardedBoundSolver::ShardedBoundSolver(PredicateConstraintSet pcs,
                                       std::vector<AttrDomain> domains)
    : ShardedBoundSolver(std::move(pcs), std::move(domains), Options{}) {}

ShardedBoundSolver::ShardedBoundSolver(const Snapshot& snapshot)
    : ShardedBoundSolver(snapshot, Options{}) {}

ShardedBoundSolver::ShardedBoundSolver(PredicateConstraintSet pcs,
                                       std::vector<AttrDomain> domains,
                                       Options options)
    : flat_(std::move(pcs)),
      domains_(std::move(domains)),
      options_(options) {
  partition_ = PartitionPcSet(flat_, domains_, options_.partition);
  BuildShards();
}

ShardedBoundSolver::ShardedBoundSolver(const Snapshot& snapshot,
                                       Options options)
    : flat_(snapshot.Flatten()),
      domains_(snapshot.domains),
      options_(options),
      epoch_(snapshot.epoch) {
  // Adopt the stored shard layout verbatim; re-derive the balance
  // metadata from the component structure (a property of the set, not
  // of the file) so STATS reports the same numbers the snapshot
  // builder printed. One O(n^2) scan serves components, costs, and the
  // disjointness verdict in BuildShards.
  partition_.shards.clear();
  for (const SnapshotShard& s : snapshot.shards) {
    partition_.shards.push_back(s.indices);
  }
  if (partition_.shards.empty()) partition_.shards.push_back({});
  partition_.estimated_cost.assign(partition_.shards.size(), 0.0);

  std::vector<size_t> shard_of(flat_.size(), 0);
  for (size_t s = 0; s < partition_.shards.size(); ++s) {
    for (size_t i : partition_.shards[s]) shard_of[i] = s;
  }
  for (const std::vector<size_t>& comp :
       OverlapComponents(flat_, domains_)) {
    ++partition_.num_components;
    partition_.largest_component =
        std::max(partition_.largest_component, comp.size());
    // Components are whole on one shard in well-formed snapshots; a
    // hand-built file that splits one gets its cost attributed to the
    // first member's shard (a metric, not a correctness input).
    partition_.estimated_cost[shard_of[comp.front()]] +=
        EstimateComponentCost(comp.size());
  }
  BuildShards();
}

void ShardedBoundSolver::BuildShards() {
  PCX_CHECK(partition_.shards.size() <= kMaxShards)
      << "ShardedBoundSolver routes with a 64-bit shard mask";
  // Every overlap component a singleton <=> pairwise disjoint: the
  // component scan uses the same IntersectionEmpty criterion as
  // PredicatesDisjoint, so the verdict (already paid for by both
  // constructors) matches the unsharded solver's bit for bit.
  flat_disjoint_ = options_.solver.auto_disjoint_fast_path &&
                   partition_.num_components == flat_.size();
  // A shard's subset can be pairwise disjoint even when the full set is
  // not; taking the greedy fast path there would change the arithmetic
  // relative to the unsharded solver, so the verdict of the *full* set
  // is imposed on every shard and union solver. In the disjoint case
  // the verdict transfers to every subset, so shard/union construction
  // skips the O(m^2) re-detection — without this, building a memoized
  // union solver would cost more than the queries it serves.
  if (flat_disjoint_) {
    options_.solver.assume_predicates_disjoint = true;
  } else {
    options_.solver.auto_disjoint_fast_path = false;
  }

  always_relevant_.assign(flat_.size(), 0);
  for (size_t i = 0; i < flat_.size(); ++i) {
    // A degenerate empty predicate box intersects nothing, yet
    // Box::Covers can still report the query region covering it (the
    // frequency lower bound then applies). Keep such constraints in
    // every union rather than reasoning about that corner per query.
    if (flat_.at(i).predicate().box().IsEmpty(domains_)) {
      always_relevant_[i] = 1;
    }
  }

  shards_.clear();
  const size_t num_attrs = flat_.num_attrs();
  for (const std::vector<size_t>& indices : partition_.shards) {
    Shard shard;
    shard.indices = indices;
    PredicateConstraintSet subset;
    shard.bbox = Box(num_attrs);
    for (size_t d = 0; d < num_attrs; ++d) {
      shard.bbox.SetDim(d, Interval::Closed(
                               std::numeric_limits<double>::infinity(),
                               -std::numeric_limits<double>::infinity()));
    }
    for (size_t i : indices) {
      subset.Add(flat_.at(i));
      shard.always_relevant |= always_relevant_[i] != 0;
      const Box& pred = flat_.at(i).predicate().box();
      for (size_t d = 0; d < num_attrs; ++d) {
        // Closed-bound hull: a superset of every member box, so a miss
        // of the hull is a miss of all members.
        const Interval& cur = shard.bbox.dim(d);
        shard.bbox.SetDim(
            d, Interval{std::min(cur.lo, pred.dim(d).lo),
                        std::max(cur.hi, pred.dim(d).hi), false, false});
      }
    }
    shard.solver = std::make_unique<const PcBoundSolver>(
        std::move(subset), domains_, options_.solver);
    shards_.push_back(std::move(shard));
  }
}

uint64_t ShardedBoundSolver::RouteMask(const AggQuery& query) const {
  uint64_t mask = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    if (shard.indices.empty()) continue;
    if (shard.always_relevant || !query.where.has_value()) {
      mask |= uint64_t{1} << s;
      continue;
    }
    const Box& w = query.where->box();
    // Hull miss => every member misses; shard-local queries route in
    // O(K) instead of O(n).
    if (shard.bbox.IntersectionEmpty(w, domains_)) continue;
    for (size_t i : shard.indices) {
      if (!flat_.at(i).predicate().box().IntersectionEmpty(w, domains_)) {
        mask |= uint64_t{1} << s;
        break;
      }
    }
  }
  return mask;
}

std::shared_ptr<const PcBoundSolver> ShardedBoundSolver::SolverFor(
    uint64_t mask) const {
  if (std::popcount(mask) == 1) {
    // Alias the prebuilt shard solver (owned by shards_, which outlives
    // every query) without registering ownership.
    return std::shared_ptr<const PcBoundSolver>(
        std::shared_ptr<void>(),
        shards_[static_cast<size_t>(std::countr_zero(mask))].solver.get());
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = union_cache_.find(mask);
  if (it != union_cache_.end()) return it->second;

  // Assemble the union in ascending global order — the order the
  // unsharded solver sees — so decomposition, MILP rows and greedy sums
  // run through the identical sequence of operations.
  std::vector<size_t> indices;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if ((mask >> s) & 1) {
      indices.insert(indices.end(), shards_[s].indices.begin(),
                     shards_[s].indices.end());
    }
  }
  std::sort(indices.begin(), indices.end());
  PredicateConstraintSet subset;
  for (size_t i : indices) subset.Add(flat_.at(i));
  auto solver = std::make_shared<const PcBoundSolver>(
      std::move(subset), domains_, options_.solver);
  {
    // cache_mu_ is held; stats_mu_ nests inside it (the documented
    // lock order) for just this increment.
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++serve_stats_.union_solvers_built;
  }
  // Bounded memo: flush wholesale at the cap (rare; shard-spanning mask
  // diversity is usually tiny). Shared ownership keeps solvers already
  // handed out alive until their queries finish.
  if (union_cache_.size() >= kMaxUnionSolvers) union_cache_.clear();
  union_cache_.emplace(mask, solver);
  return solver;
}

StatusOr<ResultRange> ShardedBoundSolver::BoundOne(
    const AggQuery& query, PcBoundSolver::SolveStats& stats,
    ServeStats& local, bool parallel) const {
  ++local.queries;
  // Mirrors the unsharded solver's up-front validation so a misrouted
  // query (e.g. one whose WHERE touches no shard) still fails the same
  // way instead of silently answering over an empty set.
  if (query.agg != AggFunc::kCount && !flat_.empty() &&
      query.attr >= flat_.num_attrs()) {
    return Status::InvalidArgument("aggregate attribute out of range");
  }

  uint64_t mask = RouteMask(query);
  const int bits = std::popcount(mask);
  if (bits == 0) {
    ++local.no_shard_queries;
    // No predicate can intersect the region, but the answer is still
    // defined over a non-empty set (e.g. MIN negation yields -0.0, and
    // an empty-set solver would answer +0.0). Any one shard performs
    // the identical zero-cell computation the unsharded solver would.
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (!shards_[s].indices.empty()) {
        mask = uint64_t{1} << s;
        break;
      }
    }
  } else if (bits == 1) {
    ++local.single_shard_queries;
  } else {
    ++local.multi_shard_queries;
  }

  if (options_.scatter_gather && bits >= 2 && query.agg != AggFunc::kAvg) {
    ++local.scatter_queries;
    return ScatterGather(query, mask, stats, parallel);
  }
  return SolverFor(mask)->BoundWithStats(query, stats);
}

StatusOr<ResultRange> ShardedBoundSolver::ScatterGather(
    const AggQuery& query, uint64_t mask, PcBoundSolver::SolveStats& stats,
    bool parallel) const {
  std::vector<size_t> targets;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if ((mask >> s) & 1) targets.push_back(s);
  }
  std::vector<StatusOr<ResultRange>> results(
      targets.size(), StatusOr<ResultRange>(Status::Internal("unset")));
  std::vector<PcBoundSolver::SolveStats> shard_stats(targets.size());

  auto run_one = [&](size_t t) {
    results[t] = shards_[targets[t]].solver->BoundWithStats(query,
                                                            shard_stats[t]);
  };
  if (parallel && options_.num_threads != 1 && targets.size() > 1) {
    // The pool lives for one query; never spin up more workers than
    // there are shard solves to hand them.
    const size_t width = options_.num_threads == 0
                             ? targets.size()
                             : std::min(options_.num_threads, targets.size());
    ThreadPool pool(width);
    pool.ParallelFor(targets.size(), run_one);
  } else {
    for (size_t t = 0; t < targets.size(); ++t) run_one(t);
  }

  // All shards ran; account for all of their work before surfacing the
  // first failure (in shard order, deterministically) — operators read
  // the counters precisely when something went wrong.
  for (const PcBoundSolver::SolveStats& s : shard_stats) stats += s;
  std::vector<ResultRange> ranges;
  ranges.reserve(targets.size());
  for (size_t t = 0; t < targets.size(); ++t) {
    if (!results[t].ok()) return results[t].status();
    ranges.push_back(*results[t]);
  }
  return CombineShardRanges(query.agg, ranges);
}

StatusOr<ResultRange> ShardedBoundSolver::Bound(const AggQuery& query) const {
  PcBoundSolver::SolveStats stats;
  ServeStats local;
  auto result = BoundOne(query, stats, local, /*parallel=*/true);
  local.solve += stats;
  MergeServeStats(local);
  return result;
}

std::vector<StatusOr<ResultRange>> ShardedBoundSolver::BoundBatch(
    std::span<const AggQuery> queries,
    std::vector<PcBoundSolver::SolveStats>* per_query_stats) const {
  std::vector<std::optional<StatusOr<ResultRange>>> slots(queries.size());
  std::vector<PcBoundSolver::SolveStats> stats(queries.size());
  std::vector<ServeStats> locals(queries.size());

  // Per-query scatter fan-out stays sequential inside a batch worker —
  // the batch itself is the parallel axis (no nested pools).
  auto run_one = [&](size_t i) {
    slots[i].emplace(
        BoundOne(queries[i], stats[i], locals[i], /*parallel=*/false));
  };
  if (options_.num_threads == 1 || queries.size() <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) run_one(i);
  } else {
    ThreadPool pool(options_.num_threads);
    pool.ParallelFor(queries.size(), run_one);
  }

  ServeStats total;
  for (size_t i = 0; i < queries.size(); ++i) {
    total += locals[i];
    total.solve += stats[i];
  }
  MergeServeStats(total);
  if (per_query_stats != nullptr) *per_query_stats = std::move(stats);

  std::vector<StatusOr<ResultRange>> out;
  out.reserve(slots.size());
  for (auto& slot : slots) out.push_back(*std::move(slot));
  return out;
}

StatusOr<std::vector<GroupRange>> ShardedBoundSolver::BoundGroupBy(
    const AggQuery& query, size_t group_attr,
    const std::vector<double>& group_values) const {
  if (!flat_.empty() && group_attr >= flat_.num_attrs()) {
    return Status::InvalidArgument("group attribute out of range");
  }
  const std::vector<AggQuery> per_group =
      MakeGroupByQueries(query, group_attr, group_values, flat_.num_attrs());
  const auto ranges = BoundBatch(per_group);
  std::vector<GroupRange> out;
  out.reserve(group_values.size());
  for (size_t g = 0; g < group_values.size(); ++g) {
    // First failure (in group order) wins, matching BoundGroupBy.
    if (!ranges[g].ok()) return ranges[g].status();
    out.push_back(GroupRange{group_values[g], *ranges[g]});
  }
  return out;
}

ShardedBoundSolver::ServeStats ShardedBoundSolver::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return serve_stats_;
}

void ShardedBoundSolver::MergeServeStats(const ServeStats& local) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  serve_stats_ += local;
}

}  // namespace pcx
