#ifndef PCX_SERVE_SNAPSHOT_H_
#define PCX_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "pc/pc_set.h"
#include "serve/partitioner.h"

namespace pcx {

/// Versioned on-disk snapshots of a partitioned predicate-constraint
/// set — the unit a pcx_serve process loads and answers queries from.
/// The paper's framing is that constraints are artifacts to be
/// "checked, versioned, and tested"; a snapshot adds the serving-side
/// half of that discipline: an epoch number that survives round-trips
/// (so replicas can agree on which constraint version answered a
/// query, in the spirit of Skeena's cross-engine snapshot epochs), a
/// schema digest that rejects files from a different table layout, and
/// per-shard checksums that catch truncation or hand-editing slips.
///
/// Layout (text, layered on pc/serialization's pcset format):
///
///   pcxsnap v1 shards=2 epoch=7
///   schema attrs=3 domains=int,int,cont digest=c0ffee0123456789
///   shard 0 pcs=2 indices=0,2 checksum=89abcdef01234567
///   pcset v1 attrs=3
///   pc pred={0:[0,24)} values={2:[0,5]} freq=[10,20]
///   pc pred={0:[24,48)} values={2:[0,9]} freq=[0,15]
///   end shard 0
///   shard 1 pcs=1 indices=1 checksum=...
///   ...
///   end shard 1
///   end pcxsnap
///
/// `indices` are positions in the original (unsharded) set; they let the
/// loader reassemble the exact global constraint order, which the
/// sharded solver's bit-identity guarantee depends on. Checksums and the
/// digest are FNV-1a 64 in hex; shard checksums cover the exact payload
/// bytes between the `shard` and `end shard` lines.
struct SnapshotShard {
  std::vector<size_t> indices;  ///< global PC ids, ascending
  PredicateConstraintSet pcs;   ///< same order as `indices`
};

struct Snapshot {
  uint64_t epoch = 0;
  size_t num_attrs = 0;
  std::vector<AttrDomain> domains;  ///< one entry per attribute
  std::vector<SnapshotShard> shards;

  size_t total_pcs() const;
  /// Reassembles the unsharded set in global order.
  PredicateConstraintSet Flatten() const;
};

/// Builds a snapshot from a set and a shard assignment (see
/// PartitionPcSet). `domains` shorter than the attribute count is padded
/// with kContinuous.
Snapshot MakeSnapshot(const PredicateConstraintSet& pcs,
                      const std::vector<AttrDomain>& domains,
                      const Partition& partition, uint64_t epoch);

std::string SerializeSnapshot(const Snapshot& snapshot);

/// Parses and *validates*: format version, schema digest, shard
/// checksums, per-shard counts, and that the shard indices are exactly a
/// permutation of 0..total-1. Returns InvalidArgument naming the
/// offending shard/line otherwise.
StatusOr<Snapshot> ParseSnapshot(const std::string& text);

Status WriteSnapshot(const Snapshot& snapshot, const std::string& path);
StatusOr<Snapshot> LoadSnapshot(const std::string& path);

/// FNV-1a 64 of the canonical schema line ("attrs=N;domains=a,b,c").
uint64_t SchemaDigest(size_t num_attrs, const std::vector<AttrDomain>& domains);

/// FNV-1a 64 over raw bytes — the checksum primitive shared by the
/// snapshot format (shard checksums, schema digest) and the delta log
/// (per-record CRCs, chain links).
uint64_t Fnv1a64(const std::string& bytes);

/// 16-digit lowercase hex — the on-disk spelling of every checksum.
std::string ToHex64(uint64_t v);

/// Attribute-domain names as they appear in schema lines ("int"/"cont").
const char* AttrDomainName(AttrDomain d);
StatusOr<AttrDomain> ParseAttrDomain(const std::string& s);

}  // namespace pcx

#endif  // PCX_SERVE_SNAPSHOT_H_
