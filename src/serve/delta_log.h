#ifndef PCX_SERVE_DELTA_LOG_H_
#define PCX_SERVE_DELTA_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/statusor.h"
#include "pc/pc_set.h"
#include "serve/snapshot.h"

namespace pcx {

/// Durable delta log: the write-ahead journal that turns a pcxsnap
/// snapshot into a crash-recoverable constraint store. The paper treats
/// predicate constraints as versioned artifacts; the snapshot format
/// already gives them epochs and checksums at rest, and this module
/// extends the discipline to the *mutations between* snapshots so a
/// serving process killed mid-update restarts at exactly the epoch it
/// had acknowledged.
///
/// On-disk layout (text, strict LF, layered on the pcset record body):
///
///   pcxlog v1 attrs=3 domains=int,int,cont digest=c0ffee0123456789
///       base_epoch=7 crc=89abcdef01234567          (one line)
///   rec epoch=8 append pred={0:[0,24)} values={2:[0,5]} freq=[10,20]
///       chain=89abcdef01234567 crc=...             (one line)
///   rec epoch=9 retire idx=3 chain=... crc=...
///   rec epoch=10 checkpoint chain=... crc=...
///
/// Every line carries `crc=`, the FNV-1a 64 of the exact bytes before
/// " crc=". Every record also carries `chain=`, the crc of the
/// *previous* line (the header's crc for the first record), and an
/// epoch exactly one above its predecessor. Replay therefore detects
/// bit flips (crc), reordering / duplication / splicing (chain), and
/// lost records (epoch discontinuity). A violation mid-file marks the
/// first bad byte; everything from there on is a torn tail that replay
/// reports — and DurableLog truncates — rather than refusing to start.
enum class DeltaOp : uint8_t {
  kAppend,      ///< add one constraint at the end of the global order
  kRetire,      ///< remove the constraint at global index `retire_index`
  kCheckpoint,  ///< epoch bump marking "a fresh base snapshot follows"
};

struct DeltaRecord {
  uint64_t epoch = 0;  ///< epoch *after* applying this record
  DeltaOp op = DeltaOp::kAppend;
  PredicateConstraint pc;      ///< kAppend only
  size_t retire_index = 0;     ///< kRetire only
};

struct DeltaLogHeader {
  size_t num_attrs = 0;
  std::vector<AttrDomain> domains;  ///< one entry per attribute
  uint64_t base_epoch = 0;          ///< epoch of the base snapshot
};

/// Serializes the header line (no trailing newline). `crc_out`, if
/// non-null, receives the line's crc for chaining the first record.
std::string SerializeLogHeader(const DeltaLogHeader& header,
                               uint64_t* crc_out);

/// Serializes one record line (no trailing newline). `chain` is the crc
/// of the preceding line; `crc_out` receives this line's crc.
std::string SerializeDeltaRecord(const DeltaRecord& rec, uint64_t chain,
                                 uint64_t* crc_out);

/// Parses one record line. Verifies the embedded crc always; verifies
/// `chain=` against *expected_chain only when non-null (wire-shipped
/// records use chain=0 because the replica has no file context).
StatusOr<DeltaRecord> ParseDeltaRecordLine(const std::string& line,
                                           size_t num_attrs,
                                           const uint64_t* expected_chain);

/// Result of replaying a log document.
struct DeltaLogReplay {
  DeltaLogHeader header;
  std::vector<DeltaRecord> records;  ///< the valid prefix, in order
  size_t valid_bytes = 0;     ///< bytes of `text` proven good (incl. '\n')
  size_t dropped_records = 0;  ///< count of torn/corrupt tail lines
  std::string truncation_reason;  ///< empty when the whole file was clean
  uint64_t tip_crc = 0;    ///< crc of the last valid line (header if none)
  uint64_t tip_epoch = 0;  ///< epoch after the last valid record
};

/// Replays a full log document. A bad header is a hard error; any
/// record-level violation (parse failure, crc/chain mismatch, epoch
/// discontinuity, missing final newline) ends the valid prefix and is
/// reported via dropped_records / truncation_reason — never an error.
StatusOr<DeltaLogReplay> ReplayDeltaLog(const std::string& text);

/// File names inside a --log-dir.
std::string DurableLogBasePath(const std::string& dir);
std::string DurableLogLogPath(const std::string& dir);

/// The durable pair {base.pcxsnap, delta.pcxlog} inside one directory.
/// Appends are fsync'd before they are acknowledged. Open() recovers:
/// it loads the base, replays the log, and truncates a torn tail in
/// place (crash-during-append must not poison the next run's appends).
class DurableLog {
 public:
  struct Recovered {
    bool has_base = false;  ///< false: empty dir, server starts unloaded
    Snapshot base;
    std::vector<DeltaRecord> tail;  ///< records to apply on top of base
    size_t dropped_records = 0;
    std::string truncation_reason;  ///< non-empty when a tail was torn
  };

  /// Opens (creating the directory if missing) and recovers. A corrupt
  /// base snapshot or log header is a typed error; a torn record tail
  /// is truncated and reported through `out`. A log file without a base
  /// snapshot is FailedPrecondition (the pair is written base-first, so
  /// this means outside interference, not a crash).
  static StatusOr<std::unique_ptr<DurableLog>> Open(const std::string& dir,
                                                    Recovered* out);

  ~DurableLog();
  DurableLog(const DurableLog&) = delete;
  DurableLog& operator=(const DurableLog&) = delete;

  /// Rewrites the base snapshot and starts a fresh (empty) log at
  /// snap.epoch. Base is renamed into place and the directory fsync'd
  /// *before* the log is replaced: a crash between the two renames
  /// leaves a log whose base_epoch/digest mismatch the new base, which
  /// Open() resolves by reinitializing the log from the base.
  Status Reset(const Snapshot& snap);

  /// Journals one record (rec.epoch must be exactly next_epoch()) and
  /// fsyncs before returning. FailedPrecondition before the first
  /// Reset() on an empty directory.
  Status Append(const DeltaRecord& rec);

  bool initialized() const { return log_fd_ >= 0; }
  uint64_t next_epoch() const { return next_epoch_; }
  const std::string& dir() const { return dir_; }

  /// Observes each Append's fsync latency into
  /// `pcx_log_fsync_latency_us` of `metrics` (nullptr = off; the
  /// registry must outlive the log).
  void set_metrics(MetricsRegistry* metrics);

 private:
  explicit DurableLog(std::string dir) : dir_(std::move(dir)) {}

  std::string dir_;
  int log_fd_ = -1;  ///< O_APPEND fd; -1 until the first Reset()
  DeltaLogHeader header_;
  uint64_t chain_crc_ = 0;   ///< crc of the last durable line
  uint64_t next_epoch_ = 0;  ///< epoch the next Append must carry
  Histogram* fsync_hist_ = nullptr;  ///< cached registry series
};

}  // namespace pcx

#endif  // PCX_SERVE_DELTA_LOG_H_
