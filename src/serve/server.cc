#include "serve/server.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "common/text.h"
#include "pc/serialization.h"

namespace pcx {
namespace {

std::string ToUpper(std::string s) {
  for (char& c : s) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return s;
}

/// Error text must stay a single protocol line.
std::string OneLine(std::string s) {
  std::replace(s.begin(), s.end(), '\n', ' ');
  std::replace(s.begin(), s.end(), '\r', ' ');
  return s;
}

StatusOr<AggFunc> ParseAgg(const std::string& token) {
  const std::string up = ToUpper(token);
  if (up == "COUNT") return AggFunc::kCount;
  if (up == "SUM") return AggFunc::kSum;
  if (up == "AVG") return AggFunc::kAvg;
  if (up == "MIN") return AggFunc::kMin;
  if (up == "MAX") return AggFunc::kMax;
  return Status::InvalidArgument("unknown aggregate '" + token +
                                 "' (want COUNT/SUM/AVG/MIN/MAX)");
}

StatusOr<size_t> ParseIndex(const std::string& token,
                            const std::string& what) {
  const auto v = ParseU64(token);
  if (!v.ok()) {
    return Status::InvalidArgument("bad " + what + " '" + token + "'");
  }
  return static_cast<size_t>(*v);
}

/// Conjoins the box literals in tokens[from..] into a WHERE predicate
/// (nullopt when there are none).
StatusOr<std::optional<Predicate>> ParseWhere(
    const std::vector<std::string>& tokens, size_t from, size_t num_attrs) {
  if (from >= tokens.size()) return std::optional<Predicate>{};
  Box where(num_attrs);
  for (size_t t = from; t < tokens.size(); ++t) {
    PCX_ASSIGN_OR_RETURN(const Box box, ParseBox(tokens[t], num_attrs));
    where.IntersectWith(box);
  }
  return std::optional<Predicate>(Predicate(std::move(where)));
}

void PrintRange(std::ostream& out, const char* label, const ResultRange& r) {
  out << label << "lo=" << FormatNumber(r.lo) << " hi=" << FormatNumber(r.hi)
      << " defined=" << (r.defined ? 1 : 0)
      << " empty_possible=" << (r.empty_instance_possible ? 1 : 0) << "\n";
}

}  // namespace

BoundServer::BoundServer() : BoundServer(Options{}) {}
BoundServer::BoundServer(Options options) : options_(std::move(options)) {}
BoundServer::~BoundServer() = default;

Status BoundServer::LoadSnapshotFile(const std::string& path) {
  PCX_ASSIGN_OR_RETURN(const Snapshot snap, LoadSnapshot(path));
  solver_ =
      std::make_unique<ShardedBoundSolver>(snap, options_.solver);
  snapshot_path_ = path;
  return Status::OK();
}

Status BoundServer::HandleBound(const std::vector<std::string>& tokens,
                                std::ostream& out) {
  if (solver_ == nullptr) {
    return Status::FailedPrecondition("no snapshot loaded (use LOAD <path>)");
  }
  if (tokens.size() < 3) {
    return Status::InvalidArgument(
        "usage: BOUND <COUNT|SUM|AVG|MIN|MAX> <attr> [{a:[lo,hi],...}...]");
  }
  AggQuery query;
  PCX_ASSIGN_OR_RETURN(query.agg, ParseAgg(tokens[1]));
  PCX_ASSIGN_OR_RETURN(query.attr, ParseIndex(tokens[2], "attribute index"));
  PCX_ASSIGN_OR_RETURN(
      query.where,
      ParseWhere(tokens, 3, solver_->constraints().num_attrs()));
  PCX_ASSIGN_OR_RETURN(const ResultRange range, solver_->Bound(query));
  PrintRange(out, "RANGE ", range);
  return Status::OK();
}

Status BoundServer::HandleGroupBy(const std::vector<std::string>& tokens,
                                  std::ostream& out) {
  if (solver_ == nullptr) {
    return Status::FailedPrecondition("no snapshot loaded (use LOAD <path>)");
  }
  if (tokens.size() < 5) {
    return Status::InvalidArgument(
        "usage: GROUPBY <AGG> <attr> <group_attr> <v1,v2,...> [{box}...]");
  }
  AggQuery query;
  PCX_ASSIGN_OR_RETURN(query.agg, ParseAgg(tokens[1]));
  PCX_ASSIGN_OR_RETURN(query.attr, ParseIndex(tokens[2], "attribute index"));
  PCX_ASSIGN_OR_RETURN(const size_t group_attr,
                       ParseIndex(tokens[3], "group attribute"));
  std::vector<double> values;
  {
    std::istringstream is(tokens[4]);
    std::string part;
    while (std::getline(is, part, ',')) {
      if (part.empty()) continue;
      PCX_ASSIGN_OR_RETURN(const double v, ParseNumber(part));
      values.push_back(v);
    }
  }
  if (values.empty()) {
    return Status::InvalidArgument("empty group value list '" + tokens[4] +
                                   "'");
  }
  PCX_ASSIGN_OR_RETURN(
      query.where,
      ParseWhere(tokens, 5, solver_->constraints().num_attrs()));
  PCX_ASSIGN_OR_RETURN(const std::vector<GroupRange> groups,
                       solver_->BoundGroupBy(query, group_attr, values));
  out << "GROUPS " << groups.size() << "\n";
  for (const GroupRange& g : groups) {
    out << "GROUP " << FormatNumber(g.group_value) << " ";
    PrintRange(out, "", g.range);
  }
  return Status::OK();
}

Status BoundServer::HandleStats(std::ostream& out) {
  if (solver_ == nullptr) {
    return Status::FailedPrecondition("no snapshot loaded (use LOAD <path>)");
  }
  const ShardedBoundSolver::ServeStats s = solver_->stats();
  char imbalance[32];
  std::snprintf(imbalance, sizeof(imbalance), "%.3f",
                solver_->partition().ImbalanceRatio());
  out << "STATS epoch=" << solver_->epoch()
      << " shards=" << solver_->num_shards()
      << " pcs=" << solver_->constraints().size()
      << " attrs=" << solver_->constraints().num_attrs()
      << " components=" << solver_->partition().num_components
      << " largest_component=" << solver_->partition().largest_component
      << " imbalance=" << imbalance << " queries=" << s.queries
      << " single_shard=" << s.single_shard_queries
      << " multi_shard=" << s.multi_shard_queries
      << " no_shard=" << s.no_shard_queries
      << " scatter=" << s.scatter_queries
      << " union_solvers=" << s.union_solvers_built
      << " num_cells=" << s.solve.num_cells
      << " sat_calls=" << s.solve.sat_calls
      << " sat_cache_hits=" << s.solve.sat_cache_hits
      << " milp_nodes=" << s.solve.milp_nodes
      << " lp_solves=" << s.solve.lp_solves
      << " lp_pivots=" << s.solve.lp_pivots << "\n";
  return Status::OK();
}

bool BoundServer::HandleLine(const std::string& line, std::ostream& out) {
  const std::vector<std::string> tokens = SplitWhitespace(line);
  if (tokens.empty() || tokens[0][0] == '#') return true;  // comment/blank
  const std::string cmd = ToUpper(tokens[0]);

  if (cmd == "QUIT" || cmd == "EXIT") {
    out << "BYE\n";
    return false;
  }

  Status status = Status::OK();
  if (cmd == "LOAD") {
    if (tokens.size() != 2) {
      status = Status::InvalidArgument("usage: LOAD <snapshot-path>");
    } else {
      status = LoadSnapshotFile(tokens[1]);
      if (status.ok()) {
        out << "OK epoch=" << solver_->epoch()
            << " shards=" << solver_->num_shards()
            << " pcs=" << solver_->constraints().size()
            << " attrs=" << solver_->constraints().num_attrs() << "\n";
      }
    }
  } else if (cmd == "BOUND") {
    status = HandleBound(tokens, out);
  } else if (cmd == "GROUPBY") {
    status = HandleGroupBy(tokens, out);
  } else if (cmd == "STATS") {
    status = HandleStats(out);
  } else {
    status = Status::InvalidArgument(
        "unknown command '" + tokens[0] +
        "' (want LOAD/BOUND/GROUPBY/STATS/QUIT)");
  }
  if (!status.ok()) {
    out << "ERR " << OneLine(status.message()) << "\n";
  }
  return true;
}

void BoundServer::ServeStream(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    const bool keep_going = HandleLine(line, out);
    out.flush();
    if (!keep_going) return;
  }
}

#ifndef _WIN32

Status ServeTcp(BoundServer& server, uint16_t port, size_t max_clients) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) return Status::Internal("socket() failed");
  const int enable = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listener);
    return Status::InvalidArgument("bind() failed on port " +
                                   std::to_string(port));
  }
  if (::listen(listener, 4) < 0) {
    ::close(listener);
    return Status::Internal("listen() failed");
  }

  size_t served = 0;
  while (max_clients == 0 || served < max_clients) {
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) {
      ::close(listener);
      return Status::Internal("accept() failed");
    }
    ++served;
    std::string buffer;
    char chunk[4096];
    bool open = true;
    while (open) {
      const ssize_t n = ::read(client, chunk, sizeof(chunk));
      if (n <= 0) break;  // client closed (or error): end the session
      buffer.append(chunk, static_cast<size_t>(n));
      size_t at;
      while (open && (at = buffer.find('\n')) != std::string::npos) {
        std::string line = buffer.substr(0, at);
        buffer.erase(0, at + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        std::ostringstream reply;
        open = server.HandleLine(line, reply);
        const std::string text = reply.str();
        size_t written = 0;
        while (written < text.size()) {
          const ssize_t w =
              ::write(client, text.data() + written, text.size() - written);
          if (w <= 0) {
            open = false;
            break;
          }
          written += static_cast<size_t>(w);
        }
      }
    }
    ::close(client);
  }
  ::close(listener);
  return Status::OK();
}

#else  // _WIN32

Status ServeTcp(BoundServer&, uint16_t, size_t) {
  return Status::Unimplemented("ServeTcp: POSIX sockets only");
}

#endif

}  // namespace pcx
