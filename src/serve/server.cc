#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <optional>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "common/text.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "pc/serialization.h"

namespace pcx {
namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string ToUpper(std::string s) {
  for (char& c : s) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return s;
}

/// Error text must stay a single protocol line.
std::string OneLine(std::string s) {
  std::replace(s.begin(), s.end(), '\n', ' ');
  std::replace(s.begin(), s.end(), '\r', ' ');
  return s;
}

/// In-place CRLF tolerance — the one definition of the CR rule shared
/// by every session front end (stream getline, TCP line loop, TCP EOF
/// residual), so stdio/TCP framing parity is structural here rather
/// than three hand-kept copies.
void StripTrailingCr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

StatusOr<AggFunc> ParseAgg(const std::string& token) {
  const std::string up = ToUpper(token);
  if (up == "COUNT") return AggFunc::kCount;
  if (up == "SUM") return AggFunc::kSum;
  if (up == "AVG") return AggFunc::kAvg;
  if (up == "MIN") return AggFunc::kMin;
  if (up == "MAX") return AggFunc::kMax;
  return Status::InvalidArgument("unknown aggregate '" + token +
                                 "' (want COUNT/SUM/AVG/MIN/MAX)");
}

StatusOr<size_t> ParseIndex(const std::string& token,
                            const std::string& what) {
  const auto v = ParseU64(token);
  if (!v.ok()) {
    return Status::InvalidArgument("bad " + what + " '" + token + "'");
  }
  return static_cast<size_t>(*v);
}

/// Conjoins the box literals in tokens[from..] into a WHERE predicate
/// (nullopt when there are none).
StatusOr<std::optional<Predicate>> ParseWhere(
    const std::vector<std::string>& tokens, size_t from, size_t num_attrs) {
  if (from >= tokens.size()) return std::optional<Predicate>{};
  Box where(num_attrs);
  for (size_t t = from; t < tokens.size(); ++t) {
    PCX_ASSIGN_OR_RETURN(const Box box, ParseBox(tokens[t], num_attrs));
    where.IntersectWith(box);
  }
  return std::optional<Predicate>(Predicate(std::move(where)));
}

}  // namespace

StatusOr<AggQuery> ParseBoundRequest(const std::vector<std::string>& tokens,
                                     size_t num_attrs) {
  if (tokens.size() < 3) {
    return Status::InvalidArgument(
        "usage: BOUND <COUNT|SUM|AVG|MIN|MAX> <attr> [{a:[lo,hi],...}...]");
  }
  AggQuery query;
  PCX_ASSIGN_OR_RETURN(query.agg, ParseAgg(tokens[1]));
  PCX_ASSIGN_OR_RETURN(query.attr, ParseIndex(tokens[2], "attribute index"));
  PCX_ASSIGN_OR_RETURN(query.where, ParseWhere(tokens, 3, num_attrs));
  return query;
}

StatusOr<GroupByRequest> ParseGroupByRequest(
    const std::vector<std::string>& tokens, size_t num_attrs) {
  if (tokens.size() < 5) {
    return Status::InvalidArgument(
        "usage: GROUPBY <AGG> <attr> <group_attr> <v1,v2,...> [{box}...]");
  }
  GroupByRequest request;
  PCX_ASSIGN_OR_RETURN(request.query.agg, ParseAgg(tokens[1]));
  PCX_ASSIGN_OR_RETURN(request.query.attr,
                       ParseIndex(tokens[2], "attribute index"));
  PCX_ASSIGN_OR_RETURN(request.group_attr,
                       ParseIndex(tokens[3], "group attribute"));
  {
    std::istringstream is(tokens[4]);
    std::string part;
    while (std::getline(is, part, ',')) {
      if (part.empty()) continue;
      PCX_ASSIGN_OR_RETURN(const double v, ParseNumber(part));
      request.values.push_back(v);
    }
  }
  if (request.values.empty()) {
    return Status::InvalidArgument("empty group value list '" + tokens[4] +
                                   "'");
  }
  PCX_ASSIGN_OR_RETURN(request.query.where, ParseWhere(tokens, 5, num_attrs));
  return request;
}

std::string FormatErrorReply(const Status& status) {
  // The code name travels with the message so typed clients
  // (engine/remote_backend.h) reconstruct the exact pcx::StatusCode.
  return "ERR " + std::string(StatusCodeToString(status.code())) + " " +
         OneLine(status.message()) + "\n";
}

void PrintResultRange(std::ostream& out, const char* label,
                      const ResultRange& range) {
  out << label << "lo=" << FormatNumber(range.lo)
      << " hi=" << FormatNumber(range.hi)
      << " defined=" << (range.defined ? 1 : 0)
      << " empty_possible=" << (range.empty_instance_possible ? 1 : 0)
      << "\n";
}

BoundServer::TransportStats::TransportStats(MetricsRegistry& metrics)
    : queue_depth(metrics.GetGauge(
          "pcx_queue_depth", {},
          "Requests admitted to the solver queue and not yet answered")),
      queue_high_water(metrics.GetGauge("pcx_queue_high_water", {},
                                        "Largest queue depth seen")),
      coalesced_batches(metrics.GetCounter(
          "pcx_coalesced_batches_total", {},
          "Cross-connection BOUND batches dispatched to the solver")),
      coalesced_requests(
          metrics.GetCounter("pcx_coalesced_requests_total", {},
                             "BOUND requests carried by coalesced batches")),
      max_batch(metrics.GetGauge("pcx_max_batch", {},
                                 "Largest coalesced batch dispatched")),
      overload_rejections(metrics.GetCounter(
          "pcx_overload_rejections_total", {},
          "Requests answered ERR UNAVAILABLE by admission control")),
      open_connections(metrics.GetGauge("pcx_open_connections", {},
                                        "Open event-loop connections")) {}

BoundServer::BoundServer() : BoundServer(Options{}) {}

BoundServer::BoundServer(Options options)
    : options_(std::move(options)),
      start_(std::chrono::steady_clock::now()),
      transport_(metrics_) {
  // Every solver a LOAD/APPLY constructs instruments into this server's
  // registry, whatever the caller put in Options.
  options_.solver.metrics = &metrics_;
  requests_total_ = &metrics_.GetCounter("pcx_requests_total", {},
                                         "Protocol requests dispatched");
  static constexpr const char* kVerbs[kNumVerbs] = {
      "BOUND", "GROUPBY", "LOAD",    "APPEND", "RETIRE", "CHECKPOINT", "SYNC",
      "STATS", "HEALTH",  "METRICS", "TRACE",  "QUIT",   "OTHER"};
  for (size_t i = 0; i < kNumVerbs; ++i) {
    verbs_[i].verb = kVerbs[i];
    verbs_[i].count =
        &metrics_.GetCounter("pcx_requests_verb_total", {{"verb", kVerbs[i]}},
                             "Protocol requests dispatched, by verb");
    verbs_[i].latency = &metrics_.GetHistogram(
        "pcx_request_latency_us", {{"verb", kVerbs[i]}},
        "End-to-end request handling latency (microseconds)");
  }
  delta_apply_hist_ = &metrics_.GetHistogram(
      "pcx_delta_apply_latency_us", {},
      "ApplyDeltas build latency per mutation batch (microseconds)");
  if (!options_.slow_log_path.empty()) {
    slow_log_file_ = std::fopen(options_.slow_log_path.c_str(), "a");
    if (slow_log_file_ == nullptr) {
      std::fprintf(stderr,
                   "pcx_serve: cannot open slow-query log %s; "
                   "falling back to stderr\n",
                   options_.slow_log_path.c_str());
    }
  }
}

BoundServer::~BoundServer() {
  if (slow_log_file_ != nullptr) std::fclose(slow_log_file_);
}

const BoundServer::VerbSeries& BoundServer::FindVerb(
    const std::string& verb) const {
  for (const VerbSeries& v : verbs_) {
    if (verb == v.verb) return v;
  }
  return verbs_.back();  // "OTHER"
}

void BoundServer::NoteRequestVerb(const std::string& verb) {
  ++requests_;
  requests_total_->Increment();
  FindVerb(verb).count->Increment();
}

void BoundServer::NoteRequestLatency(const std::string& verb,
                                     const std::string& line, double us) {
  NoteRequestLatency(verb, line, us, nullptr);
}

void BoundServer::NoteRequestLatency(
    const std::string& verb, const std::string& line, double us,
    const ShardedBoundSolver::RouteInfo* route) {
  FindVerb(verb).latency->Observe(us);
  MaybeLogSlowQuery(verb, line, us, route);
}

void BoundServer::MaybeLogSlowQuery(
    const std::string& verb, const std::string& line, double us,
    const ShardedBoundSolver::RouteInfo* route) {
  if (options_.slow_query_us == 0 ||
      us < static_cast<double>(options_.slow_query_us)) {
    return;
  }
  // One structured line, greppable by prefix; the request is quoted,
  // escaped, and truncated so a pathological line cannot flood the log.
  constexpr size_t kMaxLoggedLine = 512;
  std::string quoted;
  quoted.reserve(std::min(line.size(), kMaxLoggedLine) + 8);
  for (char c : line) {
    if (quoted.size() >= kMaxLoggedLine) {
      quoted += "...";
      break;
    }
    if (c == '"' || c == '\\') quoted += '\\';
    if (c == '\n' || c == '\r') c = ' ';
    quoted += c;
  }
  // Routing diagnostics ride after the quoted line (appended, so
  // prefix-matching consumers of existing records keep working).
  char route_suffix[48] = "";
  if (route != nullptr) {
    std::snprintf(route_suffix, sizeof(route_suffix), " shards=%u idx_hit=%d",
                  route->shards, route->index_used ? 1 : 0);
  }
  MutexLock lock(slow_log_mu_);
  std::FILE* dest = slow_log_file_ != nullptr ? slow_log_file_ : stderr;
  std::fprintf(dest,
               "pcx_slow_query us=%.1f threshold_us=%llu verb=%s line=\"%s\"%s\n",
               us, static_cast<unsigned long long>(options_.slow_query_us),
               verb.c_str(), quoted.c_str(), route_suffix);
  std::fflush(dest);
}

std::shared_ptr<const ShardedBoundSolver> BoundServer::solver() const {
  MutexLock lock(mu_);
  return solver_;
}

uint64_t BoundServer::uptime_seconds() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::seconds>(
                                   std::chrono::steady_clock::now() - start_)
                                   .count());
}

void BoundServer::SwapSolver(std::shared_ptr<const ShardedBoundSolver> next,
                             std::span<const DeltaRecord> records) {
  MutexLock lock(mu_);
  solver_ = std::move(next);
  if (records.empty()) {
    // A snapshot-level swap (LOAD, replica resync): the delta history
    // no longer leads to the served state, so record shipping restarts
    // from the new epoch.
    tail_.clear();
    tail_floor_ = solver_->epoch();
  } else {
    tail_.insert(tail_.end(), records.begin(), records.end());
    while (tail_.size() > kMaxTailRecords) {
      tail_floor_ = tail_.front().epoch;
      tail_.erase(tail_.begin());
    }
  }
}

StatusOr<std::shared_ptr<const ShardedBoundSolver>> BoundServer::LoadAndSwap(
    const std::string& path) {
  // mutate_mu_ serializes the whole load against other mutations and
  // keeps the journal in published order; concurrent *queries* keep
  // answering on the old epoch for the whole build — the swap itself is
  // a pointer assignment under mu_.
  MutexLock lock(mutate_mu_);
  PCX_ASSIGN_OR_RETURN(const Snapshot snap, LoadSnapshot(path));
  auto solver = std::make_shared<const ShardedBoundSolver>(snap,
                                                           options_.solver);
  // Journal before publish: if persisting the new base fails, the
  // served snapshot must not move past what the log can recover.
  if (log_ != nullptr) PCX_RETURN_IF_ERROR(log_->Reset(snap));
  SwapSolver(solver, {});
  {
    MutexLock swap_lock(mu_);
    snapshot_path_ = path;
  }
  return solver;
}

Status BoundServer::LoadSnapshotFile(const std::string& path) {
  return LoadAndSwap(path).status();
}

Status BoundServer::EnableDurableLog(const std::string& dir) {
  MutexLock lock(mutate_mu_);
  DurableLog::Recovered recovered;
  PCX_ASSIGN_OR_RETURN(std::unique_ptr<DurableLog> log,
                       DurableLog::Open(dir, &recovered));
  if (recovered.dropped_records > 0) {
    std::fprintf(stderr,
                 "pcx_serve: %s: truncated torn tail (%zu record(s) "
                 "dropped): %s\n",
                 DurableLogLogPath(dir).c_str(), recovered.dropped_records,
                 recovered.truncation_reason.c_str());
  }
  if (recovered.has_base) {
    auto base = std::make_shared<const ShardedBoundSolver>(recovered.base,
                                                           options_.solver);
    std::shared_ptr<const ShardedBoundSolver> current = base;
    if (!recovered.tail.empty()) {
      PCX_ASSIGN_OR_RETURN(current, base->ApplyDeltas(recovered.tail));
    }
    MutexLock swap_lock(mu_);
    solver_ = current;
    // The replayed tail doubles as shippable SYNC history, so a replica
    // of a restarted primary can catch up without a full resync.
    tail_ = std::move(recovered.tail);
    tail_floor_ = recovered.base.epoch;
    while (tail_.size() > kMaxTailRecords) {
      tail_floor_ = tail_.front().epoch;
      tail_.erase(tail_.begin());
    }
  } else if (solver() != nullptr) {
    // Log attached to an already-loaded server over an empty directory:
    // seed the base from the served snapshot.
    PCX_RETURN_IF_ERROR(log->Reset(solver()->ToSnapshot()));
  }
  log->set_metrics(&metrics_);
  log_ = std::move(log);
  log_enabled_.store(true);
  return Status::OK();
}

StatusOr<std::shared_ptr<const ShardedBoundSolver>>
BoundServer::InstallSnapshot(const Snapshot& snap) {
  MutexLock lock(mutate_mu_);
  auto solver = std::make_shared<const ShardedBoundSolver>(snap,
                                                           options_.solver);
  if (log_ != nullptr) PCX_RETURN_IF_ERROR(log_->Reset(snap));
  SwapSolver(solver, {});
  return solver;
}

StatusOr<std::shared_ptr<const ShardedBoundSolver>> BoundServer::ApplyRecords(
    std::span<const DeltaRecord> records) {
  MutexLock lock(mutate_mu_);
  return ApplyRecordsLocked(records);
}

StatusOr<std::shared_ptr<const ShardedBoundSolver>>
BoundServer::ApplyRecordsLocked(std::span<const DeltaRecord> records) {
  const std::shared_ptr<const ShardedBoundSolver> current = solver();
  if (current == nullptr) {
    return Status::FailedPrecondition("no snapshot loaded (use LOAD <path>)");
  }
  // Order of operations: validate + build first (a bad record must not
  // touch the journal), journal with fsync second (a crash after the
  // ack must recover to the acked epoch), publish last.
  const auto apply_start = std::chrono::steady_clock::now();
  PCX_ASSIGN_OR_RETURN(std::shared_ptr<const ShardedBoundSolver> next,
                       current->ApplyDeltas(records));
  delta_apply_hist_->Observe(MicrosSince(apply_start));
  bool checkpointed = false;
  if (log_ != nullptr && log_->initialized()) {
    for (const DeltaRecord& rec : records) {
      PCX_RETURN_IF_ERROR(log_->Append(rec));
    }
  }
  for (const DeltaRecord& rec : records) {
    checkpointed |= rec.op == DeltaOp::kCheckpoint;
  }
  SwapSolver(next, records);
  if (checkpointed && log_ != nullptr) {
    // Compact: the current state becomes the base and the journal
    // restarts empty. Runs on the primary's CHECKPOINT verb and — via
    // the shipped record — at the same epoch on logging replicas.
    PCX_RETURN_IF_ERROR(log_->Reset(next->ToSnapshot()));
  }
  return next;
}

Status BoundServer::HandleMutation(const std::string& cmd,
                                   const std::string& body,
                                   std::ostream& out) {
  MutexLock lock(mutate_mu_);
  const std::shared_ptr<const ShardedBoundSolver> current = solver();
  if (current == nullptr) {
    return Status::FailedPrecondition("no snapshot loaded (use LOAD <path>)");
  }
  DeltaRecord rec;
  rec.epoch = current->epoch() + 1;
  if (cmd == "APPEND") {
    if (body.empty()) {
      return Status::InvalidArgument(
          "usage: APPEND pred={...} values={...} freq=[lo,hi]");
    }
    rec.op = DeltaOp::kAppend;
    PCX_ASSIGN_OR_RETURN(
        rec.pc, ParsePcBody(body, current->constraints().num_attrs()));
  } else if (cmd == "RETIRE") {
    rec.op = DeltaOp::kRetire;
    const std::vector<std::string> args = SplitWhitespace(body);
    if (args.size() != 1) {
      return Status::InvalidArgument("usage: RETIRE <global-index>");
    }
    PCX_ASSIGN_OR_RETURN(const uint64_t idx, ParseU64(args[0]));
    rec.retire_index = static_cast<size_t>(idx);
  } else {
    rec.op = DeltaOp::kCheckpoint;
    if (!body.empty()) return Status::InvalidArgument("usage: CHECKPOINT");
  }
  PCX_ASSIGN_OR_RETURN(const std::shared_ptr<const ShardedBoundSolver> next,
                       ApplyRecordsLocked(std::span<const DeltaRecord>(
                           &rec, 1)));
  out << "OK epoch=" << next->epoch() << " pcs=" << next->constraints().size()
      << " shards=" << next->num_shards() << "\n";
  return Status::OK();
}

Status BoundServer::HandleSync(const std::vector<std::string>& tokens,
                               std::ostream& out) {
  if (tokens.size() != 2) {
    return Status::InvalidArgument("usage: SYNC <epoch|none>");
  }
  // One consistent read of {served snapshot, shippable tail}: the tail
  // always leads exactly to the solver published beside it.
  std::shared_ptr<const ShardedBoundSolver> current;
  std::vector<DeltaRecord> records;
  uint64_t floor = 0;
  {
    MutexLock lock(mu_);
    current = solver_;
    records = tail_;
    floor = tail_floor_;
  }
  if (current == nullptr) {
    return Status::FailedPrecondition(
        "no snapshot loaded; nothing to replicate");
  }
  const uint64_t epoch = current->epoch();
  bool have_from = false;
  uint64_t from = 0;
  if (tokens[1] != "none") {
    PCX_ASSIGN_OR_RETURN(from, ParseU64(tokens[1]));
    have_from = true;
  }
  if (have_from && from == epoch) {
    out << "SYNC epoch=" << epoch << " base_lines=0 records=0\n";
    return Status::OK();
  }
  if (have_from && from >= floor && from < epoch) {
    // The replica is within the retained tail: ship just the records in
    // (from, epoch]. Wire records carry chain=0 — the chain links files,
    // not streams; the replica validates crc + epoch contiguity.
    size_t count = 0;
    for (const DeltaRecord& r : records) count += r.epoch > from ? 1 : 0;
    out << "SYNC epoch=" << epoch << " base_lines=0 records=" << count
        << "\n";
    for (const DeltaRecord& r : records) {
      if (r.epoch > from) out << SerializeDeltaRecord(r, 0, nullptr) << "\n";
    }
    return Status::OK();
  }
  // Fresh replica, one behind the trimmed tail, or ahead of this
  // primary (a failover edge): full snapshot resync.
  const std::string text = SerializeSnapshot(current->ToSnapshot());
  const size_t lines =
      static_cast<size_t>(std::count(text.begin(), text.end(), '\n'));
  out << "SYNC epoch=" << epoch << " base_lines=" << lines << " records=0\n"
      << text;
  return Status::OK();
}

Status BoundServer::HandleBound(
    const ShardedBoundSolver& solver, const std::vector<std::string>& tokens,
    std::ostream& out, std::optional<ShardedBoundSolver::RouteInfo>* route) {
  // The TraceSpans are no-ops (no clock reads) unless this request's
  // session turned TRACE on; route/solve stages are recorded inside
  // Bound itself.
  const StatusOr<AggQuery> query = [&] {
    TraceSpan parse_span("parse");
    return ParseBoundRequest(tokens, solver.constraints().num_attrs());
  }();
  PCX_RETURN_IF_ERROR(query.status());
  // The RouteInfo is emplaced before Bound so a post-routing failure
  // still leaves its diagnostics for the slow-query log.
  ShardedBoundSolver::RouteInfo* info =
      route != nullptr ? &route->emplace() : nullptr;
  PCX_ASSIGN_OR_RETURN(const ResultRange range, solver.Bound(*query, info));
  {
    TraceSpan serialize_span("serialize");
    PrintResultRange(out, "RANGE ", range);
  }
  return Status::OK();
}

Status BoundServer::HandleGroupBy(const ShardedBoundSolver& solver,
                                  const std::vector<std::string>& tokens,
                                  std::ostream& out) {
  PCX_ASSIGN_OR_RETURN(
      const GroupByRequest request,
      ParseGroupByRequest(tokens, solver.constraints().num_attrs()));
  PCX_ASSIGN_OR_RETURN(
      const std::vector<GroupRange> groups,
      solver.BoundGroupBy(request.query, request.group_attr, request.values));
  out << "GROUPS " << groups.size() << "\n";
  for (const GroupRange& g : groups) {
    out << "GROUP " << FormatNumber(g.group_value) << " ";
    PrintResultRange(out, "", g.range);
  }
  return Status::OK();
}

Status BoundServer::HandleStats(const ShardedBoundSolver& solver,
                                std::ostream& out) {
  const ShardedBoundSolver::ServeStats s = solver.stats();
  char imbalance[32];
  std::snprintf(imbalance, sizeof(imbalance), "%.3f",
                solver.partition().ImbalanceRatio());
  out << "STATS epoch=" << solver.epoch() << " shards=" << solver.num_shards()
      << " pcs=" << solver.constraints().size()
      << " attrs=" << solver.constraints().num_attrs()
      << " components=" << solver.partition().num_components
      << " largest_component=" << solver.partition().largest_component
      << " imbalance=" << imbalance << " queries=" << s.queries
      << " single_shard=" << s.single_shard_queries
      << " multi_shard=" << s.multi_shard_queries
      << " no_shard=" << s.no_shard_queries
      << " scatter=" << s.scatter_queries
      << " union_solvers=" << s.union_solvers_built
      << " num_cells=" << s.solve.num_cells
      << " sat_calls=" << s.solve.sat_calls
      << " sat_cache_hits=" << s.solve.sat_cache_hits
      << " milp_nodes=" << s.solve.milp_nodes
      << " lp_solves=" << s.solve.lp_solves
      << " lp_pivots=" << s.solve.lp_pivots
      << " queue_depth=" << transport_.queue_depth.value()
      << " queue_high_water=" << transport_.queue_high_water.value()
      << " coalesced_batches=" << transport_.coalesced_batches.value()
      << " coalesced_reqs=" << transport_.coalesced_requests.value()
      << " max_batch=" << transport_.max_batch.value()
      << " overload_rejects=" << transport_.overload_rejections.value();
  // Routing-index shape + traffic split, appended at the end so
  // existing prefix-matching consumers keep working.
  const route::RouteIndexStats route_totals = solver.RouteIndexTotals();
  const char* mode = "index";
  switch (solver.options().route_mode) {
    case route::RouteMode::kLinear:
      mode = "linear";
      break;
    case route::RouteMode::kIndex:
      mode = "index";
      break;
    case route::RouteMode::kVerify:
      mode = "verify";
      break;
  }
  out << " route_mode=" << mode << " route_nodes=" << route_totals.num_entries
      << " route_depth=" << route_totals.depth
      << " route_index=" << s.route_index_queries
      << " route_fallback=" << s.route_fallback_queries << "\n";
  return Status::OK();
}

void BoundServer::HandleHealth(const ShardedBoundSolver* solver,
                               std::ostream& out) {
  // HEALTH must answer even before the first LOAD: a replica that is up
  // but empty is a different operational state from one that is down,
  // and a health checker needs to tell them apart without tripping the
  // FAILED_PRECONDITION that queries get.
  out << "HEALTH loaded=" << (solver != nullptr ? 1 : 0);
  if (solver != nullptr) {
    out << " epoch=" << solver->epoch() << " shards=" << solver->num_shards()
        << " pcs=" << solver->constraints().size()
        << " attrs=" << solver->constraints().num_attrs();
  } else {
    out << " epoch=0 shards=0 pcs=0 attrs=0";
  }
  out << " uptime_s=" << uptime_seconds() << " sessions=" << sessions()
      << " requests=" << requests()
      << " open_conns=" << transport_.open_connections.value()
      << " queue_depth=" << transport_.queue_depth.value()
      << " overload_rejects=" << transport_.overload_rejections.value();
  // Durability + replication posture, appended at the end so existing
  // prefix-matching health checks keep working. `lag` is the epoch
  // distance to the primary's last report (0 when not a replica).
  uint64_t tail_records = 0;
  {
    MutexLock lock(mu_);
    tail_records = tail_.size();
  }
  const bool replica = replication_.replica.load();
  const uint64_t primary_epoch = replication_.primary_epoch.load();
  const uint64_t local_epoch = solver != nullptr ? solver->epoch() : 0;
  const uint64_t lag =
      replica && primary_epoch > local_epoch ? primary_epoch - local_epoch : 0;
  out << " log=" << (log_enabled_.load() ? 1 : 0)
      << " log_records=" << tail_records << " replica=" << (replica ? 1 : 0)
      << " primary_epoch=" << primary_epoch << " lag=" << lag
      << " sync_errors=" << replication_.sync_failures.load() << "\n";
}

void BoundServer::HandleMetrics(const ShardedBoundSolver* solver,
                                std::ostream& out) {
  // Scrape-time gauges: state that has an authoritative owner elsewhere
  // (the pinned solver, the process clock, the session counter) is
  // refreshed at scrape instead of being double-maintained.
  metrics_.GetGauge("pcx_uptime_seconds", {}, "Process uptime")
      .Set(static_cast<int64_t>(uptime_seconds()));
  metrics_.GetGauge("pcx_loaded", {}, "1 once a snapshot is served")
      .Set(solver != nullptr ? 1 : 0);
  metrics_.GetGauge("pcx_epoch", {}, "Epoch of the served snapshot")
      .Set(solver != nullptr ? static_cast<int64_t>(solver->epoch()) : 0);
  metrics_.GetGauge("pcx_shards", {}, "Shards in the served snapshot")
      .Set(solver != nullptr ? static_cast<int64_t>(solver->num_shards()) : 0);
  metrics_.GetGauge("pcx_sessions", {}, "Sessions opened since start")
      .Set(static_cast<int64_t>(sessions()));
  metrics_
      .GetGauge("pcx_read_only", {},
                "1 when serving as a read-only replica")
      .Set(read_only_.load() ? 1 : 0);
  const std::string text = metrics_.Exposition();
  // Counted block framing (like GROUPS/SYNC): a typed client reads
  // exactly `n` lines and cannot desync on the multi-line body.
  const size_t lines =
      static_cast<size_t>(std::count(text.begin(), text.end(), '\n'));
  out << "METRICS " << lines << "\n" << text;
}

Status BoundServer::HandleTrace(const std::vector<std::string>& tokens,
                                Session* session, std::ostream& out) {
  if (session == nullptr) {
    return Status::FailedPrecondition(
        "TRACE is per-session; this transport did not attach session state");
  }
  if (tokens.size() != 2) {
    return Status::InvalidArgument("usage: TRACE ON|OFF");
  }
  const std::string arg = ToUpper(tokens[1]);
  if (arg != "ON" && arg != "OFF") {
    return Status::InvalidArgument("usage: TRACE ON|OFF");
  }
  const bool on = arg == "ON";
  session->trace.store(on, std::memory_order_relaxed);
  out << "OK trace=" << (on ? 1 : 0) << "\n";
  return Status::OK();
}

bool BoundServer::DispatchLine(
    const std::string& cmd, const std::vector<std::string>& tokens,
    const std::string& line, std::ostream& out, Session* session,
    std::optional<ShardedBoundSolver::RouteInfo>* route) {
  if (cmd == "QUIT" || cmd == "EXIT") {
    out << "BYE\n";
    return false;
  }

  // Pin the snapshot once per request: everything below runs against
  // this one immutable solver, so a concurrent LOAD can never tear a
  // reply across epochs.
  const std::shared_ptr<const ShardedBoundSolver> pinned = solver();

  if (cmd == "HEALTH") {
    HandleHealth(pinned.get(), out);
    return true;
  }
  if (cmd == "METRICS") {
    HandleMetrics(pinned.get(), out);
    return true;
  }

  Status status = Status::OK();
  if (cmd == "TRACE") {
    status = HandleTrace(tokens, session, out);
    if (!status.ok()) out << FormatErrorReply(status);
    return true;
  }
  if (cmd == "LOAD" || cmd == "APPEND" || cmd == "RETIRE" ||
      cmd == "CHECKPOINT") {
    if (read_only_.load()) {
      status = Status::FailedPrecondition(
          "server is a read-only replica (send mutations to the primary)");
      out << FormatErrorReply(status);
      return true;
    }
  }
  if (cmd == "APPEND" || cmd == "RETIRE" || cmd == "CHECKPOINT") {
    // The body is everything after the verb in the *raw* line: an
    // APPEND payload is three whitespace-separated fields, so token
    // re-joining would be lossy.
    const size_t start = line.find_first_not_of(" \t");
    const size_t space = line.find_first_of(" \t", start);
    const std::string body =
        space == std::string::npos ? "" : TrimWhitespace(line.substr(space));
    status = HandleMutation(cmd, body, out);
    if (!status.ok()) out << FormatErrorReply(status);
    return true;
  }
  if (cmd == "SYNC") {
    status = HandleSync(tokens, out);
    if (!status.ok()) out << FormatErrorReply(status);
    return true;
  }
  if (cmd == "LOAD") {
    if (tokens.size() != 2) {
      status = Status::InvalidArgument("usage: LOAD <snapshot-path>");
    } else {
      const StatusOr<std::shared_ptr<const ShardedBoundSolver>> loaded =
          LoadAndSwap(tokens[1]);
      status = loaded.status();
      if (status.ok()) {
        // Reply from the solver this LOAD installed, not a re-read of
        // the shared slot — a racing LOAD must not leak its epoch into
        // this session's OK line.
        out << "OK epoch=" << (*loaded)->epoch()
            << " shards=" << (*loaded)->num_shards()
            << " pcs=" << (*loaded)->constraints().size()
            << " attrs=" << (*loaded)->constraints().num_attrs() << "\n";
      }
    }
  } else if (cmd == "BOUND" || cmd == "GROUPBY" || cmd == "STATS") {
    if (pinned == nullptr) {
      status =
          Status::FailedPrecondition("no snapshot loaded (use LOAD <path>)");
    } else if (cmd == "BOUND") {
      status = HandleBound(*pinned, tokens, out, route);
    } else if (cmd == "GROUPBY") {
      status = HandleGroupBy(*pinned, tokens, out);
    } else {
      status = HandleStats(*pinned, out);
    }
  } else {
    status = Status::InvalidArgument(
        "unknown command '" + tokens[0] +
        "' (want LOAD/BOUND/GROUPBY/APPEND/RETIRE/CHECKPOINT/SYNC/STATS/"
        "HEALTH/METRICS/TRACE/QUIT)");
  }
  if (!status.ok()) out << FormatErrorReply(status);
  return true;
}

bool BoundServer::HandleLine(const std::string& line, std::ostream& out,
                             Session* session) {
  const std::vector<std::string> tokens = SplitWhitespace(line);
  if (tokens.empty() || tokens[0][0] == '#') return true;  // comment/blank
  const std::string cmd = ToUpper(tokens[0]);
  NoteRequestVerb(cmd == "EXIT" ? "QUIT" : cmd);

  // Tracing covers the dispatch only (the reply is already written when
  // the comment is appended); TRACE itself is never traced, so "TRACE
  // ON" output starts at the next request.
  const bool traced = session != nullptr &&
                      session->trace.load(std::memory_order_relaxed) &&
                      cmd != "TRACE";
  const auto start = std::chrono::steady_clock::now();
  std::optional<ShardedBoundSolver::RouteInfo> route;
  bool keep_going;
  if (traced) {
    TraceContext ctx;
    ScopedTrace scoped(&ctx);
    keep_going = DispatchLine(cmd, tokens, line, out, session, &route);
    out << ctx.FormatComment();
  } else {
    keep_going = DispatchLine(cmd, tokens, line, out, session, &route);
  }
  NoteRequestLatency(cmd == "EXIT" ? "QUIT" : cmd, line, MicrosSince(start),
                     route.has_value() ? &*route : nullptr);
  return keep_going;
}

void BoundServer::ServeStream(std::istream& in, std::ostream& out) {
  NoteSessionStart();
  Session session;
  std::string line;
  while (std::getline(in, line)) {
    StripTrailingCr(line);
    const bool keep_going = HandleLine(line, out, &session);
    out.flush();
    if (!keep_going) return;
  }
}

#ifndef _WIN32

bool IsTransientAcceptError(int error_code) {
  switch (error_code) {
    case ECONNABORTED:  // client gave up during the handshake
    case EPROTO:        // protocol error on the nascent connection
    case EINTR:
    case EAGAIN:
#if EAGAIN != EWOULDBLOCK
    case EWOULDBLOCK:
#endif
    case EMFILE:   // fd exhaustion: per-process...
    case ENFILE:   // ...or system-wide — sessions ending will free fds
    case ENOBUFS:
    case ENOMEM:
      return true;
    default:
      return false;  // EBADF, EINVAL, ENOTSOCK, EFAULT...: listener broken
  }
}

/// Live session sockets of one listener. Shutdown() disconnects them
/// so session workers blocked in read() wake up (EOF) and the drain in
/// Serve completes; a session that starts after Shutdown (accept race)
/// is disconnected at registration. Deregistration happens BEFORE the
/// session closes its fd, so DisconnectAll can never touch a recycled
/// descriptor number.
struct TcpSessionRegistry {
  Mutex mu;
  std::set<int> fds GUARDED_BY(mu);
  bool stopping GUARDED_BY(mu) = false;

  void Register(int fd) {
    MutexLock lock(mu);
    fds.insert(fd);
    if (stopping) ::shutdown(fd, SHUT_RDWR);
  }
  void Deregister(int fd) {
    MutexLock lock(mu);
    fds.erase(fd);
  }
  void DisconnectAll() {
    MutexLock lock(mu);
    stopping = true;
    for (const int fd : fds) ::shutdown(fd, SHUT_RDWR);
  }
};

StatusOr<TcpListener> TcpListener::Bind(uint16_t port, int backlog) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) return Status::Internal("socket() failed");
  const int enable = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listener);
    return Status::InvalidArgument("bind() failed on port " +
                                   std::to_string(port));
  }
  if (::listen(listener, backlog) < 0) {
    ::close(listener);
    return Status::Internal("listen() failed");
  }
  // With port 0 the kernel picked an ephemeral port; read it back so
  // the caller can announce it.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    ::close(listener);
    return Status::Internal("getsockname() failed");
  }
  return TcpListener(listener, ntohs(bound.sin_port));
}

TcpListener::TcpListener(int fd, uint16_t port)
    : fd_(fd),
      port_(port),
      stopping_(std::make_shared<std::atomic<bool>>(false)),
      sessions_(std::make_shared<TcpSessionRegistry>()) {}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_),
      port_(other.port_),
      stopping_(other.stopping_),
      sessions_(other.sessions_) {
  other.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    stopping_ = other.stopping_;
    sessions_ = other.sessions_;
    other.fd_ = -1;
  }
  return *this;
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpListener::Shutdown() {
  if (stopping_ != nullptr) stopping_->store(true);
  // Kicks a blocked accept() out with an error; the loop sees the flag
  // and exits gracefully. The fd itself stays open (the destructor owns
  // closing it), so a racing move cannot double-close.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  // In-flight sessions would otherwise block the drain for as long as
  // an idle client holds its connection open: disconnect their sockets
  // too, so blocked reads see EOF and the sessions wind down.
  if (sessions_ != nullptr) sessions_->DisconnectAll();
}

namespace {

/// A transient accept() error that repeats this many times in a row
/// with no successful accept in between is no longer transient — the
/// retry loop must not spin forever on a wedged listener. Resource-
/// exhaustion errors back off kResourceBackoff per retry, so the cap
/// tolerates ~10 s of sustained fd pressure (long enough for busy
/// sessions to finish and free their fds) before giving up.
constexpr size_t kMaxConsecutiveAcceptFailures = 200;
constexpr std::chrono::milliseconds kResourceBackoff{50};

/// Writes the whole reply; false when the client went away. MSG_NOSIGNAL
/// keeps a disconnect from raising SIGPIPE and killing the server — a
/// dropped client must cost exactly its own session.
bool WriteAll(int client, const std::string& text) {
  size_t written = 0;
  while (written < text.size()) {
    const ssize_t w = ::send(client, text.data() + written,
                             text.size() - written, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(w);
  }
  return true;
}

/// One client session: line-at-a-time request/reply until QUIT or
/// disconnect. Runs on a session worker; `server` is shared with every
/// other session (HandleLine is thread-safe) while the socket is owned
/// by this session alone, so replies cannot interleave.
void ServeClient(BoundServer& server, int client,
                 TcpSessionRegistry* registry) {
  if (registry != nullptr) registry->Register(client);
  server.NoteSessionStart();
  BoundServer::Session session;
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::read(client, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // client closed (or error): end the session
    buffer.append(chunk, static_cast<size_t>(n));
    size_t at;
    while (open && (at = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, at);
      buffer.erase(0, at + 1);
      StripTrailingCr(line);
      std::ostringstream reply;
      open = server.HandleLine(line, reply, &session);
      if (!WriteAll(client, reply.str())) open = false;
    }
    if (open && buffer.size() > TcpListener::kMaxRequestLineBytes) {
      // A newline-less stream past the cap can only be abuse or a
      // broken client; one session must not grow the shared server's
      // memory without bound. Answer once, typed, and hang up.
      WriteAll(client,
               "ERR INVALID_ARGUMENT request line exceeds " +
                   std::to_string(TcpListener::kMaxRequestLineBytes) +
                   " bytes\n");
      ::shutdown(client, SHUT_WR);  // FIN right after the reply
      // Drain what the client has already sent: close() with unread
      // bytes queued turns the teardown into an RST that can destroy
      // the ERR before the client reads it. Bounded, so an endless
      // stream cannot pin the session either.
      size_t drained = 0;
      while (drained < 8 * TcpListener::kMaxRequestLineBytes) {
        const ssize_t n = ::read(client, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        drained += static_cast<size_t>(n);
      }
      open = false;
    }
  }
  if (open && !buffer.empty()) {
    // EOF with a residual un-terminated line: a client that wrote its
    // last command without a trailing '\n' and closed still deserves an
    // answer — exactly what ServeStream's getline path does on stdio.
    StripTrailingCr(buffer);
    std::ostringstream reply;
    server.HandleLine(buffer, reply, &session);
    WriteAll(client, reply.str());
  }
  if (registry != nullptr) registry->Deregister(client);
  ::close(client);
}

}  // namespace

Status TcpListener::Serve(BoundServer& server, const ServeOptions& options) {
  if (fd_ < 0) return Status::FailedPrecondition("listener is closed");
  const size_t workers =
      options.session_threads == 0 ? 1 : options.session_threads;
  // The pool is the drain point: its destructor (and Wait) runs every
  // dispatched session to completion, which is what makes Shutdown and
  // max_clients graceful instead of abandoning sockets mid-reply.
  std::optional<ThreadPool> pool;
  if (workers > 1) pool.emplace(workers);

  Status result = Status::OK();
  size_t served = 0;
  size_t consecutive_failures = 0;
  while (options.max_clients == 0 || served < options.max_clients) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (stopping_->load()) {
      if (client >= 0) ::close(client);  // raced with Shutdown: turn away
      break;
    }
    if (client < 0) {
      const int error_code = errno;
      if (error_code == EINTR) continue;
      if (IsTransientAcceptError(error_code) &&
          ++consecutive_failures < kMaxConsecutiveAcceptFailures) {
        // Resource exhaustion heals when a session closes its fd; back
        // off instead of spinning on the error.
        if (error_code == EMFILE || error_code == ENFILE ||
            error_code == ENOBUFS || error_code == ENOMEM) {
          std::this_thread::sleep_for(kResourceBackoff);
        }
        continue;
      }
      result = Status::Internal(std::string("accept() failed: ") +
                                std::strerror(error_code));
      // Tearing down on an error: disconnect in-flight sessions like
      // Shutdown does, or the drain below could wait forever on an
      // idle client and the error would never surface.
      sessions_->DisconnectAll();
      break;
    }
    consecutive_failures = 0;
    ++served;
    if (pool.has_value()) {
      // The worker keeps the registry alive even across a move of the
      // listener object itself.
      pool->Submit([&server, client, registry = sessions_] {
        ServeClient(server, client, registry.get());
      });
    } else {
      ServeClient(server, client, sessions_.get());
    }
  }
  if (pool.has_value()) pool->Wait();  // drain in-flight sessions
  return result;
}

Status TcpListener::Serve(BoundServer& server, size_t max_clients) {
  ServeOptions options;
  options.max_clients = max_clients;
  return Serve(server, options);
}

Status ServeTcp(BoundServer& server, uint16_t port, size_t max_clients) {
  PCX_ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Bind(port));
  return listener.Serve(server, max_clients);
}

#else  // _WIN32

bool IsTransientAcceptError(int) { return false; }

StatusOr<TcpListener> TcpListener::Bind(uint16_t, int) {
  return Status::Unimplemented("TcpListener: POSIX sockets only");
}
TcpListener::TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}
TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}
TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  fd_ = other.fd_;
  port_ = other.port_;
  other.fd_ = -1;
  return *this;
}
TcpListener::~TcpListener() = default;
void TcpListener::Shutdown() {}
Status TcpListener::Serve(BoundServer&, const ServeOptions&) {
  return Status::Unimplemented("TcpListener: POSIX sockets only");
}
Status TcpListener::Serve(BoundServer&, size_t) {
  return Status::Unimplemented("TcpListener: POSIX sockets only");
}

Status ServeTcp(BoundServer&, uint16_t, size_t) {
  return Status::Unimplemented("ServeTcp: POSIX sockets only");
}

#endif

}  // namespace pcx
