#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "common/text.h"
#include "pc/serialization.h"

namespace pcx {
namespace {

std::string ToUpper(std::string s) {
  for (char& c : s) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return s;
}

/// Error text must stay a single protocol line.
std::string OneLine(std::string s) {
  std::replace(s.begin(), s.end(), '\n', ' ');
  std::replace(s.begin(), s.end(), '\r', ' ');
  return s;
}

StatusOr<AggFunc> ParseAgg(const std::string& token) {
  const std::string up = ToUpper(token);
  if (up == "COUNT") return AggFunc::kCount;
  if (up == "SUM") return AggFunc::kSum;
  if (up == "AVG") return AggFunc::kAvg;
  if (up == "MIN") return AggFunc::kMin;
  if (up == "MAX") return AggFunc::kMax;
  return Status::InvalidArgument("unknown aggregate '" + token +
                                 "' (want COUNT/SUM/AVG/MIN/MAX)");
}

StatusOr<size_t> ParseIndex(const std::string& token,
                            const std::string& what) {
  const auto v = ParseU64(token);
  if (!v.ok()) {
    return Status::InvalidArgument("bad " + what + " '" + token + "'");
  }
  return static_cast<size_t>(*v);
}

/// Conjoins the box literals in tokens[from..] into a WHERE predicate
/// (nullopt when there are none).
StatusOr<std::optional<Predicate>> ParseWhere(
    const std::vector<std::string>& tokens, size_t from, size_t num_attrs) {
  if (from >= tokens.size()) return std::optional<Predicate>{};
  Box where(num_attrs);
  for (size_t t = from; t < tokens.size(); ++t) {
    PCX_ASSIGN_OR_RETURN(const Box box, ParseBox(tokens[t], num_attrs));
    where.IntersectWith(box);
  }
  return std::optional<Predicate>(Predicate(std::move(where)));
}

}  // namespace

StatusOr<AggQuery> ParseBoundRequest(const std::vector<std::string>& tokens,
                                     size_t num_attrs) {
  if (tokens.size() < 3) {
    return Status::InvalidArgument(
        "usage: BOUND <COUNT|SUM|AVG|MIN|MAX> <attr> [{a:[lo,hi],...}...]");
  }
  AggQuery query;
  PCX_ASSIGN_OR_RETURN(query.agg, ParseAgg(tokens[1]));
  PCX_ASSIGN_OR_RETURN(query.attr, ParseIndex(tokens[2], "attribute index"));
  PCX_ASSIGN_OR_RETURN(query.where, ParseWhere(tokens, 3, num_attrs));
  return query;
}

StatusOr<GroupByRequest> ParseGroupByRequest(
    const std::vector<std::string>& tokens, size_t num_attrs) {
  if (tokens.size() < 5) {
    return Status::InvalidArgument(
        "usage: GROUPBY <AGG> <attr> <group_attr> <v1,v2,...> [{box}...]");
  }
  GroupByRequest request;
  PCX_ASSIGN_OR_RETURN(request.query.agg, ParseAgg(tokens[1]));
  PCX_ASSIGN_OR_RETURN(request.query.attr,
                       ParseIndex(tokens[2], "attribute index"));
  PCX_ASSIGN_OR_RETURN(request.group_attr,
                       ParseIndex(tokens[3], "group attribute"));
  {
    std::istringstream is(tokens[4]);
    std::string part;
    while (std::getline(is, part, ',')) {
      if (part.empty()) continue;
      PCX_ASSIGN_OR_RETURN(const double v, ParseNumber(part));
      request.values.push_back(v);
    }
  }
  if (request.values.empty()) {
    return Status::InvalidArgument("empty group value list '" + tokens[4] +
                                   "'");
  }
  PCX_ASSIGN_OR_RETURN(request.query.where, ParseWhere(tokens, 5, num_attrs));
  return request;
}

void PrintResultRange(std::ostream& out, const char* label,
                      const ResultRange& range) {
  out << label << "lo=" << FormatNumber(range.lo)
      << " hi=" << FormatNumber(range.hi)
      << " defined=" << (range.defined ? 1 : 0)
      << " empty_possible=" << (range.empty_instance_possible ? 1 : 0)
      << "\n";
}

BoundServer::BoundServer() : BoundServer(Options{}) {}
BoundServer::BoundServer(Options options) : options_(std::move(options)) {}
BoundServer::~BoundServer() = default;

Status BoundServer::LoadSnapshotFile(const std::string& path) {
  PCX_ASSIGN_OR_RETURN(const Snapshot snap, LoadSnapshot(path));
  solver_ =
      std::make_unique<ShardedBoundSolver>(snap, options_.solver);
  snapshot_path_ = path;
  return Status::OK();
}

Status BoundServer::HandleBound(const std::vector<std::string>& tokens,
                                std::ostream& out) {
  if (solver_ == nullptr) {
    return Status::FailedPrecondition("no snapshot loaded (use LOAD <path>)");
  }
  PCX_ASSIGN_OR_RETURN(
      const AggQuery query,
      ParseBoundRequest(tokens, solver_->constraints().num_attrs()));
  PCX_ASSIGN_OR_RETURN(const ResultRange range, solver_->Bound(query));
  PrintResultRange(out, "RANGE ", range);
  return Status::OK();
}

Status BoundServer::HandleGroupBy(const std::vector<std::string>& tokens,
                                  std::ostream& out) {
  if (solver_ == nullptr) {
    return Status::FailedPrecondition("no snapshot loaded (use LOAD <path>)");
  }
  PCX_ASSIGN_OR_RETURN(
      const GroupByRequest request,
      ParseGroupByRequest(tokens, solver_->constraints().num_attrs()));
  PCX_ASSIGN_OR_RETURN(
      const std::vector<GroupRange> groups,
      solver_->BoundGroupBy(request.query, request.group_attr,
                            request.values));
  out << "GROUPS " << groups.size() << "\n";
  for (const GroupRange& g : groups) {
    out << "GROUP " << FormatNumber(g.group_value) << " ";
    PrintResultRange(out, "", g.range);
  }
  return Status::OK();
}

Status BoundServer::HandleStats(std::ostream& out) {
  if (solver_ == nullptr) {
    return Status::FailedPrecondition("no snapshot loaded (use LOAD <path>)");
  }
  const ShardedBoundSolver::ServeStats s = solver_->stats();
  char imbalance[32];
  std::snprintf(imbalance, sizeof(imbalance), "%.3f",
                solver_->partition().ImbalanceRatio());
  out << "STATS epoch=" << solver_->epoch()
      << " shards=" << solver_->num_shards()
      << " pcs=" << solver_->constraints().size()
      << " attrs=" << solver_->constraints().num_attrs()
      << " components=" << solver_->partition().num_components
      << " largest_component=" << solver_->partition().largest_component
      << " imbalance=" << imbalance << " queries=" << s.queries
      << " single_shard=" << s.single_shard_queries
      << " multi_shard=" << s.multi_shard_queries
      << " no_shard=" << s.no_shard_queries
      << " scatter=" << s.scatter_queries
      << " union_solvers=" << s.union_solvers_built
      << " num_cells=" << s.solve.num_cells
      << " sat_calls=" << s.solve.sat_calls
      << " sat_cache_hits=" << s.solve.sat_cache_hits
      << " milp_nodes=" << s.solve.milp_nodes
      << " lp_solves=" << s.solve.lp_solves
      << " lp_pivots=" << s.solve.lp_pivots << "\n";
  return Status::OK();
}

bool BoundServer::HandleLine(const std::string& line, std::ostream& out) {
  const std::vector<std::string> tokens = SplitWhitespace(line);
  if (tokens.empty() || tokens[0][0] == '#') return true;  // comment/blank
  const std::string cmd = ToUpper(tokens[0]);

  if (cmd == "QUIT" || cmd == "EXIT") {
    out << "BYE\n";
    return false;
  }

  Status status = Status::OK();
  if (cmd == "LOAD") {
    if (tokens.size() != 2) {
      status = Status::InvalidArgument("usage: LOAD <snapshot-path>");
    } else {
      status = LoadSnapshotFile(tokens[1]);
      if (status.ok()) {
        out << "OK epoch=" << solver_->epoch()
            << " shards=" << solver_->num_shards()
            << " pcs=" << solver_->constraints().size()
            << " attrs=" << solver_->constraints().num_attrs() << "\n";
      }
    }
  } else if (cmd == "BOUND") {
    status = HandleBound(tokens, out);
  } else if (cmd == "GROUPBY") {
    status = HandleGroupBy(tokens, out);
  } else if (cmd == "STATS") {
    status = HandleStats(out);
  } else {
    status = Status::InvalidArgument(
        "unknown command '" + tokens[0] +
        "' (want LOAD/BOUND/GROUPBY/STATS/QUIT)");
  }
  if (!status.ok()) {
    // The code name travels with the message so typed clients
    // (engine/remote_backend.h) reconstruct the exact pcx::StatusCode.
    out << "ERR " << StatusCodeToString(status.code()) << " "
        << OneLine(status.message()) << "\n";
  }
  return true;
}

void BoundServer::ServeStream(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    const bool keep_going = HandleLine(line, out);
    out.flush();
    if (!keep_going) return;
  }
}

#ifndef _WIN32

StatusOr<TcpListener> TcpListener::Bind(uint16_t port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) return Status::Internal("socket() failed");
  const int enable = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listener);
    return Status::InvalidArgument("bind() failed on port " +
                                   std::to_string(port));
  }
  if (::listen(listener, 4) < 0) {
    ::close(listener);
    return Status::Internal("listen() failed");
  }
  // With port 0 the kernel picked an ephemeral port; read it back so
  // the caller can announce it.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    ::close(listener);
    return Status::Internal("getsockname() failed");
  }
  return TcpListener(listener, ntohs(bound.sin_port));
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

namespace {

/// Writes the whole reply; false when the client went away. MSG_NOSIGNAL
/// keeps a disconnect from raising SIGPIPE and killing the server — a
/// dropped client must cost exactly its own session.
bool WriteAll(int client, const std::string& text) {
  size_t written = 0;
  while (written < text.size()) {
    const ssize_t w = ::send(client, text.data() + written,
                             text.size() - written, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(w);
  }
  return true;
}

/// One client session: line-at-a-time request/reply until QUIT or
/// disconnect.
void ServeClient(BoundServer& server, int client) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::read(client, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // client closed (or error): end the session
    buffer.append(chunk, static_cast<size_t>(n));
    size_t at;
    while (open && (at = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, at);
      buffer.erase(0, at + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      std::ostringstream reply;
      open = server.HandleLine(line, reply);
      if (!WriteAll(client, reply.str())) open = false;
    }
  }
  ::close(client);
}

}  // namespace

Status TcpListener::Serve(BoundServer& server, size_t max_clients) {
  if (fd_ < 0) return Status::FailedPrecondition("listener is closed");
  size_t served = 0;
  while (max_clients == 0 || served < max_clients) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("accept() failed");
    }
    ++served;
    ServeClient(server, client);
  }
  return Status::OK();
}

Status ServeTcp(BoundServer& server, uint16_t port, size_t max_clients) {
  PCX_ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Bind(port));
  return listener.Serve(server, max_clients);
}

#else  // _WIN32

StatusOr<TcpListener> TcpListener::Bind(uint16_t) {
  return Status::Unimplemented("TcpListener: POSIX sockets only");
}
TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}
TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  fd_ = other.fd_;
  port_ = other.port_;
  other.fd_ = -1;
  return *this;
}
TcpListener::~TcpListener() = default;
Status TcpListener::Serve(BoundServer&, size_t) {
  return Status::Unimplemented("TcpListener: POSIX sockets only");
}

Status ServeTcp(BoundServer&, uint16_t, size_t) {
  return Status::Unimplemented("ServeTcp: POSIX sockets only");
}

#endif

}  // namespace pcx
