#ifndef PCX_SERVE_EVENT_LOOP_H_
#define PCX_SERVE_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.h"
#include "serve/server.h"

namespace pcx {

/// Event-driven transport for BoundServer: one epoll loop owns every
/// connection, so ten thousand idle or slow clients cost one fd each
/// instead of one blocked thread each (the C10K architecture; the
/// thread-per-session TcpListener remains as the compatibility mode).
///
/// The loop exploits serving fan-in instead of merely surviving it:
/// BOUND requests that arrive across *different* connections within a
/// coalescing window (`coalesce_us`) are gathered into one
/// ShardedBoundSolver::BoundBatch on a small solver pool, and the
/// replies are scattered back to their connections afterwards. Batch
/// execution pins the snapshot once, so every reply in a batch — like
/// every reply on the legacy transport — is computed at exactly one
/// epoch, and BoundBatch's bit-identity guarantee makes a coalesced
/// answer byte-identical to a sequential one.
///
/// Request/reply semantics are identical to TcpListener sessions by
/// construction: everything except the BOUND fast path is answered by
/// the same BoundServer::HandleLine, and BOUND uses the same parser and
/// reply formatter. Replies on one connection always come back in
/// request order (per-connection reply slots), even though GROUPBY/LOAD
/// run on pool workers while HEALTH/STATS answer inline.
///
/// Admission control instead of unbounded queueing: a request that
/// would push the solver queue past `max_queue`, or one connection past
/// `max_conn_pending` outstanding replies, is answered immediately with
/// a typed "ERR UNAVAILABLE ..." line — the client sees overload as a
/// retryable error (RemoteBackend::RetryPolicy) instead of an
/// ever-growing latency. Rejections, queue depth, and coalesced batch
/// sizes are reported through STATS/HEALTH (BoundServer::TransportStats).
///
/// Linux-only (epoll); Bind returns kUnimplemented elsewhere.
class EventLoopListener {
 public:
  /// Deeper than TcpListener's default: a C10K connect burst should
  /// queue in the kernel, not get connection-refused.
  static constexpr int kDefaultBacklog = 1024;

  struct Options {
    /// Serve returns once this many accepted connections have fully
    /// ended (0 = serve until Shutdown).
    size_t max_clients = 0;
    /// Workers executing coalesced BOUND batches and GROUPBY/LOAD
    /// requests (0 = 2). The loop thread itself never solves.
    size_t solver_threads = 2;
    /// Admission cap: BOUND/GROUPBY/LOAD requests admitted but not yet
    /// answered, across all connections. Beyond it: ERR UNAVAILABLE.
    size_t max_queue = 1024;
    /// Admission cap per connection: outstanding (unanswered) requests
    /// one client may pipeline. Beyond it: ERR UNAVAILABLE.
    size_t max_conn_pending = 64;
    /// Coalescing window: after the first pending BOUND arrives, the
    /// loop waits up to this long for more before dispatching the
    /// batch (0 = dispatch immediately, i.e. no cross-connection
    /// batching beyond what one readable burst delivers).
    uint32_t coalesce_us = 200;
    /// Dispatch a batch early once it reaches this many requests.
    size_t max_batch = 256;
  };

  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral).
  static StatusOr<EventLoopListener> Bind(uint16_t port,
                                          int backlog = kDefaultBacklog);

  EventLoopListener(EventLoopListener&& other) noexcept;
  EventLoopListener& operator=(EventLoopListener&& other) noexcept;
  EventLoopListener(const EventLoopListener&) = delete;
  EventLoopListener& operator=(const EventLoopListener&) = delete;
  ~EventLoopListener();

  /// The actual bound port (the kernel's pick when Bind got 0).
  uint16_t port() const { return port_; }

  /// Runs the event loop until Shutdown (or `max_clients` sessions have
  /// ended). Single-threaded: the calling thread becomes the loop.
  Status Serve(BoundServer& server, const Options& options);
  Status Serve(BoundServer& server) { return Serve(server, Options()); }

  /// Stops a Serve running on another thread: in-flight connections are
  /// disconnected, queued solver work is drained, Serve returns OK.
  /// Safe to call from any thread, any number of times.
  void Shutdown();

 private:
  EventLoopListener(int fd, uint16_t port, int wake_read, int wake_write);

  int fd_ = -1;
  uint16_t port_ = 0;
  /// Self-pipe: Shutdown() and pool workers write one byte to wake the
  /// epoll loop. Created at Bind so Shutdown works in any Serve state.
  int wake_read_ = -1;
  int wake_write_ = -1;
  /// Heap-allocated so Shutdown() stays valid across moves.
  std::shared_ptr<std::atomic<bool>> stopping_;
};

/// One-call convenience mirroring ServeTcp.
Status ServeEventLoop(BoundServer& server, uint16_t port,
                      const EventLoopListener::Options& options);

}  // namespace pcx

#endif  // PCX_SERVE_EVENT_LOOP_H_
