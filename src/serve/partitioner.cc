#include "serve/partitioner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace pcx {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Union-find over PC indices.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

/// One overlap component prepared for assignment.
struct Component {
  std::vector<size_t> members;  ///< global PC indices, ascending
  double cost = 0.0;
  double midpoint = 0.0;  ///< along the chosen range attribute
};

/// Representative coordinate of `iv` for range ordering: the midpoint
/// when finite, the finite end when half-open, 0 for the full line.
double IntervalMid(const Interval& iv) {
  const bool lo_fin = iv.lo != -kInf;
  const bool hi_fin = iv.hi != kInf;
  if (lo_fin && hi_fin) return iv.lo + (iv.hi - iv.lo) / 2.0;
  if (lo_fin) return iv.lo;
  if (hi_fin) return iv.hi;
  return 0.0;
}

/// Midpoint of a component's bounding box along `attr`.
double ComponentMid(const PredicateConstraintSet& pcs,
                    const std::vector<size_t>& members, size_t attr) {
  double lo = kInf, hi = -kInf;
  for (size_t i : members) {
    const Interval& iv = pcs.at(i).predicate().box().dim(attr);
    lo = std::min(lo, IntervalMid(iv));
    hi = std::max(hi, IntervalMid(iv));
  }
  if (lo > hi) return 0.0;
  return lo + (hi - lo) / 2.0;
}

}  // namespace

double Partition::ImbalanceRatio() const {
  double total = 0.0, max_cost = 0.0;
  for (double c : estimated_cost) {
    total += c;
    max_cost = std::max(max_cost, c);
  }
  if (total <= 0.0 || estimated_cost.empty()) return 0.0;
  return max_cost / (total / static_cast<double>(estimated_cost.size()));
}

double EstimateComponentCost(size_t num_pcs) {
  if (num_pcs <= 1) return static_cast<double>(num_pcs);
  // Sign assignments over the component's predicates, capped so a huge
  // merged component doesn't overflow the balancing arithmetic.
  const double cells = std::pow(2.0, std::min<size_t>(num_pcs, 40)) - 1.0;
  return std::min(cells, 1e12);
}

std::vector<std::vector<size_t>> OverlapComponents(
    const PredicateConstraintSet& pcs,
    const std::vector<AttrDomain>& domains) {
  const size_t n = pcs.size();
  DisjointSets sets(n);
  for (size_t i = 0; i < n; ++i) {
    const Box& bi = pcs.at(i).predicate().box();
    for (size_t j = i + 1; j < n; ++j) {
      if (!bi.IntersectionEmpty(pcs.at(j).predicate().box(), domains)) {
        sets.Union(i, j);
      }
    }
  }
  // Components in discovery order = order of their smallest member.
  std::vector<std::vector<size_t>> comps;
  std::vector<size_t> comp_of(n, SIZE_MAX);
  for (size_t i = 0; i < n; ++i) {
    const size_t root = sets.Find(i);
    if (comp_of[root] == SIZE_MAX) {
      comp_of[root] = comps.size();
      comps.push_back({});
    }
    comps[comp_of[root]].push_back(i);
  }
  return comps;
}

Partition PartitionPcSet(const PredicateConstraintSet& pcs,
                         const std::vector<AttrDomain>& domains,
                         const PartitionOptions& options) {
  const size_t n = pcs.size();
  const size_t k =
      std::min(std::max<size_t>(options.num_shards, 1), kMaxShards);
  Partition out;
  out.shards.assign(k, {});
  out.estimated_cost.assign(k, 0.0);
  if (n == 0) return out;

  std::vector<Component> comps;
  for (std::vector<size_t>& members : OverlapComponents(pcs, domains)) {
    Component c;
    c.members = std::move(members);
    comps.push_back(std::move(c));
  }
  out.num_components = comps.size();
  out.component_of.assign(n, 0);
  for (size_t c = 0; c < comps.size(); ++c) {
    comps[c].cost = EstimateComponentCost(comps[c].members.size());
    out.largest_component =
        std::max(out.largest_component, comps[c].members.size());
    for (size_t i : comps[c].members) out.component_of[i] = c;
  }

  // --- Assignment.
  std::vector<size_t> shard_of_comp(comps.size());
  if (options.strategy == PartitionStrategy::kRoundRobin ||
      comps.size() <= 1) {
    for (size_t c = 0; c < comps.size(); ++c) shard_of_comp[c] = c % k;
  } else {
    // Attribute-range: order components along the attribute that spreads
    // their midpoints the most, then pack contiguous runs of roughly
    // equal estimated cost (greedy linear partitioning).
    const size_t num_attrs = pcs.num_attrs();
    size_t best_attr = 0;
    double best_spread = -1.0;
    for (size_t a = 0; a < num_attrs; ++a) {
      double lo = kInf, hi = -kInf;
      for (const Component& c : comps) {
        const double mid = ComponentMid(pcs, c.members, a);
        lo = std::min(lo, mid);
        hi = std::max(hi, mid);
      }
      const double spread = hi - lo;
      if (spread > best_spread) {
        best_spread = spread;
        best_attr = a;
      }
    }
    for (Component& c : comps) {
      c.midpoint = ComponentMid(pcs, c.members, best_attr);
    }
    std::vector<size_t> order(comps.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (comps[a].midpoint != comps[b].midpoint) {
        return comps[a].midpoint < comps[b].midpoint;
      }
      return comps[a].members.front() < comps[b].members.front();
    });

    double remaining = 0.0;
    for (const Component& c : comps) remaining += c.cost;
    size_t shard = 0;
    double current = 0.0;
    for (size_t pos = 0; pos < order.size(); ++pos) {
      const Component& c = comps[order[pos]];
      const size_t shards_left = k - shard;
      const size_t comps_left = order.size() - pos;
      // Fair share of everything not yet sealed (open shard included) —
      // a shrinking-remainder target would close shards early.
      const double target =
          (current + remaining) / static_cast<double>(shards_left);
      // Close the current shard when it has met its fair share (counting
      // half of the next component, the classic rounding rule), or when
      // the remaining components are only just enough to keep every
      // remaining shard non-empty.
      const bool must_advance = comps_left <= shards_left - 1;
      const bool over_target =
          current > 0.0 && current + c.cost / 2.0 > target;
      if (shard + 1 < k && current > 0.0 && (over_target || must_advance)) {
        ++shard;
        current = 0.0;
      }
      shard_of_comp[order[pos]] = shard;
      current += c.cost;
      remaining -= c.cost;
    }
  }

  for (size_t c = 0; c < comps.size(); ++c) {
    const size_t s = shard_of_comp[c];
    out.estimated_cost[s] += comps[c].cost;
    for (size_t i : comps[c].members) out.shards[s].push_back(i);
  }
  // Global order within a shard (members were pushed per component).
  for (auto& shard : out.shards) std::sort(shard.begin(), shard.end());
  return out;
}

}  // namespace pcx
