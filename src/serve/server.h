#ifndef PCX_SERVE_SERVER_H_
#define PCX_SERVE_SERVER_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/sharded_solver.h"

namespace pcx {

/// Blocking line-protocol front end over a ShardedBoundSolver — the
/// "aha" loop of the serving subsystem: load a versioned snapshot,
/// answer aggregate-bound queries, report serving counters. One request
/// per line, one reply per line (GROUPBY replies with a counted block),
/// so the server is drivable from a pipe, a socket, CI, or a human:
///
///   LOAD examples/snapshots/sensors.pcxsnap
///   OK epoch=1 shards=2 pcs=6 attrs=3
///   BOUND SUM 2 {0:[0,24)}
///   RANGE lo=0 hi=1250 defined=1 empty_possible=1
///   GROUPBY COUNT 0 0 0,1,2
///   GROUPS 3
///   GROUP 0 lo=0 hi=40 defined=1 empty_possible=1
///   ...
///   STATS
///   STATS epoch=1 shards=2 ... sat_cache_hits=12 ...
///   QUIT
///   BYE
///
/// Predicates travel as whitespace-free box literals in the
/// pc/serialization syntax ("{attr:[lo,hi),...}"); several boxes on one
/// line are conjoined. Errors come back as a single
/// "ERR <CODE> <reason>" line — CODE is the StatusCodeToString name of
/// the typed pcx::Status, so a typed client (engine/remote_backend.h)
/// reconstructs the exact error code instead of string-matching — and
/// never kill the session. The server object itself is single-threaded
/// (one protocol stream); parallelism lives inside the solver's shard
/// fan-out.
class BoundServer {
 public:
  struct Options {
    /// Forwarded to every solver a LOAD constructs.
    ShardedBoundSolver::Options solver;
  };

  BoundServer();
  explicit BoundServer(Options options);
  ~BoundServer();

  /// Loads a snapshot from disk and swaps it in (LOAD command body).
  Status LoadSnapshotFile(const std::string& path);

  /// Handles one protocol line, writing the reply to `out`. Returns
  /// false iff the line was QUIT (the stream should end).
  bool HandleLine(const std::string& line, std::ostream& out);

  /// Runs the protocol until EOF or QUIT, flushing after every reply.
  void ServeStream(std::istream& in, std::ostream& out);

  /// Non-null after a successful LOAD.
  const ShardedBoundSolver* solver() const { return solver_.get(); }

 private:
  Status HandleBound(const std::vector<std::string>& tokens,
                     std::ostream& out);
  Status HandleGroupBy(const std::vector<std::string>& tokens,
                       std::ostream& out);
  Status HandleStats(std::ostream& out);

  Options options_;
  std::unique_ptr<ShardedBoundSolver> solver_;
  std::string snapshot_path_;
};

/// Shared request-parsing helpers: the server's command dispatch and
/// the typed client REPL of `pcx_serve --connect` parse the same lines
/// with the same code, so request syntax cannot drift between the two
/// sides of the protocol.

/// "BOUND <AGG> <attr> [{box}...]" -> AggQuery (tokens[0] ignored).
StatusOr<AggQuery> ParseBoundRequest(const std::vector<std::string>& tokens,
                                     size_t num_attrs);

struct GroupByRequest {
  AggQuery query;
  size_t group_attr = 0;
  std::vector<double> values;
};
/// "GROUPBY <AGG> <attr> <group_attr> <v1,v2,...> [{box}...]".
StatusOr<GroupByRequest> ParseGroupByRequest(
    const std::vector<std::string>& tokens, size_t num_attrs);

/// Writes the "<label>lo=... hi=... defined=... empty_possible=..."
/// reply body (numbers in round-trippable pc/serialization formatting,
/// so a client parses back bit-identical ranges).
void PrintResultRange(std::ostream& out, const char* label,
                      const ResultRange& range);

/// A listening localhost TCP socket serving the line protocol. Binding
/// and serving are separate so a port-0 (kernel-assigned ephemeral)
/// listener can report the actual port before the accept loop starts —
/// tests and CI need no fixed-port reservations:
///
///   PCX_ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Bind(0));
///   std::printf("PORT %u\n", listener.port());
///   return listener.Serve(server);
///
/// Serve accepts clients one at a time, each getting the same
/// BoundServer (same loaded snapshot, cumulative STATS). Client
/// disconnects — including mid-reply drops, which must not raise
/// SIGPIPE and kill the process — only end that session; the loop keeps
/// accepting until `max_clients` sessions (0 = forever).
class TcpListener {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral).
  static StatusOr<TcpListener> Bind(uint16_t port);

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  /// The actual bound port (the kernel's pick when Bind got 0).
  uint16_t port() const { return port_; }

  /// Runs the accept loop; returns OK after `max_clients` sessions
  /// (0 = accept forever, only socket teardown errors return).
  Status Serve(BoundServer& server, size_t max_clients = 0);

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// One-call convenience: Bind(port) + Serve. With port 0 the chosen
/// port is only observable through the two-step TcpListener path.
Status ServeTcp(BoundServer& server, uint16_t port, size_t max_clients = 0);

}  // namespace pcx

#endif  // PCX_SERVE_SERVER_H_
