#ifndef PCX_SERVE_SERVER_H_
#define PCX_SERVE_SERVER_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "common/status.h"
#include "serve/sharded_solver.h"

namespace pcx {

/// Blocking line-protocol front end over a ShardedBoundSolver — the
/// "aha" loop of the serving subsystem: load a versioned snapshot,
/// answer aggregate-bound queries, report serving counters. One request
/// per line, one reply per line (GROUPBY replies with a counted block),
/// so the server is drivable from a pipe, a socket, CI, or a human:
///
///   LOAD examples/snapshots/sensors.pcxsnap
///   OK epoch=1 shards=2 pcs=6 attrs=3
///   BOUND SUM 2 {0:[0,24)}
///   RANGE lo=0 hi=1250 defined=1 empty_possible=1
///   GROUPBY COUNT 0 0 0,1,2
///   GROUPS 3
///   GROUP 0 lo=0 hi=40 defined=1 empty_possible=1
///   ...
///   STATS
///   STATS epoch=1 shards=2 ... sat_cache_hits=12 ...
///   QUIT
///   BYE
///
/// Predicates travel as whitespace-free box literals in the
/// pc/serialization syntax ("{attr:[lo,hi),...}"); several boxes on one
/// line are conjoined. Errors come back as a single "ERR <reason>" line
/// and never kill the session. The server object itself is
/// single-threaded (one protocol stream); parallelism lives inside the
/// solver's shard fan-out.
class BoundServer {
 public:
  struct Options {
    /// Forwarded to every solver a LOAD constructs.
    ShardedBoundSolver::Options solver;
  };

  BoundServer();
  explicit BoundServer(Options options);
  ~BoundServer();

  /// Loads a snapshot from disk and swaps it in (LOAD command body).
  Status LoadSnapshotFile(const std::string& path);

  /// Handles one protocol line, writing the reply to `out`. Returns
  /// false iff the line was QUIT (the stream should end).
  bool HandleLine(const std::string& line, std::ostream& out);

  /// Runs the protocol until EOF or QUIT, flushing after every reply.
  void ServeStream(std::istream& in, std::ostream& out);

  /// Non-null after a successful LOAD.
  const ShardedBoundSolver* solver() const { return solver_.get(); }

 private:
  Status HandleBound(const std::vector<std::string>& tokens,
                     std::ostream& out);
  Status HandleGroupBy(const std::vector<std::string>& tokens,
                       std::ostream& out);
  Status HandleStats(std::ostream& out);

  Options options_;
  std::unique_ptr<ShardedBoundSolver> solver_;
  std::string snapshot_path_;
};

/// Serves the protocol on a blocking localhost TCP socket: accepts
/// clients one at a time, each getting the same BoundServer (and thus
/// the same loaded snapshot and cumulative STATS). `max_clients` == 0
/// accepts forever; a positive value returns OK after that many client
/// sessions (used by tests and --serve-once). Returns InvalidArgument /
/// Internal on socket setup failures.
Status ServeTcp(BoundServer& server, uint16_t port, size_t max_clients = 0);

}  // namespace pcx

#endif  // PCX_SERVE_SERVER_H_
