#ifndef PCX_SERVE_SERVER_H_
#define PCX_SERVE_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "serve/delta_log.h"
#include "serve/sharded_solver.h"

namespace pcx {

/// Line-protocol front end over a ShardedBoundSolver — the "aha" loop
/// of the serving subsystem: load a versioned snapshot, answer
/// aggregate-bound queries, report serving counters. One request per
/// line, one reply per line (GROUPBY replies with a counted block), so
/// the server is drivable from a pipe, a socket, CI, or a human:
///
///   LOAD examples/snapshots/sensors.pcxsnap
///   OK epoch=1 shards=2 pcs=6 attrs=3
///   BOUND SUM 2 {0:[0,24)}
///   RANGE lo=0 hi=1250 defined=1 empty_possible=1
///   GROUPBY COUNT 0 0 0,1,2
///   GROUPS 3
///   GROUP 0 lo=0 hi=40 defined=1 empty_possible=1
///   ...
///   STATS
///   STATS epoch=1 shards=2 ... sat_cache_hits=12 ...
///   HEALTH
///   HEALTH loaded=1 epoch=1 shards=2 pcs=6 attrs=3 uptime_s=42 ...
///   QUIT
///   BYE
///
/// Predicates travel as whitespace-free box literals in the
/// pc/serialization syntax ("{attr:[lo,hi),...}"); several boxes on one
/// line are conjoined. Errors come back as a single
/// "ERR <CODE> <reason>" line — CODE is the StatusCodeToString name of
/// the typed pcx::Status, so a typed client (engine/remote_backend.h)
/// reconstructs the exact error code instead of string-matching — and
/// never kill the session.
///
/// Concurrency model: one BoundServer is shared by every session.
/// HandleLine is thread-safe; the loaded snapshot lives behind an
/// immutable shared_ptr<const ShardedBoundSolver> that each request
/// pins once at dispatch. LOAD builds the replacement solver off to the
/// side and swaps the pointer atomically, so in-flight queries finish
/// on the epoch they started on while new requests see the new epoch —
/// a reply is always computed entirely at one epoch, never torn across
/// two. Cumulative request/session counters are atomics; per-epoch
/// solver counters are owned (and locked) by the solver itself.
class BoundServer {
 public:
  struct Options {
    /// Forwarded to every solver a LOAD constructs. `solver.metrics` is
    /// overridden to the server's own registry, so per-shard solve
    /// histograms always land in the scrapeable METRICS output.
    ShardedBoundSolver::Options solver;
    /// Requests slower than this many microseconds get a structured
    /// one-line record in the slow-query log. 0 disables the log.
    uint64_t slow_query_us = 0;
    /// Slow-query log destination; empty = stderr. Opened append-mode
    /// at construction (a failure falls back to stderr with a warning).
    std::string slow_log_path;
  };

  /// Per-connection protocol state, owned by the transport (one per
  /// stdio stream / TCP session / event-loop connection) and threaded
  /// into HandleLine. Atomics: the event loop toggles on the loop
  /// thread while pool workers read.
  struct Session {
    /// TRACE ON|OFF: append a `#trace ...` comment after each reply.
    std::atomic<bool> trace{false};
  };

  /// Event-transport serving counters — registry-backed references, so
  /// STATS, HEALTH, and METRICS all read the same series and counter
  /// names cannot drift between transports. The epoll loop
  /// (serve/event_loop.h) maintains them; under the thread-per-session
  /// transport they stay zero. All metric types are atomic inside: the
  /// loop thread and its solver-pool workers update them while any
  /// session reads them.
  struct TransportStats {
    explicit TransportStats(MetricsRegistry& metrics);
    /// Requests admitted to the solver queue and not yet answered.
    Gauge& queue_depth;
    Gauge& queue_high_water;
    /// Cross-connection BOUND coalescing: batches dispatched, requests
    /// they carried, and the largest batch seen (>1 means the fan-in
    /// actually coalesced).
    Counter& coalesced_batches;
    Counter& coalesced_requests;
    Gauge& max_batch;
    /// Requests answered "ERR UNAVAILABLE" by admission control.
    Counter& overload_rejections;
    /// Currently open event-loop connections.
    Gauge& open_connections;
  };

  /// Replication-side counters, updated by the replica tailer
  /// (serve/replicator.h) and read by HEALTH. All atomics: the tailer
  /// thread writes while sessions read.
  struct ReplicationStats {
    std::atomic<bool> replica{false};  ///< this process tails a primary
    /// Last epoch the primary reported; HEALTH's lag is the distance
    /// between this and the locally served epoch.
    std::atomic<uint64_t> primary_epoch{0};
    std::atomic<uint64_t> syncs{0};          ///< successful SYNC rounds
    std::atomic<uint64_t> sync_failures{0};  ///< failed rounds / reconnects
    std::atomic<uint64_t> records_applied{0};
    std::atomic<uint64_t> snapshots_installed{0};  ///< full resyncs
  };

  BoundServer();
  explicit BoundServer(Options options);
  ~BoundServer();

  /// Loads a snapshot from disk and swaps it in (LOAD command body).
  /// Queries already running keep their pinned pre-swap solver.
  /// Concurrent LOADs from different sessions are last-writer-wins:
  /// each OK reply names the epoch that LOAD installed, but a racing
  /// LOAD may supersede it immediately. The server deliberately does
  /// not referee snapshot recency — LOADing an older epoch is the
  /// legitimate rollback operation — so ordering concurrent LOADs is
  /// the operator's responsibility.
  Status LoadSnapshotFile(const std::string& path);

  /// Attaches a durable delta log (--log-dir) and recovers from it: the
  /// base snapshot is rebuilt, the journal tail replayed on top, and a
  /// torn final record truncated (reported on stderr) rather than
  /// refusing to start. After this, every mutation verb journals (with
  /// an fsync) before it is acknowledged, and LOAD/CHECKPOINT persist a
  /// fresh base. An empty directory is valid — the log initializes on
  /// the first LOAD.
  Status EnableDurableLog(const std::string& dir);

  /// Swaps in a parsed snapshot (the replica full-resync path; also
  /// persists it as the new base when a durable log is attached).
  StatusOr<std::shared_ptr<const ShardedBoundSolver>> InstallSnapshot(
      const Snapshot& snap);

  /// Applies an ordered run of delta records (epochs contiguous from
  /// the served epoch) — the replica tail-apply path. Records are
  /// validated and applied to a successor solver, journaled (when a log
  /// is attached), and only then swapped in; a failure at any step
  /// leaves the served snapshot untouched.
  StatusOr<std::shared_ptr<const ShardedBoundSolver>> ApplyRecords(
      std::span<const DeltaRecord> records);

  /// A replica serves reads only: LOAD/APPEND/RETIRE/CHECKPOINT answer
  /// FAILED_PRECONDITION so the primary stays the single writer.
  void set_read_only(bool read_only) { read_only_.store(read_only); }
  bool read_only() const { return read_only_.load(); }

  ReplicationStats& replication() { return replication_; }
  const ReplicationStats& replication() const { return replication_; }

  /// Handles one protocol line, writing the reply to `out`. Returns
  /// false iff the line was QUIT (the stream should end). Thread-safe:
  /// sessions on different threads may call this concurrently as long
  /// as each owns its own `out` (and `session`). `session` carries the
  /// per-connection TRACE state; with nullptr the TRACE verb answers
  /// FAILED_PRECONDITION and no trace comments are emitted.
  bool HandleLine(const std::string& line, std::ostream& out,
                  Session* session);
  bool HandleLine(const std::string& line, std::ostream& out) {
    return HandleLine(line, out, nullptr);
  }

  /// Runs the protocol until EOF or QUIT, flushing after every reply.
  void ServeStream(std::istream& in, std::ostream& out);

  /// The currently served snapshot, pinned: the returned solver is
  /// immutable and stays valid across concurrent LOAD swaps. Null
  /// before the first successful LOAD.
  std::shared_ptr<const ShardedBoundSolver> solver() const;

  /// Whole-process serving counters (cumulative across LOAD swaps,
  /// unlike the per-epoch counters in STATS).
  uint64_t uptime_seconds() const;
  uint64_t sessions() const { return sessions_.load(); }
  uint64_t requests() const { return requests_.load(); }

  /// Called once by each serving front end (stream or TCP session) when
  /// a session opens; feeds the HEALTH sessions counter.
  void NoteSessionStart() { ++sessions_; }

  /// Counts one request of the given (already upper-cased) verb —
  /// pcx_requests_total plus the per-verb counter, in lockstep so
  /// requests_total always equals the sum over verbs. Called by
  /// HandleLine for every dispatched line and by transports that answer
  /// without HandleLine (the event loop's coalesced BOUND path), so the
  /// HEALTH requests counter stays transport-independent.
  void NoteRequestVerb(const std::string& verb);

  /// Observes one completed request: per-verb latency histogram plus
  /// the slow-query log. HandleLine calls it for every line; transports
  /// answering outside HandleLine (coalesced BOUNDs) call it per
  /// request with their own end-to-end timing. `route`, when non-null,
  /// appends the query's routing diagnostics (`shards=K idx_hit=0|1`)
  /// to its slow-query record — the first thing an operator wants to
  /// know about a slow BOUND is how wide it fanned and whether the
  /// compiled index dispatched it.
  void NoteRequestLatency(const std::string& verb, const std::string& line,
                          double us);
  void NoteRequestLatency(const std::string& verb, const std::string& line,
                          double us,
                          const ShardedBoundSolver::RouteInfo* route);

  /// The server's metrics registry (the METRICS exposition source).
  /// Components wired to this server — transports, the replica tailer,
  /// the delta log — register their series here.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Event-transport counters (see TransportStats).
  TransportStats& transport() { return transport_; }
  const TransportStats& transport() const { return transport_; }

 private:
  /// Records the SYNC verb keeps in memory per served epoch, so a
  /// briefly-lagging replica catches up by record shipping instead of a
  /// full snapshot resync. Beyond the cap the oldest are dropped (the
  /// floor advances) and a further-behind replica falls back to resync.
  static constexpr size_t kMaxTailRecords = 4096;

  /// LOAD body: builds the new solver outside the swap lock and
  /// publishes it; returns the pinned new solver for the OK reply.
  StatusOr<std::shared_ptr<const ShardedBoundSolver>> LoadAndSwap(
      const std::string& path);

  /// ApplyRecords with mutate_mu_ already held (shared by the verb
  /// handlers, which must read the current epoch and apply under one
  /// critical section).
  StatusOr<std::shared_ptr<const ShardedBoundSolver>> ApplyRecordsLocked(
      std::span<const DeltaRecord> records) REQUIRES(mutate_mu_);

  /// Publishes `next` and appends `records` to the SYNC tail (clearing
  /// it instead when `records` is empty — snapshot-level swaps reset
  /// the shippable history).
  void SwapSolver(std::shared_ptr<const ShardedBoundSolver> next,
                  std::span<const DeltaRecord> records);

  /// APPEND/RETIRE/CHECKPOINT bodies: build the record at the next
  /// epoch, journal, swap, and write the OK reply.
  Status HandleMutation(const std::string& cmd, const std::string& body,
                        std::ostream& out);
  /// SYNC body: reply header + snapshot lines or record lines.
  Status HandleSync(const std::vector<std::string>& tokens,
                    std::ostream& out);

  /// `route` receives the routing diagnostics once the query is routed
  /// (left empty on parse failures), for the slow-query log.
  Status HandleBound(const ShardedBoundSolver& solver,
                     const std::vector<std::string>& tokens, std::ostream& out,
                     std::optional<ShardedBoundSolver::RouteInfo>* route);
  Status HandleGroupBy(const ShardedBoundSolver& solver,
                       const std::vector<std::string>& tokens,
                       std::ostream& out);
  Status HandleStats(const ShardedBoundSolver& solver, std::ostream& out);
  /// HEALTH never fails — it must answer on a server with no snapshot.
  void HandleHealth(const ShardedBoundSolver* solver, std::ostream& out);
  /// METRICS: refreshes scrape-time gauges (uptime, epoch, sessions)
  /// and writes the registry's Prometheus text as a counted block —
  /// "METRICS <n>\n" followed by n exposition lines.
  void HandleMetrics(const ShardedBoundSolver* solver, std::ostream& out);
  /// TRACE ON|OFF for `session`; errors without a session.
  Status HandleTrace(const std::vector<std::string>& tokens, Session* session,
                     std::ostream& out);
  /// The dispatch body of HandleLine (everything but counting, timing,
  /// tracing, and the slow-query log). `route` collects a BOUND's
  /// routing diagnostics for the slow-query log.
  bool DispatchLine(const std::string& cmd,
                    const std::vector<std::string>& tokens,
                    const std::string& line, std::ostream& out,
                    Session* session,
                    std::optional<ShardedBoundSolver::RouteInfo>* route);
  /// Appends a structured record when `us` crosses the configured
  /// threshold; serialized by slow_log_mu_.
  void MaybeLogSlowQuery(const std::string& verb, const std::string& line,
                         double us,
                         const ShardedBoundSolver::RouteInfo* route);

  /// Request counter + latency histogram of one verb, resolved once at
  /// construction so the per-request path never touches the registry
  /// lock. The last entry ("OTHER") catches unknown commands.
  struct VerbSeries {
    const char* verb = nullptr;
    Counter* count = nullptr;
    Histogram* latency = nullptr;
  };
  static constexpr size_t kNumVerbs = 13;
  const VerbSeries& FindVerb(const std::string& verb) const;

  Options options_;
  const std::chrono::steady_clock::time_point start_;
  std::atomic<uint64_t> sessions_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<bool> read_only_{false};
  std::atomic<bool> log_enabled_{false};  ///< lock-free mirror for HEALTH

  /// Declared before transport_: TransportStats binds references into
  /// the registry at construction.
  MetricsRegistry metrics_;
  TransportStats transport_;
  ReplicationStats replication_;

  /// Hot-path metric caches (stable registry references).
  Counter* requests_total_ = nullptr;
  std::array<VerbSeries, kNumVerbs> verbs_{};
  Histogram* delta_apply_hist_ = nullptr;

  Mutex slow_log_mu_;  ///< serializes slow-query records
  std::FILE* slow_log_file_ GUARDED_BY(slow_log_mu_) = nullptr;  ///< owned; null = stderr

  /// Serializes every state transition (LOAD, mutation verbs, replica
  /// installs) end to end — build, journal, swap — so the journal order
  /// and the published epoch order can never disagree. Queries never
  /// take it. Lock order where both are held: mutate_mu_ then mu_.
  Mutex mutate_mu_ ACQUIRED_BEFORE(mu_);
  std::unique_ptr<DurableLog> log_
      GUARDED_BY(mutate_mu_);  ///< null = off

  mutable Mutex mu_;  ///< guards the snapshot swap + SYNC tail below
  std::shared_ptr<const ShardedBoundSolver> solver_ GUARDED_BY(mu_);
  std::string snapshot_path_ GUARDED_BY(mu_);
  /// Recent records for SYNC shipping, oldest first; contiguous epochs
  /// (tail_floor_, tail_floor_ + tail_.size()].
  std::vector<DeltaRecord> tail_ GUARDED_BY(mu_);
  uint64_t tail_floor_ GUARDED_BY(mu_) = 0;  ///< epoch *before* tail_.front()
};

/// Formats a non-OK Status as the wire error reply — "ERR <CODE>
/// <one-line message>\n". The one definition shared by HandleLine and
/// the event loop's coalesced BOUND path, so typed errors cannot drift
/// between transports.
std::string FormatErrorReply(const Status& status);

/// Shared request-parsing helpers: the server's command dispatch and
/// the typed client REPL of `pcx_serve --connect` parse the same lines
/// with the same code, so request syntax cannot drift between the two
/// sides of the protocol.

/// "BOUND <AGG> <attr> [{box}...]" -> AggQuery (tokens[0] ignored).
StatusOr<AggQuery> ParseBoundRequest(const std::vector<std::string>& tokens,
                                     size_t num_attrs);

struct GroupByRequest {
  AggQuery query;
  size_t group_attr = 0;
  std::vector<double> values;
};
/// "GROUPBY <AGG> <attr> <group_attr> <v1,v2,...> [{box}...]".
StatusOr<GroupByRequest> ParseGroupByRequest(
    const std::vector<std::string>& tokens, size_t num_attrs);

/// Writes the "<label>lo=... hi=... defined=... empty_possible=..."
/// reply body (numbers in round-trippable pc/serialization formatting,
/// so a client parses back bit-identical ranges).
void PrintResultRange(std::ostream& out, const char* label,
                      const ResultRange& range);

/// True when an accept() failure with this errno is transient — one bad
/// or unlucky client (ECONNABORTED, EPROTO), or momentary resource
/// exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) — and the accept loop
/// should keep serving everyone else. Persistent failures (EBADF,
/// EINVAL, ENOTSOCK...) mean the listener itself is broken.
bool IsTransientAcceptError(int error_code);

/// A listening localhost TCP socket serving the line protocol. Binding
/// and serving are separate so a port-0 (kernel-assigned ephemeral)
/// listener can report the actual port before the accept loop starts —
/// tests and CI need no fixed-port reservations:
///
///   PCX_ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Bind(0));
///   std::printf("PORT %u\n", listener.port());
///   return listener.Serve(server);
///
/// Serve dispatches each accepted socket to a session worker (a
/// common/thread_pool of `session_threads` workers), every session
/// sharing the same BoundServer (same loaded snapshot, cumulative
/// STATS). Replies cannot interleave because each session owns its
/// socket end to end. Client disconnects — including mid-reply drops,
/// which must not raise SIGPIPE and kill the process — only end that
/// session; transient accept() failures (one aborted handshake, a
/// momentary fd shortage) are retried instead of taking the listener
/// down. A request line is capped at kMaxRequestLineBytes — a client
/// streaming an endless newline-less request gets one ERR and its
/// session closed instead of growing the server's memory. Shutdown()
/// stops the accept loop from another thread AND disconnects in-flight
/// session sockets (their reads see EOF), so Serve's drain completes
/// promptly even when clients hold idle connections open.
struct TcpSessionRegistry;
class TcpListener {
 public:
  /// listen(2) backlog used when Bind is not given one: deep enough
  /// that a fan-in burst of clients queues instead of getting
  /// connection-refused while session workers are busy.
  static constexpr int kDefaultBacklog = 128;

  /// Upper bound on one request line (bytes before the '\n'). Far
  /// beyond any legitimate BOUND/GROUPBY line, small enough that an
  /// adversarial newline-less stream cannot balloon a session buffer.
  static constexpr size_t kMaxRequestLineBytes = 1 << 20;

  struct ServeOptions {
    /// Accept loop ends after this many sessions (0 = serve forever).
    size_t max_clients = 0;
    /// Concurrent session workers. 1 = sequential (a new client waits
    /// for the previous session to end); N>1 serves N clients at once,
    /// further accepted sockets queue for the next free worker.
    size_t session_threads = 1;
  };

  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral).
  static StatusOr<TcpListener> Bind(uint16_t port,
                                    int backlog = kDefaultBacklog);

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  /// The actual bound port (the kernel's pick when Bind got 0).
  uint16_t port() const { return port_; }

  /// Runs the accept loop; returns OK after `options.max_clients`
  /// sessions, or after Shutdown(), in both cases only once every
  /// dispatched session has finished.
  Status Serve(BoundServer& server, const ServeOptions& options);
  /// Sequential-serving convenience (session_threads = 1).
  Status Serve(BoundServer& server, size_t max_clients = 0);

  /// Gracefully stops a Serve running on another thread: no new
  /// sessions are accepted, in-flight session sockets are shut down
  /// (their blocked reads return EOF and the sessions end), the drain
  /// completes, Serve returns OK. Safe to call from any thread, any
  /// number of times.
  void Shutdown();

 private:
  TcpListener(int fd, uint16_t port);
  int fd_ = -1;
  uint16_t port_ = 0;
  /// Heap-allocated so Shutdown() stays valid across moves (the flag
  /// travels with the listener; atomics themselves are immovable).
  std::shared_ptr<std::atomic<bool>> stopping_;
  /// Live session sockets, so Shutdown can disconnect them; shared
  /// with the session workers (which may outlive a moved-from
  /// listener object).
  std::shared_ptr<TcpSessionRegistry> sessions_;
};

/// One-call convenience: Bind(port) + Serve. With port 0 the chosen
/// port is only observable through the two-step TcpListener path.
Status ServeTcp(BoundServer& server, uint16_t port, size_t max_clients = 0);

}  // namespace pcx

#endif  // PCX_SERVE_SERVER_H_
