#ifndef PCX_SERVE_REPLICATOR_H_
#define PCX_SERVE_REPLICATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/mutex.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "engine/remote_backend.h"
#include "serve/server.h"

namespace pcx {

/// Primary→replica log shipping over the line protocol's SYNC verb. A
/// `pcx_serve --replica=tcp:host:port` process runs one ReplicaTailer
/// against its local (read-only) BoundServer: every poll it asks the
/// primary "SYNC <my epoch>", receives either the delta records that
/// carry it to the primary's epoch or — when it is fresh, too far
/// behind, or the primary's history diverged — a full snapshot resync,
/// and applies them through the server's usual atomic swap. The replica
/// therefore serves bit-identical answers at every epoch it reaches
/// (record apply is ShardedBoundSolver::ApplyDeltas, the same code the
/// primary ran), and its HEALTH line reports the epoch lag.
///
/// Connection loss is survived with decorrelated-jitter reconnect
/// backoff; a dead primary just leaves the replica serving its last
/// reached epoch — exactly the state the `failover:` engine URI fails
/// over to.
class ReplicaTailer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// Delay between successful sync rounds.
    uint32_t poll_ms = 200;
    /// Reconnect backoff bounds (decorrelated jitter between them).
    uint32_t reconnect_min_ms = 50;
    uint32_t reconnect_max_ms = 2000;
    /// Jitter seed — deterministic by default like everything else.
    uint64_t jitter_seed = 0x7C15F39E9E3779B9ULL;
  };

  ReplicaTailer(BoundServer& server, Options options);
  ~ReplicaTailer();  ///< implies Stop()

  ReplicaTailer(const ReplicaTailer&) = delete;
  ReplicaTailer& operator=(const ReplicaTailer&) = delete;

  /// Starts the tailing thread (idempotent) and marks the server a
  /// replica for HEALTH.
  void Start();
  /// Stops and joins the tailing thread; safe to call repeatedly.
  void Stop();

  /// One synchronous sync round over an established transport: sends
  /// SYNC at the server's current epoch, applies whatever comes back,
  /// updates the server's replication counters, and returns the
  /// primary's epoch. Public and static so tests (and one-shot catch-up
  /// tools) can drive a round without the thread machinery.
  static StatusOr<uint64_t> SyncOnce(LineTransport& transport,
                                     BoundServer& server);

 private:
  void Run();
  /// Interruptible sleep; false when Stop() was requested.
  bool SleepFor(uint32_t ms);

  BoundServer& server_;
  const Options options_;

  Mutex mu_;
  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  /// True from Start until a Stop claims the thread for joining — so
  /// concurrent Stop calls cannot both join (the second would throw).
  bool running_ GUARDED_BY(mu_) = false;
  std::thread thread_ GUARDED_BY(mu_);
};

}  // namespace pcx

#endif  // PCX_SERVE_REPLICATOR_H_
