#ifndef PCX_SERVE_SHARDED_SOLVER_H_
#define PCX_SERVE_SHARDED_SOLVER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/statusor.h"
#include "pc/bound_solver.h"
#include "pc/group_by.h"
#include "route/route_index.h"
#include "route/shard_mask.h"
#include "serve/delta_log.h"
#include "serve/partitioner.h"
#include "serve/snapshot.h"

namespace pcx {

/// Serves aggregate bounds from a predicate-constraint set partitioned
/// across up to 64 shards, each owned by its own PcBoundSolver.
///
/// Guarantee: every answer is *bit-identical* to the unsharded
/// PcBoundSolver over the same set (same constraint order, same
/// options), for Bound, BoundBatch, and the group-by path. This follows
/// from two invariants rather than from floating-point luck:
///
///  1. The partitioner assigns whole predicate-overlap components, so
///     predicates of different shards never intersect.
///  2. A query is answered by the solver over the *union of relevant
///     shards* (those owning a predicate that can intersect the WHERE
///     region), assembled in global constraint order. Constraints
///     outside that union cannot intersect the query region, and the
///     unsharded pipeline provably ignores them: the decomposition DFS
///     prunes them geometrically before any SAT call, their MILP rows
///     are empty and dropped, and the greedy fast path skips them — so
///     the union solver performs literally the same arithmetic as the
///     unsharded one.
///
/// Under a partitioned workload (the paper's Fig. 8 setting) almost
/// every query routes to a single shard, turning the per-query O(n)
/// constraint scan into O(n/K); union solvers for shard-spanning
/// queries are built once and memoized. Batches and group-bys fan the
/// per-query routing across a ThreadPool.
///
/// An optional scatter-gather mode instead fans one COUNT/SUM/MIN/MAX
/// query to every relevant shard and combines the per-shard ranges
/// (sums for COUNT/SUM, envelope logic for MIN/MAX — exact because
/// shards are constraint-independent and their regions disjoint). That
/// skips union-solver construction and is how a multi-machine
/// deployment would answer spanning queries, but the combine re-orders
/// floating-point accumulation, so it is bit-identical only when the
/// per-shard arithmetic is exact (e.g. integer-valued endpoints);
/// otherwise it agrees to rounding. AVG does not decompose per shard
/// and always takes the exact union route.
class ShardedBoundSolver {
 public:
  struct Options {
    /// How to cut the set; used by the (pcs, domains) constructor. The
    /// snapshot constructor takes the shards as stored.
    PartitionOptions partition;
    /// Per-shard solver configuration. auto_disjoint_fast_path is
    /// force-disabled on the shard solvers when the *whole* set is not
    /// disjoint, so a shard whose subset happens to be disjoint still
    /// runs the exact same code path as the unsharded solver.
    PcBoundSolver::Options solver;
    /// Fan-out width for BoundBatch / BoundGroupBy / scatter-gather
    /// (0 = hardware concurrency, 1 = sequential).
    size_t num_threads = 0;
    /// Answer multi-shard COUNT/SUM/MIN/MAX queries by per-shard
    /// fan-out + combine instead of a memoized union solve.
    bool scatter_gather = false;
    /// When set, per-shard solve latencies are observed into
    /// `pcx_shard_solve_latency_us{shard=...}` histograms (the input
    /// signal for skew-aware repartitioning). Must outlive the solver
    /// and every ApplyDeltas successor. nullptr = no instrumentation,
    /// no clock reads on the solve path.
    MetricsRegistry* metrics = nullptr;
    /// How RouteMask answers: the compiled O(log n) route index
    /// (default), the O(n) linear scan it was compiled from, or both
    /// with a PCX_CHECK that they agree bit for bit (the oracle mode
    /// the equivalence tests and chaos runs pin). All three produce
    /// identical masks — kIndex only changes the work done to find
    /// them.
    route::RouteMode route_mode = route::RouteMode::kIndex;
  };

  /// Cumulative serving counters (since construction; mutex-guarded).
  struct ServeStats {
    size_t queries = 0;
    size_t single_shard_queries = 0;  ///< routed to exactly one shard
    size_t multi_shard_queries = 0;   ///< needed a union of >= 2 shards
    size_t no_shard_queries = 0;      ///< WHERE intersects no predicate
    size_t scatter_queries = 0;       ///< answered by per-shard combine
    size_t union_solvers_built = 0;   ///< distinct shard unions memoized
    size_t route_index_queries = 0;   ///< routed via the compiled index
    size_t route_fallback_queries = 0;  ///< routed by the linear scan
    PcBoundSolver::SolveStats solve;  ///< summed over all queries

    /// Counter merge (union_solvers_built included: only the global
    /// accumulator ever has it non-zero).
    ServeStats& operator+=(const ServeStats& other) {
      queries += other.queries;
      single_shard_queries += other.single_shard_queries;
      multi_shard_queries += other.multi_shard_queries;
      no_shard_queries += other.no_shard_queries;
      scatter_queries += other.scatter_queries;
      union_solvers_built += other.union_solvers_built;
      route_index_queries += other.route_index_queries;
      route_fallback_queries += other.route_fallback_queries;
      solve += other.solve;
      return *this;
    }
  };

  /// Per-query routing diagnostics, filled by the Bound(query, route)
  /// overload and BoundBatch's per-query vector — what the slow-query
  /// log renders as `shards=K idx_hit=0|1`.
  struct RouteInfo {
    uint32_t shards = 0;     ///< routed fan-out (pre no-shard fallback)
    bool index_used = false;  ///< compiled index (vs. linear scan)
  };

  ShardedBoundSolver(PredicateConstraintSet pcs,
                     std::vector<AttrDomain> domains);
  ShardedBoundSolver(PredicateConstraintSet pcs,
                     std::vector<AttrDomain> domains, Options options);
  /// Adopts a snapshot's shards (and epoch) as the partition.
  explicit ShardedBoundSolver(const Snapshot& snapshot);
  ShardedBoundSolver(const Snapshot& snapshot, Options options);

  /// Applies an ordered run of delta-log records (epochs must be
  /// contiguous from epoch()+1) and returns a *new* solver at the final
  /// epoch, leaving this one untouched — the shape the server's atomic
  /// snapshot swap wants. Only shards whose membership the deltas
  /// disturb are re-decomposed: an APPEND lands on the shard(s) whose
  /// predicates it overlaps (merging shards when it bridges several, so
  /// overlap components stay whole per shard — the invariant the
  /// bit-identity guarantee rests on), a RETIRE touches just the
  /// owner's shard, and every untouched shard's solver is shared with
  /// the new instance. The overlap-component structure is maintained
  /// incrementally (a union-find seeded from Partition::component_of),
  /// so appends never pay the O(n^2) component rescan a reload does;
  /// only a retire out of a multi-member component falls back to it.
  /// A run containing a CHECKPOINT instead re-partitions the final set
  /// from scratch (at the current shard width): shards merged by bridge
  /// appends and hulls left stale by retires are recomputed tight, so
  /// post-checkpoint routing selectivity matches a fresh LOAD.
  /// Answers from the result are bit-identical to a from-scratch
  /// solver over the same post-delta set and layout either way —
  /// answers are assembled in global constraint order, which no
  /// re-partition changes.
  StatusOr<std::shared_ptr<const ShardedBoundSolver>> ApplyDeltas(
      std::span<const DeltaRecord> records) const;

  /// The current set/layout/epoch as a serializable snapshot (what
  /// CHECKPOINT persists as the new delta-log base).
  Snapshot ToSnapshot() const {
    return MakeSnapshot(flat_, domains_, partition_, epoch_);
  }

  StatusOr<ResultRange> Bound(const AggQuery& query) const;
  /// Like Bound, writing the routing diagnostics into `*route` (when
  /// non-null) on the way.
  StatusOr<ResultRange> Bound(const AggQuery& query, RouteInfo* route) const;

  /// Routes and solves every query, fanned across the thread pool;
  /// results are in input order and bit-identical to calling Bound in a
  /// loop. `per_query_stats` mirrors PcBoundSolver::BoundBatch;
  /// `per_query_route`, when non-null, receives one RouteInfo per
  /// query.
  std::vector<StatusOr<ResultRange>> BoundBatch(
      std::span<const AggQuery> queries,
      std::vector<PcBoundSolver::SolveStats>* per_query_stats = nullptr,
      std::vector<RouteInfo>* per_query_route = nullptr) const;

  /// GROUP BY fan-out: one routed sub-query per group value (built by
  /// MakeGroupByQueries, byte-identical to pc/group_by's). Under a
  /// range-partitioned set the groups land on different shards — the
  /// classic scatter of a distributed aggregate.
  StatusOr<std::vector<GroupRange>> BoundGroupBy(
      const AggQuery& query, size_t group_attr,
      const std::vector<double>& group_values) const;

  size_t num_shards() const { return shards_.size(); }
  /// The full set in global order (what the answers are defined over).
  const PredicateConstraintSet& constraints() const { return flat_; }
  const std::vector<AttrDomain>& domains() const { return domains_; }
  const Partition& partition() const { return partition_; }
  uint64_t epoch() const { return epoch_; }
  const Options& options() const { return options_; }

  ServeStats stats() const;

  /// Bitmask of shards owning a predicate that can intersect the query
  /// region (all non-empty shards when there is no WHERE). Degenerate
  /// empty-box predicates are treated as always relevant so the union
  /// keeps every constraint the unsharded solver would act on.
  /// Dispatches on Options::route_mode; public so the routing tests and
  /// bench can compare the implementations directly.
  ShardMask RouteMask(const AggQuery& query) const;
  /// The O(n) hull-then-member scan (the verification oracle).
  ShardMask RouteMaskLinear(const AggQuery& query) const;
  /// The compiled-index dispatch: stab the hull index with the WHERE
  /// box, confirm each candidate shard via its member index. Always
  /// bit-identical to RouteMaskLinear.
  ShardMask RouteMaskIndexed(const AggQuery& query) const;

  /// Aggregate shape of every compiled index (the hull index plus each
  /// shard solver's member index): what STATS/METRICS surface as
  /// route_nodes / route_depth.
  route::RouteIndexStats RouteIndexTotals() const;

 private:
  struct Shard {
    std::vector<size_t> indices;  ///< global PC ids, ascending
    /// Shared (not unique) so ApplyDeltas can hand an untouched shard's
    /// solver to the successor instance without rebuilding it.
    std::shared_ptr<const PcBoundSolver> solver;
    /// Conservative hull of the shard's predicate boxes (closed
    /// bounds): if the query region misses it, it misses every member —
    /// the routing fast path that keeps RouteMask O(K) for shard-local
    /// queries instead of O(n).
    Box bbox;
    bool always_relevant = false;  ///< owns a degenerate empty-box PC
    /// Solve-latency histogram for this shard, resolved once in
    /// BuildShards (null when Options::metrics is null). The registry
    /// owns the histogram; the pointer is a stable cache.
    Histogram* solve_hist = nullptr;
  };

  /// Tag + constructor for ApplyDeltas: adopts a prepared set/layout
  /// (partition metadata included) and reuses the given per-shard
  /// solvers where non-null.
  struct IncrementalTag {};
  ShardedBoundSolver(
      IncrementalTag, PredicateConstraintSet flat,
      std::vector<AttrDomain> domains, Options configured,
      Partition partition, uint64_t epoch,
      const std::vector<std::shared_ptr<const PcBoundSolver>>& reuse);

  /// `reuse`, when non-null, supplies a prebuilt solver per shard
  /// (null entry = build from scratch); indices/hull/always_relevant
  /// are recomputed either way.
  void BuildShards(
      const std::vector<std::shared_ptr<const PcBoundSolver>>* reuse =
          nullptr);

  /// Solver over the union of the masked shards, memoized up to
  /// kMaxUnionSolvers entries (then the memo is flushed — shared
  /// ownership keeps solvers handed to in-flight queries alive across
  /// a flush). Mask 0 maps to an (empty-set) solver; the all-shards
  /// mask is the full set. Single-shard masks alias the prebuilt shard
  /// solver without touching the cache.
  std::shared_ptr<const PcBoundSolver> SolverFor(ShardMask mask) const;

  /// Cap on memoized union solvers: each entry owns a constraint-set
  /// copy, a negated sibling, and (if enabled) persistent SAT caches,
  /// so a long-lived server must not accumulate one per distinct mask
  /// forever.
  static constexpr size_t kMaxUnionSolvers = 256;

  /// Routing + solving of one query; thread-safe, stats via out-params.
  /// `parallel` allows a scatter fan-out to spin its own pool (false
  /// when already running inside a batch worker). `route`, when
  /// non-null, receives the routing diagnostics.
  StatusOr<ResultRange> BoundOne(const AggQuery& query,
                                 PcBoundSolver::SolveStats& stats,
                                 ServeStats& local, bool parallel,
                                 RouteInfo* route = nullptr) const;

  /// Per-shard fan-out + combine (COUNT/SUM/MIN/MAX, >= 2 shards).
  /// `parallel` is false when already running inside a batch worker.
  StatusOr<ResultRange> ScatterGather(const AggQuery& query, ShardMask mask,
                                      PcBoundSolver::SolveStats& stats,
                                      bool parallel) const;

  void MergeServeStats(const ServeStats& local) const;

  PredicateConstraintSet flat_;
  std::vector<AttrDomain> domains_;
  Options options_;
  /// The caller's options before BuildShards imposes the disjointness
  /// verdict on options_.solver; ApplyDeltas starts the successor from
  /// these so a verdict change re-derives instead of compounding.
  Options configured_options_;
  Partition partition_;
  uint64_t epoch_ = 0;
  /// Disjointness of the *full* set; inherited by every shard/union
  /// solver so their code paths match the unsharded solver's.
  bool flat_disjoint_ = false;
  std::vector<Shard> shards_;
  std::vector<char> always_relevant_;  ///< per global PC: empty pred box
  /// Latency of solves that needed a union of >= 2 shards
  /// (shard="union" series); null when Options::metrics is null.
  Histogram* union_solve_hist_ = nullptr;

  /// The compiled hull-level index: one box per *non-empty* shard (its
  /// closed-bound hull), rebuilt by BuildShards on the pinned set.
  /// hull_shard_[id] maps an index id back to the shard it hulls.
  /// Member-level confirmation reuses each shard solver's own
  /// PcBoundSolver::route_index(), so an untouched shard's member index
  /// survives ApplyDeltas together with its solver.
  std::unique_ptr<const route::RouteIndex> hull_index_;
  std::vector<uint32_t> hull_shard_;
  ShardMask nonempty_mask_ = 0;  ///< shards with at least one member
  ShardMask always_mask_ = 0;    ///< non-empty shards, always_relevant
  /// Registry-backed routing series (null when Options::metrics is
  /// null): hit/fallback counters and the per-query fan-out histogram.
  Counter* route_hits_ = nullptr;
  Counter* route_fallbacks_ = nullptr;
  Histogram* route_fanout_hist_ = nullptr;

  /// Two locks, not one: under concurrent serving sessions every query
  /// merges counters, but only shard-spanning queries touch the union
  /// memo — and building a missing union solver holds its lock for a
  /// full solver construction. Separate mutexes keep the (hot, short)
  /// stats merge from queueing behind the (rare, long) cache fill.
  /// Lock order where both are needed: cache_mu_ then stats_mu_ —
  /// machine-checked by the ACQUIRED_BEFORE edge under
  /// -Wthread-safety-beta, not just documented here.
  mutable Mutex cache_mu_ ACQUIRED_BEFORE(stats_mu_);
  mutable std::unordered_map<ShardMask, std::shared_ptr<const PcBoundSolver>>
      union_cache_ GUARDED_BY(cache_mu_);
  mutable Mutex stats_mu_;
  mutable ServeStats serve_stats_ GUARDED_BY(stats_mu_);
};

}  // namespace pcx

#endif  // PCX_SERVE_SHARDED_SOLVER_H_
