#include "serve/delta_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/text.h"
#include "pc/serialization.h"

namespace pcx {
namespace {

/// Splits "<body> crc=<hex16>" and verifies the crc covers `body`
/// exactly. Returns the body on success.
StatusOr<std::string> CheckLineCrc(const std::string& line) {
  const size_t at = line.rfind(" crc=");
  if (at == std::string::npos) {
    return Status::InvalidArgument("line lacks a crc field");
  }
  const std::string body = line.substr(0, at);
  PCX_ASSIGN_OR_RETURN(const uint64_t want, ParseU64(line.substr(at + 5), 16));
  const uint64_t got = Fnv1a64(body);
  if (got != want) {
    return Status::InvalidArgument("crc mismatch: line claims " +
                                   ToHex64(want) + ", bytes hash to " +
                                   ToHex64(got));
  }
  return body;
}

StatusOr<std::string> TokenValue(const std::vector<std::string>& tokens,
                                 const std::string& key) {
  const std::string needle = key + "=";
  for (const std::string& t : tokens) {
    if (t.rfind(needle, 0) == 0) return t.substr(needle.size());
  }
  return Status::InvalidArgument("missing field '" + key + "'");
}

StatusOr<DeltaLogHeader> ParseLogHeaderLine(const std::string& line,
                                            uint64_t* crc_out) {
  PCX_ASSIGN_OR_RETURN(const std::string body, CheckLineCrc(line));
  if (crc_out != nullptr) *crc_out = Fnv1a64(body);
  const auto tokens = SplitWhitespace(body);
  if (tokens.size() < 2 || tokens[0] != "pcxlog" || tokens[1] != "v1") {
    return Status::InvalidArgument(
        "expected header 'pcxlog v1 attrs=N domains=... digest=... "
        "base_epoch=E crc=...'");
  }
  DeltaLogHeader h;
  PCX_ASSIGN_OR_RETURN(const std::string attrs_str,
                       TokenValue(tokens, "attrs"));
  PCX_ASSIGN_OR_RETURN(const uint64_t attrs, ParseU64(attrs_str));
  h.num_attrs = static_cast<size_t>(attrs);
  PCX_ASSIGN_OR_RETURN(const std::string domains_str,
                       TokenValue(tokens, "domains"));
  if (h.num_attrs > 0) {
    const auto parts = SplitOn(domains_str, ',');
    if (parts.size() != h.num_attrs) {
      return Status::InvalidArgument(
          "domains list has " + std::to_string(parts.size()) +
          " entries for " + std::to_string(h.num_attrs) + " attributes");
    }
    for (const std::string& p : parts) {
      PCX_ASSIGN_OR_RETURN(const AttrDomain d,
                           ParseAttrDomain(TrimWhitespace(p)));
      h.domains.push_back(d);
    }
  }
  PCX_ASSIGN_OR_RETURN(const std::string digest_str,
                       TokenValue(tokens, "digest"));
  PCX_ASSIGN_OR_RETURN(const uint64_t digest, ParseU64(digest_str, 16));
  const uint64_t expected = SchemaDigest(h.num_attrs, h.domains);
  if (digest != expected) {
    return Status::InvalidArgument("header digest " + digest_str +
                                   " does not match its own schema (" +
                                   ToHex64(expected) + ")");
  }
  PCX_ASSIGN_OR_RETURN(const std::string epoch_str,
                       TokenValue(tokens, "base_epoch"));
  PCX_ASSIGN_OR_RETURN(h.base_epoch, ParseU64(epoch_str));
  return h;
}

Status Fsync(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    return Status::Internal("fsync(" + what +
                            ") failed: " + std::strerror(errno));
  }
  return Status::OK();
}

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("open(" + dir +
                            ") failed: " + std::strerror(errno));
  }
  Status s = Fsync(fd, dir);
  ::close(fd);
  return s;
}

Status WriteAll(int fd, const std::string& bytes, const std::string& what) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("write(" + what +
                              ") failed: " + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Writes `bytes` to `path` durably via a same-directory tmp + rename.
Status AtomicWriteFile(const std::string& dir, const std::string& path,
                       const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("open(" + tmp +
                            ") failed: " + std::strerror(errno));
  }
  Status s = WriteAll(fd, bytes, tmp);
  if (s.ok()) s = Fsync(fd, tmp);
  ::close(fd);
  if (!s.ok()) return s;
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("rename(" + tmp + " -> " + path +
                            ") failed: " + std::strerror(errno));
  }
  return FsyncDir(dir);
}

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

std::string SerializeLogHeader(const DeltaLogHeader& header,
                               uint64_t* crc_out) {
  std::ostringstream os;
  os << "pcxlog v1 attrs=" << header.num_attrs << " domains=";
  for (size_t a = 0; a < header.num_attrs; ++a) {
    if (a > 0) os << ",";
    os << AttrDomainName(DomainOf(header.domains, a));
  }
  os << " digest=" << ToHex64(SchemaDigest(header.num_attrs, header.domains))
     << " base_epoch=" << header.base_epoch;
  const uint64_t crc = Fnv1a64(os.str());
  if (crc_out != nullptr) *crc_out = crc;
  os << " crc=" << ToHex64(crc);
  return os.str();
}

std::string SerializeDeltaRecord(const DeltaRecord& rec, uint64_t chain,
                                 uint64_t* crc_out) {
  std::ostringstream os;
  os << "rec epoch=" << rec.epoch << " ";
  switch (rec.op) {
    case DeltaOp::kAppend:
      os << "append " << SerializePcBody(rec.pc);
      break;
    case DeltaOp::kRetire:
      os << "retire idx=" << rec.retire_index;
      break;
    case DeltaOp::kCheckpoint:
      os << "checkpoint";
      break;
  }
  os << " chain=" << ToHex64(chain);
  const uint64_t crc = Fnv1a64(os.str());
  if (crc_out != nullptr) *crc_out = crc;
  os << " crc=" << ToHex64(crc);
  return os.str();
}

StatusOr<DeltaRecord> ParseDeltaRecordLine(const std::string& line,
                                           size_t num_attrs,
                                           const uint64_t* expected_chain) {
  PCX_ASSIGN_OR_RETURN(const std::string body, CheckLineCrc(line));
  const size_t chain_at = body.rfind(" chain=");
  if (chain_at == std::string::npos) {
    return Status::InvalidArgument("record lacks a chain field");
  }
  PCX_ASSIGN_OR_RETURN(const uint64_t chain,
                       ParseU64(body.substr(chain_at + 7), 16));
  if (expected_chain != nullptr && chain != *expected_chain) {
    return Status::InvalidArgument(
        "chain mismatch: record links to " + ToHex64(chain) +
        " but the previous line hashes to " + ToHex64(*expected_chain));
  }
  const std::string payload = body.substr(0, chain_at);
  const auto tokens = SplitWhitespace(payload);
  if (tokens.size() < 3 || tokens[0] != "rec") {
    return Status::InvalidArgument("expected 'rec epoch=E <op> ...'");
  }
  if (tokens[1].rfind("epoch=", 0) != 0) {
    return Status::InvalidArgument("record lacks an epoch field");
  }
  DeltaRecord rec;
  PCX_ASSIGN_OR_RETURN(rec.epoch, ParseU64(tokens[1].substr(6)));
  const std::string& op = tokens[2];
  if (op == "append") {
    rec.op = DeltaOp::kAppend;
    const size_t at = payload.find(" append ");
    PCX_ASSIGN_OR_RETURN(rec.pc,
                         ParsePcBody(payload.substr(at + 8), num_attrs));
  } else if (op == "retire") {
    rec.op = DeltaOp::kRetire;
    if (tokens.size() < 4 || tokens[3].rfind("idx=", 0) != 0) {
      return Status::InvalidArgument("retire record lacks idx=");
    }
    PCX_ASSIGN_OR_RETURN(const uint64_t idx, ParseU64(tokens[3].substr(4)));
    rec.retire_index = static_cast<size_t>(idx);
  } else if (op == "checkpoint") {
    rec.op = DeltaOp::kCheckpoint;
  } else {
    return Status::InvalidArgument("unknown delta op '" + op + "'");
  }
  return rec;
}

StatusOr<DeltaLogReplay> ReplayDeltaLog(const std::string& text) {
  DeltaLogReplay out;

  // Header: the first LF-terminated line. A torn or corrupt header means
  // nothing in the file can be trusted — that is a hard error, unlike a
  // torn record tail.
  const size_t header_end = text.find('\n');
  if (header_end == std::string::npos) {
    return Status::InvalidArgument(
        "delta log lacks a complete header line");
  }
  uint64_t chain = 0;
  {
    auto header = ParseLogHeaderLine(text.substr(0, header_end), &chain);
    if (!header.ok()) {
      return Status::InvalidArgument("delta log header: " +
                                     header.status().message());
    }
    out.header = *std::move(header);
  }
  out.valid_bytes = header_end + 1;
  out.tip_crc = chain;
  out.tip_epoch = out.header.base_epoch;

  // Records. The valid prefix ends at the first violation; whatever
  // remains (including a final line with no '\n' — a torn append) is
  // counted, never fatal.
  size_t pos = out.valid_bytes;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      out.truncation_reason = "final record has no newline (torn append)";
      break;
    }
    const std::string line = text.substr(pos, eol - pos);
    auto rec = ParseDeltaRecordLine(line, out.header.num_attrs, &chain);
    if (!rec.ok()) {
      out.truncation_reason = rec.status().message();
      break;
    }
    if (rec->epoch != out.tip_epoch + 1) {
      out.truncation_reason =
          "epoch discontinuity: record carries epoch " +
          std::to_string(rec->epoch) + " after epoch " +
          std::to_string(out.tip_epoch);
      break;
    }
    chain = Fnv1a64(line.substr(0, line.rfind(" crc=")));
    out.tip_crc = chain;
    out.tip_epoch = rec->epoch;
    out.records.push_back(*std::move(rec));
    pos = eol + 1;
    out.valid_bytes = pos;
  }
  // Count every remaining line (terminated or not) as dropped.
  for (size_t p = out.valid_bytes; p < text.size();) {
    ++out.dropped_records;
    const size_t eol = text.find('\n', p);
    if (eol == std::string::npos) break;
    p = eol + 1;
  }
  return out;
}

std::string DurableLogBasePath(const std::string& dir) {
  return dir + "/base.pcxsnap";
}

std::string DurableLogLogPath(const std::string& dir) {
  return dir + "/delta.pcxlog";
}

StatusOr<std::unique_ptr<DurableLog>> DurableLog::Open(const std::string& dir,
                                                       Recovered* out) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("mkdir(" + dir +
                            ") failed: " + std::strerror(errno));
  }
  std::unique_ptr<DurableLog> log(new DurableLog(dir));
  Recovered recovered;
  const std::string base_path = DurableLogBasePath(dir);
  const std::string log_path = DurableLogLogPath(dir);

  if (!FileExists(base_path)) {
    if (FileExists(log_path)) {
      return Status::FailedPrecondition(
          "log dir '" + dir +
          "' has a delta log but no base snapshot; the pair is written "
          "base-first, so the snapshot was removed out of band");
    }
    // Fresh directory: stay uninitialized until the first Reset().
    if (out != nullptr) *out = std::move(recovered);
    return log;
  }

  PCX_ASSIGN_OR_RETURN(recovered.base, LoadSnapshot(base_path));
  recovered.has_base = true;

  DeltaLogHeader want;
  want.num_attrs = recovered.base.num_attrs;
  want.domains = recovered.base.domains;
  want.base_epoch = recovered.base.epoch;

  bool need_fresh_log = !FileExists(log_path);
  if (!need_fresh_log) {
    PCX_ASSIGN_OR_RETURN(const std::string bytes, ReadFileBytes(log_path));
    PCX_ASSIGN_OR_RETURN(DeltaLogReplay replay, ReplayDeltaLog(bytes));
    if (replay.header.base_epoch != want.base_epoch ||
        SchemaDigest(replay.header.num_attrs, replay.header.domains) !=
            SchemaDigest(want.num_attrs, want.domains)) {
      // The other half of an interrupted Reset(): the base was renamed
      // into place but the fresh log was not. The base is authoritative.
      need_fresh_log = true;
    } else {
      if (replay.valid_bytes < bytes.size()) {
        // Torn tail: truncate in place so future appends chain off the
        // last *valid* record instead of interleaving with garbage.
        if (::truncate(log_path.c_str(),
                       static_cast<off_t>(replay.valid_bytes)) != 0) {
          return Status::Internal("truncate(" + log_path +
                                  ") failed: " + std::strerror(errno));
        }
        recovered.dropped_records = replay.dropped_records;
        recovered.truncation_reason = replay.truncation_reason;
      }
      recovered.tail = std::move(replay.records);
      log->header_ = std::move(replay.header);
      log->chain_crc_ = replay.tip_crc;
      log->next_epoch_ = replay.tip_epoch + 1;
    }
  }
  if (need_fresh_log) {
    uint64_t crc = 0;
    PCX_RETURN_IF_ERROR(AtomicWriteFile(
        dir, log_path, SerializeLogHeader(want, &crc) + "\n"));
    log->header_ = want;
    log->chain_crc_ = crc;
    log->next_epoch_ = want.base_epoch + 1;
  }

  log->log_fd_ = ::open(log_path.c_str(), O_WRONLY | O_APPEND);
  if (log->log_fd_ < 0) {
    return Status::Internal("open(" + log_path +
                            ") failed: " + std::strerror(errno));
  }
  if (out != nullptr) *out = std::move(recovered);
  return log;
}

DurableLog::~DurableLog() {
  if (log_fd_ >= 0) ::close(log_fd_);
}

Status DurableLog::Reset(const Snapshot& snap) {
  const std::string base_path = DurableLogBasePath(dir_);
  const std::string log_path = DurableLogLogPath(dir_);
  // Base first: Open() treats a log whose base_epoch/digest disagree
  // with the base as "reinitialize from base", so a crash between the
  // two renames recovers to exactly this snapshot.
  PCX_RETURN_IF_ERROR(
      AtomicWriteFile(dir_, base_path, SerializeSnapshot(snap)));
  DeltaLogHeader header;
  header.num_attrs = snap.num_attrs;
  header.domains = snap.domains;
  header.base_epoch = snap.epoch;
  uint64_t crc = 0;
  PCX_RETURN_IF_ERROR(AtomicWriteFile(
      dir_, log_path, SerializeLogHeader(header, &crc) + "\n"));
  if (log_fd_ >= 0) ::close(log_fd_);
  log_fd_ = ::open(log_path.c_str(), O_WRONLY | O_APPEND);
  if (log_fd_ < 0) {
    return Status::Internal("open(" + log_path +
                            ") failed: " + std::strerror(errno));
  }
  header_ = std::move(header);
  chain_crc_ = crc;
  next_epoch_ = snap.epoch + 1;
  return Status::OK();
}

Status DurableLog::Append(const DeltaRecord& rec) {
  if (log_fd_ < 0) {
    return Status::FailedPrecondition(
        "durable log has no base snapshot yet; Reset() first");
  }
  if (rec.epoch != next_epoch_) {
    return Status::FailedPrecondition(
        "record carries epoch " + std::to_string(rec.epoch) +
        " but the log expects " + std::to_string(next_epoch_));
  }
  uint64_t crc = 0;
  const std::string line = SerializeDeltaRecord(rec, chain_crc_, &crc);
  PCX_RETURN_IF_ERROR(WriteAll(log_fd_, line + "\n", "delta log"));
  if (fsync_hist_ != nullptr) {
    const auto start = std::chrono::steady_clock::now();
    PCX_RETURN_IF_ERROR(Fsync(log_fd_, "delta log"));
    fsync_hist_->Observe(std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - start)
                             .count());
  } else {
    PCX_RETURN_IF_ERROR(Fsync(log_fd_, "delta log"));
  }
  chain_crc_ = crc;
  ++next_epoch_;
  return Status::OK();
}

void DurableLog::set_metrics(MetricsRegistry* metrics) {
  fsync_hist_ = metrics == nullptr
                    ? nullptr
                    : &metrics->GetHistogram(
                          "pcx_log_fsync_latency_us", {},
                          "Delta-log append fsync latency (microseconds)");
}

}  // namespace pcx
