#include "serve/replicator.h"

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "common/text.h"
#include "serve/delta_log.h"
#include "serve/snapshot.h"

namespace pcx {
namespace {

StatusOr<uint64_t> HeaderField(const std::vector<std::string>& tokens,
                               const std::string& key) {
  const std::string needle = key + "=";
  for (const std::string& t : tokens) {
    if (t.rfind(needle, 0) == 0) return ParseU64(t.substr(needle.size()));
  }
  return Status::ProtocolError("SYNC reply lacks '" + key + "='");
}

}  // namespace

ReplicaTailer::ReplicaTailer(BoundServer& server, Options options)
    : server_(server), options_(std::move(options)) {}

ReplicaTailer::~ReplicaTailer() { Stop(); }

void ReplicaTailer::Start() {
  MutexLock lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  server_.replication().replica.store(true);
  thread_ = std::thread([this] { Run(); });
}

void ReplicaTailer::Stop() {
  // Claim the thread handle under the lock — running_ flips false
  // BEFORE the join, so a concurrent Stop returns instead of joining
  // the same thread twice (which throws std::system_error). The join
  // itself happens outside the lock: the Run thread takes mu_ in
  // SleepFor and would deadlock against a join-while-held.
  std::thread claimed;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_ = true;
    running_ = false;
    claimed = std::move(thread_);
    cv_.NotifyAll();
  }
  claimed.join();
}

bool ReplicaTailer::SleepFor(uint32_t ms) {
  MutexLock lock(mu_);
  cv_.WaitFor(mu_, std::chrono::milliseconds(ms),
              [this]() REQUIRES(mu_) { return stop_; });
  return !stop_;
}

StatusOr<uint64_t> ReplicaTailer::SyncOnce(LineTransport& transport,
                                           BoundServer& server) {
  const std::shared_ptr<const ShardedBoundSolver> current = server.solver();
  const std::string from =
      current != nullptr ? std::to_string(current->epoch()) : "none";
  PCX_RETURN_IF_ERROR(transport.SendLine("SYNC " + from));
  PCX_ASSIGN_OR_RETURN(const std::string header, transport.ReadLine());
  if (header.rfind("ERR ", 0) == 0) return ParseErrorReply(header);
  const std::vector<std::string> tokens = SplitWhitespace(header);
  if (tokens.empty() || tokens[0] != "SYNC") {
    return Status::ProtocolError("expected 'SYNC epoch=... base_lines=... "
                                 "records=...', got '" +
                                 header + "'");
  }
  PCX_ASSIGN_OR_RETURN(const uint64_t primary_epoch,
                       HeaderField(tokens, "epoch"));
  PCX_ASSIGN_OR_RETURN(const uint64_t base_lines,
                       HeaderField(tokens, "base_lines"));
  PCX_ASSIGN_OR_RETURN(const uint64_t num_records,
                       HeaderField(tokens, "records"));

  if (base_lines > 0) {
    // Full resync: the primary streamed a whole pcxsnap document.
    std::string text;
    for (uint64_t i = 0; i < base_lines; ++i) {
      PCX_ASSIGN_OR_RETURN(const std::string line, transport.ReadLine());
      text += line;
      text += '\n';
    }
    PCX_ASSIGN_OR_RETURN(const Snapshot snap, ParseSnapshot(text));
    PCX_RETURN_IF_ERROR(server.InstallSnapshot(snap).status());
    ++server.replication().snapshots_installed;
    server.metrics()
        .GetCounter("pcx_replication_snapshots_installed_total", {},
                    "Full snapshot resyncs installed by the replica tailer")
        .Increment();
  }
  if (num_records > 0) {
    // Tail shipping: records in (our epoch, primary epoch], crc-checked
    // per line (chain links are a file property; wire records carry 0)
    // and epoch-contiguity-checked by ApplyRecords.
    const std::shared_ptr<const ShardedBoundSolver> base = server.solver();
    if (base == nullptr) {
      return Status::ProtocolError(
          "primary shipped records to an empty replica");
    }
    const size_t num_attrs = base->constraints().num_attrs();
    std::vector<DeltaRecord> records;
    records.reserve(static_cast<size_t>(num_records));
    for (uint64_t i = 0; i < num_records; ++i) {
      PCX_ASSIGN_OR_RETURN(const std::string line, transport.ReadLine());
      PCX_ASSIGN_OR_RETURN(DeltaRecord rec,
                           ParseDeltaRecordLine(line, num_attrs, nullptr));
      records.push_back(std::move(rec));
    }
    PCX_RETURN_IF_ERROR(server.ApplyRecords(records).status());
    server.replication().records_applied += num_records;
    server.metrics()
        .GetCounter("pcx_replication_records_applied_total", {},
                    "Delta records applied by the replica tailer")
        .Increment(num_records);
  }
  server.replication().primary_epoch.store(primary_epoch);
  ++server.replication().syncs;
  // Mirror into the registry: syncs as a counter and the epoch gap as a
  // gauge (0 right after a successful sync unless the primary advanced
  // while we applied). Registration cost is fine at poll cadence.
  server.metrics()
      .GetCounter("pcx_replication_syncs_total", {},
                  "Successful SYNC rounds against the primary")
      .Increment();
  const std::shared_ptr<const ShardedBoundSolver> after = server.solver();
  const uint64_t local_epoch = after != nullptr ? after->epoch() : 0;
  server.metrics()
      .GetGauge("pcx_replication_lag", {},
                "Primary epoch minus local epoch after the last sync")
      .Set(primary_epoch >= local_epoch
               ? static_cast<int64_t>(primary_epoch - local_epoch)
               : 0);
  return primary_epoch;
}

void ReplicaTailer::Run() {
  Rng rng(options_.jitter_seed);
  std::unique_ptr<TcpClientTransport> transport;
  uint32_t backoff_ms = options_.reconnect_min_ms;
  while (true) {
    if (transport == nullptr) {
      auto connected = TcpClientTransport::Connect(options_.host,
                                                   options_.port);
      if (!connected.ok()) {
        ++server_.replication().sync_failures;
        server_.metrics()
            .GetCounter("pcx_replication_sync_failures_total", {},
                        "Failed connects or SYNC rounds on the replica")
            .Increment();
        // Decorrelated jitter: sleep in [min, 3*prev], capped — a fleet
        // of replicas reconnecting to a restarted primary spreads out
        // instead of stampeding in lockstep.
        const uint32_t hi = std::min<uint32_t>(
            options_.reconnect_max_ms,
            std::max(backoff_ms, options_.reconnect_min_ms) * 3);
        backoff_ms = static_cast<uint32_t>(
            rng.UniformInt(options_.reconnect_min_ms, hi));
        if (!SleepFor(backoff_ms)) return;
        continue;
      }
      transport = std::move(*connected);
      backoff_ms = options_.reconnect_min_ms;
    }
    const StatusOr<uint64_t> synced = SyncOnce(*transport, server_);
    if (!synced.ok()) {
      ++server_.replication().sync_failures;
      server_.metrics()
          .GetCounter("pcx_replication_sync_failures_total", {},
                      "Failed connects or SYNC rounds on the replica")
          .Increment();
      if (synced.status().code() == StatusCode::kUnavailable ||
          synced.status().code() == StatusCode::kProtocolError) {
        // The session is gone or desynced; only a fresh connection has
        // a known reply-stream offset.
        transport.reset();
      }
      // Non-transport errors (e.g. the primary has no snapshot yet)
      // keep the session and just retry on the poll cadence.
    }
    if (!SleepFor(options_.poll_ms)) return;
  }
}

}  // namespace pcx
