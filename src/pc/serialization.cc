#include "pc/serialization.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/text.h"

namespace pcx {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Extracts the value of `key=` from a pc line; the value runs until the
/// next top-level whitespace.
StatusOr<std::string> ExtractField(const std::string& line,
                                   const std::string& key) {
  const std::string needle = key + "=";
  const size_t at = line.find(needle);
  if (at == std::string::npos) {
    return Status::InvalidArgument("missing field '" + key + "'");
  }
  size_t start = at + needle.size();
  // Value ends at whitespace that is not inside {} or [] / ().
  int depth = 0;
  size_t end = start;
  while (end < line.size()) {
    const char c = line[end];
    if (c == '{' || c == '[' || c == '(') ++depth;
    if (c == '}' || c == ']' || c == ')') --depth;
    if ((c == ' ' || c == '\t') && depth <= 0) break;
    ++end;
  }
  return line.substr(start, end - start);
}

}  // namespace

std::string FormatNumber(double v) {
  if (v == kInf) return "inf";
  if (v == -kInf) return "-inf";
  // Round-trippable double formatting.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

StatusOr<double> ParseNumber(const std::string& s) {
  if (s == "inf" || s == "+inf") return kInf;
  if (s == "-inf") return -kInf;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad number '" + s + "'");
  }
  return v;
}

std::string SerializeBox(const Box& box) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (size_t d = 0; d < box.num_attrs(); ++d) {
    if (box.dim(d).is_unbounded()) continue;
    if (!first) os << ",";
    first = false;
    os << d << ":" << SerializeInterval(box.dim(d));
  }
  os << "}";
  return os.str();
}

StatusOr<Box> ParseBox(const std::string& text, size_t num_attrs) {
  std::string body = TrimWhitespace(text);
  if (body.size() < 2 || body.front() != '{' || body.back() != '}') {
    return Status::InvalidArgument("box must be wrapped in {}: " + text);
  }
  body = body.substr(1, body.size() - 2);
  Box box(num_attrs);
  size_t pos = 0;
  while (pos < body.size()) {
    // Entries look like "3:[0, 24)"; split on the comma that follows a
    // closing bracket.
    size_t colon = body.find(':', pos);
    if (colon == std::string::npos) {
      return Status::InvalidArgument("missing ':' in box entry");
    }
    const std::string attr_str = TrimWhitespace(body.substr(pos, colon - pos));
    char* end = nullptr;
    const unsigned long attr = std::strtoul(attr_str.c_str(), &end, 10);
    if (end == attr_str.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad attribute index '" + attr_str + "'");
    }
    if (attr >= num_attrs) {
      return Status::InvalidArgument("attribute index out of range");
    }
    size_t close = body.find_first_of(")]", colon);
    if (close == std::string::npos) {
      return Status::InvalidArgument("unterminated interval");
    }
    PCX_ASSIGN_OR_RETURN(
        const Interval iv,
        ParseInterval(body.substr(colon + 1, close - colon)));
    box.Constrain(attr, iv);
    pos = close + 1;
    if (pos < body.size() && body[pos] == ',') ++pos;
  }
  return box;
}

std::string SerializeInterval(const Interval& iv) {
  std::ostringstream os;
  os << (iv.lo_strict ? "(" : "[") << FormatNumber(iv.lo) << ","
     << FormatNumber(iv.hi) << (iv.hi_strict ? ")" : "]");
  return os.str();
}

StatusOr<Interval> ParseInterval(const std::string& text) {
  const std::string s = TrimWhitespace(text);
  if (s.size() < 3) return Status::InvalidArgument("interval too short");
  const char open = s.front();
  const char close = s.back();
  if ((open != '[' && open != '(') || (close != ']' && close != ')')) {
    return Status::InvalidArgument("bad interval brackets in '" + s + "'");
  }
  const std::string body = s.substr(1, s.size() - 2);
  const size_t comma = body.find(',');
  if (comma == std::string::npos) {
    return Status::InvalidArgument("interval needs two endpoints");
  }
  PCX_ASSIGN_OR_RETURN(const double lo, ParseNumber(TrimWhitespace(body.substr(0, comma))));
  PCX_ASSIGN_OR_RETURN(const double hi, ParseNumber(TrimWhitespace(body.substr(comma + 1))));
  if (lo > hi) return Status::InvalidArgument("inverted interval");
  return Interval{lo, hi, open == '(', close == ')'};
}

std::string SerializePcBody(const PredicateConstraint& pc) {
  std::ostringstream os;
  os << "pred=" << SerializeBox(pc.predicate().box())
     << " values=" << SerializeBox(pc.values()) << " freq=["
     << FormatNumber(pc.frequency().lo) << ","
     << FormatNumber(pc.frequency().hi) << "]";
  return os.str();
}

StatusOr<PredicateConstraint> ParsePcBody(const std::string& body,
                                          size_t num_attrs) {
  PCX_ASSIGN_OR_RETURN(const std::string pred_text,
                       ExtractField(body, "pred"));
  PCX_ASSIGN_OR_RETURN(const std::string values_text,
                       ExtractField(body, "values"));
  PCX_ASSIGN_OR_RETURN(const std::string freq_text,
                       ExtractField(body, "freq"));
  PCX_ASSIGN_OR_RETURN(Box pred_box, ParseBox(pred_text, num_attrs));
  PCX_ASSIGN_OR_RETURN(Box values_box, ParseBox(values_text, num_attrs));
  PCX_ASSIGN_OR_RETURN(const Interval freq_iv, ParseInterval(freq_text));
  if (freq_iv.lo < 0) return Status::InvalidArgument("negative frequency");
  return PredicateConstraint(
      Predicate(std::move(pred_box)), std::move(values_box),
      FrequencyConstraint::Between(freq_iv.lo, freq_iv.hi));
}

std::string SerializePcSet(const PredicateConstraintSet& pcs) {
  std::ostringstream os;
  os << "pcset v1 attrs=" << pcs.num_attrs() << "\n";
  for (const auto& pc : pcs.constraints()) {
    os << "pc " << SerializePcBody(pc) << "\n";
  }
  return os.str();
}

StatusOr<PredicateConstraintSet> ParsePcSet(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  size_t line_no = 0;
  size_t num_attrs = 0;
  bool header_seen = false;
  PredicateConstraintSet out;

  // Errors carry both the line number and the offending text: snapshot
  // files get hand-edited (and re-saved by editors that add CRLF or
  // trailing blanks), and "line 17" alone is useless once the file has
  // been touched.
  auto error = [&](const std::string& msg) {
    return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                   msg + " in '" + line + "'");
  };

  while (std::getline(is, line)) {
    ++line_no;
    // Trim tolerates trailing whitespace and CRLF line endings, so
    // documents edited on other platforms still parse.
    line = TrimWhitespace(line);
    if (line.empty() || line[0] == '#') continue;
    if (!header_seen) {
      if (line.rfind("pcset v1 attrs=", 0) != 0) {
        return error("expected header 'pcset v1 attrs=N'");
      }
      char* end = nullptr;
      num_attrs = std::strtoul(line.c_str() + 15, &end, 10);
      if (end == line.c_str() + 15 || *end != '\0') {
        return error("malformed attrs count in header");
      }
      header_seen = true;
      continue;
    }
    if (line.rfind("pc ", 0) != 0) return error("expected 'pc ' record");
    auto pc = ParsePcBody(line, num_attrs);
    if (!pc.ok()) return error(pc.status().message());
    out.Add(*std::move(pc));
  }
  if (!header_seen) return Status::InvalidArgument("empty pcset document");
  return out;
}

}  // namespace pcx
