#include "pc/predicate_constraint.h"

#include <sstream>

#include "common/check.h"

namespace pcx {

PredicateConstraint::PredicateConstraint(Predicate predicate, Box values,
                                         FrequencyConstraint frequency)
    : predicate_(std::move(predicate)),
      values_(std::move(values)),
      frequency_(frequency) {
  PCX_CHECK_EQ(predicate_.num_attrs(), values_.num_attrs());
  PCX_CHECK_GE(frequency_.lo, 0.0);
  PCX_CHECK_LE(frequency_.lo, frequency_.hi);
}

bool PredicateConstraint::SatisfiedBy(const Table& table) const {
  size_t matches = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (!predicate_.MatchesRow(table, r)) continue;
    ++matches;
    for (size_t c = 0; c < values_.num_attrs(); ++c) {
      if (values_.dim(c).is_unbounded()) continue;
      if (!values_.dim(c).Contains(table.At(r, c))) return false;
    }
  }
  const double m = static_cast<double>(matches);
  return m >= frequency_.lo && m <= frequency_.hi;
}

PredicateConstraint PredicateConstraint::NegatedValues() const {
  Box negated(values_.num_attrs());
  for (size_t c = 0; c < values_.num_attrs(); ++c) {
    const Interval& iv = values_.dim(c);
    Interval flipped;
    flipped.lo = -iv.hi;
    flipped.hi = -iv.lo;
    flipped.lo_strict = iv.hi_strict;
    flipped.hi_strict = iv.lo_strict;
    negated.Constrain(c, flipped);
  }
  return PredicateConstraint(predicate_, negated, frequency_);
}

std::string PredicateConstraint::ToString() const {
  std::ostringstream os;
  os << predicate_.ToString() << " => values " << values_.ToString()
     << ", freq [" << frequency_.lo << ", " << frequency_.hi << "]";
  return os.str();
}

StatusOr<PredicateConstraint> MakeSingleAttributeConstraint(
    const Schema& schema, Predicate predicate, const std::string& value_attr,
    double value_lo, double value_hi, double freq_lo, double freq_hi) {
  PCX_ASSIGN_OR_RETURN(const size_t col, schema.ColumnIndex(value_attr));
  if (freq_lo < 0 || freq_lo > freq_hi) {
    return Status::InvalidArgument("invalid frequency range");
  }
  if (value_lo > value_hi) {
    return Status::InvalidArgument("invalid value range");
  }
  Box values(schema.num_columns());
  values.Constrain(col, Interval::Closed(value_lo, value_hi));
  return PredicateConstraint(std::move(predicate), std::move(values),
                             FrequencyConstraint::Between(freq_lo, freq_hi));
}

}  // namespace pcx
