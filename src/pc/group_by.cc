#include "pc/group_by.h"

namespace pcx {

std::vector<AggQuery> MakeGroupByQueries(
    const AggQuery& query, size_t group_attr,
    const std::vector<double>& group_values, size_t num_attrs) {
  std::vector<AggQuery> per_group;
  per_group.reserve(group_values.size());
  for (double value : group_values) {
    AggQuery q = query;
    Predicate where =
        query.where.has_value() ? *query.where : Predicate(num_attrs);
    where.AddEquals(group_attr, value);
    q.where = std::move(where);
    per_group.push_back(std::move(q));
  }
  return per_group;
}

StatusOr<std::vector<GroupRange>> BoundGroupBy(
    const PcBoundSolver& solver, const AggQuery& query, size_t group_attr,
    const std::vector<double>& group_values, size_t num_threads) {
  if (!solver.constraints().empty() &&
      group_attr >= solver.constraints().num_attrs()) {
    return Status::InvalidArgument("group attribute out of range");
  }
  const std::vector<AggQuery> per_group = MakeGroupByQueries(
      query, group_attr, group_values, solver.constraints().num_attrs());

  const auto ranges = solver.BoundBatch(per_group, num_threads);
  std::vector<GroupRange> out;
  out.reserve(group_values.size());
  for (size_t g = 0; g < group_values.size(); ++g) {
    // First failure (in group order) wins, matching the sequential loop.
    if (!ranges[g].ok()) return ranges[g].status();
    out.push_back(GroupRange{group_values[g], *ranges[g]});
  }
  return out;
}

StatusOr<std::vector<GroupRange>> BoundGroupByCategorical(
    const PcBoundSolver& solver, const AggQuery& query, const Schema& schema,
    const std::string& group_column, size_t num_threads) {
  PCX_ASSIGN_OR_RETURN(const size_t col, schema.ColumnIndex(group_column));
  if (schema.column(col).type != ColumnType::kCategorical) {
    return Status::InvalidArgument("group column must be categorical");
  }
  std::vector<double> values;
  for (size_t code = 0; code < schema.DictionarySize(col); ++code) {
    values.push_back(static_cast<double>(code));
  }
  return BoundGroupBy(solver, query, col, values, num_threads);
}

}  // namespace pcx
