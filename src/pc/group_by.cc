#include "pc/group_by.h"

namespace pcx {

StatusOr<std::vector<GroupRange>> BoundGroupBy(
    const PcBoundSolver& solver, const AggQuery& query, size_t group_attr,
    const std::vector<double>& group_values) {
  if (!solver.constraints().empty() &&
      group_attr >= solver.constraints().num_attrs()) {
    return Status::InvalidArgument("group attribute out of range");
  }
  std::vector<GroupRange> out;
  out.reserve(group_values.size());
  for (double value : group_values) {
    AggQuery per_group = query;
    Predicate where =
        query.where.has_value()
            ? *query.where
            : Predicate(solver.constraints().num_attrs());
    where.AddEquals(group_attr, value);
    per_group.where = std::move(where);
    PCX_ASSIGN_OR_RETURN(ResultRange range, solver.Bound(per_group));
    out.push_back(GroupRange{value, range});
  }
  return out;
}

StatusOr<std::vector<GroupRange>> BoundGroupByCategorical(
    const PcBoundSolver& solver, const AggQuery& query, const Schema& schema,
    const std::string& group_column) {
  PCX_ASSIGN_OR_RETURN(const size_t col, schema.ColumnIndex(group_column));
  if (schema.column(col).type != ColumnType::kCategorical) {
    return Status::InvalidArgument("group column must be categorical");
  }
  std::vector<double> values;
  for (size_t code = 0; code < schema.DictionarySize(col); ++code) {
    values.push_back(static_cast<double>(code));
  }
  return BoundGroupBy(solver, query, col, values);
}

}  // namespace pcx
