#ifndef PCX_PC_CELL_DECOMPOSITION_H_
#define PCX_PC_CELL_DECOMPOSITION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/covering_set.h"
#include "pc/pc_set.h"
#include "predicate/predicate.h"
#include "predicate/sat.h"

namespace pcx {

/// One disjoint cell of the decomposition (paper §4.1): the region of
/// tuple space inside the predicates of `covering` and outside all
/// other predicates.
struct Cell {
  CoveringSet covering;           ///< non-negated PC indices (never empty)
  Box positive;                   ///< intersection of covering boxes (+ pushdown)
  std::vector<Box> negated;       ///< boxes of the negated PCs
  bool verified = true;           ///< false when admitted by early stopping
};

/// Decomposition strategy (paper §4.1 optimizations).
struct DecompositionOptions {
  /// Optimization 2: depth-first search with UNSAT-prefix pruning. When
  /// false, all 2^n - 1 sign assignments are enumerated and each full
  /// conjunction is tested individually (the "No Optimization" bar of
  /// Fig. 7).
  bool use_dfs = true;
  /// Optimization 3: the rewrite SAT(X) ∧ UNSAT(X∧Y) ⇒ SAT(X∧¬Y), which
  /// skips one solver call per such branch. Requires use_dfs.
  bool use_rewriting = true;
  /// Optimization 4: stop verifying below this DFS depth and admit all
  /// remaining cells as satisfiable ("false positives" that loosen but
  /// never invalidate the bound). SIZE_MAX disables early stopping.
  size_t early_stop_depth = SIZE_MAX;
};

/// Decomposition result plus the counters reported in Fig. 7.
struct DecompositionResult {
  std::vector<Cell> cells;
  size_t sat_calls = 0;        ///< satisfiability decisions requested
  size_t sat_cache_hits = 0;   ///< decisions served from the memo cache
  size_t nodes_visited = 0;    ///< DFS nodes (or cells, for the naive path)
  size_t cells_pruned = 0;     ///< subtrees/cells eliminated as UNSAT
  size_t rewrites_used = 0;    ///< solver calls saved by Optimization 3
};

/// Decomposes a predicate-constraint set into disjoint satisfiable
/// cells. `pushdown` (Optimization 1) restricts the decomposition to the
/// region overlapping the query predicate; pass std::nullopt to cover
/// the whole space. `domains` declares integer-valued attributes.
///
/// `relevant`, when non-null, restricts the DFS enumeration to exactly
/// those PC indices (ascending; typically precomputed by a
/// route::RouteIndex as the PCs whose predicate box intersects the
/// pushdown region). This is a pure traversal shortcut, bit-identical
/// in cells and sat_calls to the full enumeration: an omitted PC's box
/// is disjoint from the root region, so the DFS geometric fast path
/// would skip it at every node — it can never enter a covering set, a
/// negation list, or a solver call; only nodes_visited shrinks. The
/// naive (use_dfs=false) path ignores it. Passing indices whose box
/// *does* intersect the pushdown region as omitted would change the
/// decomposition — the caller owns that precondition.
///
/// Cells covered by no predicate are never emitted: under the closure
/// assumption (paper Definition 3.2) they contain no missing rows.
DecompositionResult DecomposeCells(
    const PredicateConstraintSet& pcs,
    const std::optional<Predicate>& pushdown = std::nullopt,
    const DecompositionOptions& options = {},
    const std::vector<AttrDomain>& domains = {},
    const std::vector<uint32_t>* relevant = nullptr);

/// Like DecomposeCells, but running against a caller-owned checker whose
/// memo cache survives the call. Repeated queries over one loaded PC set
/// re-derive mostly the same cell expressions, so a persistent checker
/// turns the second and later decompositions into cache lookups (see
/// PcBoundSolver::Options::persistent_sat_cache). Attribute domains come
/// from the checker. The result's sat_calls / sat_cache_hits are the
/// *deltas* of this call, keeping them comparable with the one-shot
/// overload. The checker is not thread-safe; the caller serializes.
DecompositionResult DecomposeCellsWith(
    IntervalSatChecker& checker, const PredicateConstraintSet& pcs,
    const std::optional<Predicate>& pushdown = std::nullopt,
    const DecompositionOptions& options = {},
    const std::vector<uint32_t>* relevant = nullptr);

}  // namespace pcx

#endif  // PCX_PC_CELL_DECOMPOSITION_H_
