#ifndef PCX_PC_COMBINE_H_
#define PCX_PC_COMBINE_H_

#include "pc/query.h"
#include "relation/aggregate.h"

namespace pcx {

/// Combines the aggregate computed over the *observed* rows with the
/// result range bounding the *missing* rows into a range for the full
/// relation R = R* ∪ R? (paper §6.2: "partially covered" queries).
///
/// SUM/COUNT add; MIN/MAX take envelope extremes; AVG combines the
/// missing COUNT and AVG ranges with the observed sum/count by interval
/// arithmetic over the corner cases (conservative but always sound).
ResultRange CombineWithObserved(AggFunc agg, const AggregateResult& observed,
                                const ResultRange& missing,
                                const ResultRange* missing_count = nullptr);

}  // namespace pcx

#endif  // PCX_PC_COMBINE_H_
