#include "pc/combine.h"

#include <algorithm>

#include "common/check.h"

namespace pcx {

ResultRange CombineWithObserved(AggFunc agg, const AggregateResult& observed,
                                const ResultRange& missing,
                                const ResultRange* missing_count) {
  ResultRange out;
  switch (agg) {
    case AggFunc::kCount:
    case AggFunc::kSum: {
      const double base = observed.value;
      out.lo = base + missing.lo;
      out.hi = base + missing.hi;
      out.defined = true;
      return out;
    }
    case AggFunc::kMin: {
      if (observed.empty_input && !missing.defined) {
        out.defined = false;
        return out;
      }
      if (observed.empty_input) return missing;
      if (!missing.defined) {
        out.lo = out.hi = observed.value;
        return out;
      }
      out.lo = std::min(observed.value, missing.lo);
      // If the missing side may be empty, the overall MIN can stay at
      // the observed value.
      out.hi = missing.empty_instance_possible
                   ? observed.value
                   : std::min(observed.value, missing.hi);
      return out;
    }
    case AggFunc::kMax: {
      if (observed.empty_input && !missing.defined) {
        out.defined = false;
        return out;
      }
      if (observed.empty_input) return missing;
      if (!missing.defined) {
        out.lo = out.hi = observed.value;
        return out;
      }
      out.hi = std::max(observed.value, missing.hi);
      out.lo = missing.empty_instance_possible
                   ? observed.value
                   : std::max(observed.value, missing.lo);
      return out;
    }
    case AggFunc::kAvg: {
      PCX_CHECK(missing_count != nullptr)
          << "AVG combination needs the missing COUNT range";
      if (observed.empty_input && !missing.defined) {
        out.defined = false;
        return out;
      }
      if (observed.empty_input) return missing;
      if (!missing.defined || missing_count->hi == 0.0) {
        out.lo = out.hi = observed.value;  // nothing can be missing
        return out;
      }
      const double s_obs = observed.value * static_cast<double>(observed.num_rows);
      const double c_obs = static_cast<double>(observed.num_rows);
      // Evaluate (s_obs + m*avg) / (c_obs + m) over the corner values of
      // the missing count m and missing average avg; the expression is
      // monotone in avg and monotone in m for fixed avg, so corners
      // bound it.
      out.lo = observed.value;
      out.hi = observed.value;
      const double counts[2] = {std::max(missing_count->lo, 0.0),
                                missing_count->hi};
      const double avgs[2] = {missing.lo, missing.hi};
      for (double m : counts) {
        for (double a : avgs) {
          if (c_obs + m <= 0.0) continue;
          const double v = (s_obs + m * a) / (c_obs + m);
          out.lo = std::min(out.lo, v);
          out.hi = std::max(out.hi, v);
        }
      }
      return out;
    }
  }
  return out;
}

}  // namespace pcx
