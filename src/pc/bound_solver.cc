#include "pc/bound_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "common/check.h"
#include "common/thread_pool.h"

namespace pcx {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// True when the query predicate region contains the whole predicate
/// box of `pc` — only then do the PC's mandatory rows (kappa.lo) have to
/// fall inside the query region.
bool QueryCoversConstraint(const std::optional<Predicate>& where,
                           const PredicateConstraint& pc) {
  if (!where.has_value()) return true;
  return where->box().Covers(pc.predicate().box());
}

}  // namespace

PcBoundSolver::PcBoundSolver(PredicateConstraintSet pcs,
                             std::vector<AttrDomain> domains)
    : PcBoundSolver(std::move(pcs), std::move(domains), Options{}) {}

PcBoundSolver::PcBoundSolver(PredicateConstraintSet pcs,
                             std::vector<AttrDomain> domains, Options options)
    : pcs_(std::move(pcs)),
      domains_(std::move(domains)),
      options_(options) {
  predicates_disjoint_ =
      options_.auto_disjoint_fast_path &&
      (options_.assume_predicates_disjoint ||
       pcs_.PredicatesDisjoint(domains_));
  if (options_.use_route_index && !pcs_.empty() && pcs_.num_attrs() > 0) {
    std::vector<Box> boxes;
    boxes.reserve(pcs_.size());
    for (size_t j = 0; j < pcs_.size(); ++j) {
      boxes.push_back(pcs_.at(j).predicate().box());
    }
    route_index_ = std::make_shared<const route::RouteIndex>(std::move(boxes),
                                                             domains_);
  }
  // Value negation keeps every predicate box intact, so the sibling
  // inherits the disjointness verdict and the route index instead of
  // recomputing either; the tag ctor also stops the recursion (the
  // sibling of the sibling would be *this again).
  negated_solver_ = std::unique_ptr<const PcBoundSolver>(
      new PcBoundSolver(InheritDisjointTag{}, pcs_.NegatedValues(), domains_,
                        options_, predicates_disjoint_, route_index_));
  if (options_.persistent_sat_cache) {
    persistent_checker_ = std::make_unique<IntervalSatChecker>(domains_);
  }
}

PcBoundSolver::PcBoundSolver(InheritDisjointTag, PredicateConstraintSet pcs,
                             const std::vector<AttrDomain>& domains,
                             const Options& options, bool predicates_disjoint,
                             std::shared_ptr<const route::RouteIndex>
                                 route_index)
    : pcs_(std::move(pcs)),
      domains_(domains),
      options_(options),
      predicates_disjoint_(predicates_disjoint),
      route_index_(std::move(route_index)) {
  if (options_.persistent_sat_cache) {
    persistent_checker_ = std::make_unique<IntervalSatChecker>(domains_);
  }
}

std::optional<std::vector<uint32_t>> PcBoundSolver::RelevantFor(
    const AggQuery& query) const {
  // Without a WHERE the decomposition root is the universe and nothing
  // can be pruned; without an index there is nothing to prune with.
  if (route_index_ == nullptr || !query.where.has_value()) {
    return std::nullopt;
  }
  std::vector<uint32_t> relevant;
  route_index_->CollectIntersecting(query.where->box(), &relevant);
  return relevant;
}

StatusOr<std::vector<PcBoundSolver::CellBound>> PcBoundSolver::BuildCells(
    const AggQuery& query, size_t attr, SolveStats& stats) const {
  DecompositionResult decomp;
  // Route-index prefilter: hand the DFS only the PCs whose predicate
  // box intersects the WHERE box. Bit-identical (see DecomposeCells) —
  // the omitted PCs are exactly those the geometric fast path would
  // skip at every node anyway.
  const std::optional<std::vector<uint32_t>> relevant = RelevantFor(query);
  const std::vector<uint32_t>* relevant_ptr =
      relevant.has_value() ? &*relevant : nullptr;
  if (persistent_checker_ != nullptr) {
    // Serialized: the memoizing checker is single-threaded scratch
    // state. Verdicts are canonical, so sharing it across queries only
    // changes sat_cache_hits, never a bound.
    MutexLock lock(sat_mu_);
    decomp = DecomposeCellsWith(*persistent_checker_, pcs_, query.where,
                                options_.decomposition, relevant_ptr);
  } else {
    decomp = DecomposeCells(pcs_, query.where, options_.decomposition,
                            domains_, relevant_ptr);
  }
  stats.num_cells += decomp.cells.size();
  stats.sat_calls += decomp.sat_calls;
  stats.sat_cache_hits += decomp.sat_cache_hits;

  std::vector<CellBound> out;
  out.reserve(decomp.cells.size());
  for (Cell& cell : decomp.cells) {
    // The attribute values of a row in this cell are constrained by the
    // value boxes of every covering PC and by the cell's own region
    // (its positive box already includes the query pushdown).
    Box combined = cell.positive;
    for (size_t j : cell.covering) {
      combined.IntersectWith(pcs_.at(j).values());
    }
    if (combined.IsEmpty(domains_)) continue;  // no row can live here
    CellBound cb;
    cb.val_lo = combined.dim(attr).lo;
    cb.val_hi = combined.dim(attr).hi;
    cb.covering = std::move(cell.covering);
    out.push_back(std::move(cb));
  }
  return out;
}

LpModel PcBoundSolver::BuildAllocationModel(
    const std::vector<CellBound>& cells, const std::vector<double>& objective,
    const std::optional<Predicate>& where) const {
  PCX_CHECK_EQ(cells.size(), objective.size());
  LpModel model;
  model.set_sense(OptSense::kMaximize);
  for (size_t i = 0; i < cells.size(); ++i) {
    model.AddVariable(objective[i], 0.0, kInf, /*integer=*/true);
  }
  // One ranged frequency row per PC that covers at least one cell
  // (paper Eq. 2): kappa.lo <= sum_{i covered by j} x_i <= kappa.hi.
  for (size_t j = 0; j < pcs_.size(); ++j) {
    LinearConstraint row;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].covering.Test(j)) {
        row.terms.push_back({i, 1.0});
      }
    }
    const FrequencyConstraint& k = pcs_.at(j).frequency();
    row.hi = k.hi;
    // A frequency *lower* bound applies to all of the PC's rows; when
    // the query region only intersects part of the predicate those rows
    // may legitimately live outside the region, so the bound cannot be
    // imposed on the in-region allocation.
    row.lo = QueryCoversConstraint(where, pcs_.at(j)) ? k.lo : 0.0;
    if (row.terms.empty()) {
      // No cell of this PC survived. If rows are mandatory the whole
      // set is unsatisfiable; encode with an impossible empty row.
      if (row.lo > 0.0) {
        // 0 >= row.lo is infeasible; add a contradictory row on x_0 or,
        // if there are no variables at all, let the caller handle it.
        if (!cells.empty()) {
          LinearConstraint impossible;
          impossible.terms.push_back({0, 0.0});
          impossible.lo = row.lo;
          impossible.hi = kInf;
          model.AddConstraint(std::move(impossible));
        }
      }
      continue;
    }
    model.AddConstraint(std::move(row));
  }
  return model;
}

StatusOr<double> PcBoundSolver::MaximizeAllocation(
    const std::vector<CellBound>& cells, const std::vector<double>& objective,
    const std::optional<Predicate>& where, SolveStats& stats,
    double extra_min_rows, SimplexSolver::WarmStart* warm) const {
  if (cells.empty()) {
    return extra_min_rows > 0.0
               ? StatusOr<double>(Status::Infeasible("no cells"))
               : StatusOr<double>(0.0);
  }
  LpModel model = BuildAllocationModel(cells, objective, where);
  if (extra_min_rows > 0.0) {
    LinearConstraint row;
    for (size_t i = 0; i < cells.size(); ++i) row.terms.push_back({i, 1.0});
    row.lo = extra_min_rows;
    model.AddConstraint(std::move(row));
  }
  BranchAndBoundSolver solver(options_.milp);
  const Solution sol = solver.Solve(model, warm);
  stats.milp_nodes += solver.last_num_nodes();
  stats.lp_pivots += solver.last_lp_pivots();
  ++stats.lp_solves;
  switch (sol.status) {
    case SolveStatus::kOptimal:
      return sol.objective;
    case SolveStatus::kUnbounded:
      return kInf;
    case SolveStatus::kInfeasible:
      return Status::Infeasible(
          "predicate-constraint set admits no valid missing-row instance "
          "for this query");
    case SolveStatus::kIterationLimit:
      return Status::ResourceExhausted("MILP node/iteration limit reached");
  }
  return Status::Internal("unreachable");
}

StatusOr<double> PcBoundSolver::UpperSum(const AggQuery& query,
                                         SolveStats& stats) const {
  PCX_ASSIGN_OR_RETURN(std::vector<CellBound> cells,
                       BuildCells(query, query.attr, stats));
  std::vector<double> obj(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].val_hi == kInf) {
      // A cell with unbounded value that could receive a row makes the
      // SUM unbounded; report +inf conservatively.
      return kInf;
    }
    obj[i] = cells[i].val_hi;
  }
  return MaximizeAllocation(cells, obj, query.where, stats);
}

StatusOr<double> PcBoundSolver::UpperCount(const AggQuery& query,
                                           SolveStats& stats) const {
  PCX_ASSIGN_OR_RETURN(std::vector<CellBound> cells,
                       BuildCells(query, query.attr, stats));
  std::vector<double> obj(cells.size(), 1.0);
  return MaximizeAllocation(cells, obj, query.where, stats);
}

StatusOr<bool> PcBoundSolver::EmptyInstancePossible(
    const AggQuery& query) const {
  // The zero allocation trivially satisfies every upper bound; it
  // violates only a kept frequency lower bound.
  for (size_t j = 0; j < pcs_.size(); ++j) {
    if (pcs_.at(j).frequency().lo > 0.0 &&
        QueryCoversConstraint(query.where, pcs_.at(j))) {
      return false;
    }
  }
  return true;
}

StatusOr<ResultRange> PcBoundSolver::BoundAvg(const AggQuery& query,
                                              SolveStats& stats) const {
  PCX_ASSIGN_OR_RETURN(std::vector<CellBound> cells,
                       BuildCells(query, query.attr, stats));
  ResultRange out;
  PCX_ASSIGN_OR_RETURN(out.empty_instance_possible,
                       EmptyInstancePossible(query));
  if (cells.empty()) {
    out.defined = false;
    return out;
  }

  // feasible(r): some valid allocation with >= 1 row attains AVG >= r,
  // i.e. max over allocations of sum (val_hi - r) * x >= 0 (paper §4.2).
  // Every probe solves the same rows under a shifted objective, so the
  // whole binary search (and the negated lower pass) chains through one
  // warm-start context.
  SimplexSolver::WarmStart warm;
  auto upper_avg = [&](auto value_of) -> StatusOr<double> {
    double r_lo = kInf, r_hi = -kInf;
    for (const CellBound& c : cells) {
      r_lo = std::min(r_lo, c.val_lo);
      r_hi = std::max(r_hi, value_of(c));
    }
    if (r_hi == kInf) return kInf;
    if (r_lo == -kInf) r_lo = std::min(r_hi, -1e18);
    auto feasible = [&](double r) -> StatusOr<bool> {
      std::vector<double> obj(cells.size());
      for (size_t i = 0; i < cells.size(); ++i) {
        obj[i] = value_of(cells[i]) - r;
      }
      auto opt = MaximizeAllocation(cells, obj, query.where, stats,
                                    /*extra_min_rows=*/1.0, &warm);
      if (!opt.ok()) return opt.status();
      return *opt >= -1e-9;
    };
    PCX_ASSIGN_OR_RETURN(const bool any, feasible(r_lo));
    if (!any) return Status::Infeasible("no instance with a matching row");
    double lo = r_lo, hi = r_hi;
    for (int it = 0; it < options_.avg_search_iterations && hi - lo > 1e-9;
         ++it) {
      const double mid = lo + (hi - lo) / 2.0;
      PCX_ASSIGN_OR_RETURN(const bool f, feasible(mid));
      if (f) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  };

  // Upper end on the values; lower end by negation symmetry:
  // min AVG(v) = -max AVG(-v).
  auto hi_res = upper_avg([](const CellBound& c) { return c.val_hi; });
  if (!hi_res.ok()) {
    if (hi_res.status().code() == StatusCode::kInfeasible) {
      out.defined = false;
      return out;
    }
    return hi_res.status();
  }
  out.hi = *hi_res;

  std::vector<CellBound> negated = cells;
  for (CellBound& c : negated) {
    const double lo = c.val_lo, hi = c.val_hi;
    c.val_lo = -hi;
    c.val_hi = -lo;
  }
  std::swap(cells, negated);  // reuse the captured-by-reference lambda
  auto lo_res = upper_avg([](const CellBound& c) { return c.val_hi; });
  std::swap(cells, negated);
  if (!lo_res.ok()) return lo_res.status();
  out.lo = -*lo_res;
  return out;
}

StatusOr<ResultRange> PcBoundSolver::BoundMax(const AggQuery& query,
                                              SolveStats& stats) const {
  PCX_ASSIGN_OR_RETURN(std::vector<CellBound> cells,
                       BuildCells(query, query.attr, stats));
  ResultRange out;
  PCX_ASSIGN_OR_RETURN(out.empty_instance_possible,
                       EmptyInstancePossible(query));
  if (cells.empty()) {
    out.defined = false;
    return out;
  }

  // Can cell i receive at least one row in a valid allocation? The scan
  // re-solves the same rows with a moving unit objective — chained
  // through one warm-start context.
  SimplexSolver::WarmStart warm;
  auto occupiable = [&](size_t i) -> StatusOr<bool> {
    if (!options_.check_cell_occupancy) return true;
    std::vector<double> obj(cells.size(), 0.0);
    obj[i] = 1.0;
    auto opt = MaximizeAllocation(cells, obj, query.where, stats,
                                  /*extra_min_rows=*/0.0, &warm);
    if (!opt.ok()) {
      if (opt.status().code() == StatusCode::kInfeasible) return false;
      return opt.status();
    }
    return *opt >= 1.0 - 1e-9;
  };

  // Upper end: largest value bound among occupiable cells (paper §4.2).
  std::vector<size_t> order(cells.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return cells[a].val_hi > cells[b].val_hi;
  });
  bool found = false;
  for (size_t i : order) {
    PCX_ASSIGN_OR_RETURN(const bool occ, occupiable(i));
    if (occ) {
      out.hi = cells[i].val_hi;
      found = true;
      break;
    }
  }
  if (!found) {
    out.defined = false;
    return out;
  }

  // Lower end: the smallest value the MAX could take over instances with
  // at least one matching row — the least threshold t such that a valid
  // allocation uses only cells whose value interval reaches below t.
  std::vector<double> thresholds;
  for (const CellBound& c : cells) thresholds.push_back(c.val_lo);
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());
  out.lo = out.hi;
  for (double t : thresholds) {
    std::vector<CellBound> allowed;
    for (const CellBound& c : cells) {
      if (c.val_lo <= t) allowed.push_back(c);
    }
    std::vector<double> obj(allowed.size(), 0.0);
    auto feas = MaximizeAllocation(allowed, obj, query.where, stats,
                                   /*extra_min_rows=*/1.0);
    if (feas.ok()) {
      out.lo = t;
      break;
    }
    if (feas.status().code() != StatusCode::kInfeasible) {
      return feas.status();
    }
  }
  return out;
}

StatusOr<double> PcBoundSolver::DisjointUpper(const AggQuery& query,
                                              bool count) const {
  return DisjointUpperOn(pcs_, query, count);
}

StatusOr<double> PcBoundSolver::DisjointUpperOn(
    const PredicateConstraintSet& pcs, const AggQuery& query,
    bool count) const {
  // `pcs` is either pcs_ or its value negation — predicate boxes are
  // identical in both, so the one compiled index prunes for either set.
  // A pruned j is exactly one with pred ∩ WHERE empty under the
  // domains, which the loop body would `continue` past before touching
  // the total or the infeasibility check — same result, fewer
  // IntersectionEmpty probes.
  std::optional<std::vector<uint32_t>> relevant = RelevantFor(query);
  if (relevant.has_value()) {
    PCX_CHECK_EQ(pcs.size(), route_index_->size());
  }
  const size_t limit = relevant.has_value() ? relevant->size() : pcs.size();
  double total = 0.0;
  for (size_t jj = 0; jj < limit; ++jj) {
    const size_t j = relevant.has_value() ? (*relevant)[jj] : jj;
    const PredicateConstraint& pc = pcs.at(j);
    Box region = pc.predicate().box();
    if (query.where.has_value()) {
      region.IntersectWith(query.where->box());
    }
    if (region.IsEmpty(domains_)) continue;
    region.IntersectWith(pc.values());
    const Box& combined = region;
    const double k_hi = pc.frequency().hi;
    const double k_lo =
        QueryCoversConstraint(query.where, pc) ? pc.frequency().lo : 0.0;
    if (combined.IsEmpty(domains_)) {
      if (k_lo > 0.0) {
        return Status::Infeasible("mandatory rows with empty value range");
      }
      continue;
    }
    if (count) {
      total += k_hi;
      continue;
    }
    const double u = combined.dim(query.attr).hi;
    if (u == kInf && k_hi > 0.0) return kInf;
    // Allocate the maximum count at positive per-row values, otherwise
    // only the mandatory rows.
    total += u > 0.0 ? u * k_hi : u * k_lo;
  }
  return total;
}

StatusOr<ResultRange> PcBoundSolver::BoundImpl(const AggQuery& query,
                                               SolveStats& stats) const {
  if (query.agg != AggFunc::kCount) {
    if (!pcs_.empty() && query.attr >= pcs_.num_attrs()) {
      return Status::InvalidArgument("aggregate attribute out of range");
    }
  }
  if (pcs_.empty()) {
    // No constraints on missing rows: nothing is known to be missing.
    ResultRange r;
    r.empty_instance_possible = true;
    r.defined = query.agg == AggFunc::kCount || query.agg == AggFunc::kSum;
    return r;
  }

  switch (query.agg) {
    case AggFunc::kSum: {
      if (predicates_disjoint_) {
        stats.used_disjoint_fast_path = true;
        PCX_ASSIGN_OR_RETURN(const double hi,
                             DisjointUpper(query, /*count=*/false));
        // min SUM(v) = -max SUM(-v) on the value-negated set.
        PCX_ASSIGN_OR_RETURN(
            const double neg_hi,
            DisjointUpperOn(negated_solver_->constraints(), query,
                            /*count=*/false));
        ResultRange r;
        r.hi = hi;
        r.lo = -neg_hi;
        PCX_ASSIGN_OR_RETURN(r.empty_instance_possible,
                             EmptyInstancePossible(query));
        return r;
      }
      PCX_ASSIGN_OR_RETURN(std::vector<CellBound> cells,
                           BuildCells(query, query.attr, stats));
      ResultRange r;
      PCX_ASSIGN_OR_RETURN(r.empty_instance_possible,
                           EmptyInstancePossible(query));
      if (cells.empty()) return r;  // [0, 0]
      std::vector<double> obj_hi(cells.size()), obj_lo(cells.size());
      for (size_t i = 0; i < cells.size(); ++i) {
        if (cells[i].val_hi == kInf) {
          r.hi = kInf;
        }
        if (cells[i].val_lo == -kInf) {
          r.lo = -kInf;
        }
        obj_hi[i] = std::min(cells[i].val_hi, 1e300);
        obj_lo[i] = std::max(cells[i].val_lo, -1e300);
      }
      // The upper and lower solves share rows; chain them warm.
      SimplexSolver::WarmStart warm;
      if (r.hi != kInf) {
        PCX_ASSIGN_OR_RETURN(
            r.hi, MaximizeAllocation(cells, obj_hi, query.where, stats,
                                     /*extra_min_rows=*/0.0, &warm));
      }
      if (r.lo != -kInf) {
        // min sum(val_lo * x) = -max sum(-val_lo * x).
        std::vector<double> neg(obj_lo.size());
        for (size_t i = 0; i < neg.size(); ++i) neg[i] = -obj_lo[i];
        PCX_ASSIGN_OR_RETURN(
            const double m,
            MaximizeAllocation(cells, neg, query.where, stats,
                               /*extra_min_rows=*/0.0, &warm));
        r.lo = -m;
      }
      return r;
    }
    case AggFunc::kCount: {
      if (predicates_disjoint_) {
        stats.used_disjoint_fast_path = true;
        PCX_ASSIGN_OR_RETURN(const double hi,
                             DisjointUpper(query, /*count=*/true));
        double lo = 0.0;
        for (size_t j = 0; j < pcs_.size(); ++j) {
          const PredicateConstraint& pc = pcs_.at(j);
          if (QueryCoversConstraint(query.where, pc)) {
            lo += pc.frequency().lo;
          }
        }
        ResultRange r;
        r.hi = hi;
        r.lo = lo;
        r.empty_instance_possible = lo == 0.0;
        return r;
      }
      PCX_ASSIGN_OR_RETURN(std::vector<CellBound> cells,
                           BuildCells(query, query.attr, stats));
      ResultRange r;
      PCX_ASSIGN_OR_RETURN(r.empty_instance_possible,
                           EmptyInstancePossible(query));
      if (cells.empty()) return r;
      SimplexSolver::WarmStart warm;
      std::vector<double> ones(cells.size(), 1.0);
      PCX_ASSIGN_OR_RETURN(
          r.hi, MaximizeAllocation(cells, ones, query.where, stats,
                                   /*extra_min_rows=*/0.0, &warm));
      std::vector<double> neg(cells.size(), -1.0);
      PCX_ASSIGN_OR_RETURN(
          const double m, MaximizeAllocation(cells, neg, query.where, stats,
                                             /*extra_min_rows=*/0.0, &warm));
      r.lo = -m;
      return r;
    }
    case AggFunc::kAvg:
      return BoundAvg(query, stats);
    case AggFunc::kMax:
      return BoundMax(query, stats);
    case AggFunc::kMin: {
      // MIN over v is -MAX over -v, answered by the precomputed sibling
      // solver over the value-negated set.
      PCX_CHECK(negated_solver_ != nullptr);
      PCX_ASSIGN_OR_RETURN(ResultRange m,
                           negated_solver_->BoundMax(query, stats));
      ResultRange r = m;
      r.lo = -m.hi;
      r.hi = -m.lo;
      return r;
    }
  }
  return Status::Internal("unreachable aggregate");
}

StatusOr<ResultRange> PcBoundSolver::Bound(const AggQuery& query) const {
  SolveStats stats;
  auto result = BoundImpl(query, stats);
  stats_ = stats;
  return result;
}

StatusOr<ResultRange> PcBoundSolver::BoundWithStats(const AggQuery& query,
                                                    SolveStats& stats) const {
  return BoundImpl(query, stats);
}

std::vector<StatusOr<ResultRange>> PcBoundSolver::BoundBatch(
    std::span<const AggQuery> queries, size_t num_threads,
    std::vector<SolveStats>* per_query_stats) const {
  std::vector<std::optional<StatusOr<ResultRange>>> slots(queries.size());
  std::vector<SolveStats> stats(queries.size());

  // Each worker touches only its own slot; the solver itself is read
  // shared but never written (BoundImpl threads stats explicitly), so
  // any schedule produces the same bytes as a sequential loop.
  auto run_one = [&](size_t i) {
    slots[i].emplace(BoundImpl(queries[i], stats[i]));
  };
  if (num_threads == 1 || queries.size() <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) run_one(i);
  } else {
    ThreadPool pool(num_threads);
    pool.ParallelFor(queries.size(), run_one);
  }

  SolveStats total;
  for (const SolveStats& s : stats) total += s;
  stats_ = total;
  if (per_query_stats != nullptr) *per_query_stats = std::move(stats);

  std::vector<StatusOr<ResultRange>> out;
  out.reserve(slots.size());
  for (auto& slot : slots) out.push_back(*std::move(slot));
  return out;
}

StatusOr<double> PcBoundSolver::UpperBound(const AggQuery& query) const {
  PCX_ASSIGN_OR_RETURN(const ResultRange r, Bound(query));
  return r.hi;
}

StatusOr<double> PcBoundSolver::LowerBound(const AggQuery& query) const {
  PCX_ASSIGN_OR_RETURN(const ResultRange r, Bound(query));
  return r.lo;
}

}  // namespace pcx
