#include "pc/cell_decomposition.h"

#include "common/check.h"

namespace pcx {
namespace {

/// Shared state of one decomposition run.
struct DfsContext {
  const PredicateConstraintSet* pcs = nullptr;
  const DecompositionOptions* options = nullptr;
  IntervalSatChecker* checker = nullptr;
  DecompositionResult* result = nullptr;
  size_t n = 0;  ///< number of enumerated (non-universal) predicates
  /// Enumerated PC indices: depth d decides the sign of pcs[order[d]].
  const std::vector<size_t>* order = nullptr;
  /// Indices of PCs with a TRUE predicate. A TRUE predicate covers every
  /// cell and its negation is empty, so these never enter the sign
  /// enumeration; they are appended to every emitted cell instead. This
  /// keeps catch-all closure constraints (e.g. Rand-PC's) free.
  const std::vector<size_t>* universal = nullptr;
};

/// Emits one satisfiable cell, attaching the universal constraints.
void EmitCell(DfsContext& ctx, const Box& positive,
              const std::vector<Box>& negated,
              const std::vector<size_t>& covering, bool verified) {
  std::vector<size_t> full_covering = covering;
  full_covering.insert(full_covering.end(), ctx.universal->begin(),
                       ctx.universal->end());
  if (full_covering.empty()) return;  // closure: no PC covers this region
  std::sort(full_covering.begin(), full_covering.end());
  ctx.result->cells.push_back(
      Cell{std::move(full_covering), positive, negated, verified});
}

/// Depth-first enumeration of sign assignments over the PC predicates.
/// `known_sat` is true when the current prefix expression has already
/// been proven satisfiable (by the parent's check or by the rewrite
/// rule), so no solver call is needed at this node.
void Dfs(DfsContext& ctx, size_t depth, const Box& positive,
         std::vector<Box>& negated, std::vector<size_t>& covering,
         bool known_sat, bool verified) {
  ++ctx.result->nodes_visited;

  const bool checks_enabled = depth < ctx.options->early_stop_depth;
  if (!known_sat && checks_enabled) {
    ++ctx.result->sat_calls;
    if (!ctx.checker->IsSatisfiable({positive, negated})) {
      ++ctx.result->cells_pruned;
      return;
    }
  } else if (!known_sat && !checks_enabled) {
    verified = false;  // admitted without verification (Optimization 4)
  }

  if (depth == ctx.n) {
    EmitCell(ctx, positive, negated, covering, verified);
    return;
  }

  const size_t pc_index = (*ctx.order)[depth];
  const Box& pred_box = ctx.pcs->at(pc_index).predicate().box();

  // Geometric fast path: when the predicate cannot intersect the current
  // positive region, the positive child is trivially UNSAT and the
  // negation ¬ψ is implied, so neither child needs a solver call nor a
  // growing negation list. This is what keeps decompositions over many
  // query-irrelevant PCs cheap under predicate pushdown.
  if (positive.Intersect(pred_box).IsEmpty(ctx.checker->domains())) {
    Dfs(ctx, depth + 1, positive, negated, covering, known_sat, verified);
    return;
  }

  if (ctx.options->use_rewriting && checks_enabled) {
    // Check the positive child here; if it is UNSAT the rewrite rule
    // proves the negative child satisfiable with no extra call.
    const Box pos_child = positive.Intersect(pred_box);
    ++ctx.result->sat_calls;
    const bool pos_sat = ctx.checker->IsSatisfiable({pos_child, negated});
    if (pos_sat) {
      covering.push_back(pc_index);
      Dfs(ctx, depth + 1, pos_child, negated, covering, /*known_sat=*/true,
          verified);
      covering.pop_back();
      negated.push_back(pred_box);
      Dfs(ctx, depth + 1, positive, negated, covering, /*known_sat=*/false,
          verified);
      negated.pop_back();
    } else {
      ++ctx.result->cells_pruned;
      ++ctx.result->rewrites_used;
      negated.push_back(pred_box);
      Dfs(ctx, depth + 1, positive, negated, covering, /*known_sat=*/true,
          verified);
      negated.pop_back();
    }
    return;
  }

  // Plain DFS (or unverified enumeration below the early-stop depth):
  // children test themselves on entry.
  covering.push_back(pc_index);
  const Box pos_child = positive.Intersect(pred_box);
  Dfs(ctx, depth + 1, pos_child, negated, covering, /*known_sat=*/false,
      verified);
  covering.pop_back();
  negated.push_back(pred_box);
  Dfs(ctx, depth + 1, positive, negated, covering, /*known_sat=*/false,
      verified);
  negated.pop_back();
}

}  // namespace

DecompositionResult DecomposeCells(const PredicateConstraintSet& pcs,
                                   const std::optional<Predicate>& pushdown,
                                   const DecompositionOptions& options,
                                   const std::vector<AttrDomain>& domains) {
  DecompositionResult result;
  const size_t n = pcs.size();
  if (n == 0) return result;
  const size_t num_attrs = pcs.num_attrs();

  Box root(num_attrs);
  if (pushdown.has_value()) {
    PCX_CHECK_EQ(pushdown->num_attrs(), num_attrs);
    root = root.Intersect(pushdown->box());  // Optimization 1
  }

  IntervalSatChecker checker(domains);

  if (options.use_dfs) {
    // Split off TRUE predicates: they cover every cell and cannot be
    // negated, so there is nothing to enumerate for them.
    std::vector<size_t> order;
    std::vector<size_t> universal;
    for (size_t i = 0; i < n; ++i) {
      if (pcs.at(i).predicate().box().IsUniverse()) {
        universal.push_back(i);
      } else {
        order.push_back(i);
      }
    }
    DfsContext ctx{&pcs,   &options, &checker,  &result,
                   order.size(), &order,   &universal};
    std::vector<Box> negated;
    std::vector<size_t> covering;
    negated.reserve(order.size());
    covering.reserve(order.size());
    Dfs(ctx, 0, root, negated, covering, /*known_sat=*/false,
        /*verified=*/true);
    result.sat_calls = checker.num_calls();
    return result;
  }

  // Naive path: enumerate every sign assignment and test the complete
  // conjunction independently.
  PCX_CHECK(n < 63) << "too many predicate constraints for the naive path";
  const uint64_t num_assignments = uint64_t{1} << n;
  for (uint64_t mask = 0; mask < num_assignments; ++mask) {
    if (mask == 0) continue;  // all-negated cell: covered by no PC
    ++result.nodes_visited;
    Cell cell;
    cell.positive = root;
    for (size_t i = 0; i < n; ++i) {
      const Box& b = pcs.at(i).predicate().box();
      if (mask & (uint64_t{1} << i)) {
        cell.covering.push_back(i);
        cell.positive = cell.positive.Intersect(b);
      } else {
        cell.negated.push_back(b);
      }
    }
    if (checker.IsSatisfiable({cell.positive, cell.negated})) {
      result.cells.push_back(std::move(cell));
    } else {
      ++result.cells_pruned;
    }
  }
  result.sat_calls = checker.num_calls();
  return result;
}

}  // namespace pcx
