#include "pc/cell_decomposition.h"

#include "common/check.h"

namespace pcx {
namespace {

/// Shared state of one decomposition run.
struct DfsContext {
  const PredicateConstraintSet* pcs = nullptr;
  const DecompositionOptions* options = nullptr;
  IntervalSatChecker* checker = nullptr;
  DecompositionResult* result = nullptr;
  size_t n = 0;  ///< number of enumerated (non-universal) predicates
  /// Enumerated PC indices: depth d decides the sign of pcs[order[d]].
  const std::vector<size_t>* order = nullptr;
  /// Indices of PCs with a TRUE predicate. A TRUE predicate covers every
  /// cell and its negation is empty, so these never enter the sign
  /// enumeration; they are appended to every emitted cell instead. This
  /// keeps catch-all closure constraints (e.g. Rand-PC's) free.
  const CoveringSet* universal = nullptr;
  /// Local tally of checker invocations, cross-checked against the
  /// checker's own num_calls() after the search. The checker count is
  /// the single source of truth reported in DecompositionResult; this
  /// only guards against a call site bypassing the checker.
  size_t manual_sat_calls = 0;
};

/// Emits one satisfiable cell, attaching the universal constraints.
void EmitCell(DfsContext& ctx, const Box& positive,
              const std::vector<Box>& negated, const CoveringSet& covering,
              bool verified) {
  CoveringSet full_covering = covering | *ctx.universal;
  if (full_covering.Empty()) return;  // closure: no PC covers this region
  ctx.result->cells.push_back(
      Cell{std::move(full_covering), positive, negated, verified});
}

/// Depth-first enumeration of sign assignments over the PC predicates.
/// `known_sat` is true when the current prefix expression has already
/// been proven satisfiable (by the parent's check or by the rewrite
/// rule), so no solver call is needed at this node.
void Dfs(DfsContext& ctx, size_t depth, const Box& positive,
         std::vector<Box>& negated, CoveringSet& covering, bool known_sat,
         bool verified) {
  ++ctx.result->nodes_visited;

  const bool checks_enabled = depth < ctx.options->early_stop_depth;
  if (!known_sat && checks_enabled) {
    ++ctx.manual_sat_calls;
    if (!ctx.checker->IsSatisfiable({positive, negated})) {
      ++ctx.result->cells_pruned;
      return;
    }
  } else if (!known_sat && !checks_enabled) {
    verified = false;  // admitted without verification (Optimization 4)
  }

  if (depth == ctx.n) {
    EmitCell(ctx, positive, negated, covering, verified);
    return;
  }

  const size_t pc_index = (*ctx.order)[depth];
  const Box& pred_box = ctx.pcs->at(pc_index).predicate().box();

  // Geometric fast path: when the predicate cannot intersect the current
  // positive region, the positive child is trivially UNSAT and the
  // negation ¬ψ is implied, so neither child needs a solver call nor a
  // growing negation list. This is what keeps decompositions over many
  // query-irrelevant PCs cheap under predicate pushdown.
  if (positive.IntersectionEmpty(pred_box, ctx.checker->domains())) {
    Dfs(ctx, depth + 1, positive, negated, covering, known_sat, verified);
    return;
  }

  if (ctx.options->use_rewriting && checks_enabled) {
    // Check the positive child here; if it is UNSAT the rewrite rule
    // proves the negative child satisfiable with no extra call.
    const Box pos_child = positive.Intersect(pred_box);
    ++ctx.manual_sat_calls;
    const bool pos_sat = ctx.checker->IsSatisfiable({pos_child, negated});
    if (pos_sat) {
      covering.Set(pc_index);
      Dfs(ctx, depth + 1, pos_child, negated, covering, /*known_sat=*/true,
          verified);
      covering.Reset(pc_index);
      negated.push_back(pred_box);
      Dfs(ctx, depth + 1, positive, negated, covering, /*known_sat=*/false,
          verified);
      negated.pop_back();
    } else {
      ++ctx.result->cells_pruned;
      ++ctx.result->rewrites_used;
      negated.push_back(pred_box);
      Dfs(ctx, depth + 1, positive, negated, covering, /*known_sat=*/true,
          verified);
      negated.pop_back();
    }
    return;
  }

  // Plain DFS (or unverified enumeration below the early-stop depth):
  // children test themselves on entry.
  covering.Set(pc_index);
  const Box pos_child = positive.Intersect(pred_box);
  Dfs(ctx, depth + 1, pos_child, negated, covering, /*known_sat=*/false,
      verified);
  covering.Reset(pc_index);
  negated.push_back(pred_box);
  Dfs(ctx, depth + 1, positive, negated, covering, /*known_sat=*/false,
      verified);
  negated.pop_back();
}

/// "No Optimization" enumeration (the Fig. 7 baseline bar): every sign
/// assignment is visited and every complete conjunction gets its own
/// satisfiability decision — no pruning, no rewriting, 2^n - 1 checker
/// calls. Only the *bookkeeping* is shared: the recursion reuses prefix
/// intersections instead of rebuilding each cell's positive box from its
/// n predicates, turning the enumeration side from O(n 2^n) box
/// operations into O(2^n).
void NaiveEnum(const PredicateConstraintSet& pcs, IntervalSatChecker& checker,
               DecompositionResult& result, size_t depth, const Box& positive,
               std::vector<Box>& negated, CoveringSet& covering) {
  if (depth == pcs.size()) {
    if (covering.Empty()) return;  // all-negated cell: covered by no PC
    ++result.nodes_visited;
    if (checker.IsSatisfiable({positive, negated})) {
      result.cells.push_back(Cell{covering, positive, negated, true});
    } else {
      ++result.cells_pruned;
    }
    return;
  }
  const Box& pred_box = pcs.at(depth).predicate().box();
  negated.push_back(pred_box);
  NaiveEnum(pcs, checker, result, depth + 1, positive, negated, covering);
  negated.pop_back();
  covering.Set(depth);
  NaiveEnum(pcs, checker, result, depth + 1, positive.Intersect(pred_box),
            negated, covering);
  covering.Reset(depth);
}

}  // namespace

DecompositionResult DecomposeCells(const PredicateConstraintSet& pcs,
                                   const std::optional<Predicate>& pushdown,
                                   const DecompositionOptions& options,
                                   const std::vector<AttrDomain>& domains,
                                   const std::vector<uint32_t>* relevant) {
  IntervalSatChecker checker(domains);
  return DecomposeCellsWith(checker, pcs, pushdown, options, relevant);
}

DecompositionResult DecomposeCellsWith(IntervalSatChecker& checker,
                                       const PredicateConstraintSet& pcs,
                                       const std::optional<Predicate>& pushdown,
                                       const DecompositionOptions& options,
                                       const std::vector<uint32_t>* relevant) {
  DecompositionResult result;
  const size_t n = pcs.size();
  if (n == 0) return result;
  const size_t num_attrs = pcs.num_attrs();

  // A persistent checker arrives with history; report this call's
  // decisions as deltas from it.
  const size_t base_calls = checker.num_calls();
  const size_t base_hits = checker.num_cache_hits();

  Box root(num_attrs);
  if (pushdown.has_value()) {
    PCX_CHECK_EQ(pushdown->num_attrs(), num_attrs);
    root = root.Intersect(pushdown->box());  // Optimization 1
  }

  if (options.use_dfs) {
    // Split off TRUE predicates: they cover every cell and cannot be
    // negated, so there is nothing to enumerate for them. With a
    // `relevant` prefilter only those indices are considered at all; a
    // TRUE predicate intersects every non-empty region, so it is always
    // in a correctly-computed relevant list (and with an empty root the
    // depth-0 satisfiability check prunes everything identically either
    // way).
    std::vector<size_t> order;
    CoveringSet universal;
    const auto consider = [&](size_t i) {
      if (pcs.at(i).predicate().box().IsUniverse()) {
        universal.Set(i);
      } else {
        order.push_back(i);
      }
    };
    if (relevant != nullptr) {
      for (uint32_t i : *relevant) consider(i);
    } else {
      for (size_t i = 0; i < n; ++i) consider(i);
    }
    DfsContext ctx{&pcs,         &options, &checker,  &result,
                   order.size(), &order,   &universal};
    std::vector<Box> negated;
    CoveringSet covering;
    negated.reserve(order.size());
    Dfs(ctx, 0, root, negated, covering, /*known_sat=*/false,
        /*verified=*/true);
    // One source of truth for the Fig. 7 counter (the checker), with the
    // DFS's own tally asserted against it instead of overwriting it.
    PCX_CHECK_EQ(ctx.manual_sat_calls, checker.num_calls() - base_calls);
  } else {
    // Naive path: enumerate every sign assignment and test the complete
    // conjunction independently.
    PCX_CHECK(n < 63) << "too many predicate constraints for the naive path";
    std::vector<Box> negated;
    CoveringSet covering;
    negated.reserve(n);
    NaiveEnum(pcs, checker, result, 0, root, negated, covering);
    PCX_CHECK_EQ(result.nodes_visited, (uint64_t{1} << n) - 1);
  }

  // The checker counts every decision requested (cache hits included,
  // so memoization keeps the Fig. 7 metric comparable across runs).
  result.sat_calls = checker.num_calls() - base_calls;
  result.sat_cache_hits = checker.num_cache_hits() - base_hits;
  return result;
}

}  // namespace pcx
