#include "pc/pc_set.h"

#include <sstream>

#include "common/check.h"

namespace pcx {

PredicateConstraintSet::PredicateConstraintSet(
    std::vector<PredicateConstraint> pcs)
    : pcs_(std::move(pcs)) {
  for (size_t i = 1; i < pcs_.size(); ++i) {
    PCX_CHECK_EQ(pcs_[i].num_attrs(), pcs_[0].num_attrs())
        << "all PCs in a set must share a schema";
  }
}

void PredicateConstraintSet::Add(PredicateConstraint pc) {
  if (!pcs_.empty()) {
    PCX_CHECK_EQ(pc.num_attrs(), pcs_[0].num_attrs());
  }
  pcs_.push_back(std::move(pc));
}

size_t PredicateConstraintSet::num_attrs() const {
  return pcs_.empty() ? 0 : pcs_[0].num_attrs();
}

bool PredicateConstraintSet::SatisfiedBy(const Table& table) const {
  for (const auto& pc : pcs_) {
    if (!pc.SatisfiedBy(table)) return false;
  }
  return true;
}

bool PredicateConstraintSet::IsClosedOver(
    const Box& domain, const std::vector<AttrDomain>& domains) const {
  IntervalSatChecker checker(domains);
  CellExpr uncovered;
  uncovered.positive = domain;
  for (const auto& pc : pcs_) {
    uncovered.negated.push_back(pc.predicate().box());
  }
  return !checker.IsSatisfiable(uncovered);
}

bool PredicateConstraintSet::PredicatesDisjoint(
    const std::vector<AttrDomain>& domains) const {
  for (size_t i = 0; i < pcs_.size(); ++i) {
    for (size_t j = i + 1; j < pcs_.size(); ++j) {
      if (!pcs_[i].predicate().box().IntersectionEmpty(
              pcs_[j].predicate().box(), domains)) {
        return false;
      }
    }
  }
  return true;
}

PredicateConstraintSet PredicateConstraintSet::NegatedValues() const {
  std::vector<PredicateConstraint> out;
  out.reserve(pcs_.size());
  for (const auto& pc : pcs_) out.push_back(pc.NegatedValues());
  return PredicateConstraintSet(std::move(out));
}

std::string PredicateConstraintSet::ToString() const {
  std::ostringstream os;
  os << "{\n";
  for (const auto& pc : pcs_) os << "  " << pc.ToString() << "\n";
  os << "}";
  return os.str();
}

}  // namespace pcx
