#ifndef PCX_PC_PREDICATE_CONSTRAINT_H_
#define PCX_PC_PREDICATE_CONSTRAINT_H_

#include <string>

#include "common/statusor.h"
#include "predicate/box.h"
#include "predicate/predicate.h"
#include "relation/table.h"

namespace pcx {

/// Frequency constraint κ = (k_lo, k_hi): at least k_lo and at most k_hi
/// missing rows satisfy the predicate (paper §3.1).
struct FrequencyConstraint {
  double lo = 0.0;
  double hi = 0.0;

  static FrequencyConstraint AtMost(double hi) { return {0.0, hi}; }
  static FrequencyConstraint Exactly(double k) { return {k, k}; }
  static FrequencyConstraint Between(double lo, double hi) {
    return {lo, hi};
  }
};

/// A predicate-constraint π = (ψ, ν, κ) (paper Definition 3.1):
///   "for all missing rows satisfying ψ, the attribute values are
///    bounded by ν, and the number of such rows is within κ."
/// ψ is a conjunctive Predicate, ν a Box of per-attribute value ranges,
/// κ a FrequencyConstraint.
class PredicateConstraint {
 public:
  PredicateConstraint() = default;
  PredicateConstraint(Predicate predicate, Box values,
                      FrequencyConstraint frequency);

  const Predicate& predicate() const { return predicate_; }
  const Box& values() const { return values_; }
  const FrequencyConstraint& frequency() const { return frequency_; }

  size_t num_attrs() const { return predicate_.num_attrs(); }

  /// Checks R |= π on a concrete relation: every row matching ψ has all
  /// attribute values inside ν, and the number of matching rows lies in
  /// [κ.lo, κ.hi]. This is the paper's "efficiently testable on
  /// historical data" property.
  bool SatisfiedBy(const Table& table) const;

  /// Value upper/lower bound of attribute `attr` imposed by ν.
  double ValueUpper(size_t attr) const { return values_.dim(attr).hi; }
  double ValueLower(size_t attr) const { return values_.dim(attr).lo; }

  /// A constraint with all value ranges negated: [l, h] -> [-h, -l].
  /// Lower-bound problems are solved by maximizing the negated
  /// constraint set (paper §4).
  PredicateConstraint NegatedValues() const;

  std::string ToString() const;

 private:
  Predicate predicate_;
  Box values_;
  FrequencyConstraint frequency_;
};

/// Convenience builder: PC over `schema` with predicate ψ, a value range
/// on one aggregate attribute, and a frequency range. All other
/// attributes' values are unconstrained.
StatusOr<PredicateConstraint> MakeSingleAttributeConstraint(
    const Schema& schema, Predicate predicate, const std::string& value_attr,
    double value_lo, double value_hi, double freq_lo, double freq_hi);

}  // namespace pcx

#endif  // PCX_PC_PREDICATE_CONSTRAINT_H_
