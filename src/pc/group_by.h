#ifndef PCX_PC_GROUP_BY_H_
#define PCX_PC_GROUP_BY_H_

#include <vector>

#include "common/statusor.h"
#include "pc/bound_solver.h"

namespace pcx {

/// One group's result range.
struct GroupRange {
  double group_value = 0.0;
  ResultRange range;
};

/// Expands a GROUP BY into its per-group queries: one copy of `query`
/// per group value, with `group_attr == value` conjoined onto the WHERE
/// clause. Both BoundGroupBy and ShardedBoundSolver::BoundGroupBy build
/// their batches here, so the sharded path bounds byte-for-byte the same
/// queries as the in-process one. `num_attrs` sizes the predicate when
/// `query` has no WHERE clause.
std::vector<AggQuery> MakeGroupByQueries(const AggQuery& query,
                                         size_t group_attr,
                                         const std::vector<double>& group_values,
                                         size_t num_attrs);

/// Bounds a GROUP BY query: per paper §2, "the GROUP-BY clause can be
/// considered as a union of such queries without GROUP-BY", so each
/// group value becomes an extra equality predicate conjoined onto the
/// query's WHERE clause. `group_values` enumerates the groups of
/// interest (e.g. the dictionary codes of a categorical column).
///
/// The per-group queries are independent, so they are fanned across
/// `num_threads` workers via PcBoundSolver::BoundBatch (0 = hardware
/// concurrency, 1 = sequential); results are deterministic and in
/// `group_values` order either way.
StatusOr<std::vector<GroupRange>> BoundGroupBy(
    const PcBoundSolver& solver, const AggQuery& query, size_t group_attr,
    const std::vector<double>& group_values, size_t num_threads = 0);

/// Convenience: groups over every interned label of a categorical
/// column of `schema`.
StatusOr<std::vector<GroupRange>> BoundGroupByCategorical(
    const PcBoundSolver& solver, const AggQuery& query, const Schema& schema,
    const std::string& group_column, size_t num_threads = 0);

}  // namespace pcx

#endif  // PCX_PC_GROUP_BY_H_
