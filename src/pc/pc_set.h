#ifndef PCX_PC_PC_SET_H_
#define PCX_PC_PC_SET_H_

#include <string>
#include <vector>

#include "pc/predicate_constraint.h"
#include "predicate/sat.h"

namespace pcx {

/// A predicate-constraint set S = {π_1, ..., π_n} (paper §3.2): the
/// user's complete description of the missing rows.
class PredicateConstraintSet {
 public:
  PredicateConstraintSet() = default;
  explicit PredicateConstraintSet(std::vector<PredicateConstraint> pcs);

  void Add(PredicateConstraint pc);

  size_t size() const { return pcs_.size(); }
  bool empty() const { return pcs_.empty(); }
  const PredicateConstraint& at(size_t i) const { return pcs_[i]; }
  const std::vector<PredicateConstraint>& constraints() const { return pcs_; }

  size_t num_attrs() const;

  /// R |= S: the table satisfies every constraint.
  bool SatisfiedBy(const Table& table) const;

  /// Closure over a domain (paper Definition 3.2): every point of
  /// `domain` satisfies at least one predicate; i.e. the domain box
  /// minus the union of predicate boxes is empty. Exact via the SAT
  /// checker.
  bool IsClosedOver(const Box& domain,
                    const std::vector<AttrDomain>& domains = {}) const;

  /// True if all predicates are pairwise disjoint — the fast-path case
  /// of paper §4.2 (partitioned PCs, Fig. 8).
  bool PredicatesDisjoint(const std::vector<AttrDomain>& domains = {}) const;

  /// Set with every constraint's value ranges negated; used to turn
  /// minimization into maximization.
  PredicateConstraintSet NegatedValues() const;

  std::string ToString() const;

 private:
  std::vector<PredicateConstraint> pcs_;
};

}  // namespace pcx

#endif  // PCX_PC_PC_SET_H_
