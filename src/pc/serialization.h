#ifndef PCX_PC_SERIALIZATION_H_
#define PCX_PC_SERIALIZATION_H_

#include <string>

#include "common/statusor.h"
#include "pc/pc_set.h"

namespace pcx {

/// Text serialization of predicate-constraint sets. The paper's central
/// methodological point is that constraints are *artifacts*: "they can
/// be checked, versioned, and tested just like any other analysis code"
/// (§1). This module gives them a stable, diff-friendly format:
///
///   pcset v1 attrs=2
///   # free-form comments
///   pc pred={0:[0,24)} values={1:[0.99,129.99]} freq=[50,100]
///   pc pred={} values={1:[0,149.99]} freq=[0,1200]
///
/// `pred={}` is the TRUE predicate. Interval brackets encode strictness
/// ('[' / ']' closed, '(' / ')' open); "inf"/"-inf" are accepted.
std::string SerializePcSet(const PredicateConstraintSet& pcs);

/// Parses the format produced by SerializePcSet. Returns
/// InvalidArgument with a line number on malformed input.
StatusOr<PredicateConstraintSet> ParsePcSet(const std::string& text);

/// Serializes one constraint's body — "pred={...} values={...}
/// freq=[lo,hi]" without the leading "pc " — the unit a pcset record,
/// a delta-log APPEND record, and the wire APPEND verb all share. The
/// box literals are whitespace-free, so the body tokenizes cleanly in
/// the line protocol.
std::string SerializePcBody(const PredicateConstraint& pc);

/// Parses a SerializePcBody body (a leading "pc " is tolerated) against
/// a fixed attribute count.
StatusOr<PredicateConstraint> ParsePcBody(const std::string& body,
                                          size_t num_attrs);

/// Serializes one interval ("[0, 24)").
std::string SerializeInterval(const Interval& iv);

/// Parses one interval.
StatusOr<Interval> ParseInterval(const std::string& text);

/// Serializes a box as "{attr:interval,...}" keeping only bounded
/// dimensions ("{}" is the universe). The format is whitespace-free, so
/// a box travels as one token of the pcx_serve line protocol.
std::string SerializeBox(const Box& box);

/// Parses the SerializeBox format against a fixed attribute count.
StatusOr<Box> ParseBox(const std::string& text, size_t num_attrs);

/// Round-trippable double formatting ("inf"/"-inf" for the infinities).
std::string FormatNumber(double v);

/// Parses FormatNumber output (also accepts "+inf").
StatusOr<double> ParseNumber(const std::string& s);

}  // namespace pcx

#endif  // PCX_PC_SERIALIZATION_H_
