#ifndef PCX_PC_INSTANCE_BUILDER_H_
#define PCX_PC_INSTANCE_BUILDER_H_

#include <vector>

#include "common/statusor.h"
#include "pc/pc_set.h"
#include "pc/query.h"
#include "relation/table.h"

namespace pcx {

/// Materializes a concrete missing-rows instance that *attains* the
/// SUM/COUNT bound — the constructive side of the paper's tightness
/// claim ("the bound found by the optimization problem is a valid
/// relation that satisfies the constraints", §4). Useful for debugging
/// constraint sets ("show me the worst case") and for testing.
///
/// The returned table satisfies every constraint of `pcs` whenever the
/// query has no WHERE clause (with a WHERE clause the instance contains
/// only in-region rows, so frequency lower bounds of partially covered
/// constraints may be unmet by design — the bound drops them too).
///
/// `maximize` selects which end of the range to realize.
StatusOr<Table> BuildExtremalInstance(const PredicateConstraintSet& pcs,
                                      const std::vector<AttrDomain>& domains,
                                      const AggQuery& query, bool maximize,
                                      Schema schema);

}  // namespace pcx

#endif  // PCX_PC_INSTANCE_BUILDER_H_
