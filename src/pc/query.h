#ifndef PCX_PC_QUERY_H_
#define PCX_PC_QUERY_H_

#include <limits>
#include <optional>
#include <string>

#include "predicate/predicate.h"
#include "relation/aggregate.h"

namespace pcx {

/// An aggregate query `SELECT agg(attr) FROM R WHERE where` (paper §2).
/// GROUP BY is a union of such queries; joins are handled separately in
/// src/join.
struct AggQuery {
  AggFunc agg = AggFunc::kCount;
  size_t attr = 0;  ///< aggregated column; ignored for COUNT(*)
  std::optional<Predicate> where;

  static AggQuery Count(std::optional<Predicate> where = std::nullopt) {
    return AggQuery{AggFunc::kCount, 0, std::move(where)};
  }
  static AggQuery Sum(size_t attr,
                      std::optional<Predicate> where = std::nullopt) {
    return AggQuery{AggFunc::kSum, attr, std::move(where)};
  }
  static AggQuery Avg(size_t attr,
                      std::optional<Predicate> where = std::nullopt) {
    return AggQuery{AggFunc::kAvg, attr, std::move(where)};
  }
  static AggQuery Min(size_t attr,
                      std::optional<Predicate> where = std::nullopt) {
    return AggQuery{AggFunc::kMin, attr, std::move(where)};
  }
  static AggQuery Max(size_t attr,
                      std::optional<Predicate> where = std::nullopt) {
    return AggQuery{AggFunc::kMax, attr, std::move(where)};
  }
};

/// A deterministic result range [lo, hi] (paper's term; §1): the
/// aggregate over the missing rows of any relation satisfying the
/// predicate-constraint set lies inside it.
struct ResultRange {
  double lo = 0.0;
  double hi = 0.0;
  /// True when a valid missing-rows instance with zero matching rows
  /// exists, which makes AVG/MIN/MAX undefined on that instance. For
  /// COUNT/SUM the numeric range already covers it.
  bool empty_instance_possible = false;
  /// False when no valid instance has any matching row at all; lo/hi are
  /// then meaningless for AVG/MIN/MAX (COUNT/SUM ranges are [0, 0]).
  bool defined = true;

  bool Contains(double v) const { return v >= lo && v <= hi; }
  double width() const { return hi - lo; }
};

}  // namespace pcx

#endif  // PCX_PC_QUERY_H_
