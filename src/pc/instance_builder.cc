#include "pc/instance_builder.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "pc/cell_decomposition.h"
#include "predicate/sat.h"
#include "solver/milp.h"

namespace pcx {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct BuiltCell {
  Box combined;  ///< positive region ∩ covering value boxes
  std::vector<Box> negated;
  CoveringSet covering;
  double val_lo = 0.0, val_hi = 0.0;
};

}  // namespace

StatusOr<Table> BuildExtremalInstance(const PredicateConstraintSet& pcs,
                                      const std::vector<AttrDomain>& domains,
                                      const AggQuery& query, bool maximize,
                                      Schema schema) {
  if (query.agg != AggFunc::kSum && query.agg != AggFunc::kCount) {
    return Status::Unimplemented(
        "extremal instances are built for SUM and COUNT queries");
  }
  if (schema.num_columns() != pcs.num_attrs()) {
    return Status::InvalidArgument("schema does not match the constraints");
  }
  const DecompositionResult decomp =
      DecomposeCells(pcs, query.where, {}, domains);

  std::vector<BuiltCell> cells;
  for (const Cell& cell : decomp.cells) {
    BuiltCell bc;
    bc.combined = cell.positive;
    for (size_t j : cell.covering) {
      bc.combined = bc.combined.Intersect(pcs.at(j).values());
    }
    if (bc.combined.IsEmpty(domains)) continue;
    bc.negated = cell.negated;
    bc.covering = cell.covering;  // bitset copy: a few words
    bc.val_lo = bc.combined.dim(query.attr).lo;
    bc.val_hi = bc.combined.dim(query.attr).hi;
    cells.push_back(std::move(bc));
  }

  // Allocation MILP mirroring PcBoundSolver::BuildAllocationModel.
  LpModel model;
  model.set_sense(OptSense::kMaximize);
  for (const BuiltCell& c : cells) {
    double coef;
    if (query.agg == AggFunc::kCount) {
      coef = maximize ? 1.0 : -1.0;
    } else {
      const double v = maximize ? c.val_hi : c.val_lo;
      if (std::fabs(v) == kInf) {
        return Status::FailedPrecondition(
            "unbounded value range: no finite extremal instance exists");
      }
      coef = maximize ? v : -v;
    }
    model.AddVariable(coef, 0.0, kInf, /*integer=*/true);
  }
  for (size_t j = 0; j < pcs.size(); ++j) {
    LinearConstraint row;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].covering.Test(j)) {
        row.terms.push_back({i, 1.0});
      }
    }
    if (row.terms.empty()) continue;
    row.hi = pcs.at(j).frequency().hi;
    const bool covered =
        !query.where.has_value() ||
        query.where->box().Covers(pcs.at(j).predicate().box());
    row.lo = covered ? pcs.at(j).frequency().lo : 0.0;
    model.AddConstraint(std::move(row));
  }

  const Solution sol = BranchAndBoundSolver().Solve(model);
  if (sol.status != SolveStatus::kOptimal) {
    return Status::Infeasible(std::string("allocation MILP: ") +
                              SolveStatusToString(sol.status));
  }

  // Materialize rows: for each cell, find a witness point with the
  // aggregate attribute pinned to the extremal end when attainable.
  IntervalSatChecker checker(domains);
  Table out(std::move(schema));
  for (size_t i = 0; i < cells.size(); ++i) {
    const auto count = static_cast<size_t>(std::llround(sol.x[i]));
    if (count == 0) continue;
    Box pinned = cells[i].combined;
    const Interval& agg_iv = pinned.dim(query.attr);
    if (query.agg == AggFunc::kSum) {
      const double target = maximize ? agg_iv.hi : agg_iv.lo;
      const bool attainable =
          std::fabs(target) != kInf &&
          (maximize ? !agg_iv.hi_strict : !agg_iv.lo_strict);
      if (attainable) pinned.Constrain(query.attr, Interval::Point(target));
    }
    auto witness = checker.FindWitness({pinned, cells[i].negated});
    if (!witness.has_value()) {
      // Pinning may have collided with a negated box; retry unpinned.
      witness = checker.FindWitness({cells[i].combined, cells[i].negated});
    }
    if (!witness.has_value()) {
      return Status::Internal("satisfiable cell lost its witness");
    }
    for (size_t k = 0; k < count; ++k) out.AppendRow(*witness);
  }
  return out;
}

}  // namespace pcx
