#ifndef PCX_PC_BOUND_SOLVER_H_
#define PCX_PC_BOUND_SOLVER_H_

#include <optional>
#include <vector>

#include "common/statusor.h"
#include "pc/cell_decomposition.h"
#include "pc/pc_set.h"
#include "pc/query.h"
#include "solver/milp.h"

namespace pcx {

/// Computes deterministic result ranges for aggregate queries over
/// missing rows described by a PredicateConstraintSet (paper §4).
///
/// Pipeline per query: (1) cell decomposition restricted to the query
/// predicate (Optimization 1), (2) per-cell value bounds from the
/// covering constraints, (3) a MILP allocating rows to cells under the
/// frequency constraints, solved by the built-in branch-and-bound.
/// SUM/COUNT are a single MILP; AVG binary-searches feasibility; MIN and
/// MAX scan cell bounds with an occupancy check. Lower bounds reduce to
/// upper bounds on the value-negated constraint set. When the predicates
/// are pairwise disjoint, a greedy O(n) fast path replaces the
/// decomposition and the MILP entirely (paper §4.2, Fig. 8).
class PcBoundSolver {
 public:
  struct Options {
    DecompositionOptions decomposition;
    BranchAndBoundSolver::Options milp;
    /// Detect pairwise-disjoint predicates and use the greedy closed
    /// form for SUM/COUNT (skips decomposition + MILP).
    bool auto_disjoint_fast_path = true;
    /// Verify that a cell can actually receive >= 1 row before using
    /// its bound for MIN/MAX (one feasibility solve per scanned cell).
    bool check_cell_occupancy = true;
    /// Iterations of the AVG binary search.
    int avg_search_iterations = 60;
  };

  /// Per-query diagnostics of the last Bound call.
  struct SolveStats {
    size_t num_cells = 0;
    size_t sat_calls = 0;
    size_t milp_nodes = 0;
    size_t lp_solves = 0;
    bool used_disjoint_fast_path = false;
  };

  /// `domains` declares integer-valued attributes (see
  /// DomainsFromSchema).
  explicit PcBoundSolver(PredicateConstraintSet pcs,
                         std::vector<AttrDomain> domains = {});
  PcBoundSolver(PredicateConstraintSet pcs, std::vector<AttrDomain> domains,
                Options options);

  /// Computes the result range of `query` over the missing rows.
  StatusOr<ResultRange> Bound(const AggQuery& query) const;

  /// Upper (max) end only; equals Bound(query)->hi.
  StatusOr<double> UpperBound(const AggQuery& query) const;
  /// Lower (min) end only; equals Bound(query)->lo.
  StatusOr<double> LowerBound(const AggQuery& query) const;

  const PredicateConstraintSet& constraints() const { return pcs_; }
  const SolveStats& last_stats() const { return stats_; }
  const Options& options() const { return options_; }

 private:
  /// A decomposition cell reduced to what the MILP needs: the feasible
  /// value interval of the aggregate attribute and the covering PCs.
  struct CellBound {
    double val_lo = 0.0;
    double val_hi = 0.0;
    std::vector<size_t> covering;
  };

  /// Decomposes against the query predicate and computes per-cell value
  /// intervals on `attr`. Cells that cannot host any row are dropped.
  StatusOr<std::vector<CellBound>> BuildCells(const AggQuery& query,
                                              size_t attr) const;

  /// Builds the allocation MILP (paper Eq. 2) over `cells`:
  /// one integer variable per cell, ranged frequency row per PC.
  /// Frequency lower bounds are kept only when the PC's predicate is
  /// entirely inside the query region (otherwise the PC's mandatory rows
  /// may fall outside the query, and forcing them in would be unsound).
  LpModel BuildAllocationModel(const std::vector<CellBound>& cells,
                               const std::vector<double>& objective,
                               const std::optional<Predicate>& where) const;

  /// Max of Σ objective_i · x_i; infinity-aware.
  StatusOr<double> MaximizeAllocation(const std::vector<CellBound>& cells,
                                      const std::vector<double>& objective,
                                      const std::optional<Predicate>& where,
                                      double extra_min_rows = 0.0) const;

  StatusOr<double> UpperSum(const AggQuery& query) const;
  StatusOr<double> UpperCount(const AggQuery& query) const;
  StatusOr<ResultRange> BoundAvg(const AggQuery& query) const;
  StatusOr<ResultRange> BoundMax(const AggQuery& query) const;

  /// Greedy closed form when all predicates are pairwise disjoint.
  StatusOr<double> DisjointUpper(const AggQuery& query, bool count) const;

  /// DisjointUpper evaluated over an arbitrary constraint set (used for
  /// the value-negated lower-bound pass without re-running the O(n^2)
  /// disjointness detection).
  StatusOr<double> DisjointUpperOn(const PredicateConstraintSet& pcs,
                                   const AggQuery& query, bool count) const;

  /// True if the PC set admits an instance with zero rows matching the
  /// query region.
  StatusOr<bool> EmptyInstancePossible(const AggQuery& query) const;

  PredicateConstraintSet pcs_;
  std::vector<AttrDomain> domains_;
  Options options_;
  bool predicates_disjoint_ = false;
  mutable SolveStats stats_;
};

}  // namespace pcx

#endif  // PCX_PC_BOUND_SOLVER_H_
