#ifndef PCX_PC_BOUND_SOLVER_H_
#define PCX_PC_BOUND_SOLVER_H_

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/covering_set.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/statusor.h"
#include "pc/cell_decomposition.h"
#include "pc/pc_set.h"
#include "pc/query.h"
#include "route/route_index.h"
#include "solver/milp.h"

namespace pcx {

/// Computes deterministic result ranges for aggregate queries over
/// missing rows described by a PredicateConstraintSet (paper §4).
///
/// Pipeline per query: (1) cell decomposition restricted to the query
/// predicate (Optimization 1), (2) per-cell value bounds from the
/// covering constraints, (3) a MILP allocating rows to cells under the
/// frequency constraints, solved by the built-in branch-and-bound.
/// SUM/COUNT are a single MILP; AVG binary-searches feasibility; MIN and
/// MAX scan cell bounds with an occupancy check. Lower bounds reduce to
/// upper bounds on the value-negated constraint set. When the predicates
/// are pairwise disjoint, a greedy O(n) fast path replaces the
/// decomposition and the MILP entirely (paper §4.2, Fig. 8).
class PcBoundSolver {
 public:
  struct Options {
    DecompositionOptions decomposition;
    BranchAndBoundSolver::Options milp;
    /// Detect pairwise-disjoint predicates and use the greedy closed
    /// form for SUM/COUNT (skips decomposition + MILP).
    bool auto_disjoint_fast_path = true;
    /// Verify that a cell can actually receive >= 1 row before using
    /// its bound for MIN/MAX (one feasibility solve per scanned cell).
    bool check_cell_occupancy = true;
    /// Iterations of the AVG binary search.
    int avg_search_iterations = 60;
    /// Caller-supplied guarantee that the predicates are pairwise
    /// disjoint, skipping the O(n^2) detection that would otherwise run
    /// at construction (with auto_disjoint_fast_path on). Used by
    /// ShardedBoundSolver, which detects disjointness once on the full
    /// set and constructs many subset solvers: a subset of a disjoint
    /// set is disjoint. Asserting this for an overlapping set produces
    /// unsound bounds — leave it off unless the invariant is structural.
    bool assume_predicates_disjoint = false;
    /// Keep one SAT memo cache alive for the solver's whole lifetime
    /// instead of one per decomposition, so repeated queries against the
    /// same (e.g. snapshot-loaded) constraint set amortize their cell
    /// verification across decompositions. Verdicts are memoized by
    /// canonical cell expression, so results are unchanged — only
    /// sat_cache_hits grows. The shared checker is mutex-protected,
    /// which serializes the decomposition step (not the MILP) across
    /// BoundBatch workers; leave this off for one-shot batch workloads.
    bool persistent_sat_cache = false;
    /// Compile a route::RouteIndex over the predicate boxes at
    /// construction and use it to prune query-irrelevant PCs before
    /// cell decomposition (and inside the disjoint fast path). Pure
    /// traversal shortcut: bounds, cells, and sat_calls are
    /// bit-identical with it on or off — only nodes_visited (not
    /// reported in SolveStats) and wall-clock change.
    bool use_route_index = true;
  };

  /// Per-query diagnostics of the last Bound call (summed over the batch
  /// after BoundBatch).
  struct SolveStats {
    size_t num_cells = 0;
    size_t sat_calls = 0;
    size_t sat_cache_hits = 0;
    size_t milp_nodes = 0;
    size_t lp_solves = 0;
    size_t lp_pivots = 0;
    bool used_disjoint_fast_path = false;

    SolveStats& operator+=(const SolveStats& other) {
      num_cells += other.num_cells;
      sat_calls += other.sat_calls;
      sat_cache_hits += other.sat_cache_hits;
      milp_nodes += other.milp_nodes;
      lp_solves += other.lp_solves;
      lp_pivots += other.lp_pivots;
      used_disjoint_fast_path |= other.used_disjoint_fast_path;
      return *this;
    }
  };

  /// `domains` declares integer-valued attributes (see
  /// DomainsFromSchema).
  explicit PcBoundSolver(PredicateConstraintSet pcs,
                         std::vector<AttrDomain> domains = {});
  PcBoundSolver(PredicateConstraintSet pcs, std::vector<AttrDomain> domains,
                Options options);

  /// Computes the result range of `query` over the missing rows.
  StatusOr<ResultRange> Bound(const AggQuery& query) const;

  /// Like Bound, but writing the per-query diagnostics into `stats`
  /// instead of last_stats(). Unlike Bound (whose last_stats() update is
  /// a benign-looking but real write), this entry point mutates no
  /// solver state, so concurrent callers — e.g. a ShardedBoundSolver
  /// fanning different queries at the same shard — need no external
  /// locking.
  StatusOr<ResultRange> BoundWithStats(const AggQuery& query,
                                       SolveStats& stats) const;

  /// Bounds every query of `queries`, fanning them across `num_threads`
  /// worker threads (0 = hardware concurrency, 1 = inline sequential).
  /// Queries are independent, so results are *bit-identical* to calling
  /// Bound in a loop, in input order, at every thread count; only the
  /// wall-clock differs. When `per_query_stats` is non-null it receives
  /// one SolveStats per query; last_stats() holds the batch total.
  std::vector<StatusOr<ResultRange>> BoundBatch(
      std::span<const AggQuery> queries, size_t num_threads = 0,
      std::vector<SolveStats>* per_query_stats = nullptr) const;

  /// Upper (max) end only; equals Bound(query)->hi.
  StatusOr<double> UpperBound(const AggQuery& query) const;
  /// Lower (min) end only; equals Bound(query)->lo.
  StatusOr<double> LowerBound(const AggQuery& query) const;

  const PredicateConstraintSet& constraints() const { return pcs_; }
  const SolveStats& last_stats() const { return stats_; }
  const Options& options() const { return options_; }

  /// The compiled predicate-box index, or null when disabled / the set
  /// is empty. Shared with the value-negated sibling (value negation
  /// never touches a predicate box) and consulted by ShardedBoundSolver
  /// for per-shard member routing, so one compilation serves dispatch
  /// at every layer.
  const route::RouteIndex* route_index() const { return route_index_.get(); }

 private:
  /// Tag constructor used for the internal value-negated solver: value
  /// negation leaves every predicate box untouched, so the disjointness
  /// verdict — and the compiled route index — are inherited instead of
  /// being recomputed.
  struct InheritDisjointTag {};
  PcBoundSolver(InheritDisjointTag, PredicateConstraintSet pcs,
                const std::vector<AttrDomain>& domains, const Options& options,
                bool predicates_disjoint,
                std::shared_ptr<const route::RouteIndex> route_index);

  /// A decomposition cell reduced to what the MILP needs: the feasible
  /// value interval of the aggregate attribute and the covering PCs.
  struct CellBound {
    double val_lo = 0.0;
    double val_hi = 0.0;
    CoveringSet covering;
  };

  /// All query-scoped methods write their diagnostics into an explicit
  /// stats object so BoundBatch can run them concurrently from many
  /// threads against one (const) solver.

  /// Decomposes against the query predicate and computes per-cell value
  /// intervals on `attr`. Cells that cannot host any row are dropped.
  StatusOr<std::vector<CellBound>> BuildCells(const AggQuery& query,
                                              size_t attr,
                                              SolveStats& stats) const;

  /// Route-index prefilter for `query`: when the index is compiled and
  /// the query has a WHERE, returns the ascending PC indices whose
  /// predicate box intersects the WHERE box (exactly the set the DFS
  /// geometric fast path would keep). Returns std::nullopt when the
  /// full enumeration must run (no index / no WHERE).
  std::optional<std::vector<uint32_t>> RelevantFor(const AggQuery& query) const;

  /// Builds the allocation MILP (paper Eq. 2) over `cells`:
  /// one integer variable per cell, ranged frequency row per PC.
  /// Frequency lower bounds are kept only when the PC's predicate is
  /// entirely inside the query region (otherwise the PC's mandatory rows
  /// may fall outside the query, and forcing them in would be unsound).
  LpModel BuildAllocationModel(const std::vector<CellBound>& cells,
                               const std::vector<double>& objective,
                               const std::optional<Predicate>& where) const;

  /// Max of Σ objective_i · x_i; infinity-aware. `warm` (optional)
  /// chains consecutive solves over the same cell set — the MILP's root
  /// basis is carried from call to call, replacing phase-1 with a few
  /// warm pivots when only the objective changed (occupancy scans, the
  /// AVG binary search, the SUM lower/upper pair).
  StatusOr<double> MaximizeAllocation(const std::vector<CellBound>& cells,
                                      const std::vector<double>& objective,
                                      const std::optional<Predicate>& where,
                                      SolveStats& stats,
                                      double extra_min_rows = 0.0,
                                      SimplexSolver::WarmStart* warm =
                                          nullptr) const;

  StatusOr<ResultRange> BoundImpl(const AggQuery& query,
                                  SolveStats& stats) const;
  StatusOr<double> UpperSum(const AggQuery& query, SolveStats& stats) const;
  StatusOr<double> UpperCount(const AggQuery& query, SolveStats& stats) const;
  StatusOr<ResultRange> BoundAvg(const AggQuery& query,
                                 SolveStats& stats) const;
  StatusOr<ResultRange> BoundMax(const AggQuery& query,
                                 SolveStats& stats) const;

  /// Greedy closed form when all predicates are pairwise disjoint.
  StatusOr<double> DisjointUpper(const AggQuery& query, bool count) const;

  /// DisjointUpper evaluated over an arbitrary constraint set (used for
  /// the value-negated lower-bound pass without re-running the O(n^2)
  /// disjointness detection).
  StatusOr<double> DisjointUpperOn(const PredicateConstraintSet& pcs,
                                   const AggQuery& query, bool count) const;

  /// True if the PC set admits an instance with zero rows matching the
  /// query region.
  StatusOr<bool> EmptyInstancePossible(const AggQuery& query) const;

  PredicateConstraintSet pcs_;
  /// Sibling solver over pcs_.NegatedValues(), built once: the SUM
  /// lower bound reads its constraint set and the whole MIN path runs
  /// on it for every query (MIN(v) = -MAX(-v)). Null only inside that
  /// sibling itself (tag constructor), which never serves MIN queries.
  std::unique_ptr<const PcBoundSolver> negated_solver_;
  std::vector<AttrDomain> domains_;
  Options options_;
  bool predicates_disjoint_ = false;
  /// Compiled over pcs_'s predicate boxes (id i == PC index i); shared
  /// with the negated sibling whose boxes are identical.
  std::shared_ptr<const route::RouteIndex> route_index_;
  mutable SolveStats stats_;
  /// Non-null iff options_.persistent_sat_cache: the cross-decomposition
  /// memo cache, serialized by sat_mu_ (IntervalSatChecker is not
  /// thread-safe). The negated sibling owns its own. The pointer itself
  /// is set once at construction; only the pointed-to checker needs the
  /// lock.
  mutable Mutex sat_mu_;
  mutable std::unique_ptr<IntervalSatChecker> persistent_checker_
      PT_GUARDED_BY(sat_mu_);
};

}  // namespace pcx

#endif  // PCX_PC_BOUND_SOLVER_H_
