#ifndef PCX_RELATION_JOIN_H_
#define PCX_RELATION_JOIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "relation/table.h"

namespace pcx {

/// Hash equi-join of two tables on one column each. Output schema is the
/// concatenation of both schemas (right join column retained, its name
/// suffixed with "_r" on collision). Used for ground truth in the join
/// experiments; correctness matters more than speed here.
StatusOr<Table> HashJoin(const Table& left, size_t left_col,
                         const Table& right, size_t right_col);

/// Counts the natural-join cardinality |R1 ⋈ R2 ⋈ ... ⋈ Rk| of a chain
/// R1(x1,x2), R2(x2,x3), ..., joining column 1 of each table to column 0
/// of the next. Uses dynamic programming over join-key multiplicities so
/// the (possibly huge) output is never materialized.
StatusOr<double> ChainJoinCount(const std::vector<const Table*>& tables);

/// Counts directed triangles |R(a,b) ⋈ S(b,c) ⋈ T(c,a)| where each table
/// has two columns (src, dst).
StatusOr<double> TriangleCount(const Table& r, const Table& s,
                               const Table& t);

}  // namespace pcx

#endif  // PCX_RELATION_JOIN_H_
