#ifndef PCX_RELATION_CSV_H_
#define PCX_RELATION_CSV_H_

#include <iosfwd>
#include <string>

#include "common/statusor.h"
#include "relation/table.h"

namespace pcx {

/// CSV ingestion so the experiments can run against the *real* paper
/// datasets when available (Intel lab data, Airbnb NYC, BTS border
/// crossings) instead of the bundled synthetic stand-ins.
///
/// The first line must be a header naming the columns of `schema` (a
/// subset, in any order); unknown columns are ignored. Numeric columns
/// parse as doubles; categorical columns are interned into the schema's
/// dictionary. Rows with unparsable numerics are rejected.
StatusOr<Table> ReadCsv(std::istream& in, Schema schema);

/// File-path convenience wrapper.
StatusOr<Table> ReadCsvFile(const std::string& path, Schema schema);

/// Writes `table` as CSV with a header row; categorical codes are
/// emitted as their dictionary labels.
Status WriteCsv(const Table& table, std::ostream& out);

}  // namespace pcx

#endif  // PCX_RELATION_CSV_H_
