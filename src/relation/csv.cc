#include "relation/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace pcx {
namespace {

/// Splits one CSV record; supports double-quoted fields with embedded
/// commas and doubled quotes.
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      out.push_back(field);
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  out.push_back(field);
  return out;
}

}  // namespace

StatusOr<Table> ReadCsv(std::istream& in, Schema schema) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV input");
  }
  const std::vector<std::string> header = SplitCsvLine(line);
  // Map each schema column to its CSV position.
  std::vector<int> csv_pos(schema.num_columns(), -1);
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    for (size_t h = 0; h < header.size(); ++h) {
      if (header[h] == schema.column(c).name) {
        csv_pos[c] = static_cast<int>(h);
        break;
      }
    }
    if (csv_pos[c] < 0) {
      return Status::InvalidArgument("CSV is missing column '" +
                                     schema.column(c).name + "'");
    }
  }

  Table table(std::move(schema));
  std::vector<double> row(table.num_columns());
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const size_t pos = static_cast<size_t>(csv_pos[c]);
      if (pos >= fields.size()) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": too few fields");
      }
      const std::string& field = fields[pos];
      if (table.schema().column(c).type == ColumnType::kCategorical) {
        row[c] = table.mutable_schema()->InternLabel(c, field);
      } else {
        char* end = nullptr;
        row[c] = std::strtod(field.c_str(), &end);
        if (end == field.c_str()) {
          return Status::InvalidArgument("line " + std::to_string(line_no) +
                                         ": bad number '" + field + "'");
        }
      }
    }
    table.AppendRow(row);
  }
  return table;
}

StatusOr<Table> ReadCsvFile(const std::string& path, Schema schema) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  return ReadCsv(in, std::move(schema));
}

Status WriteCsv(const Table& table, std::ostream& out) {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << ",";
    out << table.schema().column(c).name;
  }
  out << "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << ",";
      if (table.schema().column(c).type == ColumnType::kCategorical) {
        auto label = table.schema().LabelForCode(c, table.At(r, c));
        if (!label.ok()) return label.status();
        // Quote labels containing commas or quotes.
        if (label->find(',') != std::string::npos ||
            label->find('"') != std::string::npos) {
          std::string escaped = "\"";
          for (char ch : *label) {
            if (ch == '"') escaped += '"';
            escaped += ch;
          }
          escaped += '"';
          out << escaped;
        } else {
          out << *label;
        }
      } else {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", table.At(r, c));
        out << buf;
      }
    }
    out << "\n";
  }
  return Status::OK();
}

}  // namespace pcx
