#include "relation/schema.h"

#include "common/check.h"

namespace pcx {

Schema::Schema(std::vector<ColumnSpec> columns) : columns_(std::move(columns)) {
  dicts_.resize(columns_.size());
  labels_.resize(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    by_name_[columns_[i].name] = i;
  }
  PCX_CHECK_EQ(by_name_.size(), columns_.size())
      << "duplicate column names in schema";
}

StatusOr<size_t> Schema::ColumnIndex(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no column named '" + name + "'");
  }
  return it->second;
}

double Schema::InternLabel(size_t col, const std::string& label) {
  PCX_CHECK(IsValidColumn(col));
  PCX_CHECK(columns_[col].type == ColumnType::kCategorical)
      << "InternLabel on non-categorical column " << columns_[col].name;
  auto [it, inserted] =
      dicts_[col].emplace(label, static_cast<double>(labels_[col].size()));
  if (inserted) labels_[col].push_back(label);
  return it->second;
}

StatusOr<double> Schema::LabelCode(size_t col, const std::string& label) const {
  PCX_CHECK(IsValidColumn(col));
  auto it = dicts_[col].find(label);
  if (it == dicts_[col].end()) {
    return Status::NotFound("label '" + label + "' not in dictionary of " +
                            columns_[col].name);
  }
  return it->second;
}

StatusOr<std::string> Schema::LabelForCode(size_t col, double code) const {
  PCX_CHECK(IsValidColumn(col));
  const auto idx = static_cast<size_t>(code);
  if (idx >= labels_[col].size()) {
    return Status::NotFound("code out of range for column " +
                            columns_[col].name);
  }
  return labels_[col][idx];
}

size_t Schema::DictionarySize(size_t col) const {
  PCX_CHECK(IsValidColumn(col));
  return labels_[col].size();
}

}  // namespace pcx
