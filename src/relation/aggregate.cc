#include "relation/aggregate.h"

#include <algorithm>

#include "common/check.h"

namespace pcx {

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

AggregateResult Aggregate(const Table& table, AggFunc agg, size_t attr,
                          const std::function<bool(size_t)>& filter) {
  if (agg != AggFunc::kCount) {
    PCX_CHECK(table.schema().IsValidColumn(attr));
  }
  AggregateResult out;
  double sum = 0.0;
  double mn = 0.0, mx = 0.0;
  size_t n = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (filter && !filter(r)) continue;
    const double v = agg == AggFunc::kCount ? 0.0 : table.At(r, attr);
    if (n == 0) {
      mn = mx = v;
    } else {
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    sum += v;
    ++n;
  }
  out.num_rows = n;
  switch (agg) {
    case AggFunc::kCount:
      out.value = static_cast<double>(n);
      break;
    case AggFunc::kSum:
      out.value = sum;
      break;
    case AggFunc::kAvg:
      if (n == 0) {
        out.empty_input = true;
      } else {
        out.value = sum / static_cast<double>(n);
      }
      break;
    case AggFunc::kMin:
      if (n == 0) {
        out.empty_input = true;
      } else {
        out.value = mn;
      }
      break;
    case AggFunc::kMax:
      if (n == 0) {
        out.empty_input = true;
      } else {
        out.value = mx;
      }
      break;
  }
  return out;
}

StatusOr<AggregateResult> Aggregate(const Table& table, AggFunc agg,
                                    const std::string& attr,
                                    const std::function<bool(size_t)>& filter) {
  size_t col = 0;
  if (agg != AggFunc::kCount) {
    PCX_ASSIGN_OR_RETURN(col, table.schema().ColumnIndex(attr));
  }
  return Aggregate(table, agg, col, filter);
}

}  // namespace pcx
