#include "relation/join.h"

#include <unordered_map>

#include "common/check.h"

namespace pcx {

StatusOr<Table> HashJoin(const Table& left, size_t left_col,
                         const Table& right, size_t right_col) {
  if (!left.schema().IsValidColumn(left_col) ||
      !right.schema().IsValidColumn(right_col)) {
    return Status::InvalidArgument("join column out of range");
  }
  // Output schema: all left columns then all right columns.
  std::vector<ColumnSpec> specs;
  for (const auto& c : left.schema().columns()) specs.push_back(c);
  for (const auto& c : right.schema().columns()) {
    ColumnSpec s = c;
    auto taken = [&specs](const std::string& name) {
      for (const auto& spec : specs) {
        if (spec.name == name) return true;
      }
      return false;
    };
    while (taken(s.name)) s.name += "_r";
    specs.push_back(s);
  }
  Table out((Schema(std::move(specs))));

  // Build side: right table.
  std::unordered_multimap<double, size_t> build;
  build.reserve(right.num_rows());
  for (size_t r = 0; r < right.num_rows(); ++r) {
    build.emplace(right.At(r, right_col), r);
  }
  std::vector<double> row(out.num_columns());
  for (size_t l = 0; l < left.num_rows(); ++l) {
    const double key = left.At(l, left_col);
    auto [lo, hi] = build.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      size_t k = 0;
      for (size_t c = 0; c < left.num_columns(); ++c) row[k++] = left.At(l, c);
      for (size_t c = 0; c < right.num_columns(); ++c) {
        row[k++] = right.At(it->second, c);
      }
      out.AppendRow(row);
    }
  }
  return out;
}

StatusOr<double> ChainJoinCount(const std::vector<const Table*>& tables) {
  if (tables.empty()) return Status::InvalidArgument("empty chain");
  for (const Table* t : tables) {
    if (t->num_columns() < 2) {
      return Status::InvalidArgument("chain tables need >= 2 columns");
    }
  }
  // weight[v] = number of partial join paths ending with join value v.
  std::unordered_map<double, double> weight;
  for (size_t r = 0; r < tables[0]->num_rows(); ++r) {
    weight[tables[0]->At(r, 1)] += 1.0;
  }
  for (size_t i = 1; i < tables.size(); ++i) {
    std::unordered_map<double, double> next;
    const Table& t = *tables[i];
    for (size_t r = 0; r < t.num_rows(); ++r) {
      auto it = weight.find(t.At(r, 0));
      if (it != weight.end()) next[t.At(r, 1)] += it->second;
    }
    weight = std::move(next);
  }
  double total = 0.0;
  for (const auto& [v, w] : weight) total += w;
  return total;
}

StatusOr<double> TriangleCount(const Table& r, const Table& s,
                               const Table& t) {
  for (const Table* tab : {&r, &s, &t}) {
    if (tab->num_columns() < 2) {
      return Status::InvalidArgument("edge tables need >= 2 columns");
    }
  }
  // Index S by b and T by (c, a).
  std::unordered_multimap<double, double> s_by_b;  // b -> c
  for (size_t i = 0; i < s.num_rows(); ++i) {
    s_by_b.emplace(s.At(i, 0), s.At(i, 1));
  }
  auto key = [](double c, double a) {
    // Combine two doubles into a hashable key; exact as long as values
    // are small integers (which our edge generators guarantee).
    return std::to_string(c) + "|" + std::to_string(a);
  };
  std::unordered_map<std::string, double> t_count;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    t_count[key(t.At(i, 0), t.At(i, 1))] += 1.0;
  }
  double total = 0.0;
  for (size_t i = 0; i < r.num_rows(); ++i) {
    const double a = r.At(i, 0);
    const double b = r.At(i, 1);
    auto [lo, hi] = s_by_b.equal_range(b);
    for (auto it = lo; it != hi; ++it) {
      const double c = it->second;
      auto found = t_count.find(key(c, a));
      if (found != t_count.end()) total += found->second;
    }
  }
  return total;
}

}  // namespace pcx
