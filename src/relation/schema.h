#ifndef PCX_RELATION_SCHEMA_H_
#define PCX_RELATION_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace pcx {

/// Column types supported by the engine. All cell payloads are stored as
/// doubles; categorical columns store a dictionary code whose string is
/// kept in the schema-level dictionary.
enum class ColumnType {
  kDouble,       ///< numeric attribute (aggregatable)
  kCategorical,  ///< dictionary-encoded string attribute
};

/// Describes one column of a relation.
struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kDouble;
};

/// Immutable-after-construction description of a relation's columns plus
/// the dictionaries of its categorical columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnSpec> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnSpec& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnSpec>& columns() const { return columns_; }

  /// Index of the column with the given name.
  StatusOr<size_t> ColumnIndex(const std::string& name) const;

  /// True if `i` is a valid column index.
  bool IsValidColumn(size_t i) const { return i < columns_.size(); }

  /// Interns `label` in the dictionary of categorical column `col` and
  /// returns its code. Codes are dense, starting at 0.
  double InternLabel(size_t col, const std::string& label);

  /// Returns the code for `label` if already interned.
  StatusOr<double> LabelCode(size_t col, const std::string& label) const;

  /// Returns the label for a code in categorical column `col`.
  StatusOr<std::string> LabelForCode(size_t col, double code) const;

  /// Number of distinct labels interned for column `col`.
  size_t DictionarySize(size_t col) const;

 private:
  std::vector<ColumnSpec> columns_;
  std::unordered_map<std::string, size_t> by_name_;
  // One dictionary per column (empty for kDouble columns).
  std::vector<std::unordered_map<std::string, double>> dicts_;
  std::vector<std::vector<std::string>> labels_;
};

}  // namespace pcx

#endif  // PCX_RELATION_SCHEMA_H_
