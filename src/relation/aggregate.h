#ifndef PCX_RELATION_AGGREGATE_H_
#define PCX_RELATION_AGGREGATE_H_

#include <functional>
#include <string>

#include "common/statusor.h"
#include "relation/table.h"

namespace pcx {

/// Aggregate functions supported by the framework (paper §2).
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

/// Stable display name ("COUNT", "SUM", ...).
const char* AggFuncToString(AggFunc f);

/// Result of running an aggregate over a set of rows.
struct AggregateResult {
  double value = 0.0;   ///< aggregate value; 0 for empty COUNT/SUM
  size_t num_rows = 0;  ///< number of rows that matched
  /// True when the aggregate is undefined on the empty set (AVG/MIN/MAX
  /// over zero rows). `value` is 0 in that case.
  bool empty_input = false;
};

/// Computes `agg(attr)` over the rows of `table` for which `filter`
/// returns true. `filter` may be null, meaning all rows. For kCount the
/// attribute is ignored (COUNT(*)).
AggregateResult Aggregate(const Table& table, AggFunc agg, size_t attr,
                          const std::function<bool(size_t)>& filter = nullptr);

/// Convenience overload resolving the attribute by name.
StatusOr<AggregateResult> Aggregate(
    const Table& table, AggFunc agg, const std::string& attr,
    const std::function<bool(size_t)>& filter = nullptr);

}  // namespace pcx

#endif  // PCX_RELATION_AGGREGATE_H_
