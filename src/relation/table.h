#ifndef PCX_RELATION_TABLE_H_
#define PCX_RELATION_TABLE_H_

#include <functional>
#include <span>
#include <vector>

#include "common/statusor.h"
#include "relation/schema.h"

namespace pcx {

/// Column-oriented in-memory table. Rows are append-only; each column is
/// a contiguous vector of doubles (categorical columns hold dictionary
/// codes). This is the substrate used to compute ground-truth aggregates
/// in every experiment.
class Table {
 public:
  /// Empty table over an empty schema.
  Table() : Table(Schema()) {}
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return schema_.num_columns(); }

  /// Appends one row; `values` must have one entry per column.
  void AppendRow(const std::vector<double>& values);

  /// Cell accessor.
  double At(size_t row, size_t col) const;

  /// Whole-column view.
  std::span<const double> Column(size_t col) const;

  /// Materializes one row (one value per column).
  std::vector<double> Row(size_t row) const;

  /// Returns a new table containing the rows for which `keep(row)` holds.
  Table Filter(const std::function<bool(size_t)>& keep) const;

  /// Returns a new table with exactly the rows whose indices are given.
  Table Select(const std::vector<size_t>& rows) const;

  /// Splits into (kept, dropped) by a per-row predicate.
  std::pair<Table, Table> Partition(
      const std::function<bool(size_t)>& keep) const;

  /// Column min/max over all rows; error if the table is empty.
  StatusOr<std::pair<double, double>> ColumnRange(size_t col) const;

 private:
  Schema schema_;
  std::vector<std::vector<double>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace pcx

#endif  // PCX_RELATION_TABLE_H_
