#include "relation/table.h"

#include <algorithm>

#include "common/check.h"

namespace pcx {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_columns());
}

void Table::AppendRow(const std::vector<double>& values) {
  PCX_CHECK_EQ(values.size(), schema_.num_columns());
  for (size_t c = 0; c < values.size(); ++c) columns_[c].push_back(values[c]);
  ++num_rows_;
}

double Table::At(size_t row, size_t col) const {
  PCX_DCHECK(row < num_rows_);
  PCX_DCHECK(col < columns_.size());
  return columns_[col][row];
}

std::span<const double> Table::Column(size_t col) const {
  PCX_CHECK(col < columns_.size());
  return std::span<const double>(columns_[col].data(), num_rows_);
}

std::vector<double> Table::Row(size_t row) const {
  PCX_CHECK(row < num_rows_);
  std::vector<double> out(num_columns());
  for (size_t c = 0; c < out.size(); ++c) out[c] = columns_[c][row];
  return out;
}

Table Table::Filter(const std::function<bool(size_t)>& keep) const {
  Table out(schema_);
  for (size_t r = 0; r < num_rows_; ++r) {
    if (keep(r)) {
      for (size_t c = 0; c < columns_.size(); ++c) {
        out.columns_[c].push_back(columns_[c][r]);
      }
      ++out.num_rows_;
    }
  }
  return out;
}

Table Table::Select(const std::vector<size_t>& rows) const {
  Table out(schema_);
  for (size_t r : rows) {
    PCX_CHECK(r < num_rows_);
    for (size_t c = 0; c < columns_.size(); ++c) {
      out.columns_[c].push_back(columns_[c][r]);
    }
    ++out.num_rows_;
  }
  return out;
}

std::pair<Table, Table> Table::Partition(
    const std::function<bool(size_t)>& keep) const {
  Table kept(schema_);
  Table dropped(schema_);
  for (size_t r = 0; r < num_rows_; ++r) {
    Table& dst = keep(r) ? kept : dropped;
    for (size_t c = 0; c < columns_.size(); ++c) {
      dst.columns_[c].push_back(columns_[c][r]);
    }
    ++dst.num_rows_;
  }
  return {std::move(kept), std::move(dropped)};
}

StatusOr<std::pair<double, double>> Table::ColumnRange(size_t col) const {
  PCX_CHECK(col < columns_.size());
  if (num_rows_ == 0) {
    return Status::FailedPrecondition("ColumnRange on empty table");
  }
  const auto [mn, mx] =
      std::minmax_element(columns_[col].begin(), columns_[col].end());
  return std::make_pair(*mn, *mx);
}

}  // namespace pcx
