#include "baselines/sampling.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace pcx {
namespace {

/// Per-row query contribution: 0 when the row misses the predicate,
/// else 1 (COUNT) or the attribute value (SUM).
double Contribution(const Table& t, size_t row, const AggQuery& q) {
  if (q.where.has_value() && !q.where->MatchesRow(t, row)) return 0.0;
  return q.agg == AggFunc::kCount ? 1.0 : t.At(row, q.attr);
}

/// Half-width of the mean interval for one stratum/sample.
/// Parametric: z * s / sqrt(n). Non-parametric: Hoeffding with the
/// sample range, (max-min) * sqrt(ln(2/delta) / 2n).
double MeanHalfWidth(const RunningStats& stats, IntervalMethod method,
                     double confidence) {
  const double n = static_cast<double>(stats.count());
  if (n < 1.0) return 0.0;
  if (method == IntervalMethod::kParametric) {
    return ZCritical(confidence) * stats.stddev() / std::sqrt(n);
  }
  const double delta = 1.0 - confidence;
  const double range = stats.max() - stats.min();
  return range * std::sqrt(std::log(2.0 / delta) / (2.0 * n));
}

}  // namespace

UniformSamplingEstimator::UniformSamplingEstimator(Table sample,
                                                   size_t total_missing,
                                                   IntervalMethod method,
                                                   double confidence,
                                                   std::string name)
    : sample_(std::move(sample)),
      total_missing_(total_missing),
      method_(method),
      confidence_(confidence),
      name_(std::move(name)) {
  PCX_CHECK(confidence_ > 0.0 && confidence_ < 1.0);
}

UniformSamplingEstimator UniformSamplingEstimator::FromMissing(
    const Table& missing, size_t sample_size, IntervalMethod method,
    double confidence, std::string name, Rng* rng) {
  PCX_CHECK(rng != nullptr);
  const size_t k = std::min(sample_size, missing.num_rows());
  const std::vector<size_t> idx =
      rng->SampleWithoutReplacement(missing.num_rows(), k);
  return UniformSamplingEstimator(missing.Select(idx), missing.num_rows(),
                                  method, confidence, std::move(name));
}

StatusOr<ResultRange> UniformSamplingEstimator::Estimate(
    const AggQuery& query) const {
  if (sample_.num_rows() == 0) {
    return Status::FailedPrecondition("empty sample");
  }
  const double scale = static_cast<double>(total_missing_);
  switch (query.agg) {
    case AggFunc::kCount:
    case AggFunc::kSum: {
      RunningStats stats;
      for (size_t r = 0; r < sample_.num_rows(); ++r) {
        stats.Add(Contribution(sample_, r, query));
      }
      const double est = scale * stats.mean();
      const double half = scale * MeanHalfWidth(stats, method_, confidence_);
      ResultRange out;
      out.lo = est - half;
      out.hi = est + half;
      return out;
    }
    case AggFunc::kAvg: {
      // Ratio estimator over the matching subset.
      RunningStats stats;
      for (size_t r = 0; r < sample_.num_rows(); ++r) {
        if (query.where.has_value() && !query.where->MatchesRow(sample_, r)) {
          continue;
        }
        stats.Add(sample_.At(r, query.attr));
      }
      if (stats.count() == 0) {
        ResultRange out;
        out.defined = false;
        return out;
      }
      const double half = MeanHalfWidth(stats, method_, confidence_);
      ResultRange out;
      out.lo = stats.mean() - half;
      out.hi = stats.mean() + half;
      return out;
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      // Samples give only the observed extremes; they systematically
      // under-cover the population extremes (paper Fig. 9 discussion).
      RunningStats stats;
      for (size_t r = 0; r < sample_.num_rows(); ++r) {
        if (query.where.has_value() && !query.where->MatchesRow(sample_, r)) {
          continue;
        }
        stats.Add(sample_.At(r, query.attr));
      }
      ResultRange out;
      if (stats.count() == 0) {
        out.defined = false;
        return out;
      }
      out.lo = stats.min();
      out.hi = stats.max();
      return out;
    }
  }
  return Status::Internal("unreachable");
}

StratifiedSamplingEstimator::StratifiedSamplingEstimator(
    std::vector<Stratum> strata, IntervalMethod method, double confidence,
    std::string name)
    : strata_(std::move(strata)),
      method_(method),
      confidence_(confidence),
      name_(std::move(name)) {
  PCX_CHECK(confidence_ > 0.0 && confidence_ < 1.0);
}

StratifiedSamplingEstimator StratifiedSamplingEstimator::FromMissing(
    const Table& missing, const std::vector<Predicate>& regions,
    size_t total_sample_size, IntervalMethod method, double confidence,
    std::string name, Rng* rng) {
  PCX_CHECK(rng != nullptr);
  PCX_CHECK(!regions.empty());
  // Assign each missing row to its first matching region.
  std::vector<std::vector<size_t>> members(regions.size());
  for (size_t r = 0; r < missing.num_rows(); ++r) {
    for (size_t g = 0; g < regions.size(); ++g) {
      if (regions[g].MatchesRow(missing, r)) {
        members[g].push_back(r);
        break;
      }
    }
  }
  std::vector<Stratum> strata;
  for (size_t g = 0; g < regions.size(); ++g) {
    if (members[g].empty()) continue;
    Stratum s;
    s.region = regions[g];
    s.population = members[g].size();
    // Proportional allocation, at least one row per non-empty stratum.
    size_t quota = std::max<size_t>(
        1, total_sample_size * members[g].size() / missing.num_rows());
    quota = std::min(quota, members[g].size());
    std::vector<size_t> pick =
        rng->SampleWithoutReplacement(members[g].size(), quota);
    std::vector<size_t> rows;
    rows.reserve(pick.size());
    for (size_t p : pick) rows.push_back(members[g][p]);
    s.sample = missing.Select(rows);
    strata.push_back(std::move(s));
  }
  return StratifiedSamplingEstimator(std::move(strata), method, confidence,
                                     std::move(name));
}

StatusOr<ResultRange> StratifiedSamplingEstimator::Estimate(
    const AggQuery& query) const {
  if (strata_.empty()) return Status::FailedPrecondition("no strata");
  switch (query.agg) {
    case AggFunc::kCount:
    case AggFunc::kSum: {
      double est = 0.0;
      double var = 0.0;
      double hoeffding_half = 0.0;
      for (const Stratum& s : strata_) {
        RunningStats stats;
        for (size_t r = 0; r < s.sample.num_rows(); ++r) {
          stats.Add(Contribution(s.sample, r, query));
        }
        const double nh = static_cast<double>(s.population);
        est += nh * stats.mean();
        if (method_ == IntervalMethod::kParametric) {
          var += nh * nh * stats.variance() /
                 std::max<double>(1.0, static_cast<double>(stats.count()));
        } else {
          hoeffding_half += nh * MeanHalfWidth(stats, method_, confidence_);
        }
      }
      double half;
      if (method_ == IntervalMethod::kParametric) {
        half = ZCritical(confidence_) * std::sqrt(var);
      } else {
        half = hoeffding_half;
      }
      ResultRange out;
      out.lo = est - half;
      out.hi = est + half;
      return out;
    }
    case AggFunc::kAvg: {
      // Combine SUM and COUNT estimates.
      AggQuery sum_q = query;
      sum_q.agg = AggFunc::kSum;
      AggQuery cnt_q = query;
      cnt_q.agg = AggFunc::kCount;
      PCX_ASSIGN_OR_RETURN(const ResultRange s, Estimate(sum_q));
      PCX_ASSIGN_OR_RETURN(const ResultRange c, Estimate(cnt_q));
      ResultRange out;
      if (c.hi <= 0.0) {
        out.defined = false;
        return out;
      }
      const double c_lo = std::max(c.lo, 1.0);
      out.lo = std::min(s.lo / c_lo, s.lo / c.hi);
      out.hi = std::max(s.hi / c_lo, s.hi / c.hi);
      return out;
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      RunningStats stats;
      for (const Stratum& s : strata_) {
        for (size_t r = 0; r < s.sample.num_rows(); ++r) {
          if (query.where.has_value() &&
              !query.where->MatchesRow(s.sample, r)) {
            continue;
          }
          stats.Add(s.sample.At(r, query.attr));
        }
      }
      ResultRange out;
      if (stats.count() == 0) {
        out.defined = false;
        return out;
      }
      out.lo = stats.min();
      out.hi = stats.max();
      return out;
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace pcx
