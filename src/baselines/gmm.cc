#include "baselines/gmm.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"

namespace pcx {
namespace {

double LogGaussianDiag(const std::vector<double>& x,
                       const std::vector<double>& mean,
                       const std::vector<double>& var) {
  double lp = 0.0;
  for (size_t d = 0; d < x.size(); ++d) {
    const double diff = x[d] - mean[d];
    lp += -0.5 * std::log(2.0 * std::numbers::pi * var[d]) -
          0.5 * diff * diff / var[d];
  }
  return lp;
}

double LogSumExp(const std::vector<double>& v) {
  const double m = *std::max_element(v.begin(), v.end());
  if (m == -std::numeric_limits<double>::infinity()) return m;
  double s = 0.0;
  for (double x : v) s += std::exp(x - m);
  return m + std::log(s);
}

}  // namespace

StatusOr<GaussianMixtureModel> GaussianMixtureModel::Fit(
    const std::vector<std::vector<double>>& data, const FitOptions& options) {
  if (data.empty()) return Status::InvalidArgument("empty training data");
  const size_t n = data.size();
  const size_t dims = data[0].size();
  const size_t k = std::min(options.num_components, n);
  for (const auto& row : data) {
    if (row.size() != dims) {
      return Status::InvalidArgument("ragged training data");
    }
  }

  GaussianMixtureModel model;
  model.dims_ = dims;
  model.components_.resize(k);

  // Initialize with random distinct points and the global variance.
  Rng rng(options.seed);
  std::vector<double> global_var(dims, 0.0);
  std::vector<double> global_mean(dims, 0.0);
  for (const auto& row : data) {
    for (size_t d = 0; d < dims; ++d) global_mean[d] += row[d];
  }
  for (size_t d = 0; d < dims; ++d) global_mean[d] /= static_cast<double>(n);
  for (const auto& row : data) {
    for (size_t d = 0; d < dims; ++d) {
      const double diff = row[d] - global_mean[d];
      global_var[d] += diff * diff;
    }
  }
  for (size_t d = 0; d < dims; ++d) {
    global_var[d] =
        std::max(options.min_variance, global_var[d] / static_cast<double>(n));
  }
  const std::vector<size_t> init = rng.SampleWithoutReplacement(n, k);
  for (size_t c = 0; c < k; ++c) {
    model.components_[c].weight = 1.0 / static_cast<double>(k);
    model.components_[c].mean = data[init[c]];
    model.components_[c].var = global_var;
  }

  std::vector<std::vector<double>> resp(n, std::vector<double>(k, 0.0));
  double prev_ll = -std::numeric_limits<double>::infinity();
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // E step.
    double ll = 0.0;
    std::vector<double> logp(k);
    for (size_t i = 0; i < n; ++i) {
      for (size_t c = 0; c < k; ++c) {
        logp[c] = std::log(std::max(model.components_[c].weight, 1e-300)) +
                  LogGaussianDiag(data[i], model.components_[c].mean,
                                  model.components_[c].var);
      }
      const double lse = LogSumExp(logp);
      ll += lse;
      for (size_t c = 0; c < k; ++c) resp[i][c] = std::exp(logp[c] - lse);
    }
    model.log_likelihood_ = ll;
    if (std::fabs(ll - prev_ll) <
        options.tolerance * (std::fabs(prev_ll) + 1.0)) {
      break;
    }
    prev_ll = ll;
    // M step.
    for (size_t c = 0; c < k; ++c) {
      double nk = 0.0;
      std::vector<double> mean(dims, 0.0);
      for (size_t i = 0; i < n; ++i) {
        nk += resp[i][c];
        for (size_t d = 0; d < dims; ++d) mean[d] += resp[i][c] * data[i][d];
      }
      if (nk < 1e-10) {
        // Dead component: re-seed at a random point.
        model.components_[c].mean =
            data[static_cast<size_t>(rng.UniformInt(0, n - 1))];
        model.components_[c].var = global_var;
        model.components_[c].weight = 1.0 / static_cast<double>(n);
        continue;
      }
      for (size_t d = 0; d < dims; ++d) mean[d] /= nk;
      std::vector<double> var(dims, 0.0);
      for (size_t i = 0; i < n; ++i) {
        for (size_t d = 0; d < dims; ++d) {
          const double diff = data[i][d] - mean[d];
          var[d] += resp[i][c] * diff * diff;
        }
      }
      for (size_t d = 0; d < dims; ++d) {
        var[d] = std::max(options.min_variance, var[d] / nk);
      }
      model.components_[c].weight = nk / static_cast<double>(n);
      model.components_[c].mean = std::move(mean);
      model.components_[c].var = std::move(var);
    }
  }
  return model;
}

std::vector<double> GaussianMixtureModel::Sample(Rng* rng) const {
  PCX_CHECK(rng != nullptr);
  PCX_CHECK(!components_.empty());
  double u = rng->Uniform();
  size_t pick = components_.size() - 1;
  for (size_t c = 0; c < components_.size(); ++c) {
    if (u < components_[c].weight) {
      pick = c;
      break;
    }
    u -= components_[c].weight;
  }
  const Component& comp = components_[pick];
  std::vector<double> out(dims_);
  for (size_t d = 0; d < dims_; ++d) {
    out[d] = rng->Gaussian(comp.mean[d], std::sqrt(comp.var[d]));
  }
  return out;
}

double GaussianMixtureModel::LogPdf(const std::vector<double>& x) const {
  PCX_CHECK_EQ(x.size(), dims_);
  std::vector<double> logp(components_.size());
  for (size_t c = 0; c < components_.size(); ++c) {
    logp[c] = std::log(std::max(components_[c].weight, 1e-300)) +
              LogGaussianDiag(x, components_[c].mean, components_[c].var);
  }
  return LogSumExp(logp);
}

GenerativeEstimator::GenerativeEstimator(
    const Table& missing, std::vector<size_t> attrs,
    GaussianMixtureModel::FitOptions fit_options, size_t replicates,
    uint64_t seed, std::string name)
    : attrs_(std::move(attrs)),
      gmm_(Status::Internal("unfitted")),
      total_missing_(missing.num_rows()),
      replicates_(replicates),
      rng_(seed),
      name_(std::move(name)) {
  std::vector<std::vector<double>> data;
  data.reserve(missing.num_rows());
  for (size_t r = 0; r < missing.num_rows(); ++r) {
    std::vector<double> row(attrs_.size());
    for (size_t d = 0; d < attrs_.size(); ++d) row[d] = missing.At(r, attrs_[d]);
    data.push_back(std::move(row));
  }
  gmm_ = GaussianMixtureModel::Fit(data, fit_options);
}

StatusOr<ResultRange> GenerativeEstimator::Estimate(
    const AggQuery& query) const {
  if (!gmm_.ok()) return gmm_.status();
  // Map query columns into model dimensions.
  auto model_dim = [&](size_t table_col) -> int {
    for (size_t d = 0; d < attrs_.size(); ++d) {
      if (attrs_[d] == table_col) return static_cast<int>(d);
    }
    return -1;
  };
  const int agg_dim =
      query.agg == AggFunc::kCount ? -1 : model_dim(query.attr);
  if (query.agg != AggFunc::kCount && agg_dim < 0) {
    return Status::InvalidArgument("aggregate attribute not in the model");
  }

  ResultRange out;
  bool first = true;
  for (size_t rep = 0; rep < replicates_; ++rep) {
    double sum = 0.0, mn = 0.0, mx = 0.0;
    size_t cnt = 0;
    for (size_t i = 0; i < total_missing_; ++i) {
      const std::vector<double> point = gmm_->Sample(&rng_);
      if (query.where.has_value()) {
        bool match = true;
        for (size_t d = 0; d < attrs_.size(); ++d) {
          if (!query.where->box().dim(attrs_[d]).Contains(point[d])) {
            match = false;
            break;
          }
        }
        if (!match) continue;
      }
      const double v = agg_dim >= 0 ? point[agg_dim] : 0.0;
      if (cnt == 0) {
        mn = mx = v;
      } else {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
      sum += v;
      ++cnt;
    }
    double value = 0.0;
    bool defined = true;
    switch (query.agg) {
      case AggFunc::kCount:
        value = static_cast<double>(cnt);
        break;
      case AggFunc::kSum:
        value = sum;
        break;
      case AggFunc::kAvg:
        defined = cnt > 0;
        value = defined ? sum / static_cast<double>(cnt) : 0.0;
        break;
      case AggFunc::kMin:
        defined = cnt > 0;
        value = mn;
        break;
      case AggFunc::kMax:
        defined = cnt > 0;
        value = mx;
        break;
    }
    if (!defined) continue;
    if (first) {
      out.lo = out.hi = value;
      first = false;
    } else {
      out.lo = std::min(out.lo, value);
      out.hi = std::max(out.hi, value);
    }
  }
  out.defined = !first;
  return out;
}

}  // namespace pcx
