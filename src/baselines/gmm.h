#ifndef PCX_BASELINES_GMM_H_
#define PCX_BASELINES_GMM_H_

#include <string>
#include <vector>

#include "baselines/estimator.h"
#include "common/random.h"
#include "relation/table.h"

namespace pcx {

/// Diagonal-covariance Gaussian Mixture Model fitted with
/// Expectation-Maximization, written from scratch. Substrate for the
/// "Gen" generative baseline of the paper (§6.1.2).
class GaussianMixtureModel {
 public:
  struct Component {
    double weight = 0.0;
    std::vector<double> mean;
    std::vector<double> var;  ///< per-dimension variance (diagonal)
  };

  struct FitOptions {
    size_t num_components = 4;
    size_t max_iterations = 100;
    double tolerance = 1e-6;     ///< relative log-likelihood change
    double min_variance = 1e-9;  ///< variance floor against collapse
    uint64_t seed = 17;
  };

  /// Fits the mixture to `data` (rows of equal dimension).
  static StatusOr<GaussianMixtureModel> Fit(
      const std::vector<std::vector<double>>& data, const FitOptions& options);

  size_t num_components() const { return components_.size(); }
  size_t dims() const { return dims_; }
  const Component& component(size_t k) const { return components_[k]; }
  double log_likelihood() const { return log_likelihood_; }

  /// Draws one point from the mixture.
  std::vector<double> Sample(Rng* rng) const;

  /// Log density of a point.
  double LogPdf(const std::vector<double>& x) const;

 private:
  std::vector<Component> components_;
  size_t dims_ = 0;
  double log_likelihood_ = 0.0;
};

/// The paper's "Gen" baseline (§6.1.2): fit a GMM to the missing rows,
/// draw several synthetic missing datasets of the true cardinality, run
/// the query on each, and report the min/max over the replicates as the
/// interval. Works well when the model captures the data and fails
/// unpredictably when it does not (paper Table 2's Gen column).
class GenerativeEstimator : public MissingDataEstimator {
 public:
  /// `attrs` selects which columns enter the model (predicate attributes
  /// plus the aggregate attribute). `replicates` synthetic datasets are
  /// generated per estimate.
  GenerativeEstimator(const Table& missing, std::vector<size_t> attrs,
                      GaussianMixtureModel::FitOptions fit_options,
                      size_t replicates, uint64_t seed,
                      std::string name = "Gen");

  StatusOr<ResultRange> Estimate(const AggQuery& query) const override;
  std::string name() const override { return name_; }

 private:
  std::vector<size_t> attrs_;          ///< model column -> table column
  StatusOr<GaussianMixtureModel> gmm_;
  size_t total_missing_;
  size_t replicates_;
  mutable Rng rng_;
  std::string name_;
};

}  // namespace pcx

#endif  // PCX_BASELINES_GMM_H_
