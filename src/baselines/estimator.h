#ifndef PCX_BASELINES_ESTIMATOR_H_
#define PCX_BASELINES_ESTIMATOR_H_

#include <span>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "pc/query.h"

namespace pcx {

/// Common interface of every technique compared in the paper's §6:
/// given some summary of the missing rows (a sample, a histogram, a
/// generative model, a PC set...), produce an interval that hopefully
/// contains the aggregate of the missing rows. Statistical baselines
/// produce *confidence* intervals that can fail; the PC framework
/// produces ranges that cannot (if the constraints hold).
class MissingDataEstimator {
 public:
  virtual ~MissingDataEstimator() = default;

  /// Interval estimate for `query` over the missing rows.
  virtual StatusOr<ResultRange> Estimate(const AggQuery& query) const = 0;

  /// Estimates a whole workload at once, in input order. The default
  /// loops over Estimate; estimators whose queries are independent and
  /// thread-safe (PcEstimator) override this to fan the batch across a
  /// worker pool with results identical to the sequential loop.
  virtual std::vector<StatusOr<ResultRange>> EstimateBatch(
      std::span<const AggQuery> queries) const {
    std::vector<StatusOr<ResultRange>> out;
    out.reserve(queries.size());
    for (const AggQuery& q : queries) out.push_back(Estimate(q));
    return out;
  }

  /// Display name used in experiment tables ("US-1p", "Corr-PC", ...).
  virtual std::string name() const = 0;
};

}  // namespace pcx

#endif  // PCX_BASELINES_ESTIMATOR_H_
