#ifndef PCX_BASELINES_PC_ESTIMATOR_H_
#define PCX_BASELINES_PC_ESTIMATOR_H_

#include <memory>
#include <string>
#include <utility>

#include "baselines/estimator.h"
#include "engine/engine.h"
#include "engine/local_backend.h"
#include "engine/sharded_backend.h"

namespace pcx {

/// Adapts the engine's LocalBackend to the MissingDataEstimator
/// interface so the experiment harness can run PCs (Corr-PC, Rand-PC,
/// Overlapping-PC...) side by side with the statistical baselines.
/// Estimates go through the same BoundBackend API that serves every
/// other execution substrate, so harness numbers measured here are the
/// numbers a sharded or remote deployment would report.
class PcEstimator : public MissingDataEstimator {
 public:
  PcEstimator(PredicateConstraintSet pcs, std::vector<AttrDomain> domains,
              std::string name)
      : backend_(std::make_shared<LocalBackend>(std::move(pcs),
                                                std::move(domains))),
        name_(std::move(name)) {}

  PcEstimator(PredicateConstraintSet pcs, std::vector<AttrDomain> domains,
              PcBoundSolver::Options options, std::string name)
      : backend_(std::make_shared<LocalBackend>(
            std::move(pcs), std::move(domains),
            LocalBackend::Options{options, 0, 0})),
        name_(std::move(name)) {}

  StatusOr<ResultRange> Estimate(const AggQuery& query) const override {
    return backend_->Bound(query);
  }
  std::vector<StatusOr<ResultRange>> EstimateBatch(
      std::span<const AggQuery> queries) const override {
    return backend_->BoundBatch(queries);
  }
  std::string name() const override { return name_; }

  const PcBoundSolver& solver() const { return backend_->solver(); }
  const std::shared_ptr<LocalBackend>& backend() const { return backend_; }

 private:
  std::shared_ptr<LocalBackend> backend_;
  std::string name_;
};

/// The sharded-serving counterpart: same estimator interface, answers
/// routed through a ShardedBackend. Since sharded answers are
/// bit-identical to the unsharded solver's, its eval-harness report
/// (failure rate, tightness) must match PcEstimator's exactly — running
/// both is a whole-workload consistency check, and the sharded mode of
/// the Fig. 8 sweep measures what partitioning buys per query.
class ShardedPcEstimator : public MissingDataEstimator {
 public:
  ShardedPcEstimator(PredicateConstraintSet pcs,
                     std::vector<AttrDomain> domains,
                     ShardedBoundSolver::Options options, std::string name)
      : backend_(std::make_shared<ShardedBackend>(
            std::move(pcs), std::move(domains), options)),
        name_(std::move(name)) {}

  StatusOr<ResultRange> Estimate(const AggQuery& query) const override {
    return backend_->Bound(query);
  }
  std::vector<StatusOr<ResultRange>> EstimateBatch(
      std::span<const AggQuery> queries) const override {
    return backend_->BoundBatch(queries);
  }
  std::string name() const override { return name_; }

  const ShardedBoundSolver& solver() const { return backend_->solver(); }
  const std::shared_ptr<ShardedBackend>& backend() const { return backend_; }

 private:
  std::shared_ptr<ShardedBackend> backend_;
  std::string name_;
};

/// The fully general adapter: ANY engine — a remote server, a mirror
/// over replicas, whatever Engine::Open produced — run through the §6
/// evaluation harness. With a "tcp:" engine this turns the harness into
/// an end-to-end serving validator: failure rate and tightness must
/// match the in-process PcEstimator's because answers are bit-identical
/// across backends.
class EngineEstimator : public MissingDataEstimator {
 public:
  EngineEstimator(Engine engine, std::string name)
      : engine_(std::move(engine)), name_(std::move(name)) {}

  StatusOr<ResultRange> Estimate(const AggQuery& query) const override {
    return engine_.Bound(query);
  }
  std::vector<StatusOr<ResultRange>> EstimateBatch(
      std::span<const AggQuery> queries) const override {
    return engine_.BoundBatch(queries);
  }
  std::string name() const override { return name_; }

  const Engine& engine() const { return engine_; }

 private:
  Engine engine_;
  std::string name_;
};

}  // namespace pcx

#endif  // PCX_BASELINES_PC_ESTIMATOR_H_
