#ifndef PCX_BASELINES_PC_ESTIMATOR_H_
#define PCX_BASELINES_PC_ESTIMATOR_H_

#include <memory>
#include <string>
#include <utility>

#include "baselines/estimator.h"
#include "pc/bound_solver.h"
#include "serve/sharded_solver.h"

namespace pcx {

/// Adapts PcBoundSolver to the MissingDataEstimator interface so the
/// experiment harness can run PCs (Corr-PC, Rand-PC, Overlapping-PC...)
/// side by side with the statistical baselines.
class PcEstimator : public MissingDataEstimator {
 public:
  PcEstimator(PredicateConstraintSet pcs, std::vector<AttrDomain> domains,
              std::string name)
      : solver_(std::move(pcs), std::move(domains)), name_(std::move(name)) {}

  PcEstimator(PredicateConstraintSet pcs, std::vector<AttrDomain> domains,
              PcBoundSolver::Options options, std::string name)
      : solver_(std::move(pcs), std::move(domains), options),
        name_(std::move(name)) {}

  StatusOr<ResultRange> Estimate(const AggQuery& query) const override {
    return solver_.Bound(query);
  }
  std::vector<StatusOr<ResultRange>> EstimateBatch(
      std::span<const AggQuery> queries) const override {
    return solver_.BoundBatch(queries);
  }
  std::string name() const override { return name_; }

  const PcBoundSolver& solver() const { return solver_; }

 private:
  PcBoundSolver solver_;
  std::string name_;
};

/// The sharded-serving counterpart: same estimator interface, answers
/// routed through a ShardedBoundSolver. Since sharded answers are
/// bit-identical to the unsharded solver's, its eval-harness report
/// (failure rate, tightness) must match PcEstimator's exactly — running
/// both is a whole-workload consistency check, and the sharded mode of
/// the Fig. 8 sweep measures what partitioning buys per query.
class ShardedPcEstimator : public MissingDataEstimator {
 public:
  ShardedPcEstimator(PredicateConstraintSet pcs,
                     std::vector<AttrDomain> domains,
                     ShardedBoundSolver::Options options, std::string name)
      : solver_(std::move(pcs), std::move(domains), options),
        name_(std::move(name)) {}

  StatusOr<ResultRange> Estimate(const AggQuery& query) const override {
    return solver_.Bound(query);
  }
  std::vector<StatusOr<ResultRange>> EstimateBatch(
      std::span<const AggQuery> queries) const override {
    return solver_.BoundBatch(queries);
  }
  std::string name() const override { return name_; }

  const ShardedBoundSolver& solver() const { return solver_; }

 private:
  ShardedBoundSolver solver_;
  std::string name_;
};

}  // namespace pcx

#endif  // PCX_BASELINES_PC_ESTIMATOR_H_
