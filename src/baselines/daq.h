#ifndef PCX_BASELINES_DAQ_H_
#define PCX_BASELINES_DAQ_H_

#include <string>

#include "baselines/estimator.h"
#include "relation/table.h"

namespace pcx {

/// Deterministic relation-level bound in the spirit of DAQ (Potti &
/// Patel, VLDB'15), discussed in the paper's related work (§7): model
/// the uncertainty of the *whole* missing relation with one global
/// value range and one cardinality, with no predicate-level structure.
/// Equivalent to a PC set containing a single TRUE constraint — the
/// degenerate end of the PC spectrum. Hard bounds that never fail, but
/// much looser than predicate-level constraints on selective queries
/// because a WHERE clause cannot shrink the cardinality term.
class DaqStyleEstimator : public MissingDataEstimator {
 public:
  /// Summarizes `missing` into (count, min, max) of `agg_attr`.
  DaqStyleEstimator(const Table& missing, size_t agg_attr,
                    std::string name = "DAQ");

  StatusOr<ResultRange> Estimate(const AggQuery& query) const override;
  std::string name() const override { return name_; }

 private:
  double count_ = 0.0;
  double val_min_ = 0.0;
  double val_max_ = 0.0;
  size_t agg_attr_;
  std::string name_;
};

}  // namespace pcx

#endif  // PCX_BASELINES_DAQ_H_
