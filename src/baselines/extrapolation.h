#ifndef PCX_BASELINES_EXTRAPOLATION_H_
#define PCX_BASELINES_EXTRAPOLATION_H_

#include <string>

#include "baselines/estimator.h"
#include "relation/table.h"

namespace pcx {

/// Simple extrapolation (paper §2.1 / Fig. 1): scale the aggregate of
/// the *observed* rows by the known missing fraction and report it as a
/// point "interval". Assumes the missing rows resemble the observed
/// rows — exactly the assumption the paper's Fig. 1 experiment breaks
/// with correlated missingness.
class ExtrapolationEstimator : public MissingDataEstimator {
 public:
  /// `observed` are the rows that did load; `num_missing` is the known
  /// count of missing rows.
  ExtrapolationEstimator(Table observed, size_t num_missing,
                         std::string name = "Extrapolation");

  StatusOr<ResultRange> Estimate(const AggQuery& query) const override;
  std::string name() const override { return name_; }

 private:
  Table observed_;
  size_t num_missing_;
  std::string name_;
};

}  // namespace pcx

#endif  // PCX_BASELINES_EXTRAPOLATION_H_
