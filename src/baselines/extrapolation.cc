#include "baselines/extrapolation.h"

#include "relation/aggregate.h"

namespace pcx {

ExtrapolationEstimator::ExtrapolationEstimator(Table observed,
                                               size_t num_missing,
                                               std::string name)
    : observed_(std::move(observed)),
      num_missing_(num_missing),
      name_(std::move(name)) {}

StatusOr<ResultRange> ExtrapolationEstimator::Estimate(
    const AggQuery& query) const {
  if (observed_.num_rows() == 0) {
    return Status::FailedPrecondition("no observed rows to extrapolate from");
  }
  std::function<bool(size_t)> filter = nullptr;
  if (query.where.has_value()) {
    const Predicate& where = *query.where;
    filter = [this, &where](size_t r) {
      return where.MatchesRow(observed_, r);
    };
  }
  const AggregateResult agg =
      Aggregate(observed_, query.agg, query.attr, filter);
  const double ratio = static_cast<double>(num_missing_) /
                       static_cast<double>(observed_.num_rows());
  ResultRange out;
  switch (query.agg) {
    case AggFunc::kCount:
    case AggFunc::kSum:
      // Scale volume-like aggregates by the missing fraction.
      out.lo = out.hi = agg.value * ratio;
      return out;
    case AggFunc::kAvg:
    case AggFunc::kMin:
    case AggFunc::kMax:
      // Location-like aggregates carry over unscaled.
      out.defined = !agg.empty_input;
      out.lo = out.hi = agg.value;
      return out;
  }
  return Status::Internal("unreachable");
}

}  // namespace pcx
