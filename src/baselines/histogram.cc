#include "baselines/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pcx {

HistogramEstimator::HistogramEstimator(const Table& missing,
                                       std::vector<size_t> pred_attrs,
                                       size_t agg_attr, size_t buckets,
                                       std::string name)
    : agg_attr_(agg_attr), name_(std::move(name)) {
  PCX_CHECK_GE(buckets, 1u);
  total_rows_ = static_cast<double>(missing.num_rows());
  for (size_t r = 0; r < missing.num_rows(); ++r) {
    const double v = missing.At(r, agg_attr_);
    if (r == 0) {
      global_min_ = global_max_ = v;
    } else {
      global_min_ = std::min(global_min_, v);
      global_max_ = std::max(global_max_, v);
    }
  }
  for (size_t attr : pred_attrs) {
    AttrHistogram h;
    h.attr = attr;
    if (missing.num_rows() == 0) {
      hists_.push_back(std::move(h));
      continue;
    }
    auto range = missing.ColumnRange(attr);
    PCX_CHECK(range.ok());
    const double lo = range->first;
    // Widen slightly so the max value falls inside the last bucket.
    const double hi =
        range->second + std::max(1e-9, 1e-9 * std::fabs(range->second));
    const double width = (hi - lo) / static_cast<double>(buckets);
    h.buckets.resize(buckets);
    for (size_t b = 0; b < buckets; ++b) {
      h.buckets[b].lo = lo + width * static_cast<double>(b);
      h.buckets[b].hi = lo + width * static_cast<double>(b + 1);
    }
    for (size_t r = 0; r < missing.num_rows(); ++r) {
      const double x = missing.At(r, attr);
      size_t b = width > 0.0
                     ? static_cast<size_t>((x - lo) / width)
                     : 0;
      b = std::min(b, buckets - 1);
      Bucket& bk = h.buckets[b];
      const double v = missing.At(r, agg_attr_);
      if (bk.count == 0.0) {
        bk.agg_min = bk.agg_max = v;
      } else {
        bk.agg_min = std::min(bk.agg_min, v);
        bk.agg_max = std::max(bk.agg_max, v);
      }
      bk.count += 1.0;
      if (v < 0.0) {
        bk.agg_neg_mass += v;
      } else {
        bk.agg_pos_mass += v;
      }
    }
    hists_.push_back(std::move(h));
  }
}

HistogramEstimator::AttrBounds HistogramEstimator::BoundsForAttr(
    const AttrHistogram& h, const Interval& query_iv) const {
  AttrBounds out;
  bool first_val = true;
  for (const Bucket& b : h.buckets) {
    if (b.count == 0.0) continue;
    const Interval bucket_iv{b.lo, b.hi, false, true};
    const Interval overlap = bucket_iv.Intersect(query_iv);
    if (overlap.IsEmpty()) continue;
    out.any_overlap = true;
    // Fully contained bucket: all rows must match on this attribute.
    const bool full = query_iv.Contains(b.lo) &&
                      (query_iv.Contains(b.hi) ||
                       (query_iv.hi == b.hi && query_iv.hi_strict));
    out.count_hi += b.count;
    if (full) {
      out.count_lo += b.count;
      // Every row of a fully-contained bucket matches on this
      // attribute, so at least its full mass is mandatory *for this
      // dimension alone*; other dimensions may still exclude rows, so
      // the conjunction-level combination only uses this when the query
      // constrains a single attribute (see Estimate).
      out.sum_lo_single += b.agg_neg_mass + b.agg_pos_mass;
    } else {
      // An unknown subset of the bucket matches.
      out.sum_lo_single += b.agg_neg_mass;
    }
    out.sum_lo += b.agg_neg_mass;  // subset bound: all negative rows match
    out.sum_hi += b.agg_pos_mass;  // subset bound: all positive rows match
    if (first_val) {
      out.val_min = b.agg_min;
      out.val_max = b.agg_max;
      first_val = false;
    } else {
      out.val_min = std::min(out.val_min, b.agg_min);
      out.val_max = std::max(out.val_max, b.agg_max);
    }
  }
  return out;
}

StatusOr<ResultRange> HistogramEstimator::Estimate(
    const AggQuery& query) const {
  if (hists_.empty()) return Status::FailedPrecondition("no histograms");
  // Collect per-attribute bounds for every histogram attribute the query
  // constrains; an unconstrained query uses the trivial full-range
  // bounds of the first histogram.
  std::vector<AttrBounds> dims;
  for (const AttrHistogram& h : hists_) {
    if (!query.where.has_value()) continue;
    const Interval iv = query.where->box().dim(h.attr);
    if (iv.is_unbounded()) continue;
    dims.push_back(BoundsForAttr(h, iv));
  }
  if (dims.empty()) {
    // Unconstrained query: any one histogram summarizes all rows.
    dims.push_back(BoundsForAttr(hists_[0], Interval::All()));
  }

  ResultRange out;
  bool any = false;
  double count_hi = std::numeric_limits<double>::infinity();
  double count_lo_ie = total_rows_;  // inclusion-exclusion accumulator
  double sum_hi = std::numeric_limits<double>::infinity();
  double sum_lo = -std::numeric_limits<double>::infinity();
  double val_min = 0.0, val_max = 0.0;
  bool first = true;
  for (const AttrBounds& d : dims) {
    any = any || d.any_overlap;
    count_hi = std::min(count_hi, d.count_hi);
    count_lo_ie -= (total_rows_ - d.count_lo);
    sum_hi = std::min(sum_hi, d.sum_hi);
    sum_lo = std::max(sum_lo, d.sum_lo);
    if (d.any_overlap) {
      if (first) {
        val_min = d.val_min;
        val_max = d.val_max;
        first = false;
      } else {
        val_min = std::max(val_min, d.val_min);  // intersection of matches
        val_max = std::min(val_max, d.val_max);
      }
    }
  }
  const double count_lo = std::max(0.0, count_lo_ie);

  switch (query.agg) {
    case AggFunc::kCount:
      out.lo = count_lo;
      out.hi = any ? count_hi : 0.0;
      return out;
    case AggFunc::kSum: {
      if (!any) return out;  // [0, 0]
      out.hi = sum_hi;
      out.lo = dims.size() == 1 ? dims[0].sum_lo_single : sum_lo;
      // Mandatory rows at non-negative minimum value tighten the lower
      // bound when all values are non-negative.
      if (global_min_ >= 0.0) {
        out.lo = std::max(out.lo, count_lo * std::max(val_min, 0.0));
        out.lo = std::max(out.lo, 0.0);
      }
      return out;
    }
    case AggFunc::kAvg:
    case AggFunc::kMin:
    case AggFunc::kMax: {
      if (!any || count_hi == 0.0) {
        out.defined = false;
        return out;
      }
      // Hard envelope: any matching row's value is within
      // [max of per-dim minima, min of per-dim maxima] — but that
      // intersection can be empty for AVG/MIN/MAX when the dims
      // disagree; fall back to the conservative union envelope.
      double lo = val_min, hi = val_max;
      if (lo > hi) {
        lo = global_min_;
        hi = global_max_;
      }
      out.lo = lo;
      out.hi = hi;
      out.empty_instance_possible = count_lo == 0.0;
      return out;
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace pcx
