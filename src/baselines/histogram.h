#ifndef PCX_BASELINES_HISTOGRAM_H_
#define PCX_BASELINES_HISTOGRAM_H_

#include <string>
#include <vector>

#include "baselines/estimator.h"
#include "relation/table.h"

namespace pcx {

/// Equi-width histogram baseline (paper §6.1.3): one 1-D histogram per
/// predicate attribute, each bucket annotated with the row count and the
/// min/max/negative-mass of the aggregate attribute. Multi-attribute
/// predicates combine the per-attribute bounds ("standard independence
/// assumptions"): upper = min over attributes, lower by
/// inclusion-exclusion. The paper views histograms as the dense,
/// non-overlapping 1-D special case of predicate-constraints — like
/// PCs, the intervals below are hard bounds and cannot fail.
class HistogramEstimator : public MissingDataEstimator {
 public:
  /// Builds histograms over `missing`. `pred_attrs` are the columns
  /// queries may filter on; `agg_attr` is the aggregated column;
  /// `buckets` is the per-attribute bucket count.
  HistogramEstimator(const Table& missing, std::vector<size_t> pred_attrs,
                     size_t agg_attr, size_t buckets,
                     std::string name = "Histogram");

  StatusOr<ResultRange> Estimate(const AggQuery& query) const override;
  std::string name() const override { return name_; }

 private:
  struct Bucket {
    double lo = 0.0, hi = 0.0;  ///< attribute range [lo, hi)
    double count = 0.0;
    double agg_min = 0.0, agg_max = 0.0;  ///< range of the agg attribute
    double agg_neg_mass = 0.0;  ///< sum of negative agg values in bucket
    double agg_pos_mass = 0.0;  ///< sum of positive agg values in bucket
  };
  struct AttrHistogram {
    size_t attr = 0;
    std::vector<Bucket> buckets;
  };

  /// Per-attribute hard bounds on [count, sum] of rows matching the
  /// query's interval on that attribute.
  struct AttrBounds {
    double count_lo = 0.0, count_hi = 0.0;
    double sum_lo = 0.0, sum_hi = 0.0;
    /// Tighter SUM lower bound valid when this is the only constrained
    /// attribute (fully-contained buckets contribute their whole mass).
    double sum_lo_single = 0.0;
    double val_min = 0.0, val_max = 0.0;
    bool any_overlap = false;
  };
  AttrBounds BoundsForAttr(const AttrHistogram& h,
                           const Interval& query_iv) const;

  std::vector<AttrHistogram> hists_;
  size_t agg_attr_;
  double total_rows_ = 0.0;
  double global_min_ = 0.0, global_max_ = 0.0;
  std::string name_;
};

}  // namespace pcx

#endif  // PCX_BASELINES_HISTOGRAM_H_
