#ifndef PCX_BASELINES_SAMPLING_H_
#define PCX_BASELINES_SAMPLING_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/estimator.h"
#include "common/random.h"
#include "predicate/predicate.h"
#include "relation/table.h"

namespace pcx {

/// How a sampling estimator turns sample statistics into an interval.
enum class IntervalMethod {
  /// Central-Limit-Theorem (parametric) confidence interval from the
  /// sample standard error — the "US-1p"/"US-10p" baselines. Fails more
  /// than advertised on skewed data (paper §6.7).
  kParametric,
  /// Hoeffding-style non-parametric interval using the *sample* min/max
  /// as the range estimate — "US-1n"/"US-10n". Milder assumptions, still
  /// fallible because extrema are estimated from the sample.
  kNonParametric,
};

/// Uniform-sampling estimator (paper §6.1.1): the user supplies `sample`
/// — actual unbiased example missing rows — and the total number of
/// missing rows; aggregates are scaled up with a confidence interval.
class UniformSamplingEstimator : public MissingDataEstimator {
 public:
  /// `total_missing` is the (known) number of missing rows.
  UniformSamplingEstimator(Table sample, size_t total_missing,
                           IntervalMethod method, double confidence,
                           std::string name);

  StatusOr<ResultRange> Estimate(const AggQuery& query) const override;
  std::string name() const override { return name_; }

  /// Draws a uniform sample of `sample_size` rows from `missing` and
  /// builds the estimator.
  static UniformSamplingEstimator FromMissing(const Table& missing,
                                              size_t sample_size,
                                              IntervalMethod method,
                                              double confidence,
                                              std::string name, Rng* rng);

 private:
  Table sample_;
  size_t total_missing_;
  IntervalMethod method_;
  double confidence_;
  std::string name_;
};

/// Stratified-sampling estimator (paper §6.1.1, "ST-*"): weighted
/// per-stratum sampling against a partition of the attribute space;
/// estimates combine per-stratum means with finite-population scaling.
class StratifiedSamplingEstimator : public MissingDataEstimator {
 public:
  struct Stratum {
    Predicate region;
    Table sample;
    size_t population = 0;  ///< missing rows in this stratum
  };

  StratifiedSamplingEstimator(std::vector<Stratum> strata,
                              IntervalMethod method, double confidence,
                              std::string name);

  StatusOr<ResultRange> Estimate(const AggQuery& query) const override;
  std::string name() const override { return name_; }

  /// Partitions `missing` by `regions` (first match wins; rows matching
  /// no region are dropped) and samples `per_stratum` rows from each.
  static StratifiedSamplingEstimator FromMissing(
      const Table& missing, const std::vector<Predicate>& regions,
      size_t total_sample_size, IntervalMethod method, double confidence,
      std::string name, Rng* rng);

 private:
  std::vector<Stratum> strata_;
  IntervalMethod method_;
  double confidence_;
  std::string name_;
};

}  // namespace pcx

#endif  // PCX_BASELINES_SAMPLING_H_
