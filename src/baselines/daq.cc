#include "baselines/daq.h"

#include <algorithm>

namespace pcx {

DaqStyleEstimator::DaqStyleEstimator(const Table& missing, size_t agg_attr,
                                     std::string name)
    : agg_attr_(agg_attr), name_(std::move(name)) {
  count_ = static_cast<double>(missing.num_rows());
  if (missing.num_rows() > 0) {
    auto range = missing.ColumnRange(agg_attr_);
    if (range.ok()) {
      val_min_ = range->first;
      val_max_ = range->second;
    }
  }
}

StatusOr<ResultRange> DaqStyleEstimator::Estimate(
    const AggQuery& query) const {
  // Relation-level model: any subset of the `count_` rows could match
  // the query predicate, each valued anywhere in [val_min_, val_max_].
  ResultRange out;
  switch (query.agg) {
    case AggFunc::kCount:
      out.lo = 0.0;
      out.hi = count_;
      return out;
    case AggFunc::kSum:
      out.lo = std::min(0.0, count_ * val_min_);
      out.hi = std::max(0.0, count_ * val_max_);
      return out;
    case AggFunc::kAvg:
    case AggFunc::kMin:
    case AggFunc::kMax:
      out.defined = count_ > 0.0;
      out.empty_instance_possible = true;
      out.lo = val_min_;
      out.hi = val_max_;
      return out;
  }
  return Status::Internal("unreachable");
}

}  // namespace pcx
