#ifndef PCX_EVAL_HARNESS_H_
#define PCX_EVAL_HARNESS_H_

#include <string>
#include <vector>

#include "baselines/estimator.h"
#include "pc/query.h"
#include "relation/table.h"

namespace pcx {
namespace eval {

/// Outcome of one (estimator, query) pair.
struct QueryOutcome {
  double truth = 0.0;
  ResultRange estimate;
  bool failed = false;   ///< truth fell outside [lo, hi]
  bool skipped = false;  ///< estimator errored or truth undefined
  double over_rate = 0.0;  ///< hi / truth (only when truth > 0)
  bool has_over_rate = false;
};

/// Aggregated quality report of one estimator over a query workload —
/// the two metrics of paper §6.1: failure rate and tightness (median
/// over-estimation rate, hi / truth).
struct EstimatorReport {
  std::string name;
  size_t total = 0;
  size_t failures = 0;
  size_t skipped = 0;
  std::vector<double> over_rates;

  double failure_rate_percent() const;
  double median_over_rate() const;
};

/// Evaluates `estimator` on every query, comparing against the ground
/// truth computed on `missing` (the rows the estimator is modeling).
EstimatorReport EvaluateEstimator(const MissingDataEstimator& estimator,
                                  const std::vector<AggQuery>& queries,
                                  const Table& missing);

/// Runs a panel of estimators over the same workload.
std::vector<EstimatorReport> CompareEstimators(
    const std::vector<const MissingDataEstimator*>& estimators,
    const std::vector<AggQuery>& queries, const Table& missing);

/// Prints a fixed-width comparison table ("Technique  Fail%  MedOver").
void PrintReports(const std::vector<EstimatorReport>& reports,
                  const std::string& title);

}  // namespace eval
}  // namespace pcx

#endif  // PCX_EVAL_HARNESS_H_
