#include "eval/harness.h"

#include <cmath>
#include <cstdio>

#include "common/stats.h"
#include "relation/aggregate.h"

namespace pcx {
namespace eval {

double EstimatorReport::failure_rate_percent() const {
  const size_t counted = total - skipped;
  if (counted == 0) return 0.0;
  return 100.0 * static_cast<double>(failures) /
         static_cast<double>(counted);
}

double EstimatorReport::median_over_rate() const {
  // Quantile() is NaN on empty input; an empty report reads as 0.
  if (over_rates.empty()) return 0.0;
  return Median(over_rates);
}

EstimatorReport EvaluateEstimator(const MissingDataEstimator& estimator,
                                  const std::vector<AggQuery>& queries,
                                  const Table& missing) {
  EstimatorReport report;
  report.name = estimator.name();
  // One batched call: estimators with independent queries (the PC bound
  // solver) fan the workload across a thread pool; results are identical
  // to per-query Estimate calls and arrive in input order.
  const std::vector<StatusOr<ResultRange>> estimates =
      estimator.EstimateBatch(queries);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const AggQuery& q = queries[qi];
    ++report.total;
    std::function<bool(size_t)> filter = nullptr;
    if (q.where.has_value()) {
      const Predicate& where = *q.where;
      filter = [&](size_t r) { return where.MatchesRow(missing, r); };
    }
    const AggregateResult truth = Aggregate(missing, q.agg, q.attr, filter);
    const auto& est = estimates[qi];
    if (!est.ok()) {
      ++report.skipped;
      continue;
    }
    if (truth.empty_input) {
      // AVG/MIN/MAX over zero rows: only meaningful check is that the
      // estimator did not promise a non-empty instance.
      ++report.skipped;
      continue;
    }
    if (!est->defined) {
      // The estimator claims no row can match, but rows do match.
      ++report.failures;
      continue;
    }
    const double tol = 1e-6 * std::max(1.0, std::fabs(truth.value));
    if (truth.value < est->lo - tol || truth.value > est->hi + tol) {
      ++report.failures;
    }
    if (truth.value > 0.0 && est->hi > 0.0) {
      report.over_rates.push_back(est->hi / truth.value);
    }
  }
  return report;
}

std::vector<EstimatorReport> CompareEstimators(
    const std::vector<const MissingDataEstimator*>& estimators,
    const std::vector<AggQuery>& queries, const Table& missing) {
  std::vector<EstimatorReport> out;
  out.reserve(estimators.size());
  for (const MissingDataEstimator* e : estimators) {
    out.push_back(EvaluateEstimator(*e, queries, missing));
  }
  return out;
}

void PrintReports(const std::vector<EstimatorReport>& reports,
                  const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-18s %10s %10s %12s %8s\n", "technique", "failures",
              "fail-rate%", "med-over", "skipped");
  for (const auto& r : reports) {
    std::printf("%-18s %10zu %10.2f %12.3f %8zu\n", r.name.c_str(),
                r.failures, r.failure_rate_percent(), r.median_over_rate(),
                r.skipped);
  }
}

}  // namespace eval
}  // namespace pcx
