#ifndef PCX_SOLVER_SIMPLEX_H_
#define PCX_SOLVER_SIMPLEX_H_

#include "solver/lp_model.h"

namespace pcx {

/// Dense two-phase primal simplex solver, written from scratch (the
/// paper assumes an off-the-shelf LP/MILP solver; none is available in
/// this environment, so the solver is part of the reproduction).
///
/// Scope: the LPs produced by pcx are small and dense — one variable per
/// decomposition cell or per joined relation, one ranged row per
/// predicate-constraint — so a full-tableau implementation with Bland's
/// anti-cycling rule is entirely adequate. Integer variables are ignored
/// here (the relaxation is solved); see BranchAndBoundSolver for MILP.
///
/// Requirements: every variable must have a finite lower bound (pcx
/// models always use 0).
class SimplexSolver {
 public:
  struct Options {
    int max_iterations = 200000;
    double eps = 1e-9;         ///< pivot / reduced-cost tolerance
    double feas_tol = 1e-7;    ///< phase-1 feasibility tolerance
  };

  SimplexSolver() : options_(Options{}) {}
  explicit SimplexSolver(Options options) : options_(options) {}

  /// Solves the continuous relaxation of `model`.
  Solution Solve(const LpModel& model) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace pcx

#endif  // PCX_SOLVER_SIMPLEX_H_
