#ifndef PCX_SOLVER_SIMPLEX_H_
#define PCX_SOLVER_SIMPLEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "solver/lp_model.h"

namespace pcx {

/// Dense two-phase primal simplex solver, written from scratch (the
/// paper assumes an off-the-shelf LP/MILP solver; none is available in
/// this environment, so the solver is part of the reproduction).
///
/// Scope: the LPs produced by pcx are small and dense — one variable per
/// decomposition cell or per joined relation, one ranged row per
/// predicate-constraint — so a full-tableau implementation with Bland's
/// anti-cycling rule is entirely adequate. Integer variables are ignored
/// here (the relaxation is solved); see BranchAndBoundSolver for MILP.
///
/// Requirements: every variable must have a finite lower bound (pcx
/// models always use 0).
class SimplexSolver {
 public:
  struct Options {
    int max_iterations = 200000;
    double eps = 1e-9;         ///< pivot / reduced-cost tolerance
    double feas_tol = 1e-7;    ///< phase-1 feasibility tolerance
  };

  /// An optimal basis carried from one solve to the next. Rows and
  /// columns are identified *semantically* so the basis survives the
  /// variable-bound edits branch-and-bound performs: constraint j's
  /// upper/lower row has id 2j / 2j+1, variable i's upper-bound row has
  /// id 2 * num_constraints + i; column n + row_id is that row's
  /// slack/surplus. Only meaningful for models with the same constraint
  /// rows and objective (variable bounds may differ) — exactly the
  /// parent/child relation inside a branch-and-bound tree, where §4.2's
  /// 0/1-interval structure makes the re-optimization a handful of dual
  /// pivots instead of a full two-phase solve.
  struct WarmStart {
    /// (row id, semantic column id) per basic variable.
    std::vector<std::pair<uint32_t, uint32_t>> basis;
    bool valid() const { return !basis.empty(); }
    void Clear() { basis.clear(); }
  };

  SimplexSolver() : options_(Options{}) {}
  explicit SimplexSolver(Options options) : options_(options) {}

  /// Solves the continuous relaxation of `model` from a cold phase-1
  /// start.
  Solution Solve(const LpModel& model) const;

  /// Like Solve, but when `*warm` holds a valid basis the solver
  /// installs it and dual-pivots back to feasibility instead of running
  /// phase 1; any numerical trouble silently falls back to the cold
  /// path, so the result is always as trustworthy as Solve(model). On
  /// return `*warm` holds the final optimal basis (cleared when none is
  /// available, e.g. non-optimal outcomes).
  Solution Solve(const LpModel& model, WarmStart* warm) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace pcx

#endif  // PCX_SOLVER_SIMPLEX_H_
