#ifndef PCX_SOLVER_MILP_H_
#define PCX_SOLVER_MILP_H_

#include <cstddef>

#include "solver/lp_model.h"
#include "solver/simplex.h"

namespace pcx {

/// Best-first branch-and-bound MILP solver built on SimplexSolver.
/// Solves the mixed-integer programs of paper §4.2: maximize U'X subject
/// to ranged cardinality rows, X integer. The constraint matrices there
/// are 0/1 "interval" matrices, so LP relaxations are frequently
/// integral and the search tree stays tiny; nonetheless the solver is a
/// complete general-purpose MILP engine with node/iteration caps.
///
/// Each node hands its optimal basis to its children, so a child
/// relaxation starts warm and usually re-optimizes in a handful of dual
/// pivots instead of a full two-phase solve (see
/// SimplexSolver::WarmStart).
class BranchAndBoundSolver {
 public:
  struct Options {
    SimplexSolver::Options lp;
    size_t max_nodes = 100000;  ///< search-node budget
    double int_tol = 1e-6;      ///< integrality tolerance
    /// Relative gap at which a node is pruned against the incumbent.
    double gap_tol = 1e-9;
    /// Carry each node's optimal basis into its children (off = every
    /// node cold-solves its relaxation, the pre-overhaul behavior).
    bool use_warm_start = true;
  };

  BranchAndBoundSolver() : BranchAndBoundSolver(Options{}) {}
  explicit BranchAndBoundSolver(Options options)
      : options_(options), lp_solver_(options.lp) {}

  /// Solves `model` honoring its integrality flags. If no variable is
  /// integral this is a single LP solve.
  Solution Solve(const LpModel& model) const;

  /// Like Solve, but seeds the *root* relaxation from `*root_warm` and
  /// writes the root's optimal basis back on success. The §4.2 LPs are
  /// usually integral at the root (single-node trees), so the big
  /// repeated cost is root phase-1 — callers that solve the same
  /// constraint rows under changing objectives (MIN/MAX occupancy
  /// scans, the AVG binary search) chain their solves through this.
  Solution Solve(const LpModel& model,
                 SimplexSolver::WarmStart* root_warm) const;

  /// Number of branch-and-bound nodes explored in the last Solve call.
  size_t last_num_nodes() const { return last_num_nodes_; }
  /// LP relaxations solved / simplex pivots spent in the last Solve call
  /// (the SolveStats::lp_pivots feed).
  size_t last_lp_solves() const { return last_lp_solves_; }
  size_t last_lp_pivots() const { return last_lp_pivots_; }
  /// Relaxations that reused a parent basis in the last Solve call.
  size_t last_warm_solves() const { return last_warm_solves_; }

 private:
  Options options_;
  SimplexSolver lp_solver_;
  mutable size_t last_num_nodes_ = 0;
  mutable size_t last_lp_solves_ = 0;
  mutable size_t last_lp_pivots_ = 0;
  mutable size_t last_warm_solves_ = 0;
};

}  // namespace pcx

#endif  // PCX_SOLVER_MILP_H_
