#ifndef PCX_SOLVER_MILP_H_
#define PCX_SOLVER_MILP_H_

#include <cstddef>

#include "solver/lp_model.h"
#include "solver/simplex.h"

namespace pcx {

/// Best-first branch-and-bound MILP solver built on SimplexSolver.
/// Solves the mixed-integer programs of paper §4.2: maximize U'X subject
/// to ranged cardinality rows, X integer. The constraint matrices there
/// are 0/1 "interval" matrices, so LP relaxations are frequently
/// integral and the search tree stays tiny; nonetheless the solver is a
/// complete general-purpose MILP engine with node/iteration caps.
class BranchAndBoundSolver {
 public:
  struct Options {
    SimplexSolver::Options lp;
    size_t max_nodes = 100000;  ///< search-node budget
    double int_tol = 1e-6;      ///< integrality tolerance
    /// Relative gap at which a node is pruned against the incumbent.
    double gap_tol = 1e-9;
  };

  BranchAndBoundSolver() : BranchAndBoundSolver(Options{}) {}
  explicit BranchAndBoundSolver(Options options)
      : options_(options), lp_solver_(options.lp) {}

  /// Solves `model` honoring its integrality flags. If no variable is
  /// integral this is a single LP solve.
  Solution Solve(const LpModel& model) const;

  /// Number of branch-and-bound nodes explored in the last Solve call.
  size_t last_num_nodes() const { return last_num_nodes_; }

 private:
  Options options_;
  SimplexSolver lp_solver_;
  mutable size_t last_num_nodes_ = 0;
};

}  // namespace pcx

#endif  // PCX_SOLVER_MILP_H_
