#ifndef PCX_SOLVER_LP_MODEL_H_
#define PCX_SOLVER_LP_MODEL_H_

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace pcx {

/// A ranged linear constraint: lo <= sum(coef_i * x_i) <= hi.
/// Either side may be infinite. lo == hi expresses an equality.
struct LinearConstraint {
  std::vector<std::pair<size_t, double>> terms;  ///< (variable, coefficient)
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
};

/// Sense of optimization.
enum class OptSense { kMaximize, kMinimize };

/// A linear (or, with integrality flags, mixed-integer) program:
///   opt  c'x
///   s.t. lo_j <= a_j'x <= hi_j     for each constraint j
///        var_lo_i <= x_i <= var_hi_i
///        x_i integer where integer_[i]
/// Variables default to [0, +inf) continuous.
class LpModel {
 public:
  LpModel() = default;

  /// Adds a variable with the given bounds and objective coefficient;
  /// returns its index.
  size_t AddVariable(double objective_coef, double lo = 0.0,
                     double hi = std::numeric_limits<double>::infinity(),
                     bool integer = false);

  /// Adds a ranged constraint; returns its index.
  size_t AddConstraint(LinearConstraint c);

  void set_sense(OptSense sense) { sense_ = sense; }
  OptSense sense() const { return sense_; }

  size_t num_variables() const { return objective_.size(); }
  size_t num_constraints() const { return constraints_.size(); }

  const std::vector<double>& objective() const { return objective_; }
  const std::vector<double>& var_lo() const { return var_lo_; }
  const std::vector<double>& var_hi() const { return var_hi_; }
  const std::vector<bool>& integer() const { return integer_; }
  const std::vector<LinearConstraint>& constraints() const {
    return constraints_;
  }

  /// Tightens the bounds of variable `v` (used by branch & bound).
  void SetVariableBounds(size_t v, double lo, double hi);

  /// True if any variable is flagged integer.
  bool has_integers() const;

  /// Debug dump.
  std::string ToString() const;

 private:
  OptSense sense_ = OptSense::kMaximize;
  std::vector<double> objective_;
  std::vector<double> var_lo_;
  std::vector<double> var_hi_;
  std::vector<bool> integer_;
  std::vector<LinearConstraint> constraints_;
};

/// Solver outcome.
enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

const char* SolveStatusToString(SolveStatus s);

/// Solution of an LP/MILP solve.
struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
  /// Simplex pivots spent (both phases; summed over the tree for MILP).
  size_t pivots = 0;
  /// True when the solve started from a caller-supplied basis instead of
  /// a cold phase-1.
  bool warm_used = false;
};

}  // namespace pcx

#endif  // PCX_SOLVER_LP_MODEL_H_
