#include "solver/lp_model.h"

#include <sstream>

#include "common/check.h"

namespace pcx {

size_t LpModel::AddVariable(double objective_coef, double lo, double hi,
                            bool integer) {
  PCX_CHECK_LE(lo, hi);
  objective_.push_back(objective_coef);
  var_lo_.push_back(lo);
  var_hi_.push_back(hi);
  integer_.push_back(integer);
  return objective_.size() - 1;
}

size_t LpModel::AddConstraint(LinearConstraint c) {
  PCX_CHECK_LE(c.lo, c.hi);
  for (const auto& [v, coef] : c.terms) {
    PCX_CHECK(v < num_variables()) << "constraint references unknown variable";
    (void)coef;
  }
  constraints_.push_back(std::move(c));
  return constraints_.size() - 1;
}

void LpModel::SetVariableBounds(size_t v, double lo, double hi) {
  PCX_CHECK(v < num_variables());
  PCX_CHECK_LE(lo, hi);
  var_lo_[v] = lo;
  var_hi_[v] = hi;
}

bool LpModel::has_integers() const {
  for (bool b : integer_) {
    if (b) return true;
  }
  return false;
}

std::string LpModel::ToString() const {
  std::ostringstream os;
  os << (sense_ == OptSense::kMaximize ? "max " : "min ");
  for (size_t i = 0; i < objective_.size(); ++i) {
    if (i > 0) os << " + ";
    os << objective_[i] << "*x" << i;
  }
  os << "\n";
  for (const auto& c : constraints_) {
    os << "  " << c.lo << " <= ";
    for (size_t t = 0; t < c.terms.size(); ++t) {
      if (t > 0) os << " + ";
      os << c.terms[t].second << "*x" << c.terms[t].first;
    }
    os << " <= " << c.hi << "\n";
  }
  for (size_t i = 0; i < objective_.size(); ++i) {
    os << "  x" << i << " in [" << var_lo_[i] << ", " << var_hi_[i] << "]"
       << (integer_[i] ? " integer" : "") << "\n";
  }
  return os.str();
}

const char* SolveStatusToString(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal:
      return "OPTIMAL";
    case SolveStatus::kInfeasible:
      return "INFEASIBLE";
    case SolveStatus::kUnbounded:
      return "UNBOUNDED";
    case SolveStatus::kIterationLimit:
      return "ITERATION_LIMIT";
  }
  return "?";
}

}  // namespace pcx
