#include "solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace pcx {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One normalized row a'y (cmp) rhs with cmp in {<=, >=, ==}.
enum class RowType { kLe, kGe, kEq };

struct Row {
  std::vector<double> a;  // dense coefficients over the shifted variables
  double b = 0.0;
  RowType type = RowType::kLe;
};

/// Full-tableau simplex working state.
struct Tableau {
  // rows x cols coefficient matrix; col layout: structural vars,
  // slack/surplus vars, artificial vars.
  std::vector<std::vector<double>> a;
  std::vector<double> b;       // rhs per row, kept >= 0
  std::vector<double> obj;     // reduced-cost row
  double obj_value = 0.0;      // objective of current basis
  std::vector<size_t> basis;   // basic variable per row
  size_t num_structural = 0;
  size_t first_artificial = 0;  // columns >= this are artificial
  size_t num_cols = 0;
};

void Pivot(Tableau* t, size_t row, size_t col) {
  const double p = t->a[row][col];
  PCX_DCHECK(std::fabs(p) > 1e-12);
  const double inv = 1.0 / p;
  for (double& v : t->a[row]) v *= inv;
  t->b[row] *= inv;
  for (size_t r = 0; r < t->a.size(); ++r) {
    if (r == row) continue;
    const double f = t->a[r][col];
    if (f == 0.0) continue;
    for (size_t c = 0; c < t->num_cols; ++c) t->a[r][c] -= f * t->a[row][c];
    t->a[r][col] = 0.0;  // avoid drift
    t->b[r] -= f * t->b[row];
    if (t->b[r] < 0.0 && t->b[r] > -1e-11) t->b[r] = 0.0;
  }
  const double f = t->obj[col];
  if (f != 0.0) {
    for (size_t c = 0; c < t->num_cols; ++c) t->obj[c] -= f * t->a[row][c];
    t->obj[col] = 0.0;
    t->obj_value -= f * t->b[row];
  }
  t->basis[row] = col;
}

/// Runs simplex iterations maximizing the current objective row.
/// `allow_col` masks columns that may enter the basis.
SolveStatus Iterate(Tableau* t, const std::vector<bool>& allow_col,
                    const SimplexSolver::Options& opts) {
  const size_t bland_threshold =
      static_cast<size_t>(opts.max_iterations) / 2;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    // Entering column: most positive reduced cost (Dantzig), switching
    // to Bland's rule (lowest index) if we run long enough that cycling
    // is conceivable.
    size_t enter = t->num_cols;
    const bool bland = static_cast<size_t>(iter) > bland_threshold;
    double best = opts.eps;
    for (size_t c = 0; c < t->num_cols; ++c) {
      if (!allow_col[c]) continue;
      if (t->obj[c] > best) {
        enter = c;
        if (bland) break;
        best = t->obj[c];
      }
    }
    if (enter == t->num_cols) return SolveStatus::kOptimal;

    // Leaving row: min ratio test; Bland tie-break on basis index.
    size_t leave = t->a.size();
    double best_ratio = kInf;
    for (size_t r = 0; r < t->a.size(); ++r) {
      const double coef = t->a[r][enter];
      if (coef > opts.eps) {
        const double ratio = t->b[r] / coef;
        if (ratio < best_ratio - opts.eps ||
            (ratio < best_ratio + opts.eps && leave != t->a.size() &&
             t->basis[r] < t->basis[leave])) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == t->a.size()) return SolveStatus::kUnbounded;
    Pivot(t, leave, enter);
  }
  return SolveStatus::kIterationLimit;
}

}  // namespace

Solution SimplexSolver::Solve(const LpModel& model) const {
  const size_t n = model.num_variables();
  const bool maximize = model.sense() == OptSense::kMaximize;

  // Shift variables so that y_i = x_i - lo_i >= 0.
  std::vector<double> shift(n);
  for (size_t i = 0; i < n; ++i) {
    PCX_CHECK(model.var_lo()[i] > -kInf)
        << "SimplexSolver requires finite variable lower bounds";
    shift[i] = model.var_lo()[i];
  }

  // Objective over shifted variables (constant folded back at the end).
  std::vector<double> c(n);
  double c0 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    c[i] = maximize ? model.objective()[i] : -model.objective()[i];
    c0 += c[i] * shift[i];
  }

  // Collect normalized rows.
  std::vector<Row> rows;
  for (const auto& cons : model.constraints()) {
    std::vector<double> a(n, 0.0);
    double base = 0.0;
    for (const auto& [v, coef] : cons.terms) {
      a[v] += coef;
      base += coef * shift[v];
    }
    if (cons.lo == cons.hi) {
      rows.push_back({a, cons.lo - base, RowType::kEq});
      continue;
    }
    if (cons.hi < kInf) rows.push_back({a, cons.hi - base, RowType::kLe});
    if (cons.lo > -kInf) rows.push_back({a, cons.lo - base, RowType::kGe});
  }
  // Finite upper bounds become rows (lower bounds are the shift).
  for (size_t i = 0; i < n; ++i) {
    if (model.var_hi()[i] < kInf) {
      std::vector<double> a(n, 0.0);
      a[i] = 1.0;
      rows.push_back({a, model.var_hi()[i] - shift[i], RowType::kLe});
    }
  }

  const size_t m = rows.size();
  // Column layout: n structural + m slack/surplus (at most one per row)
  // + up to m artificials.
  Tableau t;
  t.num_structural = n;
  size_t num_slack = 0;
  for (const Row& r : rows) {
    if (r.type != RowType::kEq) ++num_slack;
  }
  t.first_artificial = n + num_slack;
  t.num_cols = t.first_artificial;  // artificials appended below
  t.a.assign(m, std::vector<double>(n + num_slack, 0.0));
  t.b.assign(m, 0.0);
  t.basis.assign(m, SIZE_MAX);

  size_t slack_idx = n;
  std::vector<size_t> needs_artificial;
  for (size_t r = 0; r < m; ++r) {
    Row row = rows[r];
    double sign = 1.0;
    if (row.b < 0.0) {  // normalize rhs >= 0
      sign = -1.0;
      row.b = -row.b;
      for (double& v : row.a) v = -v;
      if (row.type == RowType::kLe) {
        row.type = RowType::kGe;
      } else if (row.type == RowType::kGe) {
        row.type = RowType::kLe;
      }
    }
    (void)sign;
    for (size_t ccol = 0; ccol < n; ++ccol) t.a[r][ccol] = row.a[ccol];
    t.b[r] = row.b;
    if (row.type == RowType::kLe) {
      t.a[r][slack_idx] = 1.0;
      t.basis[r] = slack_idx;  // slack starts basic
      ++slack_idx;
    } else if (row.type == RowType::kGe) {
      t.a[r][slack_idx] = -1.0;  // surplus
      ++slack_idx;
      needs_artificial.push_back(r);
    } else {
      needs_artificial.push_back(r);
    }
  }
  PCX_CHECK_EQ(slack_idx, n + num_slack);

  // Append artificial columns.
  const size_t num_art = needs_artificial.size();
  t.num_cols = t.first_artificial + num_art;
  for (auto& arow : t.a) arow.resize(t.num_cols, 0.0);
  for (size_t k = 0; k < num_art; ++k) {
    const size_t r = needs_artificial[k];
    const size_t col = t.first_artificial + k;
    t.a[r][col] = 1.0;
    t.basis[r] = col;
  }

  std::vector<bool> allow(t.num_cols, true);

  Solution out;
  // ---- Phase 1: maximize -sum(artificials). ----
  if (num_art > 0) {
    t.obj.assign(t.num_cols, 0.0);
    t.obj_value = 0.0;
    for (size_t k = 0; k < num_art; ++k) t.obj[t.first_artificial + k] = -1.0;
    // Canonicalize: basis columns must have zero reduced cost.
    for (size_t r = 0; r < m; ++r) {
      const size_t bcol = t.basis[r];
      const double f = t.obj[bcol];
      if (f != 0.0) {
        for (size_t cc = 0; cc < t.num_cols; ++cc) t.obj[cc] -= f * t.a[r][cc];
        t.obj[bcol] = 0.0;
        t.obj_value -= f * t.b[r];
      }
    }
    const SolveStatus p1 = Iterate(&t, allow, options_);
    if (p1 == SolveStatus::kIterationLimit) {
      out.status = SolveStatus::kIterationLimit;
      return out;
    }
    // Current phase-1 objective (max of -sum(artificials)) is
    // -obj_value; it must be ~0 for feasibility.
    if (t.obj_value > options_.feas_tol) {
      out.status = SolveStatus::kInfeasible;
      return out;
    }
    // Pivot any artificial still in the basis out (value must be ~0).
    for (size_t r = 0; r < m; ++r) {
      if (t.basis[r] >= t.first_artificial) {
        size_t enter = t.num_cols;
        for (size_t cc = 0; cc < t.first_artificial; ++cc) {
          if (std::fabs(t.a[r][cc]) > options_.eps) {
            enter = cc;
            break;
          }
        }
        if (enter != t.num_cols) Pivot(&t, r, enter);
        // else: redundant row; the artificial stays basic at value 0 and
        // is barred from increasing because its column can't re-enter.
      }
    }
    for (size_t k = 0; k < num_art; ++k) {
      allow[t.first_artificial + k] = false;
    }
  }

  // ---- Phase 2: maximize the real objective. ----
  t.obj.assign(t.num_cols, 0.0);
  for (size_t i = 0; i < n; ++i) t.obj[i] = c[i];
  t.obj_value = 0.0;
  for (size_t r = 0; r < m; ++r) {
    const size_t bcol = t.basis[r];
    const double f = t.obj[bcol];
    if (f != 0.0) {
      for (size_t cc = 0; cc < t.num_cols; ++cc) t.obj[cc] -= f * t.a[r][cc];
      t.obj[bcol] = 0.0;
      t.obj_value -= f * t.b[r];
    }
  }
  const SolveStatus p2 = Iterate(&t, allow, options_);
  if (p2 == SolveStatus::kUnbounded) {
    out.status = SolveStatus::kUnbounded;
    return out;
  }
  if (p2 == SolveStatus::kIterationLimit) {
    out.status = SolveStatus::kIterationLimit;
    return out;
  }

  out.status = SolveStatus::kOptimal;
  out.x.assign(n, 0.0);
  for (size_t r = 0; r < m; ++r) {
    if (t.basis[r] < n) out.x[t.basis[r]] = t.b[r];
  }
  for (size_t i = 0; i < n; ++i) out.x[i] += shift[i];
  // -obj_value is z in canonical form bookkeeping: after canonicalizing,
  // obj_value accumulated -(c_B' b). The optimum of the shifted problem
  // is -obj_value; undo the shift constant and the minimize negation.
  double z = -t.obj_value + c0;
  out.objective = maximize ? z : -z;
  return out;
}

}  // namespace pcx
