#include "solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace pcx {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One normalized row a'y (cmp) rhs with cmp in {<=, >=, ==}.
enum class RowType { kLe, kGe, kEq };

struct Row {
  std::vector<double> a;  // dense coefficients over the shifted variables
  double b = 0.0;
  RowType type = RowType::kLe;
  uint32_t id = 0;  // semantic row id (see SimplexSolver::WarmStart)
};

/// Materializes the model's rows over the shifted variables y = x - lo.
/// Row ids follow the WarmStart convention so a basis extracted from one
/// model can be re-installed on a bound-edited sibling.
std::vector<Row> BuildRows(const LpModel& model,
                           const std::vector<double>& shift) {
  const size_t n = model.num_variables();
  std::vector<Row> rows;
  const auto& constraints = model.constraints();
  for (size_t j = 0; j < constraints.size(); ++j) {
    const auto& cons = constraints[j];
    std::vector<double> a(n, 0.0);
    double base = 0.0;
    for (const auto& [v, coef] : cons.terms) {
      a[v] += coef;
      base += coef * shift[v];
    }
    if (cons.lo == cons.hi) {
      rows.push_back({std::move(a), cons.lo - base, RowType::kEq,
                      static_cast<uint32_t>(2 * j)});
      continue;
    }
    if (cons.hi < kInf) {
      rows.push_back(
          {a, cons.hi - base, RowType::kLe, static_cast<uint32_t>(2 * j)});
    }
    if (cons.lo > -kInf) {
      rows.push_back({std::move(a), cons.lo - base, RowType::kGe,
                      static_cast<uint32_t>(2 * j + 1)});
    }
  }
  // Finite upper bounds become rows (lower bounds are the shift).
  for (size_t i = 0; i < n; ++i) {
    if (model.var_hi()[i] < kInf) {
      std::vector<double> a(n, 0.0);
      a[i] = 1.0;
      rows.push_back({std::move(a), model.var_hi()[i] - shift[i], RowType::kLe,
                      static_cast<uint32_t>(2 * constraints.size() + i)});
    }
  }
  return rows;
}

/// Full-tableau simplex working state.
struct Tableau {
  // rows x cols coefficient matrix; col layout: structural vars,
  // slack/surplus vars, artificial vars.
  std::vector<std::vector<double>> a;
  std::vector<double> b;       // rhs per row, kept >= 0
  std::vector<double> obj;     // reduced-cost row
  double obj_value = 0.0;      // objective of current basis
  std::vector<size_t> basis;   // basic variable per row
  size_t num_structural = 0;
  size_t first_artificial = 0;  // columns >= this are artificial
  size_t num_cols = 0;
};

void Pivot(Tableau* t, size_t row, size_t col) {
  const double p = t->a[row][col];
  PCX_DCHECK(std::fabs(p) > 1e-12);
  const double inv = 1.0 / p;
  for (double& v : t->a[row]) v *= inv;
  t->b[row] *= inv;
  for (size_t r = 0; r < t->a.size(); ++r) {
    if (r == row) continue;
    const double f = t->a[r][col];
    if (f == 0.0) continue;
    for (size_t c = 0; c < t->num_cols; ++c) t->a[r][c] -= f * t->a[row][c];
    t->a[r][col] = 0.0;  // avoid drift
    t->b[r] -= f * t->b[row];
    if (t->b[r] < 0.0 && t->b[r] > -1e-11) t->b[r] = 0.0;
  }
  const double f = t->obj[col];
  if (f != 0.0) {
    for (size_t c = 0; c < t->num_cols; ++c) t->obj[c] -= f * t->a[row][c];
    t->obj[col] = 0.0;
    t->obj_value -= f * t->b[row];
  }
  t->basis[row] = col;
}

/// Runs simplex iterations maximizing the current objective row.
/// `allow_col` masks columns that may enter the basis. Each pivot taken
/// is added to `*pivots`.
SolveStatus Iterate(Tableau* t, const std::vector<bool>& allow_col,
                    const SimplexSolver::Options& opts, size_t* pivots) {
  const size_t bland_threshold =
      static_cast<size_t>(opts.max_iterations) / 2;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    // Entering column: most positive reduced cost (Dantzig), switching
    // to Bland's rule (lowest index) if we run long enough that cycling
    // is conceivable.
    size_t enter = t->num_cols;
    const bool bland = static_cast<size_t>(iter) > bland_threshold;
    double best = opts.eps;
    for (size_t c = 0; c < t->num_cols; ++c) {
      if (!allow_col[c]) continue;
      if (t->obj[c] > best) {
        enter = c;
        if (bland) break;
        best = t->obj[c];
      }
    }
    if (enter == t->num_cols) return SolveStatus::kOptimal;

    // Leaving row: min ratio test; Bland tie-break on basis index.
    size_t leave = t->a.size();
    double best_ratio = kInf;
    for (size_t r = 0; r < t->a.size(); ++r) {
      const double coef = t->a[r][enter];
      if (coef > opts.eps) {
        const double ratio = t->b[r] / coef;
        if (ratio < best_ratio - opts.eps ||
            (ratio < best_ratio + opts.eps && leave != t->a.size() &&
             t->basis[r] < t->basis[leave])) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == t->a.size()) return SolveStatus::kUnbounded;
    Pivot(t, leave, enter);
    ++*pivots;
  }
  return SolveStatus::kIterationLimit;
}

/// Writes the tableau's final basis into `warm` using semantic ids.
/// `slack_owner[k]` is the row id owning slack column num_structural + k.
/// A basis still containing an artificial is not portable; the warm
/// start is cleared instead.
void ExtractWarmStart(const Tableau& t, const std::vector<uint32_t>& row_ids,
                      const std::vector<uint32_t>& slack_owner,
                      SimplexSolver::WarmStart* warm) {
  warm->Clear();
  for (size_t r = 0; r < t.a.size(); ++r) {
    const size_t bcol = t.basis[r];
    uint32_t semantic;
    if (bcol < t.num_structural) {
      semantic = static_cast<uint32_t>(bcol);
    } else if (bcol < t.first_artificial) {
      semantic = static_cast<uint32_t>(t.num_structural) +
                 slack_owner[bcol - t.num_structural];
    } else {
      warm->Clear();
      return;
    }
    warm->basis.push_back({row_ids[r], semantic});
  }
}

/// Attempts the warm-started path: install the carried basis with
/// Gauss-Jordan pivots, restore primal feasibility with dual simplex,
/// then polish with the primal. Returns nullopt whenever anything —
/// basis mismatch, numerical drift, a failed verification — suggests
/// the cold path should decide instead. kInfeasible/kUnbounded returns
/// are exact conclusions, not fallbacks.
std::optional<Solution> TryWarmSolve(const LpModel& model,
                                     const std::vector<Row>& rows,
                                     const std::vector<double>& shift,
                                     const std::vector<double>& c,
                                     const SimplexSolver::Options& options,
                                     SimplexSolver::WarmStart* warm) {
  const size_t n = model.num_variables();
  const size_t m = rows.size();

  Tableau t;
  t.num_structural = n;
  size_t num_slack = 0;
  for (const Row& r : rows) {
    if (r.type != RowType::kEq) ++num_slack;
  }
  t.first_artificial = n + num_slack;  // no artificials on the warm path
  t.num_cols = t.first_artificial;
  t.a.assign(m, std::vector<double>(t.num_cols, 0.0));
  t.b.assign(m, 0.0);
  t.basis.assign(m, SIZE_MAX);

  std::vector<uint32_t> row_ids(m);
  std::vector<uint32_t> slack_owner(num_slack);
  std::vector<size_t> slack_col(m, SIZE_MAX);
  std::unordered_map<uint32_t, size_t> row_by_id;
  size_t next_slack = n;
  for (size_t r = 0; r < m; ++r) {
    const Row& row = rows[r];
    row_ids[r] = row.id;
    row_by_id.emplace(row.id, r);
    for (size_t i = 0; i < n; ++i) t.a[r][i] = row.a[i];
    t.b[r] = row.b;
    if (row.type != RowType::kEq) {
      t.a[r][next_slack] = row.type == RowType::kLe ? 1.0 : -1.0;
      slack_owner[next_slack - n] = row.id;
      slack_col[r] = next_slack;
      ++next_slack;
    }
  }

  // Resolve the carried basis to concrete columns. Rows the warm start
  // does not know (a variable bound that just became finite) default to
  // their own slack — exactly the "extend the basis block-diagonally"
  // step that keeps the parent's reduced costs dual feasible.
  std::unordered_map<uint32_t, uint32_t> warm_by_row;
  for (const auto& [row_id, col] : warm->basis) warm_by_row.emplace(row_id, col);
  std::vector<size_t> desired(m, SIZE_MAX);
  std::vector<bool> claimed(t.num_cols, false);
  for (size_t r = 0; r < m; ++r) {
    size_t col;
    const auto it = warm_by_row.find(row_ids[r]);
    if (it != warm_by_row.end()) {
      const uint32_t semantic = it->second;
      if (semantic < n) {
        col = semantic;
      } else {
        const auto owner = row_by_id.find(semantic - static_cast<uint32_t>(n));
        if (owner == row_by_id.end()) return std::nullopt;
        col = slack_col[owner->second];
        if (col == SIZE_MAX) return std::nullopt;
      }
    } else {
      col = slack_col[r];  // new row: its slack joins the basis
      if (col == SIZE_MAX) return std::nullopt;
    }
    if (claimed[col]) return std::nullopt;
    claimed[col] = true;
    desired[r] = col;
  }

  // Phase-2 objective first, so the install pivots canonicalize the
  // reduced costs as they go.
  t.obj.assign(t.num_cols, 0.0);
  for (size_t i = 0; i < n; ++i) t.obj[i] = c[i];
  t.obj_value = 0.0;

  Solution out;
  out.warm_used = true;

  // Gauss-Jordan basis install: pivot each desired column into its row,
  // in whatever order keeps the pivot elements well-conditioned. Each
  // install is a full-tableau elimination — the same work as a simplex
  // pivot — so it counts toward Solution::pivots to keep the
  // warm-vs-cold lp_pivots comparison honest.
  std::vector<bool> installed(m, false);
  for (size_t remaining = m; remaining > 0;) {
    size_t progress = 0;
    for (size_t r = 0; r < m; ++r) {
      if (installed[r]) continue;
      if (std::fabs(t.a[r][desired[r]]) > 1e-7) {
        Pivot(&t, r, desired[r]);
        ++out.pivots;
        installed[r] = true;
        ++progress;
      }
    }
    if (progress == 0) return std::nullopt;  // singular / drifted basis
    remaining -= progress;
  }

  bool primal_infeasible = false;
  for (size_t r = 0; r < m; ++r) {
    if (t.b[r] < -options.feas_tol) {
      primal_infeasible = true;
      break;
    }
  }
  if (primal_infeasible) {
    // The dual simplex needs dual-feasible reduced costs to preserve.
    for (size_t col = 0; col < t.num_cols; ++col) {
      if (t.obj[col] > 1e-7) return std::nullopt;
    }
    for (int iter = 0;; ++iter) {
      if (iter >= options.max_iterations) return std::nullopt;
      // Leaving row: most negative rhs.
      size_t leave = m;
      double most_negative = -options.feas_tol;
      for (size_t r = 0; r < m; ++r) {
        if (t.b[r] < most_negative) {
          most_negative = t.b[r];
          leave = r;
        }
      }
      if (leave == m) break;  // primal feasible again
      // Entering column: dual ratio test over negative row entries.
      // Only a strictly better ratio replaces the incumbent, so ties
      // keep the lowest column index (Bland-style) by construction.
      size_t enter = t.num_cols;
      double best_ratio = kInf;
      for (size_t col = 0; col < t.num_cols; ++col) {
        const double coef = t.a[leave][col];
        if (coef < -options.eps) {
          const double ratio = t.obj[col] / coef;  // >= 0: both <= 0
          if (ratio < best_ratio - options.eps) {
            best_ratio = ratio;
            enter = col;
          }
        }
      }
      if (enter == t.num_cols) {
        // b[leave] < 0 with an all-nonnegative row: no feasible point.
        out.status = SolveStatus::kInfeasible;
        return out;
      }
      Pivot(&t, leave, enter);
      ++out.pivots;
    }
    for (size_t r = 0; r < m; ++r) {
      if (t.b[r] < 0.0) t.b[r] = 0.0;  // clamp feas_tol-sized residue
    }
  }

  const std::vector<bool> allow(t.num_cols, true);
  const SolveStatus p2 = Iterate(&t, allow, options, &out.pivots);
  if (p2 == SolveStatus::kUnbounded) {
    out.status = SolveStatus::kUnbounded;
    return out;
  }
  if (p2 == SolveStatus::kIterationLimit) return std::nullopt;

  out.status = SolveStatus::kOptimal;
  out.x.assign(n, 0.0);
  for (size_t r = 0; r < m; ++r) {
    if (t.basis[r] < n) out.x[t.basis[r]] = t.b[r];
  }

  // Cheap certificate against numerical drift: the recovered point must
  // satisfy the original rows; otherwise discard the warm attempt.
  for (const Row& row : rows) {
    double lhs = 0.0;
    for (size_t i = 0; i < n; ++i) lhs += row.a[i] * out.x[i];
    const double tol = 1e-6 * std::max(1.0, std::fabs(row.b));
    const bool ok = row.type == RowType::kLe   ? lhs <= row.b + tol
                    : row.type == RowType::kGe ? lhs >= row.b - tol
                                               : std::fabs(lhs - row.b) <= tol;
    if (!ok) return std::nullopt;
  }
  for (size_t i = 0; i < n; ++i) {
    if (out.x[i] < -1e-9) return std::nullopt;
    out.x[i] += shift[i];
  }
  double z = 0.0;
  for (size_t i = 0; i < n; ++i) z += model.objective()[i] * out.x[i];
  out.objective = z;

  ExtractWarmStart(t, row_ids, slack_owner, warm);
  return out;
}

/// Cold two-phase solve over prebuilt rows; fills `warm` (when given)
/// with the final basis.
Solution ColdSolve(const LpModel& model, std::vector<Row> rows,
                   const std::vector<double>& shift,
                   const std::vector<double>& c, double c0,
                   const SimplexSolver::Options& options,
                   SimplexSolver::WarmStart* warm) {
  const size_t n = model.num_variables();
  const bool maximize = model.sense() == OptSense::kMaximize;
  const size_t m = rows.size();

  // Column layout: n structural + m slack/surplus (at most one per row)
  // + up to m artificials.
  Tableau t;
  t.num_structural = n;
  size_t num_slack = 0;
  for (const Row& r : rows) {
    if (r.type != RowType::kEq) ++num_slack;
  }
  t.first_artificial = n + num_slack;
  t.num_cols = t.first_artificial;  // artificials appended below
  t.a.assign(m, std::vector<double>(n + num_slack, 0.0));
  t.b.assign(m, 0.0);
  t.basis.assign(m, SIZE_MAX);

  std::vector<uint32_t> row_ids(m);
  std::vector<uint32_t> slack_owner(num_slack);
  size_t slack_idx = n;
  std::vector<size_t> needs_artificial;
  for (size_t r = 0; r < m; ++r) {
    Row row = rows[r];
    row_ids[r] = row.id;
    if (row.b < 0.0) {  // normalize rhs >= 0
      row.b = -row.b;
      for (double& v : row.a) v = -v;
      if (row.type == RowType::kLe) {
        row.type = RowType::kGe;
      } else if (row.type == RowType::kGe) {
        row.type = RowType::kLe;
      }
    }
    for (size_t ccol = 0; ccol < n; ++ccol) t.a[r][ccol] = row.a[ccol];
    t.b[r] = row.b;
    if (row.type == RowType::kLe) {
      t.a[r][slack_idx] = 1.0;
      t.basis[r] = slack_idx;  // slack starts basic
      slack_owner[slack_idx - n] = row.id;
      ++slack_idx;
    } else if (row.type == RowType::kGe) {
      t.a[r][slack_idx] = -1.0;  // surplus
      slack_owner[slack_idx - n] = row.id;
      ++slack_idx;
      needs_artificial.push_back(r);
    } else {
      needs_artificial.push_back(r);
    }
  }
  PCX_CHECK_EQ(slack_idx, n + num_slack);

  // Append artificial columns.
  const size_t num_art = needs_artificial.size();
  t.num_cols = t.first_artificial + num_art;
  for (auto& arow : t.a) arow.resize(t.num_cols, 0.0);
  for (size_t k = 0; k < num_art; ++k) {
    const size_t r = needs_artificial[k];
    const size_t col = t.first_artificial + k;
    t.a[r][col] = 1.0;
    t.basis[r] = col;
  }

  std::vector<bool> allow(t.num_cols, true);

  Solution out;
  // ---- Phase 1: maximize -sum(artificials). ----
  if (num_art > 0) {
    t.obj.assign(t.num_cols, 0.0);
    t.obj_value = 0.0;
    for (size_t k = 0; k < num_art; ++k) t.obj[t.first_artificial + k] = -1.0;
    // Canonicalize: basis columns must have zero reduced cost.
    for (size_t r = 0; r < m; ++r) {
      const size_t bcol = t.basis[r];
      const double f = t.obj[bcol];
      if (f != 0.0) {
        for (size_t cc = 0; cc < t.num_cols; ++cc) t.obj[cc] -= f * t.a[r][cc];
        t.obj[bcol] = 0.0;
        t.obj_value -= f * t.b[r];
      }
    }
    const SolveStatus p1 = Iterate(&t, allow, options, &out.pivots);
    if (p1 == SolveStatus::kIterationLimit) {
      out.status = SolveStatus::kIterationLimit;
      return out;
    }
    // Current phase-1 objective (max of -sum(artificials)) is
    // -obj_value; it must be ~0 for feasibility.
    if (t.obj_value > options.feas_tol) {
      out.status = SolveStatus::kInfeasible;
      return out;
    }
    // Pivot any artificial still in the basis out (value must be ~0).
    for (size_t r = 0; r < m; ++r) {
      if (t.basis[r] >= t.first_artificial) {
        size_t enter = t.num_cols;
        for (size_t cc = 0; cc < t.first_artificial; ++cc) {
          if (std::fabs(t.a[r][cc]) > options.eps) {
            enter = cc;
            break;
          }
        }
        if (enter != t.num_cols) Pivot(&t, r, enter);
        // else: redundant row; the artificial stays basic at value 0 and
        // is barred from increasing because its column can't re-enter.
      }
    }
    for (size_t k = 0; k < num_art; ++k) {
      allow[t.first_artificial + k] = false;
    }
  }

  // ---- Phase 2: maximize the real objective. ----
  t.obj.assign(t.num_cols, 0.0);
  for (size_t i = 0; i < n; ++i) t.obj[i] = c[i];
  t.obj_value = 0.0;
  for (size_t r = 0; r < m; ++r) {
    const size_t bcol = t.basis[r];
    const double f = t.obj[bcol];
    if (f != 0.0) {
      for (size_t cc = 0; cc < t.num_cols; ++cc) t.obj[cc] -= f * t.a[r][cc];
      t.obj[bcol] = 0.0;
      t.obj_value -= f * t.b[r];
    }
  }
  const SolveStatus p2 = Iterate(&t, allow, options, &out.pivots);
  if (p2 == SolveStatus::kUnbounded) {
    out.status = SolveStatus::kUnbounded;
    return out;
  }
  if (p2 == SolveStatus::kIterationLimit) {
    out.status = SolveStatus::kIterationLimit;
    return out;
  }

  out.status = SolveStatus::kOptimal;
  out.x.assign(n, 0.0);
  for (size_t r = 0; r < m; ++r) {
    if (t.basis[r] < n) out.x[t.basis[r]] = t.b[r];
  }
  for (size_t i = 0; i < n; ++i) out.x[i] += shift[i];
  // -obj_value is z in canonical form bookkeeping: after canonicalizing,
  // obj_value accumulated -(c_B' b). The optimum of the shifted problem
  // is -obj_value; undo the shift constant and the minimize negation.
  double z = -t.obj_value + c0;
  out.objective = maximize ? z : -z;
  if (warm != nullptr) ExtractWarmStart(t, row_ids, slack_owner, warm);
  return out;
}

}  // namespace

Solution SimplexSolver::Solve(const LpModel& model) const {
  return Solve(model, nullptr);
}

Solution SimplexSolver::Solve(const LpModel& model, WarmStart* warm) const {
  const size_t n = model.num_variables();
  const bool maximize = model.sense() == OptSense::kMaximize;

  // Shift variables so that y_i = x_i - lo_i >= 0.
  std::vector<double> shift(n);
  for (size_t i = 0; i < n; ++i) {
    PCX_CHECK(model.var_lo()[i] > -kInf)
        << "SimplexSolver requires finite variable lower bounds";
    shift[i] = model.var_lo()[i];
  }

  // Objective over shifted variables (constant folded back at the end).
  std::vector<double> c(n);
  double c0 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    c[i] = maximize ? model.objective()[i] : -model.objective()[i];
    c0 += c[i] * shift[i];
  }

  std::vector<Row> rows = BuildRows(model, shift);

  if (warm != nullptr && warm->valid()) {
    auto result = TryWarmSolve(model, rows, shift, c, options_, warm);
    if (result.has_value()) {
      if (result->status != SolveStatus::kOptimal) warm->Clear();
      return *std::move(result);
    }
  }
  if (warm != nullptr) warm->Clear();
  return ColdSolve(model, std::move(rows), shift, c, c0, options_, warm);
}

}  // namespace pcx
