#include "solver/milp.h"

#include <cmath>
#include <queue>
#include <vector>

#include "common/check.h"

namespace pcx {
namespace {

struct Node {
  // Variable bound overrides relative to the root model.
  std::vector<std::pair<size_t, std::pair<double, double>>> bounds;
  double lp_bound = 0.0;  // objective of the parent relaxation
  // Parent's optimal basis; the child dual-pivots from it.
  SimplexSolver::WarmStart warm;
};

/// Priority: explore the most promising bound first.
struct NodeOrder {
  bool maximize;
  bool operator()(const Node& a, const Node& b) const {
    return maximize ? a.lp_bound < b.lp_bound : a.lp_bound > b.lp_bound;
  }
};

/// Most-fractional branching variable, or SIZE_MAX if integral.
size_t PickBranchVariable(const LpModel& model, const std::vector<double>& x,
                          double int_tol) {
  size_t best = SIZE_MAX;
  double best_frac_dist = int_tol;
  for (size_t i = 0; i < model.num_variables(); ++i) {
    if (!model.integer()[i]) continue;
    const double frac = x[i] - std::floor(x[i]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_frac_dist) {
      best_frac_dist = dist;
      best = i;
    }
  }
  return best;
}

}  // namespace

Solution BranchAndBoundSolver::Solve(const LpModel& model) const {
  return Solve(model, nullptr);
}

Solution BranchAndBoundSolver::Solve(
    const LpModel& model, SimplexSolver::WarmStart* root_warm) const {
  last_num_nodes_ = 0;
  last_lp_solves_ = 0;
  last_lp_pivots_ = 0;
  last_warm_solves_ = 0;
  if (!model.has_integers()) {
    Solution sol = options_.use_warm_start && root_warm != nullptr
                       ? lp_solver_.Solve(model, root_warm)
                       : lp_solver_.Solve(model);
    ++last_lp_solves_;
    last_lp_pivots_ += sol.pivots;
    if (sol.warm_used) ++last_warm_solves_;
    return sol;
  }

  const bool maximize = model.sense() == OptSense::kMaximize;
  LpModel work = model;

  Solution incumbent;
  incumbent.status = SolveStatus::kInfeasible;
  double incumbent_obj =
      maximize ? -std::numeric_limits<double>::infinity()
               : std::numeric_limits<double>::infinity();
  auto better = [&](double a, double b) {
    return maximize ? a > b : a < b;
  };

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open(
      NodeOrder{maximize});
  Node root{{},
            maximize ? std::numeric_limits<double>::infinity()
                     : -std::numeric_limits<double>::infinity(),
            {}};
  if (options_.use_warm_start && root_warm != nullptr) {
    root.warm = *root_warm;  // seed the root from the previous solve
  }
  open.push(std::move(root));

  bool hit_limit = false;
  while (!open.empty()) {
    if (last_num_nodes_ >= options_.max_nodes) {
      hit_limit = true;
      break;
    }
    Node node = open.top();
    open.pop();
    ++last_num_nodes_;

    // Bound-based pruning against the incumbent.
    if (incumbent.status == SolveStatus::kOptimal &&
        !better(node.lp_bound,
                incumbent_obj + (maximize ? options_.gap_tol
                                          : -options_.gap_tol))) {
      continue;
    }

    // Apply the node's variable bounds on top of the root bounds.
    for (size_t i = 0; i < work.num_variables(); ++i) {
      work.SetVariableBounds(i, model.var_lo()[i], model.var_hi()[i]);
    }
    bool bounds_ok = true;
    for (const auto& [v, lh] : node.bounds) {
      const double lo = std::max(work.var_lo()[v], lh.first);
      const double hi = std::min(work.var_hi()[v], lh.second);
      if (lo > hi) {
        bounds_ok = false;
        break;
      }
      work.SetVariableBounds(v, lo, hi);
    }
    if (!bounds_ok) continue;

    SimplexSolver::WarmStart warm;
    if (options_.use_warm_start) warm = std::move(node.warm);
    // With warm starts disabled, pass no basis slot at all so the cold
    // path skips basis extraction (the pre-overhaul cost profile).
    const Solution relax = options_.use_warm_start
                               ? lp_solver_.Solve(work, &warm)
                               : lp_solver_.Solve(work);
    ++last_lp_solves_;
    last_lp_pivots_ += relax.pivots;
    if (relax.warm_used) ++last_warm_solves_;
    if (node.bounds.empty() && root_warm != nullptr &&
        options_.use_warm_start) {
      *root_warm = warm;  // hand the root basis to the caller's next solve
    }
    if (relax.status == SolveStatus::kInfeasible) continue;
    if (relax.status == SolveStatus::kUnbounded) {
      // An unbounded relaxation at the root means the MILP is unbounded
      // too (our feasible cones contain integer rays).
      Solution out;
      out.status = SolveStatus::kUnbounded;
      return out;
    }
    if (relax.status == SolveStatus::kIterationLimit) {
      hit_limit = true;
      continue;
    }
    if (incumbent.status == SolveStatus::kOptimal &&
        !better(relax.objective, incumbent_obj)) {
      continue;  // dominated
    }

    const size_t branch_var =
        PickBranchVariable(model, relax.x, options_.int_tol);
    if (branch_var == SIZE_MAX) {
      // Integral: round off tolerance noise and accept as incumbent.
      Solution cand = relax;
      for (size_t i = 0; i < model.num_variables(); ++i) {
        if (model.integer()[i]) cand.x[i] = std::round(cand.x[i]);
      }
      if (incumbent.status != SolveStatus::kOptimal ||
          better(cand.objective, incumbent_obj)) {
        incumbent = cand;
        incumbent_obj = cand.objective;
      }
      continue;
    }

    const double v = relax.x[branch_var];
    Node down = node;
    down.lp_bound = relax.objective;
    down.bounds.push_back(
        {branch_var,
         {-std::numeric_limits<double>::infinity(), std::floor(v)}});
    Node up = node;
    up.lp_bound = relax.objective;
    up.bounds.push_back(
        {branch_var,
         {std::ceil(v), std::numeric_limits<double>::infinity()}});
    if (options_.use_warm_start) {
      down.warm = warm;  // this node's optimal basis, not the parent's
      up.warm = std::move(warm);
    }
    open.push(std::move(down));
    open.push(std::move(up));
  }

  if (incumbent.status == SolveStatus::kOptimal) return incumbent;
  Solution out;
  out.status = hit_limit ? SolveStatus::kIterationLimit
                         : SolveStatus::kInfeasible;
  return out;
}

}  // namespace pcx
