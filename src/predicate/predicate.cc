#include "predicate/predicate.h"

namespace pcx {

Predicate& Predicate::AddRange(size_t attr, double lo, double hi) {
  box_.Constrain(attr, Interval::Closed(lo, hi));
  return *this;
}

Predicate& Predicate::AddInterval(size_t attr, const Interval& iv) {
  box_.Constrain(attr, iv);
  return *this;
}

Predicate& Predicate::AddEquals(size_t attr, double value) {
  box_.Constrain(attr, Interval::Point(value));
  return *this;
}

Predicate& Predicate::AddAtLeast(size_t attr, double lo) {
  box_.Constrain(attr, Interval::AtLeast(lo));
  return *this;
}

Predicate& Predicate::AddAtMost(size_t attr, double hi) {
  box_.Constrain(attr, Interval::AtMost(hi));
  return *this;
}

Predicate& Predicate::AddLessThan(size_t attr, double hi) {
  box_.Constrain(attr, Interval::LessThan(hi));
  return *this;
}

Predicate& Predicate::AddGreaterThan(size_t attr, double lo) {
  box_.Constrain(attr, Interval::GreaterThan(lo));
  return *this;
}

StatusOr<Predicate> Predicate::RangeOn(const Schema& schema,
                                       const std::string& attr, double lo,
                                       double hi) {
  PCX_ASSIGN_OR_RETURN(const size_t col, schema.ColumnIndex(attr));
  Predicate p(schema.num_columns());
  p.AddRange(col, lo, hi);
  return p;
}

StatusOr<Predicate> Predicate::LabelEquals(const Schema& schema,
                                           const std::string& attr,
                                           const std::string& label) {
  PCX_ASSIGN_OR_RETURN(const size_t col, schema.ColumnIndex(attr));
  PCX_ASSIGN_OR_RETURN(const double code, schema.LabelCode(col, label));
  Predicate p(schema.num_columns());
  p.AddEquals(col, code);
  return p;
}

bool Predicate::MatchesRow(const Table& table, size_t r) const {
  for (size_t c = 0; c < box_.num_attrs(); ++c) {
    if (box_.dim(c).is_unbounded()) continue;
    if (!box_.dim(c).Contains(table.At(r, c))) return false;
  }
  return true;
}

std::vector<AttrDomain> DomainsFromSchema(const Schema& schema) {
  std::vector<AttrDomain> out(schema.num_columns());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = schema.column(i).type == ColumnType::kCategorical
                 ? AttrDomain::kInteger
                 : AttrDomain::kContinuous;
  }
  return out;
}

}  // namespace pcx
