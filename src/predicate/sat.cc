#include "predicate/sat.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace pcx {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Byte-encodes one interval (bit patterns of the endpoints plus the
/// strictness flags) into a memoization key.
void AppendIntervalKey(const Interval& iv, std::string* out) {
  char buf[18];
  std::memcpy(buf, &iv.lo, 8);
  std::memcpy(buf + 8, &iv.hi, 8);
  buf[16] = iv.lo_strict ? 1 : 0;
  buf[17] = iv.hi_strict ? 1 : 0;
  out->append(buf, sizeof(buf));
}

/// Any total order over intervals, used only to canonicalize the order
/// of the negated list (equal sets must sort identically).
bool IntervalLess(const Interval& a, const Interval& b) {
  if (a.lo != b.lo) return a.lo < b.lo;
  if (a.hi != b.hi) return a.hi < b.hi;
  if (a.lo_strict != b.lo_strict) return a.lo_strict < b.lo_strict;
  return a.hi_strict < b.hi_strict;
}

/// Three-way compare of two boxes *as clipped to `positive`*, computing
/// the clipped intervals on the fly instead of materializing boxes.
int CompareClipped(const Box& a, const Box& b, const Box& positive) {
  for (size_t d = 0; d < positive.num_attrs(); ++d) {
    const Interval ia = a.dim(d).Intersect(positive.dim(d));
    const Interval ib = b.dim(d).Intersect(positive.dim(d));
    if (ia == ib) continue;
    return IntervalLess(ia, ib) ? -1 : 1;
  }
  return 0;
}

}  // namespace

std::vector<bool> SatChecker::IsSatisfiableMany(
    std::span<const CellExpr> cells) {
  std::vector<bool> out;
  out.reserve(cells.size());
  for (const CellExpr& cell : cells) out.push_back(IsSatisfiable(cell));
  return out;
}

bool IntervalSatChecker::CanonicalizeInto(const CellExpr& cell) {
  if (cell.positive.IsEmpty(domains_)) return false;
  filtered_.clear();
  for (const Box& n : cell.negated) {
    if (cell.positive.IntersectionEmpty(n, domains_)) continue;
    if (n.Covers(cell.positive)) return false;  // swallows the region
    filtered_.push_back(&n);
  }
  // Sorting by the clip to the positive region makes equal negation
  // *sets* key-identical no matter the order the DFS accumulated them
  // in; duplicates (distinct predicates clipping to the same region)
  // collapse. Clips are compared lazily — nothing is materialized.
  const Box& positive = cell.positive;
  std::sort(filtered_.begin(), filtered_.end(),
            [&positive](const Box* a, const Box* b) {
              return CompareClipped(*a, *b, positive) < 0;
            });
  filtered_.erase(std::unique(filtered_.begin(), filtered_.end(),
                              [&positive](const Box* a, const Box* b) {
                                return CompareClipped(*a, *b, positive) == 0;
                              }),
                  filtered_.end());
  return true;
}

void IntervalSatChecker::BuildKey(const Box& positive) {
  scratch_key_.clear();
  const uint64_t num_neg = filtered_.size();
  scratch_key_.append(reinterpret_cast<const char*>(&num_neg), 8);
  for (size_t d = 0; d < positive.num_attrs(); ++d) {
    AppendIntervalKey(positive.dim(d), &scratch_key_);
  }
  for (const Box* n : filtered_) {
    for (size_t d = 0; d < positive.num_attrs(); ++d) {
      AppendIntervalKey(n->dim(d).Intersect(positive.dim(d)), &scratch_key_);
    }
  }
}

bool IntervalSatChecker::IsSatisfiable(const CellExpr& cell) {
  ++num_calls_;
  if (!CanonicalizeInto(cell)) return false;
  if (filtered_.empty()) return true;  // non-empty positive box
  BuildKey(cell.positive);
  if (const auto it = cache_.find(scratch_key_); it != cache_.end()) {
    ++num_cache_hits_;
    return it->second;
  }
  Box box = cell.positive;
  const bool sat = SubtractRec(box, 0, nullptr);
  if (cache_.size() < kMaxCacheEntries) cache_.emplace(scratch_key_, sat);
  return sat;
}

std::optional<std::vector<double>> IntervalSatChecker::FindWitness(
    const CellExpr& cell) {
  ++num_calls_;
  if (!CanonicalizeInto(cell)) return std::nullopt;
  if (filtered_.empty()) return cell.positive.Witness(domains_);
  // The cache can short-circuit UNSAT; a SAT verdict still needs the
  // subtraction re-run to produce the actual point.
  BuildKey(cell.positive);
  const auto it = cache_.find(scratch_key_);
  if (it != cache_.end() && !it->second) {
    ++num_cache_hits_;
    return std::nullopt;
  }
  std::vector<double> witness;
  Box box = cell.positive;
  const bool sat = SubtractRec(box, 0, &witness);
  if (it == cache_.end() && cache_.size() < kMaxCacheEntries) {
    cache_.emplace(scratch_key_, sat);
  }
  if (sat) return witness;
  return std::nullopt;
}

bool IntervalSatChecker::SubtractRec(Box& box, size_t from,
                                     std::vector<double>* witness) {
  // Invariant: no dimension of `box` is empty. Skip negated boxes that
  // do not intersect the current box at all.
  size_t i = from;
  while (i < filtered_.size() &&
         box.IntersectionEmpty(*filtered_[i], domains_)) {
    ++i;
  }
  if (i == filtered_.size()) {
    if (witness != nullptr) *witness = box.Witness(domains_);
    return true;
  }
  const Box& n = *filtered_[i];
  // Split `box` against `n` dimension by dimension. For each dimension d
  // constrained by n, the part of the current region strictly below or
  // strictly above n's interval cannot intersect n, so it only needs the
  // remaining negated boxes. The residue fully inside n on all
  // dimensions is swallowed by n and contributes nothing. The splits
  // mutate `box` in place (one interval at a time) and restore it on
  // exit; the slab restorations are tracked on undo_.
  const size_t undo_mark = undo_.size();
  bool found = false;
  for (size_t d = 0; d < n.num_attrs() && !found; ++d) {
    const Interval& nd = n.dim(d);
    if (nd.is_unbounded()) continue;
    const Interval saved = box.dim(d);
    // Part below nd: x < nd.lo (or <= if nd.lo is strict).
    const Interval below =
        saved.Intersect(Interval{-kInf, nd.lo, false, !nd.lo_strict});
    if (!below.IsEmpty(DomainOf(domains_, d))) {
      box.SetDim(d, below);
      if (SubtractRec(box, i + 1, witness)) {
        found = true;
      }
      box.SetDim(d, saved);
      if (found) break;
    }
    // Part above nd: x > nd.hi (or >= if nd.hi is strict).
    const Interval above =
        saved.Intersect(Interval{nd.hi, kInf, !nd.hi_strict, false});
    if (!above.IsEmpty(DomainOf(domains_, d))) {
      box.SetDim(d, above);
      if (SubtractRec(box, i + 1, witness)) {
        found = true;
      }
      box.SetDim(d, saved);
      if (found) break;
    }
    // Continue with the slab inside nd on dimension d.
    const Interval slab = saved.Intersect(nd);
    if (slab.IsEmpty(DomainOf(domains_, d))) {
      // The remaining region misses n entirely on dimension d — but the
      // below/above parts already covered all of it, so nothing is left.
      found = false;
      break;
    }
    undo_.push_back({d, saved});
    box.SetDim(d, slab);
  }
  // `box` (fully slabbed) is contained in n unless a split succeeded.
  for (size_t k = undo_.size(); k > undo_mark; --k) {
    box.SetDim(undo_[k - 1].first, undo_[k - 1].second);
  }
  undo_.resize(undo_mark);
  return found;
}

std::unique_ptr<SatChecker> MakeDefaultSatChecker(
    std::vector<AttrDomain> domains) {
  return std::make_unique<IntervalSatChecker>(std::move(domains));
}

}  // namespace pcx
