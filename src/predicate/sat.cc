#include "predicate/sat.h"

#include "common/check.h"

namespace pcx {

bool IntervalSatChecker::IsSatisfiable(const CellExpr& cell) {
  ++num_calls_;
  return SubtractNonEmpty(cell.positive, cell.negated, 0, nullptr);
}

std::optional<std::vector<double>> IntervalSatChecker::FindWitness(
    const CellExpr& cell) {
  ++num_calls_;
  std::vector<double> witness;
  if (SubtractNonEmpty(cell.positive, cell.negated, 0, &witness)) {
    return witness;
  }
  return std::nullopt;
}

bool IntervalSatChecker::SubtractNonEmpty(const Box& box,
                                          const std::vector<Box>& negated,
                                          size_t from,
                                          std::vector<double>* witness) {
  if (box.IsEmpty(domains_)) return false;
  // Skip negated boxes that do not intersect the current box at all.
  size_t i = from;
  while (i < negated.size() && box.Intersect(negated[i]).IsEmpty(domains_)) {
    ++i;
  }
  if (i == negated.size()) {
    if (witness != nullptr) *witness = box.Witness(domains_);
    return true;
  }
  const Box& n = negated[i];
  // Split `box` against `n` dimension by dimension. For each dimension d
  // constrained by n, the part of the current region strictly below or
  // strictly above n's interval cannot intersect n, so it only needs the
  // remaining negated boxes. The residue fully inside n on all
  // dimensions is swallowed by n and contributes nothing.
  Box current = box;
  for (size_t d = 0; d < n.num_attrs(); ++d) {
    const Interval& nd = n.dim(d);
    if (nd.is_unbounded()) continue;
    // Part below nd: x < nd.lo (or <= if nd.lo is strict).
    {
      Box below = current;
      below.Constrain(d, Interval{-std::numeric_limits<double>::infinity(),
                                  nd.lo, false, !nd.lo_strict});
      if (SubtractNonEmpty(below, negated, i + 1, witness)) return true;
    }
    // Part above nd: x > nd.hi (or >= if nd.hi is strict).
    {
      Box above = current;
      above.Constrain(d, Interval{nd.hi,
                                  std::numeric_limits<double>::infinity(),
                                  !nd.hi_strict, false});
      if (SubtractNonEmpty(above, negated, i + 1, witness)) return true;
    }
    // Continue with the slab inside nd on dimension d.
    current.Constrain(d, nd);
    if (current.IsEmpty(domains_)) return false;
  }
  // `current` is now contained in n, hence removed entirely.
  return false;
}

std::unique_ptr<SatChecker> MakeDefaultSatChecker(
    std::vector<AttrDomain> domains) {
  return std::make_unique<IntervalSatChecker>(std::move(domains));
}

}  // namespace pcx
