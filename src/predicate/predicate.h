#ifndef PCX_PREDICATE_PREDICATE_H_
#define PCX_PREDICATE_PREDICATE_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "predicate/box.h"
#include "relation/schema.h"
#include "relation/table.h"

namespace pcx {

/// A conjunctive predicate over the attributes of a schema: a Box plus
/// convenience builders that resolve column names and categorical
/// labels. This is the ψ of a predicate-constraint (paper §3.1) and also
/// the WHERE clause of the supported aggregate queries.
class Predicate {
 public:
  Predicate() = default;
  /// The TRUE predicate over `num_attrs` attributes.
  explicit Predicate(size_t num_attrs) : box_(num_attrs) {}
  /// Wraps an existing box.
  explicit Predicate(Box box) : box_(std::move(box)) {}

  /// Builders (each returns *this for chaining). All constraints are
  /// conjoined onto the predicate.
  Predicate& AddRange(size_t attr, double lo, double hi);   ///< lo <= a <= hi
  Predicate& AddInterval(size_t attr, const Interval& iv);  ///< a in iv
  Predicate& AddEquals(size_t attr, double value);          ///< a == value
  Predicate& AddAtLeast(size_t attr, double lo);            ///< a >= lo
  Predicate& AddAtMost(size_t attr, double hi);             ///< a <= hi
  Predicate& AddLessThan(size_t attr, double hi);           ///< a < hi
  Predicate& AddGreaterThan(size_t attr, double lo);        ///< a > lo

  /// Name/label-based builders resolved against a schema.
  static StatusOr<Predicate> RangeOn(const Schema& schema,
                                     const std::string& attr, double lo,
                                     double hi);
  /// Categorical equality, e.g. branch = 'Chicago'.
  static StatusOr<Predicate> LabelEquals(const Schema& schema,
                                         const std::string& attr,
                                         const std::string& label);

  size_t num_attrs() const { return box_.num_attrs(); }
  const Box& box() const { return box_; }

  /// Whether the predicate holds for a materialized row.
  bool Matches(const std::vector<double>& row) const {
    return box_.Contains(row);
  }
  /// Whether the predicate holds for row `r` of `table`.
  bool MatchesRow(const Table& table, size_t r) const;

  /// True when the predicate constrains nothing.
  bool IsTrue() const { return box_.IsUniverse(); }

  std::string ToString() const { return box_.ToString(); }

 private:
  Box box_;
};

/// Derives AttrDomain hints from a schema: categorical columns are
/// integer-valued (dictionary codes), numeric columns continuous.
std::vector<AttrDomain> DomainsFromSchema(const Schema& schema);

}  // namespace pcx

#endif  // PCX_PREDICATE_PREDICATE_H_
