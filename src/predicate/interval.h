#ifndef PCX_PREDICATE_INTERVAL_H_
#define PCX_PREDICATE_INTERVAL_H_

#include <limits>
#include <string>

namespace pcx {

/// Whether an attribute ranges over the reals or over the integers.
/// Integer domains matter for exact satisfiability: the open interval
/// (2, 3) is non-empty over the reals but empty over the integers
/// (e.g. a dictionary-coded categorical attribute).
enum class AttrDomain { kContinuous, kInteger };

/// A (possibly open-ended, possibly strict) interval of one attribute.
/// The default-constructed interval is unbounded: (-inf, +inf).
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_strict = false;  ///< true: x > lo; false: x >= lo
  bool hi_strict = false;  ///< true: x < hi; false: x <= hi

  /// Closed interval [lo, hi].
  static Interval Closed(double lo, double hi) {
    return Interval{lo, hi, false, false};
  }
  /// Point interval [v, v].
  static Interval Point(double v) { return Closed(v, v); }
  /// [lo, +inf).
  static Interval AtLeast(double lo) {
    return Interval{lo, std::numeric_limits<double>::infinity(), false, false};
  }
  /// (-inf, hi].
  static Interval AtMost(double hi) {
    return Interval{-std::numeric_limits<double>::infinity(), hi, false,
                    false};
  }
  /// (lo, +inf).
  static Interval GreaterThan(double lo) {
    return Interval{lo, std::numeric_limits<double>::infinity(), true, false};
  }
  /// (-inf, hi).
  static Interval LessThan(double hi) {
    return Interval{-std::numeric_limits<double>::infinity(), hi, false, true};
  }
  /// The full line.
  static Interval All() { return Interval{}; }

  bool is_unbounded() const {
    return lo == -std::numeric_limits<double>::infinity() &&
           hi == std::numeric_limits<double>::infinity();
  }

  /// True if no value of the given domain lies in the interval.
  bool IsEmpty(AttrDomain domain = AttrDomain::kContinuous) const;

  /// True if `x` is in the interval.
  bool Contains(double x) const;

  /// Intersection (same domain).
  Interval Intersect(const Interval& other) const;

  /// A value inside the interval; only valid if !IsEmpty(domain).
  double Witness(AttrDomain domain = AttrDomain::kContinuous) const;

  /// Human-readable form like "[0, 5)" or "(-inf, 3]".
  std::string ToString() const;
};

bool operator==(const Interval& a, const Interval& b);

}  // namespace pcx

#endif  // PCX_PREDICATE_INTERVAL_H_
