#include "predicate/z3_sat.h"

#ifdef PCX_HAVE_Z3
#include <z3++.h>
#endif

namespace pcx {

#ifdef PCX_HAVE_Z3

namespace {

/// SatChecker that translates cell expressions into Z3 real/int
/// arithmetic and asks the SMT solver, mirroring the paper's
/// implementation strategy.
class Z3SatChecker : public SatChecker {
 public:
  explicit Z3SatChecker(std::vector<AttrDomain> domains)
      : domains_(std::move(domains)) {}

  bool IsSatisfiable(const CellExpr& cell) override {
    ++num_calls_;
    z3::context ctx;
    z3::solver solver(ctx);
    std::vector<z3::expr> vars = MakeVars(ctx, cell.positive.num_attrs());
    solver.add(BoxExpr(ctx, vars, cell.positive));
    for (const Box& n : cell.negated) solver.add(!BoxExpr(ctx, vars, n));
    return solver.check() == z3::sat;
  }

  std::optional<std::vector<double>> FindWitness(
      const CellExpr& cell) override {
    ++num_calls_;
    z3::context ctx;
    z3::solver solver(ctx);
    std::vector<z3::expr> vars = MakeVars(ctx, cell.positive.num_attrs());
    solver.add(BoxExpr(ctx, vars, cell.positive));
    for (const Box& n : cell.negated) solver.add(!BoxExpr(ctx, vars, n));
    if (solver.check() != z3::sat) return std::nullopt;
    z3::model model = solver.get_model();
    std::vector<double> out(vars.size(), 0.0);
    for (size_t i = 0; i < vars.size(); ++i) {
      const z3::expr v = model.eval(vars[i], /*model_completion=*/true);
      double value = 0.0;
      if (v.is_numeral()) {
        value = std::stod(v.get_decimal_string(12));
      }
      out[i] = value;
    }
    return out;
  }

 private:
  std::vector<z3::expr> MakeVars(z3::context& ctx, size_t n) {
    std::vector<z3::expr> vars;
    vars.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const std::string name = "a" + std::to_string(i);
      if (DomainOf(domains_, i) == AttrDomain::kInteger) {
        vars.push_back(ctx.int_const(name.c_str()));
      } else {
        vars.push_back(ctx.real_const(name.c_str()));
      }
    }
    return vars;
  }

  z3::expr BoxExpr(z3::context& ctx, const std::vector<z3::expr>& vars,
                   const Box& box) {
    z3::expr e = ctx.bool_val(true);
    for (size_t d = 0; d < box.num_attrs(); ++d) {
      const Interval& iv = box.dim(d);
      if (iv.lo != -std::numeric_limits<double>::infinity()) {
        z3::expr bound = ctx.real_val(std::to_string(iv.lo).c_str());
        e = e && (iv.lo_strict ? vars[d] > bound : vars[d] >= bound);
      }
      if (iv.hi != std::numeric_limits<double>::infinity()) {
        z3::expr bound = ctx.real_val(std::to_string(iv.hi).c_str());
        e = e && (iv.hi_strict ? vars[d] < bound : vars[d] <= bound);
      }
    }
    return e;
  }

  std::vector<AttrDomain> domains_;
};

}  // namespace

std::unique_ptr<SatChecker> MakeZ3SatChecker(std::vector<AttrDomain> domains) {
  return std::make_unique<Z3SatChecker>(std::move(domains));
}

bool Z3BackendAvailable() { return true; }

#else  // !PCX_HAVE_Z3

std::unique_ptr<SatChecker> MakeZ3SatChecker(std::vector<AttrDomain>) {
  return nullptr;
}

bool Z3BackendAvailable() { return false; }

#endif  // PCX_HAVE_Z3

}  // namespace pcx
