#ifndef PCX_PREDICATE_BOX_H_
#define PCX_PREDICATE_BOX_H_

#include <string>
#include <vector>

#include "predicate/interval.h"

namespace pcx {

/// An axis-aligned box over a fixed number of attributes: one Interval
/// per attribute (unbounded by default). A conjunction of range atoms
/// canonicalizes to exactly one Box, which is why the paper restricts
/// predicates to conjunctions of ranges and inequalities (§3.1).
class Box {
 public:
  Box() = default;
  explicit Box(size_t num_attrs) : dims_(num_attrs) {}

  size_t num_attrs() const { return dims_.size(); }
  const Interval& dim(size_t attr) const { return dims_[attr]; }
  const std::vector<Interval>& dims() const { return dims_; }

  /// Intersects attribute `attr` with `iv` (conjunction of an atom).
  void Constrain(size_t attr, const Interval& iv);

  /// Overwrites attribute `attr` (no intersection) — for callers that
  /// mutate and restore a shared box instead of copying it.
  void SetDim(size_t attr, const Interval& iv) { dims_[attr] = iv; }

  /// Componentwise intersection of two boxes over the same attributes.
  Box Intersect(const Box& other) const;

  /// In-place componentwise intersection: *this ∩= other, without the
  /// temporary Intersect allocates.
  void IntersectWith(const Box& other);

  /// True iff this ∩ other is empty under `domains`. Equivalent to
  /// Intersect(other).IsEmpty(domains) but allocation-free — the hot
  /// paths of the SAT checker and the decomposition DFS test millions of
  /// candidate intersections and keep almost none of them.
  bool IntersectionEmpty(const Box& other,
                         const std::vector<AttrDomain>& domains = {}) const;

  /// True if some attribute's interval is empty under `domains`.
  /// `domains` may be shorter than num_attrs; missing entries default to
  /// continuous.
  bool IsEmpty(const std::vector<AttrDomain>& domains = {}) const;

  /// True if the point (one value per attribute) lies in the box.
  bool Contains(const std::vector<double>& point) const;

  /// True if every point of `other` is inside this box.
  bool Covers(const Box& other) const;

  /// True if the box constrains no attribute (the TRUE predicate).
  bool IsUniverse() const;

  /// Any point inside the box; requires !IsEmpty(domains).
  std::vector<double> Witness(const std::vector<AttrDomain>& domains = {}) const;

  /// e.g. "{a1 in [0, 5], a3 in (2, inf)}".
  std::string ToString() const;

 private:
  std::vector<Interval> dims_;
};

bool operator==(const Box& a, const Box& b);

/// Domain lookup helper: `domains[attr]` or continuous when absent.
inline AttrDomain DomainOf(const std::vector<AttrDomain>& domains,
                           size_t attr) {
  return attr < domains.size() ? domains[attr] : AttrDomain::kContinuous;
}

}  // namespace pcx

#endif  // PCX_PREDICATE_BOX_H_
