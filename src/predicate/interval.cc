#include "predicate/interval.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace pcx {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Lowest integer admitted by the lower bound.
double IntegerFloorOfLower(double lo, bool lo_strict) {
  if (lo == -kInf) return -kInf;
  const double c = std::ceil(lo);
  if (lo_strict && c == lo) return c + 1.0;
  return c;
}

/// Highest integer admitted by the upper bound.
double IntegerCeilOfUpper(double hi, bool hi_strict) {
  if (hi == kInf) return kInf;
  const double f = std::floor(hi);
  if (hi_strict && f == hi) return f - 1.0;
  return f;
}

}  // namespace

bool Interval::IsEmpty(AttrDomain domain) const {
  if (domain == AttrDomain::kInteger) {
    return IntegerFloorOfLower(lo, lo_strict) >
           IntegerCeilOfUpper(hi, hi_strict);
  }
  if (lo > hi) return true;
  if (lo == hi) return lo_strict || hi_strict || lo == kInf || hi == -kInf;
  return false;
}

bool Interval::Contains(double x) const {
  if (lo_strict ? x <= lo : x < lo) return false;
  if (hi_strict ? x >= hi : x > hi) return false;
  return true;
}

Interval Interval::Intersect(const Interval& other) const {
  Interval out = *this;
  if (other.lo > out.lo || (other.lo == out.lo && other.lo_strict)) {
    out.lo = other.lo;
    out.lo_strict = other.lo_strict;
  }
  if (other.hi < out.hi || (other.hi == out.hi && other.hi_strict)) {
    out.hi = other.hi;
    out.hi_strict = other.hi_strict;
  }
  return out;
}

double Interval::Witness(AttrDomain domain) const {
  PCX_CHECK(!IsEmpty(domain));
  if (domain == AttrDomain::kInteger) {
    const double f = IntegerFloorOfLower(lo, lo_strict);
    if (f != -kInf) return f;
    const double c = IntegerCeilOfUpper(hi, hi_strict);
    if (c != kInf) return c;
    return 0.0;
  }
  const bool lo_finite = lo != -kInf;
  const bool hi_finite = hi != kInf;
  if (lo_finite && hi_finite) {
    if (!lo_strict) return lo;
    if (!hi_strict) return hi;
    return (lo + hi) / 2.0;
  }
  if (lo_finite) return lo_strict ? lo + 1.0 : lo;
  if (hi_finite) return hi_strict ? hi - 1.0 : hi;
  return 0.0;
}

std::string Interval::ToString() const {
  std::ostringstream os;
  os << (lo_strict || lo == -kInf ? "(" : "[");
  if (lo == -kInf) {
    os << "-inf";
  } else {
    os << lo;
  }
  os << ", ";
  if (hi == kInf) {
    os << "inf";
  } else {
    os << hi;
  }
  os << (hi_strict || hi == kInf ? ")" : "]");
  return os.str();
}

bool operator==(const Interval& a, const Interval& b) {
  return a.lo == b.lo && a.hi == b.hi && a.lo_strict == b.lo_strict &&
         a.hi_strict == b.hi_strict;
}

}  // namespace pcx
