#ifndef PCX_PREDICATE_SAT_H_
#define PCX_PREDICATE_SAT_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "predicate/box.h"

namespace pcx {

/// A cell expression (paper §4.1): the conjunction of a *positive* box
/// (the intersection of the non-negated predicates, plus any query
/// pushdown) and a list of *negated* boxes. A cell like
/// ψ1 ∧ ¬ψ2 ∧ ψ3 is represented as positive = box(ψ1) ∩ box(ψ3),
/// negated = {box(ψ2)}.
struct CellExpr {
  Box positive;
  std::vector<Box> negated;
};

/// Decides satisfiability of cell expressions. The decomposition code
/// talks to this interface; the default implementation is the exact
/// interval checker below, and a Z3-backed implementation is available
/// when the library is built with libz3 (see z3_sat.h).
class SatChecker {
 public:
  virtual ~SatChecker() = default;

  /// True iff some point over the attribute domains satisfies the cell.
  virtual bool IsSatisfiable(const CellExpr& cell) = 0;

  /// Like IsSatisfiable but also produces a witness point when SAT.
  virtual std::optional<std::vector<double>> FindWitness(
      const CellExpr& cell) = 0;

  /// Number of satisfiability decisions made so far (Fig. 7 metric).
  size_t num_calls() const { return num_calls_; }
  void ResetStats() { num_calls_ = 0; }

 protected:
  size_t num_calls_ = 0;
};

/// Exact decision procedure for the paper's conjunctive range language:
/// decides whether positive \ (neg_1 ∪ ... ∪ neg_k) is non-empty by
/// recursive box subtraction, respecting integer attribute domains.
/// Sound and complete for conjunctions of ranges/inequalities — the
/// fragment the paper feeds to Z3 — without an SMT dependency.
class IntervalSatChecker : public SatChecker {
 public:
  /// `domains[attr]` declares integer-valued attributes; attributes past
  /// the end of the vector are treated as continuous.
  explicit IntervalSatChecker(std::vector<AttrDomain> domains = {})
      : domains_(std::move(domains)) {}

  bool IsSatisfiable(const CellExpr& cell) override;
  std::optional<std::vector<double>> FindWitness(const CellExpr& cell) override;

  const std::vector<AttrDomain>& domains() const { return domains_; }

 private:
  /// Core recursion: is box \ union(negated[from..]) non-empty?
  bool SubtractNonEmpty(const Box& box, const std::vector<Box>& negated,
                        size_t from, std::vector<double>* witness);

  std::vector<AttrDomain> domains_;
};

/// Creates the default checker for a given attribute-domain vector.
std::unique_ptr<SatChecker> MakeDefaultSatChecker(
    std::vector<AttrDomain> domains = {});

}  // namespace pcx

#endif  // PCX_PREDICATE_SAT_H_
