#ifndef PCX_PREDICATE_SAT_H_
#define PCX_PREDICATE_SAT_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "predicate/box.h"

namespace pcx {

/// A cell expression (paper §4.1): the conjunction of a *positive* box
/// (the intersection of the non-negated predicates, plus any query
/// pushdown) and a list of *negated* boxes. A cell like
/// ψ1 ∧ ¬ψ2 ∧ ψ3 is represented as positive = box(ψ1) ∩ box(ψ3),
/// negated = {box(ψ2)}.
struct CellExpr {
  Box positive;
  std::vector<Box> negated;
};

/// Decides satisfiability of cell expressions. The decomposition code
/// talks to this interface; the default implementation is the exact
/// interval checker below, and a Z3-backed implementation is available
/// when the library is built with libz3 (see z3_sat.h).
class SatChecker {
 public:
  virtual ~SatChecker() = default;

  /// True iff some point over the attribute domains satisfies the cell.
  virtual bool IsSatisfiable(const CellExpr& cell) = 0;

  /// Batch entry point: one satisfiability verdict per input cell, in
  /// input order. The default implementation loops over IsSatisfiable;
  /// memoizing checkers make repeated (or canonically equal) cells in
  /// one batch cost a single decision.
  virtual std::vector<bool> IsSatisfiableMany(std::span<const CellExpr> cells);

  /// Like IsSatisfiable but also produces a witness point when SAT.
  virtual std::optional<std::vector<double>> FindWitness(
      const CellExpr& cell) = 0;

  /// Number of satisfiability decisions made so far (Fig. 7 metric).
  size_t num_calls() const { return num_calls_; }
  /// Decisions answered from a memoization cache (zero for checkers
  /// without one); always <= num_calls().
  size_t num_cache_hits() const { return num_cache_hits_; }
  void ResetStats() {
    num_calls_ = 0;
    num_cache_hits_ = 0;
  }

 protected:
  size_t num_calls_ = 0;
  size_t num_cache_hits_ = 0;
};

/// Exact decision procedure for the paper's conjunctive range language:
/// decides whether positive \ (neg_1 ∪ ... ∪ neg_k) is non-empty by
/// recursive box subtraction, respecting integer attribute domains.
/// Sound and complete for conjunctions of ranges/inequalities — the
/// fragment the paper feeds to Z3 — without an SMT dependency.
///
/// Every query is first *canonicalized* — negated boxes are clipped to
/// the positive region, empty clips dropped, the remainder sorted — and
/// the verdict is memoized under the canonical key. DFS decomposition
/// re-derives the same region along many branches (amortization in the
/// spirit of Skeena's epoch batching), so repeated subtree checks are
/// answered from the table without re-running the subtraction.
/// Not thread-safe: use one checker per thread.
class IntervalSatChecker : public SatChecker {
 public:
  /// `domains[attr]` declares integer-valued attributes; attributes past
  /// the end of the vector are treated as continuous.
  explicit IntervalSatChecker(std::vector<AttrDomain> domains = {})
      : domains_(std::move(domains)) {}

  bool IsSatisfiable(const CellExpr& cell) override;
  std::optional<std::vector<double>> FindWitness(const CellExpr& cell) override;

  const std::vector<AttrDomain>& domains() const { return domains_; }

  /// Memoized verdicts currently stored.
  size_t cache_size() const { return cache_.size(); }
  void ClearCache() { cache_.clear(); }

 private:
  /// Semantics-preserving canonicalization, allocation-free: fills
  /// `filtered_` with pointers to the negated boxes that intersect
  /// `positive`, sorted and deduplicated by their clip to the positive
  /// region (the clip is compared lazily, never materialized). Returns
  /// false (trivially UNSAT) when the positive region is empty or one
  /// negated box covers it whole.
  bool CanonicalizeInto(const CellExpr& cell);

  /// Builds the memoization key of the canonical form (positive +
  /// lazily clipped filtered boxes) into scratch_key_.
  void BuildKey(const Box& positive);

  /// Core recursion: is box \ union(filtered_[from..]) non-empty?
  /// Mutates `box` in place and restores it before returning; `box`
  /// must have no empty dimension on entry.
  bool SubtractRec(Box& box, size_t from, std::vector<double>* witness);

  /// Stop inserting (but keep looking up) past this many entries.
  static constexpr size_t kMaxCacheEntries = 1 << 20;

  std::vector<AttrDomain> domains_;
  std::unordered_map<std::string, bool> cache_;
  // Reused scratch state (one checker per thread; see class comment).
  std::vector<const Box*> filtered_;
  std::vector<std::pair<size_t, Interval>> undo_;
  std::string scratch_key_;
};

/// Creates the default checker for a given attribute-domain vector.
std::unique_ptr<SatChecker> MakeDefaultSatChecker(
    std::vector<AttrDomain> domains = {});

}  // namespace pcx

#endif  // PCX_PREDICATE_SAT_H_
