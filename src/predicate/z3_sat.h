#ifndef PCX_PREDICATE_Z3_SAT_H_
#define PCX_PREDICATE_Z3_SAT_H_

#include <memory>
#include <vector>

#include "predicate/sat.h"

namespace pcx {

/// Returns a Z3-backed SatChecker when the library was compiled with
/// libz3 (PCX_HAVE_Z3), or nullptr otherwise. The paper's reference
/// implementation uses Z3 [9] for cell satisfiability; pcx uses the
/// exact IntervalSatChecker by default and offers this backend to
/// cross-validate it (see tests/predicate/z3_cross_test if enabled).
std::unique_ptr<SatChecker> MakeZ3SatChecker(
    std::vector<AttrDomain> domains = {});

/// True when MakeZ3SatChecker returns a real solver.
bool Z3BackendAvailable();

}  // namespace pcx

#endif  // PCX_PREDICATE_Z3_SAT_H_
