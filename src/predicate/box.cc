#include "predicate/box.h"

#include <sstream>

#include "common/check.h"

namespace pcx {

void Box::Constrain(size_t attr, const Interval& iv) {
  PCX_CHECK(attr < dims_.size()) << "attribute " << attr << " out of range";
  dims_[attr] = dims_[attr].Intersect(iv);
}

Box Box::Intersect(const Box& other) const {
  PCX_CHECK_EQ(dims_.size(), other.dims_.size());
  Box out(dims_.size());
  for (size_t i = 0; i < dims_.size(); ++i) {
    out.dims_[i] = dims_[i].Intersect(other.dims_[i]);
  }
  return out;
}

void Box::IntersectWith(const Box& other) {
  PCX_CHECK_EQ(dims_.size(), other.dims_.size());
  for (size_t i = 0; i < dims_.size(); ++i) {
    dims_[i] = dims_[i].Intersect(other.dims_[i]);
  }
}

bool Box::IntersectionEmpty(const Box& other,
                            const std::vector<AttrDomain>& domains) const {
  PCX_CHECK_EQ(dims_.size(), other.dims_.size());
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i].Intersect(other.dims_[i]).IsEmpty(DomainOf(domains, i))) {
      return true;
    }
  }
  return false;
}

bool Box::IsEmpty(const std::vector<AttrDomain>& domains) const {
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i].IsEmpty(DomainOf(domains, i))) return true;
  }
  return false;
}

bool Box::Contains(const std::vector<double>& point) const {
  PCX_CHECK_EQ(point.size(), dims_.size());
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (!dims_[i].Contains(point[i])) return false;
  }
  return true;
}

bool Box::Covers(const Box& other) const {
  PCX_CHECK_EQ(dims_.size(), other.dims_.size());
  for (size_t i = 0; i < dims_.size(); ++i) {
    const Interval merged = dims_[i].Intersect(other.dims_[i]);
    if (!(merged == other.dims_[i])) return false;
  }
  return true;
}

bool Box::IsUniverse() const {
  for (const auto& d : dims_) {
    if (!d.is_unbounded()) return false;
  }
  return true;
}

std::vector<double> Box::Witness(
    const std::vector<AttrDomain>& domains) const {
  PCX_CHECK(!IsEmpty(domains));
  std::vector<double> out(dims_.size());
  for (size_t i = 0; i < dims_.size(); ++i) {
    out[i] = dims_[i].Witness(DomainOf(domains, i));
  }
  return out;
}

std::string Box::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i].is_unbounded()) continue;
    if (!first) os << ", ";
    first = false;
    os << "a" << i << " in " << dims_[i].ToString();
  }
  if (first) os << "TRUE";
  os << "}";
  return os.str();
}

bool operator==(const Box& a, const Box& b) {
  if (a.num_attrs() != b.num_attrs()) return false;
  for (size_t i = 0; i < a.num_attrs(); ++i) {
    if (!(a.dim(i) == b.dim(i))) return false;
  }
  return true;
}

}  // namespace pcx
