#ifndef PCX_WORKLOAD_MISSING_H_
#define PCX_WORKLOAD_MISSING_H_

#include <utility>

#include "common/random.h"
#include "relation/table.h"

namespace pcx {
namespace workload {

/// (observed, missing) pair produced by a missing-data injector.
struct MissingSplit {
  Table observed;
  Table missing;
};

/// Correlated missingness (paper §6.2): removes the `fraction` of rows
/// with the *largest* values of `attr` — the adversarial pattern that
/// breaks extrapolation and sampling in Figs. 1/3/4.
MissingSplit SplitTopValueCorrelated(const Table& table, size_t attr,
                                     double fraction);

/// Missing-completely-at-random baseline split.
MissingSplit SplitRandom(const Table& table, double fraction, Rng* rng);

/// Removes the rows whose `attr` lies in [lo, hi] — e.g. the network
/// outage between Nov-10 and Nov-13 of the running example (§2.1).
MissingSplit SplitRange(const Table& table, size_t attr, double lo,
                        double hi);

}  // namespace workload
}  // namespace pcx

#endif  // PCX_WORKLOAD_MISSING_H_
