#ifndef PCX_WORKLOAD_QUERY_GEN_H_
#define PCX_WORKLOAD_QUERY_GEN_H_

#include <vector>

#include "common/random.h"
#include "pc/query.h"
#include "relation/table.h"

namespace pcx {
namespace workload {

/// Random range-query generator (paper §6: "1000 randomly chosen
/// predicates"). Each query constrains the given predicate attributes
/// with an interval whose endpoints are drawn from the data itself, so
/// selectivities follow the data distribution.
struct QueryGenOptions {
  size_t count = 1000;
  /// Subset size of pred_attrs each query constrains; 0 = all of them.
  size_t attrs_per_query = 0;
  /// When > 0, queries are narrow boxes centred on a random data point
  /// with half-width = width_fraction * column range (selective
  /// queries); when 0, each interval spans two random data points.
  double width_fraction = 0.0;
  uint64_t seed = 23;
};

std::vector<AggQuery> MakeRandomRangeQueries(
    const Table& data, const std::vector<size_t>& pred_attrs, AggFunc agg,
    size_t agg_attr, const QueryGenOptions& options);

}  // namespace workload
}  // namespace pcx

#endif  // PCX_WORKLOAD_QUERY_GEN_H_
