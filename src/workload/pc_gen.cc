#include "workload/pc_gen.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace pcx {
namespace workload {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Quantile-based bucket edges for `attr`: `buckets`+1 edges, with the
/// outermost pushed to ±inf so the buckets cover the whole domain.
std::vector<double> QuantileEdges(const Table& t, size_t attr,
                                  size_t buckets) {
  std::vector<double> values;
  values.reserve(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) values.push_back(t.At(r, attr));
  std::sort(values.begin(), values.end());
  std::vector<double> edges(buckets + 1);
  edges[0] = -kInf;
  edges[buckets] = kInf;
  for (size_t b = 1; b < buckets; ++b) {
    const double q = static_cast<double>(b) / static_cast<double>(buckets);
    size_t idx = static_cast<size_t>(q * static_cast<double>(values.size()));
    idx = std::min(idx, values.size() - 1);
    edges[b] = values.empty() ? static_cast<double>(b) : values[idx];
  }
  // Collapse duplicate interior edges (heavily repeated values).
  for (size_t b = 1; b < buckets; ++b) {
    if (edges[b] <= edges[b - 1] && edges[b - 1] != -kInf) {
      edges[b] = std::nextafter(edges[b - 1], kInf);
    }
  }
  return edges;
}

/// Statistics of the missing rows inside `box`.
struct BoxStats {
  double count = 0.0;
  double lo = 0.0, hi = 0.0;
  bool any = false;
};

BoxStats StatsInBox(const Table& t, const Box& box, size_t agg_attr) {
  BoxStats s;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    bool in = true;
    for (size_t c = 0; c < box.num_attrs(); ++c) {
      if (box.dim(c).is_unbounded()) continue;
      if (!box.dim(c).Contains(t.At(r, c))) {
        in = false;
        break;
      }
    }
    if (!in) continue;
    const double v = t.At(r, agg_attr);
    if (!s.any) {
      s.lo = s.hi = v;
      s.any = true;
    } else {
      s.lo = std::min(s.lo, v);
      s.hi = std::max(s.hi, v);
    }
    s.count += 1.0;
  }
  return s;
}

PredicateConstraint ConstraintFromBox(const Table& t, const Box& pred_box,
                                      size_t agg_attr, double freq_lo_scale) {
  const BoxStats s = StatsInBox(t, pred_box, agg_attr);
  Box values(pred_box.num_attrs());
  if (s.any) {
    values.Constrain(agg_attr, Interval::Closed(s.lo, s.hi));
  } else {
    // No rows: frequency 0 makes the value range irrelevant.
    values.Constrain(agg_attr, Interval::Point(0.0));
  }
  return PredicateConstraint(
      Predicate(pred_box), values,
      FrequencyConstraint::Between(freq_lo_scale * s.count, s.count));
}

/// Per-dimension bucket counts whose product is ~target.
std::vector<size_t> GridShape(size_t dims, size_t target) {
  PCX_CHECK_GE(dims, 1u);
  const double per =
      std::pow(static_cast<double>(target), 1.0 / static_cast<double>(dims));
  std::vector<size_t> shape(dims, std::max<size_t>(1, static_cast<size_t>(
                                                          std::round(per))));
  return shape;
}

}  // namespace

PredicateConstraintSet MakeCorrPCs(const Table& missing,
                                   const std::vector<size_t>& pred_attrs,
                                   size_t agg_attr, size_t target_count) {
  PCX_CHECK(!pred_attrs.empty());
  const size_t num_attrs = missing.num_columns();
  const std::vector<size_t> shape = GridShape(pred_attrs.size(), target_count);
  std::vector<std::vector<double>> edges;
  for (size_t d = 0; d < pred_attrs.size(); ++d) {
    edges.push_back(QuantileEdges(missing, pred_attrs[d], shape[d]));
  }

  PredicateConstraintSet out;
  // Iterate the multi-dimensional grid.
  std::vector<size_t> idx(pred_attrs.size(), 0);
  while (true) {
    Box pred_box(num_attrs);
    for (size_t d = 0; d < pred_attrs.size(); ++d) {
      const double lo = edges[d][idx[d]];
      const double hi = edges[d][idx[d] + 1];
      // Half-open [lo, hi) buckets keep the partition disjoint; the last
      // bucket is [lo, +inf).
      pred_box.Constrain(pred_attrs[d],
                         Interval{lo, hi, false, hi != kInf});
    }
    out.Add(ConstraintFromBox(missing, pred_box, agg_attr,
                              /*freq_lo_scale=*/1.0));
    // Advance the grid index.
    size_t d = 0;
    while (d < idx.size()) {
      if (++idx[d] < shape[d]) break;
      idx[d] = 0;
      ++d;
    }
    if (d == idx.size()) break;
  }
  return out;
}

PredicateConstraintSet MakeRandPCs(const Table& missing,
                                   const std::vector<size_t>& pred_attrs,
                                   size_t agg_attr, size_t target_count,
                                   Rng* rng) {
  PCX_CHECK(rng != nullptr);
  PCX_CHECK(!pred_attrs.empty());
  const size_t num_attrs = missing.num_columns();
  PredicateConstraintSet out;

  // The TRUE catch-all guarantees closure; its statistics are global.
  {
    Box universe(num_attrs);
    out.Add(ConstraintFromBox(missing, universe, agg_attr,
                              /*freq_lo_scale=*/0.0));
  }
  if (missing.num_rows() == 0) return out;

  for (size_t i = 0; i + 1 < target_count; ++i) {
    Box pred_box(num_attrs);
    for (size_t attr : pred_attrs) {
      // Random box centred on a data point with a random (moderate)
      // extent: data-correlated placement, locally overlapping
      // neighbours without covering the whole domain.
      const size_t r1 = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(missing.num_rows()) - 1));
      const double center = missing.At(r1, attr);
      auto range = missing.ColumnRange(attr);
      const double span =
          range.ok() ? range->second - range->first : 1.0;
      const double half_width =
          std::max(1e-9, span) * rng->Uniform(0.02, 0.10);
      pred_box.Constrain(
          attr, Interval::Closed(center - half_width, center + half_width));
    }
    // Frequency lower bound 0: random boxes make no promise that rows
    // exist, only that no more than the observed number do.
    out.Add(ConstraintFromBox(missing, pred_box, agg_attr,
                              /*freq_lo_scale=*/0.0));
  }
  return out;
}

PredicateConstraintSet MakeOverlappingPCs(
    const Table& missing, const std::vector<size_t>& pred_attrs,
    size_t agg_attr, size_t target_count, double overlap_factor) {
  PCX_CHECK_GE(overlap_factor, 1.0);
  PCX_CHECK(!pred_attrs.empty());
  const size_t num_attrs = missing.num_columns();
  const std::vector<size_t> shape = GridShape(pred_attrs.size(), target_count);
  std::vector<std::vector<double>> edges;
  for (size_t d = 0; d < pred_attrs.size(); ++d) {
    edges.push_back(QuantileEdges(missing, pred_attrs[d], shape[d]));
  }

  PredicateConstraintSet out;
  std::vector<size_t> idx(pred_attrs.size(), 0);
  while (true) {
    Box pred_box(num_attrs);
    for (size_t d = 0; d < pred_attrs.size(); ++d) {
      double lo = edges[d][idx[d]];
      double hi = edges[d][idx[d] + 1];
      if (lo != -kInf && hi != kInf) {
        const double grow = (overlap_factor - 1.0) * (hi - lo) / 2.0;
        lo -= grow;
        hi += grow;
      } else if (lo != -kInf) {
        lo -= (overlap_factor - 1.0) * std::fabs(lo) * 0.5;
      } else if (hi != kInf) {
        hi += (overlap_factor - 1.0) * std::fabs(hi) * 0.5;
      }
      pred_box.Constrain(pred_attrs[d], Interval{lo, hi, false, hi != kInf});
    }
    out.Add(ConstraintFromBox(missing, pred_box, agg_attr,
                              /*freq_lo_scale=*/0.0));
    size_t d = 0;
    while (d < idx.size()) {
      if (++idx[d] < shape[d]) break;
      idx[d] = 0;
      ++d;
    }
    if (d == idx.size()) break;
  }
  return out;
}

PredicateConstraintSet AddValueNoise(const PredicateConstraintSet& pcs,
                                     const Table& missing, size_t agg_attr,
                                     double sd_multiplier, Rng* rng) {
  PCX_CHECK(rng != nullptr);
  RunningStats stats;
  for (size_t r = 0; r < missing.num_rows(); ++r) {
    stats.Add(missing.At(r, agg_attr));
  }
  const double sd = stats.stddev() * sd_multiplier;

  std::vector<PredicateConstraint> noisy;
  noisy.reserve(pcs.size());
  for (const auto& pc : pcs.constraints()) {
    Box values = pc.values();
    const Interval& iv = values.dim(agg_attr);
    if (!iv.is_unbounded()) {
      double lo = iv.lo == -kInf ? iv.lo : iv.lo + rng->Gaussian(0.0, sd);
      double hi = iv.hi == kInf ? iv.hi : iv.hi + rng->Gaussian(0.0, sd);
      if (lo > hi) std::swap(lo, hi);
      Box perturbed(values.num_attrs());
      perturbed.Constrain(agg_attr, Interval{lo, hi, false, false});
      values = perturbed;
    }
    noisy.emplace_back(pc.predicate(), values, pc.frequency());
  }
  return PredicateConstraintSet(std::move(noisy));
}

}  // namespace workload
}  // namespace pcx
