#include "workload/query_gen.h"

#include <algorithm>

#include "common/check.h"

namespace pcx {
namespace workload {

std::vector<AggQuery> MakeRandomRangeQueries(
    const Table& data, const std::vector<size_t>& pred_attrs, AggFunc agg,
    size_t agg_attr, const QueryGenOptions& options) {
  PCX_CHECK(!pred_attrs.empty());
  PCX_CHECK_GT(data.num_rows(), 0u);
  Rng rng(options.seed);
  const size_t per_query = options.attrs_per_query == 0
                               ? pred_attrs.size()
                               : std::min(options.attrs_per_query,
                                          pred_attrs.size());

  std::vector<AggQuery> out;
  out.reserve(options.count);
  for (size_t q = 0; q < options.count; ++q) {
    Predicate where(data.num_columns());
    std::vector<size_t> chosen =
        rng.SampleWithoutReplacement(pred_attrs.size(), per_query);
    for (size_t pick : chosen) {
      const size_t attr = pred_attrs[pick];
      const size_t r1 = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(data.num_rows()) - 1));
      double lo, hi;
      if (options.width_fraction > 0.0) {
        const double center = data.At(r1, attr);
        auto range = data.ColumnRange(attr);
        const double span = range.ok() ? range->second - range->first : 1.0;
        const double half = options.width_fraction * span / 2.0;
        lo = center - half;
        hi = center + half;
      } else {
        const size_t r2 = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(data.num_rows()) - 1));
        lo = data.At(r1, attr);
        hi = data.At(r2, attr);
        if (lo > hi) std::swap(lo, hi);
      }
      where.AddRange(attr, lo, hi);
    }
    AggQuery query;
    query.agg = agg;
    query.attr = agg_attr;
    query.where = std::move(where);
    out.push_back(std::move(query));
  }
  return out;
}

}  // namespace workload
}  // namespace pcx
