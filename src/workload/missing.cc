#include "workload/missing.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace pcx {
namespace workload {

MissingSplit SplitTopValueCorrelated(const Table& table, size_t attr,
                                     double fraction) {
  PCX_CHECK(fraction >= 0.0 && fraction <= 1.0);
  const size_t n = table.num_rows();
  const size_t k = static_cast<size_t>(fraction * static_cast<double>(n));
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return table.At(a, attr) > table.At(b, attr);
  });
  std::vector<bool> drop(n, false);
  for (size_t i = 0; i < k; ++i) drop[order[i]] = true;
  auto [kept, dropped] =
      table.Partition([&](size_t r) { return !drop[r]; });
  return MissingSplit{std::move(kept), std::move(dropped)};
}

MissingSplit SplitRandom(const Table& table, double fraction, Rng* rng) {
  PCX_CHECK(rng != nullptr);
  PCX_CHECK(fraction >= 0.0 && fraction <= 1.0);
  const size_t n = table.num_rows();
  const size_t k = static_cast<size_t>(fraction * static_cast<double>(n));
  std::vector<bool> drop(n, false);
  for (size_t i : rng->SampleWithoutReplacement(n, k)) drop[i] = true;
  auto [kept, dropped] =
      table.Partition([&](size_t r) { return !drop[r]; });
  return MissingSplit{std::move(kept), std::move(dropped)};
}

MissingSplit SplitRange(const Table& table, size_t attr, double lo,
                        double hi) {
  auto [kept, dropped] = table.Partition([&](size_t r) {
    const double v = table.At(r, attr);
    return v < lo || v > hi;
  });
  return MissingSplit{std::move(kept), std::move(dropped)};
}

}  // namespace workload
}  // namespace pcx
