#ifndef PCX_WORKLOAD_PC_GEN_H_
#define PCX_WORKLOAD_PC_GEN_H_

#include <vector>

#include "common/random.h"
#include "pc/pc_set.h"
#include "relation/table.h"

namespace pcx {
namespace workload {

/// Corr-PC (paper §6.1.4): an equi-cardinality grid partition over the
/// attributes most correlated with the aggregate. Each grid cell becomes
/// one PC whose value range and frequency are the *true* statistics of
/// the missing rows inside it (exact constraints — the "reasonable best
/// case" of the framework). The outer buckets extend to ±inf, so the set
/// is closed over the full domain, and all predicates are pairwise
/// disjoint (enabling the greedy fast path).
PredicateConstraintSet MakeCorrPCs(const Table& missing,
                                   const std::vector<size_t>& pred_attrs,
                                   size_t agg_attr, size_t target_count);

/// Rand-PC (paper §6.1.4): randomly placed, overlapping boxes over the
/// same attributes, each annotated with true statistics of the rows it
/// contains, plus one TRUE catch-all constraint that guarantees closure.
/// The worst case of the framework: valid but loose.
PredicateConstraintSet MakeRandPCs(const Table& missing,
                                   const std::vector<size_t>& pred_attrs,
                                   size_t agg_attr, size_t target_count,
                                   Rng* rng);

/// Overlapping-PC (paper Fig. 6): a small partition whose boxes are
/// inflated by `overlap_factor` so neighbours overlap; overlap lets the
/// solver pick the most restrictive of several constraints, which makes
/// the set robust to noise in any single constraint.
PredicateConstraintSet MakeOverlappingPCs(
    const Table& missing, const std::vector<size_t>& pred_attrs,
    size_t agg_attr, size_t target_count, double overlap_factor);

/// Adds independent Gaussian noise with standard deviation
/// `sd_multiplier` x stddev(agg attribute of `missing`) to the value
/// bounds of every PC (paper §6.3.2 robustness experiment). Inverted
/// ranges are re-sorted; the result may no longer hold on the data —
/// that is the point of the experiment.
PredicateConstraintSet AddValueNoise(const PredicateConstraintSet& pcs,
                                     const Table& missing, size_t agg_attr,
                                     double sd_multiplier, Rng* rng);

}  // namespace workload
}  // namespace pcx

#endif  // PCX_WORKLOAD_PC_GEN_H_
