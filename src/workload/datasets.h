#ifndef PCX_WORKLOAD_DATASETS_H_
#define PCX_WORKLOAD_DATASETS_H_

#include <cstdint>

#include "relation/table.h"

namespace pcx {
namespace workload {

/// Synthetic stand-in for the Intel Berkeley lab sensor dataset [25]
/// (see DESIGN.md §2 for the substitution rationale). Columns:
///   device_id (integer-coded), time (hours), light, temperature,
///   humidity, voltage.
/// `light` has a diurnal pattern, per-device offsets and a heavy right
/// tail — the properties the paper's Intel experiments depend on.
struct IntelWirelessOptions {
  size_t num_devices = 54;
  size_t num_epochs = 600;  ///< time steps; rows = devices * epochs
  uint64_t seed = 7;
};
Table MakeIntelWireless(const IntelWirelessOptions& options);

/// Synthetic stand-in for the Airbnb NYC 2019 listings [2]. Columns:
///   latitude, longitude, price, num_reviews, room_type (categorical).
/// (lat, lon) cluster into neighbourhoods; price is lognormal with
/// strong cluster dependence (heavily skewed).
struct AirbnbOptions {
  size_t num_rows = 50000;
  size_t num_clusters = 12;
  uint64_t seed = 11;
};
Table MakeAirbnb(const AirbnbOptions& options);

/// Synthetic stand-in for the BTS Border Crossing dataset [23]. Columns:
///   port (integer-coded), date (days), measure (categorical vehicle
///   type), value. `value` is heavy-tailed across ports (a few huge
///   ports dominate) with mild seasonality.
struct BorderCrossingOptions {
  size_t num_ports = 80;
  size_t num_days = 365;
  size_t measures = 6;
  double rows_fraction = 0.1;  ///< fraction of the port*day*measure grid
  uint64_t seed = 13;
};
Table MakeBorderCrossing(const BorderCrossingOptions& options);

/// The sales example of paper §2.1: Sales(utc, branch, price) with
/// branches New York / Chicago / Trenton. `utc` is hours since Nov-01
/// 00:00.
struct SalesOptions {
  size_t num_rows = 2000;
  size_t num_days = 16;
  uint64_t seed = 3;
};
Table MakeSales(const SalesOptions& options);

/// Random directed edge table Edge(src, dst) over `num_vertices`
/// vertices, for the triangle-counting experiment (paper §6.6.3).
Table MakeRandomEdges(size_t num_edges, size_t num_vertices, uint64_t seed);

/// One relation R(x_i, x_{i+1}) of the acyclic 5-chain experiment:
/// `rows` rows with both columns uniform over [0, domain).
Table MakeChainRelation(size_t rows, size_t domain, uint64_t seed);

}  // namespace workload
}  // namespace pcx

#endif  // PCX_WORKLOAD_DATASETS_H_
