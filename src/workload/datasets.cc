#include "workload/datasets.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string>

#include "common/check.h"
#include "common/random.h"

namespace pcx {
namespace workload {

Table MakeIntelWireless(const IntelWirelessOptions& options) {
  Schema schema({{"device_id", ColumnType::kDouble},
                 {"time", ColumnType::kDouble},
                 {"light", ColumnType::kDouble},
                 {"temperature", ColumnType::kDouble},
                 {"humidity", ColumnType::kDouble},
                 {"voltage", ColumnType::kDouble}});
  Table table(std::move(schema));
  Rng rng(options.seed);

  // Per-device baselines: some sensors sit near windows (bright, hot).
  std::vector<double> light_offset(options.num_devices);
  std::vector<double> temp_offset(options.num_devices);
  for (size_t d = 0; d < options.num_devices; ++d) {
    light_offset[d] = rng.Uniform(0.0, 300.0);
    temp_offset[d] = rng.Uniform(-2.0, 4.0);
  }

  for (size_t e = 0; e < options.num_epochs; ++e) {
    const double hours = static_cast<double>(e) * 0.5;  // 30-min epochs
    const double hour_of_day = std::fmod(hours, 24.0);
    // Daylight factor peaks at 13:00.
    const double daylight = std::max(
        0.0, std::cos((hour_of_day - 13.0) / 24.0 * 2.0 * std::numbers::pi));
    for (size_t d = 0; d < options.num_devices; ++d) {
      double light = light_offset[d] + 900.0 * daylight +
                     rng.Gaussian(0.0, 30.0);
      // Occasional direct-sunlight spikes give the heavy right tail the
      // paper's SUM failures hinge on.
      if (rng.Bernoulli(0.01)) light += rng.Pareto(200.0, 1.2);
      light = std::max(0.0, light);
      const double temperature = 19.0 + temp_offset[d] + 6.0 * daylight +
                                 rng.Gaussian(0.0, 0.8);
      const double humidity =
          45.0 - 10.0 * daylight + rng.Gaussian(0.0, 3.0);
      const double voltage = 2.7 - 0.0004 * hours + rng.Gaussian(0.0, 0.02);
      table.AppendRow({static_cast<double>(d), hours, light, temperature,
                       humidity, voltage});
    }
  }
  return table;
}

Table MakeAirbnb(const AirbnbOptions& options) {
  Schema schema({{"latitude", ColumnType::kDouble},
                 {"longitude", ColumnType::kDouble},
                 {"price", ColumnType::kDouble},
                 {"num_reviews", ColumnType::kDouble},
                 {"room_type", ColumnType::kCategorical}});
  Table table(std::move(schema));
  Rng rng(options.seed);

  const char* kRoomTypes[] = {"Entire home/apt", "Private room",
                              "Shared room"};
  std::vector<double> room_codes;
  for (const char* label : kRoomTypes) {
    room_codes.push_back(table.mutable_schema()->InternLabel(4, label));
  }

  // Neighbourhood clusters around NYC, with per-cluster price levels —
  // Manhattan-like clusters are small, dense and expensive.
  struct Cluster {
    double lat, lon, spread, price_mu, weight;
  };
  std::vector<Cluster> clusters(options.num_clusters);
  double weight_sum = 0.0;
  for (size_t c = 0; c < clusters.size(); ++c) {
    clusters[c].lat = rng.Uniform(40.55, 40.90);
    clusters[c].lon = rng.Uniform(-74.15, -73.75);
    clusters[c].spread = rng.Uniform(0.005, 0.03);
    clusters[c].price_mu = rng.Uniform(3.6, 5.6);  // exp: ~36 .. ~270
    clusters[c].weight = rng.Uniform(0.3, 1.0);
    weight_sum += clusters[c].weight;
  }

  for (size_t r = 0; r < options.num_rows; ++r) {
    double u = rng.Uniform(0.0, weight_sum);
    size_t pick = clusters.size() - 1;
    for (size_t c = 0; c < clusters.size(); ++c) {
      if (u < clusters[c].weight) {
        pick = c;
        break;
      }
      u -= clusters[c].weight;
    }
    const Cluster& cl = clusters[pick];
    const double lat = rng.Gaussian(cl.lat, cl.spread);
    const double lon = rng.Gaussian(cl.lon, cl.spread);
    // Lognormal price with occasional luxury outliers: heavy skew.
    double price = rng.LogNormal(cl.price_mu, 0.55);
    if (rng.Bernoulli(0.003)) price += rng.Pareto(800.0, 1.1);
    price = std::min(price, 10000.0);
    const double reviews = std::floor(rng.Exponential(1.0 / 24.0));
    const double room =
        room_codes[static_cast<size_t>(rng.Zipf(3, 0.8))];
    table.AppendRow({lat, lon, price, reviews, room});
  }
  return table;
}

Table MakeBorderCrossing(const BorderCrossingOptions& options) {
  Schema schema({{"port", ColumnType::kDouble},
                 {"date", ColumnType::kDouble},
                 {"measure", ColumnType::kCategorical},
                 {"value", ColumnType::kDouble}});
  Table table(std::move(schema));
  Rng rng(options.seed);

  const char* kMeasures[] = {"Trucks",           "Buses",
                             "Personal Vehicles", "Pedestrians",
                             "Rail Containers",   "Truck Containers"};
  std::vector<double> measure_codes;
  for (size_t m = 0; m < options.measures && m < 6; ++m) {
    measure_codes.push_back(table.mutable_schema()->InternLabel(2, kMeasures[m]));
  }

  // Port scale is heavy-tailed: a handful of ports (San Ysidro, El
  // Paso...) dwarf the rest.
  std::vector<double> port_scale(options.num_ports);
  for (size_t p = 0; p < options.num_ports; ++p) {
    port_scale[p] = rng.Pareto(20.0, 0.9);
  }
  std::vector<double> measure_scale(measure_codes.size());
  for (size_t m = 0; m < measure_scale.size(); ++m) {
    measure_scale[m] = rng.Uniform(0.05, 1.0);
  }

  const size_t grid =
      options.num_ports * options.num_days * measure_codes.size();
  const size_t target_rows =
      static_cast<size_t>(options.rows_fraction * static_cast<double>(grid));
  for (size_t r = 0; r < target_rows; ++r) {
    const size_t p =
        static_cast<size_t>(rng.Zipf(options.num_ports, 0.8));
    const double day =
        static_cast<double>(rng.UniformInt(0, options.num_days - 1));
    const size_t m = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(measure_codes.size()) - 1));
    const double season =
        1.0 + 0.3 * std::sin(day / 365.0 * 2.0 * std::numbers::pi);
    double value = port_scale[p] * measure_scale[m] * season *
                   rng.LogNormal(0.0, 0.6);
    value = std::floor(value);
    table.AppendRow({static_cast<double>(p), day, measure_codes[m], value});
  }
  return table;
}

Table MakeSales(const SalesOptions& options) {
  Schema schema({{"utc", ColumnType::kDouble},
                 {"branch", ColumnType::kCategorical},
                 {"price", ColumnType::kDouble}});
  Table table(std::move(schema));
  Rng rng(options.seed);
  const char* kBranches[] = {"New York", "Chicago", "Trenton"};
  const double kBranchWeight[] = {0.5, 0.3, 0.2};
  const double kBranchPriceMu[] = {3.4, 3.0, 2.6};
  std::vector<double> codes;
  for (const char* b : kBranches) {
    codes.push_back(table.mutable_schema()->InternLabel(1, b));
  }
  for (size_t r = 0; r < options.num_rows; ++r) {
    const double u = rng.Uniform();
    size_t b = u < kBranchWeight[0] ? 0 : (u < 0.8 ? 1 : 2);
    const double utc =
        rng.Uniform(0.0, static_cast<double>(options.num_days) * 24.0);
    double price = rng.LogNormal(kBranchPriceMu[b], 0.5);
    price = std::min(price, 149.99);
    table.AppendRow({utc, codes[b], price});
  }
  return table;
}

Table MakeRandomEdges(size_t num_edges, size_t num_vertices, uint64_t seed) {
  PCX_CHECK_GE(num_vertices, 1u);
  Schema schema(
      {{"src", ColumnType::kDouble}, {"dst", ColumnType::kDouble}});
  Table table(std::move(schema));
  Rng rng(seed);
  for (size_t e = 0; e < num_edges; ++e) {
    const double s = static_cast<double>(
        rng.UniformInt(0, static_cast<int64_t>(num_vertices) - 1));
    const double d = static_cast<double>(
        rng.UniformInt(0, static_cast<int64_t>(num_vertices) - 1));
    table.AppendRow({s, d});
  }
  return table;
}

Table MakeChainRelation(size_t rows, size_t domain, uint64_t seed) {
  PCX_CHECK_GE(domain, 1u);
  Schema schema({{"a", ColumnType::kDouble}, {"b", ColumnType::kDouble}});
  Table table(std::move(schema));
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    table.AppendRow({static_cast<double>(
                         rng.UniformInt(0, static_cast<int64_t>(domain) - 1)),
                     static_cast<double>(rng.UniformInt(
                         0, static_cast<int64_t>(domain) - 1))});
  }
  return table;
}

}  // namespace workload
}  // namespace pcx
