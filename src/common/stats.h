#ifndef PCX_COMMON_STATS_H_
#define PCX_COMMON_STATS_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace pcx {

/// Single-pass running mean/variance/min/max accumulator (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// True once at least one observation was added; min()/max() are
  /// NaN before that.
  bool has_value() const { return n_ > 0; }

  size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  double variance() const;
  double stddev() const;
  /// NaN when empty — check has_value() first.
  double min() const { return min_; }
  /// NaN when empty — check has_value() first.
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::quiet_NaN();
  double max_ = std::numeric_limits<double>::quiet_NaN();
};

/// Returns the q-quantile (0 <= q <= 1) of `values` by linear
/// interpolation on the sorted copy. Returns NaN for empty input.
double Quantile(std::vector<double> values, double q);

/// Convenience: median of `values`.
double Median(std::vector<double> values);

/// Normal-distribution inverse CDF (Acklam's rational approximation,
/// |error| < 1.2e-9). Used for parametric (CLT) confidence intervals.
double NormalQuantile(double p);

/// Two-sided z critical value for the given confidence level in (0,1),
/// e.g. 0.95 -> 1.959964.
double ZCritical(double confidence);

}  // namespace pcx

#endif  // PCX_COMMON_STATS_H_
