#ifndef PCX_COMMON_METRICS_H_
#define PCX_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace pcx {

/// Process observability primitives: named atomic counters, gauges and
/// fixed-bucket latency histograms, collected in a MetricsRegistry and
/// rendered as Prometheus text exposition (the METRICS wire verb).
///
/// Design contract ("lock-cheap"): the registry mutex is taken only on
/// Get* (registration/lookup). Every returned reference is stable for
/// the registry's lifetime, so hot paths resolve their metrics once at
/// setup and then touch nothing but relaxed atomics per event — an
/// Observe() is a couple of fetch_adds, never a lock.

/// Monotonic event counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that goes up and down (queue depth, lag, open connections).
/// MaxWith maintains high-water marks without a second metric type.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Returns the post-add value (one atomic op — lets a caller feed a
  /// high-water MaxWith without re-reading a racing gauge).
  int64_t Add(int64_t d) {
    return value_.fetch_add(d, std::memory_order_relaxed) + d;
  }
  void Sub(int64_t d) { value_.fetch_sub(d, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if below it (lock-free running maximum).
  void MaxWith(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency histogram with log-spaced (power-of-two) bucket
/// bounds: 1, 2, 4, ..., 2^26 (≈67 s in microseconds), plus +Inf. Exact
/// count and sum are kept alongside the buckets, so averages are exact
/// and p50/p90/p99 are derivable to within one bucket's resolution
/// (a factor of 2 — the honest precision of a fixed-layout histogram).
///
/// Concurrency: Observe is wait-free per bucket (one fetch_add) plus a
/// CAS loop on the double-valued sum; readers see each observation's
/// bucket/sum updates independently (a scrape may be mid-observation by
/// one event — the standard Prometheus tolerance), but count() is
/// derived from the buckets so `sum(buckets) == count` always holds in
/// one exposition.
class Histogram {
 public:
  /// Finite bucket upper bounds: 2^0 .. 2^(kNumFiniteBuckets-1).
  static constexpr size_t kNumFiniteBuckets = 27;
  /// Finite buckets + the +Inf overflow bucket.
  static constexpr size_t kNumBuckets = kNumFiniteBuckets + 1;

  /// Upper bound of bucket `i`; +infinity for the last bucket.
  static double BucketBound(size_t i);

  /// Records one observation (negative values clamp to 0).
  void Observe(double value);

  /// Number of observations in bucket `i` (not cumulative).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Total observations (the sum over all buckets).
  uint64_t count() const;
  /// Exact sum of all observed values.
  double sum() const;

  /// The q-quantile (0 <= q <= 1) estimated by linear interpolation
  /// within the holding bucket; NaN when the histogram is empty.
  double Quantile(double q) const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_bits_{0};  ///< bit-cast double, CAS-added
};

/// Label set of one series, e.g. {{"verb", "BOUND"}}. Order is
/// significant for series identity (callers use a fixed order per
/// family, which every call site in this codebase does).
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Registry of named metric families, each holding one series per label
/// set. Get* registers on first use and returns the same stable
/// reference afterwards; asking for an existing name with a different
/// metric type is a programming error (PCX_CHECK).
///
/// Naming follows Prometheus conventions: counters end in "_total",
/// histograms are exposed as <name>_bucket/<name>_sum/<name>_count.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name, const MetricLabels& labels = {},
                      const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const MetricLabels& labels = {},
                  const std::string& help = "");
  Histogram& GetHistogram(const std::string& name,
                          const MetricLabels& labels = {},
                          const std::string& help = "");

  /// Renders every family in Prometheus text exposition format (names
  /// sorted, series sorted within a family, one # TYPE/# HELP pair per
  /// family). Deterministic given fixed metric values.
  std::string Exposition() const;

  /// Process-wide registry for components without a natural owner
  /// (client-side backends). Server processes own their registry so
  /// tests can host several isolated servers.
  static MetricsRegistry& Default();

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Series {
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Type type = Type::kCounter;
    std::string help;
    /// Keyed by the rendered label string, so identity is structural.
    std::map<std::string, Series> series;
  };

  Series& GetSeries(const std::string& name, const MetricLabels& labels,
                    const std::string& help, Type type);

  /// Reader/writer: registration (GetSeries) writes the family map,
  /// scrapes (Exposition) only read it — concurrent scrapes never
  /// serialize against each other. The metric values themselves are
  /// atomics reached through stable references, never under this lock.
  mutable SharedMutex mu_;
  std::map<std::string, Family> families_ GUARDED_BY(mu_);
};

/// Renders a label set as `{k1="v1",k2="v2"}` with Prometheus escaping
/// (backslash, quote, newline); empty labels render as "".
std::string FormatMetricLabels(const MetricLabels& labels);

}  // namespace pcx

#endif  // PCX_COMMON_METRICS_H_
