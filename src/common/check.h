#ifndef PCX_COMMON_CHECK_H_
#define PCX_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace pcx {
namespace internal_check {

/// Accumulates a fatal message; aborts the process when destroyed.
/// Used only via the PCX_CHECK family of macros.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }
  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailureStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace pcx

/// Aborts with a message when `cond` is false. Invariant checks only —
/// recoverable errors go through Status.
#define PCX_CHECK(cond)                                                \
  if (cond) {                                                          \
  } else                                                               \
    ::pcx::internal_check::CheckFailureStream(#cond, __FILE__, __LINE__)

#define PCX_CHECK_EQ(a, b) PCX_CHECK((a) == (b))
#define PCX_CHECK_NE(a, b) PCX_CHECK((a) != (b))
#define PCX_CHECK_LT(a, b) PCX_CHECK((a) < (b))
#define PCX_CHECK_LE(a, b) PCX_CHECK((a) <= (b))
#define PCX_CHECK_GT(a, b) PCX_CHECK((a) > (b))
#define PCX_CHECK_GE(a, b) PCX_CHECK((a) >= (b))

#ifndef NDEBUG
#define PCX_DCHECK(cond) PCX_CHECK(cond)
#else
#define PCX_DCHECK(cond) \
  if (true) {            \
  } else                 \
    ::pcx::internal_check::CheckFailureStream(#cond, __FILE__, __LINE__)
#endif

#endif  // PCX_COMMON_CHECK_H_
