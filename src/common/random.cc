#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_set>

#include "common/check.h"

namespace pcx {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  have_cached_gaussian_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  PCX_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  PCX_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % span);
}

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  have_cached_gaussian_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double lambda) {
  PCX_CHECK_GT(lambda, 0.0);
  double u = Uniform();
  while (u <= 1e-300) u = Uniform();
  return -std::log(u) / lambda;
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Gaussian(mu, sigma));
}

double Rng::Pareto(double x_m, double alpha) {
  PCX_CHECK_GT(x_m, 0.0);
  PCX_CHECK_GT(alpha, 0.0);
  double u = Uniform();
  while (u <= 1e-300) u = Uniform();
  return x_m / std::pow(u, 1.0 / alpha);
}

int64_t Rng::Zipf(int64_t n, double s) {
  PCX_CHECK_GT(n, 0);
  if (s <= 0.0) return UniformInt(0, n - 1);
  // Inverse-CDF on the (truncated) zeta distribution. O(n) normalization
  // would be slow for large n, so use rejection from the continuous
  // bounded Pareto envelope.
  while (true) {
    const double u = Uniform();
    const double x = std::pow(1.0 - u * (1.0 - std::pow(n + 1.0, 1.0 - s)),
                              1.0 / (1.0 - s));
    const int64_t k = static_cast<int64_t>(x);
    if (k >= 1 && k <= n) {
      const double ratio = std::pow(static_cast<double>(k) / x, s);
      if (Uniform() < ratio) return k - 1;
    }
  }
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  PCX_CHECK_LE(k, n);
  std::unordered_set<size_t> chosen;
  std::vector<size_t> out;
  out.reserve(k);
  // Floyd's algorithm.
  for (size_t j = n - k; j < n; ++j) {
    const size_t t =
        static_cast<size_t>(UniformInt(0, static_cast<int64_t>(j)));
    if (chosen.count(t)) {
      chosen.insert(j);
      out.push_back(j);
    } else {
      chosen.insert(t);
      out.push_back(t);
    }
  }
  return out;
}

void Rng::Shuffle(std::vector<size_t>* v) {
  for (size_t i = v->size(); i > 1; --i) {
    const size_t j =
        static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i - 1)));
    std::swap((*v)[i - 1], (*v)[j]);
  }
}

}  // namespace pcx
