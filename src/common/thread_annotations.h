#ifndef PCX_COMMON_THREAD_ANNOTATIONS_H_
#define PCX_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety (capability) analysis annotations.
///
/// These macros attach the lock contract of a class to its declaration,
/// so `clang -Wthread-safety -Werror=thread-safety` proves at compile
/// time that every access to a GUARDED_BY field happens with its mutex
/// held, that REQUIRES functions are only called under their lock, and
/// that ACQUIRED_BEFORE lock orders are never inverted. On compilers
/// without the attribute (GCC, MSVC) every macro expands to nothing, so
/// the annotations are free documentation there and a build failure
/// under the clang CI job when violated.
///
/// Use through common/mutex.h (pcx::Mutex / MutexLock / CondVar) rather
/// than annotating std::mutex directly — the std types carry no
/// capability attributes, so the analysis cannot see them.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && (!defined(SWIG))
#define PCX_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PCX_THREAD_ANNOTATION_(x)  // no-op
#endif

/// Declares a class to be a capability ("mutex") the analysis tracks.
#define CAPABILITY(x) PCX_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class that acquires a capability at construction
/// and releases it at destruction (MutexLock, ReaderMutexLock).
#define SCOPED_CAPABILITY PCX_THREAD_ANNOTATION_(scoped_lockable)

/// Field or variable: may only be read/written with `x` held.
#define GUARDED_BY(x) PCX_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field: the *pointed-to* data is protected by `x` (the
/// pointer itself may be read without the lock).
#define PT_GUARDED_BY(x) PCX_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Lock-order edges, declared on the mutex member itself. Checked under
/// -Wthread-safety-beta (the clang CI job enables it).
#define ACQUIRED_BEFORE(...) PCX_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) PCX_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function contract: the caller must hold the capability (exclusively
/// / shared) before calling, and it stays held across the call.
#define REQUIRES(...) PCX_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  PCX_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires/releases the capability itself (Lock()/Unlock()).
#define ACQUIRE(...) PCX_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  PCX_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) PCX_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  PCX_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  PCX_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// TryLock: acquires only when returning `success`.
#define TRY_ACQUIRE(...) \
  PCX_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  PCX_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (non-reentrant mutexes).
#define EXCLUDES(...) PCX_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that the function returns a reference to the capability
/// guarding its result (accessors exposing a member mutex).
#define RETURN_CAPABILITY(x) PCX_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: turns the analysis off for one function whose locking
/// is deliberately invisible to it (e.g. lock ownership handed across
/// threads). Every use needs a comment explaining why.
#define NO_THREAD_SAFETY_ANALYSIS \
  PCX_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Assert-style: tells the analysis the capability is held here without
/// generating code (for callbacks whose caller guarantees the lock).
#define ASSERT_CAPABILITY(x) PCX_THREAD_ANNOTATION_(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  PCX_THREAD_ANNOTATION_(assert_shared_capability(x))

#endif  // PCX_COMMON_THREAD_ANNOTATIONS_H_
