#ifndef PCX_COMMON_MUTEX_H_
#define PCX_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace pcx {

/// Annotated mutex layer: drop-in wrappers over the std synchronization
/// primitives that carry Clang capability attributes, so the lock
/// contract of every concurrent structure in pcx is machine-checked by
/// `-Wthread-safety -Werror=thread-safety` instead of living in
/// comments. Zero runtime cost: each wrapper is exactly its std member,
/// every method is an inline forward, and on non-clang compilers the
/// attributes vanish entirely.
///
/// Usage mirrors absl::Mutex:
///
///   class Account {
///     mutable Mutex mu_;
///     int64_t balance_ GUARDED_BY(mu_) = 0;
///    public:
///     void Deposit(int64_t n) {
///       MutexLock lock(mu_);
///       balance_ += n;  // OK: mu_ held
///     }
///     int64_t BalanceLocked() const REQUIRES(mu_) { return balance_; }
///   };
///
/// Condition variables: use pcx::CondVar with pcx::Mutex. It wraps
/// std::condition_variable_any, whose wait(Mutex&) only needs
/// BasicLockable — the internal unlock/relock inside wait() is
/// invisible to the analysis, which (correctly) sees the capability
/// held before and after.

/// Exclusive mutex with a thread-safety capability. Satisfies
/// BasicLockable/Lockable (lowercase lock/unlock), so it also works
/// with std::lock_guard / std::unique_lock where the un-annotated form
/// is needed — but prefer MutexLock, which the analysis understands.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// BasicLockable/Lockable spelling (std interop: CondVar's
  /// condition_variable_any waits directly on the Mutex).
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Reader/writer mutex capability (wraps std::shared_mutex). Writers
/// use Lock/Unlock (or WriterMutexLock); readers ReaderLock/
/// ReaderUnlock (or ReaderMutexLock). A GUARDED_BY(shared_mu_) field
/// may be written under the exclusive lock and read under either.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool ReaderTryLock() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a pcx::Mutex (std::lock_guard shaped, but
/// visible to the capability analysis).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over a SharedMutex (the writer side).
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.ReaderLock();
  }
  ~ReaderMutexLock() RELEASE() { mu_.ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable for pcx::Mutex. Wait takes the Mutex the caller
/// already holds (REQUIRES enforces it); the predicate runs with the
/// lock held, exactly like std::condition_variable::wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  /// Returns pred() at wake-up (false = timed out with pred still
  /// false), mirroring std::condition_variable::wait_for.
  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
               Predicate pred) REQUIRES(mu) {
    return cv_.wait_for(mu, timeout, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace pcx

#endif  // PCX_COMMON_MUTEX_H_
