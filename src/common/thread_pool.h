#ifndef PCX_COMMON_THREAD_POOL_H_
#define PCX_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace pcx {

/// Fixed-size worker pool for fanning independent tasks (one bound
/// query, one bench configuration...) across cores. Tasks must not
/// throw; error handling is by value (StatusOr) like everywhere else in
/// pcx. Determinism is the caller's job and is easy to get: write each
/// task's result into a slot indexed by the task's position, as
/// ParallelFor does.
class ThreadPool {
 public:
  /// `num_threads == 0` uses std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues one task for any worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  /// Runs fn(0) ... fn(n - 1), spread over the workers, and returns when
  /// all calls are done. Results are deterministic as long as fn(i)
  /// writes only to per-index state. The calling thread participates, so
  /// ParallelFor(n, fn) with a single-threaded pool degenerates to a
  /// plain loop.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  Mutex mu_;
  CondVar work_available_;
  CondVar idle_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  /// Queued + currently executing tasks.
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace pcx

#endif  // PCX_COMMON_THREAD_POOL_H_
