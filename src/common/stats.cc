#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace pcx {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  return n_ == 0 ? 0.0 : mean_;
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  PCX_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Median(std::vector<double> values) {
  return Quantile(std::move(values), 0.5);
}

double NormalQuantile(double p) {
  PCX_CHECK(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1.0 - p_low;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double ZCritical(double confidence) {
  PCX_CHECK(confidence > 0.0 && confidence < 1.0);
  return NormalQuantile(0.5 + confidence / 2.0);
}

}  // namespace pcx
