#ifndef PCX_COMMON_STATUSOR_H_
#define PCX_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace pcx {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Accessing the value of a non-OK StatusOr aborts.
/// [[nodiscard]] at class level: ignoring a returned StatusOr drops
/// both the value and the error it may carry.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit construction from a value (mirrors absl::StatusOr).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {
    PCX_CHECK(!status_.ok()) << "StatusOr constructed from OK status without value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    PCX_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    PCX_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    PCX_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a StatusOr expression to `lhs`, or returns its
/// status from the enclosing function.
#define PCX_ASSIGN_OR_RETURN(lhs, expr)             \
  PCX_ASSIGN_OR_RETURN_IMPL_(                       \
      PCX_STATUS_MACRO_CONCAT_(_pcx_sor, __LINE__), lhs, expr)

#define PCX_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define PCX_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define PCX_STATUS_MACRO_CONCAT_(x, y) PCX_STATUS_MACRO_CONCAT_INNER_(x, y)

}  // namespace pcx

#endif  // PCX_COMMON_STATUSOR_H_
