#include "common/status.h"

namespace pcx {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInfeasible:
      return "INFEASIBLE";
    case StatusCode::kUnbounded:
      return "UNBOUNDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kProtocolError:
      return "PROTOCOL_ERROR";
    case StatusCode::kDivergence:
      return "DIVERGENCE";
  }
  return "UNKNOWN";
}

bool ParseStatusCode(const std::string& name, StatusCode* code) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kResourceExhausted, StatusCode::kInfeasible,
        StatusCode::kUnbounded, StatusCode::kUnavailable,
        StatusCode::kProtocolError, StatusCode::kDivergence}) {
    if (name == StatusCodeToString(c)) {
      *code = c;
      return true;
    }
  }
  return false;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pcx
