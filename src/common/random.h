#ifndef PCX_COMMON_RANDOM_H_
#define PCX_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pcx {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
/// All experiments in the repo are reproducible given a seed; no code
/// path uses std::random_device.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator via splitmix64 expansion of `seed`.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with the given rate (lambda > 0).
  double Exponential(double lambda);

  /// Lognormal: exp(N(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Pareto with scale x_m > 0 and shape alpha > 0 (heavy tail).
  double Pareto(double x_m, double alpha);

  /// Zipf-like integer in [0, n) with exponent s (s=0 is uniform).
  int64_t Zipf(int64_t n, double s);

  /// Bernoulli(p).
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples k distinct indices from [0, n) (Floyd's algorithm).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// In-place Fisher-Yates shuffle of indices [0, n).
  void Shuffle(std::vector<size_t>* v);

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace pcx

#endif  // PCX_COMMON_RANDOM_H_
