#ifndef PCX_COMMON_TEXT_H_
#define PCX_COMMON_TEXT_H_

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/statusor.h"

namespace pcx {

/// Small shared text-parsing helpers used by the serialization, the
/// snapshot format, and the serving protocol. One canonical copy: the
/// pcset format, snapshots and the line protocol must all agree on what
/// "whitespace" and "a number" mean (CRLF tolerance included).

/// Strips leading/trailing spaces, tabs, CR and LF.
inline std::string TrimWhitespace(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// Splits on runs of whitespace; no empty tokens.
inline std::vector<std::string> SplitWhitespace(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

/// Splits on every occurrence of `sep` (empty fields preserved; an
/// empty input yields one empty field).
inline std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t at = s.find(sep, start);
    if (at == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, at - start));
    start = at + 1;
  }
  return out;
}

/// Strict unsigned parse: the whole token must be digits of `base`
/// (a leading '-' is rejected rather than wrapped around).
inline StatusOr<uint64_t> ParseU64(const std::string& s, int base = 10) {
  if (s.empty()) return Status::InvalidArgument("empty number");
  if (s[0] == '-' || s[0] == '+') {
    return Status::InvalidArgument("bad number '" + s + "'");
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, base);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad number '" + s + "'");
  }
  return static_cast<uint64_t>(v);
}

}  // namespace pcx

#endif  // PCX_COMMON_TEXT_H_
