#include "common/trace.h"

#include <atomic>
#include <cstdio>

namespace pcx {

namespace {

std::atomic<uint64_t> g_next_trace_id{1};
thread_local TraceContext* t_current_trace = nullptr;

void AppendMicros(std::string& out, double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", us);
  out += buf;
}

}  // namespace

TraceContext::TraceContext()
    : id_(g_next_trace_id.fetch_add(1, std::memory_order_relaxed)) {
  entries_.reserve(8);
}

void TraceContext::AddStage(const char* stage, double us) {
  entries_.push_back(Entry{stage, us});
}

void TraceContext::AddShardSolve(double us) {
  entries_.push_back(Entry{nullptr, us});
}

std::string TraceContext::FormatComment() const {
  std::string out = "#trace id=";
  out += std::to_string(id_);
  double total = 0.0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    total += e.us;
    if (e.stage != nullptr) {
      out += " ";
      out += e.stage;
      out += "_us=";
      AppendMicros(out, e.us);
      continue;
    }
    // Group this run of consecutive shard entries into one list.
    out += " solve_us=[";
    AppendMicros(out, e.us);
    while (i + 1 < entries_.size() && entries_[i + 1].stage == nullptr) {
      ++i;
      total += entries_[i].us;
      out += ",";
      AppendMicros(out, entries_[i].us);
    }
    out += "]";
  }
  out += " total_us=";
  AppendMicros(out, total);
  out += "\n";
  return out;
}

TraceContext* CurrentTrace() { return t_current_trace; }

ScopedTrace::ScopedTrace(TraceContext* ctx) : previous_(t_current_trace) {
  t_current_trace = ctx;
}

ScopedTrace::~ScopedTrace() { t_current_trace = previous_; }

TraceSpan::TraceSpan(const char* stage, TraceContext* ctx)
    : stage_(stage), ctx_(ctx) {
  if (ctx_ != nullptr) start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (ctx_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  const double us =
      std::chrono::duration<double, std::micro>(end - start_).count();
  ctx_->AddStage(stage_, us);
}

}  // namespace pcx
