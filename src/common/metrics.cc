#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace pcx {

namespace {

/// Formats a double the way Prometheus expects: integral values render
/// without a fractional part, non-integral values with enough digits to
/// round-trip, and +Inf as "+Inf".
std::string FormatMetricValue(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Renders labels plus one extra pair (used for histogram `le=`);
/// the extra pair is appended last, matching Prometheus convention.
std::string FormatLabelsWith(const MetricLabels& labels,
                             const std::string& extra_key,
                             const std::string& extra_value) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  if (!first) out += ",";
  out += extra_key + "=\"" + extra_value + "\"";
  out += "}";
  return out;
}

}  // namespace

std::string FormatMetricLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  out += "}";
  return out;
}

double Histogram::BucketBound(size_t i) {
  PCX_CHECK(i < kNumBuckets);
  if (i >= kNumFiniteBuckets) return std::numeric_limits<double>::infinity();
  return static_cast<double>(uint64_t{1} << i);
}

void Histogram::Observe(double value) {
  if (!(value > 0.0)) value = 0.0;  // clamps negatives and NaN
  // Index of the first bucket whose bound is >= value. Bounds are
  // 2^i, so this is the bit width of ceil(value) minus one, with
  // values <= 1 landing in bucket 0.
  size_t idx = 0;
  if (value > BucketBound(kNumFiniteBuckets - 1)) {
    // Checked before any integer conversion: a double beyond uint64
    // range would make the cast below undefined.
    idx = kNumFiniteBuckets;  // +Inf bucket
  } else if (value > 1.0) {
    const uint64_t v = static_cast<uint64_t>(std::ceil(value));
    idx = static_cast<size_t>(std::bit_width(v));
    if ((uint64_t{1} << (idx - 1)) == v) --idx;  // exact power of two
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  uint64_t old_bits = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    const double new_sum = std::bit_cast<double>(old_bits) + value;
    const uint64_t new_bits = std::bit_cast<uint64_t>(new_sum);
    if (sum_bits_.compare_exchange_weak(old_bits, new_bits,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::Quantile(double q) const {
  PCX_CHECK(q >= 0.0 && q <= 1.0);
  std::array<uint64_t, kNumBuckets> counts;
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    const uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= rank) {
      const double hi = (i >= kNumFiniteBuckets)
                            ? BucketBound(kNumFiniteBuckets - 1) * 2.0
                            : BucketBound(i);
      const double lo = (i == 0) ? 0.0 : BucketBound(i - 1);
      // Linear interpolation of the rank within the bucket's range.
      const double frac =
          (rank - static_cast<double>(cumulative)) / counts[i];
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative = next;
  }
  return BucketBound(kNumFiniteBuckets - 1) * 2.0;
}

MetricsRegistry::Series& MetricsRegistry::GetSeries(const std::string& name,
                                                    const MetricLabels& labels,
                                                    const std::string& help,
                                                    Type type) {
  WriterMutexLock lock(mu_);
  auto [fit, family_inserted] = families_.try_emplace(name);
  Family& family = fit->second;
  if (family_inserted) {
    family.type = type;
    family.help = help;
  } else {
    PCX_CHECK(family.type == type)
        << "metric '" << name << "' re-registered with a different type";
    if (family.help.empty() && !help.empty()) family.help = help;
  }
  const std::string key = FormatMetricLabels(labels);
  auto [sit, series_inserted] = family.series.try_emplace(key);
  Series& series = sit->second;
  if (series_inserted) {
    series.labels = labels;
    switch (type) {
      case Type::kCounter:
        series.counter = std::make_unique<Counter>();
        break;
      case Type::kGauge:
        series.gauge = std::make_unique<Gauge>();
        break;
      case Type::kHistogram:
        series.histogram = std::make_unique<Histogram>();
        break;
    }
  }
  return series;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const MetricLabels& labels,
                                     const std::string& help) {
  return *GetSeries(name, labels, help, Type::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const MetricLabels& labels,
                                 const std::string& help) {
  return *GetSeries(name, labels, help, Type::kGauge).gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const MetricLabels& labels,
                                         const std::string& help) {
  return *GetSeries(name, labels, help, Type::kHistogram).histogram;
}

std::string MetricsRegistry::Exposition() const {
  ReaderMutexLock lock(mu_);
  std::ostringstream out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out << "# HELP " << name << " " << family.help << "\n";
    }
    const char* type_str = "counter";
    if (family.type == Type::kGauge) type_str = "gauge";
    if (family.type == Type::kHistogram) type_str = "histogram";
    out << "# TYPE " << name << " " << type_str << "\n";
    for (const auto& [key, series] : family.series) {
      switch (family.type) {
        case Type::kCounter:
          out << name << key << " " << series.counter->value() << "\n";
          break;
        case Type::kGauge:
          out << name << key << " " << series.gauge->value() << "\n";
          break;
        case Type::kHistogram: {
          const Histogram& h = *series.histogram;
          // Snapshot buckets once so the cumulative counts and the
          // final _count agree even under concurrent Observe calls.
          std::array<uint64_t, Histogram::kNumBuckets> counts;
          for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
            counts[i] = h.bucket_count(i);
          }
          uint64_t cumulative = 0;
          for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
            cumulative += counts[i];
            out << name << "_bucket"
                << FormatLabelsWith(series.labels, "le",
                                    FormatMetricValue(Histogram::BucketBound(i)))
                << " " << cumulative << "\n";
          }
          out << name << "_sum" << key << " " << FormatMetricValue(h.sum())
              << "\n";
          out << name << "_count" << key << " " << cumulative << "\n";
          break;
        }
      }
    }
  }
  return out.str();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace pcx
