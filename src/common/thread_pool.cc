#include "common/thread_pool.h"

#include <atomic>
#include <memory>

namespace pcx {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  idle_.Wait(mu_, [this]() REQUIRES(mu_) { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      work_available_.Wait(
          mu_, [this]() REQUIRES(mu_) { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) idle_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // The caller participates, so only enqueue enough helpers to occupy
  // the rest of the pool; each helper drains the shared index counter.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto drain = [next, n, &fn] {
    for (size_t i = (*next)++; i < n; i = (*next)++) fn(i);
  };
  const size_t helpers = std::min(num_threads(), n) - 1;
  for (size_t h = 0; h < helpers; ++h) Submit(drain);
  drain();
  Wait();
}

}  // namespace pcx
