#ifndef PCX_COMMON_STATUS_H_
#define PCX_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace pcx {

/// Error categories used across the library. Modeled after the
/// absl/arrow status codes but reduced to what pcx actually needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kInfeasible,  ///< An optimization model has no feasible solution.
  kUnbounded,   ///< An optimization model is unbounded.
  /// A remote backend's transport is gone: connection refused, the
  /// server closed the session, or a read/write on the wire failed.
  kUnavailable,
  /// The wire protocol itself broke: a reply line that does not parse
  /// as RANGE/GROUPS/STATS/ERR. Distinguishable from kInvalidArgument
  /// (the *request* was bad) and kUnavailable (the connection died).
  kProtocolError,
  /// Mirrored replicas returned answers that were not bit-identical —
  /// a violation of the same-epoch determinism guarantee.
  kDivergence,
};

/// Returns a stable human-readable name for a status code. These names
/// travel on the wire (pcx_serve "ERR <CODE> <message>" replies), so
/// they are part of the serving protocol, not just log text.
const char* StatusCodeToString(StatusCode code);

/// Inverse of StatusCodeToString. Returns false (leaving `code`
/// untouched) when `name` is not a known code name — a reply from a
/// newer server with codes this client does not know about.
bool ParseStatusCode(const std::string& name, StatusCode* code);

/// A cheap, copyable success-or-error value. The library does not throw
/// exceptions across API boundaries; fallible public functions return
/// Status or StatusOr<T>. The class-level [[nodiscard]] makes every
/// by-value return of a Status a compile error to ignore — a dropped
/// error is a silently swallowed failure.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Unbounded(std::string msg) {
    return Status(StatusCode::kUnbounded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ProtocolError(std::string msg) {
    return Status(StatusCode::kProtocolError, std::move(msg));
  }
  static Status Divergence(std::string msg) {
    return Status(StatusCode::kDivergence, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define PCX_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::pcx::Status _pcx_status = (expr);      \
    if (!_pcx_status.ok()) return _pcx_status; \
  } while (0)

}  // namespace pcx

#endif  // PCX_COMMON_STATUS_H_
