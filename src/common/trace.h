#ifndef PCX_COMMON_TRACE_H_
#define PCX_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace pcx {

/// Per-request stage tracing. A request handler installs a TraceContext
/// with ScopedTrace; any code on that thread (parser, router, solver,
/// serializer) then times itself with RAII TraceSpan stage timers, and
/// the handler renders the assembled trace as a one-line `#trace ...`
/// protocol comment after the reply (the TRACE ON|OFF session toggle).
///
/// When no context is installed — the common case — TraceSpan is a
/// no-op that reads no clocks, so tracing costs nothing when off.
class TraceContext {
 public:
  TraceContext();

  /// Globally monotonic id assigned at construction.
  uint64_t id() const { return id_; }

  /// Appends a named stage duration, in order of completion.
  void AddStage(const char* stage, double us);
  /// Appends one per-shard solve duration; consecutive shard entries
  /// render grouped as `solve_us=[a,b,...]`.
  void AddShardSolve(double us);

  /// Renders `#trace id=N parse_us=12.3 route_us=0.8 solve_us=[410.2]
  /// serialize_us=1.1 total_us=425.0\n`. Stages appear in completion
  /// order; total_us is the sum of all recorded durations.
  std::string FormatComment() const;

  bool empty() const { return entries_.empty(); }

 private:
  struct Entry {
    const char* stage;  ///< nullptr marks a per-shard solve entry
    double us;
  };
  uint64_t id_;
  std::vector<Entry> entries_;
};

/// The TraceContext installed on this thread, or nullptr.
TraceContext* CurrentTrace();

/// Installs `ctx` as the thread's current trace for this scope,
/// restoring the previous one (usually nullptr) on destruction.
class ScopedTrace {
 public:
  explicit ScopedTrace(TraceContext* ctx);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceContext* previous_;
};

/// RAII stage timer: records `stage` into the context on destruction.
/// With a null context (tracing off) it does nothing and reads no
/// clocks.
class TraceSpan {
 public:
  explicit TraceSpan(const char* stage, TraceContext* ctx = CurrentTrace());
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* stage_;
  TraceContext* ctx_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pcx

#endif  // PCX_COMMON_TRACE_H_
