#ifndef PCX_COMMON_COVERING_SET_H_
#define PCX_COMMON_COVERING_SET_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <string>
#include <vector>

namespace pcx {

/// A set of predicate-constraint indices stored as 64-bit blocks.
///
/// Decomposition cells, allocation-model rows and instance building all
/// track "which PCs cover this cell"; with vector<size_t> bookkeeping
/// every membership test was a linear scan and every copy an allocation
/// proportional to the covering size. A bitset makes membership O(1),
/// union/intersection O(n/64), and keeps per-cell state to a few words
/// for the typical tens-to-thousands of constraints.
///
/// Invariant: blocks_ never ends in a zero block, so equality and
/// hashing are plain block-vector comparisons regardless of the largest
/// index ever set.
class CoveringSet {
 public:
  CoveringSet() = default;

  static CoveringSet FromIndices(std::initializer_list<size_t> indices) {
    CoveringSet s;
    for (size_t i : indices) s.Set(i);
    return s;
  }
  template <typename Container>
  static CoveringSet FromRange(const Container& indices) {
    CoveringSet s;
    for (size_t i : indices) s.Set(i);
    return s;
  }

  void Set(size_t i) {
    const size_t block = i / 64;
    if (block >= blocks_.size()) blocks_.resize(block + 1, 0);
    blocks_[block] |= uint64_t{1} << (i % 64);
  }

  void Reset(size_t i) {
    const size_t block = i / 64;
    if (block >= blocks_.size()) return;
    blocks_[block] &= ~(uint64_t{1} << (i % 64));
    Trim();
  }

  bool Test(size_t i) const {
    const size_t block = i / 64;
    if (block >= blocks_.size()) return false;
    return (blocks_[block] >> (i % 64)) & 1;
  }

  bool Empty() const { return blocks_.empty(); }

  /// Number of elements (popcount over all blocks).
  size_t Count() const {
    size_t n = 0;
    for (uint64_t b : blocks_) n += static_cast<size_t>(std::popcount(b));
    return n;
  }

  CoveringSet& operator|=(const CoveringSet& other) {
    if (other.blocks_.size() > blocks_.size()) {
      blocks_.resize(other.blocks_.size(), 0);
    }
    for (size_t i = 0; i < other.blocks_.size(); ++i) {
      blocks_[i] |= other.blocks_[i];
    }
    return *this;
  }

  CoveringSet& operator&=(const CoveringSet& other) {
    if (other.blocks_.size() < blocks_.size()) {
      blocks_.resize(other.blocks_.size());
    }
    for (size_t i = 0; i < blocks_.size(); ++i) blocks_[i] &= other.blocks_[i];
    Trim();
    return *this;
  }

  friend CoveringSet operator|(CoveringSet a, const CoveringSet& b) {
    a |= b;
    return a;
  }
  friend CoveringSet operator&(CoveringSet a, const CoveringSet& b) {
    a &= b;
    return a;
  }

  bool Intersects(const CoveringSet& other) const {
    const size_t n = std::min(blocks_.size(), other.blocks_.size());
    for (size_t i = 0; i < n; ++i) {
      if (blocks_[i] & other.blocks_[i]) return true;
    }
    return false;
  }

  /// True if every element of `other` is in this set.
  bool ContainsAll(const CoveringSet& other) const {
    if (other.blocks_.size() > blocks_.size()) return false;
    for (size_t i = 0; i < other.blocks_.size(); ++i) {
      if ((other.blocks_[i] & ~blocks_[i]) != 0) return false;
    }
    return true;
  }

  friend bool operator==(const CoveringSet& a, const CoveringSet& b) {
    return a.blocks_ == b.blocks_;
  }
  friend bool operator!=(const CoveringSet& a, const CoveringSet& b) {
    return !(a == b);
  }

  /// Forward iteration over the set indices in increasing order, so
  /// `for (size_t j : covering)` works at every former vector call site.
  class Iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = size_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const size_t*;
    using reference = size_t;

    Iterator(const std::vector<uint64_t>* blocks, size_t block)
        : blocks_(blocks), block_(block) {
      if (block_ < blocks_->size()) {
        current_ = (*blocks_)[block_];
        SkipDrainedBlocks();
      }
    }
    size_t operator*() const {
      return block_ * 64 +
             static_cast<size_t>(std::countr_zero(current_));
    }
    Iterator& operator++() {
      current_ &= current_ - 1;  // clear lowest set bit
      SkipDrainedBlocks();
      return *this;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.block_ == b.block_ && a.current_ == b.current_;
    }
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return !(a == b);
    }

   private:
    /// Moves to the next non-empty block once `current_` (the unread
    /// remainder of block `block_`) is exhausted; never re-reads a
    /// block it already handed out bits from.
    void SkipDrainedBlocks() {
      while (current_ == 0) {
        ++block_;
        if (block_ >= blocks_->size()) {
          block_ = blocks_->size();
          return;
        }
        current_ = (*blocks_)[block_];
      }
    }
    const std::vector<uint64_t>* blocks_;
    size_t block_;
    uint64_t current_ = 0;
  };

  Iterator begin() const { return Iterator(&blocks_, 0); }
  Iterator end() const { return Iterator(&blocks_, blocks_.size()); }

  std::vector<size_t> ToIndices() const {
    std::vector<size_t> out;
    out.reserve(Count());
    for (size_t i : *this) out.push_back(i);
    return out;
  }

  size_t Hash() const {
    size_t h = 0xcbf29ce484222325ull;
    for (uint64_t b : blocks_) {
      h ^= static_cast<size_t>(b);
      h *= 0x100000001b3ull;
    }
    return h;
  }

  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (size_t i : *this) {
      if (!first) out += ", ";
      out += std::to_string(i);
      first = false;
    }
    out += "}";
    return out;
  }

 private:
  void Trim() {
    while (!blocks_.empty() && blocks_.back() == 0) blocks_.pop_back();
  }

  std::vector<uint64_t> blocks_;
};

}  // namespace pcx

#endif  // PCX_COMMON_COVERING_SET_H_
