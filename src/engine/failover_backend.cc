#include "engine/failover_backend.h"

#include <utility>

#include "common/metrics.h"

namespace pcx {

namespace {

bool IsFailoverWorthy(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kProtocolError;
}

}  // namespace

FailoverBackend::FailoverBackend(std::vector<std::string> uris, Opener opener)
    : uris_(std::move(uris)),
      opener_(std::move(opener)),
      slots_(uris_.size()) {}

std::string FailoverBackend::name() const {
  std::string out = "failover:";
  for (size_t i = 0; i < uris_.size(); ++i) {
    if (i > 0) out += '|';
    out += uris_[i];
  }
  return out;
}

size_t FailoverBackend::num_attrs() const {
  MutexLock lock(mu_);
  for (const std::shared_ptr<BoundBackend>& slot : slots_) {
    if (slot != nullptr && slot->num_attrs() != 0) return slot->num_attrs();
  }
  return 0;
}

StatusOr<size_t> FailoverBackend::PickLocked() {
  // Best = freshest loaded epoch; ties break toward the lowest index so
  // the primary (candidate 0) wins over caught-up replicas. An "up but
  // empty" candidate (loaded=false) is a last resort: it can still
  // answer Health() and typed errors, which beats kUnavailable.
  size_t best = uris_.size();
  uint64_t best_epoch = 0;
  bool best_loaded = false;
  Status last_error = Status::Unavailable("failover: has no candidates");
  for (size_t i = 0; i < uris_.size(); ++i) {
    if (slots_[i] == nullptr) {
      StatusOr<std::shared_ptr<BoundBackend>> opened = opener_(uris_[i]);
      if (!opened.ok()) {
        last_error = opened.status();
        continue;
      }
      slots_[i] = std::move(*opened);
    }
    const StatusOr<HealthInfo> health = slots_[i]->Health();
    if (!health.ok()) {
      last_error = health.status();
      if (IsFailoverWorthy(health.status())) DemoteLocked(i);
      continue;
    }
    const bool better =
        best == uris_.size() || (health->loaded && !best_loaded) ||
        (health->loaded == best_loaded && health->epoch > best_epoch);
    if (better) {
      best = i;
      best_epoch = health->epoch;
      best_loaded = health->loaded;
    }
  }
  if (best == uris_.size()) {
    return Status::Unavailable("failover: no candidate is reachable (last: " +
                               last_error.message() + ")");
  }
  return best;
}

void FailoverBackend::DemoteLocked(size_t i) {
  slots_[i].reset();
  // Client-side event with no owning server registry: the process
  // default is the natural home (one failover stack per process).
  MetricsRegistry::Default()
      .GetCounter("pcx_failover_demotions_total", {},
                  "Candidate backends demoted after a failover-worthy error")
      .Increment();
}

template <typename T>
StatusOr<T> FailoverBackend::WithFailover(
    const std::function<StatusOr<T>(BoundBackend&)>& op) {
  Status last_error = Status::OK();
  // Each candidate gets at most one shot per call: a demotion removes
  // it from the next PickLocked (until re-probed by a later call), and
  // the loop bound stops a pathological flip-flop.
  for (size_t attempt = 0; attempt < uris_.size(); ++attempt) {
    std::shared_ptr<BoundBackend> target;
    size_t index = 0;
    {
      MutexLock lock(mu_);
      PCX_ASSIGN_OR_RETURN(index, PickLocked());
      target = slots_[index];
    }
    // The call itself runs without mu_: backends are internally
    // synchronized, and holding mu_ across a blocking wire round-trip
    // would serialize queries against re-picks.
    StatusOr<T> result = op(*target);
    if (result.ok() || !IsFailoverWorthy(result.status())) return result;
    last_error = result.status();
    MutexLock lock(mu_);
    // Demote only if the slot is still the one we used — a concurrent
    // caller may have already demoted and reopened it.
    if (slots_[index] == target) DemoteLocked(index);
  }
  return last_error;
}

StatusOr<ResultRange> FailoverBackend::Bound(const AggQuery& query) {
  return WithFailover<ResultRange>(
      [&](BoundBackend& b) { return b.Bound(query); });
}

StatusOr<std::vector<GroupRange>> FailoverBackend::BoundGroupBy(
    const AggQuery& query, size_t group_attr,
    const std::vector<double>& group_values) {
  return WithFailover<std::vector<GroupRange>>([&](BoundBackend& b) {
    return b.BoundGroupBy(query, group_attr, group_values);
  });
}

StatusOr<EngineStats> FailoverBackend::Stats() {
  return WithFailover<EngineStats>(
      [](BoundBackend& b) { return b.Stats(); });
}

StatusOr<uint64_t> FailoverBackend::Epoch() {
  return WithFailover<uint64_t>([](BoundBackend& b) { return b.Epoch(); });
}

StatusOr<HealthInfo> FailoverBackend::Health() {
  return WithFailover<HealthInfo>(
      [](BoundBackend& b) { return b.Health(); });
}

}  // namespace pcx
