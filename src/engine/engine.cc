#include "engine/engine.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/text.h"
#include "engine/failover_backend.h"
#include "engine/mirror_backend.h"
#include "engine/remote_backend.h"
#include "engine/sharded_backend.h"
#include "pc/serialization.h"
#include "serve/partitioner.h"
#include "serve/snapshot.h"

namespace pcx {

namespace {

constexpr const char* kSchemes = "local:/snapshot:/tcp:/mirror:/failover:";

struct UriBody {
  std::string path;
  std::vector<std::pair<std::string, std::string>> params;
};

/// Splits "body?k=v&k=v" into path + params (no unescaping; the pcx
/// URI vocabulary needs none).
StatusOr<UriBody> SplitParams(const std::string& body) {
  UriBody out;
  const size_t q = body.find('?');
  out.path = body.substr(0, q);
  if (q == std::string::npos) return out;
  for (const std::string& part : SplitOn(body.substr(q + 1), '&')) {
    if (part.empty()) continue;
    const size_t eq = part.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("bad URI parameter '" + part +
                                     "' (want key=value)");
    }
    out.params.emplace_back(part.substr(0, eq), part.substr(eq + 1));
  }
  return out;
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// "0,2,5" -> integer-domain flags applied over `num_attrs` attributes.
StatusOr<std::vector<AttrDomain>> ParseIntAttrs(const std::string& value,
                                                size_t num_attrs) {
  std::vector<AttrDomain> domains(num_attrs, AttrDomain::kContinuous);
  for (const std::string& part : SplitOn(value, ',')) {
    if (part.empty()) continue;
    const StatusOr<uint64_t> attr = ParseU64(TrimWhitespace(part));
    if (!attr.ok() || *attr >= num_attrs) {
      return Status::InvalidArgument("int= entry '" + part +
                                     "' is not a valid attribute index");
    }
    domains[static_cast<size_t>(*attr)] = AttrDomain::kInteger;
  }
  return domains;
}

StatusOr<Engine> OpenLocal(const UriBody& body, Engine::Options options) {
  if (body.path.empty()) {
    return Status::InvalidArgument(
        "local: URI needs a pcset path (local:<path>); for in-memory sets "
        "use Engine::Local");
  }
  PCX_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(body.path));
  PCX_ASSIGN_OR_RETURN(PredicateConstraintSet pcs, ParsePcSet(text));
  std::vector<AttrDomain> domains = std::move(options.domains);
  for (const auto& [key, value] : body.params) {
    if (key == "int") {
      PCX_ASSIGN_OR_RETURN(domains, ParseIntAttrs(value, pcs.num_attrs()));
    } else if (key == "threads") {
      PCX_ASSIGN_OR_RETURN(const uint64_t n, ParseU64(value));
      options.local.num_threads = static_cast<size_t>(n);
    } else {
      return Status::InvalidArgument("unknown local: URI parameter '" + key +
                                     "'");
    }
  }
  return Engine::Local(std::move(pcs), std::move(domains), options.local);
}

StatusOr<Engine> OpenSnapshot(const UriBody& body, Engine::Options options) {
  if (body.path.empty()) {
    return Status::InvalidArgument("snapshot: URI needs a path");
  }
  PCX_ASSIGN_OR_RETURN(Snapshot snap, LoadSnapshot(body.path));
  size_t reshard = 0;
  PartitionStrategy strategy = PartitionStrategy::kAttributeRange;
  bool strategy_given = false;
  for (const auto& [key, value] : body.params) {
    if (key == "shards") {
      PCX_ASSIGN_OR_RETURN(const uint64_t k, ParseU64(value));
      if (k == 0 || k > kMaxShards) {
        return Status::OutOfRange("shards= must be in 1.." +
                                  std::to_string(kMaxShards));
      }
      reshard = static_cast<size_t>(k);
    } else if (key == "strategy") {
      if (value == "range") {
        strategy = PartitionStrategy::kAttributeRange;
      } else if (value == "roundrobin") {
        strategy = PartitionStrategy::kRoundRobin;
      } else {
        return Status::InvalidArgument("unknown strategy '" + value +
                                       "' (want range|roundrobin)");
      }
      strategy_given = true;
    } else if (key == "scatter") {
      options.sharded.scatter_gather = value != "0";
    } else if (key == "threads") {
      PCX_ASSIGN_OR_RETURN(const uint64_t n, ParseU64(value));
      options.sharded.num_threads = static_cast<size_t>(n);
    } else {
      return Status::InvalidArgument("unknown snapshot: URI parameter '" +
                                     key + "'");
    }
  }
  // Repartition when the caller asked for a different width OR an
  // explicit strategy (an explicit strategy must never be silently
  // ignored). The snapshot's epoch is kept: same set + same epoch ⇒
  // answers stay bit-identical, only the physical cut changes.
  if ((reshard != 0 && reshard != snap.shards.size()) || strategy_given) {
    const size_t width = reshard != 0 ? reshard : snap.shards.size();
    const PredicateConstraintSet flat = snap.Flatten();
    const Partition partition =
        PartitionPcSet(flat, snap.domains, {width, strategy});
    snap = MakeSnapshot(flat, snap.domains, partition, snap.epoch);
  }
  return Engine::FromBackend(
      std::make_shared<ShardedBackend>(snap, options.sharded));
}

StatusOr<Engine> OpenTcp(const std::string& body) {
  PCX_ASSIGN_OR_RETURN(const UriBody parsed, SplitParams(body));
  const size_t colon = parsed.path.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    return Status::InvalidArgument("tcp: URI must be tcp:<host>:<port>");
  }
  const std::string host = parsed.path.substr(0, colon);
  const StatusOr<uint64_t> port = ParseU64(parsed.path.substr(colon + 1));
  if (!port.ok() || *port == 0 || *port > 65535) {
    return Status::InvalidArgument("bad port in tcp: URI '" + body + "'");
  }
  RemoteBackend::RetryPolicy retry;
  for (const auto& [key, value] : parsed.params) {
    if (key == "retry") {
      PCX_ASSIGN_OR_RETURN(const uint64_t n, ParseU64(value));
      retry.max_retries = static_cast<size_t>(n);
    } else if (key == "retry_ms") {
      PCX_ASSIGN_OR_RETURN(const uint64_t ms, ParseU64(value));
      retry.backoff_ms = static_cast<uint32_t>(ms);
    } else if (key == "retry_cap_ms") {
      PCX_ASSIGN_OR_RETURN(const uint64_t ms, ParseU64(value));
      retry.max_backoff_ms = static_cast<uint32_t>(ms);
    } else if (key == "jitter") {
      retry.jitter = value != "0";
    } else if (key == "retry_seed") {
      PCX_ASSIGN_OR_RETURN(retry.jitter_seed, ParseU64(value));
    } else {
      return Status::InvalidArgument("unknown tcp: URI parameter '" + key +
                                     "'");
    }
  }
  PCX_ASSIGN_OR_RETURN(
      std::unique_ptr<RemoteBackend> backend,
      RemoteBackend::Connect(host, static_cast<uint16_t>(*port)));
  backend->set_retry_policy(retry);
  return Engine::FromBackend(std::move(backend));
}

StatusOr<Engine> OpenMirror(const std::string& body,
                            const Engine::Options& options) {
  std::vector<std::shared_ptr<BoundBackend>> replicas;
  for (const std::string& part : SplitOn(body, '|')) {
    if (part.empty()) continue;
    PCX_ASSIGN_OR_RETURN(Engine replica, Engine::Open(part, options));
    replicas.push_back(replica.backend());
  }
  if (replicas.empty()) {
    return Status::InvalidArgument(
        "mirror: URI needs at least one replica URI (mirror:<uri>|<uri>)");
  }
  return Engine::FromBackend(
      std::make_shared<MirrorBackend>(std::move(replicas), options.mirror));
}

StatusOr<Engine> OpenFailover(const std::string& body,
                              const Engine::Options& options) {
  std::vector<std::string> uris;
  for (const std::string& part : SplitOn(body, '|')) {
    if (!part.empty()) uris.push_back(part);
  }
  if (uris.empty()) {
    return Status::InvalidArgument(
        "failover: URI needs at least one candidate URI "
        "(failover:<primary>|<replica>)");
  }
  // Candidates open lazily inside the backend (a dead replica must not
  // fail construction), so validate the schemes eagerly here — a typo'd
  // URI should fail at Open time, not at first query.
  for (const std::string& uri : uris) {
    const size_t colon = uri.find(':');
    const std::string scheme =
        colon == std::string::npos ? "" : uri.substr(0, colon);
    if (scheme != "local" && scheme != "snapshot" && scheme != "tcp" &&
        scheme != "mirror") {
      return Status::InvalidArgument("failover: candidate '" + uri +
                                     "' has no usable scheme (want " +
                                     std::string(kSchemes) + ")");
    }
  }
  FailoverBackend::Opener opener =
      [options](const std::string& uri) -> StatusOr<std::shared_ptr<BoundBackend>> {
    PCX_ASSIGN_OR_RETURN(Engine engine, Engine::Open(uri, options));
    return engine.backend();
  };
  return Engine::FromBackend(std::make_shared<FailoverBackend>(
      std::move(uris), std::move(opener)));
}

}  // namespace

StatusOr<Engine> Engine::Open(const std::string& uri, Options options) {
  const size_t colon = uri.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("engine URI '" + uri +
                                   "' has no scheme (want " + kSchemes + ")");
  }
  const std::string scheme = uri.substr(0, colon);
  const std::string body = uri.substr(colon + 1);
  if (scheme == "tcp") return OpenTcp(body);
  if (scheme == "mirror") return OpenMirror(body, options);
  if (scheme == "failover") return OpenFailover(body, options);
  PCX_ASSIGN_OR_RETURN(const UriBody parsed, SplitParams(body));
  if (scheme == "local") return OpenLocal(parsed, std::move(options));
  if (scheme == "snapshot") return OpenSnapshot(parsed, std::move(options));
  return Status::InvalidArgument("unknown engine URI scheme '" + scheme +
                                 ":' (want " + kSchemes + ")");
}

Engine Engine::Local(PredicateConstraintSet pcs,
                     std::vector<AttrDomain> domains,
                     LocalBackend::Options options) {
  return Engine(std::make_shared<LocalBackend>(std::move(pcs),
                                               std::move(domains), options));
}

Engine Engine::Sharded(PredicateConstraintSet pcs,
                       std::vector<AttrDomain> domains,
                       ShardedBoundSolver::Options options) {
  return Engine(std::make_shared<ShardedBackend>(std::move(pcs),
                                                 std::move(domains), options));
}

Engine Engine::Mirror(std::vector<Engine> replicas,
                      MirrorBackend::Options options) {
  std::vector<std::shared_ptr<BoundBackend>> backends;
  backends.reserve(replicas.size());
  for (Engine& e : replicas) backends.push_back(e.backend());
  return Engine(
      std::make_shared<MirrorBackend>(std::move(backends), options));
}

Engine Engine::FromBackend(std::shared_ptr<BoundBackend> backend) {
  return Engine(std::move(backend));
}

namespace {
Status NoBackend() {
  return Status::FailedPrecondition(
      "empty Engine handle (construct via Engine::Open)");
}
}  // namespace

std::string Engine::name() const {
  return backend_ ? backend_->name() : "empty";
}

size_t Engine::num_attrs() const {
  return backend_ ? backend_->num_attrs() : 0;
}

StatusOr<ResultRange> Engine::Bound(const AggQuery& query) const {
  if (!backend_) return NoBackend();
  return backend_->Bound(query);
}

std::vector<StatusOr<ResultRange>> Engine::BoundBatch(
    std::span<const AggQuery> queries) const {
  if (!backend_) {
    return std::vector<StatusOr<ResultRange>>(queries.size(), NoBackend());
  }
  return backend_->BoundBatch(queries);
}

StatusOr<std::vector<GroupRange>> Engine::BoundGroupBy(
    const AggQuery& query, size_t group_attr,
    const std::vector<double>& group_values) const {
  if (!backend_) return NoBackend();
  return backend_->BoundGroupBy(query, group_attr, group_values);
}

StatusOr<EngineStats> Engine::Stats() const {
  if (!backend_) return NoBackend();
  return backend_->Stats();
}

StatusOr<uint64_t> Engine::Epoch() const {
  if (!backend_) return NoBackend();
  return backend_->Epoch();
}

StatusOr<HealthInfo> Engine::Health() const {
  if (!backend_) return NoBackend();
  return backend_->Health();
}

StatusOr<ResultRange> Engine::Bound(const QueryBuilder& query) const {
  if (!backend_) return NoBackend();
  return query.BoundOn(*backend_);
}

StatusOr<std::vector<GroupRange>> Engine::BoundGroupBy(
    const QueryBuilder& query) const {
  if (!backend_) return NoBackend();
  return query.GroupsOn(*backend_);
}

}  // namespace pcx
