#ifndef PCX_ENGINE_MIRROR_BACKEND_H_
#define PCX_ENGINE_MIRROR_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/backend.h"

namespace pcx {

/// The replica-checking backend: fans every call out to N replicas and
/// exploits the epoch guarantee ("same constraint set at the same epoch
/// ⇒ bit-identical answers, whatever the physical execution") to verify
/// them against each other. Any observable difference — a range that is
/// not bit-identical (-0.0 counts), a flag mismatch, different typed
/// error codes, or disagreeing epochs — is reported as a kDivergence
/// error naming the replicas and both answers, instead of silently
/// picking one. Matching *errors* are passed through as the shared
/// typed code (messages may legitimately differ across transports).
///
/// Replicas can be any mix of backends: a local solver double-checking
/// a remote server, two remote replicas behind one client, or a sharded
/// backend validating a new partitioning against the unsharded one.
class MirrorBackend : public BoundBackend {
 public:
  struct Options {
    /// Largest epoch spread (max - min over loaded replicas) Health()
    /// tolerates. Query answers stay strictly epoch-checked — this knob
    /// only keeps health checks green while a rolling reload walks the
    /// fleet from epoch E to E+1 one replica at a time.
    uint64_t max_epoch_skew = 0;
  };

  /// At least one replica; replica 0 is the primary whose answer is
  /// returned when all replicas agree.
  explicit MirrorBackend(std::vector<std::shared_ptr<BoundBackend>> replicas);
  MirrorBackend(std::vector<std::shared_ptr<BoundBackend>> replicas,
                Options options);

  std::string name() const override;
  size_t num_attrs() const override;
  StatusOr<ResultRange> Bound(const AggQuery& query) override;
  std::vector<StatusOr<ResultRange>> BoundBatch(
      std::span<const AggQuery> queries) override;
  StatusOr<std::vector<GroupRange>> BoundGroupBy(
      const AggQuery& query, size_t group_attr,
      const std::vector<double>& group_values) override;
  /// Primary's stats (per-replica counters are observable on the
  /// replicas themselves).
  StatusOr<EngineStats> Stats() override;
  /// The common epoch; kDivergence when replicas disagree on it.
  StatusOr<uint64_t> Epoch() override;
  /// Health-checks every replica: all must answer (a dead replica is
  /// kUnavailable naming it) and the loaded replicas' epochs must agree
  /// within Options::max_epoch_skew (else kDivergence). Returns the
  /// primary's health on success.
  StatusOr<HealthInfo> Health() override;

  size_t num_replicas() const { return replicas_.size(); }
  const BoundBackend& replica(size_t i) const { return *replicas_[i]; }

 private:
  /// Divergence check of one (primary, other) answer pair.
  Status Compare(const StatusOr<ResultRange>& primary,
                 const StatusOr<ResultRange>& other, size_t other_index,
                 const std::string& context) const;

  std::vector<std::shared_ptr<BoundBackend>> replicas_;
  Options options_;
};

}  // namespace pcx

#endif  // PCX_ENGINE_MIRROR_BACKEND_H_
