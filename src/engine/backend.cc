#include "engine/backend.h"

#include <cstring>

namespace pcx {

std::vector<StatusOr<ResultRange>> BoundBackend::BoundBatch(
    std::span<const AggQuery> queries) {
  std::vector<StatusOr<ResultRange>> out;
  out.reserve(queries.size());
  for (const AggQuery& q : queries) out.push_back(Bound(q));
  return out;
}

bool BitIdenticalRanges(const ResultRange& a, const ResultRange& b) {
  return std::memcmp(&a.lo, &b.lo, sizeof(double)) == 0 &&
         std::memcmp(&a.hi, &b.hi, sizeof(double)) == 0 &&
         a.defined == b.defined &&
         a.empty_instance_possible == b.empty_instance_possible;
}

}  // namespace pcx
