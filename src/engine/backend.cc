#include "engine/backend.h"

#include <cstring>

namespace pcx {

std::vector<StatusOr<ResultRange>> BoundBackend::BoundBatch(
    std::span<const AggQuery> queries) {
  std::vector<StatusOr<ResultRange>> out;
  out.reserve(queries.size());
  for (const AggQuery& q : queries) out.push_back(Bound(q));
  return out;
}

StatusOr<HealthInfo> BoundBackend::Health() {
  const StatusOr<EngineStats> stats = Stats();
  HealthInfo health;
  if (!stats.ok()) {
    // "Nothing loaded yet" is a healthy-but-empty replica, not a
    // failed health check; everything else propagates.
    if (stats.status().code() == StatusCode::kFailedPrecondition) {
      return health;
    }
    return stats.status();
  }
  health.loaded = true;
  health.epoch = stats->epoch;
  health.num_shards = stats->num_shards;
  health.num_pcs = stats->num_pcs;
  return health;
}

bool BitIdenticalRanges(const ResultRange& a, const ResultRange& b) {
  return std::memcmp(&a.lo, &b.lo, sizeof(double)) == 0 &&
         std::memcmp(&a.hi, &b.hi, sizeof(double)) == 0 &&
         a.defined == b.defined &&
         a.empty_instance_possible == b.empty_instance_possible;
}

}  // namespace pcx
