#ifndef PCX_ENGINE_QUERY_BUILDER_H_
#define PCX_ENGINE_QUERY_BUILDER_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "engine/backend.h"
#include "pc/query.h"
#include "predicate/interval.h"

namespace pcx {

/// Fluent construction of AggQuery values against named columns,
/// replacing hand-assembled Predicate/Box plumbing at call sites:
///
///   QueryBuilder q({"utc", "price"});
///   q.Sum("price").Where("utc", 0, 24);            // SUM(price) WHERE utc∈[0,24]
///   StatusOr<AggQuery> query = q.Build(engine.num_attrs());
///
/// or, with a backend at hand, in one go:
///
///   StatusOr<ResultRange> r = q.BoundOn(backend);
///
/// Index overloads (`Sum(1)`, `Where(0, lo, hi)`) skip the name table
/// for schemaless call sites. Mistakes come back as typed errors from
/// Build — kNotFound for an unknown column name, kOutOfRange for an
/// attribute index past the engine's width, kInvalidArgument for a
/// name table that contradicts the engine's attribute count — rather
/// than aborting or silently misbinding.
class QueryBuilder {
 public:
  /// Index-mode: columns addressed by attribute index only.
  QueryBuilder() = default;
  /// Name-mode: position in `columns` is the attribute index.
  explicit QueryBuilder(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// Aggregate selection (the last call wins).
  QueryBuilder& Count();
  QueryBuilder& Sum(const std::string& column);
  QueryBuilder& Sum(size_t attr);
  QueryBuilder& Avg(const std::string& column);
  QueryBuilder& Avg(size_t attr);
  QueryBuilder& Min(const std::string& column);
  QueryBuilder& Min(size_t attr);
  QueryBuilder& Max(const std::string& column);
  QueryBuilder& Max(size_t attr);

  /// WHERE clauses; all are conjoined. Where(col, lo, hi) is the closed
  /// range lo <= col <= hi; WhereIn takes any interval (open bounds
  /// included); WhereEquals pins col == value.
  QueryBuilder& Where(const std::string& column, double lo, double hi);
  QueryBuilder& Where(size_t attr, double lo, double hi);
  QueryBuilder& WhereIn(const std::string& column, const Interval& iv);
  QueryBuilder& WhereIn(size_t attr, const Interval& iv);
  QueryBuilder& WhereEquals(const std::string& column, double value);
  QueryBuilder& WhereEquals(size_t attr, double value);

  /// GROUP BY one column over an explicit value list (the last call
  /// wins). Grouped builders run via GroupsOn / Engine::BoundGroupBy.
  QueryBuilder& GroupBy(const std::string& column,
                        std::vector<double> values);
  QueryBuilder& GroupBy(size_t attr, std::vector<double> values);

  bool has_group_by() const { return group_by_set_; }

  /// Resolves names and indices against an engine width of `num_attrs`
  /// and produces the AggQuery every backend consumes. `num_attrs` == 0
  /// falls back to the name-table size (or the widest index mentioned).
  StatusOr<AggQuery> Build(size_t num_attrs) const;

  struct GroupBySpec {
    size_t attr = 0;
    std::vector<double> values;
  };
  /// The resolved GROUP BY column/values; kFailedPrecondition when no
  /// GroupBy was set.
  StatusOr<GroupBySpec> BuildGroupBy(size_t num_attrs) const;

  /// Builds against `backend.num_attrs()` and runs the query there.
  StatusOr<ResultRange> BoundOn(BoundBackend& backend) const;
  StatusOr<std::vector<GroupRange>> GroupsOn(BoundBackend& backend) const;

 private:
  /// A column reference, by index or by name (resolved at Build).
  struct ColRef {
    bool by_name = false;
    size_t index = 0;
    std::string name;
  };
  struct Condition {
    ColRef col;
    Interval iv;
  };

  static ColRef Ref(size_t attr) { return ColRef{false, attr, {}}; }
  static ColRef Ref(std::string name) {
    return ColRef{true, 0, std::move(name)};
  }
  QueryBuilder& SetAgg(AggFunc agg, ColRef col);
  QueryBuilder& AddCondition(ColRef col, const Interval& iv);
  StatusOr<size_t> Resolve(const ColRef& col, size_t num_attrs) const;
  size_t EffectiveNumAttrs(size_t num_attrs) const;

  std::vector<std::string> columns_;
  AggFunc agg_ = AggFunc::kCount;
  ColRef agg_col_;
  std::vector<Condition> conditions_;
  bool group_by_set_ = false;
  ColRef group_col_;
  std::vector<double> group_values_;
};

}  // namespace pcx

#endif  // PCX_ENGINE_QUERY_BUILDER_H_
