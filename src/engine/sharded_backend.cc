#include "engine/sharded_backend.h"

#include <utility>

namespace pcx {

ShardedBackend::ShardedBackend(PredicateConstraintSet pcs,
                               std::vector<AttrDomain> domains,
                               ShardedBoundSolver::Options options)
    : solver_(std::move(pcs), std::move(domains), options) {}

ShardedBackend::ShardedBackend(const Snapshot& snapshot,
                               ShardedBoundSolver::Options options)
    : solver_(snapshot, options) {}

std::string ShardedBackend::name() const {
  return "sharded:" + std::to_string(solver_.num_shards());
}

size_t ShardedBackend::num_attrs() const {
  return solver_.constraints().num_attrs();
}

StatusOr<ResultRange> ShardedBackend::Bound(const AggQuery& query) {
  return solver_.Bound(query);
}

std::vector<StatusOr<ResultRange>> ShardedBackend::BoundBatch(
    std::span<const AggQuery> queries) {
  return solver_.BoundBatch(queries);
}

StatusOr<std::vector<GroupRange>> ShardedBackend::BoundGroupBy(
    const AggQuery& query, size_t group_attr,
    const std::vector<double>& group_values) {
  return solver_.BoundGroupBy(query, group_attr, group_values);
}

StatusOr<EngineStats> ShardedBackend::Stats() {
  const ShardedBoundSolver::ServeStats s = solver_.stats();
  EngineStats out;
  out.epoch = solver_.epoch();
  out.num_shards = solver_.num_shards();
  out.num_pcs = solver_.constraints().size();
  out.num_attrs = solver_.constraints().num_attrs();
  out.queries = s.queries;
  out.num_cells = s.solve.num_cells;
  out.sat_calls = s.solve.sat_calls;
  out.sat_cache_hits = s.solve.sat_cache_hits;
  out.milp_nodes = s.solve.milp_nodes;
  out.lp_solves = s.solve.lp_solves;
  out.lp_pivots = s.solve.lp_pivots;
  return out;
}

}  // namespace pcx
