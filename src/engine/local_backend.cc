#include "engine/local_backend.h"

#include <utility>

namespace pcx {

LocalBackend::LocalBackend(PredicateConstraintSet pcs,
                           std::vector<AttrDomain> domains)
    : LocalBackend(std::move(pcs), std::move(domains), Options{}) {}

LocalBackend::LocalBackend(PredicateConstraintSet pcs,
                           std::vector<AttrDomain> domains, Options options)
    : options_(options),
      solver_(std::move(pcs), std::move(domains), options.solver) {}

size_t LocalBackend::num_attrs() const {
  return solver_.constraints().num_attrs();
}

void LocalBackend::Record(size_t queries,
                          const PcBoundSolver::SolveStats& solve) {
  MutexLock lock(mu_);
  queries_ += queries;
  total_ += solve;
}

StatusOr<ResultRange> LocalBackend::Bound(const AggQuery& query) {
  PcBoundSolver::SolveStats stats;
  StatusOr<ResultRange> result = solver_.BoundWithStats(query, stats);
  Record(1, stats);
  return result;
}

std::vector<StatusOr<ResultRange>> LocalBackend::BoundBatch(
    std::span<const AggQuery> queries) {
  MutexLock batch_lock(batch_mu_);
  std::vector<PcBoundSolver::SolveStats> per_query;
  std::vector<StatusOr<ResultRange>> results =
      solver_.BoundBatch(queries, options_.num_threads, &per_query);
  PcBoundSolver::SolveStats sum;
  for (const auto& s : per_query) sum += s;
  Record(queries.size(), sum);
  return results;
}

StatusOr<std::vector<GroupRange>> LocalBackend::BoundGroupBy(
    const AggQuery& query, size_t group_attr,
    const std::vector<double>& group_values) {
  // pcx::BoundGroupBy runs through solver_.BoundBatch, which leaves the
  // fan-out's summed counters in last_stats(); fold them into the
  // backend totals along with one query per group.
  MutexLock batch_lock(batch_mu_);
  StatusOr<std::vector<GroupRange>> groups = pcx::BoundGroupBy(
      solver_, query, group_attr, group_values, options_.num_threads);
  Record(group_values.size(), groups.ok() ? solver_.last_stats()
                                          : PcBoundSolver::SolveStats{});
  return groups;
}

StatusOr<EngineStats> LocalBackend::Stats() {
  MutexLock lock(mu_);
  EngineStats out;
  out.epoch = options_.epoch;
  out.num_shards = 1;
  out.num_pcs = solver_.constraints().size();
  out.num_attrs = solver_.constraints().num_attrs();
  out.queries = queries_;
  out.num_cells = total_.num_cells;
  out.sat_calls = total_.sat_calls;
  out.sat_cache_hits = total_.sat_cache_hits;
  out.milp_nodes = total_.milp_nodes;
  out.lp_solves = total_.lp_solves;
  out.lp_pivots = total_.lp_pivots;
  return out;
}

}  // namespace pcx
