#include "engine/remote_backend.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <thread>
#include <utility>

#ifndef _WIN32
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>
#endif

#include "common/text.h"
#include "pc/serialization.h"
#include "relation/aggregate.h"

namespace pcx {

// ---------------------------------------------------------------------------
// Transports

#ifndef _WIN32

StatusOr<std::unique_ptr<TcpClientTransport>> TcpClientTransport::Connect(
    const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &result) != 0 ||
      result == nullptr) {
    return Status::Unavailable("cannot resolve host '" + host + "'");
  }
  int fd = -1;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    return Status::Unavailable("cannot connect to " + host + ":" + service);
  }
  return std::unique_ptr<TcpClientTransport>(new TcpClientTransport(fd));
}

TcpClientTransport::~TcpClientTransport() {
  if (fd_ >= 0) ::close(fd_);
}

Status TcpClientTransport::SendLine(const std::string& line) {
  if (fd_ < 0) return Status::Unavailable("transport closed");
  const std::string text = line + "\n";
  size_t written = 0;
  while (written < text.size()) {
    const ssize_t w = ::send(fd_, text.data() + written,
                             text.size() - written, MSG_NOSIGNAL);
    if (w <= 0) {
      ::close(fd_);
      fd_ = -1;
      return Status::Unavailable("connection lost while sending");
    }
    written += static_cast<size_t>(w);
  }
  return Status::OK();
}

StatusOr<std::string> TcpClientTransport::ReadLine() {
  while (true) {
    const size_t at = buffer_.find('\n');
    if (at != std::string::npos) {
      std::string line = buffer_.substr(0, at);
      buffer_.erase(0, at + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (fd_ < 0) return Status::Unavailable("transport closed");
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      ::close(fd_);
      fd_ = -1;
      return Status::Unavailable("connection closed by server");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

#else  // _WIN32

StatusOr<std::unique_ptr<TcpClientTransport>> TcpClientTransport::Connect(
    const std::string&, uint16_t) {
  return Status::Unimplemented("TcpClientTransport: POSIX sockets only");
}
TcpClientTransport::~TcpClientTransport() = default;
Status TcpClientTransport::SendLine(const std::string&) {
  return Status::Unimplemented("TcpClientTransport: POSIX sockets only");
}
StatusOr<std::string> TcpClientTransport::ReadLine() {
  return Status::Unimplemented("TcpClientTransport: POSIX sockets only");
}

#endif  // _WIN32

Status StreamTransport::SendLine(const std::string& line) {
  out_ << line << "\n";
  out_.flush();
  if (!out_) return Status::Unavailable("output stream failed");
  return Status::OK();
}

StatusOr<std::string> StreamTransport::ReadLine() {
  std::string line;
  if (!std::getline(in_, line)) {
    return Status::Unavailable("input stream ended");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

// ---------------------------------------------------------------------------
// Reply parsing

Status ParseErrorReply(const std::string& line) {
  // "ERR <CODE> <message...>" — or the legacy "ERR <message...>".
  const std::vector<std::string> tokens = SplitWhitespace(line);
  if (tokens.empty() || tokens[0] != "ERR") {
    return Status::ProtocolError("not an ERR reply: '" + line + "'");
  }
  std::string rest = TrimWhitespace(line.substr(3));
  StatusCode code;
  // "ERR OK ..." from a nonconforming server must not produce an
  // OK-coded Status — callers hand the result to StatusOr, whose
  // OK-without-value check would abort on remote input. Treat it like
  // any unknown code name.
  if (tokens.size() >= 2 && ParseStatusCode(tokens[1], &code) &&
      code != StatusCode::kOk) {
    rest = TrimWhitespace(rest.substr(tokens[1].size()));
    return Status(code, rest);
  }
  return Status::Internal(rest);
}

StatusOr<ResultRange> ParseRangeReply(const std::vector<std::string>& tokens,
                                      size_t from) {
  ResultRange range;
  bool have_lo = false;
  bool have_hi = false;
  for (size_t t = from; t < tokens.size(); ++t) {
    const size_t eq = tokens[t].find('=');
    if (eq == std::string::npos) {
      return Status::ProtocolError("bad range token '" + tokens[t] + "'");
    }
    const std::string key = tokens[t].substr(0, eq);
    const std::string val = tokens[t].substr(eq + 1);
    if (key == "lo" || key == "hi") {
      const StatusOr<double> v = ParseNumber(val);
      if (!v.ok()) {
        return Status::ProtocolError("bad range number '" + tokens[t] + "'");
      }
      (key == "lo" ? range.lo : range.hi) = *v;
      (key == "lo" ? have_lo : have_hi) = true;
    } else if (key == "defined") {
      range.defined = val != "0";
    } else if (key == "empty_possible") {
      range.empty_instance_possible = val != "0";
    }
    // Unknown keys from newer servers are ignored.
  }
  if (!have_lo || !have_hi) {
    return Status::ProtocolError("range reply missing lo=/hi=");
  }
  return range;
}

namespace {

/// Parses "key=value" serving counters into EngineStats (unknown and
/// non-integer keys, e.g. imbalance=1.003, are ignored).
EngineStats ParseStatsReply(const std::vector<std::string>& tokens) {
  EngineStats stats;
  for (size_t t = 1; t < tokens.size(); ++t) {
    const size_t eq = tokens[t].find('=');
    if (eq == std::string::npos) continue;
    const std::string key = tokens[t].substr(0, eq);
    const StatusOr<uint64_t> v = ParseU64(tokens[t].substr(eq + 1));
    if (!v.ok()) continue;
    if (key == "epoch") stats.epoch = *v;
    else if (key == "shards") stats.num_shards = static_cast<size_t>(*v);
    else if (key == "pcs") stats.num_pcs = static_cast<size_t>(*v);
    else if (key == "attrs") stats.num_attrs = static_cast<size_t>(*v);
    else if (key == "queries") stats.queries = static_cast<size_t>(*v);
    else if (key == "num_cells") stats.num_cells = static_cast<size_t>(*v);
    else if (key == "sat_calls") stats.sat_calls = static_cast<size_t>(*v);
    else if (key == "sat_cache_hits")
      stats.sat_cache_hits = static_cast<size_t>(*v);
    else if (key == "milp_nodes") stats.milp_nodes = static_cast<size_t>(*v);
    else if (key == "lp_solves") stats.lp_solves = static_cast<size_t>(*v);
    else if (key == "lp_pivots") stats.lp_pivots = static_cast<size_t>(*v);
    else if (key == "queue_depth") stats.queue_depth = static_cast<size_t>(*v);
    else if (key == "queue_high_water")
      stats.queue_high_water = static_cast<size_t>(*v);
    else if (key == "coalesced_batches")
      stats.coalesced_batches = static_cast<size_t>(*v);
    else if (key == "coalesced_reqs")
      stats.coalesced_requests = static_cast<size_t>(*v);
    else if (key == "max_batch")
      stats.max_coalesced_batch = static_cast<size_t>(*v);
    else if (key == "overload_rejects")
      stats.overload_rejections = static_cast<size_t>(*v);
  }
  return stats;
}

/// Formats the request suffix carrying the WHERE predicate. The box
/// literal round-trips exactly (including "{}", the universe), so the
/// server reconstructs the same predicate the caller held.
std::string WhereSuffix(const AggQuery& query) {
  if (!query.where.has_value()) return "";
  return " " + SerializeBox(query.where->box());
}

}  // namespace

// ---------------------------------------------------------------------------
// RemoteBackend

uint32_t NextRetryBackoffMs(const RemoteBackend::RetryPolicy& policy,
                            uint32_t prev_ms, Rng& rng) {
  const uint32_t cap = std::max(policy.max_backoff_ms, policy.backoff_ms);
  if (!policy.jitter) {
    // Legacy deterministic doubling, capped.
    const uint64_t next =
        prev_ms == 0 ? policy.backoff_ms : uint64_t{prev_ms} * 2;
    return static_cast<uint32_t>(std::min<uint64_t>(next, cap));
  }
  // Decorrelated jitter (sleep = U[base, 3*prev]): the expected sleep
  // still grows geometrically, but concurrent clients spread across the
  // whole interval instead of knocking again in synchronized waves.
  const uint64_t hi = std::min<uint64_t>(
      cap, uint64_t{3} * std::max(prev_ms, policy.backoff_ms));
  return static_cast<uint32_t>(rng.UniformInt(
      static_cast<int64_t>(std::min<uint64_t>(policy.backoff_ms, hi)),
      static_cast<int64_t>(hi)));
}

RemoteBackend::RemoteBackend(std::unique_ptr<LineTransport> transport,
                             std::string name)
    : transport_(std::move(transport)),
      name_(std::move(name)),
      retry_rng_(retry_.jitter_seed),
      roundtrip_hist_(&MetricsRegistry::Default().GetHistogram(
          "pcx_remote_roundtrip_us", {},
          "Client-observed request round-trip latency (microseconds)")) {}

void RemoteBackend::set_retry_policy(RetryPolicy policy) {
  MutexLock lock(mu_);
  retry_ = policy;
  retry_rng_.Seed(policy.jitter_seed);
}

StatusOr<std::unique_ptr<RemoteBackend>> RemoteBackend::Connect(
    const std::string& host, uint16_t port) {
  PCX_ASSIGN_OR_RETURN(std::unique_ptr<TcpClientTransport> transport,
                       TcpClientTransport::Connect(host, port));
  auto backend = std::make_unique<RemoteBackend>(
      std::move(transport), "tcp:" + host + ":" + std::to_string(port));
  const Status info = backend->RefreshInfo();
  // A server with no snapshot loaded answers STATS with
  // FAILED_PRECONDITION; the connection itself is good.
  if (!info.ok() && info.code() != StatusCode::kFailedPrecondition) {
    return info;
  }
  return backend;
}

StatusOr<std::string> RemoteBackend::RoundTrip(const std::string& request) {
  if (transport_ == nullptr) {
    return Status::Unavailable(
        "session closed after an earlier protocol error");
  }
  const auto start = std::chrono::steady_clock::now();
  PCX_RETURN_IF_ERROR(transport_->SendLine(request));
  while (true) {
    PCX_ASSIGN_OR_RETURN(std::string line, transport_->ReadLine());
    // Skip the server's `#trace ...` annotations (appended after the
    // reply when the session has TRACE ON): comments are never the
    // answer, and swallowing them here keeps every reply parser in sync.
    if (!line.empty() && line[0] == '#') continue;
    roundtrip_hist_->Observe(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count());
    return line;
  }
}

Status RemoteBackend::PoisonProtocol(std::string message) {
  // Called when the reply stream's offset is no longer known (e.g. a
  // multi-line GROUPBY block broke half-way): keeping the session open
  // would risk handing a later caller the tail of THIS reply as a
  // clean-looking answer to a different request. Drop the transport so
  // every subsequent call fails kUnavailable instead.
  transport_.reset();
  return Status::ProtocolError(std::move(message));
}

StatusOr<EngineStats> RemoteBackend::StatsLocked() {
  PCX_ASSIGN_OR_RETURN(const std::string reply, RoundTrip("STATS"));
  const std::vector<std::string> tokens = SplitWhitespace(reply);
  if (!tokens.empty() && tokens[0] == "ERR") return ParseErrorReply(reply);
  if (tokens.empty() || tokens[0] != "STATS") {
    return Status::ProtocolError("unexpected STATS reply '" + reply + "'");
  }
  const EngineStats stats = ParseStatsReply(tokens);
  num_attrs_ = stats.num_attrs;
  epoch_ = stats.epoch;
  info_known_ = true;
  return stats;
}

Status RemoteBackend::RefreshInfo() {
  MutexLock lock(mu_);
  return StatsLocked().status();
}

Status RemoteBackend::Load(const std::string& snapshot_path) {
  MutexLock lock(mu_);
  PCX_ASSIGN_OR_RETURN(const std::string reply,
                       RoundTrip("LOAD " + snapshot_path));
  const std::vector<std::string> tokens = SplitWhitespace(reply);
  if (!tokens.empty() && tokens[0] == "ERR") return ParseErrorReply(reply);
  if (tokens.empty() || tokens[0] != "OK") {
    return Status::ProtocolError("unexpected LOAD reply '" + reply + "'");
  }
  const EngineStats info = ParseStatsReply(tokens);
  num_attrs_ = info.num_attrs;
  epoch_ = info.epoch;
  info_known_ = true;
  return Status::OK();
}

StatusOr<std::string> RemoteBackend::Metrics() {
  MutexLock lock(mu_);
  PCX_ASSIGN_OR_RETURN(const std::string header, RoundTrip("METRICS"));
  const std::vector<std::string> tokens = SplitWhitespace(header);
  if (!tokens.empty() && tokens[0] == "ERR") return ParseErrorReply(header);
  if (tokens.size() != 2 || tokens[0] != "METRICS") {
    return Status::ProtocolError("unexpected METRICS reply '" + header + "'");
  }
  const StatusOr<uint64_t> count = ParseU64(tokens[1]);
  if (!count.ok()) {
    return PoisonProtocol("bad METRICS line count '" + header + "'");
  }
  // The body is a counted multi-line block (like GROUPBY): a read
  // failure mid-block leaves the stream at an unknown offset, so the
  // session is poisoned rather than kept.
  std::string body;
  for (uint64_t i = 0; i < *count; ++i) {
    StatusOr<std::string> line_or = transport_->ReadLine();
    if (!line_or.ok()) {
      transport_.reset();
      return line_or.status();
    }
    body += *line_or;
    body += '\n';
  }
  return body;
}

StatusOr<std::string> RemoteBackend::Command(const std::string& line) {
  MutexLock lock(mu_);
  PCX_ASSIGN_OR_RETURN(const std::string reply, RoundTrip(line));
  const std::vector<std::string> tokens = SplitWhitespace(reply);
  if (!tokens.empty() && tokens[0] == "ERR") return ParseErrorReply(reply);
  if (tokens.size() >= 2 && tokens[0] == "OK") {
    for (const std::string& tok : tokens) {
      if (tok.rfind("epoch=", 0) == 0) {
        epoch_ = std::strtoull(tok.c_str() + 6, nullptr, 10);
      }
    }
  }
  return reply;
}

size_t RemoteBackend::num_attrs() const {
  MutexLock lock(mu_);
  return num_attrs_;
}

StatusOr<ResultRange> RemoteBackend::Bound(const AggQuery& query) {
  MutexLock lock(mu_);
  const std::string request = std::string("BOUND ") +
                              AggFuncToString(query.agg) + " " +
                              std::to_string(query.attr) + WhereSuffix(query);
  uint32_t backoff_ms = 0;
  for (size_t attempt = 0;; ++attempt) {
    PCX_ASSIGN_OR_RETURN(const std::string reply, RoundTrip(request));
    const std::vector<std::string> tokens = SplitWhitespace(reply);
    if (!tokens.empty() && tokens[0] == "ERR") {
      const Status error = ParseErrorReply(reply);
      // An ERR UNAVAILABLE *reply* is the server's admission control
      // shedding load on a live session — that, and only that, is
      // retried. (RoundTrip's own kUnavailable means the transport died
      // and already returned above.)
      if (error.code() == StatusCode::kUnavailable &&
          attempt < retry_.max_retries) {
        backoff_ms = NextRetryBackoffMs(retry_, backoff_ms, retry_rng_);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        continue;
      }
      return error;
    }
    if (tokens.empty() || tokens[0] != "RANGE") {
      return Status::ProtocolError("unexpected BOUND reply '" + reply + "'");
    }
    return ParseRangeReply(tokens, 1);
  }
}

StatusOr<std::vector<GroupRange>> RemoteBackend::BoundGroupBy(
    const AggQuery& query, size_t group_attr,
    const std::vector<double>& group_values) {
  MutexLock lock(mu_);
  std::string values;
  for (size_t i = 0; i < group_values.size(); ++i) {
    if (i > 0) values += ",";
    values += FormatNumber(group_values[i]);
  }
  const std::string request = std::string("GROUPBY ") +
                              AggFuncToString(query.agg) + " " +
                              std::to_string(query.attr) + " " +
                              std::to_string(group_attr) + " " + values +
                              WhereSuffix(query);
  std::string header;
  std::vector<std::string> tokens;
  uint32_t backoff_ms = 0;
  for (size_t attempt = 0;; ++attempt) {
    PCX_ASSIGN_OR_RETURN(header, RoundTrip(request));
    tokens = SplitWhitespace(header);
    if (!tokens.empty() && tokens[0] == "ERR") {
      const Status error = ParseErrorReply(header);
      // Same rule as Bound: only the typed overload rejection retries.
      // The header is a single line, so the stream is still in sync.
      if (error.code() == StatusCode::kUnavailable &&
          attempt < retry_.max_retries) {
        backoff_ms = NextRetryBackoffMs(retry_, backoff_ms, retry_rng_);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        continue;
      }
      return error;
    }
    break;
  }
  // From here on the reply is a counted multi-line block; any parse
  // failure leaves the stream at an unknown offset, so the session is
  // poisoned rather than kept.
  if (tokens.size() != 2 || tokens[0] != "GROUPS") {
    return PoisonProtocol("unexpected GROUPBY reply '" + header + "'");
  }
  const StatusOr<uint64_t> count = ParseU64(tokens[1]);
  if (!count.ok()) {
    return PoisonProtocol("bad group count '" + header + "'");
  }
  std::vector<GroupRange> groups;
  groups.reserve(static_cast<size_t>(*count));
  for (uint64_t g = 0; g < *count; ++g) {
    StatusOr<std::string> line_or = transport_->ReadLine();
    if (!line_or.ok()) {
      // Even a nominally recoverable transport error (say, a timeout
      // from a custom LineTransport) leaves this block half-read;
      // poison rather than trust the transport to be dead.
      transport_.reset();
      return line_or.status();
    }
    const std::string line = std::move(line_or).value();
    tokens = SplitWhitespace(line);
    if (tokens.size() < 2 || tokens[0] != "GROUP") {
      return PoisonProtocol("unexpected group line '" + line + "'");
    }
    GroupRange group;
    const StatusOr<double> value = ParseNumber(tokens[1]);
    if (!value.ok()) {
      return PoisonProtocol("bad group value '" + line + "'");
    }
    group.group_value = *value;
    const StatusOr<ResultRange> range = ParseRangeReply(tokens, 2);
    if (!range.ok()) return PoisonProtocol(range.status().message());
    group.range = *range;
    groups.push_back(group);
  }
  return groups;
}

StatusOr<EngineStats> RemoteBackend::Stats() {
  MutexLock lock(mu_);
  return StatsLocked();
}

StatusOr<HealthInfo> RemoteBackend::Health() {
  {
    MutexLock lock(mu_);
    PCX_ASSIGN_OR_RETURN(const std::string reply, RoundTrip("HEALTH"));
    const std::vector<std::string> tokens = SplitWhitespace(reply);
    if (!tokens.empty() && tokens[0] == "ERR") {
      const Status error = ParseErrorReply(reply);
      // An older server that predates the verb answers INVALID_ARGUMENT
      // ("unknown command"); drop through to the Stats()-derived
      // fallback outside the lock. Anything else is a real failure.
      if (error.code() != StatusCode::kInvalidArgument) return error;
    } else if (!tokens.empty() && tokens[0] == "HEALTH") {
      HealthInfo health;
      for (size_t t = 1; t < tokens.size(); ++t) {
        const size_t eq = tokens[t].find('=');
        if (eq == std::string::npos) continue;
        const std::string key = tokens[t].substr(0, eq);
        const StatusOr<uint64_t> v = ParseU64(tokens[t].substr(eq + 1));
        if (!v.ok()) continue;
        if (key == "loaded") health.loaded = *v != 0;
        else if (key == "epoch") health.epoch = *v;
        else if (key == "shards") health.num_shards = static_cast<size_t>(*v);
        else if (key == "pcs") health.num_pcs = static_cast<size_t>(*v);
        else if (key == "attrs" && *v != 0) {
          num_attrs_ = static_cast<size_t>(*v);  // free info refresh
          info_known_ = true;
        } else if (key == "uptime_s") health.uptime_seconds = *v;
        else if (key == "sessions") health.sessions = *v;
        else if (key == "requests") health.requests = *v;
        else if (key == "replica") health.replica = *v != 0;
        else if (key == "primary_epoch") health.primary_epoch = *v;
        else if (key == "lag") health.replication_lag = *v;
        // Unknown keys from newer servers are ignored.
      }
      if (health.loaded) epoch_ = health.epoch;
      return health;
    } else {
      return Status::ProtocolError("unexpected HEALTH reply '" + reply + "'");
    }
  }
  return BoundBackend::Health();
}

StatusOr<uint64_t> RemoteBackend::Epoch() {
  PCX_ASSIGN_OR_RETURN(const EngineStats stats, Stats());
  return stats.epoch;
}

}  // namespace pcx
