#ifndef PCX_ENGINE_LOCAL_BACKEND_H_
#define PCX_ENGINE_LOCAL_BACKEND_H_

#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/backend.h"
#include "pc/bound_solver.h"

namespace pcx {

/// The in-process backend: one unsharded PcBoundSolver. This is the
/// reference implementation every other backend is defined against —
/// ShardedBackend and RemoteBackend answers are bit-identical to it by
/// construction (union routing, round-trippable number formatting).
class LocalBackend : public BoundBackend {
 public:
  struct Options {
    PcBoundSolver::Options solver;
    /// Fan-out width for BoundBatch / BoundGroupBy (0 = hardware
    /// concurrency, 1 = sequential).
    size_t num_threads = 0;
    /// Constraint-set version label. Local sets default to epoch 0;
    /// give replicas of the same set the same epoch so MirrorBackend
    /// can pair them with snapshot-loaded backends.
    uint64_t epoch = 0;
  };

  LocalBackend(PredicateConstraintSet pcs, std::vector<AttrDomain> domains);
  LocalBackend(PredicateConstraintSet pcs, std::vector<AttrDomain> domains,
               Options options);

  std::string name() const override { return "local"; }
  size_t num_attrs() const override;
  StatusOr<ResultRange> Bound(const AggQuery& query) override;
  std::vector<StatusOr<ResultRange>> BoundBatch(
      std::span<const AggQuery> queries) override;
  StatusOr<std::vector<GroupRange>> BoundGroupBy(
      const AggQuery& query, size_t group_attr,
      const std::vector<double>& group_values) override;
  StatusOr<EngineStats> Stats() override;
  StatusOr<uint64_t> Epoch() override { return options_.epoch; }

  const PcBoundSolver& solver() const { return solver_; }

 private:
  void Record(size_t queries, const PcBoundSolver::SolveStats& solve);

  Options options_;
  PcBoundSolver solver_;
  /// Serializes BoundBatch/BoundGroupBy: PcBoundSolver::BoundBatch
  /// (which both run through) writes the solver's last_stats(), so
  /// concurrent batch submissions would race on it. Bound() uses the
  /// mutation-free BoundWithStats and needs no serialization.
  Mutex batch_mu_;
  mutable Mutex mu_;  ///< guards the cumulative counters below
  size_t queries_ GUARDED_BY(mu_) = 0;
  PcBoundSolver::SolveStats total_ GUARDED_BY(mu_);
};

}  // namespace pcx

#endif  // PCX_ENGINE_LOCAL_BACKEND_H_
