#include "engine/mirror_backend.h"

#include <sstream>
#include <utility>

#include "common/check.h"
#include "pc/serialization.h"
#include "serve/server.h"

namespace pcx {

namespace {

/// Divergence reports reuse the wire's range formatting so they read
/// exactly like what a remote replica actually printed.
std::string DescribeRange(const ResultRange& r) {
  std::ostringstream os;
  PrintResultRange(os, "", r);
  std::string out = os.str();
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

std::string DescribeAnswer(const StatusOr<ResultRange>& a) {
  if (a.ok()) return DescribeRange(*a);
  return std::string("error ") + StatusCodeToString(a.status().code());
}

}  // namespace

MirrorBackend::MirrorBackend(
    std::vector<std::shared_ptr<BoundBackend>> replicas)
    : MirrorBackend(std::move(replicas), Options{}) {}

MirrorBackend::MirrorBackend(std::vector<std::shared_ptr<BoundBackend>> replicas,
                             Options options)
    : replicas_(std::move(replicas)), options_(options) {
  PCX_CHECK(!replicas_.empty()) << "MirrorBackend needs at least one replica";
  for (const auto& r : replicas_) PCX_CHECK(r != nullptr);
}

std::string MirrorBackend::name() const {
  std::string out = "mirror[";
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (i > 0) out += ", ";
    out += replicas_[i]->name();
  }
  return out + "]";
}

size_t MirrorBackend::num_attrs() const { return replicas_[0]->num_attrs(); }

Status MirrorBackend::Compare(const StatusOr<ResultRange>& primary,
                              const StatusOr<ResultRange>& other,
                              size_t other_index,
                              const std::string& context) const {
  const bool diverged =
      primary.ok() != other.ok() ||
      (primary.ok() ? !BitIdenticalRanges(*primary, *other)
                    : primary.status().code() != other.status().code());
  if (!diverged) return Status::OK();
  return Status::Divergence(
      context + ": replica 0 (" + replicas_[0]->name() + ") answered " +
      DescribeAnswer(primary) + " but replica " +
      std::to_string(other_index) + " (" + replicas_[other_index]->name() +
      ") answered " + DescribeAnswer(other));
}

StatusOr<ResultRange> MirrorBackend::Bound(const AggQuery& query) {
  const StatusOr<ResultRange> primary = replicas_[0]->Bound(query);
  for (size_t i = 1; i < replicas_.size(); ++i) {
    PCX_RETURN_IF_ERROR(
        Compare(primary, replicas_[i]->Bound(query), i, "Bound"));
  }
  return primary;
}

std::vector<StatusOr<ResultRange>> MirrorBackend::BoundBatch(
    std::span<const AggQuery> queries) {
  std::vector<StatusOr<ResultRange>> primary = replicas_[0]->BoundBatch(queries);
  for (size_t i = 1; i < replicas_.size(); ++i) {
    const std::vector<StatusOr<ResultRange>> other =
        replicas_[i]->BoundBatch(queries);
    if (other.size() != primary.size()) {
      const Status diverged = Status::Divergence(
          "BoundBatch: replica " + std::to_string(i) + " returned " +
          std::to_string(other.size()) + " results for " +
          std::to_string(primary.size()) + " queries");
      for (auto& r : primary) r = diverged;
      return primary;
    }
    for (size_t q = 0; q < primary.size(); ++q) {
      const Status check = Compare(primary[q], other[q], i,
                                   "BoundBatch[" + std::to_string(q) + "]");
      if (!check.ok()) primary[q] = check;
    }
  }
  return primary;
}

StatusOr<std::vector<GroupRange>> MirrorBackend::BoundGroupBy(
    const AggQuery& query, size_t group_attr,
    const std::vector<double>& group_values) {
  StatusOr<std::vector<GroupRange>> primary =
      replicas_[0]->BoundGroupBy(query, group_attr, group_values);
  for (size_t i = 1; i < replicas_.size(); ++i) {
    const StatusOr<std::vector<GroupRange>> other =
        replicas_[i]->BoundGroupBy(query, group_attr, group_values);
    if (primary.ok() != other.ok()) {
      return Status::Divergence(
          "BoundGroupBy: replica 0 " +
          std::string(primary.ok() ? "succeeded" : "failed") + " but replica " +
          std::to_string(i) + " " + (other.ok() ? "succeeded" : "failed"));
    }
    if (!primary.ok()) {
      if (primary.status().code() != other.status().code()) {
        return Status::Divergence(
            "BoundGroupBy: replicas failed with different codes: " +
            std::string(StatusCodeToString(primary.status().code())) +
            " vs " + StatusCodeToString(other.status().code()));
      }
      continue;
    }
    if (other->size() != primary->size()) {
      return Status::Divergence("BoundGroupBy: replica " + std::to_string(i) +
                                " returned a different group count");
    }
    for (size_t g = 0; g < primary->size(); ++g) {
      if ((*primary)[g].group_value != (*other)[g].group_value ||
          !BitIdenticalRanges((*primary)[g].range, (*other)[g].range)) {
        return Status::Divergence(
            "BoundGroupBy group " + FormatNumber((*primary)[g].group_value) +
            ": replica 0 answered " + DescribeRange((*primary)[g].range) +
            " but replica " + std::to_string(i) + " answered " +
            DescribeRange((*other)[g].range));
      }
    }
  }
  return primary;
}

StatusOr<EngineStats> MirrorBackend::Stats() { return replicas_[0]->Stats(); }

StatusOr<HealthInfo> MirrorBackend::Health() {
  std::vector<HealthInfo> healths;
  healths.reserve(replicas_.size());
  for (size_t i = 0; i < replicas_.size(); ++i) {
    StatusOr<HealthInfo> h = replicas_[i]->Health();
    if (!h.ok()) {
      return Status::Unavailable("replica " + std::to_string(i) + " (" +
                                 replicas_[i]->name() +
                                 ") failed its health check: " +
                                 h.status().message());
    }
    healths.push_back(*h);
  }
  // Epoch skew is judged over loaded replicas only: an empty replica
  // waiting for its first LOAD has no epoch to disagree with.
  bool have = false;
  uint64_t lo = 0, hi = 0;
  size_t lo_at = 0, hi_at = 0;
  for (size_t i = 0; i < healths.size(); ++i) {
    if (!healths[i].loaded) continue;
    if (!have || healths[i].epoch < lo) { lo = healths[i].epoch; lo_at = i; }
    if (!have || healths[i].epoch > hi) { hi = healths[i].epoch; hi_at = i; }
    have = true;
  }
  if (have && hi - lo > options_.max_epoch_skew) {
    return Status::Divergence(
        "epoch skew " + std::to_string(hi - lo) + " exceeds the allowed " +
        std::to_string(options_.max_epoch_skew) + ": replica " +
        std::to_string(lo_at) + " (" + replicas_[lo_at]->name() +
        ") serves epoch " + std::to_string(lo) + " but replica " +
        std::to_string(hi_at) + " (" + replicas_[hi_at]->name() +
        ") serves epoch " + std::to_string(hi));
  }
  return healths[0];
}

StatusOr<uint64_t> MirrorBackend::Epoch() {
  PCX_ASSIGN_OR_RETURN(const uint64_t epoch, replicas_[0]->Epoch());
  for (size_t i = 1; i < replicas_.size(); ++i) {
    PCX_ASSIGN_OR_RETURN(const uint64_t other, replicas_[i]->Epoch());
    if (other != epoch) {
      return Status::Divergence(
          "replica 0 (" + replicas_[0]->name() + ") serves epoch " +
          std::to_string(epoch) + " but replica " + std::to_string(i) + " (" +
          replicas_[i]->name() + ") serves epoch " + std::to_string(other));
    }
  }
  return epoch;
}

}  // namespace pcx
