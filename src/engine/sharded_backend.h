#ifndef PCX_ENGINE_SHARDED_BACKEND_H_
#define PCX_ENGINE_SHARDED_BACKEND_H_

#include <string>
#include <vector>

#include "engine/backend.h"
#include "serve/sharded_solver.h"

namespace pcx {

/// The partitioned in-process backend: a ShardedBoundSolver over up to
/// 64 shards, built from a constraint set or adopted from a versioned
/// snapshot. Answers are bit-identical to LocalBackend over the same
/// set (see serve/sharded_solver.h for why that is an invariant, not
/// luck), so swapping "local:" for "snapshot:...?shards=K" in an
/// Engine::Open URI changes only the wall-clock.
class ShardedBackend : public BoundBackend {
 public:
  ShardedBackend(PredicateConstraintSet pcs, std::vector<AttrDomain> domains,
                 ShardedBoundSolver::Options options = {});
  /// Adopts the snapshot's shards and epoch.
  explicit ShardedBackend(const Snapshot& snapshot,
                          ShardedBoundSolver::Options options = {});

  std::string name() const override;
  size_t num_attrs() const override;
  StatusOr<ResultRange> Bound(const AggQuery& query) override;
  std::vector<StatusOr<ResultRange>> BoundBatch(
      std::span<const AggQuery> queries) override;
  StatusOr<std::vector<GroupRange>> BoundGroupBy(
      const AggQuery& query, size_t group_attr,
      const std::vector<double>& group_values) override;
  StatusOr<EngineStats> Stats() override;
  StatusOr<uint64_t> Epoch() override { return solver_.epoch(); }

  const ShardedBoundSolver& solver() const { return solver_; }

 private:
  ShardedBoundSolver solver_;
};

}  // namespace pcx

#endif  // PCX_ENGINE_SHARDED_BACKEND_H_
