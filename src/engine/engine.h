#ifndef PCX_ENGINE_ENGINE_H_
#define PCX_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/backend.h"
#include "engine/local_backend.h"
#include "engine/mirror_backend.h"
#include "engine/query_builder.h"
#include "serve/sharded_solver.h"

namespace pcx {

/// The single entry point to bounding, whatever the execution substrate:
///
///   PCX_ASSIGN_OR_RETURN(Engine eng, Engine::Open("local:sensors.pcset"));
///   PCX_ASSIGN_OR_RETURN(Engine eng, Engine::Open("snapshot:v7.pcxsnap?shards=8"));
///   PCX_ASSIGN_OR_RETURN(Engine eng, Engine::Open("tcp:127.0.0.1:7070"));
///   PCX_ASSIGN_OR_RETURN(Engine eng,
///       Engine::Open("mirror:local:sensors.pcset|tcp:127.0.0.1:7070"));
///
/// URI grammar: `scheme:body[?key=value&key=value]`.
///
///   local:<pcset-path>        in-process unsharded PcBoundSolver
///                             params: int=0,1  (integer attribute indices)
///   snapshot:<pcxsnap-path>   in-process ShardedBoundSolver over the
///                             snapshot's stored shards
///                             params: shards=K (repartition to K shards),
///                             strategy=range|roundrobin, scatter=1,
///                             threads=N
///   tcp:<host>:<port>         RemoteBackend speaking the pcx_serve
///                             line protocol
///   mirror:<uri>|<uri>|...    MirrorBackend over the listed replicas
///                             (each opened recursively; first is primary)
///
/// An Engine is a cheap copyable handle (shared backend ownership);
/// Bound/BoundBatch/... forward to the backend, and the QueryBuilder
/// overloads resolve column names against the engine's attribute count.
/// In-memory constraint sets skip URIs entirely via Engine::Local /
/// Engine::Sharded / Engine::Mirror.
class Engine {
 public:
  struct Options {
    /// Attribute domains for pcset-file sources (snapshots carry their
    /// own); a `?int=` URI parameter overrides this.
    std::vector<AttrDomain> domains;
    /// Backend configuration for "local:" URIs.
    LocalBackend::Options local;
    /// Backend configuration for "snapshot:" URIs (its `solver` member
    /// is the per-shard solver configuration). URI parameters override
    /// the partition/scatter/threads fields.
    ShardedBoundSolver::Options sharded;
    /// Replica-checking configuration for "mirror:" URIs (epoch skew
    /// tolerated by Health() during rolling reloads).
    MirrorBackend::Options mirror;
  };

  /// Empty handle; valid() is false and every query fails. Assign from
  /// Open/Local/... before use.
  Engine() = default;

  static StatusOr<Engine> Open(const std::string& uri, Options options = {});

  static Engine Local(PredicateConstraintSet pcs,
                      std::vector<AttrDomain> domains = {},
                      LocalBackend::Options options = {});
  static Engine Sharded(PredicateConstraintSet pcs,
                        std::vector<AttrDomain> domains,
                        ShardedBoundSolver::Options options = {});
  static Engine Mirror(std::vector<Engine> replicas,
                       MirrorBackend::Options options = {});
  static Engine FromBackend(std::shared_ptr<BoundBackend> backend);

  bool valid() const { return backend_ != nullptr; }
  /// The wrapped backend (never null on a valid engine).
  const std::shared_ptr<BoundBackend>& backend() const { return backend_; }

  std::string name() const;
  size_t num_attrs() const;

  StatusOr<ResultRange> Bound(const AggQuery& query) const;
  std::vector<StatusOr<ResultRange>> BoundBatch(
      std::span<const AggQuery> queries) const;
  StatusOr<std::vector<GroupRange>> BoundGroupBy(
      const AggQuery& query, size_t group_attr,
      const std::vector<double>& group_values) const;
  StatusOr<EngineStats> Stats() const;
  StatusOr<uint64_t> Epoch() const;
  /// Liveness: succeeds on a reachable-but-empty backend (see
  /// HealthInfo); mirror engines sweep every replica.
  StatusOr<HealthInfo> Health() const;

  /// QueryBuilder front door: builds against num_attrs() and runs.
  StatusOr<ResultRange> Bound(const QueryBuilder& query) const;
  StatusOr<std::vector<GroupRange>> BoundGroupBy(
      const QueryBuilder& query) const;

 private:
  explicit Engine(std::shared_ptr<BoundBackend> backend)
      : backend_(std::move(backend)) {}

  std::shared_ptr<BoundBackend> backend_;
};

}  // namespace pcx

#endif  // PCX_ENGINE_ENGINE_H_
