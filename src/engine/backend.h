#ifndef PCX_ENGINE_BACKEND_H_
#define PCX_ENGINE_BACKEND_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "pc/group_by.h"
#include "pc/query.h"

namespace pcx {

/// Uniform serving counters reported by every backend. Local and
/// sharded backends fill these from their in-process solvers; the
/// remote backend parses them out of the server's STATS reply — the
/// fields therefore mirror the STATS line of the pcx_serve protocol.
struct EngineStats {
  uint64_t epoch = 0;
  size_t num_shards = 1;
  size_t num_pcs = 0;
  size_t num_attrs = 0;
  size_t queries = 0;
  /// Solver-side work counters, summed over all queries answered.
  size_t num_cells = 0;
  size_t sat_calls = 0;
  size_t sat_cache_hits = 0;
  size_t milp_nodes = 0;
  size_t lp_solves = 0;
  size_t lp_pivots = 0;
  /// Event-loop transport counters (zero for in-process backends and
  /// for servers running the thread-per-session compatibility mode).
  size_t queue_depth = 0;
  size_t queue_high_water = 0;
  size_t coalesced_batches = 0;
  size_t coalesced_requests = 0;
  size_t max_coalesced_batch = 0;
  size_t overload_rejections = 0;
};

/// One replica's liveness snapshot — the HEALTH protocol verb's typed
/// shape. Unlike Stats/queries, health checks succeed on a server that
/// has no snapshot loaded yet (`loaded == false`): "up but empty" and
/// "down" are different operational states, and a rolling-reload
/// orchestrator needs to tell them apart.
struct HealthInfo {
  bool loaded = false;
  uint64_t epoch = 0;
  size_t num_shards = 0;
  size_t num_pcs = 0;
  /// Seconds the serving process has been up (0 for in-process
  /// backends, which have no server process).
  uint64_t uptime_seconds = 0;
  /// Protocol sessions the server has accepted (0 for in-process).
  uint64_t sessions = 0;
  /// Protocol requests the server has handled (0 for in-process).
  uint64_t requests = 0;
  /// True when the server is a read-only replica tailing a primary.
  bool replica = false;
  /// The primary's last reported epoch (replicas only; 0 otherwise).
  uint64_t primary_epoch = 0;
  /// Epochs this replica is behind its primary (0 when caught up or
  /// not a replica).
  uint64_t replication_lag = 0;
};

/// The one logical operation of the paper — "bound this aggregate under
/// these predicate constraints" — behind one interface, however the
/// bounding is physically executed: in process (LocalBackend), across
/// shards (ShardedBackend), on another machine speaking the pcx_serve
/// protocol (RemoteBackend), or on N replicas checked against each
/// other (MirrorBackend). Everything a caller can observe is defined by
/// the unsharded PcBoundSolver over the same constraint set at the same
/// epoch: conforming backends return *bit-identical* ResultRanges and
/// the same typed StatusCodes, which is what makes replicas and
/// consistency checking possible (see MirrorBackend).
///
/// Backends are internally synchronized: concurrent calls from several
/// threads are safe on every implementation (the remote backend
/// serializes them onto its single protocol session).
class BoundBackend {
 public:
  virtual ~BoundBackend() = default;

  /// Display name, e.g. "local", "sharded:4", "tcp:127.0.0.1:7070".
  virtual std::string name() const = 0;

  /// Attribute count of the served constraint set (0 when unknown, e.g.
  /// a remote server with no snapshot loaded yet).
  virtual size_t num_attrs() const = 0;

  /// Computes the result range of `query` over the missing rows.
  virtual StatusOr<ResultRange> Bound(const AggQuery& query) = 0;

  /// Bounds a whole workload, results in input order, element-wise
  /// identical to calling Bound in a loop. The default does exactly
  /// that loop; in-process backends override it with their parallel
  /// batch paths (which preserve bit-identity by construction).
  virtual std::vector<StatusOr<ResultRange>> BoundBatch(
      std::span<const AggQuery> queries);

  /// GROUP BY fan-out: one range per value of `group_values`, each the
  /// answer to `query` with `group_attr == value` conjoined onto the
  /// WHERE clause (pc/group_by semantics on every backend).
  virtual StatusOr<std::vector<GroupRange>> BoundGroupBy(
      const AggQuery& query, size_t group_attr,
      const std::vector<double>& group_values) = 0;

  /// Cumulative serving counters since construction (remote: since the
  /// server started — counters are server-side and shared by clients).
  virtual StatusOr<EngineStats> Stats() = 0;

  /// Constraint-set version. Two backends at the same epoch answer
  /// every query bit-identically; MirrorBackend enforces exactly that.
  virtual StatusOr<uint64_t> Epoch() = 0;

  /// Liveness check that never requires a loaded constraint set. The
  /// default derives it from Stats() (mapping the pre-LOAD
  /// kFailedPrecondition to `loaded == false`); RemoteBackend overrides
  /// it with the HEALTH wire verb, MirrorBackend with a skew-tolerant
  /// all-replica sweep.
  virtual StatusOr<HealthInfo> Health();
};

/// True iff the two ranges are indistinguishable to any observer,
/// including the sign of zero ("MIN = -0.0" must survive a replica
/// comparison and a wire round-trip). This is the equality MirrorBackend
/// and the cross-backend tests assert.
bool BitIdenticalRanges(const ResultRange& a, const ResultRange& b);

}  // namespace pcx

#endif  // PCX_ENGINE_BACKEND_H_
