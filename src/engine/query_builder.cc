#include "engine/query_builder.h"

#include <algorithm>
#include <utility>

namespace pcx {

QueryBuilder& QueryBuilder::SetAgg(AggFunc agg, ColRef col) {
  agg_ = agg;
  agg_col_ = std::move(col);
  return *this;
}

QueryBuilder& QueryBuilder::AddCondition(ColRef col, const Interval& iv) {
  conditions_.push_back(Condition{std::move(col), iv});
  return *this;
}

QueryBuilder& QueryBuilder::Count() { return SetAgg(AggFunc::kCount, Ref(0)); }
QueryBuilder& QueryBuilder::Sum(const std::string& column) {
  return SetAgg(AggFunc::kSum, Ref(column));
}
QueryBuilder& QueryBuilder::Sum(size_t attr) {
  return SetAgg(AggFunc::kSum, Ref(attr));
}
QueryBuilder& QueryBuilder::Avg(const std::string& column) {
  return SetAgg(AggFunc::kAvg, Ref(column));
}
QueryBuilder& QueryBuilder::Avg(size_t attr) {
  return SetAgg(AggFunc::kAvg, Ref(attr));
}
QueryBuilder& QueryBuilder::Min(const std::string& column) {
  return SetAgg(AggFunc::kMin, Ref(column));
}
QueryBuilder& QueryBuilder::Min(size_t attr) {
  return SetAgg(AggFunc::kMin, Ref(attr));
}
QueryBuilder& QueryBuilder::Max(const std::string& column) {
  return SetAgg(AggFunc::kMax, Ref(column));
}
QueryBuilder& QueryBuilder::Max(size_t attr) {
  return SetAgg(AggFunc::kMax, Ref(attr));
}

QueryBuilder& QueryBuilder::Where(const std::string& column, double lo,
                                  double hi) {
  return AddCondition(Ref(column), Interval::Closed(lo, hi));
}
QueryBuilder& QueryBuilder::Where(size_t attr, double lo, double hi) {
  return AddCondition(Ref(attr), Interval::Closed(lo, hi));
}
QueryBuilder& QueryBuilder::WhereIn(const std::string& column,
                                    const Interval& iv) {
  return AddCondition(Ref(column), iv);
}
QueryBuilder& QueryBuilder::WhereIn(size_t attr, const Interval& iv) {
  return AddCondition(Ref(attr), iv);
}
QueryBuilder& QueryBuilder::WhereEquals(const std::string& column,
                                        double value) {
  return AddCondition(Ref(column), Interval::Closed(value, value));
}
QueryBuilder& QueryBuilder::WhereEquals(size_t attr, double value) {
  return AddCondition(Ref(attr), Interval::Closed(value, value));
}

QueryBuilder& QueryBuilder::GroupBy(const std::string& column,
                                    std::vector<double> values) {
  group_by_set_ = true;
  group_col_ = Ref(column);
  group_values_ = std::move(values);
  return *this;
}
QueryBuilder& QueryBuilder::GroupBy(size_t attr, std::vector<double> values) {
  group_by_set_ = true;
  group_col_ = Ref(attr);
  group_values_ = std::move(values);
  return *this;
}

StatusOr<size_t> QueryBuilder::Resolve(const ColRef& col,
                                       size_t num_attrs) const {
  if (col.by_name) {
    const auto it = std::find(columns_.begin(), columns_.end(), col.name);
    if (it == columns_.end()) {
      return Status::NotFound("no column named '" + col.name +
                              "' in the QueryBuilder's column list");
    }
    return static_cast<size_t>(it - columns_.begin());
  }
  if (num_attrs > 0 && col.index >= num_attrs) {
    return Status::OutOfRange("attribute index " + std::to_string(col.index) +
                              " out of range (engine serves " +
                              std::to_string(num_attrs) + " attributes)");
  }
  return col.index;
}

size_t QueryBuilder::EffectiveNumAttrs(size_t num_attrs) const {
  if (num_attrs > 0) return num_attrs;
  if (!columns_.empty()) return columns_.size();
  size_t widest = 0;
  for (const Condition& c : conditions_) {
    if (!c.col.by_name) widest = std::max(widest, c.col.index + 1);
  }
  if (!agg_col_.by_name) widest = std::max(widest, agg_col_.index + 1);
  if (group_by_set_ && !group_col_.by_name) {
    widest = std::max(widest, group_col_.index + 1);
  }
  return widest;
}

StatusOr<AggQuery> QueryBuilder::Build(size_t num_attrs) const {
  if (num_attrs > 0 && !columns_.empty() && columns_.size() != num_attrs) {
    return Status::InvalidArgument(
        "QueryBuilder names " + std::to_string(columns_.size()) +
        " columns but the engine serves " + std::to_string(num_attrs) +
        " attributes");
  }
  const size_t n = EffectiveNumAttrs(num_attrs);
  AggQuery query;
  query.agg = agg_;
  if (agg_ != AggFunc::kCount) {
    PCX_ASSIGN_OR_RETURN(query.attr, Resolve(agg_col_, n));
  }
  if (!conditions_.empty()) {
    Predicate where(n);
    for (const Condition& c : conditions_) {
      PCX_ASSIGN_OR_RETURN(const size_t attr, Resolve(c.col, n));
      where.AddInterval(attr, c.iv);
    }
    query.where = std::move(where);
  }
  return query;
}

StatusOr<QueryBuilder::GroupBySpec> QueryBuilder::BuildGroupBy(
    size_t num_attrs) const {
  if (!group_by_set_) {
    return Status::FailedPrecondition("QueryBuilder has no GroupBy clause");
  }
  GroupBySpec spec;
  PCX_ASSIGN_OR_RETURN(spec.attr,
                       Resolve(group_col_, EffectiveNumAttrs(num_attrs)));
  spec.values = group_values_;
  return spec;
}

StatusOr<ResultRange> QueryBuilder::BoundOn(BoundBackend& backend) const {
  if (group_by_set_) {
    return Status::FailedPrecondition(
        "grouped QueryBuilder: use GroupsOn instead of BoundOn");
  }
  PCX_ASSIGN_OR_RETURN(const AggQuery query, Build(backend.num_attrs()));
  return backend.Bound(query);
}

StatusOr<std::vector<GroupRange>> QueryBuilder::GroupsOn(
    BoundBackend& backend) const {
  PCX_ASSIGN_OR_RETURN(const AggQuery query, Build(backend.num_attrs()));
  PCX_ASSIGN_OR_RETURN(const GroupBySpec spec,
                       BuildGroupBy(backend.num_attrs()));
  return backend.BoundGroupBy(query, spec.attr, spec.values);
}

}  // namespace pcx
