#ifndef PCX_ENGINE_REMOTE_BACKEND_H_
#define PCX_ENGINE_REMOTE_BACKEND_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "engine/backend.h"

namespace pcx {

/// A bidirectional line channel: one request line out, reply lines in.
/// The two shipped implementations cover the ways a pcx_serve process
/// is reachable — a localhost/remote TCP socket and a stream pair (for
/// a server on the other end of stdio pipes, or canned-reply tests).
class LineTransport {
 public:
  virtual ~LineTransport() = default;

  /// Writes one request line (`line` has no trailing newline).
  virtual Status SendLine(const std::string& line) = 0;

  /// Blocks for the next reply line (returned without the newline).
  /// kUnavailable once the peer is gone.
  virtual StatusOr<std::string> ReadLine() = 0;
};

/// TCP client transport; CRLF-tolerant like the server's own reader.
class TcpClientTransport : public LineTransport {
 public:
  static StatusOr<std::unique_ptr<TcpClientTransport>> Connect(
      const std::string& host, uint16_t port);
  ~TcpClientTransport() override;

  TcpClientTransport(const TcpClientTransport&) = delete;
  TcpClientTransport& operator=(const TcpClientTransport&) = delete;

  Status SendLine(const std::string& line) override;
  StatusOr<std::string> ReadLine() override;

 private:
  explicit TcpClientTransport(int fd) : fd_(fd) {}
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

/// Transport over caller-owned streams (a child process's stdio pipes,
/// or an istringstream of canned replies in tests). The streams must
/// outlive the transport.
class StreamTransport : public LineTransport {
 public:
  StreamTransport(std::istream& in, std::ostream& out) : in_(in), out_(out) {}

  Status SendLine(const std::string& line) override;
  StatusOr<std::string> ReadLine() override;

 private:
  std::istream& in_;
  std::ostream& out_;
};

/// The typed client of the pcx_serve line protocol: every BoundBackend
/// call is formatted as one request line, and the reply is parsed back
/// into the same StatusOr<...> shapes an in-process backend returns —
/// protocol errors (kProtocolError), transport loss (kUnavailable) and
/// server-side typed errors (the code name carried on the ERR line) stay
/// distinguishable instead of collapsing into strings. Number formatting
/// is the round-trippable pc/serialization one at both ends, so ranges
/// arrive bit-identical to what the server's solver computed, -0.0
/// included — which is what lets MirrorBackend compare a remote replica
/// against a local one.
///
/// Calls are internally serialized onto the single protocol session, so
/// a RemoteBackend can be shared between threads like any backend.
class RemoteBackend : public BoundBackend {
 public:
  /// What to do when the server answers "ERR UNAVAILABLE ..." — the
  /// typed overload rejection of the event-loop transport's admission
  /// control. Only that reply is retried: the session is demonstrably
  /// alive (it just answered), and the server promised the rejection is
  /// transient. Transport loss is never retried here — reconnecting is
  /// a topology decision that belongs to the caller.
  struct RetryPolicy {
    /// Additional attempts after the first (0 = fail fast, the
    /// pre-event-loop behavior and still the default).
    size_t max_retries = 0;
    /// Base sleep before the first retry.
    uint32_t backoff_ms = 5;
    /// Ceiling on any single backoff sleep.
    uint32_t max_backoff_ms = 2000;
    /// Decorrelated jitter (sleep uniform in [base, 3*previous], capped)
    /// instead of deterministic doubling: when a whole fleet of clients
    /// gets shed by one overloaded server, jittered retries spread the
    /// readmission wave instead of resynchronizing it into the next
    /// spike. Off = the legacy doubling, for callers that want exact
    /// reproducibility of sleep sequences.
    bool jitter = true;
    /// Seed for the jitter stream (deterministic like every RNG here).
    uint64_t jitter_seed = 0xB5297A4D3F84D5B5ULL;
  };

  /// `name` is the display name (Engine::Open passes the URI).
  explicit RemoteBackend(std::unique_ptr<LineTransport> transport,
                         std::string name = "remote");

  /// Applies to Bound and BoundGroupBy (the verbs admission control can
  /// reject). Takes the session lock, so it is safe against in-flight
  /// calls; they see either the old or the new policy, never a torn one.
  void set_retry_policy(RetryPolicy policy);

  /// Connects to a serving pcx_serve and primes num_attrs()/Epoch()
  /// from a STATS round-trip (a server with no snapshot loaded yet is
  /// fine; num_attrs() stays 0 until Load).
  static StatusOr<std::unique_ptr<RemoteBackend>> Connect(
      const std::string& host, uint16_t port);

  /// Asks the server to load a snapshot (the LOAD command); on success
  /// refreshes the cached attribute count and epoch from the reply.
  Status Load(const std::string& snapshot_path);

  /// The METRICS wire verb: fetches the server's Prometheus text
  /// exposition and returns the body of the counted block (one string,
  /// newline-terminated lines). A malformed block poisons the session
  /// (the reply-stream offset is unknown mid-block).
  StatusOr<std::string> Metrics();

  /// Sends one protocol line verbatim — the mutation verbs
  /// (APPEND/RETIRE/CHECKPOINT) and anything else with a single-line
  /// reply — and returns that reply. `ERR <CODE> ...` replies become
  /// their typed Status; an `OK epoch=..` reply refreshes the cached
  /// epoch so a mutating client's Epoch() stays current.
  StatusOr<std::string> Command(const std::string& line);

  std::string name() const override { return name_; }
  size_t num_attrs() const override;
  StatusOr<ResultRange> Bound(const AggQuery& query) override;
  StatusOr<std::vector<GroupRange>> BoundGroupBy(
      const AggQuery& query, size_t group_attr,
      const std::vector<double>& group_values) override;
  StatusOr<EngineStats> Stats() override;
  StatusOr<uint64_t> Epoch() override;
  /// The HEALTH wire verb: succeeds even before a snapshot is loaded
  /// (loaded=0), carries the server's epoch/shards/uptime/sessions.
  /// Against a pre-HEALTH server (ERR INVALID_ARGUMENT) it falls back
  /// to the Stats()-derived default, so mixed-version fleets stay
  /// health-checkable during a rolling upgrade.
  StatusOr<HealthInfo> Health() override;

 private:
  /// Sends `request` and reads the first reply line (mu_ held). Times
  /// the exchange into pcx_remote_roundtrip_us (process-default
  /// registry) and skips `#`-prefixed comment lines — the server's
  /// TRACE annotations — so a traced session stays parseable.
  StatusOr<std::string> RoundTrip(const std::string& request) REQUIRES(mu_);
  /// Drops the transport after a mid-block protocol failure — the
  /// reply-stream offset is unknown, and a desynced session could hand
  /// later callers a stale reply as a clean answer — and returns the
  /// kProtocolError carrying `message`. Subsequent calls fail
  /// kUnavailable.
  Status PoisonProtocol(std::string message) REQUIRES(mu_);
  /// The STATS round-trip + cached num_attrs/epoch refresh (mu_ held).
  StatusOr<EngineStats> StatsLocked() REQUIRES(mu_);
  /// Issues STATS and refreshes the cached num_attrs/epoch.
  Status RefreshInfo();

  mutable Mutex mu_;  ///< one in-flight request at a time
  std::unique_ptr<LineTransport> transport_ GUARDED_BY(mu_);
  std::string name_;
  RetryPolicy retry_ GUARDED_BY(mu_);
  Rng retry_rng_ GUARDED_BY(mu_);  ///< jitter stream
  size_t num_attrs_ GUARDED_BY(mu_) = 0;
  uint64_t epoch_ GUARDED_BY(mu_) = 0;
  bool info_known_ GUARDED_BY(mu_) = false;
  Histogram* const roundtrip_hist_;  ///< client-side round-trip latency
};

/// The next backoff sleep under `policy` given the previous sleep (0 on
/// the first retry): decorrelated jitter — uniform in
/// [base, 3*max(prev, base)], capped at max_backoff_ms — when
/// policy.jitter is set, else the legacy capped doubling. Free-standing
/// so tests can pin the sequence down without a live server.
uint32_t NextRetryBackoffMs(const RemoteBackend::RetryPolicy& policy,
                            uint32_t prev_ms, Rng& rng);

/// Parses one "ERR ..." reply line into the typed Status it carries.
/// Replies from servers that prefix the message with a known code name
/// ("ERR INVALID_ARGUMENT bad attribute...") keep their code; legacy
/// replies without one come back as kInternal.
Status ParseErrorReply(const std::string& line);

/// Parses a "RANGE ..." (or "GROUP <value> ...") body of key=value
/// pairs into a ResultRange. `from` is the index of the first key=value
/// token.
StatusOr<ResultRange> ParseRangeReply(const std::vector<std::string>& tokens,
                                      size_t from);

}  // namespace pcx

#endif  // PCX_ENGINE_REMOTE_BACKEND_H_
