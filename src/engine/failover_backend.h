#ifndef PCX_ENGINE_FAILOVER_BACKEND_H_
#define PCX_ENGINE_FAILOVER_BACKEND_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/backend.h"

namespace pcx {

/// The availability counterpart of MirrorBackend: instead of asking all
/// candidates and comparing, ask ONE and fall over to the next when it
/// dies. Built for the primary/replica serving topology — candidate 0
/// is the primary, the rest are read-only replicas tailing it via the
/// SYNC verb — but any list of backend URIs works.
///
/// Selection: the first time a call needs a backend (and again after
/// every demotion) all candidates are probed with Health() and the one
/// with the freshest loaded epoch wins; ties go to the lowest index, so
/// a caught-up primary is always preferred over its replicas. A call
/// that fails with kUnavailable or kProtocolError demotes the candidate
/// (its connection is dropped, so a later re-probe reconnects fresh)
/// and retries on the next-best one — each candidate is tried at most
/// once per call. Typed server-side errors (bad query, no snapshot)
/// pass through: the backend answered, failing over would just repeat
/// the same error.
///
/// A replica serves the last epoch it tailed before the primary died,
/// so the failed-over answer can be slightly stale; it is never wrong
/// for its epoch (the bit-identity guarantee is per epoch).
class FailoverBackend : public BoundBackend {
 public:
  /// Opens one candidate URI into a live backend. Injected (rather than
  /// calling Engine::Open directly) so this file does not depend on the
  /// engine layer above it; tests substitute canned backends.
  using Opener =
      std::function<StatusOr<std::shared_ptr<BoundBackend>>(const std::string&)>;

  /// At least one URI. Candidates are opened lazily on first use —
  /// a dead replica URI must not prevent construction.
  FailoverBackend(std::vector<std::string> uris, Opener opener);

  std::string name() const override;
  size_t num_attrs() const override;
  StatusOr<ResultRange> Bound(const AggQuery& query) override;
  StatusOr<std::vector<GroupRange>> BoundGroupBy(
      const AggQuery& query, size_t group_attr,
      const std::vector<double>& group_values) override;
  StatusOr<EngineStats> Stats() override;
  StatusOr<uint64_t> Epoch() override;
  StatusOr<HealthInfo> Health() override;

  size_t num_candidates() const { return uris_.size(); }

 private:
  /// Index of the best live candidate (mu_ held): opens unopened slots,
  /// probes health, picks the freshest loaded epoch (lowest index on
  /// ties). kUnavailable when nothing answers.
  StatusOr<size_t> PickLocked() REQUIRES(mu_);
  /// Drops slot `i` so the next PickLocked reconnects it from scratch
  /// (mu_ held). A poisoned remote session must not be reused.
  void DemoteLocked(size_t i) REQUIRES(mu_);
  /// Runs `op` against the best candidate, failing over on
  /// kUnavailable/kProtocolError until every candidate was tried once.
  template <typename T>
  StatusOr<T> WithFailover(
      const std::function<StatusOr<T>(BoundBackend&)>& op);

  mutable Mutex mu_;
  std::vector<std::string> uris_;
  Opener opener_;
  std::vector<std::shared_ptr<BoundBackend>> slots_
      GUARDED_BY(mu_);  ///< null = not open
};

}  // namespace pcx

#endif  // PCX_ENGINE_FAILOVER_BACKEND_H_
