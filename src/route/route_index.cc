#include "route/route_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pcx {
namespace route {
namespace {

size_t SearchDepth(size_t n) {
  size_t depth = 0;
  while (n > 0) {
    ++depth;
    n /= 2;
  }
  return depth;
}

}  // namespace

RouteIndex::RouteIndex(std::vector<Box> boxes, std::vector<AttrDomain> domains)
    : boxes_(std::move(boxes)), domains_(std::move(domains)) {
  stats_.num_boxes = boxes_.size();
  if (boxes_.empty()) return;
  const size_t num_attrs = boxes_.front().num_attrs();

  // Compile a lane only for attributes some box actually bounds: a lane
  // over an everywhere-unbounded attribute can never exclude anything,
  // so probing it would be pure overhead.
  for (size_t d = 0; d < num_attrs; ++d) {
    bool bounded = false;
    for (const Box& b : boxes_) {
      const Interval& iv = b.dim(d);
      if (iv.lo != -std::numeric_limits<double>::infinity() ||
          iv.hi != std::numeric_limits<double>::infinity()) {
        bounded = true;
        break;
      }
    }
    if (!bounded) continue;
    Lane lane;
    lane.dim = static_cast<uint32_t>(d);
    lane.by_hi.reserve(boxes_.size());
    lane.by_lo.reserve(boxes_.size());
    for (size_t i = 0; i < boxes_.size(); ++i) {
      lane.by_hi.emplace_back(boxes_[i].dim(d).hi, static_cast<uint32_t>(i));
      lane.by_lo.emplace_back(boxes_[i].dim(d).lo, static_cast<uint32_t>(i));
    }
    // Stable sorts keep equal endpoints in id order, so enumeration
    // order (and therefore timing, never results) is deterministic.
    std::stable_sort(lane.by_hi.begin(), lane.by_hi.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::stable_sort(lane.by_lo.begin(), lane.by_lo.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    stats_.num_entries += lane.by_hi.size() + lane.by_lo.size();
    lanes_.push_back(std::move(lane));
  }
  stats_.num_lanes = lanes_.size();
  stats_.depth = SearchDepth(boxes_.size());
}

bool RouteIndex::MakePlan(const Box& query, Plan* plan) const {
  // An empty query box intersects nothing; the IsEmpty test carries the
  // domain/strictness corners (open integer gaps, inverted intervals)
  // that the plain endpoint comparisons below are too coarse for.
  if (query.IsEmpty(domains_)) return false;

  plan->lane = nullptr;
  plan->from_hi = true;
  plan->begin = 0;
  plan->end = boxes_.size();
  size_t best_excluded = 0;
  for (const Lane& lane : lanes_) {
    const Interval& q = query.dim(lane.dim);
    // below: boxes with hi < q.lo — cannot reach the query interval.
    // above: boxes with lo > q.hi — start past it. Plain < / >
    // comparisons (strictness ignored) are conservative: a touching
    // endpoint stays a candidate and is settled by the exact
    // confirmation. The two runs are disjoint because q.lo <= q.hi for
    // a non-empty query interval.
    const size_t below = static_cast<size_t>(
        std::lower_bound(lane.by_hi.begin(), lane.by_hi.end(), q.lo,
                         [](const std::pair<double, uint32_t>& e, double v) {
                           return e.first < v;
                         }) -
        lane.by_hi.begin());
    const size_t above = static_cast<size_t>(
        lane.by_lo.end() -
        std::upper_bound(lane.by_lo.begin(), lane.by_lo.end(), q.hi,
                         [](double v, const std::pair<double, uint32_t>& e) {
                           return v < e.first;
                         }));
    const size_t excluded = below + above;
    if (excluded <= best_excluded) continue;
    best_excluded = excluded;
    plan->lane = &lane;
    // Enumerate whichever run is shorter: the by-hi suffix skips the
    // `below` set wholesale, the by-lo prefix skips the `above` set;
    // the other exclusion set is skipped per entry in O(1).
    if (below >= above) {
      plan->from_hi = true;
      plan->begin = below;
      plan->end = lane.by_hi.size();
    } else {
      plan->from_hi = false;
      plan->begin = 0;
      plan->end = lane.by_lo.size() - above;
    }
  }
  return true;
}

template <typename Fn>
void RouteIndex::ForEachCandidate(const Plan& plan, Fn&& fn) const {
  if (plan.lane == nullptr) {
    // No lane excluded anything (or no lanes compiled): every box is a
    // candidate for the exact confirmation.
    for (size_t i = 0; i < boxes_.size(); ++i) {
      if (!fn(static_cast<uint32_t>(i))) return;
    }
    return;
  }
  const auto& run = plan.from_hi ? plan.lane->by_hi : plan.lane->by_lo;
  for (size_t i = plan.begin; i < plan.end; ++i) {
    if (!fn(run[i].second)) return;
  }
}

bool RouteIndex::AnyIntersects(const Box& query) const {
  Plan plan;
  if (!MakePlan(query, &plan)) return false;
  bool found = false;
  ForEachCandidate(plan, [&](uint32_t id) {
    if (!boxes_[id].IntersectionEmpty(query, domains_)) {
      found = true;
      return false;  // stop
    }
    return true;
  });
  return found;
}

void RouteIndex::CollectIntersecting(const Box& query,
                                     std::vector<uint32_t>* out) const {
  out->clear();
  Plan plan;
  if (!MakePlan(query, &plan)) return;
  ForEachCandidate(plan, [&](uint32_t id) {
    if (!boxes_[id].IntersectionEmpty(query, domains_)) {
      out->push_back(id);
    }
    return true;
  });
  // Lane order is endpoint order; callers (the decomposition prefilter
  // above all) need ascending ids to preserve global constraint order.
  std::sort(out->begin(), out->end());
}

}  // namespace route
}  // namespace pcx
