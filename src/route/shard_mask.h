#ifndef PCX_ROUTE_SHARD_MASK_H_
#define PCX_ROUTE_SHARD_MASK_H_

#include <cstddef>
#include <cstdint>

namespace pcx {

/// The routing-mask word: one bit per shard, bit s = "shard s is
/// relevant to this query". The single place the shard-count ceiling
/// lives — the partitioner clamps to it, the snapshot loader answers a
/// typed ERR past it, and ShardedBoundSolver's mask plumbing (RouteMask,
/// SolverFor, the union-solver memo, scatter-gather) is typed against
/// it. Widening the fleet beyond 64 shards means changing ShardMask to
/// a wider word (or a bitset) here and nowhere else; the static_assert
/// below keeps the two from drifting apart silently.
using ShardMask = uint64_t;

/// Routing ceiling shared by the partitioner, the snapshot loader, the
/// routing index and ShardedBoundSolver.
inline constexpr size_t kMaxShards = 64;

static_assert(kMaxShards <= sizeof(ShardMask) * 8,
              "kMaxShards must fit in the ShardMask word; widen ShardMask "
              "before raising the shard ceiling");

/// The mask bit of shard `s` (s < kMaxShards).
inline constexpr ShardMask ShardBit(size_t s) { return ShardMask{1} << s; }

}  // namespace pcx

#endif  // PCX_ROUTE_SHARD_MASK_H_
