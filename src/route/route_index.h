#ifndef PCX_ROUTE_ROUTE_INDEX_H_
#define PCX_ROUTE_ROUTE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "predicate/box.h"

namespace pcx {
namespace route {

/// How ShardedBoundSolver answers RouteMask.
enum class RouteMode {
  kLinear,  ///< the O(n) hull-then-member scan (the verification oracle)
  kIndex,   ///< compiled RouteIndex dispatch (linear fallback if absent)
  kVerify,  ///< both, PCX_CHECK-ed bit-identical (tests / chaos runs)
};

/// Build-time shape of a compiled index (what STATS/METRICS surface).
struct RouteIndexStats {
  size_t num_boxes = 0;    ///< indexed boxes
  size_t num_lanes = 0;    ///< attributes with a compiled endpoint lane
  size_t num_entries = 0;  ///< endpoint records across all lanes ("nodes")
  size_t depth = 0;        ///< max binary-search depth of any lane probe
};

/// An immutable interval index over a fixed set of boxes: per-attribute
/// sorted endpoint arrays ("lanes"), stabbed by binary search. Built
/// once from a pinned snapshot's predicate boxes (or shard hulls) and
/// then consulted per query to report exactly the boxes intersecting a
/// query box.
///
/// Evaluation of a query box: every lane is probed with two binary
/// searches — `below` counts boxes whose hi endpoint lies strictly left
/// of the query interval, `above` counts boxes whose lo endpoint lies
/// strictly right of it; both are provably non-intersecting on that
/// dimension alone. The lane excluding the most boxes wins, its
/// surviving run (a suffix of the by-hi order or a prefix of the by-lo
/// order) is enumerated, and each survivor is confirmed with the exact
/// Box::IntersectionEmpty test under the attribute domains. The
/// endpoint comparisons are deliberately conservative — they ignore
/// endpoint strictness and integer-domain rounding, which can only keep
/// extra candidates — so the final verdicts are *bit-identical* to a
/// linear IntersectionEmpty scan while the work drops from O(n) to
/// O(d log n + k) for k true candidates.
///
/// Thread-safe: immutable after construction; queries use caller-owned
/// scratch only.
class RouteIndex {
 public:
  /// `boxes[i]` is the box of id i; `domains` supplies the emptiness
  /// semantics (integer attributes) for the exact confirmation step.
  RouteIndex(std::vector<Box> boxes, std::vector<AttrDomain> domains);

  /// True iff some indexed box intersects `query` (early exit on the
  /// first confirmed survivor).
  bool AnyIntersects(const Box& query) const;

  /// Clears `*out` and fills it with the ids of every box intersecting
  /// `query`, ascending. Exact: id i is reported iff
  /// !boxes[i].IntersectionEmpty(query, domains).
  void CollectIntersecting(const Box& query, std::vector<uint32_t>* out) const;

  size_t size() const { return boxes_.size(); }
  const Box& box(size_t id) const { return boxes_[id]; }
  const RouteIndexStats& stats() const { return stats_; }

 private:
  /// One attribute's endpoint arrays. Every box appears in every lane;
  /// a box unbounded on the lane's attribute sits at the array ends
  /// (±inf) and is simply never excluded by that lane.
  struct Lane {
    uint32_t dim = 0;
    std::vector<std::pair<double, uint32_t>> by_hi;  ///< (hi, id), hi asc
    std::vector<std::pair<double, uint32_t>> by_lo;  ///< (lo, id), lo asc
  };

  /// The enumeration plan for one query: which lane won, whether the
  /// surviving run is a by-hi suffix or a by-lo prefix, and its extent.
  struct Plan {
    const Lane* lane = nullptr;  ///< null: no lane excludes anything
    bool from_hi = true;         ///< true: by_hi[begin..), false: by_lo[..end)
    size_t begin = 0;
    size_t end = 0;
  };

  /// Picks the most selective lane. Returns false when the query box is
  /// empty under the domains (nothing can intersect).
  bool MakePlan(const Box& query, Plan* plan) const;

  /// Runs `fn(id)` over the plan's candidates (conservative superset);
  /// stops early when fn returns false.
  template <typename Fn>
  void ForEachCandidate(const Plan& plan, Fn&& fn) const;

  std::vector<Box> boxes_;
  std::vector<AttrDomain> domains_;
  std::vector<Lane> lanes_;
  RouteIndexStats stats_;
};

}  // namespace route
}  // namespace pcx

#endif  // PCX_ROUTE_ROUTE_INDEX_H_
