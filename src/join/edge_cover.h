#ifndef PCX_JOIN_EDGE_COVER_H_
#define PCX_JOIN_EDGE_COVER_H_

#include <optional>
#include <vector>

#include "common/statusor.h"
#include "join/hypergraph.h"

namespace pcx {

/// Result of the fractional-edge-cover optimization (paper §5.2).
struct EdgeCoverResult {
  std::vector<double> weights;  ///< c_i per relation, all >= 0
  double log_bound = 0.0;       ///< Σ c_i · log_size_i (the minimized RHS)
};

/// Solves the paper's novel FEC formulation with our LP solver:
///   minimize    Σ_i c_i · log_sizes[i]
///   subject to  Σ_{R_i ∋ s} c_i >= 1   for every attribute s
///               c_i >= 0,
///               c_fixed = 1 when `fixed_relation` is set (the relation
///               carrying the SUM attribute; its weight must be 1 for
///               Friedgut's inequality to bound SUM, see (**) in §5.2).
/// The log keeps both the objective and the constraints linear.
StatusOr<EdgeCoverResult> MinimizeFractionalEdgeCover(
    const JoinHypergraph& graph, const std::vector<double>& log_sizes,
    std::optional<size_t> fixed_relation = std::nullopt);

}  // namespace pcx

#endif  // PCX_JOIN_EDGE_COVER_H_
