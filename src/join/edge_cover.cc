#include "join/edge_cover.h"

#include "common/check.h"
#include "solver/simplex.h"

namespace pcx {

StatusOr<EdgeCoverResult> MinimizeFractionalEdgeCover(
    const JoinHypergraph& graph, const std::vector<double>& log_sizes,
    std::optional<size_t> fixed_relation) {
  const size_t r = graph.num_relations();
  if (r == 0) return Status::InvalidArgument("empty hypergraph");
  if (log_sizes.size() != r) {
    return Status::InvalidArgument("log_sizes must have one entry per relation");
  }

  LpModel model;
  model.set_sense(OptSense::kMinimize);
  for (size_t i = 0; i < r; ++i) {
    model.AddVariable(log_sizes[i], 0.0);
  }
  if (fixed_relation.has_value()) {
    PCX_CHECK(*fixed_relation < r);
    model.SetVariableBounds(*fixed_relation, 1.0, 1.0);
  }
  for (const std::string& attr : graph.attributes()) {
    LinearConstraint cover;
    for (size_t i = 0; i < r; ++i) {
      if (graph.RelationHasAttr(i, attr)) cover.terms.push_back({i, 1.0});
    }
    PCX_CHECK(!cover.terms.empty());
    cover.lo = 1.0;
    model.AddConstraint(std::move(cover));
  }

  const Solution sol = SimplexSolver().Solve(model);
  if (sol.status != SolveStatus::kOptimal) {
    return Status::Internal(std::string("edge-cover LP: ") +
                            SolveStatusToString(sol.status));
  }
  EdgeCoverResult out;
  out.weights = sol.x;
  out.log_bound = sol.objective;
  return out;
}

}  // namespace pcx
