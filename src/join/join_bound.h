#ifndef PCX_JOIN_JOIN_BOUND_H_
#define PCX_JOIN_JOIN_BOUND_H_

#include <optional>
#include <vector>

#include "common/statusor.h"
#include "join/hypergraph.h"
#include "pc/bound_solver.h"

namespace pcx {

/// Per-relation inputs of a multi-table bound: the COUNT upper bound of
/// each relation's missing rows and, for SUM queries, the SUM upper
/// bound of the relation carrying the aggregate attribute. These come
/// from single-table PcBoundSolver runs (paper §5.2: "the right hand
/// side can be solved on each relation individually").
struct JoinBoundInput {
  JoinHypergraph graph;
  std::vector<double> count_upper;          ///< per relation
  std::optional<size_t> agg_relation;       ///< relation of SUM attribute
  double sum_upper = 0.0;                   ///< SUM bound on agg_relation
};

/// Naive Cartesian-product bound (paper §5.1): the direct product of the
/// per-relation constraints ignores the join conditions entirely, so the
/// COUNT bound is Π_i COUNT_i and the SUM bound is
/// SUM_a · Π_{i≠a} COUNT_i. Always valid for inner joins, often loose.
StatusOr<double> NaiveJoinBound(const JoinBoundInput& input);

/// Fractional-edge-cover bound via Friedgut's Generalized Weighted
/// Entropy inequality (paper §5.2): SUM ≤ SUM_a · Π_{i≠a} COUNT_i^{c_i}
/// with c a minimum-weight fractional edge cover (c_a fixed to 1).
/// COUNT is the SUM of the constant-1 weight, i.e. Π COUNT_i^{c_i}.
StatusOr<double> EdgeCoverJoinBound(const JoinBoundInput& input);

/// End-to-end helper: computes each relation's COUNT (and the aggregate
/// relation's SUM) upper bounds from its own predicate-constraint set,
/// then applies EdgeCoverJoinBound. `agg_attr` is the column index of
/// the aggregate within its relation's schema; pass std::nullopt for
/// COUNT(*) of the join.
StatusOr<double> BoundNaturalJoin(
    const JoinHypergraph& graph,
    const std::vector<const PredicateConstraintSet*>& per_relation_pcs,
    std::optional<size_t> agg_relation = std::nullopt,
    std::optional<size_t> agg_attr = std::nullopt);

}  // namespace pcx

#endif  // PCX_JOIN_JOIN_BOUND_H_
