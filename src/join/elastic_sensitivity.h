#ifndef PCX_JOIN_ELASTIC_SENSITIVITY_H_
#define PCX_JOIN_ELASTIC_SENSITIVITY_H_

#include <vector>

#include "common/statusor.h"
#include "join/hypergraph.h"

namespace pcx {

/// Metadata elastic sensitivity needs about one relation (Johnson et
/// al. [14]): its size bound and the largest multiplicity any join-key
/// value may have. In the missing-data setting the key distribution of
/// the absent rows is unknown, so max_freq defaults to size — exactly
/// why the technique degenerates to the Cartesian-product bound in the
/// paper's Fig. 12 comparison.
struct EsRelation {
  double size = 0.0;
  double max_freq = -1.0;  ///< negative: default to `size`

  double EffectiveMaxFreq() const { return max_freq < 0.0 ? size : max_freq; }
};

/// Elastic-sensitivity-style upper bound on the COUNT of a natural join
/// described by `graph`: the join is evaluated left-deep in relation
/// order; each additional relation can multiply the number of matching
/// result rows by at most its max key frequency, so
///   bound = size_0 · Π_{i>0} max_freq_i.
/// With unknown key distributions (max_freq = size) this is Π_i size_i,
/// the Cartesian product — the baseline pcx improves upon with
/// EdgeCoverJoinBound.
StatusOr<double> ElasticSensitivityCountBound(
    const JoinHypergraph& graph, const std::vector<EsRelation>& relations);

}  // namespace pcx

#endif  // PCX_JOIN_ELASTIC_SENSITIVITY_H_
