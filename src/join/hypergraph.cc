#include "join/hypergraph.h"

#include <algorithm>

#include "common/check.h"

namespace pcx {

JoinHypergraph::JoinHypergraph(std::vector<JoinRelation> relations)
    : relations_(std::move(relations)) {
  for (const auto& r : relations_) {
    for (const auto& a : r.attrs) {
      if (std::find(attributes_.begin(), attributes_.end(), a) ==
          attributes_.end()) {
        attributes_.push_back(a);
      }
    }
  }
}

bool JoinHypergraph::RelationHasAttr(size_t i, const std::string& attr) const {
  PCX_CHECK(i < relations_.size());
  const auto& attrs = relations_[i].attrs;
  return std::find(attrs.begin(), attrs.end(), attr) != attrs.end();
}

JoinHypergraph JoinHypergraph::Triangle() {
  return JoinHypergraph({{"R", {"a", "b"}}, {"S", {"b", "c"}},
                         {"T", {"c", "a"}}});
}

JoinHypergraph JoinHypergraph::Chain(size_t k) {
  PCX_CHECK_GE(k, 1u);
  std::vector<JoinRelation> rels;
  for (size_t i = 0; i < k; ++i) {
    rels.push_back({"R" + std::to_string(i + 1),
                    {"x" + std::to_string(i + 1), "x" + std::to_string(i + 2)}});
  }
  return JoinHypergraph(std::move(rels));
}

JoinHypergraph JoinHypergraph::Clique(size_t k) {
  PCX_CHECK_GE(k, 2u);
  std::vector<JoinRelation> rels;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      rels.push_back({"E" + std::to_string(i) + "_" + std::to_string(j),
                      {"v" + std::to_string(i), "v" + std::to_string(j)}});
    }
  }
  return JoinHypergraph(std::move(rels));
}

}  // namespace pcx
