#ifndef PCX_JOIN_HYPERGRAPH_H_
#define PCX_JOIN_HYPERGRAPH_H_

#include <string>
#include <vector>

#include "common/statusor.h"

namespace pcx {

/// One relation participating in a natural join; attributes with equal
/// names join (paper §5.2: attributes joined across relations are
/// considered indistinguishable).
struct JoinRelation {
  std::string name;
  std::vector<std::string> attrs;
};

/// The query hypergraph of a natural join: vertices are attribute
/// names, hyperedges are relations.
class JoinHypergraph {
 public:
  JoinHypergraph() = default;
  explicit JoinHypergraph(std::vector<JoinRelation> relations);

  size_t num_relations() const { return relations_.size(); }
  const JoinRelation& relation(size_t i) const { return relations_[i]; }

  /// Distinct attribute names, in first-appearance order.
  const std::vector<std::string>& attributes() const { return attributes_; }

  /// True when relation `i` contains attribute `attr` (R_i ⊕ s).
  bool RelationHasAttr(size_t i, const std::string& attr) const;

  /// Convenience builders for the two query shapes the paper evaluates.
  /// Triangle: R(a,b), S(b,c), T(c,a).
  static JoinHypergraph Triangle();
  /// Chain: R1(x1,x2) ⋈ R2(x2,x3) ⋈ ... ⋈ Rk(xk, xk+1).
  static JoinHypergraph Chain(size_t k);
  /// k-clique over binary edge relations (4-clique etc., paper §5.1).
  static JoinHypergraph Clique(size_t k);

 private:
  std::vector<JoinRelation> relations_;
  std::vector<std::string> attributes_;
};

}  // namespace pcx

#endif  // PCX_JOIN_HYPERGRAPH_H_
