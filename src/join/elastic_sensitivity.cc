#include "join/elastic_sensitivity.h"

namespace pcx {

StatusOr<double> ElasticSensitivityCountBound(
    const JoinHypergraph& graph, const std::vector<EsRelation>& relations) {
  if (relations.size() != graph.num_relations()) {
    return Status::InvalidArgument("one EsRelation per relation required");
  }
  if (relations.empty()) return Status::InvalidArgument("empty join");
  double bound = relations[0].size;
  for (size_t i = 1; i < relations.size(); ++i) {
    bound *= relations[i].EffectiveMaxFreq();
  }
  return bound;
}

}  // namespace pcx
