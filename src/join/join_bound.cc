#include "join/join_bound.h"

#include <cmath>

#include "common/check.h"
#include "join/edge_cover.h"

namespace pcx {
namespace {

Status ValidateInput(const JoinBoundInput& input) {
  if (input.count_upper.size() != input.graph.num_relations()) {
    return Status::InvalidArgument("one COUNT bound per relation required");
  }
  for (double c : input.count_upper) {
    if (c < 0.0) return Status::InvalidArgument("negative COUNT bound");
  }
  if (input.agg_relation.has_value()) {
    if (*input.agg_relation >= input.graph.num_relations()) {
      return Status::InvalidArgument("agg_relation out of range");
    }
    if (input.sum_upper < 0.0) {
      return Status::InvalidArgument(
          "SUM bound must be non-negative (paper (**) assumes a "
          "non-negative weight function)");
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<double> NaiveJoinBound(const JoinBoundInput& input) {
  PCX_RETURN_IF_ERROR(ValidateInput(input));
  double bound = input.agg_relation.has_value() ? input.sum_upper : 1.0;
  for (size_t i = 0; i < input.graph.num_relations(); ++i) {
    if (input.agg_relation.has_value() && i == *input.agg_relation) continue;
    bound *= input.count_upper[i];
  }
  return bound;
}

StatusOr<double> EdgeCoverJoinBound(const JoinBoundInput& input) {
  PCX_RETURN_IF_ERROR(ValidateInput(input));
  const size_t r = input.graph.num_relations();
  // An empty relation (or zero SUM mass on the aggregate relation)
  // annihilates the join bound.
  for (size_t i = 0; i < r; ++i) {
    const bool is_agg =
        input.agg_relation.has_value() && i == *input.agg_relation;
    if (!is_agg && input.count_upper[i] == 0.0) return 0.0;
  }
  if (input.agg_relation.has_value() && input.sum_upper == 0.0) return 0.0;

  std::vector<double> log_sizes(r);
  for (size_t i = 0; i < r; ++i) {
    const bool is_agg =
        input.agg_relation.has_value() && i == *input.agg_relation;
    log_sizes[i] = std::log(is_agg ? input.sum_upper : input.count_upper[i]);
  }
  PCX_ASSIGN_OR_RETURN(
      const EdgeCoverResult cover,
      MinimizeFractionalEdgeCover(input.graph, log_sizes,
                                  input.agg_relation));
  return std::exp(cover.log_bound);
}

StatusOr<double> BoundNaturalJoin(
    const JoinHypergraph& graph,
    const std::vector<const PredicateConstraintSet*>& per_relation_pcs,
    std::optional<size_t> agg_relation, std::optional<size_t> agg_attr) {
  if (per_relation_pcs.size() != graph.num_relations()) {
    return Status::InvalidArgument("one PC set per relation required");
  }
  if (agg_relation.has_value() != agg_attr.has_value()) {
    return Status::InvalidArgument(
        "agg_relation and agg_attr must be set together");
  }
  JoinBoundInput input;
  input.graph = graph;
  input.count_upper.resize(per_relation_pcs.size());
  for (size_t i = 0; i < per_relation_pcs.size(); ++i) {
    PcBoundSolver solver(*per_relation_pcs[i]);
    PCX_ASSIGN_OR_RETURN(input.count_upper[i],
                         solver.UpperBound(AggQuery::Count()));
    if (agg_relation.has_value() && i == *agg_relation) {
      PCX_ASSIGN_OR_RETURN(input.sum_upper,
                           solver.UpperBound(AggQuery::Sum(*agg_attr)));
    }
  }
  input.agg_relation = agg_relation;
  return EdgeCoverJoinBound(input);
}

}  // namespace pcx
