// pcx_serve — the serving front end of the predicate-constraint engine.
//
// Serve mode (default): load a snapshot and answer the line protocol on
// stdin/stdout or a localhost TCP port:
//
//   pcx_serve --snapshot=examples/snapshots/sensors.pcxsnap
//   pcx_serve --snapshot=... --port=7070
//   pcx_serve --snapshot=... --port=0     # ephemeral: prints "PORT <n>"
//
// Client mode: connect a typed engine backend (engine/remote_backend.h)
// to a running server — or any Engine::Open URI — and drive it with the
// same command syntax. Replies are parsed into StatusOr<ResultRange>
// and re-printed, so client-mode output for a query is byte-identical
// to serve-mode output exactly when the wire round-trip is lossless:
//
//   pcx_serve --connect=tcp:127.0.0.1:7070
//
// Build mode: partition a plain pcset text file (pc/serialization
// format) into a versioned sharded snapshot:
//
//   pcx_serve --build-snapshot --pcset=sensors.pcset --shards=2
//             --strategy=range --int-attrs=0,1 --epoch=1
//             --out=sensors.pcxsnap        (one command line)
//
// See docs/ARCHITECTURE.md ("Serving", "Engine & backends") for the
// protocol and the snapshot format specification.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/text.h"
#include "engine/engine.h"
#include "engine/remote_backend.h"
#include "pc/serialization.h"
#include "serve/event_loop.h"
#include "serve/replicator.h"
#include "serve/server.h"
#include "serve/snapshot.h"

namespace {

struct Flags {
  std::string snapshot;
  std::string connect;
  int port = -1;
  size_t threads = 0;
  size_t serve_threads = 4;  // concurrent TCP session workers
  int backlog = pcx::TcpListener::kDefaultBacklog;
  bool scatter_gather = false;
  bool persistent_sat_cache = true;  // serving wants the cross-query cache
  size_t serve_clients = 0;          // exit after N TCP sessions (0 = forever)
  bool event_loop = false;           // epoll transport instead of threads
  size_t max_queue = 1024;           // event loop: admission cap (global)
  size_t max_conn_pending = 64;      // event loop: admission cap (per conn)
  unsigned long coalesce_us = 200;   // event loop: BOUND batching window
  std::string log_dir;               // durable delta log (crash recovery)
  std::string replica;               // tail a primary: tcp:host:port
  unsigned long sync_ms = 200;       // replica poll cadence
  unsigned long long slow_query_us = 0;  // slow-query log threshold (0 = off)
  std::string log_file;              // slow-query log sink (empty = stderr)
  std::string route = "index";       // RouteMask mode: index|linear|verify

  bool build_snapshot = false;
  std::string pcset;
  size_t shards = 1;
  std::string strategy = "range";
  std::string int_attrs;
  unsigned long long epoch = 0;
  std::string out;

  bool help = false;
};

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  const std::string needle = std::string("--") + name + "=";
  if (arg.rfind(needle, 0) != 0) return false;
  *value = arg.substr(needle.size());
  return true;
}

void Usage() {
  std::fprintf(
      stderr,
      "pcx_serve — sharded predicate-constraint bound server\n\n"
      "Serve mode:\n"
      "  pcx_serve [--snapshot=PATH] [--port=N] [--threads=N]\n"
      "            [--serve-threads=N] [--backlog=N] [--serve-clients=N]\n"
      "            [--scatter-gather] [--no-sat-cache] [--serve-once]\n"
      "    Without --port, speaks the protocol on stdin/stdout.\n"
      "    Without --snapshot, waits for a LOAD command.\n"
      "    --port=0 binds an ephemeral port and prints 'PORT <n>' on\n"
      "    stdout before serving.\n"
      "    --serve-threads=N serves N TCP clients concurrently (default\n"
      "    4; 1 = sequential); --backlog=N sets the listen(2) queue\n"
      "    depth; --serve-clients=N exits after N sessions\n"
      "    (--serve-once is shorthand for --serve-clients=1).\n"
      "    --event-loop switches to the epoll transport (C10K-scale:\n"
      "    connections cost an fd, not a thread; cross-connection BOUND\n"
      "    coalescing; overload answered with ERR UNAVAILABLE).\n"
      "    --serve-threads then sizes its solver pool, and\n"
      "    --max-queue=N / --max-conn-pending=N set the admission caps,\n"
      "    --coalesce-us=N the batching window (defaults 1024/64/200).\n"
      "    --log-dir=DIR journals APPEND/RETIRE/CHECKPOINT to a durable\n"
      "    fsync'd delta log; on restart the server recovers the exact\n"
      "    pre-crash epoch (base snapshot + log replay, torn tails\n"
      "    truncated). --replica=tcp:HOST:PORT makes this server a\n"
      "    read-only replica tailing that primary via the SYNC verb\n"
      "    (--sync-ms=N sets the poll cadence, default 200).\n"
      "    --slow-query-us=N logs a structured record for every request\n"
      "    slower than N microseconds (to stderr, or --log-file=PATH).\n"
      "    --route=index|linear|verify picks the RouteMask dispatch:\n"
      "    the compiled O(log n) route index (default), the O(n) linear\n"
      "    oracle, or both cross-checked per query (chaos/debug).\n"
      "    METRICS returns Prometheus text exposition; TRACE ON appends\n"
      "    '#trace ...' stage timings after each reply (per session).\n\n"
      "Client mode:\n"
      "  pcx_serve --connect=URI\n"
      "    Typed client REPL against an Engine::Open URI\n"
      "    (tcp:host:port, local:set.pcset, snapshot:v.pcxsnap?shards=K,\n"
      "    mirror:uri|uri); same BOUND/GROUPBY/STATS/QUIT syntax.\n\n"
      "Build mode:\n"
      "  pcx_serve --build-snapshot --pcset=PATH --out=PATH [--shards=K]\n"
      "            [--strategy=range|roundrobin] [--int-attrs=0,1,...]\n"
      "            [--epoch=N]\n\n"
      "Protocol: LOAD <path> | BOUND <AGG> <attr> [{a:[lo,hi],...}...] |\n"
      "          GROUPBY <AGG> <attr> <group_attr> <v1,v2,...> [{box}...] |\n"
      "          STATS | HEALTH | METRICS | TRACE ON|OFF | QUIT\n");
}

int BuildSnapshot(const Flags& flags) {
  if (flags.pcset.empty() || flags.out.empty()) {
    std::fprintf(stderr, "--build-snapshot needs --pcset= and --out=\n");
    return 2;
  }
  std::ifstream in(flags.pcset);
  if (!in) {
    std::fprintf(stderr, "cannot open pcset '%s'\n", flags.pcset.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto pcs = pcx::ParsePcSet(buf.str());
  if (!pcs.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 pcs.status().message().c_str());
    return 1;
  }

  std::vector<pcx::AttrDomain> domains(pcs->num_attrs(),
                                       pcx::AttrDomain::kContinuous);
  if (!flags.int_attrs.empty()) {
    for (const std::string& part : pcx::SplitOn(flags.int_attrs, ',')) {
      const auto attr = pcx::ParseU64(pcx::TrimWhitespace(part));
      if (!attr.ok() || *attr >= domains.size()) {
        std::fprintf(stderr,
                     "--int-attrs entry '%s' is not a valid attribute index "
                     "(want 0..%zu)\n",
                     part.c_str(), domains.size() - 1);
        return 2;
      }
      domains[static_cast<size_t>(*attr)] = pcx::AttrDomain::kInteger;
    }
  }

  pcx::PartitionOptions popts;
  popts.num_shards = flags.shards;
  if (flags.strategy == "range") {
    popts.strategy = pcx::PartitionStrategy::kAttributeRange;
  } else if (flags.strategy == "roundrobin") {
    popts.strategy = pcx::PartitionStrategy::kRoundRobin;
  } else {
    std::fprintf(stderr, "unknown --strategy=%s\n", flags.strategy.c_str());
    return 2;
  }

  const pcx::Partition partition =
      pcx::PartitionPcSet(*pcs, domains, popts);
  const pcx::Snapshot snap =
      pcx::MakeSnapshot(*pcs, domains, partition, flags.epoch);
  const pcx::Status status = pcx::WriteSnapshot(snap, flags.out);
  if (!status.ok()) {
    std::fprintf(stderr, "write error: %s\n", status.message().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "wrote %s: epoch=%llu shards=%zu pcs=%zu components=%zu "
               "largest=%zu imbalance=%.3f\n",
               flags.out.c_str(),
               static_cast<unsigned long long>(snap.epoch),
               snap.shards.size(), snap.total_pcs(),
               partition.num_components, partition.largest_component,
               partition.ImbalanceRatio());
  return 0;
}

// The typed-client REPL: the same command vocabulary as the server, but
// each line becomes a BoundBackend call on an Engine::Open'd backend and
// the typed result is printed back. Against "tcp:" this exercises the
// full client-side protocol path (request formatting, reply parsing,
// typed error codes) end to end — CI drives its remote smoke test
// through here.
int RunClient(const std::string& uri) {
  const pcx::StatusOr<pcx::Engine> engine = pcx::Engine::Open(uri);
  if (!engine.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "connected to %s (attrs=%zu)\n",
               engine->name().c_str(), engine->num_attrs());

  std::string line;
  while (std::getline(std::cin, line)) {
    const std::vector<std::string> tokens = pcx::SplitWhitespace(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    std::string cmd = tokens[0];
    for (char& c : cmd) c = static_cast<char>(std::toupper(c));

    pcx::Status error = pcx::Status::OK();
    if (cmd == "QUIT" || cmd == "EXIT") {
      std::cout << "BYE\n" << std::flush;
      return 0;
    } else if (cmd == "LOAD") {
      // Only a remote server can load a snapshot mid-session (a
      // snapshot-less "pcx_serve --port=N" waits for exactly this).
      auto* remote =
          dynamic_cast<pcx::RemoteBackend*>(engine->backend().get());
      if (tokens.size() != 2) {
        error = pcx::Status::InvalidArgument("usage: LOAD <snapshot-path>");
      } else if (remote == nullptr) {
        error = pcx::Status::Unimplemented(
            "LOAD needs a tcp: engine (in-process engines fix their "
            "constraint set at Open)");
      } else if (error = remote->Load(tokens[1]); error.ok()) {
        const auto stats = remote->Stats();
        if (stats.ok()) {
          std::cout << "OK epoch=" << stats->epoch
                    << " shards=" << stats->num_shards
                    << " pcs=" << stats->num_pcs
                    << " attrs=" << stats->num_attrs << "\n";
        } else {
          error = stats.status();
        }
      }
    } else if (cmd == "BOUND") {
      const auto query = pcx::ParseBoundRequest(tokens, engine->num_attrs());
      if (!query.ok()) {
        error = query.status();
      } else if (const auto range = engine->Bound(*query); range.ok()) {
        pcx::PrintResultRange(std::cout, "RANGE ", *range);
      } else {
        error = range.status();
      }
    } else if (cmd == "GROUPBY") {
      const auto request =
          pcx::ParseGroupByRequest(tokens, engine->num_attrs());
      if (!request.ok()) {
        error = request.status();
      } else if (const auto groups = engine->BoundGroupBy(
                     request->query, request->group_attr, request->values);
                 groups.ok()) {
        std::cout << "GROUPS " << groups->size() << "\n";
        for (const pcx::GroupRange& g : *groups) {
          std::cout << "GROUP " << pcx::FormatNumber(g.group_value) << " ";
          pcx::PrintResultRange(std::cout, "", g.range);
        }
      } else {
        error = groups.status();
      }
    } else if (cmd == "APPEND" || cmd == "RETIRE" || cmd == "CHECKPOINT") {
      // Mutation verbs pass through verbatim (single-line replies);
      // only a remote primary can journal them.
      auto* remote =
          dynamic_cast<pcx::RemoteBackend*>(engine->backend().get());
      if (remote == nullptr) {
        error = pcx::Status::Unimplemented(
            cmd + " needs a tcp: engine (in-process engines fix their "
                  "constraint set at Open)");
      } else if (const auto reply = remote->Command(line); reply.ok()) {
        std::cout << *reply << "\n";
      } else {
        error = reply.status();
      }
    } else if (cmd == "STATS") {
      const auto stats = engine->Stats();
      if (stats.ok()) {
        std::cout << "STATS epoch=" << stats->epoch
                  << " shards=" << stats->num_shards
                  << " pcs=" << stats->num_pcs
                  << " attrs=" << stats->num_attrs
                  << " queries=" << stats->queries
                  << " num_cells=" << stats->num_cells
                  << " sat_calls=" << stats->sat_calls
                  << " sat_cache_hits=" << stats->sat_cache_hits
                  << " milp_nodes=" << stats->milp_nodes
                  << " lp_solves=" << stats->lp_solves
                  << " lp_pivots=" << stats->lp_pivots
                  << " queue_depth=" << stats->queue_depth
                  << " queue_high_water=" << stats->queue_high_water
                  << " coalesced_batches=" << stats->coalesced_batches
                  << " coalesced_reqs=" << stats->coalesced_requests
                  << " max_batch=" << stats->max_coalesced_batch
                  << " overload_rejects=" << stats->overload_rejections
                  << "\n";
      } else {
        error = stats.status();
      }
    } else if (cmd == "METRICS") {
      // The server's Prometheus exposition, printed raw (no counted
      // header) — `pcx_serve --connect=tcp:... <<< METRICS` is a scrape.
      auto* remote =
          dynamic_cast<pcx::RemoteBackend*>(engine->backend().get());
      if (remote == nullptr) {
        error = pcx::Status::Unimplemented(
            "METRICS needs a tcp: engine (in-process engines have no "
            "server registry)");
      } else if (const auto body = remote->Metrics(); body.ok()) {
        std::cout << *body;
      } else {
        error = body.status();
      }
    } else if (cmd == "TRACE") {
      // Pass-through toggle. Note the typed client itself skips the
      // '#trace' annotations when parsing replies; use a raw transport
      // (nc, the stdio server) to see them. The toggle still drives the
      // server-side per-verb timing and the slow-query log.
      auto* remote =
          dynamic_cast<pcx::RemoteBackend*>(engine->backend().get());
      if (remote == nullptr) {
        error = pcx::Status::Unimplemented("TRACE needs a tcp: engine");
      } else if (const auto reply = remote->Command(line); reply.ok()) {
        std::cout << *reply << "\n";
      } else {
        error = reply.status();
      }
    } else if (cmd == "HEALTH") {
      // Typed health sweep: against mirror: engines this checks every
      // replica and enforces the configured epoch-skew bound.
      const auto health = engine->Health();
      if (health.ok()) {
        std::cout << "HEALTH loaded=" << (health->loaded ? 1 : 0)
                  << " epoch=" << health->epoch
                  << " shards=" << health->num_shards
                  << " pcs=" << health->num_pcs
                  << " uptime_s=" << health->uptime_seconds
                  << " sessions=" << health->sessions
                  << " requests=" << health->requests;
        if (health->replica) {
          std::cout << " replica=1 primary_epoch=" << health->primary_epoch
                    << " lag=" << health->replication_lag;
        }
        std::cout << "\n";
      } else {
        error = health.status();
      }
    } else {
      error = pcx::Status::InvalidArgument(
          "unknown command '" + tokens[0] +
          "' (want LOAD/BOUND/GROUPBY/APPEND/RETIRE/CHECKPOINT/STATS/"
          "HEALTH/METRICS/TRACE/QUIT)");
    }
    if (!error.ok()) {
      std::cout << "ERR " << pcx::StatusCodeToString(error.code()) << " "
                << error.message() << "\n";
    }
    std::cout << std::flush;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      flags.help = true;
    } else if (ParseFlag(arg, "snapshot", &value)) {
      flags.snapshot = value;
    } else if (ParseFlag(arg, "connect", &value)) {
      flags.connect = value;
    } else if (ParseFlag(arg, "port", &value)) {
      flags.port = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "threads", &value)) {
      flags.threads = std::strtoul(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "serve-threads", &value)) {
      flags.serve_threads = std::strtoul(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "backlog", &value)) {
      flags.backlog = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "serve-clients", &value)) {
      flags.serve_clients = std::strtoul(value.c_str(), nullptr, 10);
    } else if (arg == "--event-loop") {
      flags.event_loop = true;
    } else if (ParseFlag(arg, "max-queue", &value)) {
      flags.max_queue = std::strtoul(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "max-conn-pending", &value)) {
      flags.max_conn_pending = std::strtoul(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "coalesce-us", &value)) {
      flags.coalesce_us = std::strtoul(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "log-dir", &value)) {
      flags.log_dir = value;
    } else if (ParseFlag(arg, "replica", &value)) {
      flags.replica = value;
    } else if (ParseFlag(arg, "sync-ms", &value)) {
      flags.sync_ms = std::strtoul(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "slow-query-us", &value)) {
      flags.slow_query_us = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "log-file", &value)) {
      flags.log_file = value;
    } else if (ParseFlag(arg, "route", &value)) {
      flags.route = value;
    } else if (arg == "--scatter-gather") {
      flags.scatter_gather = true;
    } else if (arg == "--no-sat-cache") {
      flags.persistent_sat_cache = false;
    } else if (arg == "--serve-once") {
      flags.serve_clients = 1;
    } else if (arg == "--build-snapshot") {
      flags.build_snapshot = true;
    } else if (ParseFlag(arg, "pcset", &value)) {
      flags.pcset = value;
    } else if (ParseFlag(arg, "shards", &value)) {
      flags.shards = std::strtoul(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "strategy", &value)) {
      flags.strategy = value;
    } else if (ParseFlag(arg, "int-attrs", &value)) {
      flags.int_attrs = value;
    } else if (ParseFlag(arg, "epoch", &value)) {
      flags.epoch = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "out", &value)) {
      flags.out = value;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      Usage();
      return 2;
    }
  }
  if (flags.help) {
    Usage();
    return 0;
  }
  if (flags.build_snapshot) return BuildSnapshot(flags);
  if (!flags.connect.empty()) return RunClient(flags.connect);

  pcx::BoundServer::Options options;
  options.solver.num_threads = flags.threads;
  options.solver.scatter_gather = flags.scatter_gather;
  options.solver.solver.persistent_sat_cache = flags.persistent_sat_cache;
  options.slow_query_us = flags.slow_query_us;
  options.slow_log_path = flags.log_file;
  if (flags.route == "index") {
    options.solver.route_mode = pcx::route::RouteMode::kIndex;
  } else if (flags.route == "linear") {
    options.solver.route_mode = pcx::route::RouteMode::kLinear;
  } else if (flags.route == "verify") {
    options.solver.route_mode = pcx::route::RouteMode::kVerify;
  } else {
    std::fprintf(stderr, "--route wants index, linear, or verify (got '%s')\n",
                 flags.route.c_str());
    return 2;
  }
  pcx::BoundServer server(options);

  // Recovery before seeding: an initialized --log-dir IS the state (base
  // snapshot + replayed records, exact pre-crash epoch). --snapshot then
  // only seeds a log that has nothing to recover — silently resetting a
  // recovered log to an older snapshot would lose acknowledged writes.
  if (!flags.log_dir.empty()) {
    const pcx::Status status = server.EnableDurableLog(flags.log_dir);
    if (!status.ok()) {
      std::fprintf(stderr, "--log-dir failed: %s\n",
                   status.message().c_str());
      return 1;
    }
    if (server.solver() != nullptr) {
      std::fprintf(stderr, "recovered %s: epoch=%llu shards=%zu pcs=%zu\n",
                   flags.log_dir.c_str(),
                   static_cast<unsigned long long>(server.solver()->epoch()),
                   server.solver()->num_shards(),
                   server.solver()->constraints().size());
    }
  }

  if (!flags.snapshot.empty()) {
    if (server.solver() != nullptr) {
      std::fprintf(stderr,
                   "ignoring --snapshot=%s: --log-dir recovered epoch %llu\n",
                   flags.snapshot.c_str(),
                   static_cast<unsigned long long>(server.solver()->epoch()));
    } else {
      const pcx::Status status = server.LoadSnapshotFile(flags.snapshot);
      if (!status.ok()) {
        std::fprintf(stderr, "LOAD failed: %s\n", status.message().c_str());
        return 1;
      }
      std::fprintf(stderr, "loaded %s: epoch=%llu shards=%zu pcs=%zu\n",
                   flags.snapshot.c_str(),
                   static_cast<unsigned long long>(server.solver()->epoch()),
                   server.solver()->num_shards(),
                   server.solver()->constraints().size());
    }
  }

  // Replica mode: read-only + a background tailer shipping the
  // primary's delta records via the SYNC verb. The tailer outlives the
  // serve loop below and stops on destruction.
  std::unique_ptr<pcx::ReplicaTailer> tailer;
  if (!flags.replica.empty()) {
    if (flags.replica.rfind("tcp:", 0) != 0) {
      std::fprintf(stderr, "--replica must be tcp:HOST:PORT, got '%s'\n",
                   flags.replica.c_str());
      return 2;
    }
    const std::string hostport = flags.replica.substr(4);
    const size_t colon = hostport.rfind(':');
    const unsigned long port =
        colon == std::string::npos
            ? 0
            : std::strtoul(hostport.c_str() + colon + 1, nullptr, 10);
    if (colon == std::string::npos || colon == 0 || port == 0 ||
        port > 65535) {
      std::fprintf(stderr, "--replica must be tcp:HOST:PORT, got '%s'\n",
                   flags.replica.c_str());
      return 2;
    }
    pcx::ReplicaTailer::Options tail_options;
    tail_options.host = hostport.substr(0, colon);
    tail_options.port = static_cast<uint16_t>(port);
    tail_options.poll_ms = static_cast<uint32_t>(flags.sync_ms);
    server.set_read_only(true);
    tailer = std::make_unique<pcx::ReplicaTailer>(server, tail_options);
    tailer->Start();
    std::fprintf(stderr, "replica: tailing %s every %lums (read-only)\n",
                 flags.replica.c_str(), flags.sync_ms);
  }

  if (flags.port >= 0 && flags.event_loop) {
    pcx::StatusOr<pcx::EventLoopListener> listener =
        pcx::EventLoopListener::Bind(static_cast<uint16_t>(flags.port),
                                     flags.backlog);
    if (!listener.ok()) {
      std::fprintf(stderr, "server error: %s\n",
                   listener.status().message().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "serving on localhost:%u (event loop, %zu solver threads, "
                 "max_queue=%zu, coalesce_us=%lu)\n",
                 listener->port(), flags.serve_threads, flags.max_queue,
                 flags.coalesce_us);
    std::printf("PORT %u\n", listener->port());
    std::fflush(stdout);
    pcx::EventLoopListener::Options serve_options;
    serve_options.max_clients = flags.serve_clients;
    serve_options.solver_threads = flags.serve_threads;
    serve_options.max_queue = flags.max_queue;
    serve_options.max_conn_pending = flags.max_conn_pending;
    serve_options.coalesce_us = static_cast<uint32_t>(flags.coalesce_us);
    const pcx::Status status = listener->Serve(server, serve_options);
    if (!status.ok()) {
      std::fprintf(stderr, "server error: %s\n", status.message().c_str());
      return 1;
    }
    return 0;
  }
  if (flags.port >= 0) {
    // Bind before serving so --port=0 (kernel-assigned ephemeral port)
    // can announce the actual port: human-readable on stderr, a
    // machine-readable "PORT <n>" line on stdout for scripts and CI.
    pcx::StatusOr<pcx::TcpListener> listener = pcx::TcpListener::Bind(
        static_cast<uint16_t>(flags.port), flags.backlog);
    if (!listener.ok()) {
      std::fprintf(stderr, "server error: %s\n",
                   listener.status().message().c_str());
      return 1;
    }
    std::fprintf(stderr, "serving on localhost:%u (%zu session threads)\n",
                 listener->port(), flags.serve_threads);
    std::printf("PORT %u\n", listener->port());
    std::fflush(stdout);
    pcx::TcpListener::ServeOptions serve_options;
    serve_options.max_clients = flags.serve_clients;
    serve_options.session_threads = flags.serve_threads;
    const pcx::Status status = listener->Serve(server, serve_options);
    if (!status.ok()) {
      std::fprintf(stderr, "server error: %s\n", status.message().c_str());
      return 1;
    }
    return 0;
  }
  server.ServeStream(std::cin, std::cout);
  return 0;
}
