// pcx_serve — the serving front end of the predicate-constraint engine.
//
// Serve mode (default): load a snapshot and answer the line protocol on
// stdin/stdout or a localhost TCP port:
//
//   pcx_serve --snapshot=examples/snapshots/sensors.pcxsnap
//   pcx_serve --snapshot=... --port=7070
//
// Build mode: partition a plain pcset text file (pc/serialization
// format) into a versioned sharded snapshot:
//
//   pcx_serve --build-snapshot --pcset=sensors.pcset --shards=2
//             --strategy=range --int-attrs=0,1 --epoch=1
//             --out=sensors.pcxsnap        (one command line)
//
// See docs/ARCHITECTURE.md ("Serving") for the protocol and the
// snapshot format specification.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/text.h"
#include "pc/serialization.h"
#include "serve/server.h"
#include "serve/snapshot.h"

namespace {

struct Flags {
  std::string snapshot;
  int port = -1;
  size_t threads = 0;
  bool scatter_gather = false;
  bool persistent_sat_cache = true;  // serving wants the cross-query cache
  bool serve_once = false;           // exit after one TCP client (tests)

  bool build_snapshot = false;
  std::string pcset;
  size_t shards = 1;
  std::string strategy = "range";
  std::string int_attrs;
  unsigned long long epoch = 0;
  std::string out;

  bool help = false;
};

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  const std::string needle = std::string("--") + name + "=";
  if (arg.rfind(needle, 0) != 0) return false;
  *value = arg.substr(needle.size());
  return true;
}

void Usage() {
  std::fprintf(
      stderr,
      "pcx_serve — sharded predicate-constraint bound server\n\n"
      "Serve mode:\n"
      "  pcx_serve [--snapshot=PATH] [--port=N] [--threads=N]\n"
      "            [--scatter-gather] [--no-sat-cache] [--serve-once]\n"
      "    Without --port, speaks the protocol on stdin/stdout.\n"
      "    Without --snapshot, waits for a LOAD command.\n\n"
      "Build mode:\n"
      "  pcx_serve --build-snapshot --pcset=PATH --out=PATH [--shards=K]\n"
      "            [--strategy=range|roundrobin] [--int-attrs=0,1,...]\n"
      "            [--epoch=N]\n\n"
      "Protocol: LOAD <path> | BOUND <AGG> <attr> [{a:[lo,hi],...}...] |\n"
      "          GROUPBY <AGG> <attr> <group_attr> <v1,v2,...> [{box}...] |\n"
      "          STATS | QUIT\n");
}

int BuildSnapshot(const Flags& flags) {
  if (flags.pcset.empty() || flags.out.empty()) {
    std::fprintf(stderr, "--build-snapshot needs --pcset= and --out=\n");
    return 2;
  }
  std::ifstream in(flags.pcset);
  if (!in) {
    std::fprintf(stderr, "cannot open pcset '%s'\n", flags.pcset.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto pcs = pcx::ParsePcSet(buf.str());
  if (!pcs.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 pcs.status().message().c_str());
    return 1;
  }

  std::vector<pcx::AttrDomain> domains(pcs->num_attrs(),
                                       pcx::AttrDomain::kContinuous);
  if (!flags.int_attrs.empty()) {
    for (const std::string& part : pcx::SplitOn(flags.int_attrs, ',')) {
      const auto attr = pcx::ParseU64(pcx::TrimWhitespace(part));
      if (!attr.ok() || *attr >= domains.size()) {
        std::fprintf(stderr,
                     "--int-attrs entry '%s' is not a valid attribute index "
                     "(want 0..%zu)\n",
                     part.c_str(), domains.size() - 1);
        return 2;
      }
      domains[static_cast<size_t>(*attr)] = pcx::AttrDomain::kInteger;
    }
  }

  pcx::PartitionOptions popts;
  popts.num_shards = flags.shards;
  if (flags.strategy == "range") {
    popts.strategy = pcx::PartitionStrategy::kAttributeRange;
  } else if (flags.strategy == "roundrobin") {
    popts.strategy = pcx::PartitionStrategy::kRoundRobin;
  } else {
    std::fprintf(stderr, "unknown --strategy=%s\n", flags.strategy.c_str());
    return 2;
  }

  const pcx::Partition partition =
      pcx::PartitionPcSet(*pcs, domains, popts);
  const pcx::Snapshot snap =
      pcx::MakeSnapshot(*pcs, domains, partition, flags.epoch);
  const pcx::Status status = pcx::WriteSnapshot(snap, flags.out);
  if (!status.ok()) {
    std::fprintf(stderr, "write error: %s\n", status.message().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "wrote %s: epoch=%llu shards=%zu pcs=%zu components=%zu "
               "largest=%zu imbalance=%.3f\n",
               flags.out.c_str(),
               static_cast<unsigned long long>(snap.epoch),
               snap.shards.size(), snap.total_pcs(),
               partition.num_components, partition.largest_component,
               partition.ImbalanceRatio());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      flags.help = true;
    } else if (ParseFlag(arg, "snapshot", &value)) {
      flags.snapshot = value;
    } else if (ParseFlag(arg, "port", &value)) {
      flags.port = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "threads", &value)) {
      flags.threads = std::strtoul(value.c_str(), nullptr, 10);
    } else if (arg == "--scatter-gather") {
      flags.scatter_gather = true;
    } else if (arg == "--no-sat-cache") {
      flags.persistent_sat_cache = false;
    } else if (arg == "--serve-once") {
      flags.serve_once = true;
    } else if (arg == "--build-snapshot") {
      flags.build_snapshot = true;
    } else if (ParseFlag(arg, "pcset", &value)) {
      flags.pcset = value;
    } else if (ParseFlag(arg, "shards", &value)) {
      flags.shards = std::strtoul(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "strategy", &value)) {
      flags.strategy = value;
    } else if (ParseFlag(arg, "int-attrs", &value)) {
      flags.int_attrs = value;
    } else if (ParseFlag(arg, "epoch", &value)) {
      flags.epoch = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "out", &value)) {
      flags.out = value;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      Usage();
      return 2;
    }
  }
  if (flags.help) {
    Usage();
    return 0;
  }
  if (flags.build_snapshot) return BuildSnapshot(flags);

  pcx::BoundServer::Options options;
  options.solver.num_threads = flags.threads;
  options.solver.scatter_gather = flags.scatter_gather;
  options.solver.solver.persistent_sat_cache = flags.persistent_sat_cache;
  pcx::BoundServer server(options);

  if (!flags.snapshot.empty()) {
    const pcx::Status status = server.LoadSnapshotFile(flags.snapshot);
    if (!status.ok()) {
      std::fprintf(stderr, "LOAD failed: %s\n", status.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded %s: epoch=%llu shards=%zu pcs=%zu\n",
                 flags.snapshot.c_str(),
                 static_cast<unsigned long long>(server.solver()->epoch()),
                 server.solver()->num_shards(),
                 server.solver()->constraints().size());
  }

  if (flags.port >= 0) {
    std::fprintf(stderr, "serving on localhost:%d\n", flags.port);
    const pcx::Status status =
        pcx::ServeTcp(server, static_cast<uint16_t>(flags.port),
                      flags.serve_once ? 1 : 0);
    if (!status.ok()) {
      std::fprintf(stderr, "server error: %s\n", status.message().c_str());
      return 1;
    }
    return 0;
  }
  server.ServeStream(std::cin, std::cout);
  return 0;
}
