#!/usr/bin/env python3
"""Project-specific lint for pcx. Zero third-party dependencies.

Rules (each failure prints `path:line: [rule] message`):

  raw-sync-primitive   std::mutex / std::condition_variable /
                       std::lock_guard / std::unique_lock /
                       std::shared_mutex anywhere in src/ outside
                       common/mutex.h. The annotated wrappers in
                       common/mutex.h are the only sanctioned spelling —
                       a raw primitive is invisible to the clang
                       capability analysis, so its lock contract is
                       unchecked.

  banned-function      sprintf/strcpy/strcat/gets/tmpnam/atoi/atol in
                       the hot serving and solver layers (src/serve,
                       src/pc): unbounded writes and silent parse
                       failures have no place on a request path.
                       (snprintf/strtol-family are the replacements.)

  include-guard        header guards must be PCX_<PATH>_H_ (derived
                       from the path under src/).

  own-header-first     a .cc file's first include must be its own
                       header (keeps headers self-contained — the
                       compile of the .cc is the header's test).

  todo-without-issue   TODO comments must carry an issue reference:
                       TODO(#123) or TODO(name, #123). An unanchored
                       TODO is a wish, not a plan.

Usage:
  tools/lint/pcx_lint.py [--root DIR] [files...]
With no files, lints every .h/.cc under <root>/src. Exit 0 = clean,
1 = findings, 2 = usage error.
"""

import argparse
import pathlib
import re
import sys

RAW_SYNC_RE = re.compile(
    r"std::(mutex|recursive_mutex|timed_mutex|shared_mutex|shared_timed_mutex"
    r"|condition_variable(?:_any)?|lock_guard|unique_lock|shared_lock"
    r"|scoped_lock)\b"
)

# Word-boundary calls of the banned functions; "::" prefix or member
# access ("."/"->") before the name exempts it (std::strcpy is still
# banned, but e.g. `obj.gets(...)` on some other API is not ours to
# police — the \b check below keeps plain calls caught).
BANNED_FUNCTIONS = (
    "sprintf",
    "vsprintf",
    "strcpy",
    "strcat",
    "gets",
    "tmpnam",
    "atoi",
    "atol",
    "atof",
)
BANNED_RE = re.compile(
    r"(?<![\w.>])(?:std::)?(" + "|".join(BANNED_FUNCTIONS) + r")\s*\("
)

TODO_RE = re.compile(r"\bTODO\b")
TODO_WITH_ISSUE_RE = re.compile(r"\bTODO\([^)]*#\d+[^)]*\)")

COMMENT_RE = re.compile(r"//.*$")


def guard_for(path: pathlib.Path, src_root: pathlib.Path) -> str:
    rel = path.relative_to(src_root)
    return "PCX_" + re.sub(r"[^A-Za-z0-9]", "_", str(rel)).upper() + "_"


def is_exempt(path: pathlib.Path) -> bool:
    # The annotated layer itself is the one sanctioned home of the std
    # primitives it wraps.
    return path.name in ("mutex.h", "thread_annotations.h")


def lint_file(path: pathlib.Path, src_root: pathlib.Path) -> list[str]:
    findings: list[str] = []
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as e:
        return [f"{path}:0: [read-error] {e}"]
    lines = text.splitlines()
    in_serve_or_pc = any(
        part in ("serve", "pc") for part in path.relative_to(src_root).parts[:-1]
    )

    for i, line in enumerate(lines, start=1):
        code = COMMENT_RE.sub("", line)

        if not is_exempt(path):
            m = RAW_SYNC_RE.search(code)
            if m:
                findings.append(
                    f"{path}:{i}: [raw-sync-primitive] std::{m.group(1)} — use "
                    f"the annotated wrappers in common/mutex.h (Mutex, "
                    f"MutexLock, CondVar) so the lock contract is "
                    f"machine-checked"
                )

        if in_serve_or_pc:
            m = BANNED_RE.search(code)
            if m:
                findings.append(
                    f"{path}:{i}: [banned-function] {m.group(1)}() is banned "
                    f"in the serve/pc hot paths — use the bounded/checked "
                    f"equivalent (snprintf, strtol-family, std::string)"
                )

        if TODO_RE.search(line) and not TODO_WITH_ISSUE_RE.search(line):
            findings.append(
                f"{path}:{i}: [todo-without-issue] TODO must reference an "
                f"issue: TODO(#123) or TODO(name, #123)"
            )

    if path.suffix == ".h":
        expected = guard_for(path, src_root)
        guard_m = re.search(r"#ifndef\s+(\S+)", text)
        if guard_m is None or guard_m.group(1) != expected:
            got = guard_m.group(1) if guard_m else "<none>"
            findings.append(
                f"{path}:1: [include-guard] expected guard {expected}, "
                f"found {got}"
            )

    if path.suffix == ".cc":
        own_header = path.with_suffix(".h")
        if own_header.exists():
            includes = re.findall(r'#include\s+[<"]([^>"]+)[>"]', text)
            expected_first = str(own_header.relative_to(src_root))
            if includes and includes[0] != expected_first:
                findings.append(
                    f"{path}:1: [own-header-first] first include must be "
                    f'"{expected_first}" (found "{includes[0]}") — the .cc '
                    f"compile is the header's self-containment test"
                )

    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=str(pathlib.Path(__file__).resolve().parents[2]),
        help="repository root (default: inferred from this script)",
    )
    parser.add_argument("files", nargs="*", help="files to lint (default: src/**)")
    args = parser.parse_args()

    root = pathlib.Path(args.root).resolve()
    src_root = root / "src"
    if not src_root.is_dir():
        print(f"pcx_lint: no src/ under {root}", file=sys.stderr)
        return 2

    if args.files:
        paths = []
        for f in args.files:
            p = pathlib.Path(f).resolve()
            # Only src/ files carry these contracts; CI passes the whole
            # changed-file list and non-src entries are skipped here.
            if p.suffix in (".h", ".cc") and src_root in p.parents:
                paths.append(p)
    else:
        paths = sorted(
            p for p in src_root.rglob("*") if p.suffix in (".h", ".cc")
        )

    findings: list[str] = []
    for path in paths:
        findings.extend(lint_file(path, src_root))

    for finding in findings:
        print(finding)
    print(
        f"pcx_lint: {len(paths)} file(s), {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
