// Event-loop transport tests: cross-connection BOUND coalescing,
// admission control (per-connection and global caps answering typed
// ERR UNAVAILABLE), overload counters in STATS/HEALTH, full recovery
// after an overload burst, and fd hygiene across many short sessions.
//
// Determinism note exploited throughout: the loop applies solver
// completions only on wake-pipe events, and dispatches a coalesced
// batch only when its window expires (or it hits max_batch). So every
// line of one pipelined send is admitted/rejected in one sweep with no
// completions interleaved — which makes the expected reply sequence of
// an overload burst exact, not probabilistic.

#include <gtest/gtest.h>

#ifdef __linux__

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/event_loop.h"
#include "serve/server.h"
#include "serve/snapshot.h"

namespace pcx {
namespace {

PredicateConstraintSet SensorSet() {
  PredicateConstraintSet pcs;
  {
    Predicate pred(3);
    pred.AddRange(0, 0, 23);
    Box values(3);
    values.Constrain(2, Interval::Closed(10, 50));
    pcs.Add(PredicateConstraint(pred, values, {2, 5}));
  }
  {
    Predicate pred(3);
    pred.AddRange(0, 24, 47);
    Box values(3);
    values.Constrain(2, Interval::Closed(0, 30));
    pcs.Add(PredicateConstraint(pred, values, {0, 4}));
  }
  return pcs;
}

std::string WriteTestSnapshot(const std::string& tag) {
  const auto pcs = SensorSet();
  const std::vector<AttrDomain> domains = {AttrDomain::kInteger,
                                           AttrDomain::kContinuous,
                                           AttrDomain::kContinuous};
  const Partition p =
      PartitionPcSet(pcs, domains, {2, PartitionStrategy::kAttributeRange});
  const Snapshot snap = MakeSnapshot(pcs, domains, p, 1);
  const std::string path =
      testing::TempDir() + "/event_loop_" + tag + ".pcxsnap";
  PCX_CHECK(WriteSnapshot(snap, path).ok());
  return path;
}

/// The expected reply to "BOUND COUNT 0" over SensorSet().
constexpr const char* kCountReply =
    "RANGE lo=2 hi=9 defined=1 empty_possible=0\n";

class EventLoopTestServer {
 public:
  explicit EventLoopTestServer(const EventLoopListener::Options& options,
                               const std::string& snapshot) {
    PCX_CHECK(server_.LoadSnapshotFile(snapshot).ok());
    StatusOr<EventLoopListener> listener = EventLoopListener::Bind(0);
    PCX_CHECK(listener.ok()) << listener.status();
    listener_.emplace(std::move(listener).value());
    thread_ = std::thread([this, options] {
      serve_status_ = listener_->Serve(server_, options);
    });
  }
  ~EventLoopTestServer() {
    listener_->Shutdown();
    thread_.join();
  }

  uint16_t port() const { return listener_->port(); }
  BoundServer& server() { return server_; }
  const Status& serve_status() const { return serve_status_; }

 private:
  BoundServer server_;
  std::optional<EventLoopListener> listener_;
  Status serve_status_;
  std::thread thread_;
};

int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  PCX_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  PCX_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0);
  return fd;
}

void SendAll(int fd, const std::string& text) {
  size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t w =
        ::send(fd, text.data() + sent, text.size() - sent, MSG_NOSIGNAL);
    PCX_CHECK(w > 0);
    sent += static_cast<size_t>(w);
  }
}

/// Reads exactly `lines` newline-terminated replies (blocking).
std::vector<std::string> RecvLines(int fd, size_t lines) {
  std::vector<std::string> out;
  std::string buffer;
  char chunk[4096];
  while (out.size() < lines) {
    const size_t at = buffer.find('\n');
    if (at != std::string::npos) {
      out.push_back(buffer.substr(0, at + 1));
      buffer.erase(0, at + 1);
      continue;
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    PCX_CHECK(n > 0) << "peer closed after " << out.size() << " lines";
    buffer.append(chunk, static_cast<size_t>(n));
  }
  return out;
}

std::string QueryOneLine(uint16_t port, const std::string& request) {
  const int fd = RawConnect(port);
  SendAll(fd, request + "\n");
  const std::string reply = RecvLines(fd, 1)[0];
  ::close(fd);
  return reply;
}

/// "key=value" extraction from a STATS/HEALTH reply line.
uint64_t CounterIn(const std::string& line, const std::string& key) {
  const std::string needle = " " + key + "=";
  const size_t at = line.find(needle);
  PCX_CHECK(at != std::string::npos) << key << " not in: " << line;
  return std::strtoull(line.c_str() + at + needle.size(), nullptr, 10);
}

size_t OpenFdCount() {
  DIR* dir = ::opendir("/proc/self/fd");
  PCX_CHECK(dir != nullptr);
  size_t count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

TEST(EventLoopTest, CoalescesBoundsAcrossConnections) {
  EventLoopListener::Options options;
  options.solver_threads = 2;
  // A generous window: all five clients' requests land inside it, so
  // the coalescer must fold requests from *different* connections into
  // one batch.
  options.coalesce_us = 50000;
  EventLoopTestServer server(options, WriteTestSnapshot("coalesce"));

  constexpr size_t kClients = 5;
  std::vector<int> fds;
  for (size_t c = 0; c < kClients; ++c) {
    fds.push_back(RawConnect(server.port()));
  }
  for (const int fd : fds) SendAll(fd, "BOUND COUNT 0\n");
  for (const int fd : fds) {
    EXPECT_EQ(RecvLines(fd, 1)[0], kCountReply);
    ::close(fd);
  }

  const std::string stats = QueryOneLine(server.port(), "STATS");
  EXPECT_EQ(CounterIn(stats, "coalesced_reqs"), kClients);
  EXPECT_GE(CounterIn(stats, "coalesced_batches"), 1u);
  // The acceptance signal of the whole design: at least one batch held
  // requests from more than one connection.
  EXPECT_GT(CounterIn(stats, "max_batch"), 1u);
  EXPECT_EQ(CounterIn(stats, "overload_rejects"), 0u);
  EXPECT_EQ(CounterIn(stats, "queue_depth"), 0u);
}

TEST(EventLoopTest, PerConnectionPendingCapRejectsWithTypedError) {
  EventLoopListener::Options options;
  options.solver_threads = 1;
  options.max_conn_pending = 2;
  options.coalesce_us = 20000;  // holds the admitted pair in the window
  EventLoopTestServer server(options, WriteTestSnapshot("conncap"));

  // Five pipelined BOUNDs in one send: the first two are admitted into
  // the (still-open) coalescing window, the last three exceed the
  // per-connection cap. Replies come back in request order: two RANGEs
  // once the batch solves, then the three typed rejections.
  const int fd = RawConnect(server.port());
  std::string burst;
  for (int i = 0; i < 5; ++i) burst += "BOUND COUNT 0\n";
  SendAll(fd, burst);
  const std::vector<std::string> replies = RecvLines(fd, 5);
  EXPECT_EQ(replies[0], kCountReply);
  EXPECT_EQ(replies[1], kCountReply);
  for (size_t i = 2; i < 5; ++i) {
    EXPECT_EQ(replies[i].rfind("ERR UNAVAILABLE", 0), 0u) << replies[i];
  }

  // The connection survives its own rejections: the next request on the
  // same socket is served normally.
  SendAll(fd, "BOUND COUNT 0\n");
  EXPECT_EQ(RecvLines(fd, 1)[0], kCountReply);
  ::close(fd);

  const std::string health = QueryOneLine(server.port(), "HEALTH");
  EXPECT_EQ(CounterIn(health, "overload_rejects"), 3u);
  EXPECT_EQ(CounterIn(health, "queue_depth"), 0u);
}

TEST(EventLoopTest, GlobalQueueCapRejectsAndFullyRecovers) {
  EventLoopListener::Options options;
  options.solver_threads = 1;
  options.max_queue = 1;
  options.max_conn_pending = 64;
  options.coalesce_us = 20000;
  EventLoopTestServer server(options, WriteTestSnapshot("queuecap"));

  // One admitted BOUND saturates max_queue=1; the two behind it in the
  // same pipelined send are shed with the typed rejection.
  const int fd = RawConnect(server.port());
  SendAll(fd, "BOUND COUNT 0\nBOUND COUNT 0\nBOUND COUNT 0\n");
  const std::vector<std::string> replies = RecvLines(fd, 3);
  EXPECT_EQ(replies[0], kCountReply);
  EXPECT_EQ(replies[1].rfind("ERR UNAVAILABLE", 0), 0u) << replies[1];
  EXPECT_EQ(replies[2].rfind("ERR UNAVAILABLE", 0), 0u) << replies[2];

  // Recovery: the queue drained with the batch, so the next request is
  // admitted — overload is a state, not a death sentence.
  SendAll(fd, "BOUND COUNT 0\n");
  EXPECT_EQ(RecvLines(fd, 1)[0], kCountReply);

  SendAll(fd, "STATS\n");
  const std::string stats = RecvLines(fd, 1)[0];
  ::close(fd);
  EXPECT_EQ(CounterIn(stats, "overload_rejects"), 2u);
  EXPECT_EQ(CounterIn(stats, "queue_depth"), 0u);
  EXPECT_EQ(CounterIn(stats, "queue_high_water"), 1u);
}

TEST(EventLoopTest, GroupByCountsAgainstAdmissionToo) {
  EventLoopListener::Options options;
  options.solver_threads = 1;
  options.max_conn_pending = 1;
  options.coalesce_us = 20000;
  EventLoopTestServer server(options, WriteTestSnapshot("groupcap"));

  // A BOUND holds the one pending slot; the GROUPBY behind it must be
  // shed — admission control covers every solver-pool verb, or a
  // GROUPBY flood would bypass the cap entirely.
  const int fd = RawConnect(server.port());
  SendAll(fd, "BOUND COUNT 0\nGROUPBY COUNT 0 0 5,30\n");
  const std::vector<std::string> replies = RecvLines(fd, 2);
  EXPECT_EQ(replies[0], kCountReply);
  EXPECT_EQ(replies[1].rfind("ERR UNAVAILABLE", 0), 0u) << replies[1];

  // Alone in the pipeline, the same GROUPBY is served: GROUPS + groups.
  SendAll(fd, "GROUPBY COUNT 0 0 5,30\n");
  const std::vector<std::string> groups = RecvLines(fd, 3);
  EXPECT_EQ(groups[0], "GROUPS 2\n");
  EXPECT_EQ(groups[1].rfind("GROUP 5 ", 0), 0u) << groups[1];
  ::close(fd);
}

TEST(EventLoopTest, ManyShortSessionsLeakNoFdsOrCounters) {
  EventLoopListener::Options options;
  options.solver_threads = 2;
  options.coalesce_us = 0;  // latency over batching: solo client anyway
  EventLoopTestServer server(options, WriteTestSnapshot("fds"));

  // Settle: one probe session, then snapshot the process fd count.
  EXPECT_EQ(QueryOneLine(server.port(), "BOUND COUNT 0"), kCountReply);
  // The probe's server-side fd may linger an instant after the client
  // close returns; wait for open_conns to hit zero before baselining.
  for (int spin = 0; spin < 200; ++spin) {
    if (server.server().transport().open_connections.value() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const size_t baseline = OpenFdCount();

  constexpr size_t kSessions = 40;
  for (size_t s = 0; s < kSessions; ++s) {
    EXPECT_EQ(QueryOneLine(server.port(), "BOUND COUNT 0"), kCountReply);
  }
  for (int spin = 0; spin < 2000; ++spin) {
    if (server.server().transport().open_connections.value() == 0 &&
        OpenFdCount() <= baseline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.server().transport().open_connections.value(), 0);
  EXPECT_EQ(OpenFdCount(), baseline);

  const std::string health = QueryOneLine(server.port(), "HEALTH");
  // open_conns=1: the HEALTH session itself is the one live connection.
  EXPECT_EQ(CounterIn(health, "open_conns"), 1u);
  EXPECT_EQ(CounterIn(health, "queue_depth"), 0u);
  EXPECT_EQ(CounterIn(health, "overload_rejects"), 0u);
  EXPECT_GE(CounterIn(health, "sessions"), kSessions + 1);
}

}  // namespace
}  // namespace pcx

#else  // !__linux__

TEST(EventLoopTest, SkippedOffLinux) { GTEST_SKIP() << "epoll is Linux-only"; }

#endif
