// Durable delta-log tests: record/header round-trips, the corruption
// corpus (every torn or tampered log must come back as a typed error or
// a clean truncated tail — never a crash, never silent garbage), the
// durable-pair recovery rules of DurableLog::Open, and the centerpiece:
// a child process SIGKILL'd mid-append whose log the parent recovers to
// the exact acknowledged epoch, answers bit-identical to an
// uninterrupted from-scratch reference.

#include "serve/delta_log.h"

#include <gtest/gtest.h>

#ifndef _WIN32
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pc/serialization.h"
#include "serve/partitioner.h"
#include "serve/server.h"
#include "serve/sharded_solver.h"
#include "serve/snapshot.h"

namespace pcx {
namespace {

/// The server_test sensor layout: two disjoint hour ranges on attribute
/// 0 (integer), values on attribute 2.
PredicateConstraintSet SensorSet() {
  PredicateConstraintSet pcs;
  {
    Predicate pred(3);
    pred.AddRange(0, 0, 23);
    Box values(3);
    values.Constrain(2, Interval::Closed(10, 50));
    pcs.Add(PredicateConstraint(pred, values, {2, 5}));
  }
  {
    Predicate pred(3);
    pred.AddRange(0, 24, 47);
    Box values(3);
    values.Constrain(2, Interval::Closed(0, 30));
    pcs.Add(PredicateConstraint(pred, values, {0, 4}));
  }
  return pcs;
}

std::vector<AttrDomain> SensorDomains() {
  return {AttrDomain::kInteger, AttrDomain::kContinuous,
          AttrDomain::kContinuous};
}

Snapshot SensorSnapshot(uint64_t epoch) {
  const auto pcs = SensorSet();
  const auto domains = SensorDomains();
  const Partition p =
      PartitionPcSet(pcs, domains, {2, PartitionStrategy::kAttributeRange});
  return MakeSnapshot(pcs, domains, p, epoch);
}

/// A fresh, empty directory under the test tmpdir.
std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/delta_log_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// The i-th deterministic append record on top of base epoch `base` —
/// the same sequence the crash child journals and the parent replays.
DeltaRecord NthAppend(uint64_t base, size_t i) {
  DeltaRecord rec;
  rec.epoch = base + 1 + i;
  rec.op = DeltaOp::kAppend;
  Predicate pred(3);
  pred.AddRange(0, 48 + static_cast<double>(i), 48 + static_cast<double>(i));
  Box values(3);
  values.Constrain(2, Interval::Closed(1, 2 + static_cast<double>(i % 5)));
  rec.pc = PredicateConstraint(pred, values, {1, 2});
  return rec;
}

DeltaRecord RetireRecord(uint64_t epoch, size_t index) {
  DeltaRecord rec;
  rec.epoch = epoch;
  rec.op = DeltaOp::kRetire;
  rec.retire_index = index;
  return rec;
}

/// A well-formed log document: header + `n` append records, returning
/// each line so corruption tests can splice precisely.
std::vector<std::string> CleanLogLines(uint64_t base_epoch, size_t n) {
  DeltaLogHeader header;
  header.num_attrs = 3;
  header.domains = SensorDomains();
  header.base_epoch = base_epoch;
  uint64_t chain = 0;
  std::vector<std::string> lines;
  lines.push_back(SerializeLogHeader(header, &chain));
  for (size_t i = 0; i < n; ++i) {
    lines.push_back(SerializeDeltaRecord(NthAppend(base_epoch, i), chain,
                                         &chain));
  }
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text += '\n';
  }
  return text;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PCX_CHECK(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  PCX_CHECK(out.good()) << path;
}

TEST(DeltaRecordTest, AllOpsRoundTripWithChainVerification) {
  uint64_t chain = 0x1234;
  for (const DeltaRecord& rec :
       {NthAppend(7, 2), RetireRecord(9, 4),
        DeltaRecord{11, DeltaOp::kCheckpoint, {}, 0}}) {
    uint64_t crc = 0;
    const std::string line = SerializeDeltaRecord(rec, chain, &crc);
    const StatusOr<DeltaRecord> parsed =
        ParseDeltaRecordLine(line, 3, &chain);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << " for '" << line << "'";
    EXPECT_EQ(parsed->epoch, rec.epoch);
    EXPECT_EQ(parsed->op, rec.op);
    EXPECT_EQ(parsed->retire_index, rec.retire_index);
    if (rec.op == DeltaOp::kAppend) {
      EXPECT_EQ(SerializePcBody(parsed->pc), SerializePcBody(rec.pc));
    }
    // A wrong chain is rejected; a null expected_chain (wire mode)
    // accepts the same line.
    uint64_t wrong = chain ^ 1;
    EXPECT_FALSE(ParseDeltaRecordLine(line, 3, &wrong).ok());
    EXPECT_TRUE(ParseDeltaRecordLine(line, 3, nullptr).ok());
    chain = crc;
  }
}

TEST(ReplayTest, CleanLogReplaysFully) {
  const std::vector<std::string> lines = CleanLogLines(5, 3);
  const StatusOr<DeltaLogReplay> replay = ReplayDeltaLog(JoinLines(lines));
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->header.base_epoch, 5u);
  EXPECT_EQ(replay->header.num_attrs, 3u);
  ASSERT_EQ(replay->records.size(), 3u);
  EXPECT_EQ(replay->records[2].epoch, 8u);
  EXPECT_EQ(replay->tip_epoch, 8u);
  EXPECT_EQ(replay->dropped_records, 0u);
  EXPECT_TRUE(replay->truncation_reason.empty());
  EXPECT_EQ(replay->valid_bytes, JoinLines(lines).size());
}

// The corruption corpus. Every entry mutates a clean 3-record log and
// states what replay must report; none may crash or return garbage.

TEST(ReplayTest, TruncatedHeaderIsTypedError) {
  const std::string text = JoinLines(CleanLogLines(5, 3));
  // Cut inside the header line: no parseable header, hard error.
  EXPECT_FALSE(ReplayDeltaLog(text.substr(0, 20)).ok());
  EXPECT_FALSE(ReplayDeltaLog("").ok());
  EXPECT_FALSE(ReplayDeltaLog("not a log at all\n").ok());
}

TEST(ReplayTest, HeaderCrcMismatchIsTypedError) {
  std::vector<std::string> lines = CleanLogLines(5, 1);
  lines[0][10] ^= 1;  // flip a bit inside "attrs=..."
  EXPECT_FALSE(ReplayDeltaLog(JoinLines(lines)).ok());
}

TEST(ReplayTest, BitFlippedRecordTruncatesTail) {
  std::vector<std::string> lines = CleanLogLines(5, 3);
  // Flip one payload byte of the second record: it and everything
  // after it is a torn tail; the first record survives.
  lines[2][lines[2].find("pred=") + 7] ^= 1;
  const StatusOr<DeltaLogReplay> replay = ReplayDeltaLog(JoinLines(lines));
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->dropped_records, 2u);
  EXPECT_FALSE(replay->truncation_reason.empty());
  EXPECT_EQ(replay->tip_epoch, 6u);
  EXPECT_EQ(replay->valid_bytes,
            lines[0].size() + 1 + lines[1].size() + 1);
}

TEST(ReplayTest, DuplicatedRecordTruncatesAtTheDuplicate) {
  std::vector<std::string> lines = CleanLogLines(5, 3);
  // Replay a duplicated middle record: its crc is fine but its chain
  // and epoch no longer fit the stream.
  lines.insert(lines.begin() + 3, lines[2]);
  const StatusOr<DeltaLogReplay> replay = ReplayDeltaLog(JoinLines(lines));
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->dropped_records, 2u);
  EXPECT_FALSE(replay->truncation_reason.empty());
}

TEST(ReplayTest, EpochGapTruncatesTail) {
  // Build record 2 with a skipped epoch but a *correct* crc and chain,
  // so only the epoch-contiguity check can catch the lost record.
  DeltaLogHeader header{3, SensorDomains(), 5};
  uint64_t chain = 0;
  std::string text = SerializeLogHeader(header, &chain) + "\n";
  text += SerializeDeltaRecord(NthAppend(5, 0), chain, &chain) + "\n";
  DeltaRecord gap = NthAppend(5, 1);
  gap.epoch = 9;  // should be 7
  uint64_t unused = 0;
  text += SerializeDeltaRecord(gap, chain, &unused) + "\n";
  const StatusOr<DeltaLogReplay> replay = ReplayDeltaLog(text);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->dropped_records, 1u);
  EXPECT_FALSE(replay->truncation_reason.empty());
}

TEST(ReplayTest, MidRecordEofTruncatesTail) {
  const std::string text = JoinLines(CleanLogLines(5, 3));
  // Chop mid-way through the last record (a crashed append): the final
  // unterminated fragment is dropped, records before it survive.
  const StatusOr<DeltaLogReplay> replay =
      ReplayDeltaLog(text.substr(0, text.size() - 10));
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->dropped_records, 1u);
  EXPECT_FALSE(replay->truncation_reason.empty());
  // Even a complete-looking final line without '\n' is torn: the crash
  // may have happened before the newline hit the disk.
  const std::string no_newline = text.substr(0, text.size() - 1);
  const StatusOr<DeltaLogReplay> replay2 = ReplayDeltaLog(no_newline);
  ASSERT_TRUE(replay2.ok());
  EXPECT_EQ(replay2->records.size(), 2u);
  EXPECT_EQ(replay2->dropped_records, 1u);
}

TEST(ReplayTest, TrailingGarbageTruncates) {
  const std::string text = JoinLines(CleanLogLines(5, 2));
  const StatusOr<DeltaLogReplay> replay = ReplayDeltaLog(
      text + std::string(1, '\0') + "\xff garbage\n more garbage\n");
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->records.size(), 2u);
  EXPECT_GE(replay->dropped_records, 1u);
  EXPECT_EQ(replay->valid_bytes, text.size());
}

TEST(DurableLogTest, EmptyDirStartsUninitialized) {
  const std::string dir = FreshDir("empty");
  DurableLog::Recovered recovered;
  StatusOr<std::unique_ptr<DurableLog>> log =
      DurableLog::Open(dir, &recovered);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_FALSE(recovered.has_base);
  EXPECT_FALSE((*log)->initialized());
  // Appending before the first Reset is a contract violation.
  EXPECT_EQ((*log)->Append(NthAppend(0, 0)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(DurableLogTest, ResetAppendReopenRecoversTail) {
  const std::string dir = FreshDir("roundtrip");
  {
    DurableLog::Recovered recovered;
    StatusOr<std::unique_ptr<DurableLog>> log =
        DurableLog::Open(dir, &recovered);
    ASSERT_TRUE(log.ok()) << log.status();
    ASSERT_TRUE((*log)->Reset(SensorSnapshot(5)).ok());
    EXPECT_EQ((*log)->next_epoch(), 6u);
    for (size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE((*log)->Append(NthAppend(5, i)).ok());
    }
    // An out-of-order epoch is rejected before it hits the disk.
    EXPECT_FALSE((*log)->Append(NthAppend(5, 0)).ok());
  }
  DurableLog::Recovered recovered;
  StatusOr<std::unique_ptr<DurableLog>> log =
      DurableLog::Open(dir, &recovered);
  ASSERT_TRUE(log.ok()) << log.status();
  ASSERT_TRUE(recovered.has_base);
  EXPECT_EQ(recovered.base.epoch, 5u);
  ASSERT_EQ(recovered.tail.size(), 3u);
  EXPECT_EQ(recovered.tail[2].epoch, 8u);
  EXPECT_EQ(recovered.dropped_records, 0u);
  EXPECT_EQ((*log)->next_epoch(), 9u);
  // The recovered log keeps accepting appends where it left off.
  EXPECT_TRUE((*log)->Append(NthAppend(5, 3)).ok());
}

TEST(DurableLogTest, LogWithoutBaseIsFailedPrecondition) {
  const std::string dir = FreshDir("nobase");
  std::filesystem::create_directories(dir);
  WriteFile(DurableLogLogPath(dir), JoinLines(CleanLogLines(5, 1)));
  DurableLog::Recovered recovered;
  EXPECT_EQ(DurableLog::Open(dir, &recovered).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DurableLogTest, CorruptBaseSnapshotIsTypedError) {
  const std::string dir = FreshDir("badbase");
  {
    DurableLog::Recovered recovered;
    StatusOr<std::unique_ptr<DurableLog>> log =
        DurableLog::Open(dir, &recovered);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Reset(SensorSnapshot(5)).ok());
  }
  std::string base = ReadFile(DurableLogBasePath(dir));
  base[base.size() / 2] ^= 1;
  WriteFile(DurableLogBasePath(dir), base);
  DurableLog::Recovered recovered;
  EXPECT_FALSE(DurableLog::Open(dir, &recovered).ok());
}

TEST(DurableLogTest, TornTailIsTruncatedInPlaceAndAppendable) {
  const std::string dir = FreshDir("torn");
  {
    DurableLog::Recovered recovered;
    StatusOr<std::unique_ptr<DurableLog>> log =
        DurableLog::Open(dir, &recovered);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Reset(SensorSnapshot(5)).ok());
    for (size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE((*log)->Append(NthAppend(5, i)).ok());
    }
  }
  // Simulate a crash mid-append: half a record at the end of the file.
  const std::string log_path = DurableLogLogPath(dir);
  const std::string before = ReadFile(log_path);
  WriteFile(log_path, before + "rec epoch=9 append pred={0:[");
  {
    DurableLog::Recovered recovered;
    StatusOr<std::unique_ptr<DurableLog>> log =
        DurableLog::Open(dir, &recovered);
    ASSERT_TRUE(log.ok()) << log.status();
    ASSERT_EQ(recovered.tail.size(), 3u);
    EXPECT_EQ(recovered.dropped_records, 1u);
    EXPECT_FALSE(recovered.truncation_reason.empty());
    // The torn bytes are gone from the file itself...
    EXPECT_EQ(ReadFile(log_path), before);
    // ...and the next append continues the chain cleanly.
    ASSERT_TRUE((*log)->Append(NthAppend(5, 3)).ok());
  }
  DurableLog::Recovered recovered;
  StatusOr<std::unique_ptr<DurableLog>> log =
      DurableLog::Open(dir, &recovered);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ(recovered.tail.size(), 4u);
  EXPECT_EQ(recovered.dropped_records, 0u);
}

TEST(DurableLogTest, InterruptedResetReinitializesFromNewBase) {
  const std::string dir = FreshDir("interrupted");
  {
    DurableLog::Recovered recovered;
    StatusOr<std::unique_ptr<DurableLog>> log =
        DurableLog::Open(dir, &recovered);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Reset(SensorSnapshot(5)).ok());
    ASSERT_TRUE((*log)->Append(NthAppend(5, 0)).ok());
  }
  // Simulate the crash window of Reset(): the new base landed, the new
  // log did not. The stale log's base_epoch/digest no longer match.
  ASSERT_TRUE(WriteSnapshot(SensorSnapshot(9), DurableLogBasePath(dir)).ok());
  DurableLog::Recovered recovered;
  StatusOr<std::unique_ptr<DurableLog>> log =
      DurableLog::Open(dir, &recovered);
  ASSERT_TRUE(log.ok()) << log.status();
  ASSERT_TRUE(recovered.has_base);
  EXPECT_EQ(recovered.base.epoch, 9u);
  EXPECT_TRUE(recovered.tail.empty());
  EXPECT_EQ((*log)->next_epoch(), 10u);
}

#ifndef _WIN32

/// The crash-recovery centerpiece: a child process journals appends in
/// a tight loop until SIGKILL'd mid-stream; the parent recovers the
/// directory through the full server path and checks the recovered
/// epoch serves answers bit-identical to an uninterrupted from-scratch
/// build over the same acknowledged prefix.
TEST(CrashRecoveryTest, SigkillMidAppendRecoversAcknowledgedEpoch) {
  const std::string dir = FreshDir("crash");
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: journal the deterministic append sequence as fast as
    // fsync allows. _exit on any error; never return into gtest.
    DurableLog::Recovered recovered;
    StatusOr<std::unique_ptr<DurableLog>> log =
        DurableLog::Open(dir, &recovered);
    if (!log.ok()) _exit(10);
    if (!(*log)->Reset(SensorSnapshot(1)).ok()) _exit(11);
    for (size_t i = 0; i < 100000; ++i) {
      if (!(*log)->Append(NthAppend(1, i)).ok()) _exit(12);
    }
    _exit(0);
  }
  // Give the child time to durably acknowledge some appends, then kill
  // it without warning.
  ::usleep(300 * 1000);
  ::kill(pid, SIGKILL);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child exited before the kill";

  // Recover through the server path (log replay + incremental apply).
  BoundServer server;
  ASSERT_TRUE(server.EnableDurableLog(dir).ok());
  ASSERT_NE(server.solver(), nullptr) << "nothing recovered";
  const uint64_t epoch = server.solver()->epoch();
  ASSERT_GE(epoch, 1u);
  const size_t acknowledged = static_cast<size_t>(epoch - 1);

  // Uninterrupted reference: the base set plus exactly the acknowledged
  // appends, built from scratch.
  PredicateConstraintSet flat = SensorSet();
  for (size_t i = 0; i < acknowledged; ++i) {
    flat.Add(NthAppend(1, i).pc);
  }
  const ShardedBoundSolver reference(flat, SensorDomains());
  EXPECT_EQ(server.solver()->constraints().size(), flat.size());

  std::vector<AggQuery> queries;
  queries.push_back(AggQuery::Count());
  queries.push_back(AggQuery::Sum(2));
  {
    AggQuery q = AggQuery::Sum(2);
    Predicate where(3);
    where.AddRange(0, 0, 60);
    q.where = where;
    queries.push_back(q);
  }
  for (const AggQuery& q : queries) {
    const StatusOr<ResultRange> got = server.solver()->Bound(q);
    const StatusOr<ResultRange> want = reference.Bound(q);
    ASSERT_EQ(got.ok(), want.ok());
    if (!want.ok()) {
      EXPECT_EQ(got.status().code(), want.status().code());
      continue;
    }
    EXPECT_EQ(got->lo, want->lo);
    EXPECT_EQ(got->hi, want->hi);
    EXPECT_EQ(got->defined, want->defined);
    EXPECT_EQ(got->empty_instance_possible, want->empty_instance_possible);
  }

  // A second recovery of the same directory is byte-stable: the torn
  // tail (if any) was truncated by the first one.
  BoundServer server2;
  ASSERT_TRUE(server2.EnableDurableLog(dir).ok());
  ASSERT_NE(server2.solver(), nullptr);
  EXPECT_EQ(server2.solver()->epoch(), epoch);
}

#endif  // !_WIN32

}  // namespace
}  // namespace pcx
