// End-to-end observability tests: the METRICS wire verb's counted
// Prometheus block, the requests_total == sum(per-verb) reconciliation
// invariant on BOTH transports (thread-per-session TCP and the epoll
// event loop), per-session TRACE annotations over ServeStream, the
// slow-query log, and the per-shard solve histograms a future
// repartitioner will read.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "serve/server.h"
#include "serve/snapshot.h"

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/event_loop.h"
#endif

namespace pcx {
namespace {

PredicateConstraintSet SensorSet() {
  PredicateConstraintSet pcs;
  {
    Predicate pred(3);
    pred.AddRange(0, 0, 23);
    Box values(3);
    values.Constrain(2, Interval::Closed(10, 50));
    pcs.Add(PredicateConstraint(pred, values, {2, 5}));
  }
  {
    Predicate pred(3);
    pred.AddRange(0, 24, 47);
    Box values(3);
    values.Constrain(2, Interval::Closed(0, 30));
    pcs.Add(PredicateConstraint(pred, values, {0, 4}));
  }
  return pcs;
}

std::string WriteTestSnapshot(const std::string& tag) {
  const auto pcs = SensorSet();
  const std::vector<AttrDomain> domains = {AttrDomain::kInteger,
                                           AttrDomain::kContinuous,
                                           AttrDomain::kContinuous};
  const Partition p =
      PartitionPcSet(pcs, domains, {2, PartitionStrategy::kAttributeRange});
  const Snapshot snap = MakeSnapshot(pcs, domains, p, 1);
  const std::string path =
      testing::TempDir() + "/observability_" + tag + ".pcxsnap";
  PCX_CHECK(WriteSnapshot(snap, path).ok());
  return path;
}

/// The expected reply to "BOUND COUNT 0" over SensorSet().
constexpr const char* kCountReply =
    "RANGE lo=2 hi=9 defined=1 empty_possible=0\n";

/// Value of an exposition sample line "name... <value>"; nullopt when
/// the series is absent.
std::optional<double> SampleValue(const std::string& exposition,
                                  const std::string& series) {
  std::istringstream in(exposition);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(series + " ", 0) == 0) {
      return std::strtod(line.c_str() + series.size() + 1, nullptr);
    }
  }
  return std::nullopt;
}

/// Sums every sample of `family{...}` (histogram _bucket lines score as
/// their own family and are not summed here).
double SumFamilySamples(const std::string& exposition,
                        const std::string& family) {
  std::istringstream in(exposition);
  std::string line;
  double total = 0.0;
  while (std::getline(in, line)) {
    if (line.rfind(family + "{", 0) == 0) {
      total += std::strtod(line.c_str() + line.rfind(' ') + 1, nullptr);
    }
  }
  return total;
}

/// Asserts the tentpole reconciliation invariant on a server's registry:
/// pcx_requests_total == sum over verbs of pcx_requests_verb_total, and
/// both equal the HEALTH-visible cumulative requests counter.
void ExpectVerbReconciliation(BoundServer& server) {
  const std::string text = server.metrics().Exposition();
  const std::optional<double> total =
      SampleValue(text, "pcx_requests_total");
  ASSERT_TRUE(total.has_value());
  const double by_verb = SumFamilySamples(text, "pcx_requests_verb_total");
  EXPECT_EQ(*total, by_verb) << text;
  EXPECT_GT(*total, 0.0);
}

// ---------------------------------------------------------------------------
// METRICS framing + stdio (ServeStream) tests

TEST(MetricsVerbTest, AnswersCountedPrometheusBlock) {
  BoundServer server;
  ASSERT_TRUE(server.LoadSnapshotFile(WriteTestSnapshot("framing")).ok());
  std::ostringstream warm;
  server.HandleLine("BOUND COUNT 0", warm);

  std::ostringstream out;
  EXPECT_TRUE(server.HandleLine("METRICS", out));
  std::istringstream reply(out.str());
  std::string header;
  ASSERT_TRUE(std::getline(reply, header));
  unsigned long long advertised = 0;
  ASSERT_EQ(std::sscanf(header.c_str(), "METRICS %llu", &advertised), 1)
      << header;
  size_t body_lines = 0;
  std::string line;
  bool saw_requests_total = false;
  while (std::getline(reply, line)) {
    ++body_lines;
    if (line.rfind("pcx_requests_total ", 0) == 0) saw_requests_total = true;
  }
  // The counted block is exact — a scraper reads precisely n lines and
  // the session is back in sync for the next verb.
  EXPECT_EQ(body_lines, advertised);
  EXPECT_TRUE(saw_requests_total);
  // Scrape-time gauges are refreshed by the verb itself.
  const std::string text = out.str();
  EXPECT_NE(text.find("pcx_loaded 1"), std::string::npos);
  EXPECT_NE(text.find("pcx_epoch 1"), std::string::npos);
  EXPECT_NE(text.find("pcx_shards 2"), std::string::npos);
}

TEST(MetricsVerbTest, WorksBeforeAnySnapshotIsLoaded) {
  // METRICS is an operational verb like HEALTH: it must answer on an
  // empty server (loaded=0), not trip the FAILED_PRECONDITION gate.
  BoundServer server;
  std::ostringstream out;
  EXPECT_TRUE(server.HandleLine("METRICS", out));
  EXPECT_EQ(out.str().rfind("METRICS ", 0), 0u) << out.str();
  EXPECT_NE(out.str().find("pcx_loaded 0"), std::string::npos);
}

TEST(MetricsVerbTest, RegistriesAreIsolatedPerServer) {
  BoundServer a;
  BoundServer b;
  std::ostringstream out;
  a.HandleLine("HEALTH", out);
  a.HandleLine("HEALTH", out);
  b.HandleLine("HEALTH", out);
  EXPECT_EQ(SampleValue(a.metrics().Exposition(),
                        "pcx_requests_verb_total{verb=\"HEALTH\"}"),
            2.0);
  EXPECT_EQ(SampleValue(b.metrics().Exposition(),
                        "pcx_requests_verb_total{verb=\"HEALTH\"}"),
            1.0);
}

TEST(TraceTest, ServeStreamTogglesPerSessionAnnotations) {
  BoundServer server;
  ASSERT_TRUE(server.LoadSnapshotFile(WriteTestSnapshot("trace")).ok());
  std::istringstream in(
      "TRACE ON\nBOUND COUNT 0\nTRACE OFF\nBOUND COUNT 0\nQUIT\n");
  std::ostringstream out;
  server.ServeStream(in, out);

  std::vector<std::string> lines;
  std::istringstream replies(out.str());
  std::string line;
  while (std::getline(replies, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 6u) << out.str();
  EXPECT_EQ(lines[0], "OK trace=1");
  EXPECT_EQ(lines[1] + "\n", kCountReply);
  // The annotation follows its reply and carries the stage timings.
  EXPECT_EQ(lines[2].rfind("#trace id=", 0), 0u) << lines[2];
  EXPECT_NE(lines[2].find(" parse_us="), std::string::npos);
  EXPECT_NE(lines[2].find(" route_us="), std::string::npos);
  EXPECT_NE(lines[2].find(" solve_us=["), std::string::npos);
  EXPECT_NE(lines[2].find(" serialize_us="), std::string::npos);
  EXPECT_NE(lines[2].find(" total_us="), std::string::npos);
  EXPECT_EQ(lines[3], "OK trace=0");
  EXPECT_EQ(lines[4] + "\n", kCountReply);  // OFF: no annotation follows
  EXPECT_EQ(lines[5], "BYE");
}

TEST(TraceTest, WithoutSessionStateIsATypedError) {
  // The two-argument HandleLine (no session) cannot hold a toggle; the
  // verb answers FAILED_PRECONDITION rather than silently ignoring it.
  BoundServer server;
  std::ostringstream out;
  EXPECT_TRUE(server.HandleLine("TRACE ON", out));
  EXPECT_EQ(out.str().rfind("ERR FAILED_PRECONDITION", 0), 0u) << out.str();
}

TEST(SlowQueryLogTest, WritesStructuredRecordsToFile) {
  const std::string log_path = testing::TempDir() + "/slow_query_test.log";
  std::remove(log_path.c_str());
  {
    BoundServer::Options options;
    options.slow_query_us = 1;  // everything is slow
    options.slow_log_path = log_path;
    BoundServer server(options);
    ASSERT_TRUE(server.LoadSnapshotFile(WriteTestSnapshot("slowlog")).ok());
    std::ostringstream out;
    server.HandleLine("BOUND COUNT 0", out);
    server.HandleLine("HEALTH", out);
  }
  std::ifstream in(log_path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t records = 0;
  bool saw_bound = false;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.rfind("pcx_slow_query us=", 0), 0u) << line;
    EXPECT_NE(line.find(" threshold_us=1 "), std::string::npos) << line;
    if (line.find("verb=BOUND line=\"BOUND COUNT 0\"") != std::string::npos) {
      saw_bound = true;
    }
    ++records;
  }
  EXPECT_GE(records, 2u);
  EXPECT_TRUE(saw_bound);
}

TEST(SlowQueryLogTest, ThresholdZeroDisablesTheLog) {
  const std::string log_path = testing::TempDir() + "/slow_query_off.log";
  std::remove(log_path.c_str());
  {
    BoundServer::Options options;
    options.slow_log_path = log_path;  // sink configured, threshold 0
    BoundServer server(options);
    ASSERT_TRUE(server.LoadSnapshotFile(WriteTestSnapshot("slowoff")).ok());
    std::ostringstream out;
    server.HandleLine("BOUND COUNT 0", out);
  }
  std::ifstream in(log_path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_TRUE(contents.empty()) << contents;
}

TEST(ShardHistogramTest, PerShardSolveLatencyPopulates) {
  BoundServer server;
  ASSERT_TRUE(server.LoadSnapshotFile(WriteTestSnapshot("shards")).ok());
  std::ostringstream out;
  // Routed to shard 0 only (predicate attr 0 in [0,10] hits the first
  // constraint's [0,24) range partition).
  server.HandleLine("BOUND COUNT 0 {0:[0,10]}", out);
  // Unconstrained: the route mask spans both shards (union solve).
  server.HandleLine("BOUND COUNT 0", out);

  const std::string text = server.metrics().Exposition();
  const std::optional<double> shard0 = SampleValue(
      text, "pcx_shard_solve_latency_us_count{shard=\"0\"}");
  const std::optional<double> union_count = SampleValue(
      text, "pcx_shard_solve_latency_us_count{shard=\"union\"}");
  ASSERT_TRUE(shard0.has_value()) << text;
  ASSERT_TRUE(union_count.has_value()) << text;
  EXPECT_GE(*shard0, 1.0);
  EXPECT_GE(*union_count, 1.0);
  // The per-verb latency histogram saw both requests.
  EXPECT_EQ(SampleValue(text,
                        "pcx_request_latency_us_count{verb=\"BOUND\"}"),
            2.0);
}

// ---------------------------------------------------------------------------
// Reconciliation across real transports

#ifdef __linux__

int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  PCX_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  PCX_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0);
  return fd;
}

void SendAll(int fd, const std::string& text) {
  size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t w =
        ::send(fd, text.data() + sent, text.size() - sent, MSG_NOSIGNAL);
    PCX_CHECK(w > 0);
    sent += static_cast<size_t>(w);
  }
}

/// Reads until EOF and returns every newline-terminated line.
std::vector<std::string> RecvAllLines(int fd) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  std::vector<std::string> lines;
  std::istringstream in(buffer);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// The mixed workload both transport tests run: every verb class, an
/// unknown command (the OTHER bucket), and a QUIT.
constexpr const char* kMixedWorkload =
    "BOUND COUNT 0\n"
    "BOUND COUNT 0 {0:[0,10]}\n"
    "GROUPBY MIN 2 0 5,30\n"
    "STATS\n"
    "HEALTH\n"
    "FROBNICATE\n"
    "METRICS\n"
    "QUIT\n";

TEST(ReconciliationTest, ThreadTransportCountsEveryVerbOnce) {
  BoundServer server;
  ASSERT_TRUE(server.LoadSnapshotFile(WriteTestSnapshot("recon_tcp")).ok());
  StatusOr<TcpListener> listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  const uint16_t port = listener->port();
  std::thread serve([&] {
    TcpListener::ServeOptions options;
    options.max_clients = 1;
    (void)listener->Serve(server, options);
  });
  const int fd = RawConnect(port);
  SendAll(fd, kMixedWorkload);
  const std::vector<std::string> lines = RecvAllLines(fd);
  ::close(fd);
  serve.join();
  EXPECT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "BYE");

  ExpectVerbReconciliation(server);
  const std::string text = server.metrics().Exposition();
  EXPECT_EQ(SampleValue(text, "pcx_requests_verb_total{verb=\"BOUND\"}"),
            2.0);
  EXPECT_EQ(SampleValue(text, "pcx_requests_verb_total{verb=\"OTHER\"}"),
            1.0);
  EXPECT_EQ(SampleValue(text, "pcx_requests_verb_total{verb=\"QUIT\"}"),
            1.0);
  EXPECT_EQ(SampleValue(text, "pcx_requests_total"), 8.0);
}

TEST(ReconciliationTest, EventLoopTransportCountsEveryVerbOnce) {
  BoundServer server;
  ASSERT_TRUE(server.LoadSnapshotFile(WriteTestSnapshot("recon_ev")).ok());
  StatusOr<EventLoopListener> listener = EventLoopListener::Bind(0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  const uint16_t port = listener->port();
  std::thread serve([&] {
    EventLoopListener::Options options;
    options.max_clients = 1;
    options.coalesce_us = 100;  // exercise the coalesced BOUND path
    (void)listener->Serve(server, options);
  });
  const int fd = RawConnect(port);
  SendAll(fd, kMixedWorkload);
  const std::vector<std::string> lines = RecvAllLines(fd);
  ::close(fd);
  serve.join();
  EXPECT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "BYE");

  // The invariant must hold even though BOUNDs were counted by the
  // coalescer (outside HandleLine) and the rest inline.
  ExpectVerbReconciliation(server);
  const std::string text = server.metrics().Exposition();
  EXPECT_EQ(SampleValue(text, "pcx_requests_verb_total{verb=\"BOUND\"}"),
            2.0);
  EXPECT_EQ(SampleValue(text, "pcx_requests_verb_total{verb=\"OTHER\"}"),
            1.0);
  EXPECT_EQ(SampleValue(text, "pcx_requests_total"), 8.0);
  // Coalesced BOUNDs still feed the per-verb latency histogram.
  const std::optional<double> bound_lat = SampleValue(
      text, "pcx_request_latency_us_count{verb=\"BOUND\"}");
  ASSERT_TRUE(bound_lat.has_value());
  EXPECT_EQ(*bound_lat, 2.0);
}

TEST(ReconciliationTest, EventLoopTraceRoundTripAnnotates) {
  // TRACE works on the epoll transport too: per-connection session
  // state lives on the Conn, and a traced BOUND bypasses the coalescer.
  BoundServer server;
  ASSERT_TRUE(server.LoadSnapshotFile(WriteTestSnapshot("trace_ev")).ok());
  StatusOr<EventLoopListener> listener = EventLoopListener::Bind(0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  const uint16_t port = listener->port();
  std::thread serve([&] {
    EventLoopListener::Options options;
    options.max_clients = 1;
    (void)listener->Serve(server, options);
  });
  const int fd = RawConnect(port);
  SendAll(fd, "TRACE ON\nBOUND COUNT 0\nQUIT\n");
  const std::vector<std::string> lines = RecvAllLines(fd);
  ::close(fd);
  serve.join();
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "OK trace=1");
  EXPECT_EQ(lines[1] + "\n", kCountReply);
  EXPECT_EQ(lines[2].rfind("#trace id=", 0), 0u) << lines[2];
  EXPECT_EQ(lines[3], "BYE");
}

#endif  // __linux__

}  // namespace
}  // namespace pcx
