#include "common/covering_set.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.h"

namespace pcx {
namespace {

TEST(CoveringSetTest, DefaultIsEmpty) {
  CoveringSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_FALSE(s.Test(0));
  EXPECT_FALSE(s.Test(1000));
  EXPECT_TRUE(s.ToIndices().empty());
  EXPECT_EQ(s.begin(), s.end());
}

TEST(CoveringSetTest, SetTestReset) {
  CoveringSet s;
  s.Set(3);
  s.Set(64);  // second block
  s.Set(129);  // third block
  EXPECT_TRUE(s.Test(3));
  EXPECT_TRUE(s.Test(64));
  EXPECT_TRUE(s.Test(129));
  EXPECT_FALSE(s.Test(2));
  EXPECT_FALSE(s.Test(63));
  EXPECT_FALSE(s.Test(65));
  EXPECT_EQ(s.Count(), 3u);
  s.Reset(64);
  EXPECT_FALSE(s.Test(64));
  EXPECT_EQ(s.Count(), 2u);
  s.Reset(64);  // idempotent
  EXPECT_EQ(s.Count(), 2u);
  s.Reset(100000);  // resetting a never-set bit is a no-op
  EXPECT_EQ(s.Count(), 2u);
}

TEST(CoveringSetTest, EqualityIgnoresHowTheSetWasBuilt) {
  // Setting then resetting a high bit must not leave a trace (trailing
  // zero blocks are trimmed), so equality is purely set equality.
  CoveringSet a = CoveringSet::FromIndices({1, 5});
  CoveringSet b;
  b.Set(700);
  b.Set(5);
  b.Set(1);
  b.Reset(700);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(6);
  EXPECT_NE(a, b);
}

TEST(CoveringSetTest, IterationIsInIncreasingOrderAcrossBlocks) {
  const std::vector<size_t> indices = {0, 1, 63, 64, 65, 127, 128, 200, 777};
  CoveringSet s = CoveringSet::FromRange(indices);
  EXPECT_EQ(s.ToIndices(), indices);
  // Range-for visits the same sequence.
  std::vector<size_t> seen;
  for (size_t i : s) seen.push_back(i);
  EXPECT_EQ(seen, indices);
}

TEST(CoveringSetTest, UnionAndIntersection) {
  const CoveringSet a = CoveringSet::FromIndices({0, 2, 100});
  const CoveringSet b = CoveringSet::FromIndices({2, 3, 200});
  EXPECT_EQ((a | b).ToIndices(), (std::vector<size_t>{0, 2, 3, 100, 200}));
  EXPECT_EQ((a & b).ToIndices(), (std::vector<size_t>{2}));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(CoveringSet::FromIndices({1, 99, 101})));
  EXPECT_TRUE(a.ContainsAll(CoveringSet::FromIndices({0, 100})));
  EXPECT_FALSE(a.ContainsAll(b));
  EXPECT_TRUE(a.ContainsAll(CoveringSet()));  // empty subset of anything
}

TEST(CoveringSetTest, IntersectionTrimsTrailingBlocks) {
  CoveringSet a = CoveringSet::FromIndices({1, 500});
  const CoveringSet b = CoveringSet::FromIndices({1, 2});
  a &= b;
  EXPECT_EQ(a, CoveringSet::FromIndices({1}));
  EXPECT_EQ(a.Hash(), CoveringSet::FromIndices({1}).Hash());
}

TEST(CoveringSetTest, ToString) {
  EXPECT_EQ(CoveringSet().ToString(), "{}");
  EXPECT_EQ(CoveringSet::FromIndices({2, 65}).ToString(), "{2, 65}");
}

TEST(CoveringSetTest, RandomizedAgainstStdSet) {
  // Exercises >64-constraint universes: mirror every operation against
  // std::set and compare the full contents.
  Rng rng(2024);
  CoveringSet s;
  std::set<size_t> ref;
  for (int step = 0; step < 4000; ++step) {
    const size_t i = static_cast<size_t>(rng.UniformInt(0, 499));
    if (rng.UniformInt(0, 2) == 0) {
      s.Reset(i);
      ref.erase(i);
    } else {
      s.Set(i);
      ref.insert(i);
    }
  }
  EXPECT_EQ(s.Count(), ref.size());
  EXPECT_EQ(s.ToIndices(), std::vector<size_t>(ref.begin(), ref.end()));
  for (size_t i = 0; i < 520; ++i) {
    EXPECT_EQ(s.Test(i), ref.count(i) > 0) << "index " << i;
  }
}

}  // namespace
}  // namespace pcx
