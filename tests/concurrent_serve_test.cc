// Concurrent-serving tests: session workers, atomic snapshot swap with
// per-request epoch pinning, graceful shutdown, accept-loop resilience,
// and stdio/TCP parity of the session loop. The centerpiece asserts the
// serving layer's contract under fan-in: N parallel TCP clients issuing
// mixed BOUND/GROUPBY/STATS while LOAD swaps epochs mid-stream, every
// reply bit-identical to an unsharded local-backend reference at ONE of
// the live epochs — never torn, never mixed.

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "engine/local_backend.h"
#include "engine/remote_backend.h"
#include "serve/event_loop.h"
#include "serve/server.h"
#include "serve/snapshot.h"

namespace pcx {
namespace {

/// The server_test sensor layout — two disjoint hour ranges on
/// attribute 0, values on attribute 2 — parameterized so different
/// epochs produce different (and thus distinguishable) answers.
PredicateConstraintSet SensorSet(double value_hi, double freq_hi) {
  PredicateConstraintSet pcs;
  {
    Predicate pred(3);
    pred.AddRange(0, 0, 23);
    Box values(3);
    values.Constrain(2, Interval::Closed(10, value_hi));
    pcs.Add(PredicateConstraint(pred, values, {2, freq_hi}));
  }
  {
    Predicate pred(3);
    pred.AddRange(0, 24, 47);
    Box values(3);
    values.Constrain(2, Interval::Closed(0, 30));
    pcs.Add(PredicateConstraint(pred, values, {0, 4}));
  }
  return pcs;
}

std::vector<AttrDomain> SensorDomains() {
  return {AttrDomain::kInteger, AttrDomain::kContinuous,
          AttrDomain::kContinuous};
}

/// Every epoch gets its own constraint numbers, so an answer identifies
/// the epoch that produced it.
PredicateConstraintSet SetForEpoch(uint64_t epoch) {
  return epoch == 1 ? SensorSet(50, 5) : SensorSet(90, 8);
}

std::string WriteEpochSnapshot(uint64_t epoch, const std::string& tag) {
  const auto pcs = SetForEpoch(epoch);
  const auto domains = SensorDomains();
  const Partition p =
      PartitionPcSet(pcs, domains, {2, PartitionStrategy::kAttributeRange});
  const Snapshot snap = MakeSnapshot(pcs, domains, p, epoch);
  const std::string path =
      testing::TempDir() + "/concurrent_" + tag + ".pcxsnap";
  PCX_CHECK(WriteSnapshot(snap, path).ok());
  return path;
}

/// Which serving transport carries the session: the thread-per-session
/// TcpListener or the epoll event loop. The serving contract (typed
/// replies, epoch pinning, oversize/EOF handling) is transport-
/// independent, so the parity tests below run under both.
enum class Transport { kThreads, kEventLoop };

std::string TransportName(const testing::TestParamInfo<Transport>& info) {
  return info.param == Transport::kThreads ? "Threads" : "EventLoop";
}

/// An in-process concurrent pcx_serve: ephemeral port, `session_threads`
/// workers (solver-pool workers under the event loop), Shutdown-able
/// from the test thread.
class ConcurrentTestServer {
 public:
  ConcurrentTestServer(size_t session_threads, size_t max_clients,
                       const std::string& snapshot = "",
                       Transport transport = Transport::kThreads) {
    if (!snapshot.empty()) {
      PCX_CHECK(server_.LoadSnapshotFile(snapshot).ok());
    }
    if (transport == Transport::kEventLoop) {
      StatusOr<EventLoopListener> listener = EventLoopListener::Bind(0);
      PCX_CHECK(listener.ok()) << listener.status();
      event_listener_.emplace(std::move(listener).value());
      EventLoopListener::Options options;
      options.max_clients = max_clients;
      options.solver_threads = session_threads;
      thread_ = std::thread([this, options] {
        serve_status_ = event_listener_->Serve(server_, options);
      });
      return;
    }
    StatusOr<TcpListener> listener = TcpListener::Bind(0);
    PCX_CHECK(listener.ok()) << listener.status();
    listener_.emplace(std::move(listener).value());
    TcpListener::ServeOptions options;
    options.max_clients = max_clients;
    options.session_threads = session_threads;
    thread_ = std::thread([this, options] {
      serve_status_ = listener_->Serve(server_, options);
    });
  }
  ~ConcurrentTestServer() {
    Shutdown();
    Join();
  }

  void Shutdown() {
    if (event_listener_.has_value()) event_listener_->Shutdown();
    if (listener_.has_value()) listener_->Shutdown();
  }
  void Join() {
    if (thread_.joinable()) thread_.join();
  }
  uint16_t port() const {
    return event_listener_.has_value() ? event_listener_->port()
                                       : listener_->port();
  }
  BoundServer& server() { return server_; }
  const Status& serve_status() const { return serve_status_; }

 private:
  BoundServer server_;
  std::optional<TcpListener> listener_;
  std::optional<EventLoopListener> event_listener_;
  Status serve_status_;
  std::thread thread_;
};

#ifndef _WIN32

TEST(AcceptErrorTest, TransientsAreRetriedFatalsAreNot) {
  // One bad client (aborted handshake) or a momentary resource squeeze
  // must not take the listener down...
  EXPECT_TRUE(IsTransientAcceptError(ECONNABORTED));
  EXPECT_TRUE(IsTransientAcceptError(EPROTO));
  EXPECT_TRUE(IsTransientAcceptError(EINTR));
  EXPECT_TRUE(IsTransientAcceptError(EMFILE));
  EXPECT_TRUE(IsTransientAcceptError(ENFILE));
  EXPECT_TRUE(IsTransientAcceptError(ENOBUFS));
  EXPECT_TRUE(IsTransientAcceptError(ENOMEM));
  EXPECT_TRUE(IsTransientAcceptError(EAGAIN));
  // ...while a broken listener fd is unrecoverable by retrying.
  EXPECT_FALSE(IsTransientAcceptError(EBADF));
  EXPECT_FALSE(IsTransientAcceptError(EINVAL));
  EXPECT_FALSE(IsTransientAcceptError(ENOTSOCK));
  EXPECT_FALSE(IsTransientAcceptError(EFAULT));
}

int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  PCX_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  PCX_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0);
  return fd;
}

std::string ReadUntilEof(int fd) {
  std::string out;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    out.append(chunk, static_cast<size_t>(n));
  }
  return out;
}

/// Parity suite: every test runs against both transports and asserts
/// transport-independent behavior.
class TransportServeTest : public testing::TestWithParam<Transport> {};

TEST_P(TransportServeTest, TcpAnswersFinalCommandWithoutTrailingNewline) {
  const std::string snapshot = WriteEpochSnapshot(1, "eof");
  ConcurrentTestServer server(/*session_threads=*/1, /*max_clients=*/1,
                              snapshot, GetParam());

  // The last (only) command arrives with no '\n' before EOF. The
  // session loop must flush the residual buffer as a line — exactly
  // what ServeStream's getline does on stdio (parity asserted by
  // ServerTest.ServeStreamAnswersFinalLineWithoutNewline).
  const int fd = RawConnect(server.port());
  const std::string request = "BOUND COUNT 0";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  EXPECT_EQ(ReadUntilEof(fd), "RANGE lo=2 hi=9 defined=1 empty_possible=0\n");
  ::close(fd);

  server.Join();
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status();
}

TEST(ConcurrentServeTest, TwoSimultaneousClientsGetUninterleavedReplies) {
  const std::string snapshot = WriteEpochSnapshot(1, "pair");
  ConcurrentTestServer server(/*session_threads=*/2, /*max_clients=*/2,
                              snapshot);

  // Both sessions are open at the same time — under the old sequential
  // accept loop the second Connect would hang until the first client
  // disconnected.
  auto a = RemoteBackend::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(a.ok()) << a.status();
  auto b = RemoteBackend::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(b.ok()) << b.status();

  // Interleaved request/reply ping-pong: each session's replies must
  // answer its own requests (a cross-wired or interleaved reply would
  // parse wrong or return the wrong shape).
  Predicate where(3);
  where.AddRange(0, 0, 23);
  for (int round = 0; round < 5; ++round) {
    const auto count_a = (*a)->Bound(AggQuery::Count());
    ASSERT_TRUE(count_a.ok()) << count_a.status();
    EXPECT_EQ(count_a->hi, 9.0);

    const auto groups_b =
        (*b)->BoundGroupBy(AggQuery::Count(), 0, {5.0, 30.0, 99.0});
    ASSERT_TRUE(groups_b.ok()) << groups_b.status();
    ASSERT_EQ(groups_b->size(), 3u);
    EXPECT_EQ((*groups_b)[0].range.hi, 5.0);

    const auto sum_a = (*a)->Bound(AggQuery::Sum(2, where));
    ASSERT_TRUE(sum_a.ok()) << sum_a.status();
    EXPECT_EQ(sum_a->lo, 20.0);
    EXPECT_EQ(sum_a->hi, 250.0);

    const auto stats_b = (*b)->Stats();
    ASSERT_TRUE(stats_b.ok()) << stats_b.status();
    EXPECT_EQ(stats_b->epoch, 1u);
  }

  const auto health = (*a)->Health();
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_TRUE(health->loaded);
  EXPECT_EQ(health->epoch, 1u);
  EXPECT_GE(health->sessions, 2u);

  a->reset();
  b->reset();
  server.Join();
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status();
  EXPECT_EQ(server.server().sessions(), 2u);
}

TEST(ConcurrentServeTest, BurstOfClientsAllServedThroughTheBacklog) {
  const std::string snapshot = WriteEpochSnapshot(1, "burst");
  constexpr size_t kClients = 8;
  // Two workers, eight simultaneous connects: six sockets must wait in
  // the listen backlog / worker queue instead of being refused.
  ConcurrentTestServer server(/*session_threads=*/2,
                              /*max_clients=*/kClients, snapshot);

  std::atomic<size_t> ok_count{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &ok_count] {
      auto backend = RemoteBackend::Connect("127.0.0.1", server.port());
      if (!backend.ok()) return;
      const auto count = (*backend)->Bound(AggQuery::Count());
      if (count.ok() && count->lo == 2.0 && count->hi == 9.0) ++ok_count;
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok_count.load(), kClients);

  server.Join();
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status();
  EXPECT_EQ(server.server().sessions(), kClients);
}

TEST(ConcurrentServeTest, ShutdownDrainsAndServeReturnsOk) {
  const std::string snapshot = WriteEpochSnapshot(1, "shutdown");
  // Serve-forever server: only Shutdown can end it.
  ConcurrentTestServer server(/*session_threads=*/2, /*max_clients=*/0,
                              snapshot);

  {
    auto backend = RemoteBackend::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(backend.ok()) << backend.status();
    const auto count = (*backend)->Bound(AggQuery::Count());
    ASSERT_TRUE(count.ok()) << count.status();
  }
  server.Shutdown();
  server.Join();
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status();
}

TEST(ConcurrentServeTest, ShutdownDisconnectsIdleInFlightSessions) {
  const std::string snapshot = WriteEpochSnapshot(1, "idle");
  ConcurrentTestServer server(/*session_threads=*/2, /*max_clients=*/0,
                              snapshot);

  // The client queries once and then just sits on the open connection.
  // Shutdown must still drain: the session's blocked read is woken
  // with EOF instead of holding Serve hostage forever.
  auto backend = RemoteBackend::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(backend.ok()) << backend.status();
  ASSERT_TRUE((*backend)->Bound(AggQuery::Count()).ok());

  server.Shutdown();
  server.Join();  // would hang without the session-disconnect sweep
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status();

  // The server hung up on the client, typed as a lost connection.
  const auto after = (*backend)->Bound(AggQuery::Count());
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
}

TEST_P(TransportServeTest, OversizedRequestLineIsRefusedNotBuffered) {
  const std::string snapshot = WriteEpochSnapshot(1, "oversize");
  ConcurrentTestServer server(/*session_threads=*/1, /*max_clients=*/1,
                              snapshot, GetParam());

  // A newline-less stream past the line cap: the session must answer
  // one typed ERR and hang up instead of buffering without bound. The
  // overshoot past the cap exercises the server's post-ERR drain —
  // without it, closing with unread bytes queued would RST the ERR
  // reply out of the client's receive buffer.
  const int fd = RawConnect(server.port());
  const std::string blob(TcpListener::kMaxRequestLineBytes + 65536, 'x');
  size_t sent = 0;
  while (sent < blob.size()) {
    const ssize_t w = ::send(fd, blob.data() + sent, blob.size() - sent,
                             MSG_NOSIGNAL);
    if (w <= 0) break;  // server may hang up while we are still sending
    sent += static_cast<size_t>(w);
  }
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  const std::string reply = ReadUntilEof(fd);
  ::close(fd);
  EXPECT_EQ(reply.rfind("ERR INVALID_ARGUMENT request line exceeds", 0), 0u)
      << reply;

  server.Join();
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status();
}

TEST_P(TransportServeTest, MixedWorkloadAcrossEpochSwapsIsNeverTorn) {
  const std::string v1 = WriteEpochSnapshot(1, "swap_v1");
  const std::string v2 = WriteEpochSnapshot(2, "swap_v2");

  // Unsharded local references, one per epoch: the serving contract is
  // bit-identity against exactly these at the reply's epoch.
  LocalBackend ref1(SetForEpoch(1), SensorDomains());
  LocalBackend ref2(SetForEpoch(2), SensorDomains());

  Predicate where(3);
  where.AddRange(0, 0, 23);
  const AggQuery count_q = AggQuery::Count();
  const AggQuery sum_q = AggQuery::Sum(2, where);
  const std::vector<double> group_values = {5.0, 30.0, 99.0};

  const auto expect_count1 = ref1.Bound(count_q);
  const auto expect_count2 = ref2.Bound(count_q);
  const auto expect_sum1 = ref1.Bound(sum_q);
  const auto expect_sum2 = ref2.Bound(sum_q);
  const auto expect_groups1 = ref1.BoundGroupBy(count_q, 0, group_values);
  const auto expect_groups2 = ref2.BoundGroupBy(count_q, 0, group_values);
  ASSERT_TRUE(expect_count1.ok() && expect_count2.ok() && expect_sum1.ok() &&
              expect_sum2.ok() && expect_groups1.ok() && expect_groups2.ok());
  // The two epochs must be distinguishable or the assertions below
  // would vacuously pass.
  ASSERT_FALSE(BitIdenticalRanges(*expect_count1, *expect_count2));
  ASSERT_FALSE(BitIdenticalRanges(*expect_sum1, *expect_sum2));

  const auto groups_match = [](const std::vector<GroupRange>& got,
                               const std::vector<GroupRange>& want) {
    if (got.size() != want.size()) return false;
    for (size_t g = 0; g < got.size(); ++g) {
      if (got[g].group_value != want[g].group_value ||
          !BitIdenticalRanges(got[g].range, want[g].range)) {
        return false;
      }
    }
    return true;
  };

  constexpr size_t kClients = 3;
  constexpr size_t kIterations = 30;
  // Workers cover every concurrently-open session: kClients query
  // streams plus the LOAD-swapping control session.
  ConcurrentTestServer server(/*session_threads=*/kClients + 1,
                              /*max_clients=*/0, v1, GetParam());

  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      auto backend = RemoteBackend::Connect("127.0.0.1", server.port());
      if (!backend.ok()) {
        ++failures;
        return;
      }
      for (size_t i = 0; i < kIterations; ++i) {
        const auto count = (*backend)->Bound(count_q);
        if (!count.ok() || !(BitIdenticalRanges(*count, *expect_count1) ||
                             BitIdenticalRanges(*count, *expect_count2))) {
          ++failures;
        }
        const auto sum = (*backend)->Bound(sum_q);
        if (!sum.ok() || !(BitIdenticalRanges(*sum, *expect_sum1) ||
                           BitIdenticalRanges(*sum, *expect_sum2))) {
          ++failures;
        }
        // The whole GROUPBY block must come from ONE epoch: a reply
        // mixing group lines from two epochs is exactly the torn read
        // the atomic swap forbids.
        const auto groups = (*backend)->BoundGroupBy(count_q, 0, group_values);
        if (!groups.ok() || !(groups_match(*groups, *expect_groups1) ||
                              groups_match(*groups, *expect_groups2))) {
          ++failures;
        }
        const auto stats = (*backend)->Stats();
        if (!stats.ok() || (stats->epoch != 1 && stats->epoch != 2)) {
          ++failures;
        }
      }
    });
  }

  // The control session swaps snapshots under the clients' feet.
  {
    auto control = RemoteBackend::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(control.ok()) << control.status();
    for (int swap = 0; swap < 6; ++swap) {
      const Status loaded = (*control)->Load(swap % 2 == 0 ? v2 : v1);
      ASSERT_TRUE(loaded.ok()) << loaded;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0u);

  server.Shutdown();
  server.Join();
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status();
  EXPECT_EQ(server.server().sessions(), kClients + 1);
  EXPECT_GE(server.server().requests(),
            kClients * kIterations * 4);  // plus LOADs and Connect STATS
}

INSTANTIATE_TEST_SUITE_P(AllTransports, TransportServeTest,
                         testing::Values(Transport::kThreads,
                                         Transport::kEventLoop),
                         TransportName);

#endif  // !_WIN32

}  // namespace
}  // namespace pcx
