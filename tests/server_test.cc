#include "serve/server.h"

#include <gtest/gtest.h>

#include <sstream>

#include "pc/serialization.h"
#include "serve/snapshot.h"

namespace pcx {
namespace {

/// Small deterministic set: two disjoint "sensor" ranges on attribute 0
/// (integer hours), values on attribute 2.
PredicateConstraintSet SensorSet() {
  PredicateConstraintSet pcs;
  {
    Predicate pred(3);
    pred.AddRange(0, 0, 23);
    Box values(3);
    values.Constrain(2, Interval::Closed(10, 50));
    pcs.Add(PredicateConstraint(pred, values, {2, 5}));
  }
  {
    Predicate pred(3);
    pred.AddRange(0, 24, 47);
    Box values(3);
    values.Constrain(2, Interval::Closed(0, 30));
    pcs.Add(PredicateConstraint(pred, values, {0, 4}));
  }
  return pcs;
}

std::vector<AttrDomain> SensorDomains() {
  return {AttrDomain::kInteger, AttrDomain::kContinuous,
          AttrDomain::kContinuous};
}

std::string WriteSensorSnapshot(uint64_t epoch) {
  const auto pcs = SensorSet();
  const auto domains = SensorDomains();
  const Partition p =
      PartitionPcSet(pcs, domains, {2, PartitionStrategy::kAttributeRange});
  const Snapshot snap = MakeSnapshot(pcs, domains, p, epoch);
  const std::string path = testing::TempDir() + "/server_test.pcxsnap";
  PCX_CHECK(WriteSnapshot(snap, path).ok());
  return path;
}

/// Runs one line and returns the reply text.
std::string Reply(BoundServer& server, const std::string& line) {
  std::ostringstream out;
  server.HandleLine(line, out);
  return out.str();
}

TEST(ServerTest, LoadBoundStatsQuitFlow) {
  const std::string path = WriteSensorSnapshot(3);
  BoundServer server;

  // Querying before LOAD fails cleanly.
  EXPECT_EQ(Reply(server, "BOUND COUNT 0").rfind("ERR ", 0), 0u);

  const std::string ok = Reply(server, "LOAD " + path);
  EXPECT_EQ(ok.rfind("OK epoch=3 shards=2 pcs=2 attrs=3", 0), 0u) << ok;

  // COUNT over everything: mandatory 2..5 rows from PC 0, 0..4 from PC 1.
  EXPECT_EQ(Reply(server, "BOUND COUNT 0"),
            "RANGE lo=2 hi=9 defined=1 empty_possible=0\n");

  // SUM restricted to the first sensor range only.
  const std::string sum = Reply(server, "BOUND SUM 2 {0:[0,23]}");
  ASSERT_NE(sum.find("RANGE lo="), std::string::npos) << sum;
  // Cross-check against the solver directly.
  AggQuery q = AggQuery::Sum(2);
  Predicate where(3);
  where.AddRange(0, 0, 23);
  q.where = where;
  const auto direct = server.solver()->Bound(q);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(sum, "RANGE lo=" + FormatNumber(direct->lo) +
                     " hi=" + FormatNumber(direct->hi) + " defined=1" +
                     " empty_possible=0\n");

  const std::string stats = Reply(server, "STATS");
  EXPECT_EQ(stats.rfind("STATS epoch=3 shards=2 pcs=2 attrs=3", 0), 0u)
      << stats;
  EXPECT_NE(stats.find(" queries=3"), std::string::npos) << stats;
  EXPECT_NE(stats.find(" sat_cache_hits="), std::string::npos);
  EXPECT_NE(stats.find(" imbalance="), std::string::npos);

  std::ostringstream out;
  EXPECT_FALSE(server.HandleLine("QUIT", out));
  EXPECT_EQ(out.str(), "BYE\n");
}

TEST(ServerTest, GroupByRepliesPerGroup) {
  const std::string path = WriteSensorSnapshot(1);
  BoundServer server;
  ASSERT_EQ(Reply(server, "LOAD " + path).rfind("OK ", 0), 0u);

  // Group on attribute 0 at one hour inside each sensor range.
  const std::string reply = Reply(server, "GROUPBY COUNT 0 0 5,30,99");
  std::istringstream lines(reply);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "GROUPS 3");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("GROUP 5 lo=0 hi=5", 0), 0u) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("GROUP 30 lo=0 hi=4", 0), 0u) << line;
  ASSERT_TRUE(std::getline(lines, line));
  // Hour 99 matches neither constraint: nothing can be there.
  EXPECT_EQ(line.rfind("GROUP 99 lo=0 hi=0", 0), 0u) << line;
}

TEST(ServerTest, MalformedCommandsAnswerErrWithoutDying) {
  const std::string path = WriteSensorSnapshot(1);
  BoundServer server;
  ASSERT_EQ(Reply(server, "LOAD " + path).rfind("OK ", 0), 0u);

  const std::vector<std::pair<std::string, std::string>> cases = {
      {"FROBNICATE", "unknown command"},
      {"BOUND", "usage:"},
      {"BOUND MEDIAN 0", "unknown aggregate"},
      {"BOUND COUNT zero", "bad attribute index"},
      {"BOUND SUM 2 {9:[0,1]}", "out of range"},
      {"BOUND SUM 2 0:[0,1]", "wrapped in {}"},
      {"BOUND SUM 2 {0:[5,1]}", "inverted interval"},
      {"GROUPBY COUNT 0 0", "usage:"},
      {"GROUPBY COUNT 0 0 ,", "empty group value list"},
      {"GROUPBY COUNT 0 0 a,b", "bad number"},
      {"LOAD", "usage:"},
      {"LOAD /nonexistent/nope.pcxsnap", "cannot open"},
  };
  for (const auto& [line, needle] : cases) {
    const std::string reply = Reply(server, line);
    EXPECT_EQ(reply.rfind("ERR ", 0), 0u) << line << " -> " << reply;
    EXPECT_NE(reply.find(needle), std::string::npos)
        << line << " -> " << reply;
    EXPECT_EQ(reply.find('\n'), reply.size() - 1) << "multi-line ERR";
  }

  // The session survives all of the above.
  EXPECT_EQ(Reply(server, "BOUND COUNT 0"),
            "RANGE lo=2 hi=9 defined=1 empty_possible=0\n");
}

TEST(ServerTest, ServeStreamHandlesCrlfAndQuit) {
  const std::string path = WriteSensorSnapshot(2);
  BoundServer server;
  std::istringstream in("LOAD " + path +
                        "\r\n"
                        "BOUND COUNT 0\r\n"
                        "# a comment line\r\n"
                        "\r\n"
                        "QUIT\r\n"
                        "BOUND COUNT 0\r\n");  // after QUIT: not reached
  std::ostringstream out;
  server.ServeStream(in, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("OK epoch=2"), std::string::npos) << text;
  EXPECT_NE(text.find("RANGE lo=2 hi=9"), std::string::npos) << text;
  EXPECT_NE(text.find("BYE"), std::string::npos);
  // Exactly one RANGE reply: the post-QUIT line was never processed.
  EXPECT_EQ(text.find("RANGE"), text.rfind("RANGE"));
}

TEST(ServerTest, HealthAnswersBeforeAndAfterLoad) {
  BoundServer server;

  // Pre-LOAD: queries fail FAILED_PRECONDITION but HEALTH answers —
  // "up but empty" must be observable without tripping an error.
  const std::string empty = Reply(server, "HEALTH");
  EXPECT_EQ(empty.rfind("HEALTH loaded=0 epoch=0 shards=0 pcs=0 attrs=0", 0),
            0u)
      << empty;
  EXPECT_NE(empty.find(" uptime_s="), std::string::npos);
  EXPECT_NE(empty.find(" requests="), std::string::npos);

  const std::string path = WriteSensorSnapshot(7);
  ASSERT_EQ(Reply(server, "LOAD " + path).rfind("OK ", 0), 0u);
  const std::string loaded = Reply(server, "HEALTH");
  EXPECT_EQ(loaded.rfind("HEALTH loaded=1 epoch=7 shards=2 pcs=2 attrs=3", 0),
            0u)
      << loaded;
  // HEALTH is not a reply-less no-op: it counts as a request itself.
  EXPECT_NE(loaded.find(" requests="), std::string::npos);
  EXPECT_EQ(loaded.find('\n'), loaded.size() - 1) << "one-line reply";
}

TEST(ServerTest, ServeStreamAnswersFinalLineWithoutNewline) {
  const std::string path = WriteSensorSnapshot(1);
  BoundServer server;
  ASSERT_EQ(Reply(server, "LOAD " + path).rfind("OK ", 0), 0u);

  // The stream ends without a trailing '\n' after the last command; the
  // stdio path must still answer it (the TCP session loop is asserted
  // to match in concurrent_serve_test — stdio/TCP parity).
  std::istringstream in("BOUND COUNT 0\nBOUND COUNT 0");
  std::ostringstream out;
  server.ServeStream(in, out);
  const std::string text = out.str();
  const std::string expected = "RANGE lo=2 hi=9 defined=1 empty_possible=0\n";
  EXPECT_EQ(text, expected + expected) << text;
}

TEST(ServerTest, PinnedSolverSurvivesConcurrentReload) {
  // A query pins the snapshot it started on: the pinned solver stays
  // valid (and answers at its own epoch) even after LOAD swapped in a
  // replacement — the epoch-pinning contract of the concurrent server.
  BoundServer server;
  const std::string v1 = WriteSensorSnapshot(1);
  ASSERT_EQ(Reply(server, "LOAD " + v1).rfind("OK epoch=1", 0), 0u);
  const std::shared_ptr<const ShardedBoundSolver> pinned = server.solver();
  ASSERT_NE(pinned, nullptr);

  const std::string v2 = WriteSensorSnapshot(2);
  ASSERT_EQ(Reply(server, "LOAD " + v2).rfind("OK epoch=2", 0), 0u);

  EXPECT_EQ(pinned->epoch(), 1u);
  const auto range = pinned->Bound(AggQuery::Count());
  ASSERT_TRUE(range.ok()) << range.status();
  EXPECT_EQ(range->hi, 9.0);
  EXPECT_EQ(server.solver()->epoch(), 2u);
}

TEST(ServerTest, ReloadBumpsEpoch) {
  BoundServer server;
  const std::string v1 = WriteSensorSnapshot(1);
  ASSERT_EQ(Reply(server, "LOAD " + v1).rfind("OK epoch=1", 0), 0u);
  const std::string v2 = WriteSensorSnapshot(9);
  ASSERT_EQ(Reply(server, "LOAD " + v2).rfind("OK epoch=9", 0), 0u);
  EXPECT_EQ(Reply(server, "STATS").rfind("STATS epoch=9", 0), 0u);
}

}  // namespace
}  // namespace pcx
