#include "engine/engine.h"

#include <gtest/gtest.h>

#include <fstream>
#include <memory>

#include "engine/local_backend.h"
#include "engine/mirror_backend.h"
#include "engine/sharded_backend.h"
#include "pc/serialization.h"
#include "serve/partitioner.h"
#include "serve/snapshot.h"

namespace pcx {
namespace {

/// Two disjoint day ranges on attribute 0 with prices on attribute 1.
PredicateConstraintSet SalesSet() {
  PredicateConstraintSet pcs;
  {
    Predicate day1(2);
    day1.AddInterval(0, Interval{0.0, 24.0, false, true});
    Box values(2);
    values.Constrain(1, Interval::Closed(1.0, 130.0));
    pcs.Add(PredicateConstraint(day1, values, {50, 100}));
  }
  {
    Predicate day2(2);
    day2.AddInterval(0, Interval{24.0, 48.0, false, true});
    Box values(2);
    values.Constrain(1, Interval::Closed(1.0, 150.0));
    pcs.Add(PredicateConstraint(day2, values, {50, 100}));
  }
  return pcs;
}

std::string WritePcSetFile(const PredicateConstraintSet& pcs,
                           const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << SerializePcSet(pcs);
  return path;
}

std::string WriteSnapshotFile(const PredicateConstraintSet& pcs,
                              size_t shards, uint64_t epoch,
                              const std::string& name) {
  const Partition partition =
      PartitionPcSet(pcs, {}, {shards, PartitionStrategy::kAttributeRange});
  const Snapshot snap = MakeSnapshot(pcs, {}, partition, epoch);
  const std::string path = testing::TempDir() + "/" + name;
  PCX_CHECK(WriteSnapshot(snap, path).ok());
  return path;
}

TEST(EngineTest, OpenLocalUriServesThePcSet) {
  const std::string path = WritePcSetFile(SalesSet(), "engine_local.pcset");
  const StatusOr<Engine> engine = Engine::Open("local:" + path);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_TRUE(engine->valid());
  EXPECT_EQ(engine->name(), "local");
  EXPECT_EQ(engine->num_attrs(), 2u);

  const auto count = engine->Bound(AggQuery::Count());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->lo, 100.0);
  EXPECT_EQ(count->hi, 200.0);

  const auto epoch = engine->Epoch();
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 0u);

  const auto stats = engine->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_pcs, 2u);
  EXPECT_EQ(stats->num_shards, 1u);
  EXPECT_EQ(stats->queries, 1u);
}

TEST(EngineTest, OpenSnapshotUriAdoptsAndRepartitions) {
  const std::string path =
      WriteSnapshotFile(SalesSet(), 1, 7, "engine_snap.pcxsnap");

  const StatusOr<Engine> stored = Engine::Open("snapshot:" + path);
  ASSERT_TRUE(stored.ok()) << stored.status();
  EXPECT_EQ(stored->name(), "sharded:1");
  ASSERT_TRUE(stored->Epoch().ok());
  EXPECT_EQ(*stored->Epoch(), 7u);

  const StatusOr<Engine> resharded =
      Engine::Open("snapshot:" + path + "?shards=2");
  ASSERT_TRUE(resharded.ok()) << resharded.status();
  EXPECT_EQ(resharded->name(), "sharded:2");
  // Repartitioning preserves the epoch: same set + same epoch ⇒ the
  // bit-identity guarantee still pairs it with the stored variant.
  EXPECT_EQ(*resharded->Epoch(), 7u);

  const auto a = stored->Bound(AggQuery::Sum(1));
  const auto b = resharded->Bound(AggQuery::Sum(1));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(BitIdenticalRanges(*a, *b));
}

TEST(EngineTest, OpenReportsTypedErrors) {
  // No scheme.
  auto no_scheme = Engine::Open("nope");
  ASSERT_FALSE(no_scheme.ok());
  EXPECT_EQ(no_scheme.status().code(), StatusCode::kInvalidArgument);
  // Unknown scheme.
  auto unknown = Engine::Open("warp:core");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  // Missing file -> NotFound, not a parse error.
  auto missing = Engine::Open("local:/nonexistent/nope.pcset");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // Bad URI parameter.
  const std::string path = WritePcSetFile(SalesSet(), "engine_err.pcset");
  auto bad_param = Engine::Open("local:" + path + "?frobnicate=1");
  ASSERT_FALSE(bad_param.ok());
  EXPECT_EQ(bad_param.status().code(), StatusCode::kInvalidArgument);
  // Out-of-range shard count.
  const std::string snap =
      WriteSnapshotFile(SalesSet(), 1, 1, "engine_err.pcxsnap");
  auto bad_shards = Engine::Open("snapshot:" + snap + "?shards=65");
  ASSERT_FALSE(bad_shards.ok());
  EXPECT_EQ(bad_shards.status().code(), StatusCode::kOutOfRange);
  // Nothing listening -> Unavailable.
  auto refused = Engine::Open("tcp:127.0.0.1:1");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  // Empty engine handles fail typed, not by crashing.
  const Engine empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_EQ(empty.Bound(AggQuery::Count()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(EngineTest, LocalUriIntParamSetsIntegerDomains) {
  const std::string path = WritePcSetFile(SalesSet(), "engine_int.pcset");
  const StatusOr<Engine> engine = Engine::Open("local:" + path + "?int=0");
  ASSERT_TRUE(engine.ok()) << engine.status();
  // A bad index is a typed error.
  auto bad = Engine::Open("local:" + path + "?int=9");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryBuilderTest, NamedColumnsResolveAndRun) {
  Engine engine = Engine::Local(SalesSet());
  QueryBuilder q({"utc", "price"});
  q.Sum("price").Where("utc", 0.0, 23.0);

  const StatusOr<AggQuery> built = q.Build(engine.num_attrs());
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_EQ(built->agg, AggFunc::kSum);
  EXPECT_EQ(built->attr, 1u);
  ASSERT_TRUE(built->where.has_value());

  // The builder-run answer matches the hand-built query's.
  const auto via_builder = engine.Bound(q);
  Predicate where(2);
  where.AddRange(0, 0.0, 23.0);
  const auto direct = engine.Bound(AggQuery::Sum(1, where));
  ASSERT_TRUE(via_builder.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(BitIdenticalRanges(*via_builder, *direct));
}

TEST(QueryBuilderTest, TypedErrorsForBadReferences) {
  Engine engine = Engine::Local(SalesSet());

  // Unknown column name -> NotFound.
  QueryBuilder unknown({"utc", "price"});
  unknown.Sum("prize");
  EXPECT_EQ(unknown.BoundOn(*engine.backend()).status().code(),
            StatusCode::kNotFound);

  // Index past the engine width -> OutOfRange.
  QueryBuilder wide;
  wide.Sum(9);
  EXPECT_EQ(wide.BoundOn(*engine.backend()).status().code(),
            StatusCode::kOutOfRange);

  // Name table contradicting the engine width -> InvalidArgument.
  QueryBuilder mismatched({"a", "b", "c"});
  mismatched.Count();
  EXPECT_EQ(mismatched.Build(engine.num_attrs()).status().code(),
            StatusCode::kInvalidArgument);

  // Grouped builder refuses the scalar entry point.
  QueryBuilder grouped({"utc", "price"});
  grouped.Count().GroupBy("utc", {5.0, 30.0});
  EXPECT_EQ(grouped.BoundOn(*engine.backend()).status().code(),
            StatusCode::kFailedPrecondition);
  // ...and runs through the grouped one.
  const auto groups = grouped.GroupsOn(*engine.backend());
  ASSERT_TRUE(groups.ok()) << groups.status();
  EXPECT_EQ(groups->size(), 2u);
}

TEST(QueryBuilderTest, ConditionsConjoinAndEqualsPins) {
  Engine engine = Engine::Local(SalesSet());
  QueryBuilder q;
  q.Count().Where(0, 0.0, 100.0).WhereEquals(0, 30.0);
  const auto range = engine.Bound(q);
  ASSERT_TRUE(range.ok());
  // Pinned to hour 30: only the day-2 constraint (rows 50..100) matches,
  // and all of its rows could sit elsewhere in [24, 48).
  EXPECT_EQ(range->lo, 0.0);
  EXPECT_EQ(range->hi, 100.0);
}

/// A replica that answers like its delegate but nudges every hi — the
/// "corrupted replica" MirrorBackend exists to catch.
class DivergentBackend : public BoundBackend {
 public:
  explicit DivergentBackend(std::shared_ptr<BoundBackend> delegate)
      : delegate_(std::move(delegate)) {}
  std::string name() const override { return "divergent"; }
  size_t num_attrs() const override { return delegate_->num_attrs(); }
  StatusOr<ResultRange> Bound(const AggQuery& query) override {
    StatusOr<ResultRange> r = delegate_->Bound(query);
    if (r.ok()) r->hi += 1.0;
    return r;
  }
  StatusOr<std::vector<GroupRange>> BoundGroupBy(
      const AggQuery& query, size_t group_attr,
      const std::vector<double>& values) override {
    StatusOr<std::vector<GroupRange>> groups =
        delegate_->BoundGroupBy(query, group_attr, values);
    if (groups.ok() && !groups->empty()) groups->front().range.hi += 1.0;
    return groups;
  }
  StatusOr<EngineStats> Stats() override { return delegate_->Stats(); }
  StatusOr<uint64_t> Epoch() override { return delegate_->Epoch(); }

 private:
  std::shared_ptr<BoundBackend> delegate_;
};

TEST(MirrorBackendTest, AgreeingReplicasPassThrough) {
  auto a = std::make_shared<LocalBackend>(SalesSet(),
                                          std::vector<AttrDomain>{});
  auto b = std::make_shared<ShardedBackend>(SalesSet(),
                                            std::vector<AttrDomain>{});
  MirrorBackend mirror({a, b});
  EXPECT_EQ(mirror.num_replicas(), 2u);

  const auto range = mirror.Bound(AggQuery::Count());
  ASSERT_TRUE(range.ok()) << range.status();
  EXPECT_EQ(range->lo, 100.0);
  EXPECT_EQ(range->hi, 200.0);

  // Matching typed errors pass through as that code, not divergence.
  const auto bad = mirror.Bound(AggQuery::Sum(9));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  const auto epoch = mirror.Epoch();
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 0u);
}

TEST(MirrorBackendTest, DetectsInjectedDivergentReplica) {
  auto good = std::make_shared<LocalBackend>(SalesSet(),
                                             std::vector<AttrDomain>{});
  auto divergent = std::make_shared<DivergentBackend>(
      std::make_shared<LocalBackend>(SalesSet(), std::vector<AttrDomain>{}));
  MirrorBackend mirror({good, divergent});

  const auto range = mirror.Bound(AggQuery::Count());
  ASSERT_FALSE(range.ok());
  EXPECT_EQ(range.status().code(), StatusCode::kDivergence);
  // The report names both answers.
  EXPECT_NE(range.status().message().find("replica 1"), std::string::npos)
      << range.status();

  // The batch path flags each diverged element.
  const std::vector<AggQuery> queries = {AggQuery::Count(), AggQuery::Sum(9)};
  const auto batch = mirror.BoundBatch(queries);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].status().code(), StatusCode::kDivergence);
  // Both replicas fail identically on the bad query: no divergence.
  EXPECT_EQ(batch[1].status().code(), StatusCode::kInvalidArgument);

  // Group-by divergence is detected too.
  const auto groups = mirror.BoundGroupBy(AggQuery::Count(), 0, {5.0, 30.0});
  ASSERT_FALSE(groups.ok());
  EXPECT_EQ(groups.status().code(), StatusCode::kDivergence);
}

TEST(MirrorBackendTest, EpochDisagreementIsDivergence) {
  LocalBackend::Options epoch1;
  epoch1.epoch = 1;
  LocalBackend::Options epoch2;
  epoch2.epoch = 2;
  auto a = std::make_shared<LocalBackend>(SalesSet(),
                                          std::vector<AttrDomain>{}, epoch1);
  auto b = std::make_shared<LocalBackend>(SalesSet(),
                                          std::vector<AttrDomain>{}, epoch2);
  MirrorBackend mirror({a, b});
  const auto epoch = mirror.Epoch();
  ASSERT_FALSE(epoch.ok());
  EXPECT_EQ(epoch.status().code(), StatusCode::kDivergence);
}

TEST(EngineTest, HealthOnInProcessBackendsDerivesFromStats) {
  const std::string path = WritePcSetFile(SalesSet(), "engine_health.pcset");
  const StatusOr<Engine> engine = Engine::Open("local:" + path);
  ASSERT_TRUE(engine.ok()) << engine.status();

  const auto health = engine->Health();
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_TRUE(health->loaded);
  EXPECT_EQ(health->epoch, 0u);
  EXPECT_EQ(health->num_shards, 1u);
  EXPECT_EQ(health->num_pcs, 2u);
  EXPECT_EQ(health->uptime_seconds, 0u);  // no server process behind it
}

TEST(MirrorBackendTest, HealthToleratesBoundedEpochSkew) {
  LocalBackend::Options epoch1;
  epoch1.epoch = 1;
  LocalBackend::Options epoch2;
  epoch2.epoch = 2;
  auto a = std::make_shared<LocalBackend>(SalesSet(),
                                          std::vector<AttrDomain>{}, epoch1);
  auto b = std::make_shared<LocalBackend>(SalesSet(),
                                          std::vector<AttrDomain>{}, epoch2);

  // Strict mirror: the one-epoch spread of a rolling reload is a
  // health failure...
  MirrorBackend strict({a, b});
  const auto strict_health = strict.Health();
  ASSERT_FALSE(strict_health.ok());
  EXPECT_EQ(strict_health.status().code(), StatusCode::kDivergence);

  // ...but with max_epoch_skew=1 the same fleet is healthy (query
  // answers remain strictly epoch-checked — only Health relaxes).
  MirrorBackend::Options tolerant;
  tolerant.max_epoch_skew = 1;
  MirrorBackend relaxed({a, b}, tolerant);
  const auto relaxed_health = relaxed.Health();
  ASSERT_TRUE(relaxed_health.ok()) << relaxed_health.status();
  EXPECT_TRUE(relaxed_health->loaded);
  EXPECT_EQ(relaxed_health->epoch, 1u);  // the primary's view
  const auto epoch = relaxed.Epoch();
  ASSERT_FALSE(epoch.ok());
  EXPECT_EQ(epoch.status().code(), StatusCode::kDivergence);
}

TEST(EngineTest, MirrorUriOpensAllReplicas) {
  const std::string pcset = WritePcSetFile(SalesSet(), "engine_mir.pcset");
  const std::string snap =
      WriteSnapshotFile(SalesSet(), 2, 0, "engine_mir.pcxsnap");
  const StatusOr<Engine> engine =
      Engine::Open("mirror:local:" + pcset + "|snapshot:" + snap);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ(engine->name(), "mirror[local, sharded:2]");

  const auto range = engine->Bound(AggQuery::Count());
  ASSERT_TRUE(range.ok()) << range.status();
  EXPECT_EQ(range->lo, 100.0);
  EXPECT_EQ(range->hi, 200.0);

  // A replica that fails to open fails the whole mirror, typed.
  auto bad = Engine::Open("mirror:local:" + pcset + "|local:/nope.pcset");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(StatusTest, ParseStatusCodeRoundTrips) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kResourceExhausted, StatusCode::kInfeasible,
        StatusCode::kUnbounded, StatusCode::kUnavailable,
        StatusCode::kProtocolError, StatusCode::kDivergence}) {
    StatusCode parsed;
    ASSERT_TRUE(ParseStatusCode(StatusCodeToString(c), &parsed))
        << StatusCodeToString(c);
    EXPECT_EQ(parsed, c);
  }
  StatusCode ignored;
  EXPECT_FALSE(ParseStatusCode("FROBNICATED", &ignored));
  EXPECT_FALSE(ParseStatusCode("", &ignored));
}

}  // namespace
}  // namespace pcx
