#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "pc/bound_solver.h"
#include "pc/group_by.h"

namespace pcx {
namespace {

PredicateConstraint MakePc(double p_lo, double p_hi, double v_lo, double v_hi,
                           double k_lo, double k_hi) {
  Predicate pred(2);
  pred.AddRange(0, p_lo, p_hi);
  Box values(2);
  values.Constrain(1, Interval::Closed(v_lo, v_hi));
  return PredicateConstraint(pred, values, {k_lo, k_hi});
}

/// Overlapping PC set: exercises decomposition + MILP, not the greedy
/// fast path.
PredicateConstraintSet OverlappingPcs() {
  PredicateConstraintSet pcs;
  pcs.Add(MakePc(0, 10, 1, 5, 0, 7));
  pcs.Add(MakePc(5, 15, 2, 8, 1, 6));
  pcs.Add(MakePc(8, 25, 0, 3, 0, 9));
  pcs.Add(MakePc(-5, 6, 1, 2, 0, 4));
  return pcs;
}

/// Pairwise-disjoint set: exercises the greedy path.
PredicateConstraintSet DisjointPcs() {
  PredicateConstraintSet pcs;
  for (int i = 0; i < 12; ++i) {
    pcs.Add(MakePc(10.0 * i, 10.0 * i + 9.0, 0.0, 2.0 + i, i % 3 == 0 ? 1 : 0,
                   5 + i));
  }
  return pcs;
}

std::vector<AggQuery> AllAggQueries() {
  std::vector<AggQuery> queries;
  Rng rng(7);
  for (int rep = 0; rep < 4; ++rep) {
    const double lo = rng.Uniform(-5.0, 60.0);
    Predicate where(2);
    where.AddRange(0, lo, lo + rng.Uniform(5.0, 40.0));
    for (AggFunc agg : {AggFunc::kCount, AggFunc::kSum, AggFunc::kAvg,
                        AggFunc::kMin, AggFunc::kMax}) {
      queries.push_back(AggQuery{agg, 1, where});
      queries.push_back(AggQuery{agg, 1, std::nullopt});
    }
  }
  return queries;
}

/// Bitwise equality — NaN-free here, but inf and signed zero must match
/// exactly, hence memcmp instead of ==.
bool BitIdentical(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void ExpectBatchMatchesSequential(const PcBoundSolver& solver,
                                  const std::vector<AggQuery>& queries) {
  std::vector<StatusOr<ResultRange>> sequential;
  sequential.reserve(queries.size());
  for (const AggQuery& q : queries) sequential.push_back(solver.Bound(q));

  for (size_t threads : {1, 4, 8}) {
    std::vector<PcBoundSolver::SolveStats> stats;
    const auto batch = solver.BoundBatch(queries, threads, &stats);
    ASSERT_EQ(batch.size(), queries.size());
    ASSERT_EQ(stats.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(batch[i].ok(), sequential[i].ok())
          << "threads " << threads << " query " << i;
      if (!batch[i].ok()) {
        EXPECT_EQ(batch[i].status().code(), sequential[i].status().code());
        continue;
      }
      EXPECT_TRUE(BitIdentical(batch[i]->lo, sequential[i]->lo))
          << "threads " << threads << " query " << i << ": " << batch[i]->lo
          << " vs " << sequential[i]->lo;
      EXPECT_TRUE(BitIdentical(batch[i]->hi, sequential[i]->hi))
          << "threads " << threads << " query " << i << ": " << batch[i]->hi
          << " vs " << sequential[i]->hi;
      EXPECT_EQ(batch[i]->defined, sequential[i]->defined);
      EXPECT_EQ(batch[i]->empty_instance_possible,
                sequential[i]->empty_instance_possible);
    }
  }
}

TEST(BoundBatchTest, BitIdenticalToSequentialOnOverlappingSet) {
  PcBoundSolver solver(OverlappingPcs());
  ExpectBatchMatchesSequential(solver, AllAggQueries());
}

TEST(BoundBatchTest, BitIdenticalToSequentialOnDisjointSet) {
  PcBoundSolver solver(DisjointPcs());
  ExpectBatchMatchesSequential(solver, AllAggQueries());
}

TEST(BoundBatchTest, EmptyBatch) {
  PcBoundSolver solver(OverlappingPcs());
  EXPECT_TRUE(solver.BoundBatch({}).empty());
}

TEST(BoundBatchTest, AggregateStatsSumPerQueryStats) {
  PcBoundSolver solver(OverlappingPcs());
  const auto queries = AllAggQueries();
  std::vector<PcBoundSolver::SolveStats> stats;
  solver.BoundBatch(queries, 4, &stats);
  PcBoundSolver::SolveStats total;
  for (const auto& s : stats) total += s;
  EXPECT_EQ(solver.last_stats().sat_calls, total.sat_calls);
  EXPECT_EQ(solver.last_stats().lp_solves, total.lp_solves);
  EXPECT_EQ(solver.last_stats().lp_pivots, total.lp_pivots);
  EXPECT_EQ(solver.last_stats().milp_nodes, total.milp_nodes);
  EXPECT_GT(total.lp_solves, 0u);
}

TEST(BoundBatchTest, GroupByMatchesPerGroupBound) {
  PcBoundSolver solver(OverlappingPcs());
  const AggQuery query = AggQuery::Sum(1);
  const std::vector<double> groups = {1.0, 3.0, 7.0, 12.0};
  const auto batched = BoundGroupBy(solver, query, 0, groups, /*num_threads=*/4);
  ASSERT_TRUE(batched.ok());
  ASSERT_EQ(batched->size(), groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    AggQuery per_group = query;
    Predicate where(2);
    where.AddEquals(0, groups[g]);
    per_group.where = where;
    const auto single = solver.Bound(per_group);
    ASSERT_TRUE(single.ok());
    EXPECT_TRUE(BitIdentical((*batched)[g].range.lo, single->lo));
    EXPECT_TRUE(BitIdentical((*batched)[g].range.hi, single->hi));
  }
}

}  // namespace
}  // namespace pcx
