#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/random.h"
#include "pc/cell_decomposition.h"

namespace pcx {
namespace {

PredicateConstraint MakePc1D(double lo, double hi, double k_hi = 10.0) {
  Predicate pred(1);
  pred.AddRange(0, lo, hi);
  Box values(1);
  return PredicateConstraint(pred, values, {0.0, k_hi});
}

PredicateConstraint MakePc2D(double x_lo, double x_hi, double y_lo,
                             double y_hi) {
  Predicate pred(2);
  pred.AddRange(0, x_lo, x_hi);
  pred.AddRange(1, y_lo, y_hi);
  Box values(2);
  return PredicateConstraint(pred, values, {0.0, 10.0});
}

/// Canonical form of a decomposition for cross-strategy comparison:
/// the sorted set of covering index lists (CoveringSet iterates in
/// increasing index order).
std::set<std::vector<size_t>> CoveringSets(const DecompositionResult& r) {
  std::set<std::vector<size_t>> out;
  for (const Cell& c : r.cells) {
    out.insert(c.covering.ToIndices());
  }
  return out;
}

TEST(CellDecompositionTest, DisjointPredicatesOneCellEach) {
  PredicateConstraintSet pcs;
  pcs.Add(MakePc1D(0, 10));
  pcs.Add(MakePc1D(20, 30));
  const auto result = DecomposeCells(pcs);
  EXPECT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(CoveringSets(result),
            (std::set<std::vector<size_t>>{{0}, {1}}));
}

TEST(CellDecompositionTest, PaperSection44Overlap) {
  // t1: [0, 24), t2: [0, 48): cells are t1∧t2 and ¬t1∧t2; t1∧¬t2 is
  // unsatisfiable (paper §4.4's c3).
  PredicateConstraintSet pcs;
  pcs.Add(MakePc1D(0, 23.999));
  pcs.Add(MakePc1D(0, 47.999));
  const auto result = DecomposeCells(pcs);
  EXPECT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(CoveringSets(result),
            (std::set<std::vector<size_t>>{{0, 1}, {1}}));
}

TEST(CellDecompositionTest, Figure2StyleOverlap) {
  // Two overlapping intervals produce 3 satisfiable cells.
  PredicateConstraintSet pcs;
  pcs.Add(MakePc1D(0, 20));
  pcs.Add(MakePc1D(10, 30));
  const auto result = DecomposeCells(pcs);
  EXPECT_EQ(result.cells.size(), 3u);
  EXPECT_EQ(CoveringSets(result),
            (std::set<std::vector<size_t>>{{0}, {0, 1}, {1}}));
}

TEST(CellDecompositionTest, ThreeWayOverlapSatisfiableCells) {
  // Three mutually overlapping 2-D boxes around a common core. Of the 7
  // covered sign assignments, ¬A∧B∧C is unsatisfiable (B∧C lies inside
  // A), leaving 6 cells — mirroring the paper's Fig. 2 where only 5 of
  // 7 subsets are satisfiable.
  PredicateConstraintSet pcs;
  pcs.Add(MakePc2D(0, 10, 0, 10));   // A
  pcs.Add(MakePc2D(5, 15, 0, 10));   // B
  pcs.Add(MakePc2D(0, 10, 5, 15));   // C
  const auto result = DecomposeCells(pcs);
  EXPECT_EQ(result.cells.size(), 6u);
  EXPECT_FALSE(CoveringSets(result).count({1, 2}));  // ¬A∧B∧C pruned
}

TEST(CellDecompositionTest, NaiveAndDfsAgree) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    PredicateConstraintSet pcs;
    const size_t n = 2 + static_cast<size_t>(rng.UniformInt(0, 3));
    for (size_t i = 0; i < n; ++i) {
      double lo = std::floor(rng.Uniform(0.0, 20.0));
      double hi = std::floor(rng.Uniform(0.0, 20.0));
      if (lo > hi) std::swap(lo, hi);
      pcs.Add(MakePc1D(lo, hi + 1.0));
    }
    DecompositionOptions naive;
    naive.use_dfs = false;
    DecompositionOptions dfs;  // defaults: DFS + rewriting
    const auto a = DecomposeCells(pcs, std::nullopt, naive);
    const auto b = DecomposeCells(pcs, std::nullopt, dfs);
    EXPECT_EQ(CoveringSets(a), CoveringSets(b)) << "trial " << trial;
  }
}

TEST(CellDecompositionTest, DfsWithAndWithoutRewritingAgree) {
  Rng rng(1234);
  for (int trial = 0; trial < 10; ++trial) {
    PredicateConstraintSet pcs;
    for (int i = 0; i < 5; ++i) {
      double lo = std::floor(rng.Uniform(0.0, 30.0));
      pcs.Add(MakePc1D(lo, lo + rng.Uniform(3.0, 15.0)));
    }
    DecompositionOptions plain;
    plain.use_rewriting = false;
    DecompositionOptions rewrite;
    rewrite.use_rewriting = true;
    const auto a = DecomposeCells(pcs, std::nullopt, plain);
    const auto b = DecomposeCells(pcs, std::nullopt, rewrite);
    EXPECT_EQ(CoveringSets(a), CoveringSets(b));
    // Rewriting must never use more solver calls.
    EXPECT_LE(b.sat_calls, a.sat_calls + 1);
  }
}

TEST(CellDecompositionTest, DfsPrunesVersusNaive) {
  // Heavily overlapping PCs: DFS + rewriting should evaluate far fewer
  // expressions than the naive 2^n enumeration (the Fig. 7 claim).
  Rng rng(7);
  PredicateConstraintSet pcs;
  const size_t n = 10;
  for (size_t i = 0; i < n; ++i) {
    const double lo = rng.Uniform(0.0, 10.0);
    pcs.Add(MakePc1D(lo, lo + rng.Uniform(1.0, 4.0)));
  }
  DecompositionOptions naive;
  naive.use_dfs = false;
  const auto a = DecomposeCells(pcs, std::nullopt, naive);
  const auto b = DecomposeCells(pcs);
  EXPECT_EQ(a.nodes_visited, (uint64_t{1} << n) - 1);
  EXPECT_LT(b.sat_calls, a.nodes_visited / 4);
  EXPECT_EQ(CoveringSets(a), CoveringSets(b));
}

TEST(CellDecompositionTest, PushdownRestrictsCells) {
  PredicateConstraintSet pcs;
  pcs.Add(MakePc1D(0, 10));
  pcs.Add(MakePc1D(20, 30));
  Predicate query(1);
  query.AddRange(0, 0.0, 5.0);
  const auto result = DecomposeCells(pcs, query);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].covering.ToIndices(), (std::vector<size_t>{0}));
  // The emitted positive region is clipped to the query.
  EXPECT_LE(result.cells[0].positive.dim(0).hi, 5.0);
}

TEST(CellDecompositionTest, EarlyStoppingAdmitsSupersetOfCells) {
  Rng rng(42);
  PredicateConstraintSet pcs;
  for (int i = 0; i < 6; ++i) {
    const double lo = rng.Uniform(0.0, 10.0);
    pcs.Add(MakePc1D(lo, lo + 3.0));
  }
  DecompositionOptions exact;
  DecompositionOptions approx;
  approx.early_stop_depth = 2;
  const auto a = DecomposeCells(pcs, std::nullopt, exact);
  const auto b = DecomposeCells(pcs, std::nullopt, approx);
  // Early stopping may only add (unverified) cells, never remove one.
  const auto exact_sets = CoveringSets(a);
  const auto approx_sets = CoveringSets(b);
  for (const auto& cell : exact_sets) {
    EXPECT_TRUE(approx_sets.count(cell))
        << "early stopping lost a real cell";
  }
  EXPECT_GE(approx_sets.size(), exact_sets.size());
  EXPECT_LE(b.sat_calls, a.sat_calls);
  // Unverified cells are flagged.
  bool any_unverified = false;
  for (const Cell& c : b.cells) any_unverified |= !c.verified;
  EXPECT_TRUE(any_unverified);
}

TEST(CellDecompositionTest, UniversalCatchAllCoversEveryCell) {
  PredicateConstraintSet pcs;
  pcs.Add(MakePc1D(0, 10));
  Predicate everything(1);
  Box values(1);
  pcs.Add(PredicateConstraint(everything, values, {0.0, 100.0}));
  const auto result = DecomposeCells(pcs);
  // Cells: inside [0,10] covered by {0, 1}; outside covered by {1}.
  ASSERT_EQ(result.cells.size(), 2u);
  for (const Cell& c : result.cells) {
    EXPECT_TRUE(c.covering.Test(1));
  }
}

TEST(CellDecompositionTest, ManyIrrelevantPcsStayCheap) {
  // 40 disjoint PCs + pushdown to a region touching only one of them:
  // the geometric fast path must keep solver calls near-linear.
  PredicateConstraintSet pcs;
  for (int i = 0; i < 40; ++i) {
    pcs.Add(MakePc1D(10.0 * i, 10.0 * i + 9.0));
  }
  Predicate query(1);
  query.AddRange(0, 12.0, 15.0);
  const auto result = DecomposeCells(pcs, query);
  EXPECT_EQ(result.cells.size(), 1u);
  EXPECT_LE(result.sat_calls, 10u);
}

TEST(CellDecompositionTest, EmptySetYieldsNothing) {
  PredicateConstraintSet pcs;
  const auto result = DecomposeCells(pcs);
  EXPECT_TRUE(result.cells.empty());
}

TEST(CellDecompositionTest, IntegerDomainsPruneFractionalCells) {
  // Over integers, the region between [0,3] and [4,10] predicates: the
  // cell ¬A ∧ B with B=[0,10], A=[0,3] leaves [4,10] etc. Check a gap
  // cell (3, 4) is pruned under integer domains.
  PredicateConstraintSet pcs;
  pcs.Add(MakePc1D(0, 3));
  pcs.Add(MakePc1D(0, 10));
  const auto cont = DecomposeCells(pcs);
  const auto integral =
      DecomposeCells(pcs, std::nullopt, {}, {AttrDomain::kInteger});
  // Both have cells {0,1} and {1}; no difference in count here, but the
  // integral decomposition must not have more.
  EXPECT_LE(integral.cells.size(), cont.cells.size());
}

}  // namespace
}  // namespace pcx
