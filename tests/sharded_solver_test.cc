#include "serve/sharded_solver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "baselines/pc_estimator.h"
#include "common/random.h"
#include "eval/harness.h"
#include "pc/group_by.h"
#include "workload/datasets.h"
#include "workload/missing.h"
#include "workload/pc_gen.h"
#include "workload/query_gen.h"

namespace pcx {
namespace {

bool BitIdentical(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Randomized PC set over 2 attributes: `clusters` overlap components,
/// each a cluster of 1..4 mutually overlapping boxes placed far from
/// the other clusters, with value ranges on attribute 1 and occasional
/// mandatory frequencies. `integral` snaps every endpoint to integers
/// (for scatter-gather exactness tests).
PredicateConstraintSet RandomSet(Rng& rng, size_t clusters, bool integral) {
  PredicateConstraintSet pcs;
  for (size_t c = 0; c < clusters; ++c) {
    const double base = 1000.0 * static_cast<double>(c);
    const size_t members = static_cast<size_t>(rng.UniformInt(1, 4));
    for (size_t m = 0; m < members; ++m) {
      double p_lo = base + rng.Uniform(0.0, 40.0);
      double p_hi = p_lo + rng.Uniform(10.0, 60.0);  // wide: overlaps
      double v_lo = rng.Uniform(-20.0, 10.0);
      double v_hi = v_lo + rng.Uniform(0.0, 30.0);
      double k_lo = rng.UniformInt(0, 2) == 0
                        ? static_cast<double>(rng.UniformInt(1, 3))
                        : 0.0;
      double k_hi = k_lo + static_cast<double>(rng.UniformInt(1, 8));
      if (integral) {
        p_lo = std::floor(p_lo);
        p_hi = std::floor(p_hi) + 1.0;
        v_lo = std::floor(v_lo);
        v_hi = std::floor(v_hi) + 1.0;
      }
      Predicate pred(2);
      pred.AddRange(0, p_lo, p_hi);
      Box values(2);
      values.Constrain(1, Interval::Closed(v_lo, v_hi));
      pcs.Add(PredicateConstraint(pred, values, {k_lo, k_hi}));
    }
  }
  return pcs;
}

/// Query panel: every aggregate x {no WHERE, narrow single-cluster
/// WHERE, wide multi-cluster WHERE, WHERE outside every predicate}.
std::vector<AggQuery> QueryPanel(size_t clusters, Rng& rng) {
  std::vector<AggQuery> queries;
  std::vector<std::optional<Predicate>> wheres;
  wheres.push_back(std::nullopt);
  {
    const double base = 1000.0 * static_cast<double>(rng.UniformInt(
                                     0, static_cast<int64_t>(clusters) - 1));
    Predicate narrow(2);
    narrow.AddRange(0, base, base + rng.Uniform(20.0, 80.0));
    wheres.push_back(narrow);
  }
  {
    Predicate wide(2);
    wide.AddRange(0, 0.0, 1000.0 * static_cast<double>(clusters));
    wheres.push_back(wide);
  }
  {
    Predicate outside(2);
    outside.AddRange(0, -500.0, -400.0);
    wheres.push_back(outside);
  }
  for (const auto& where : wheres) {
    for (AggFunc agg : {AggFunc::kCount, AggFunc::kSum, AggFunc::kAvg,
                        AggFunc::kMin, AggFunc::kMax}) {
      queries.push_back(AggQuery{agg, 1, where});
    }
  }
  return queries;
}

void ExpectSameAnswer(const StatusOr<ResultRange>& expected,
                      const StatusOr<ResultRange>& actual,
                      const std::string& context) {
  ASSERT_EQ(expected.ok(), actual.ok())
      << context << ": " << (expected.ok() ? actual : expected).status().ToString();
  if (!expected.ok()) {
    EXPECT_EQ(expected.status().code(), actual.status().code()) << context;
    return;
  }
  EXPECT_TRUE(BitIdentical(expected->lo, actual->lo))
      << context << ": lo " << expected->lo << " vs " << actual->lo;
  EXPECT_TRUE(BitIdentical(expected->hi, actual->hi))
      << context << ": hi " << expected->hi << " vs " << actual->hi;
  EXPECT_EQ(expected->defined, actual->defined) << context;
  EXPECT_EQ(expected->empty_instance_possible,
            actual->empty_instance_possible)
      << context;
}

TEST(ShardedSolverTest, BitIdenticalToUnshardedOnRandomSets) {
  Rng rng(1234);
  for (int trial = 0; trial < 6; ++trial) {
    const size_t clusters = static_cast<size_t>(rng.UniformInt(2, 4));
    const PredicateConstraintSet pcs =
        RandomSet(rng, clusters, /*integral=*/trial % 2 == 0);
    const PcBoundSolver reference(pcs, {});
    const auto queries = QueryPanel(clusters, rng);

    for (size_t k : {1u, 2u, 3u, 8u}) {
      for (PartitionStrategy strategy : {PartitionStrategy::kRoundRobin,
                                         PartitionStrategy::kAttributeRange}) {
        ShardedBoundSolver::Options opts;
        opts.partition = {k, strategy};
        const ShardedBoundSolver sharded(pcs, {}, opts);
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          const std::string context =
              "trial " + std::to_string(trial) + " k=" + std::to_string(k) +
              " strategy=" + std::to_string(static_cast<int>(strategy)) +
              " query " + std::to_string(qi);
          ExpectSameAnswer(reference.Bound(queries[qi]),
                           sharded.Bound(queries[qi]), context);
        }
      }
    }
  }
}

TEST(ShardedSolverTest, BoundBatchMatchesUnshardedSequential) {
  Rng rng(99);
  const PredicateConstraintSet pcs = RandomSet(rng, 4, /*integral=*/false);
  const PcBoundSolver reference(pcs, {});
  const auto queries = QueryPanel(4, rng);

  ShardedBoundSolver::Options opts;
  opts.partition = {4, PartitionStrategy::kAttributeRange};
  for (size_t threads : {1u, 4u}) {
    opts.num_threads = threads;
    const ShardedBoundSolver sharded(pcs, {}, opts);
    std::vector<PcBoundSolver::SolveStats> stats;
    const auto batch = sharded.BoundBatch(queries, &stats);
    ASSERT_EQ(batch.size(), queries.size());
    ASSERT_EQ(stats.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectSameAnswer(reference.Bound(queries[i]), batch[i],
                       "threads=" + std::to_string(threads) + " query " +
                           std::to_string(i));
    }
    const auto serve = sharded.stats();
    EXPECT_EQ(serve.queries, queries.size());
  }
}

TEST(ShardedSolverTest, GroupByMatchesUnsharded) {
  Rng rng(512);
  const PredicateConstraintSet pcs = RandomSet(rng, 3, /*integral=*/true);
  const PcBoundSolver reference(pcs, {});
  ShardedBoundSolver::Options opts;
  opts.partition = {3, PartitionStrategy::kAttributeRange};
  const ShardedBoundSolver sharded(pcs, {}, opts);

  // Group on the predicate attribute: values hit different clusters.
  std::vector<double> groups;
  for (size_t c = 0; c < 3; ++c) {
    groups.push_back(1000.0 * static_cast<double>(c) + 10.0);
    groups.push_back(1000.0 * static_cast<double>(c) + 30.0);
  }
  for (AggFunc agg : {AggFunc::kCount, AggFunc::kSum, AggFunc::kMax}) {
    const AggQuery q{agg, 1, std::nullopt};
    const auto expected = BoundGroupBy(reference, q, 0, groups, 1);
    const auto actual = sharded.BoundGroupBy(q, 0, groups);
    ASSERT_EQ(expected.ok(), actual.ok());
    if (!expected.ok()) continue;
    ASSERT_EQ(expected->size(), actual->size());
    for (size_t g = 0; g < expected->size(); ++g) {
      EXPECT_EQ((*expected)[g].group_value, (*actual)[g].group_value);
      ExpectSameAnswer((*expected)[g].range, (*actual)[g].range,
                       "group " + std::to_string(g));
    }
  }

  // Error parity.
  const AggQuery q{AggFunc::kCount, 0, std::nullopt};
  const auto bad_expected = BoundGroupBy(reference, q, 99, groups, 1);
  const auto bad_actual = sharded.BoundGroupBy(q, 99, groups);
  ASSERT_FALSE(bad_expected.ok());
  ASSERT_FALSE(bad_actual.ok());
  EXPECT_EQ(bad_expected.status().code(), bad_actual.status().code());
}

TEST(ShardedSolverTest, ScatterGatherExactOnIntegralDisjointSets) {
  // Pairwise-disjoint integer-valued set: per-shard greedy sums are
  // exact integer arithmetic, so even the re-associated scatter combine
  // is bit-identical to the unsharded answer.
  PredicateConstraintSet pcs;
  for (int i = 0; i < 12; ++i) {
    Predicate pred(2);
    pred.AddRange(0, 100.0 * i, 100.0 * i + 50.0);
    Box values(2);
    values.Constrain(1, Interval::Closed(-5.0 + i, 5.0 + 2.0 * i));
    const double k_lo = i % 3 == 0 ? 2.0 : 0.0;
    pcs.Add(PredicateConstraint(pred, values,
                                {k_lo, k_lo + 4.0 + (i % 5)}));
  }
  const PcBoundSolver reference(pcs, {});

  ShardedBoundSolver::Options opts;
  opts.partition = {4, PartitionStrategy::kAttributeRange};
  opts.scatter_gather = true;
  const ShardedBoundSolver sharded(pcs, {}, opts);

  Predicate wide(2);
  wide.AddRange(0, 0.0, 1200.0);  // spans all shards
  Predicate partial(2);
  partial.AddRange(0, 120.0, 790.0);  // cuts across several shards
  for (const Predicate& where : {wide, partial}) {
    for (AggFunc agg :
         {AggFunc::kCount, AggFunc::kSum, AggFunc::kMin, AggFunc::kMax}) {
      const AggQuery q{agg, 1, where};
      ExpectSameAnswer(reference.Bound(q), sharded.Bound(q),
                       "scatter agg " + std::to_string(static_cast<int>(agg)));
    }
  }
  EXPECT_GT(sharded.stats().scatter_queries, 0u);

  // AVG does not decompose: it must take the exact union route and
  // still agree bitwise.
  const AggQuery avg{AggFunc::kAvg, 1, wide};
  ExpectSameAnswer(reference.Bound(avg), sharded.Bound(avg), "scatter avg");
}

TEST(ShardedSolverTest, ScatterGatherSoundOnContinuousSets) {
  // With arbitrary double endpoints the combine may differ in the last
  // ulps from the unsharded answer; it must still agree to tolerance.
  Rng rng(77);
  const PredicateConstraintSet pcs = RandomSet(rng, 4, /*integral=*/false);
  const PcBoundSolver reference(pcs, {});
  ShardedBoundSolver::Options opts;
  opts.partition = {4, PartitionStrategy::kAttributeRange};
  opts.scatter_gather = true;
  const ShardedBoundSolver sharded(pcs, {}, opts);

  Predicate wide(2);
  wide.AddRange(0, 0.0, 5000.0);
  for (AggFunc agg :
       {AggFunc::kCount, AggFunc::kSum, AggFunc::kMin, AggFunc::kMax}) {
    const AggQuery q{agg, 1, wide};
    const auto expected = reference.Bound(q);
    const auto actual = sharded.Bound(q);
    ASSERT_EQ(expected.ok(), actual.ok());
    if (!expected.ok()) continue;
    EXPECT_NEAR(expected->lo, actual->lo,
                1e-6 * (1.0 + std::fabs(expected->lo)));
    EXPECT_NEAR(expected->hi, actual->hi,
                1e-6 * (1.0 + std::fabs(expected->hi)));
    EXPECT_EQ(expected->defined, actual->defined);
    EXPECT_EQ(expected->empty_instance_possible,
              actual->empty_instance_possible);
  }
}

TEST(ShardedSolverTest, RoutingStatsAndUnionMemoization) {
  Rng rng(31);
  const PredicateConstraintSet pcs = RandomSet(rng, 4, /*integral=*/true);
  ShardedBoundSolver::Options opts;
  opts.partition = {4, PartitionStrategy::kAttributeRange};
  const ShardedBoundSolver sharded(pcs, {}, opts);

  Predicate narrow(2);
  narrow.AddRange(0, 0.0, 50.0);
  ASSERT_TRUE(sharded.Bound(AggQuery::Count(narrow)).ok());
  auto s1 = sharded.stats();
  EXPECT_EQ(s1.single_shard_queries, 1u);
  EXPECT_EQ(s1.union_solvers_built, 0u);

  Predicate wide(2);
  wide.AddRange(0, 0.0, 4000.0);
  ASSERT_TRUE(sharded.Bound(AggQuery::Count(wide)).ok());
  auto s2 = sharded.stats();
  EXPECT_EQ(s2.multi_shard_queries, 1u);
  EXPECT_EQ(s2.union_solvers_built, 1u);

  // Same span again: the union solver is memoized, not rebuilt.
  ASSERT_TRUE(sharded.Bound(AggQuery::Sum(1, wide)).ok());
  auto s3 = sharded.stats();
  EXPECT_EQ(s3.union_solvers_built, 1u);

  Predicate outside(2);
  outside.AddRange(0, -900.0, -800.0);
  ASSERT_TRUE(sharded.Bound(AggQuery::Count(outside)).ok());
  EXPECT_EQ(sharded.stats().no_shard_queries, 1u);
}

TEST(ShardedSolverTest, PersistentSatCacheAmortizesRepeatQueries) {
  Rng rng(8);
  const PredicateConstraintSet pcs = RandomSet(rng, 2, /*integral=*/false);

  // Direct solver check: a repeated query is answered entirely from the
  // memo cache, with identical bounds.
  PcBoundSolver::Options popts;
  popts.persistent_sat_cache = true;
  const PcBoundSolver cached(pcs, {}, popts);
  const PcBoundSolver plain(pcs, {});

  Predicate where(2);
  where.AddRange(0, 0.0, 1200.0);
  const AggQuery q = AggQuery::Sum(1, where);

  const auto first = cached.Bound(q);
  const auto first_stats = cached.last_stats();
  const auto second = cached.Bound(q);
  const auto second_stats = cached.last_stats();
  const auto baseline = plain.Bound(q);

  ASSERT_TRUE(first.ok() && second.ok() && baseline.ok());
  EXPECT_TRUE(BitIdentical(first->lo, baseline->lo));
  EXPECT_TRUE(BitIdentical(first->hi, baseline->hi));
  EXPECT_TRUE(BitIdentical(second->lo, baseline->lo));
  EXPECT_TRUE(BitIdentical(second->hi, baseline->hi));
  EXPECT_EQ(second_stats.sat_calls, first_stats.sat_calls);
  // The repeat run answers every *memoizable* decision from the cache
  // (trivially-UNSAT shortcuts never reach it, so hits < calls).
  EXPECT_GT(second_stats.sat_cache_hits, first_stats.sat_cache_hits);
  EXPECT_GT(second_stats.sat_cache_hits, 0u);

  // Sharded: the per-shard solvers inherit the flag; repeat queries
  // raise the cumulative hit counter.
  ShardedBoundSolver::Options opts;
  opts.partition = {2, PartitionStrategy::kAttributeRange};
  opts.solver.persistent_sat_cache = true;
  const ShardedBoundSolver sharded(pcs, {}, opts);
  ASSERT_TRUE(sharded.Bound(q).ok());
  const size_t hits_after_one = sharded.stats().solve.sat_cache_hits;
  ASSERT_TRUE(sharded.Bound(q).ok());
  const size_t hits_after_two = sharded.stats().solve.sat_cache_hits;
  EXPECT_GT(hits_after_two, hits_after_one);
}

TEST(ShardedSolverTest, ErrorParityForBadAttribute) {
  Rng rng(5);
  const PredicateConstraintSet pcs = RandomSet(rng, 2, /*integral=*/true);
  const PcBoundSolver reference(pcs, {});
  ShardedBoundSolver::Options opts;
  opts.partition = {2, PartitionStrategy::kRoundRobin};
  const ShardedBoundSolver sharded(pcs, {}, opts);

  // Out-of-range aggregate attribute fails identically even when the
  // WHERE region misses every shard.
  Predicate outside(2);
  outside.AddRange(0, -100.0, -50.0);
  const AggQuery bad{AggFunc::kSum, 17, outside};
  const auto expected = reference.Bound(bad);
  const auto actual = sharded.Bound(bad);
  ASSERT_FALSE(expected.ok());
  ASSERT_FALSE(actual.ok());
  EXPECT_EQ(expected.status().code(), actual.status().code());
  EXPECT_EQ(expected.status().message(), actual.status().message());
}

TEST(ShardedSolverTest, EvalHarnessReportsMatchUnshardedEstimator) {
  // The eval harness's sharded mode: ShardedPcEstimator must report the
  // exact same failure rate and tightness as PcEstimator on a real
  // workload (a whole-pipeline bit-identity check on the Fig. 8 Corr-PC
  // setting, in miniature).
  workload::IntelWirelessOptions opts;
  opts.num_devices = 8;
  opts.num_epochs = 60;
  const Table full = workload::MakeIntelWireless(opts);
  auto split = workload::SplitTopValueCorrelated(full, 2, 0.35);
  const auto domains = DomainsFromSchema(full.schema());
  const auto pcs = workload::MakeCorrPCs(split.missing, {0, 1}, 2, 30);

  workload::QueryGenOptions qopts;
  qopts.count = 40;
  qopts.seed = 5;
  const auto queries =
      workload::MakeRandomRangeQueries(full, {0, 1}, AggFunc::kSum, 2, qopts);

  const PcEstimator unsharded(pcs, domains, "Corr-PC");
  ShardedBoundSolver::Options sopts;
  sopts.partition = {4, PartitionStrategy::kAttributeRange};
  const ShardedPcEstimator sharded(pcs, domains, sopts, "Corr-PC-sharded");

  const auto a = eval::EvaluateEstimator(unsharded, queries, split.missing);
  const auto b = eval::EvaluateEstimator(sharded, queries, split.missing);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.skipped, b.skipped);
  ASSERT_EQ(a.over_rates.size(), b.over_rates.size());
  for (size_t i = 0; i < a.over_rates.size(); ++i) {
    EXPECT_TRUE(BitIdentical(a.over_rates[i], b.over_rates[i])) << i;
  }
}

TEST(ShardedSolverTest, SnapshotConstructorPreservesAnswersAndEpoch) {
  Rng rng(640);
  const PredicateConstraintSet pcs = RandomSet(rng, 3, /*integral=*/false);
  const std::vector<AttrDomain> domains = {AttrDomain::kContinuous,
                                           AttrDomain::kContinuous};
  const Partition partition = PartitionPcSet(
      pcs, domains, {3, PartitionStrategy::kAttributeRange});
  const Snapshot snap = MakeSnapshot(pcs, domains, partition, 11);

  const PcBoundSolver reference(pcs, domains);
  const ShardedBoundSolver sharded(snap);
  EXPECT_EQ(sharded.epoch(), 11u);
  EXPECT_EQ(sharded.num_shards(), 3u);

  Rng qrng(641);
  for (const AggQuery& q : QueryPanel(3, qrng)) {
    ExpectSameAnswer(reference.Bound(q), sharded.Bound(q), "snapshot ctor");
  }
}

}  // namespace
}  // namespace pcx
