#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "solver/milp.h"

namespace pcx {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(MilpTest, PureLpPassthrough) {
  LpModel m;
  m.AddVariable(1.0, 0.0, 3.5);
  const Solution s = BranchAndBoundSolver().Solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.5, 1e-9);
}

TEST(MilpTest, RoundsDownFractionalOptimum) {
  // max x, x <= 3.7, x integer -> 3.
  LpModel m;
  const size_t x = m.AddVariable(1.0, 0.0, kInf, /*integer=*/true);
  m.AddConstraint({{{x, 1.0}}, -kInf, 3.7});
  const Solution s = BranchAndBoundSolver().Solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
  EXPECT_NEAR(s.x[x], 3.0, 1e-9);
}

TEST(MilpTest, KnapsackKnownOptimum) {
  // 0/1 knapsack: values {60, 100, 120}, weights {10, 20, 30}, cap 50.
  // Optimum = 220 (items 2 and 3).
  LpModel m;
  const size_t a = m.AddVariable(60.0, 0.0, 1.0, true);
  const size_t b = m.AddVariable(100.0, 0.0, 1.0, true);
  const size_t c = m.AddVariable(120.0, 0.0, 1.0, true);
  m.AddConstraint({{{a, 10.0}, {b, 20.0}, {c, 30.0}}, -kInf, 50.0});
  const Solution s = BranchAndBoundSolver().Solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 220.0, 1e-7);
  EXPECT_NEAR(s.x[a], 0.0, 1e-6);
  EXPECT_NEAR(s.x[b], 1.0, 1e-6);
  EXPECT_NEAR(s.x[c], 1.0, 1e-6);
}

TEST(MilpTest, OddCycleIndependentSet) {
  // Max independent set on C5: LP relaxation gives 2.5, integer optimum
  // is 2 — exactly the integrality gap the paper's Proposition 4.1
  // reduction exercises.
  LpModel m;
  std::vector<size_t> v(5);
  for (auto& var : v) var = m.AddVariable(1.0, 0.0, 1.0, true);
  for (int i = 0; i < 5; ++i) {
    m.AddConstraint({{{v[i], 1.0}, {v[(i + 1) % 5], 1.0}}, -kInf, 1.0});
  }
  const Solution s = BranchAndBoundSolver().Solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-7);
}

TEST(MilpTest, EqualityWithIntegers) {
  // max 2x + y s.t. x + y = 5, x <= 3.2, integers -> x=3, y=2, z=8.
  LpModel m;
  const size_t x = m.AddVariable(2.0, 0.0, 3.2, true);
  const size_t y = m.AddVariable(1.0, 0.0, kInf, true);
  m.AddConstraint({{{x, 1.0}, {y, 1.0}}, 5.0, 5.0});
  const Solution s = BranchAndBoundSolver().Solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 8.0, 1e-7);
}

TEST(MilpTest, InfeasibleIntegerGap) {
  // 0.4 <= x <= 0.6 has no integer point.
  LpModel m;
  const size_t x = m.AddVariable(1.0, 0.0, kInf, true);
  m.AddConstraint({{{x, 1.0}}, 0.4, 0.6});
  EXPECT_EQ(BranchAndBoundSolver().Solve(m).status,
            SolveStatus::kInfeasible);
}

TEST(MilpTest, InfeasibleLpDetected) {
  LpModel m;
  const size_t x = m.AddVariable(1.0, 0.0, 1.0, true);
  m.AddConstraint({{{x, 1.0}}, 5.0, kInf});
  EXPECT_EQ(BranchAndBoundSolver().Solve(m).status,
            SolveStatus::kInfeasible);
}

TEST(MilpTest, UnboundedDetected) {
  LpModel m;
  m.AddVariable(1.0, 0.0, kInf, true);
  EXPECT_EQ(BranchAndBoundSolver().Solve(m).status,
            SolveStatus::kUnbounded);
}

TEST(MilpTest, MinimizationDirection) {
  // min x s.t. x >= 2.3, integer -> 3.
  LpModel m;
  m.set_sense(OptSense::kMinimize);
  const size_t x = m.AddVariable(1.0, 0.0, kInf, true);
  m.AddConstraint({{{x, 1.0}}, 2.3, kInf});
  const Solution s = BranchAndBoundSolver().Solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
}

TEST(MilpTest, MixedIntegerAndContinuous) {
  // max x + y, x integer <= 2.5, y continuous <= 2.5 -> 2 + 2.5.
  LpModel m;
  const size_t x = m.AddVariable(1.0, 0.0, 2.5, true);
  const size_t y = m.AddVariable(1.0, 0.0, 2.5, false);
  (void)x;
  (void)y;
  const Solution s = BranchAndBoundSolver().Solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.5, 1e-7);
}

TEST(MilpTest, NodeCounterPopulated) {
  LpModel m;
  const size_t x = m.AddVariable(1.0, 0.0, kInf, true);
  m.AddConstraint({{{x, 1.0}}, -kInf, 3.7});
  BranchAndBoundSolver solver;
  solver.Solve(m);
  EXPECT_GE(solver.last_num_nodes(), 1u);
}

/// Random small MILPs, verified against brute-force enumeration of the
/// integer lattice.
class MilpPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MilpPropertyTest, MatchesBruteForce) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    const size_t n = 2 + static_cast<size_t>(rng.UniformInt(0, 1));
    const double cap = 6.0;
    LpModel m;
    for (size_t i = 0; i < n; ++i) {
      m.AddVariable(rng.Uniform(-1.0, 3.0), 0.0, cap, true);
    }
    const size_t rows = 1 + static_cast<size_t>(rng.UniformInt(0, 2));
    for (size_t rix = 0; rix < rows; ++rix) {
      LinearConstraint c;
      for (size_t i = 0; i < n; ++i) {
        c.terms.push_back({i, rng.Uniform(0.2, 1.5)});
      }
      c.lo = 0.0;
      c.hi = rng.Uniform(2.0, 8.0);
      m.AddConstraint(std::move(c));
    }
    const Solution s = BranchAndBoundSolver().Solve(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal);

    // Brute force over the lattice [0, cap]^n.
    double best = -kInf;
    const int grid = static_cast<int>(cap) + 1;
    std::vector<int> point(n, 0);
    while (true) {
      bool feasible = true;
      for (const auto& c : m.constraints()) {
        double lhs = 0.0;
        for (const auto& [v, coef] : c.terms) lhs += coef * point[v];
        if (lhs < c.lo - 1e-9 || lhs > c.hi + 1e-9) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        double z = 0.0;
        for (size_t i = 0; i < n; ++i) z += m.objective()[i] * point[i];
        best = std::max(best, z);
      }
      size_t d = 0;
      while (d < n && ++point[d] == grid) point[d++] = 0;
      if (d == n) break;
    }
    EXPECT_NEAR(s.objective, best, 1e-6)
        << "trial " << trial << " model:\n" << m.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace pcx
