#include <gtest/gtest.h>

#include <limits>

#include "predicate/box.h"
#include "predicate/interval.h"

namespace pcx {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(IntervalTest, DefaultUnbounded) {
  Interval iv;
  EXPECT_TRUE(iv.is_unbounded());
  EXPECT_FALSE(iv.IsEmpty());
  EXPECT_TRUE(iv.Contains(0.0));
  EXPECT_TRUE(iv.Contains(-1e308));
}

TEST(IntervalTest, ClosedContainsEndpoints) {
  const Interval iv = Interval::Closed(1.0, 2.0);
  EXPECT_TRUE(iv.Contains(1.0));
  EXPECT_TRUE(iv.Contains(2.0));
  EXPECT_TRUE(iv.Contains(1.5));
  EXPECT_FALSE(iv.Contains(0.999));
  EXPECT_FALSE(iv.Contains(2.001));
}

TEST(IntervalTest, StrictBoundsExcludeEndpoints) {
  const Interval iv{1.0, 2.0, true, true};
  EXPECT_FALSE(iv.Contains(1.0));
  EXPECT_FALSE(iv.Contains(2.0));
  EXPECT_TRUE(iv.Contains(1.5));
}

TEST(IntervalTest, PointInterval) {
  const Interval iv = Interval::Point(3.0);
  EXPECT_TRUE(iv.Contains(3.0));
  EXPECT_FALSE(iv.Contains(3.0001));
  EXPECT_FALSE(iv.IsEmpty());
}

TEST(IntervalTest, EmptyWhenInverted) {
  const Interval iv = Interval::Closed(2.0, 2.0).Intersect(
      Interval::Closed(3.0, 4.0));
  EXPECT_TRUE(iv.IsEmpty());
}

TEST(IntervalTest, HalfOpenPointIsEmpty) {
  // [2, 2) contains nothing.
  const Interval iv{2.0, 2.0, false, true};
  EXPECT_TRUE(iv.IsEmpty());
}

TEST(IntervalTest, OpenIntervalEmptyOverIntegers) {
  // (2, 3) has no integer point but is non-empty over the reals.
  const Interval iv{2.0, 3.0, true, true};
  EXPECT_FALSE(iv.IsEmpty(AttrDomain::kContinuous));
  EXPECT_TRUE(iv.IsEmpty(AttrDomain::kInteger));
}

TEST(IntervalTest, HalfOpenIntegerInterval) {
  // [2, 3) over integers contains exactly {2}.
  const Interval iv{2.0, 3.0, false, true};
  EXPECT_FALSE(iv.IsEmpty(AttrDomain::kInteger));
  EXPECT_EQ(iv.Witness(AttrDomain::kInteger), 2.0);
}

TEST(IntervalTest, FractionalIntegerIntervalEmpty) {
  // [2.2, 2.8] has no integers.
  const Interval iv = Interval::Closed(2.2, 2.8);
  EXPECT_TRUE(iv.IsEmpty(AttrDomain::kInteger));
  EXPECT_FALSE(iv.IsEmpty(AttrDomain::kContinuous));
}

TEST(IntervalTest, IntersectTakesTighterBounds) {
  const Interval a = Interval::Closed(0.0, 10.0);
  const Interval b = Interval::Closed(5.0, 20.0);
  const Interval c = a.Intersect(b);
  EXPECT_EQ(c.lo, 5.0);
  EXPECT_EQ(c.hi, 10.0);
}

TEST(IntervalTest, IntersectPrefersStrictness) {
  const Interval a = Interval::Closed(0.0, 10.0);
  const Interval b = Interval::LessThan(10.0);
  const Interval c = a.Intersect(b);
  EXPECT_EQ(c.hi, 10.0);
  EXPECT_TRUE(c.hi_strict);
  const Interval d = Interval::GreaterThan(0.0).Intersect(a);
  EXPECT_TRUE(d.lo_strict);
}

TEST(IntervalTest, WitnessInsideInterval) {
  for (const Interval& iv :
       {Interval::Closed(1.0, 2.0), Interval::GreaterThan(5.0),
        Interval::LessThan(-3.0), Interval{1.0, 2.0, true, true},
        Interval::Point(7.0), Interval::All()}) {
    EXPECT_TRUE(iv.Contains(iv.Witness())) << iv.ToString();
  }
}

TEST(IntervalTest, IntegerWitnessIsInteger) {
  const Interval iv{1.5, 10.0, false, false};
  const double w = iv.Witness(AttrDomain::kInteger);
  EXPECT_EQ(w, 2.0);
  EXPECT_TRUE(iv.Contains(w));
}

TEST(IntervalTest, ToStringFormats) {
  EXPECT_EQ(Interval::Closed(0.0, 5.0).ToString(), "[0, 5]");
  EXPECT_EQ((Interval{0.0, 5.0, true, true}).ToString(), "(0, 5)");
  EXPECT_EQ(Interval::AtLeast(2.0).ToString(), "[2, inf)");
  EXPECT_EQ(Interval::LessThan(2.0).ToString(), "(-inf, 2)");
}

TEST(BoxTest, DefaultUniverse) {
  Box b(3);
  EXPECT_TRUE(b.IsUniverse());
  EXPECT_FALSE(b.IsEmpty());
  EXPECT_TRUE(b.Contains({0.0, 1e9, -1e9}));
}

TEST(BoxTest, ConstrainNarrows) {
  Box b(2);
  b.Constrain(0, Interval::Closed(0.0, 1.0));
  EXPECT_FALSE(b.IsUniverse());
  EXPECT_TRUE(b.Contains({0.5, 100.0}));
  EXPECT_FALSE(b.Contains({2.0, 0.0}));
}

TEST(BoxTest, IntersectPerDimension) {
  Box a(2), b(2);
  a.Constrain(0, Interval::Closed(0.0, 10.0));
  b.Constrain(0, Interval::Closed(5.0, 20.0));
  b.Constrain(1, Interval::Closed(-1.0, 1.0));
  const Box c = a.Intersect(b);
  EXPECT_TRUE(c.Contains({7.0, 0.0}));
  EXPECT_FALSE(c.Contains({3.0, 0.0}));
  EXPECT_FALSE(c.Contains({7.0, 2.0}));
}

TEST(BoxTest, EmptyWhenAnyDimEmpty) {
  Box b(2);
  b.Constrain(0, Interval::Closed(0.0, 1.0));
  b.Constrain(0, Interval::Closed(2.0, 3.0));
  EXPECT_TRUE(b.IsEmpty());
}

TEST(BoxTest, EmptyRespectsIntegerDomains) {
  Box b(2);
  b.Constrain(1, Interval{2.0, 3.0, true, true});
  EXPECT_FALSE(b.IsEmpty());
  EXPECT_TRUE(b.IsEmpty({AttrDomain::kContinuous, AttrDomain::kInteger}));
}

TEST(BoxTest, CoversSubBox) {
  Box outer(2), inner(2);
  outer.Constrain(0, Interval::Closed(0.0, 10.0));
  inner.Constrain(0, Interval::Closed(2.0, 5.0));
  inner.Constrain(1, Interval::Closed(0.0, 1.0));
  EXPECT_TRUE(outer.Covers(inner));
  EXPECT_FALSE(inner.Covers(outer));
  EXPECT_TRUE(outer.Covers(outer));
}

TEST(BoxTest, WitnessInsideBox) {
  Box b(3);
  b.Constrain(0, Interval::Closed(1.0, 2.0));
  b.Constrain(2, Interval::GreaterThan(10.0));
  const auto w = b.Witness();
  EXPECT_TRUE(b.Contains(w));
}

TEST(BoxTest, EqualityOperator) {
  Box a(2), b(2);
  a.Constrain(0, Interval::Closed(0.0, 1.0));
  b.Constrain(0, Interval::Closed(0.0, 1.0));
  EXPECT_TRUE(a == b);
  b.Constrain(1, Interval::AtMost(5.0));
  EXPECT_FALSE(a == b);
}

TEST(BoxTest, InfinityEdgeCases) {
  Box b(1);
  b.Constrain(0, Interval::AtLeast(kInf));
  // [inf, inf] contains no finite value but is formally "non-empty" at
  // infinity; Contains on finite points must still say no.
  EXPECT_FALSE(b.Contains({1e308}));
}

}  // namespace
}  // namespace pcx
