#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "predicate/sat.h"
#include "predicate/z3_sat.h"

namespace pcx {
namespace {

Box MakeBox(std::initializer_list<std::pair<size_t, Interval>> dims,
            size_t num_attrs = 2) {
  Box b(num_attrs);
  for (const auto& [attr, iv] : dims) b.Constrain(attr, iv);
  return b;
}

/// True if `point` satisfies positive ∧ ¬neg_1 ∧ ... ∧ ¬neg_k.
bool PointSatisfies(const CellExpr& cell, const std::vector<double>& point) {
  if (!cell.positive.Contains(point)) return false;
  for (const Box& n : cell.negated) {
    if (n.Contains(point)) return false;
  }
  return true;
}

TEST(IntervalSatTest, EmptyExpressionIsSat) {
  IntervalSatChecker checker;
  CellExpr cell;
  cell.positive = Box(2);
  EXPECT_TRUE(checker.IsSatisfiable(cell));
}

TEST(IntervalSatTest, EmptyPositiveIsUnsat) {
  IntervalSatChecker checker;
  CellExpr cell;
  cell.positive = MakeBox({{0, Interval::Closed(2.0, 1.0)}});
  EXPECT_FALSE(checker.IsSatisfiable(cell));
}

TEST(IntervalSatTest, NegationCarvesHole) {
  IntervalSatChecker checker;
  CellExpr cell;
  cell.positive = MakeBox({{0, Interval::Closed(0.0, 10.0)}});
  cell.negated.push_back(MakeBox({{0, Interval::Closed(2.0, 3.0)}}));
  EXPECT_TRUE(checker.IsSatisfiable(cell));
  const auto w = checker.FindWitness(cell);
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(PointSatisfies(cell, *w));
}

TEST(IntervalSatTest, FullCoverIsUnsat) {
  IntervalSatChecker checker;
  CellExpr cell;
  cell.positive = MakeBox({{0, Interval::Closed(0.0, 10.0)}});
  cell.negated.push_back(MakeBox({{0, Interval::Closed(-1.0, 5.0)}}));
  cell.negated.push_back(MakeBox({{0, Interval::Closed(5.0, 11.0)}}));
  EXPECT_FALSE(checker.IsSatisfiable(cell));
}

TEST(IntervalSatTest, CoverWithGapIsSat) {
  IntervalSatChecker checker;
  CellExpr cell;
  cell.positive = MakeBox({{0, Interval::Closed(0.0, 10.0)}});
  // Gap at (4, 5).
  cell.negated.push_back(MakeBox({{0, Interval::Closed(-1.0, 4.0)}}));
  cell.negated.push_back(MakeBox({{0, Interval::Closed(5.0, 11.0)}}));
  const auto w = checker.FindWitness(cell);
  ASSERT_TRUE(w.has_value());
  EXPECT_GT((*w)[0], 4.0);
  EXPECT_LT((*w)[0], 5.0);
}

TEST(IntervalSatTest, GapClosedOverIntegers) {
  // Same gap (4, 5): satisfiable over reals, not over integers.
  IntervalSatChecker real_checker;
  IntervalSatChecker int_checker({AttrDomain::kInteger});
  CellExpr cell;
  cell.positive = MakeBox({{0, Interval::Closed(0.0, 10.0)}}, 1);
  cell.negated.push_back(MakeBox({{0, Interval::Closed(-1.0, 4.0)}}, 1));
  cell.negated.push_back(MakeBox({{0, Interval::Closed(5.0, 11.0)}}, 1));
  EXPECT_TRUE(real_checker.IsSatisfiable(cell));
  EXPECT_FALSE(int_checker.IsSatisfiable(cell));
}

TEST(IntervalSatTest, TwoDimensionalLShape) {
  // [0,10]^2 minus [0,10]x[0,5] minus [0,5]x[0,10] leaves (5,10]x(5,10].
  IntervalSatChecker checker;
  CellExpr cell;
  cell.positive = MakeBox({{0, Interval::Closed(0.0, 10.0)},
                           {1, Interval::Closed(0.0, 10.0)}});
  cell.negated.push_back(MakeBox({{1, Interval::Closed(0.0, 5.0)}}));
  cell.negated.push_back(MakeBox({{0, Interval::Closed(0.0, 5.0)}}));
  const auto w = checker.FindWitness(cell);
  ASSERT_TRUE(w.has_value());
  EXPECT_GT((*w)[0], 5.0);
  EXPECT_GT((*w)[1], 5.0);
}

TEST(IntervalSatTest, CornerCoverageUnsat) {
  // Four quadrant boxes cover the full plane region.
  IntervalSatChecker checker;
  CellExpr cell;
  cell.positive = MakeBox({{0, Interval::Closed(-1.0, 1.0)},
                           {1, Interval::Closed(-1.0, 1.0)}});
  cell.negated.push_back(MakeBox({{0, Interval::AtMost(0.0)}}));
  cell.negated.push_back(MakeBox({{0, Interval::AtLeast(0.0)}}));
  EXPECT_FALSE(checker.IsSatisfiable(cell));
}

TEST(IntervalSatTest, CallCounterIncrements) {
  IntervalSatChecker checker;
  CellExpr cell;
  cell.positive = Box(1);
  EXPECT_EQ(checker.num_calls(), 0u);
  checker.IsSatisfiable(cell);
  checker.IsSatisfiable(cell);
  EXPECT_EQ(checker.num_calls(), 2u);
  checker.ResetStats();
  EXPECT_EQ(checker.num_calls(), 0u);
}

TEST(IntervalSatTest, PointHoleDoesNotKillContinuousRegion) {
  IntervalSatChecker checker;
  CellExpr cell;
  cell.positive = MakeBox({{0, Interval::Point(5.0)}});
  cell.negated.push_back(MakeBox({{0, Interval::Point(5.0)}}));
  EXPECT_FALSE(checker.IsSatisfiable(cell));
}

/// Property suite: randomized cell expressions cross-checked against
/// random point sampling (completeness) and witness verification
/// (soundness) across dimensions and domain mixes.
class SatPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SatPropertyTest, AgreesWithPointSampling) {
  Rng rng(GetParam());
  const size_t dims = 1 + static_cast<size_t>(rng.UniformInt(0, 2));
  std::vector<AttrDomain> domains(dims);
  for (auto& d : domains) {
    d = rng.Bernoulli(0.3) ? AttrDomain::kInteger : AttrDomain::kContinuous;
  }
  IntervalSatChecker checker(domains);

  auto random_box = [&]() {
    Box b(dims);
    for (size_t d = 0; d < dims; ++d) {
      if (rng.Bernoulli(0.3)) continue;  // leave unbounded
      double lo = std::floor(rng.Uniform(-5.0, 5.0));
      double hi = std::floor(rng.Uniform(-5.0, 5.0));
      if (lo > hi) std::swap(lo, hi);
      b.Constrain(d, Interval{lo, hi, rng.Bernoulli(0.3), rng.Bernoulli(0.3)});
    }
    return b;
  };

  for (int trial = 0; trial < 40; ++trial) {
    CellExpr cell;
    cell.positive = random_box();
    const size_t k = static_cast<size_t>(rng.UniformInt(0, 4));
    for (size_t i = 0; i < k; ++i) cell.negated.push_back(random_box());

    const auto witness = checker.FindWitness(cell);
    if (witness.has_value()) {
      // Soundness: the witness must really satisfy the expression and
      // respect integer domains.
      EXPECT_TRUE(PointSatisfies(cell, *witness));
      for (size_t d = 0; d < dims; ++d) {
        if (domains[d] == AttrDomain::kInteger) {
          EXPECT_EQ((*witness)[d], std::floor((*witness)[d]));
        }
      }
    } else {
      // Completeness (probabilistic): no sampled point may satisfy it.
      for (int s = 0; s < 300; ++s) {
        std::vector<double> point(dims);
        for (size_t d = 0; d < dims; ++d) {
          point[d] = domains[d] == AttrDomain::kInteger
                         ? static_cast<double>(rng.UniformInt(-6, 6))
                         : rng.Uniform(-6.0, 6.0);
        }
        EXPECT_FALSE(PointSatisfies(cell, point))
            << "checker said UNSAT but a satisfying point exists";
      }
    }
  }
}

TEST_P(SatPropertyTest, MatchesZ3WhenAvailable) {
  if (!Z3BackendAvailable()) GTEST_SKIP() << "built without libz3";
  Rng rng(GetParam() * 31 + 5);
  const size_t dims = 2;
  IntervalSatChecker ours;
  auto z3 = MakeZ3SatChecker({});
  ASSERT_NE(z3, nullptr);

  auto random_box = [&]() {
    Box b(dims);
    for (size_t d = 0; d < dims; ++d) {
      if (rng.Bernoulli(0.25)) continue;
      double lo = std::floor(rng.Uniform(-4.0, 4.0));
      double hi = std::floor(rng.Uniform(-4.0, 4.0));
      if (lo > hi) std::swap(lo, hi);
      b.Constrain(d, Interval::Closed(lo, hi));
    }
    return b;
  };

  for (int trial = 0; trial < 10; ++trial) {
    CellExpr cell;
    cell.positive = random_box();
    const size_t k = static_cast<size_t>(rng.UniformInt(0, 3));
    for (size_t i = 0; i < k; ++i) cell.negated.push_back(random_box());
    EXPECT_EQ(ours.IsSatisfiable(cell), z3->IsSatisfiable(cell))
        << "disagreement with Z3 on trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Memoization cache (the Fig. 7 "repeated subtree checks are free" path).

TEST(SatCacheTest, RepeatedQueryHitsTheCache) {
  IntervalSatChecker checker;
  CellExpr cell;
  cell.positive = MakeBox({{0, Interval::Closed(0.0, 10.0)}});
  cell.negated.push_back(MakeBox({{0, Interval::Closed(2.0, 3.0)}}));
  EXPECT_TRUE(checker.IsSatisfiable(cell));
  EXPECT_EQ(checker.num_cache_hits(), 0u);
  EXPECT_TRUE(checker.IsSatisfiable(cell));
  EXPECT_EQ(checker.num_calls(), 2u);
  EXPECT_EQ(checker.num_cache_hits(), 1u);
}

TEST(SatCacheTest, NegationOrderIsCanonicalized) {
  IntervalSatChecker checker;
  const Box a = MakeBox({{0, Interval::Closed(1.0, 2.0)}});
  const Box b = MakeBox({{0, Interval::Closed(4.0, 5.0)}});
  CellExpr ab{MakeBox({{0, Interval::Closed(0.0, 10.0)}}), {a, b}};
  CellExpr ba{MakeBox({{0, Interval::Closed(0.0, 10.0)}}), {b, a}};
  EXPECT_TRUE(checker.IsSatisfiable(ab));
  EXPECT_TRUE(checker.IsSatisfiable(ba));  // same set, different order
  EXPECT_EQ(checker.num_cache_hits(), 1u);
}

TEST(SatCacheTest, IrrelevantNegationsCollapseToTheSameEntry) {
  // A negated box outside the positive region removes nothing, so the
  // canonical form (and the cached verdict) is the same with or without
  // it.
  IntervalSatChecker checker;
  const Box hole = MakeBox({{0, Interval::Closed(2.0, 3.0)}});
  const Box far_away = MakeBox({{0, Interval::Closed(100.0, 200.0)}});
  CellExpr plain{MakeBox({{0, Interval::Closed(0.0, 10.0)}}), {hole}};
  CellExpr padded{MakeBox({{0, Interval::Closed(0.0, 10.0)}}),
                  {far_away, hole}};
  EXPECT_TRUE(checker.IsSatisfiable(plain));
  EXPECT_TRUE(checker.IsSatisfiable(padded));
  EXPECT_EQ(checker.num_cache_hits(), 1u);
}

TEST(SatCacheTest, ClearCacheResetsHits) {
  IntervalSatChecker checker;
  CellExpr cell{MakeBox({{0, Interval::Closed(0.0, 4.0)}}),
                {MakeBox({{0, Interval::Closed(1.0, 2.0)}})}};
  checker.IsSatisfiable(cell);
  EXPECT_EQ(checker.cache_size(), 1u);
  checker.ClearCache();
  EXPECT_EQ(checker.cache_size(), 0u);
  checker.IsSatisfiable(cell);
  EXPECT_EQ(checker.num_cache_hits(), 0u);  // repopulated, not hit
}

TEST(SatCacheTest, CachedVerdictsMatchAFreshChecker) {
  // Randomized cross-check: a long-lived (cache-warm) checker must
  // agree with a fresh checker on every query, including re-asked ones.
  Rng rng(321);
  IntervalSatChecker warm({AttrDomain::kInteger});
  auto random_box = [&rng]() {
    Box b(2);
    for (size_t d = 0; d < 2; ++d) {
      if (rng.Bernoulli(0.3)) continue;
      double lo = std::floor(rng.Uniform(-3.0, 3.0));
      double hi = std::floor(rng.Uniform(-3.0, 3.0));
      if (lo > hi) std::swap(lo, hi);
      b.Constrain(d, Interval::Closed(lo, hi));
    }
    return b;
  };
  std::vector<CellExpr> history;
  for (int trial = 0; trial < 300; ++trial) {
    CellExpr cell;
    if (!history.empty() && rng.Bernoulli(0.3)) {
      cell = history[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int>(history.size()) - 1))];
    } else {
      cell.positive = random_box();
      const size_t k = static_cast<size_t>(rng.UniformInt(0, 4));
      for (size_t i = 0; i < k; ++i) cell.negated.push_back(random_box());
      history.push_back(cell);
    }
    IntervalSatChecker fresh({AttrDomain::kInteger});
    EXPECT_EQ(warm.IsSatisfiable(cell), fresh.IsSatisfiable(cell))
        << "trial " << trial;
  }
  EXPECT_GT(warm.num_cache_hits(), 0u);
}

TEST(SatCacheTest, FindWitnessUsesAndFeedsTheCache) {
  IntervalSatChecker checker;
  CellExpr unsat{MakeBox({{0, Interval::Closed(0.0, 1.0)}}),
                 {MakeBox({{0, Interval::Closed(-1.0, 2.0)}})}};
  // Covers-check short-circuits; use a genuine two-box cover instead.
  CellExpr covered{MakeBox({{0, Interval::Closed(0.0, 10.0)}}),
                   {MakeBox({{0, Interval::Closed(-1.0, 6.0)}}),
                    MakeBox({{0, Interval::Closed(6.0, 11.0)}})}};
  EXPECT_FALSE(checker.IsSatisfiable(covered));
  const size_t hits_before = checker.num_cache_hits();
  EXPECT_FALSE(checker.FindWitness(covered).has_value());
  EXPECT_EQ(checker.num_cache_hits(), hits_before + 1);
  (void)unsat;
}

TEST(SatCacheTest, IsSatisfiableManyMatchesScalarCalls) {
  Rng rng(99);
  std::vector<CellExpr> cells;
  for (int i = 0; i < 40; ++i) {
    CellExpr cell;
    cell.positive = Box(2);
    Box b(2);
    const double lo = std::floor(rng.Uniform(-3.0, 3.0));
    cell.positive.Constrain(0, Interval::Closed(lo, lo + 2.0));
    b.Constrain(0, Interval::Closed(lo - 1.0, lo + (i % 2 ? 1.0 : 3.0)));
    cell.negated.push_back(b);
    cells.push_back(cell);
  }
  IntervalSatChecker batch_checker;
  const std::vector<bool> batch = batch_checker.IsSatisfiableMany(cells);
  ASSERT_EQ(batch.size(), cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    IntervalSatChecker scalar;
    EXPECT_EQ(batch[i], scalar.IsSatisfiable(cells[i])) << "cell " << i;
  }
  EXPECT_EQ(batch_checker.num_calls(), cells.size());
}

}  // namespace
}  // namespace pcx
