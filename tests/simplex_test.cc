#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "solver/lp_model.h"
#include "solver/simplex.h"

namespace pcx {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(SimplexTest, SingleVariableBound) {
  LpModel m;
  m.AddVariable(1.0, 0.0, 5.0);
  const Solution s = SimplexSolver().Solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
  EXPECT_NEAR(s.x[0], 5.0, 1e-9);
}

TEST(SimplexTest, ClassicTwoVariableLp) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> x=2, y=6, z=36.
  LpModel m;
  const size_t x = m.AddVariable(3.0);
  const size_t y = m.AddVariable(5.0);
  m.AddConstraint({{{x, 1.0}}, -kInf, 4.0});
  m.AddConstraint({{{y, 2.0}}, -kInf, 12.0});
  m.AddConstraint({{{x, 3.0}, {y, 2.0}}, -kInf, 18.0});
  const Solution s = SimplexSolver().Solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-8);
  EXPECT_NEAR(s.x[x], 2.0, 1e-8);
  EXPECT_NEAR(s.x[y], 6.0, 1e-8);
}

TEST(SimplexTest, EqualityConstraint) {
  // max x + y s.t. x + y = 3, x <= 2 -> 3.
  LpModel m;
  const size_t x = m.AddVariable(1.0, 0.0, 2.0);
  const size_t y = m.AddVariable(1.0);
  m.AddConstraint({{{x, 1.0}, {y, 1.0}}, 3.0, 3.0});
  const Solution s = SimplexSolver().Solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
}

TEST(SimplexTest, GreaterEqualConstraint) {
  // min 2x + 3y s.t. x + y >= 10, x <= 6 -> x=6, y=4, z=24.
  LpModel m;
  m.set_sense(OptSense::kMinimize);
  const size_t x = m.AddVariable(2.0, 0.0, 6.0);
  const size_t y = m.AddVariable(3.0);
  m.AddConstraint({{{x, 1.0}, {y, 1.0}}, 10.0, kInf});
  const Solution s = SimplexSolver().Solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 24.0, 1e-8);
  EXPECT_NEAR(s.x[x], 6.0, 1e-8);
}

TEST(SimplexTest, RangedConstraint) {
  // max x subject to 2 <= x <= 7 expressed as a ranged row.
  LpModel m;
  const size_t x = m.AddVariable(1.0);
  m.AddConstraint({{{x, 1.0}}, 2.0, 7.0});
  const Solution s = SimplexSolver().Solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 7.0, 1e-9);
  // And the minimize direction hits the lower end.
  m.set_sense(OptSense::kMinimize);
  const Solution s2 = SimplexSolver().Solve(m);
  ASSERT_EQ(s2.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s2.objective, 2.0, 1e-9);
}

TEST(SimplexTest, InfeasibleDetected) {
  LpModel m;
  const size_t x = m.AddVariable(1.0, 0.0, 1.0);
  m.AddConstraint({{{x, 1.0}}, 2.0, kInf});  // x >= 2 vs x <= 1
  EXPECT_EQ(SimplexSolver().Solve(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  LpModel m;
  m.AddVariable(1.0);  // max x, x >= 0, no upper bound
  EXPECT_EQ(SimplexSolver().Solve(m).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, MinimizeUnboundedBelowIsFineWhenBounded) {
  // min x with x in [0, inf) is 0, not unbounded.
  LpModel m;
  m.set_sense(OptSense::kMinimize);
  m.AddVariable(1.0);
  const Solution s = SimplexSolver().Solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-9);
}

TEST(SimplexTest, ShiftedLowerBounds) {
  // max x + y with x in [2, 5], y in [1, 3] -> 8.
  LpModel m;
  m.AddVariable(1.0, 2.0, 5.0);
  m.AddVariable(1.0, 1.0, 3.0);
  const Solution s = SimplexSolver().Solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 8.0, 1e-9);
  EXPECT_NEAR(s.x[0], 5.0, 1e-9);
  EXPECT_NEAR(s.x[1], 3.0, 1e-9);
}

TEST(SimplexTest, NegativeObjectiveCoefficients) {
  // max -x - y s.t. x + y >= 2 -> -2.
  LpModel m;
  const size_t x = m.AddVariable(-1.0);
  const size_t y = m.AddVariable(-1.0);
  m.AddConstraint({{{x, 1.0}, {y, 1.0}}, 2.0, kInf});
  const Solution s = SimplexSolver().Solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-8);
}

TEST(SimplexTest, DegenerateLpTerminates) {
  // Multiple redundant constraints through one vertex.
  LpModel m;
  const size_t x = m.AddVariable(1.0);
  const size_t y = m.AddVariable(1.0);
  m.AddConstraint({{{x, 1.0}, {y, 1.0}}, -kInf, 1.0});
  m.AddConstraint({{{x, 2.0}, {y, 2.0}}, -kInf, 2.0});
  m.AddConstraint({{{x, 1.0}}, -kInf, 1.0});
  m.AddConstraint({{{y, 1.0}}, -kInf, 1.0});
  const Solution s = SimplexSolver().Solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-8);
}

TEST(SimplexTest, RedundantEqualityRows) {
  // x + y = 2 stated twice (redundant artificial stays basic at 0).
  LpModel m;
  const size_t x = m.AddVariable(1.0);
  const size_t y = m.AddVariable(0.0);
  m.AddConstraint({{{x, 1.0}, {y, 1.0}}, 2.0, 2.0});
  m.AddConstraint({{{x, 1.0}, {y, 1.0}}, 2.0, 2.0});
  const Solution s = SimplexSolver().Solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-8);
}

TEST(SimplexTest, FractionalEdgeCoverTriangleLp) {
  // The triangle-query FEC LP: min c1+c2+c3 (equal log sizes) s.t. each
  // attribute covered: c1+c3 >= 1, c1+c2 >= 1, c2+c3 >= 1.
  // Optimum: all c = 1/2, total 1.5 — the AGM N^{3/2} exponent.
  LpModel m;
  m.set_sense(OptSense::kMinimize);
  const size_t c1 = m.AddVariable(1.0);
  const size_t c2 = m.AddVariable(1.0);
  const size_t c3 = m.AddVariable(1.0);
  m.AddConstraint({{{c1, 1.0}, {c3, 1.0}}, 1.0, kInf});
  m.AddConstraint({{{c1, 1.0}, {c2, 1.0}}, 1.0, kInf});
  m.AddConstraint({{{c2, 1.0}, {c3, 1.0}}, 1.0, kInf});
  const Solution s = SimplexSolver().Solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.5, 1e-8);
}

/// Feasibility- and optimality-audited random LPs: the solver's answer
/// is checked for primal feasibility, and optimality is sanity-checked
/// against random feasible points.
class SimplexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplexPropertyTest, RandomLpsAreFeasibleAndUndominated) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + static_cast<size_t>(rng.UniformInt(0, 2));
    LpModel m;
    for (size_t i = 0; i < n; ++i) {
      m.AddVariable(rng.Uniform(-2.0, 3.0), 0.0, rng.Uniform(1.0, 10.0));
    }
    const size_t rows = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
    for (size_t rix = 0; rix < rows; ++rix) {
      LinearConstraint c;
      for (size_t i = 0; i < n; ++i) {
        if (rng.Bernoulli(0.7)) c.terms.push_back({i, rng.Uniform(0.1, 2.0)});
      }
      if (c.terms.empty()) c.terms.push_back({0, 1.0});
      c.hi = rng.Uniform(5.0, 20.0);  // generous: x = 0 stays feasible
      m.AddConstraint(std::move(c));
    }
    const Solution s = SimplexSolver().Solve(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    // Primal feasibility.
    for (size_t i = 0; i < n; ++i) {
      EXPECT_GE(s.x[i], m.var_lo()[i] - 1e-7);
      EXPECT_LE(s.x[i], m.var_hi()[i] + 1e-7);
    }
    for (const auto& c : m.constraints()) {
      double lhs = 0.0;
      for (const auto& [v, coef] : c.terms) lhs += coef * s.x[v];
      EXPECT_GE(lhs, c.lo - 1e-6);
      EXPECT_LE(lhs, c.hi + 1e-6);
    }
    // Objective consistency.
    double z = 0.0;
    for (size_t i = 0; i < n; ++i) z += m.objective()[i] * s.x[i];
    EXPECT_NEAR(z, s.objective, 1e-6);
    // No random feasible point may beat the reported optimum.
    for (int probe = 0; probe < 200; ++probe) {
      std::vector<double> p(n);
      for (size_t i = 0; i < n; ++i) {
        p[i] = rng.Uniform(m.var_lo()[i], m.var_hi()[i]);
      }
      bool feasible = true;
      for (const auto& c : m.constraints()) {
        double lhs = 0.0;
        for (const auto& [v, coef] : c.terms) lhs += coef * p[v];
        if (lhs < c.lo - 1e-9 || lhs > c.hi + 1e-9) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      double pz = 0.0;
      for (size_t i = 0; i < n; ++i) pz += m.objective()[i] * p[i];
      EXPECT_LE(pz, s.objective + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace pcx
