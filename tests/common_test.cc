#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/statusor.h"

namespace pcx {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kResourceExhausted, StatusCode::kInfeasible,
        StatusCode::kUnbounded}) {
    EXPECT_STRNE(StatusCodeToString(c), "UNKNOWN");
  }
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    PCX_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::Internal("boom"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto maker = [](bool ok) -> StatusOr<int> {
    if (ok) return 5;
    return Status::OutOfRange("no");
  };
  auto doubler = [&](bool ok) -> StatusOr<int> {
    PCX_ASSIGN_OR_RETURN(const int x, maker(ok));
    return 2 * x;
  };
  EXPECT_EQ(*doubler(true), 10);
  EXPECT_EQ(doubler(false).status().code(), StatusCode::kOutOfRange);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Gaussian(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(RngTest, ParetoAboveScale) {
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.Pareto(3.0, 1.5), 3.0);
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(17);
  size_t low = 0, total = 20000;
  for (size_t i = 0; i < total; ++i) {
    if (rng.Zipf(100, 1.2) < 10) ++low;
  }
  // With s=1.2, the first 10 of 100 values should dominate.
  EXPECT_GT(low, total / 2);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(19);
  std::vector<size_t> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(10, 0.0)];
  for (size_t c : counts) {
    EXPECT_GT(c, 1600u);
    EXPECT_LT(c, 2400u);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(21);
  const auto s = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (size_t v : s) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleAllElements) {
  Rng rng(23);
  const auto s = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_FALSE(s.has_value());
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Median(v), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
}

TEST(QuantileTest, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(Quantile({}, 0.5)));
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.9999), 3.719016, 1e-4);
}

TEST(NormalQuantileTest, SymmetricTails) {
  for (double p : {0.001, 0.01, 0.1, 0.3}) {
    EXPECT_NEAR(NormalQuantile(p), -NormalQuantile(1.0 - p), 1e-8);
  }
}

TEST(ZCriticalTest, MatchesTwoSided) {
  EXPECT_NEAR(ZCritical(0.95), 1.959964, 1e-5);
  EXPECT_NEAR(ZCritical(0.99), 2.575829, 1e-5);
}

}  // namespace
}  // namespace pcx
