#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "baselines/extrapolation.h"
#include "baselines/gmm.h"
#include "baselines/histogram.h"
#include "baselines/pc_estimator.h"
#include "baselines/sampling.h"
#include "relation/aggregate.h"
#include "workload/missing.h"

namespace pcx {
namespace {

Table MakeValueTable(size_t n, uint64_t seed, double lo = 0.0,
                     double hi = 100.0) {
  Table t{Schema({{"key", ColumnType::kDouble},
                  {"value", ColumnType::kDouble}})};
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    t.AppendRow({rng.Uniform(0.0, 10.0), rng.Uniform(lo, hi)});
  }
  return t;
}

TEST(UniformSamplingTest, FullSampleIsExact) {
  Table missing = MakeValueTable(200, 5);
  Rng rng(1);
  auto est = UniformSamplingEstimator::FromMissing(
      missing, 200, IntervalMethod::kParametric, 0.95, "US", &rng);
  const auto r = est.Estimate(AggQuery::Count());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->lo, 200.0, 1e-6);
  EXPECT_NEAR(r->hi, 200.0, 1e-6);
}

TEST(UniformSamplingTest, SumEstimateNearTruth) {
  Table missing = MakeValueTable(5000, 7);
  Rng rng(2);
  auto est = UniformSamplingEstimator::FromMissing(
      missing, 1000, IntervalMethod::kParametric, 0.99, "US", &rng);
  const double truth = Aggregate(missing, AggFunc::kSum, 1).value;
  const auto r = est.Estimate(AggQuery::Sum(1));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR((r->lo + r->hi) / 2.0, truth, truth * 0.1);
  EXPECT_LE(r->lo, truth);
  EXPECT_GE(r->hi, truth);
}

TEST(UniformSamplingTest, NonParametricWiderThanParametric) {
  Table missing = MakeValueTable(5000, 9);
  Rng rng(3);
  auto par = UniformSamplingEstimator::FromMissing(
      missing, 500, IntervalMethod::kParametric, 0.95, "p", &rng);
  Rng rng2(3);
  auto non = UniformSamplingEstimator::FromMissing(
      missing, 500, IntervalMethod::kNonParametric, 0.95, "n", &rng2);
  const auto rp = par.Estimate(AggQuery::Sum(1));
  const auto rn = non.Estimate(AggQuery::Sum(1));
  ASSERT_TRUE(rp.ok());
  ASSERT_TRUE(rn.ok());
  EXPECT_GT(rn->width(), rp->width());
}

TEST(UniformSamplingTest, PredicateFiltering) {
  Table missing = MakeValueTable(2000, 11);
  Rng rng(4);
  auto est = UniformSamplingEstimator::FromMissing(
      missing, 2000, IntervalMethod::kParametric, 0.95, "US", &rng);
  Predicate where(2);
  where.AddRange(0, 0.0, 5.0);
  const double truth =
      Aggregate(missing, AggFunc::kCount, 0, [&](size_t r) {
        return where.MatchesRow(missing, r);
      }).value;
  const auto r = est.Estimate(AggQuery::Count(where));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR((r->lo + r->hi) / 2.0, truth, 1e-6);  // full sample: exact
}

TEST(UniformSamplingTest, MinMaxFromSampleUnderestimates) {
  Table missing = MakeValueTable(10000, 13);
  Rng rng(5);
  auto est = UniformSamplingEstimator::FromMissing(
      missing, 50, IntervalMethod::kNonParametric, 0.95, "US", &rng);
  const double true_max = Aggregate(missing, AggFunc::kMax, 1).value;
  const auto r = est.Estimate(AggQuery::Max(1));
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->hi, true_max);  // sample max never exceeds population max
}

TEST(UniformSamplingTest, AvgUndefinedWhenNoMatch) {
  Table missing = MakeValueTable(100, 15);
  Rng rng(6);
  auto est = UniformSamplingEstimator::FromMissing(
      missing, 100, IntervalMethod::kParametric, 0.95, "US", &rng);
  Predicate where(2);
  where.AddRange(0, 999.0, 1000.0);
  const auto r = est.Estimate(AggQuery::Avg(1, where));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->defined);
}

TEST(StratifiedSamplingTest, CoversTruthWithFullSampling) {
  Table missing = MakeValueTable(1000, 17);
  std::vector<Predicate> regions;
  for (int g = 0; g < 5; ++g) {
    Predicate p(2);
    p.AddInterval(0, Interval{2.0 * g, 2.0 * (g + 1), false, true});
    regions.push_back(p);
  }
  Rng rng(7);
  auto est = StratifiedSamplingEstimator::FromMissing(
      missing, regions, 1000, IntervalMethod::kParametric, 0.95, "ST", &rng);
  const double truth = Aggregate(missing, AggFunc::kSum, 1).value;
  const auto r = est.Estimate(AggQuery::Sum(1));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR((r->lo + r->hi) / 2.0, truth, truth * 0.02);
}

TEST(StratifiedSamplingTest, AvgViaRatio) {
  Table missing = MakeValueTable(1000, 19, 10.0, 20.0);
  std::vector<Predicate> regions;
  Predicate all(2);
  regions.push_back(all);
  Rng rng(8);
  auto est = StratifiedSamplingEstimator::FromMissing(
      missing, regions, 500, IntervalMethod::kParametric, 0.95, "ST", &rng);
  const auto r = est.Estimate(AggQuery::Avg(1));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->hi, 10.0);
  EXPECT_LT(r->lo, 20.0);
}

TEST(HistogramTest, HardBoundsNeverFail) {
  // The defining property (paper Table 2): histogram intervals always
  // contain the truth, for any query.
  Table missing = MakeValueTable(2000, 21);
  HistogramEstimator hist(missing, {0}, 1, 32);
  Rng rng(9);
  for (int q = 0; q < 200; ++q) {
    double lo = rng.Uniform(0.0, 10.0), hi = rng.Uniform(0.0, 10.0);
    if (lo > hi) std::swap(lo, hi);
    Predicate where(2);
    where.AddRange(0, lo, hi);
    for (AggFunc agg : {AggFunc::kCount, AggFunc::kSum}) {
      const double truth =
          Aggregate(missing, agg, 1, [&](size_t r) {
            return where.MatchesRow(missing, r);
          }).value;
      const auto est = hist.Estimate(AggQuery{agg, 1, where});
      ASSERT_TRUE(est.ok());
      EXPECT_GE(truth, est->lo - 1e-6) << AggFuncToString(agg);
      EXPECT_LE(truth, est->hi + 1e-6) << AggFuncToString(agg);
    }
  }
}

TEST(HistogramTest, ExactOnFullRangeQuery) {
  Table missing = MakeValueTable(500, 23);
  HistogramEstimator hist(missing, {0}, 1, 16);
  const auto r = hist.Estimate(AggQuery::Count());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->lo, 500.0, 1e-9);
  EXPECT_NEAR(r->hi, 500.0, 1e-9);
  const double truth = Aggregate(missing, AggFunc::kSum, 1).value;
  const auto s = hist.Estimate(AggQuery::Sum(1));
  ASSERT_TRUE(s.ok());
  EXPECT_LE(s->lo, truth + 1e-6);
  EXPECT_GE(s->hi, truth - 1e-6);
}

TEST(HistogramTest, MultiAttributeIndependenceBounds) {
  Table t{Schema({{"x", ColumnType::kDouble},
                  {"y", ColumnType::kDouble},
                  {"v", ColumnType::kDouble}})};
  Rng rng(25);
  for (int i = 0; i < 1000; ++i) {
    t.AppendRow({rng.Uniform(0, 10), rng.Uniform(0, 10), rng.Uniform(0, 5)});
  }
  HistogramEstimator hist(t, {0, 1}, 2, 16);
  Predicate where(3);
  where.AddRange(0, 2.0, 7.0).AddRange(1, 3.0, 8.0);
  const double truth = Aggregate(t, AggFunc::kCount, 2, [&](size_t r) {
                         return where.MatchesRow(t, r);
                       }).value;
  const auto est = hist.Estimate(AggQuery::Count(where));
  ASSERT_TRUE(est.ok());
  EXPECT_GE(truth, est->lo - 1e-6);
  EXPECT_LE(truth, est->hi + 1e-6);
  // The upper bound is the min of the marginals, so well below N.
  EXPECT_LT(est->hi, 1000.0);
}

TEST(GmmTest, FitRecoversTwoSeparatedClusters) {
  std::vector<std::vector<double>> data;
  Rng rng(27);
  for (int i = 0; i < 400; ++i) data.push_back({rng.Gaussian(0.0, 0.5)});
  for (int i = 0; i < 400; ++i) data.push_back({rng.Gaussian(10.0, 0.5)});
  GaussianMixtureModel::FitOptions opts;
  opts.num_components = 2;
  auto gmm = GaussianMixtureModel::Fit(data, opts);
  ASSERT_TRUE(gmm.ok());
  std::vector<double> means = {gmm->component(0).mean[0],
                               gmm->component(1).mean[0]};
  std::sort(means.begin(), means.end());
  EXPECT_NEAR(means[0], 0.0, 0.5);
  EXPECT_NEAR(means[1], 10.0, 0.5);
}

TEST(GmmTest, SampleFollowsModel) {
  std::vector<std::vector<double>> data;
  Rng rng(29);
  for (int i = 0; i < 500; ++i) data.push_back({rng.Gaussian(5.0, 1.0)});
  GaussianMixtureModel::FitOptions opts;
  opts.num_components = 1;
  auto gmm = GaussianMixtureModel::Fit(data, opts);
  ASSERT_TRUE(gmm.ok());
  Rng sample_rng(31);
  RunningStats stats;
  for (int i = 0; i < 5000; ++i) stats.Add(gmm->Sample(&sample_rng)[0]);
  EXPECT_NEAR(stats.mean(), 5.0, 0.2);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.2);
}

TEST(GmmTest, RejectsBadInput) {
  EXPECT_FALSE(GaussianMixtureModel::Fit({}, {}).ok());
  EXPECT_FALSE(GaussianMixtureModel::Fit({{1.0}, {1.0, 2.0}}, {}).ok());
}

TEST(GenerativeEstimatorTest, EstimatesCountOnWellModeledData) {
  Table missing = MakeValueTable(1000, 33);
  GaussianMixtureModel::FitOptions opts;
  opts.num_components = 4;
  GenerativeEstimator est(missing, {0, 1}, opts, 20, 35);
  const auto r = est.Estimate(AggQuery::Count());
  ASSERT_TRUE(r.ok());
  // Unpredicated COUNT is always the full cardinality.
  EXPECT_NEAR(r->lo, 1000.0, 1e-9);
  EXPECT_NEAR(r->hi, 1000.0, 1e-9);
}

TEST(ExtrapolationTest, ScalesVolumeAggregates) {
  Table full = MakeValueTable(1000, 37);
  Rng rng(10);
  auto split = workload::SplitRandom(full, 0.5, &rng);
  ExtrapolationEstimator est(split.observed, split.missing.num_rows());
  const auto r = est.Estimate(AggQuery::Count());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->lo, 500.0, 1.0);
  const double truth = Aggregate(split.missing, AggFunc::kSum, 1).value;
  const auto s = est.Estimate(AggQuery::Sum(1));
  ASSERT_TRUE(s.ok());
  // Random missingness: extrapolation is close.
  EXPECT_NEAR(s->lo, truth, truth * 0.2);
}

TEST(ExtrapolationTest, FailsBadlyOnCorrelatedMissingness) {
  // The Fig. 1 effect: dropping the top values makes the scaled
  // estimate overshoot massively.
  Table full = MakeValueTable(1000, 39);
  auto split = workload::SplitTopValueCorrelated(full, 1, 0.5);
  ExtrapolationEstimator est(split.observed, split.missing.num_rows());
  const double truth = Aggregate(split.missing, AggFunc::kSum, 1).value;
  const auto s = est.Estimate(AggQuery::Sum(1));
  ASSERT_TRUE(s.ok());
  EXPECT_LT(s->hi, truth * 0.6);  // badly under the true missing sum
}

TEST(PcEstimatorTest, WrapsSolver) {
  PredicateConstraintSet pcs;
  Predicate p(2);
  p.AddRange(0, 0.0, 10.0);
  Box v(2);
  v.Constrain(1, Interval::Closed(0.0, 5.0));
  pcs.Add(PredicateConstraint(p, v, {0, 10}));
  PcEstimator est(pcs, {}, "Test-PC");
  EXPECT_EQ(est.name(), "Test-PC");
  const auto r = est.Estimate(AggQuery::Sum(1));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->hi, 50.0, 1e-9);
}

}  // namespace
}  // namespace pcx
