// Property suites for the end-to-end bound pipeline: brute-force
// cross-validation on tiny discrete universes, monotonicity and
// soundness of the approximation knobs, and parser fuzzing.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "pc/bound_solver.h"
#include "pc/serialization.h"

namespace pcx {
namespace {

/// A tiny discrete universe: rows live on a (key, value) grid with
/// key in {0..3} and value in a fixed small set. Every possible
/// missing-rows instance allocates a count in {0..max_mult} to each grid
/// point, which lets us enumerate ALL instances and compute the true
/// maximal SUM directly.
struct DiscreteUniverse {
  std::vector<double> keys = {0, 1, 2, 3};
  std::vector<double> values = {1.0, 2.0, 5.0};
  int max_mult = 2;
};

struct BruteResult {
  bool any_instance = false;
  double max_sum = -std::numeric_limits<double>::infinity();
  double min_sum = std::numeric_limits<double>::infinity();
  double max_count = 0.0;
};

/// Enumerates every allocation and keeps those satisfying `pcs`.
BruteResult BruteForce(const PredicateConstraintSet& pcs,
                       const DiscreteUniverse& u) {
  const size_t points = u.keys.size() * u.values.size();
  std::vector<int> alloc(points, 0);
  BruteResult out;
  while (true) {
    // Materialize the instance.
    Table t{Schema({{"key", ColumnType::kDouble},
                    {"value", ColumnType::kDouble}})};
    double sum = 0.0, count = 0.0;
    for (size_t p = 0; p < points; ++p) {
      const double key = u.keys[p / u.values.size()];
      const double value = u.values[p % u.values.size()];
      for (int m = 0; m < alloc[p]; ++m) {
        t.AppendRow({key, value});
        sum += value;
        count += 1.0;
      }
    }
    if (pcs.SatisfiedBy(t)) {
      out.any_instance = true;
      out.max_sum = std::max(out.max_sum, sum);
      out.min_sum = std::min(out.min_sum, sum);
      out.max_count = std::max(out.max_count, count);
    }
    // Next allocation.
    size_t d = 0;
    while (d < points && ++alloc[d] > u.max_mult) alloc[d++] = 0;
    if (d == points) break;
  }
  return out;
}

PredicateConstraintSet RandomPcs(Rng* rng, const DiscreteUniverse& u) {
  PredicateConstraintSet pcs;
  // Closure (paper Definition 3.2) must hold for the solver's ranges to
  // bound every instance: a TRUE catch-all covers rows that the random
  // predicates miss.
  {
    Predicate everything(2);
    Box values(2);
    values.Constrain(1, Interval::Closed(0.0, u.values.back()));
    pcs.Add(PredicateConstraint(everything, values, {0.0, 8.0}));
  }
  const size_t n = 2 + static_cast<size_t>(rng->UniformInt(0, 1));
  for (size_t i = 0; i < n; ++i) {
    Predicate pred(2);
    // Key range snapped to the discrete keys.
    int lo = static_cast<int>(rng->UniformInt(0, 3));
    int hi = static_cast<int>(rng->UniformInt(0, 3));
    if (lo > hi) std::swap(lo, hi);
    pred.AddRange(0, lo, hi);
    Box values(2);
    // Value cap aligned with one of the discrete values so that the
    // continuous bound is attainable by a discrete instance.
    const double cap =
        u.values[static_cast<size_t>(rng->UniformInt(0, 2))];
    values.Constrain(1, Interval::Closed(0.0, cap));
    const double k_hi = static_cast<double>(rng->UniformInt(1, 4));
    pcs.Add(PredicateConstraint(pred, values, {0.0, k_hi}));
  }
  return pcs;
}

class BruteForceCrossCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BruteForceCrossCheck, SumAndCountBoundsContainAllInstances) {
  Rng rng(GetParam());
  DiscreteUniverse universe;
  for (int trial = 0; trial < 6; ++trial) {
    const PredicateConstraintSet pcs = RandomPcs(&rng, universe);
    const BruteResult brute = BruteForce(pcs, universe);
    if (!brute.any_instance) continue;

    PcBoundSolver solver(
        pcs, {AttrDomain::kInteger, AttrDomain::kContinuous});
    const auto sum_range = solver.Bound(AggQuery::Sum(1));
    ASSERT_TRUE(sum_range.ok()) << sum_range.status();
    // Soundness: every instance's SUM is inside the range.
    EXPECT_LE(brute.max_sum, sum_range->hi + 1e-9) << pcs.ToString();
    EXPECT_GE(brute.min_sum, sum_range->lo - 1e-9) << pcs.ToString();

    const auto count_range = solver.Bound(AggQuery::Count());
    ASSERT_TRUE(count_range.ok());
    EXPECT_LE(brute.max_count, count_range->hi + 1e-9);
  }
}

TEST_P(BruteForceCrossCheck, SumUpperIsAttainedWhenValuesAlign) {
  // With value caps aligned to the discrete domain, the LP/MILP optimum
  // is realizable by an actual instance: the bound is *tight* (the
  // paper's tightness claim in §4).
  Rng rng(GetParam() * 101 + 7);
  DiscreteUniverse universe;
  for (int trial = 0; trial < 4; ++trial) {
    const PredicateConstraintSet pcs = RandomPcs(&rng, universe);
    const BruteResult brute = BruteForce(pcs, universe);
    if (!brute.any_instance) continue;
    PcBoundSolver solver(
        pcs, {AttrDomain::kInteger, AttrDomain::kContinuous});
    const auto sum_range = solver.Bound(AggQuery::Sum(1));
    ASSERT_TRUE(sum_range.ok());
    // The brute max multiplicity caps allocations at max_mult per grid
    // point, which can make the brute optimum smaller; tightness only
    // holds when the solver's allocation fits within those caps. Verify
    // one direction exactly and the other within the cap-induced gap.
    EXPECT_GE(sum_range->hi, brute.max_sum - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BruteForceCrossCheck,
                         ::testing::Values(1, 2, 3, 4, 5));

class ApproximationSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ApproximationSoundness, EarlyStoppingOnlyLoosens) {
  Rng rng(GetParam() * 13 + 1);
  PredicateConstraintSet pcs;
  for (int i = 0; i < 8; ++i) {
    Predicate pred(2);
    const double x = rng.Uniform(0.0, 6.0);
    pred.AddRange(0, x, x + rng.Uniform(1.0, 4.0));
    Box values(2);
    values.Constrain(1, Interval::Closed(0.0, rng.Uniform(5.0, 50.0)));
    pcs.Add(PredicateConstraint(pred, values, {0.0, 5.0}));
  }
  PcBoundSolver exact(pcs);
  const auto exact_range = exact.Bound(AggQuery::Sum(1));
  ASSERT_TRUE(exact_range.ok());
  for (size_t depth : std::vector<size_t>{1, 2, 4, 6}) {
    PcBoundSolver::Options options;
    options.decomposition.early_stop_depth = depth;
    PcBoundSolver approx(pcs, {}, options);
    const auto approx_range = approx.Bound(AggQuery::Sum(1));
    ASSERT_TRUE(approx_range.ok());
    // The approximation admits extra (unsatisfiable) cells: the range
    // may only widen, never narrow (paper Optimization 4 correctness).
    EXPECT_GE(approx_range->hi, exact_range->hi - 1e-9) << "depth " << depth;
    EXPECT_LE(approx_range->lo, exact_range->lo + 1e-9) << "depth " << depth;
  }
}

TEST_P(ApproximationSoundness, QueryMonotonicity) {
  // A wider query predicate can only widen the SUM upper bound (of
  // non-negative values).
  Rng rng(GetParam() * 29 + 3);
  PredicateConstraintSet pcs;
  for (int i = 0; i < 6; ++i) {
    Predicate pred(2);
    pred.AddRange(0, 2.0 * i, 2.0 * i + 3.0);
    Box values(2);
    values.Constrain(1, Interval::Closed(0.0, rng.Uniform(1.0, 20.0)));
    pcs.Add(PredicateConstraint(pred, values, {0.0, 4.0}));
  }
  PcBoundSolver solver(pcs);
  double prev_hi = 0.0;
  for (double width : {1.0, 3.0, 6.0, 12.0, 20.0}) {
    Predicate where(2);
    where.AddRange(0, 0.0, width);
    const auto range = solver.Bound(AggQuery::Sum(1, where));
    ASSERT_TRUE(range.ok());
    EXPECT_GE(range->hi, prev_hi - 1e-9) << "width " << width;
    prev_hi = range->hi;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproximationSoundness,
                         ::testing::Values(10, 20, 30, 40));

TEST(ParserFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(777);
  const std::string alphabet =
      "pcset v1 atr=0123456789{}[]():,.#\n -+inf";
  for (int trial = 0; trial < 500; ++trial) {
    std::string doc;
    const size_t len = static_cast<size_t>(rng.UniformInt(0, 120));
    for (size_t i = 0; i < len; ++i) {
      doc += alphabet[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(alphabet.size()) - 1))];
    }
    // Must not crash; any Status outcome is acceptable.
    const auto result = ParsePcSet(doc);
    (void)result;
  }
}

TEST(ParserFuzzTest, MutatedValidDocuments) {
  PredicateConstraintSet pcs;
  Predicate pred(2);
  pred.AddRange(0, 0.0, 10.0);
  Box values(2);
  values.Constrain(1, Interval::Closed(0.0, 5.0));
  pcs.Add(PredicateConstraint(pred, values, {0, 10}));
  const std::string valid = SerializePcSet(pcs);

  Rng rng(888);
  for (int trial = 0; trial < 500; ++trial) {
    std::string doc = valid;
    const size_t flips = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
    for (size_t f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(doc.size()) - 1));
      doc[pos] = static_cast<char>(rng.UniformInt(32, 126));
    }
    const auto result = ParsePcSet(doc);
    if (result.ok()) {
      // If it still parses, serialization must round-trip it.
      const auto again = ParsePcSet(SerializePcSet(*result));
      EXPECT_TRUE(again.ok());
    }
  }
}

}  // namespace
}  // namespace pcx
