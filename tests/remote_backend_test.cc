#include "engine/remote_backend.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>

#include "pc/serialization.h"
#include "serve/server.h"
#include "serve/snapshot.h"

namespace pcx {
namespace {

/// The server_test sensor set: two disjoint hour ranges on attribute 0,
/// values on attribute 2.
PredicateConstraintSet SensorSet() {
  PredicateConstraintSet pcs;
  {
    Predicate pred(3);
    pred.AddRange(0, 0, 23);
    Box values(3);
    values.Constrain(2, Interval::Closed(10, 50));
    pcs.Add(PredicateConstraint(pred, values, {2, 5}));
  }
  {
    Predicate pred(3);
    pred.AddRange(0, 24, 47);
    Box values(3);
    values.Constrain(2, Interval::Closed(0, 30));
    pcs.Add(PredicateConstraint(pred, values, {0, 4}));
  }
  return pcs;
}

std::string WriteSensorSnapshot(uint64_t epoch) {
  const auto pcs = SensorSet();
  const std::vector<AttrDomain> domains = {AttrDomain::kInteger,
                                           AttrDomain::kContinuous,
                                           AttrDomain::kContinuous};
  const Partition p =
      PartitionPcSet(pcs, domains, {2, PartitionStrategy::kAttributeRange});
  const Snapshot snap = MakeSnapshot(pcs, domains, p, epoch);
  const std::string path = testing::TempDir() + "/remote_test.pcxsnap";
  PCX_CHECK(WriteSnapshot(snap, path).ok());
  return path;
}

/// An in-process pcx_serve: ephemeral port, `max_clients` sequential
/// sessions on a background thread.
class TestServer {
 public:
  explicit TestServer(size_t max_clients, const std::string& snapshot = "") {
    if (!snapshot.empty()) {
      PCX_CHECK(server_.LoadSnapshotFile(snapshot).ok());
    }
    StatusOr<TcpListener> listener = TcpListener::Bind(0);
    PCX_CHECK(listener.ok()) << listener.status();
    port_ = listener->port();
    thread_ = std::thread(
        [this, max_clients, l = std::move(listener).value()]() mutable {
          serve_status_ = l.Serve(server_, max_clients);
        });
  }
  ~TestServer() { Join(); }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }
  uint16_t port() const { return port_; }
  const Status& serve_status() const { return serve_status_; }

 private:
  BoundServer server_;
  uint16_t port_ = 0;
  Status serve_status_;
  std::thread thread_;
};

TEST(TcpListenerTest, EphemeralBindReportsDistinctPorts) {
  StatusOr<TcpListener> a = TcpListener::Bind(0);
  StatusOr<TcpListener> b = TcpListener::Bind(0);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_GT(a->port(), 0);
  EXPECT_GT(b->port(), 0);
  // Both listeners are alive at once, so the kernel cannot have handed
  // out the same ephemeral port twice.
  EXPECT_NE(a->port(), b->port());
}

TEST(RemoteBackendTest, BoundGroupByStatsOverTheWire) {
  const std::string snapshot = WriteSensorSnapshot(3);
  TestServer server(1, snapshot);

  StatusOr<std::unique_ptr<RemoteBackend>> backend =
      RemoteBackend::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(backend.ok()) << backend.status();
  EXPECT_EQ((*backend)->num_attrs(), 3u);

  // Bit-identical to the in-process answer (cf. server_test).
  const auto count = (*backend)->Bound(AggQuery::Count());
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(count->lo, 2.0);
  EXPECT_EQ(count->hi, 9.0);
  EXPECT_TRUE(count->defined);
  EXPECT_FALSE(count->empty_instance_possible);

  // WHERE predicates survive the round-trip.
  Predicate where(3);
  where.AddRange(0, 0, 23);
  const auto sum = (*backend)->Bound(AggQuery::Sum(2, where));
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->lo, 20.0);
  EXPECT_EQ(sum->hi, 250.0);

  // Group-by: per-group ranges with the caller's group values.
  const auto groups =
      (*backend)->BoundGroupBy(AggQuery::Count(), 0, {5.0, 30.0, 99.0});
  ASSERT_TRUE(groups.ok()) << groups.status();
  ASSERT_EQ(groups->size(), 3u);
  EXPECT_EQ((*groups)[0].group_value, 5.0);
  EXPECT_EQ((*groups)[0].range.hi, 5.0);
  EXPECT_EQ((*groups)[1].range.hi, 4.0);
  EXPECT_EQ((*groups)[2].range.hi, 0.0);

  // Typed stats and epoch.
  const auto stats = (*backend)->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->epoch, 3u);
  EXPECT_EQ(stats->num_shards, 2u);
  EXPECT_EQ(stats->num_pcs, 2u);
  EXPECT_GE(stats->queries, 5u);
  const auto epoch = (*backend)->Epoch();
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 3u);

  // Server-side typed errors arrive as codes, not strings: the solver's
  // own validation...
  const auto bad_attr = (*backend)->Bound(AggQuery::Sum(9));
  ASSERT_FALSE(bad_attr.ok());
  EXPECT_EQ(bad_attr.status().code(), StatusCode::kInvalidArgument);
  // ...and the protocol layer's.
  const auto bad_group = (*backend)->BoundGroupBy(AggQuery::Count(), 99,
                                                  {1.0});
  ASSERT_FALSE(bad_group.ok());
  EXPECT_EQ(bad_group.status().code(), StatusCode::kInvalidArgument);

  backend->reset();  // disconnect: the single allowed session ends
  server.Join();
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status();
}

TEST(RemoteBackendTest, LoadAndPreLoadErrorsAreTyped) {
  const std::string snapshot = WriteSensorSnapshot(5);
  TestServer server(1);  // no snapshot loaded yet

  StatusOr<std::unique_ptr<RemoteBackend>> backend =
      RemoteBackend::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(backend.ok()) << backend.status();
  EXPECT_EQ((*backend)->num_attrs(), 0u);  // unknown until LOAD

  // Queries against an unloaded server: kFailedPrecondition, through
  // the wire, as a code.
  const auto early = (*backend)->Bound(AggQuery::Count());
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), StatusCode::kFailedPrecondition);

  // A bad LOAD keeps the session usable and is typed.
  const Status bad = (*backend)->Load("/nonexistent/nope.pcxsnap");
  ASSERT_FALSE(bad.ok());

  const Status ok = (*backend)->Load(snapshot);
  ASSERT_TRUE(ok.ok()) << ok;
  EXPECT_EQ((*backend)->num_attrs(), 3u);
  const auto count = (*backend)->Bound(AggQuery::Count());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->hi, 9.0);
}

TEST(RemoteBackendTest, HealthWorksBeforeAndAfterLoad) {
  const std::string snapshot = WriteSensorSnapshot(6);
  TestServer server(1);  // no snapshot loaded yet

  StatusOr<std::unique_ptr<RemoteBackend>> backend =
      RemoteBackend::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(backend.ok()) << backend.status();

  // Pre-LOAD: queries fail FAILED_PRECONDITION but the health check
  // succeeds with loaded=false — reachable-but-empty is healthy.
  const auto empty = (*backend)->Health();
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_FALSE(empty->loaded);
  EXPECT_EQ(empty->epoch, 0u);
  EXPECT_EQ(empty->num_shards, 0u);

  ASSERT_TRUE((*backend)->Load(snapshot).ok());
  const auto loaded = (*backend)->Health();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->loaded);
  EXPECT_EQ(loaded->epoch, 6u);
  EXPECT_EQ(loaded->num_shards, 2u);
  EXPECT_EQ(loaded->num_pcs, 2u);
  EXPECT_GE(loaded->sessions, 1u);
}

TEST(StreamTransportTest, HealthFallsBackToStatsOnPreHealthServers) {
  // An old server answers HEALTH with "unknown command"
  // (INVALID_ARGUMENT); the client must degrade to the STATS-derived
  // health so mixed-version fleets stay checkable.
  std::istringstream replies(
      "ERR INVALID_ARGUMENT unknown command 'HEALTH'\n"
      "STATS epoch=4 shards=2 pcs=6 attrs=3 queries=0\n");
  std::ostringstream sent;
  RemoteBackend backend(std::make_unique<StreamTransport>(replies, sent));

  const auto health = backend.Health();
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_TRUE(health->loaded);
  EXPECT_EQ(health->epoch, 4u);
  EXPECT_EQ(health->num_shards, 2u);
  EXPECT_EQ(health->uptime_seconds, 0u);  // unknown via the fallback
  EXPECT_NE(sent.str().find("HEALTH\n"), std::string::npos);
  EXPECT_NE(sent.str().find("STATS\n"), std::string::npos);
}

TEST(RemoteBackendTest, SequentialReconnectsServeEveryClient) {
  const std::string snapshot = WriteSensorSnapshot(1);
  TestServer server(3, snapshot);

  // Session 1: normal query, clean disconnect (no QUIT).
  {
    auto backend = RemoteBackend::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(backend.ok()) << backend.status();
    EXPECT_TRUE((*backend)->Bound(AggQuery::Count()).ok());
  }
  // Session 2: the client vanishes mid-session; the server must shrug
  // (no SIGPIPE, no process exit) and keep accepting.
  {
    auto transport = TcpClientTransport::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(transport.ok());
    EXPECT_TRUE((*transport)->SendLine("STATS").ok());
    // Drop the connection without reading the reply.
  }
  // Session 3: still being served, state intact.
  {
    auto backend = RemoteBackend::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(backend.ok()) << backend.status();
    const auto count = (*backend)->Bound(AggQuery::Count());
    ASSERT_TRUE(count.ok()) << count.status();
    EXPECT_EQ(count->hi, 9.0);
    const auto epoch = (*backend)->Epoch();
    ASSERT_TRUE(epoch.ok());
    EXPECT_EQ(*epoch, 1u);
  }
  server.Join();
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status();
}

TEST(ReplyParsingTest, ErrorRepliesCarryTypedCodes) {
  const Status typed = ParseErrorReply("ERR INVALID_ARGUMENT bad attribute");
  EXPECT_EQ(typed.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(typed.message(), "bad attribute");

  const Status precondition =
      ParseErrorReply("ERR FAILED_PRECONDITION no snapshot loaded");
  EXPECT_EQ(precondition.code(), StatusCode::kFailedPrecondition);

  // Legacy servers without a code name: kInternal, message preserved.
  const Status legacy = ParseErrorReply("ERR something went wrong");
  EXPECT_EQ(legacy.code(), StatusCode::kInternal);
  EXPECT_EQ(legacy.message(), "something went wrong");

  // "ERR OK ..." from a nonconforming server must never yield an
  // OK-coded Status — callers feed the result to StatusOr, which
  // aborts on OK-without-value.
  const Status fake_ok = ParseErrorReply("ERR OK all good here");
  EXPECT_FALSE(fake_ok.ok());
  EXPECT_EQ(fake_ok.code(), StatusCode::kInternal);
  EXPECT_EQ(fake_ok.message(), "OK all good here");

  // Not an ERR line at all.
  const Status not_err = ParseErrorReply("RANGE lo=0 hi=1");
  EXPECT_EQ(not_err.code(), StatusCode::kProtocolError);
}

TEST(ReplyParsingTest, RangeRepliesPreserveEveryBit) {
  const auto parse = [](const std::string& line) {
    std::istringstream tokens(line);
    std::vector<std::string> out;
    std::string tok;
    while (tokens >> tok) out.push_back(tok);
    return ParseRangeReply(out, 1);
  };

  const auto plain =
      parse("RANGE lo=2 hi=9 defined=1 empty_possible=0");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->lo, 2.0);
  EXPECT_EQ(plain->hi, 9.0);
  EXPECT_TRUE(plain->defined);
  EXPECT_FALSE(plain->empty_instance_possible);

  // -0.0 survives: the round-trippable formatting emits "-0" and the
  // parse restores the sign bit (the MIN corner of the bit-identity
  // guarantee).
  const auto minus_zero =
      parse("RANGE lo=-0 hi=0 defined=1 empty_possible=1");
  ASSERT_TRUE(minus_zero.ok());
  EXPECT_TRUE(std::signbit(minus_zero->lo));
  EXPECT_FALSE(std::signbit(minus_zero->hi));
  EXPECT_TRUE(minus_zero->empty_instance_possible);

  // Infinities round-trip through the inf literal.
  const auto inf = parse("RANGE lo=-inf hi=inf defined=0 empty_possible=0");
  ASSERT_TRUE(inf.ok());
  EXPECT_TRUE(std::isinf(inf->lo));
  EXPECT_TRUE(std::isinf(inf->hi));
  EXPECT_FALSE(inf->defined);

  // FormatNumber output parses back bit-for-bit.
  ResultRange r;
  r.lo = -0.0;
  r.hi = 0.1 + 0.2;  // not representable "nicely": exercises %.17g
  std::ostringstream out;
  PrintResultRange(out, "RANGE ", r);
  const auto round_tripped = parse(out.str());
  ASSERT_TRUE(round_tripped.ok());
  EXPECT_TRUE(BitIdenticalRanges(r, *round_tripped));

  // Malformed bodies are protocol errors, distinguishable from server
  // and validation failures.
  EXPECT_EQ(parse("RANGE banana").status().code(),
            StatusCode::kProtocolError);
  EXPECT_EQ(parse("RANGE lo=banana hi=1").status().code(),
            StatusCode::kProtocolError);
  EXPECT_EQ(parse("RANGE defined=1").status().code(),
            StatusCode::kProtocolError);
}

TEST(StreamTransportTest, DrivesTheClientFromCannedReplies) {
  // The client sends requests into `sent` and reads canned replies —
  // a stdio-shaped transport (the server end of a pipe pair).
  std::istringstream replies(
      "STATS epoch=4 shards=2 pcs=6 attrs=3 queries=0\n"
      "RANGE lo=1 hi=2 defined=1 empty_possible=0\r\n"
      "GROUPS 1\n"
      "GROUP 7 lo=0 hi=3 defined=1 empty_possible=1\n"
      "FLAGRANT nonsense\n");
  std::ostringstream sent;
  RemoteBackend backend(std::make_unique<StreamTransport>(replies, sent),
                        "stdio");
  EXPECT_EQ(backend.name(), "stdio");

  const auto stats = backend.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->epoch, 4u);
  EXPECT_EQ(backend.num_attrs(), 3u);

  const auto range = backend.Bound(AggQuery::Count());  // CRLF tolerated
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->hi, 2.0);

  const auto groups = backend.BoundGroupBy(AggQuery::Count(), 0, {7.0});
  ASSERT_TRUE(groups.ok()) << groups.status();
  ASSERT_EQ(groups->size(), 1u);
  EXPECT_EQ((*groups)[0].group_value, 7.0);

  // Garbage replies are protocol errors; a dead stream is Unavailable.
  EXPECT_EQ(backend.Bound(AggQuery::Count()).status().code(),
            StatusCode::kProtocolError);
  EXPECT_EQ(backend.Bound(AggQuery::Count()).status().code(),
            StatusCode::kUnavailable);

  // The requests the backend sent are the protocol's lines.
  EXPECT_NE(sent.str().find("STATS\n"), std::string::npos);
  EXPECT_NE(sent.str().find("BOUND COUNT 0\n"), std::string::npos);
  EXPECT_NE(sent.str().find("GROUPBY COUNT 0 0 7\n"), std::string::npos);
}

TEST(StreamTransportTest, RetryPolicyRetriesOnlyTypedUnavailableReplies) {
  // Two overload rejections, then success: with max_retries=2 the
  // caller never sees the ERR UNAVAILABLE lines — the retry loop eats
  // them and returns the eventual RANGE. The GROUPBY exercises the same
  // policy on its (single-line) header.
  std::istringstream replies(
      "ERR UNAVAILABLE solver queue over max_queue; retry\n"
      "ERR UNAVAILABLE solver queue over max_queue; retry\n"
      "RANGE lo=1 hi=2 defined=1 empty_possible=0\n"
      "ERR UNAVAILABLE solver queue over max_queue; retry\n"
      "GROUPS 1\n"
      "GROUP 7 lo=0 hi=3 defined=1 empty_possible=1\n"
      "ERR UNAVAILABLE solver queue over max_queue; retry\n"
      "ERR UNAVAILABLE solver queue over max_queue; retry\n"
      "ERR UNAVAILABLE solver queue over max_queue; retry\n");
  std::ostringstream sent;
  RemoteBackend backend(std::make_unique<StreamTransport>(replies, sent));
  RemoteBackend::RetryPolicy policy;
  policy.max_retries = 2;
  policy.backoff_ms = 0;  // no sleeping in tests
  backend.set_retry_policy(policy);

  const auto range = backend.Bound(AggQuery::Count());
  ASSERT_TRUE(range.ok()) << range.status();
  EXPECT_EQ(range->hi, 2.0);

  const auto groups = backend.BoundGroupBy(AggQuery::Count(), 0, {7.0});
  ASSERT_TRUE(groups.ok()) << groups.status();
  ASSERT_EQ(groups->size(), 1u);

  // Rejections past the budget surface as the typed kUnavailable — the
  // caller still learns the server is shedding load.
  const auto exhausted = backend.Bound(AggQuery::Count());
  ASSERT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), StatusCode::kUnavailable);

  // Three BOUND attempts for the first call, one GROUPBY + retry, three
  // more for the exhausted call: each retry re-sent the request line.
  std::string log = sent.str();
  size_t bounds = 0;
  for (size_t at = 0; (at = log.find("BOUND COUNT 0\n", at)) !=
                      std::string::npos;
       at += 1) {
    ++bounds;
  }
  EXPECT_EQ(bounds, 6u);

  // Transport death is NOT retried: the stream is exhausted now, and
  // the failure comes back immediately as the transport's kUnavailable
  // (retrying a dead pipe would just burn the backoff schedule).
  const auto dead = backend.Bound(AggQuery::Count());
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kUnavailable);
}

TEST(StreamTransportTest, StatsParsesEventLoopTransportCounters) {
  // A new server's STATS line carries the event-loop counters; the
  // typed client surfaces them (and an old server's line without them
  // leaves the fields zero — covered by every other STATS test here).
  std::istringstream replies(
      "STATS epoch=4 shards=2 pcs=6 attrs=3 queries=9 queue_depth=3 "
      "queue_high_water=7 coalesced_batches=2 coalesced_reqs=8 max_batch=5 "
      "overload_rejects=4\n");
  std::ostringstream sent;
  RemoteBackend backend(std::make_unique<StreamTransport>(replies, sent));

  const auto stats = backend.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->queue_depth, 3u);
  EXPECT_EQ(stats->queue_high_water, 7u);
  EXPECT_EQ(stats->coalesced_batches, 2u);
  EXPECT_EQ(stats->coalesced_requests, 8u);
  EXPECT_EQ(stats->max_coalesced_batch, 5u);
  EXPECT_EQ(stats->overload_rejections, 4u);
}

TEST(StreamTransportTest, BrokenGroupBlockPoisonsTheSession) {
  // A GROUPBY block that breaks half-way leaves the reply stream at an
  // unknown offset. The client must poison the session — if it kept
  // reading, the stale RANGE line below would come back as a clean
  // answer to the NEXT query.
  std::istringstream replies(
      "GROUPS 2\n"
      "GARBAGE not a group line\n"
      "RANGE lo=1 hi=2 defined=1 empty_possible=0\n");
  std::ostringstream sent;
  RemoteBackend backend(std::make_unique<StreamTransport>(replies, sent));

  const auto groups = backend.BoundGroupBy(AggQuery::Count(), 0, {1.0, 2.0});
  ASSERT_FALSE(groups.ok());
  EXPECT_EQ(groups.status().code(), StatusCode::kProtocolError);

  // The stale RANGE is never surfaced: the session is dead, typed.
  const auto after = backend.Bound(AggQuery::Count());
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
}

TEST(RetryBackoffTest, LegacyDoublingWithoutJitter) {
  RemoteBackend::RetryPolicy policy;
  policy.jitter = false;
  policy.backoff_ms = 5;
  policy.max_backoff_ms = 35;
  Rng rng(1);
  uint32_t prev = 0;
  std::vector<uint32_t> sleeps;
  for (int i = 0; i < 5; ++i) {
    prev = NextRetryBackoffMs(policy, prev, rng);
    sleeps.push_back(prev);
  }
  EXPECT_EQ(sleeps, (std::vector<uint32_t>{5, 10, 20, 35, 35}));
}

TEST(RetryBackoffTest, DecorrelatedJitterStaysInEnvelopeAndIsSeeded) {
  RemoteBackend::RetryPolicy policy;
  policy.backoff_ms = 5;
  policy.max_backoff_ms = 200;
  ASSERT_TRUE(policy.jitter);  // the default

  // Every sleep lies in [base, min(cap, 3*max(prev, base))].
  Rng rng(42);
  uint32_t prev = 0;
  for (int i = 0; i < 200; ++i) {
    const uint32_t hi = std::min<uint32_t>(
        policy.max_backoff_ms, 3 * std::max(prev, policy.backoff_ms));
    const uint32_t next = NextRetryBackoffMs(policy, prev, rng);
    EXPECT_GE(next, policy.backoff_ms);
    EXPECT_LE(next, hi);
    prev = next;
  }

  // Deterministic: the same seed replays the same sleep sequence.
  Rng a(7), b(7);
  uint32_t pa = 0, pb = 0;
  for (int i = 0; i < 50; ++i) {
    pa = NextRetryBackoffMs(policy, pa, a);
    pb = NextRetryBackoffMs(policy, pb, b);
    EXPECT_EQ(pa, pb);
  }

  // Different seeds decorrelate (not all sleeps equal).
  Rng c(1), d(2);
  bool differs = false;
  uint32_t pc = 0, pd = 0;
  for (int i = 0; i < 50 && !differs; ++i) {
    pc = NextRetryBackoffMs(policy, pc, c);
    pd = NextRetryBackoffMs(policy, pd, d);
    differs = pc != pd;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace pcx
