#include "serve/partitioner.h"

#include <gtest/gtest.h>

#include <set>

namespace pcx {
namespace {

PredicateConstraint MakePc(double p_lo, double p_hi, double v_lo = 0.0,
                           double v_hi = 10.0, double k_lo = 0.0,
                           double k_hi = 5.0) {
  Predicate pred(2);
  pred.AddRange(0, p_lo, p_hi);
  Box values(2);
  values.Constrain(1, Interval::Closed(v_lo, v_hi));
  return PredicateConstraint(pred, values, {k_lo, k_hi});
}

/// Overlap chain starting at `at`: `size` boxes, consecutive ones
/// overlapping, the whole chain within [at, at + size * 8).
void AddChain(PredicateConstraintSet& pcs, double at, size_t size) {
  for (size_t i = 0; i < size; ++i) {
    const double lo = at + 8.0 * static_cast<double>(i);
    pcs.Add(MakePc(lo, lo + 10.0));  // width 10 > stride 8: overlaps next
  }
}

size_t ShardOf(const Partition& p, size_t pc) {
  for (size_t s = 0; s < p.shards.size(); ++s) {
    for (size_t i : p.shards[s]) {
      if (i == pc) return s;
    }
  }
  return SIZE_MAX;
}

TEST(PartitionerTest, ComponentsAreDetected) {
  PredicateConstraintSet pcs;
  AddChain(pcs, 0.0, 3);     // component {0,1,2}
  AddChain(pcs, 1000.0, 2);  // component {3,4}
  pcs.Add(MakePc(5000.0, 5001.0));  // singleton {5}

  const Partition p =
      PartitionPcSet(pcs, {}, {4, PartitionStrategy::kRoundRobin});
  EXPECT_EQ(p.num_components, 3u);
  EXPECT_EQ(p.largest_component, 3u);
  EXPECT_EQ(p.shards.size(), 4u);

  // Overlapping PCs always land on the same shard.
  EXPECT_EQ(ShardOf(p, 0), ShardOf(p, 1));
  EXPECT_EQ(ShardOf(p, 1), ShardOf(p, 2));
  EXPECT_EQ(ShardOf(p, 3), ShardOf(p, 4));
}

TEST(PartitionerTest, EveryPcAssignedExactlyOnceAndOrdered) {
  PredicateConstraintSet pcs;
  AddChain(pcs, 0.0, 4);
  AddChain(pcs, 500.0, 3);
  AddChain(pcs, 900.0, 1);
  for (PartitionStrategy strategy :
       {PartitionStrategy::kRoundRobin, PartitionStrategy::kAttributeRange}) {
    for (size_t k : {1u, 2u, 3u, 7u}) {
      const Partition p = PartitionPcSet(pcs, {}, {k, strategy});
      ASSERT_EQ(p.shards.size(), k);
      ASSERT_EQ(p.estimated_cost.size(), k);
      std::set<size_t> seen;
      for (const auto& shard : p.shards) {
        for (size_t i = 0; i + 1 < shard.size(); ++i) {
          EXPECT_LT(shard[i], shard[i + 1]) << "shard order must be global";
        }
        for (size_t i : shard) {
          EXPECT_TRUE(seen.insert(i).second) << "pc " << i << " twice";
        }
      }
      EXPECT_EQ(seen.size(), pcs.size());
    }
  }
}

TEST(PartitionerTest, UniversalPredicateMergesEverything) {
  PredicateConstraintSet pcs;
  AddChain(pcs, 0.0, 2);
  AddChain(pcs, 1000.0, 2);
  Box values(2);
  values.Constrain(1, Interval::Closed(0, 1));
  pcs.Add(PredicateConstraint(Predicate(2), values, {0, 100}));  // TRUE pred

  const Partition p =
      PartitionPcSet(pcs, {}, {4, PartitionStrategy::kAttributeRange});
  EXPECT_EQ(p.num_components, 1u);
  EXPECT_EQ(p.largest_component, pcs.size());
  // Unshardable: one shard holds everything.
  size_t non_empty = 0;
  for (const auto& shard : p.shards) non_empty += shard.empty() ? 0 : 1;
  EXPECT_EQ(non_empty, 1u);
}

TEST(PartitionerTest, AttributeRangeBalancesSkewBetterThanRoundRobin) {
  // Component sizes 5, 1, 5, 1 in attribute order. Round-robin deals
  // components 0,2 (the two heavy ones) to shard 0 — maximum skew. The
  // range strategy packs by estimated cost and splits the heavy
  // components across shards.
  PredicateConstraintSet pcs;
  AddChain(pcs, 0.0, 5);
  AddChain(pcs, 200.0, 1);
  AddChain(pcs, 400.0, 5);
  AddChain(pcs, 600.0, 1);

  const Partition rr =
      PartitionPcSet(pcs, {}, {2, PartitionStrategy::kRoundRobin});
  const Partition range =
      PartitionPcSet(pcs, {}, {2, PartitionStrategy::kAttributeRange});
  ASSERT_EQ(rr.num_components, 4u);
  ASSERT_EQ(range.num_components, 4u);

  EXPECT_GT(rr.ImbalanceRatio(), 1.5);
  EXPECT_LT(range.ImbalanceRatio(), rr.ImbalanceRatio());
  // The two heavy components end up on different shards.
  EXPECT_NE(ShardOf(range, 0), ShardOf(range, 6));
}

TEST(PartitionerTest, CostEstimateIsMonotonic) {
  EXPECT_EQ(EstimateComponentCost(0), 0.0);
  EXPECT_EQ(EstimateComponentCost(1), 1.0);
  EXPECT_EQ(EstimateComponentCost(2), 3.0);
  EXPECT_EQ(EstimateComponentCost(3), 7.0);
  EXPECT_GT(EstimateComponentCost(30), EstimateComponentCost(20));
  // Capped: huge components do not overflow the balancing arithmetic.
  EXPECT_LE(EstimateComponentCost(4000), 1e12);
}

TEST(PartitionerTest, EmptySetAndSingleShard) {
  PredicateConstraintSet empty;
  const Partition p =
      PartitionPcSet(empty, {}, {3, PartitionStrategy::kAttributeRange});
  EXPECT_EQ(p.shards.size(), 3u);
  EXPECT_EQ(p.num_components, 0u);
  EXPECT_EQ(p.ImbalanceRatio(), 0.0);

  PredicateConstraintSet one;
  one.Add(MakePc(0, 1));
  const Partition q =
      PartitionPcSet(one, {}, {1, PartitionStrategy::kRoundRobin});
  ASSERT_EQ(q.shards.size(), 1u);
  EXPECT_EQ(q.shards[0].size(), 1u);
}

TEST(PartitionerTest, IntegerDomainsAffectOverlap) {
  // (0, 1) gaps on an integer attribute: the open interval between the
  // boxes is integer-empty, so [0,5] and (5,10] do NOT overlap on the
  // reals-with-strict-bounds but touching closed ends do. Use two boxes
  // separated by an open gap that only the continuous domain can fill.
  PredicateConstraintSet pcs;
  Predicate a(2), b(2);
  a.AddInterval(0, Interval{0, 5, false, true});   // [0, 5)
  b.AddInterval(0, Interval{4, 9, true, false});   // (4, 9]
  Box values(2);
  values.Constrain(1, Interval::Closed(0, 1));
  pcs.Add(PredicateConstraint(a, values, {0, 5}));
  pcs.Add(PredicateConstraint(b, values, {0, 5}));

  // Continuous: (4, 5) is non-empty -> one component.
  const Partition cont =
      PartitionPcSet(pcs, {}, {2, PartitionStrategy::kRoundRobin});
  EXPECT_EQ(cont.num_components, 1u);

  // Integer domain: (4, 5) holds no integer -> two components.
  const Partition integer = PartitionPcSet(
      pcs, {AttrDomain::kInteger, AttrDomain::kContinuous},
      {2, PartitionStrategy::kRoundRobin});
  EXPECT_EQ(integer.num_components, 2u);
}

}  // namespace
}  // namespace pcx
