#include <gtest/gtest.h>

#include "baselines/daq.h"
#include "baselines/pc_estimator.h"
#include "eval/harness.h"
#include "relation/aggregate.h"
#include "workload/datasets.h"
#include "workload/missing.h"
#include "workload/pc_gen.h"
#include "workload/query_gen.h"

namespace pcx {
namespace {

Table SmallMissing(uint64_t seed) {
  workload::IntelWirelessOptions opts;
  opts.num_devices = 6;
  opts.num_epochs = 40;
  opts.seed = seed;
  const Table full = workload::MakeIntelWireless(opts);
  return workload::SplitTopValueCorrelated(full, 2, 0.3).missing;
}

TEST(DaqStyleTest, HardBoundsNeverFail) {
  const Table missing = SmallMissing(3);
  DaqStyleEstimator daq(missing, 2);
  workload::QueryGenOptions qopts;
  qopts.count = 60;
  const auto queries =
      workload::MakeRandomRangeQueries(missing, {0, 1}, AggFunc::kSum, 2,
                                       qopts);
  const auto report = eval::EvaluateEstimator(daq, queries, missing);
  EXPECT_EQ(report.failures, 0u);
}

TEST(DaqStyleTest, LooserThanPredicateLevelPcs) {
  // The point of predicate-level constraints (paper §7 vs DAQ):
  // relation-level ranges cannot exploit selective WHERE clauses.
  const Table missing = SmallMissing(5);
  DaqStyleEstimator daq(missing, 2);
  PcEstimator pc(workload::MakeCorrPCs(missing, {0, 1}, 2, 16), {},
                 "Corr-PC");
  workload::QueryGenOptions qopts;
  qopts.count = 40;
  const auto queries =
      workload::MakeRandomRangeQueries(missing, {0, 1}, AggFunc::kSum, 2,
                                       qopts);
  const auto daq_report = eval::EvaluateEstimator(daq, queries, missing);
  const auto pc_report = eval::EvaluateEstimator(pc, queries, missing);
  EXPECT_EQ(daq_report.failures, 0u);
  EXPECT_EQ(pc_report.failures, 0u);
  EXPECT_GT(daq_report.median_over_rate(),
            2.0 * pc_report.median_over_rate());
}

TEST(DaqStyleTest, CountAndExtremes) {
  Table t{Schema({{"k", ColumnType::kDouble}, {"v", ColumnType::kDouble}})};
  t.AppendRow({0, -3.0});
  t.AppendRow({1, 7.0});
  DaqStyleEstimator daq(t, 1);
  const auto count = daq.Estimate(AggQuery::Count());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->lo, 0.0);
  EXPECT_EQ(count->hi, 2.0);
  const auto sum = daq.Estimate(AggQuery::Sum(1));
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->lo, -6.0);  // both rows at -3
  EXPECT_EQ(sum->hi, 14.0);  // both rows at 7
  const auto mx = daq.Estimate(AggQuery::Max(1));
  ASSERT_TRUE(mx.ok());
  EXPECT_EQ(mx->lo, -3.0);
  EXPECT_EQ(mx->hi, 7.0);
}

TEST(DaqStyleTest, EmptyMissingSet) {
  Table t{Schema({{"k", ColumnType::kDouble}, {"v", ColumnType::kDouble}})};
  DaqStyleEstimator daq(t, 1);
  const auto sum = daq.Estimate(AggQuery::Sum(1));
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->lo, 0.0);
  EXPECT_EQ(sum->hi, 0.0);
  const auto avg = daq.Estimate(AggQuery::Avg(1));
  ASSERT_TRUE(avg.ok());
  EXPECT_FALSE(avg->defined);
}

TEST(EvalMetricsTest, FailureRateComputation) {
  eval::EstimatorReport r;
  r.total = 10;
  r.failures = 2;
  r.skipped = 2;
  EXPECT_DOUBLE_EQ(r.failure_rate_percent(), 25.0);  // 2 of 8 counted
  r.skipped = 10;
  EXPECT_DOUBLE_EQ(r.failure_rate_percent(), 0.0);  // nothing counted
}

TEST(EvalMetricsTest, MedianOverRate) {
  eval::EstimatorReport r;
  r.over_rates = {1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(r.median_over_rate(), 2.0);
  r.over_rates.clear();
  EXPECT_DOUBLE_EQ(r.median_over_rate(), 0.0);
}

TEST(EvalMetricsTest, SkipsUndefinedTruth) {
  // AVG queries whose true matching set is empty are skipped, not
  // counted as failures.
  Table missing{Schema({{"k", ColumnType::kDouble},
                        {"v", ColumnType::kDouble}})};
  missing.AppendRow({0.0, 1.0});
  DaqStyleEstimator daq(missing, 1);
  Predicate nothing(2);
  nothing.AddRange(0, 100.0, 200.0);
  std::vector<AggQuery> queries = {AggQuery::Avg(1, nothing)};
  const auto report = eval::EvaluateEstimator(daq, queries, missing);
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.failures, 0u);
}

TEST(EvalMetricsTest, UndefinedEstimateOnNonEmptyTruthIsFailure) {
  class AlwaysUndefined : public MissingDataEstimator {
   public:
    StatusOr<ResultRange> Estimate(const AggQuery&) const override {
      ResultRange r;
      r.defined = false;
      return r;
    }
    std::string name() const override { return "Undefined"; }
  };
  Table missing{Schema({{"k", ColumnType::kDouble},
                        {"v", ColumnType::kDouble}})};
  missing.AppendRow({0.0, 1.0});
  AlwaysUndefined est;
  std::vector<AggQuery> queries = {AggQuery::Sum(1)};
  const auto report = eval::EvaluateEstimator(est, queries, missing);
  EXPECT_EQ(report.failures, 1u);
}

}  // namespace
}  // namespace pcx
